package gpp_test

import (
	"fmt"

	"gpp"
)

// ExamplePartition shows the core flow: benchmark → partition → metrics.
// Everything is seeded, so the output is reproducible.
func ExamplePartition() {
	circuit, err := gpp.Benchmark("KSA4")
	if err != nil {
		panic(err)
	}
	res, err := gpp.Partition(circuit, 5, gpp.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("planes: %d\n", res.K)
	fmt.Printf("labels cover every gate: %v\n", len(res.Labels) == circuit.NumGates())
	fmt.Printf("histogram buckets: %d\n", len(res.Metrics.DistHist))
	// Output:
	// planes: 5
	// labels cover every gate: true
	// histogram buckets: 5
}

// ExamplePlanRecycling shows how a partition becomes a physical serial
// biasing plan.
func ExamplePlanRecycling() {
	circuit, _ := gpp.Benchmark("KSA4")
	res, _ := gpp.Partition(circuit, 4, gpp.Options{Seed: 1})
	plan, err := gpp.PlanRecycling(circuit, res)
	if err != nil {
		panic(err)
	}
	fmt.Printf("planes in the stack: %d\n", plan.K)
	fmt.Printf("stack voltage: %.1f mV\n", plan.StackVoltage()*1000)
	fmt.Printf("supply below parallel biasing: %v\n", plan.SupplyCurrent < res.Metrics.TotalBias)
	// Output:
	// planes in the stack: 4
	// stack voltage: 10.0 mV
	// supply below parallel biasing: true
}

// ExampleMinimumPlanes shows the Table-III lower bound.
func ExampleMinimumPlanes() {
	circuit, _ := gpp.Benchmark("KSA8") // needs 164 mA in total
	k, _ := gpp.MinimumPlanes(circuit, 100)
	fmt.Printf("K_LB for a 100 mA pad: %d\n", k)
	// Output:
	// K_LB for a 100 mA pad: 2
}

// ExampleSimulate shows pulse-level functional simulation of a mapped
// netlist: 3 + 1 on the 4-bit Kogge-Stone adder.
func ExampleSimulate() {
	circuit, _ := gpp.Benchmark("KSA4")
	res, err := gpp.Simulate(circuit, map[string]bool{
		"a0": true, "a1": true, // a = 3
		"b0": true, // b = 1
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("s2 pulses (3+1=4): %v\n", res.Outputs["OUTPUT_s2"])
	fmt.Printf("s0 pulses: %v\n", res.Outputs["OUTPUT_s0"])
	// Output:
	// s2 pulses (3+1=4): true
	// s0 pulses: false
}
