package gpp

import (
	"gpp/internal/cluster"
	"gpp/internal/serve"
)

// Serve facade: run the partition daemon inside another Go program. The
// standalone daemon lives in cmd/gpp-serve; these re-exports give embedded
// users the same subsystem without importing internal packages.

type (
	// ServeConfig sizes the partition daemon (queue depth, worker count,
	// cache entries, per-job deadlines, progress-stream throttle).
	ServeConfig = serve.Config
	// Server is the partition daemon: an http.Handler plus its worker
	// pool; stop it with Shutdown.
	Server = serve.Server
	// JobRequest is the POST /v1/jobs submission document.
	JobRequest = serve.JobRequest
	// JobOptions is the JSON mirror of the solver Options accepted in a
	// JobRequest.
	JobOptions = serve.JobOptions
	// JobStatus is a job's lifecycle state (queued, running, done,
	// failed, cancelled).
	JobStatus = serve.Status
	// ClusterConfig is the static membership config that, set on
	// ServeConfig.Cluster, joins the daemon to a cluster: consistent-hash
	// job routing, peer cache read-through, and work stealing.
	ClusterConfig = cluster.Config
)

// NewServer builds a partition daemon and starts its worker pool; with
// ServeConfig.DataDir set it first replays the durable job journal, so
// the error covers an unusable data directory. Mount the server on any
// mux (it is an http.Handler) or let Server.Run listen; pair every
// NewServer with a Server.Shutdown.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// CircuitHash returns the content address of a circuit — the hex sha256
// of its canonical solver-visible bytes (gate biases/areas and the edge
// list, names excluded). Together with Options normalization it defines
// the daemon's result-cache key.
func CircuitHash(c *Circuit) string { return serve.CircuitHash(c) }

// NormalizeOptions validates opts and fills every default the solver
// would apply for a K-plane problem, so two spellings of the same solve
// compare (and hash) equal.
func NormalizeOptions(opts Options, k int) (Options, error) { return opts.NormalizeFor(k) }

// OptionsFingerprint returns the stable hash of the normalized
// solver-relevant option fields (Workers, Tracer and TraceCost excluded —
// they never change the result).
func OptionsFingerprint(opts Options) (string, error) { return opts.Fingerprint() }
