package gpp

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"gpp/internal/def"
	"gpp/internal/eco"
	"gpp/internal/partition"
	"gpp/internal/place"
	"gpp/internal/power"
	"gpp/internal/recycle"
	"gpp/internal/route"
	"gpp/internal/sim"
	"gpp/internal/svg"
	"gpp/internal/timing"
	"gpp/internal/verif"
	"gpp/internal/verilog"
)

// Extended facade: plane-aware placement, timing/power analysis, and
// independent verification on top of the core partitioning flow.

type (
	// Placement is a plane-banded layout of a partitioned circuit.
	Placement = place.Placement
	// TimingAnalysis is the stage-delay timing result of a circuit.
	TimingAnalysis = timing.Analysis
	// TimingPenalty compares unpartitioned vs partitioned timing.
	TimingPenalty = timing.Penalty
	// PowerComparison compares parallel vs recycled supply economics.
	PowerComparison = power.Comparison
	// Issue is one verification finding.
	Issue = verif.Issue
	// PortfolioOptions configures a concurrent multi-seed restart race.
	PortfolioOptions = partition.PortfolioOptions
	// Portfolio is the outcome of a restart race (best result + per-seed
	// summaries).
	Portfolio = partition.Portfolio
	// SeedResult summarizes one restart of a portfolio.
	SeedResult = partition.SeedResult
)

// Place lays the partitioned circuit out as stacked plane bands (the
// chip organization of the paper's Fig. 1) and returns the geometry,
// boundary coupler slots, and wirelength measures.
func Place(c *Circuit, res *Result) (*Placement, error) {
	return place.Build(c, res.K, res.Labels, place.Options{})
}

// WritePlacedDEF emits the partitioned, placed design as DEF with one
// REGION/GROUP pair per ground plane — the hand-off format for downstream
// physical design tools.
func WritePlacedDEF(w io.Writer, c *Circuit, p *Placement) error {
	return def.WritePlaced(w, c, p)
}

// ReadPlanesDEF recovers a plane labeling from a DEF file containing
// plane_<k> GROUPS (as written by WritePlacedDEF). Returns the labels and
// the plane count.
func ReadPlanesDEF(r io.Reader, c *Circuit) ([]int, int, error) {
	_, groups, err := def.ParseRegionsGroups(r)
	if err != nil {
		return nil, 0, err
	}
	return def.LabelsFromGroups(c, groups)
}

// AnalyzeTiming runs the first-order SFQ stage-delay model on the circuit
// (unpartitioned).
func AnalyzeTiming(c *Circuit) (*TimingAnalysis, error) {
	return timing.Analyze(c, timing.Options{})
}

// TimingImpact quantifies the frequency penalty of a partition: coupler
// chains on inter-plane connections lengthen pipeline stages.
func TimingImpact(c *Circuit, res *Result) (*TimingPenalty, error) {
	return timing.ComparePartition(c, res.Labels, timing.Options{})
}

// PowerImpact models the supply economics of a recycling plan against
// parallel biasing (RSFQ scheme).
func PowerImpact(c *Circuit, plan *Plan) (*PowerComparison, error) {
	return power.Compare(c, plan, power.Options{Scheme: power.RSFQ})
}

// Verify independently re-derives a result's claimed properties and
// returns any discrepancies (empty means everything checks out). When
// limitMA > 0 the per-plane supply limit is enforced too.
func Verify(c *Circuit, res *Result, limitMA float64) []Issue {
	issues := verif.Partition(c, res.K, res.Labels, limitMA)
	issues = append(issues, verif.Metrics(c, res.Labels, res.Metrics)...)
	return issues
}

// VerifyPlan checks a recycling plan's chains and series conservation.
func VerifyPlan(c *Circuit, res *Result, plan *Plan) []Issue {
	return verif.Plan(c, res.Labels, plan)
}

// PartitionBalanced runs the solver with capacity-aware rounding: every
// plane's bias stays within (1+slack)·B_cir/K, trading some wire cost for
// a guaranteed B_max bound (useful under a supply limit).
func PartitionBalanced(c *Circuit, k int, opts Options, slack float64) (*Result, error) {
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, err
	}
	res, err := p.SolveBalanced(opts, slack)
	if err != nil {
		return nil, err
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		return nil, err
	}
	return &Result{K: k, Labels: res.Labels, Metrics: m, Iters: res.Iters, Converged: res.Converged}, nil
}

// WriteVerilog emits the circuit as structural Verilog; when res is
// non-nil every instance is annotated with its ground plane as a
// synthesis attribute.
func WriteVerilog(w io.Writer, c *Circuit, res *Result) error {
	opts := verilog.Options{}
	if res != nil {
		opts.Labels = res.Labels
	}
	return verilog.Write(w, c, opts)
}

// PartitionBest runs the solver with `restarts` seeds and keeps the best
// discrete-cost result.
func PartitionBest(c *Circuit, k int, opts Options, restarts int) (*Result, error) {
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, err
	}
	res, err := p.SolveBest(opts, restarts)
	if err != nil {
		return nil, err
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		return nil, err
	}
	return &Result{K: k, Labels: res.Labels, Metrics: m, Iters: res.Iters, Converged: res.Converged}, nil
}

// PartitionPortfolio races po.Restarts independent solver runs concurrently
// on a bounded worker pool and returns the best discrete-cost partition
// plus the full per-seed portfolio. The race is deterministic: the same
// options produce the same winner regardless of worker count or completion
// order. Cancelling ctx stops the race early with the context error.
func PartitionPortfolio(ctx context.Context, c *Circuit, k int, opts Options, po PortfolioOptions) (*Result, *Portfolio, error) {
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, nil, err
	}
	pf, err := p.SolvePortfolio(ctx, opts, po)
	if err != nil {
		return nil, nil, err
	}
	m, err := recycle.Evaluate(p, pf.Best.Labels)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{K: k, Labels: pf.Best.Labels, Metrics: m, Iters: pf.Best.Iters, Converged: pf.Best.Converged}
	return res, pf, nil
}

// SimResult is one simulated SFQ pulse wave.
type SimResult = sim.Result

// Simulate runs one functional pulse wave through a mapped netlist:
// inputs maps input-converter names (with or without the mapper's
// "INPUT_" prefix) to pulse presence.
func Simulate(c *Circuit, inputs map[string]bool) (*SimResult, error) {
	return sim.Run(c, inputs, sim.Options{})
}

// MeasureActivity estimates the circuit's switching activity over `waves`
// random input vectors (seeded, deterministic) — a measured substitute for
// the power model's assumed activity factor.
func MeasureActivity(c *Circuit, waves int, seed int64) (float64, error) {
	if waves <= 0 {
		return 0, fmt.Errorf("gpp: need ≥ 1 wave, got %d", waves)
	}
	rng := rand.New(rand.NewSource(seed))
	var names []string
	for _, g := range c.Gates {
		if g.Cell == "DCSFQ" && g.Name != "clk_src" {
			names = append(names, g.Name)
		}
	}
	ws := make([]map[string]bool, waves)
	for w := range ws {
		in := make(map[string]bool, len(names))
		for _, n := range names {
			in[n] = rng.Intn(2) == 1
		}
		ws[w] = in
	}
	return sim.Activity(c, ws, sim.Options{})
}

// WriteLayoutSVG renders the plane-banded layout as an SVG document.
func WriteLayoutSVG(w io.Writer, p *Placement) error { return svg.WriteLayout(w, p) }

// WriteStackSVG renders the serial bias stack (Fig. 1 of the paper) as an
// SVG document.
func WriteStackSVG(w io.Writer, plan *Plan) error { return svg.WriteStack(w, plan) }

// ExtendPartition performs an ECO-style incremental assignment: `grown`
// must contain the original circuit's gates (in order) followed by newly
// added ones; `base` is the existing partition of the original gates. New
// gates are placed greedily and a local cleanup runs around the edit.
// Returns the full labeling plus how many old gates the cleanup moved.
func ExtendPartition(grown *Circuit, k int, base []int) (labels []int, adjusted int, err error) {
	p, err := partition.FromCircuit(grown, k)
	if err != nil {
		return nil, 0, err
	}
	res, err := eco.Extend(p, base, eco.Options{})
	if err != nil {
		return nil, 0, err
	}
	return res.Labels, res.Adjusted, nil
}

// PlaneBlock is one ground plane's extracted circuit block.
type PlaneBlock = recycle.PlaneBlock

// ExtractPlanes splits a partitioned circuit into one standalone netlist
// per ground plane, with per-block coupler port counts — the deliverable
// each plane's physical design starts from.
func ExtractPlanes(c *Circuit, res *Result) ([]PlaneBlock, error) {
	p, err := partition.FromCircuit(c, res.K)
	if err != nil {
		return nil, err
	}
	return recycle.PlaneNetlists(c, p, res.Labels)
}

// ChannelRouting is the boundary-channel routing estimate of a placement.
type ChannelRouting = route.Result

// RouteChannels estimates the inter-plane routing of a placed partition:
// left-edge track assignment per boundary channel, worst-channel height,
// and total channel wirelength.
func RouteChannels(c *Circuit, res *Result, p *Placement) (*ChannelRouting, error) {
	return route.Build(c, res.Labels, p)
}
