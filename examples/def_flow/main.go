// def_flow: the physical-design interchange round trip. Generates a
// benchmark, writes it as a placed DEF design plus a LEF cell library
// (the format the paper's benchmark suite uses), reads both back, verifies
// the recovered netlist is equivalent, and partitions it.
//
// This is the flow a user with their own routed SFQ design follows:
// their DEF/LEF in, a ground-plane assignment out.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gpp"
	"gpp/internal/cellib"
	"gpp/internal/def"
	"gpp/internal/lef"
)

func main() {
	dir, err := os.MkdirTemp("", "gpp-def-flow")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	lib := cellib.Default()
	original, err := gpp.Benchmark("MULT4")
	if err != nil {
		log.Fatal(err)
	}

	// Write LEF (cell library: geometry + bias properties) and DEF
	// (placed components + nets).
	lefPath := filepath.Join(dir, "cells.lef")
	defPath := filepath.Join(dir, "mult4.def")
	lf, err := os.Create(lefPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := lef.Write(lf, lib); err != nil {
		log.Fatal(err)
	}
	lf.Close()
	df, err := os.Create(defPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := def.Write(df, original, lib); err != nil {
		log.Fatal(err)
	}
	df.Close()
	fmt.Printf("wrote %s and %s\n", defPath, lefPath)

	// Read back: LEF → library, DEF + library → netlist.
	lf2, err := os.Open(lefPath)
	if err != nil {
		log.Fatal(err)
	}
	macros, err := lef.Parse(lf2)
	lf2.Close()
	if err != nil {
		log.Fatal(err)
	}
	parsedLib, err := lef.ToLibrary("parsed", macros)
	if err != nil {
		log.Fatal(err)
	}
	df2, err := os.Open(defPath)
	if err != nil {
		log.Fatal(err)
	}
	design, err := def.Parse(df2)
	df2.Close()
	if err != nil {
		log.Fatal(err)
	}
	recovered, err := def.ToCircuit(design, parsedLib)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("original:  %d gates, %d connections, %.2f mA, %.4f mm²\n",
		original.NumGates(), original.NumEdges(), original.TotalBias(), original.TotalArea())
	fmt.Printf("recovered: %d gates, %d connections, %.2f mA, %.4f mm²\n",
		recovered.NumGates(), recovered.NumEdges(), recovered.TotalBias(), recovered.TotalArea())
	if recovered.NumGates() != original.NumGates() || recovered.NumEdges() != original.NumEdges() {
		log.Fatal("round trip lost gates or connections")
	}

	res, err := gpp.Partition(recovered, 5, gpp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned recovered netlist: d≤1 = %.1f%%, I_comp = %.2f%%, A_FS = %.2f%%\n",
		res.Metrics.DistLEPct(1), res.Metrics.ICompPct, res.Metrics.AFreePct)
}
