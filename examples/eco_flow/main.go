// eco_flow: engineering-change-order repartitioning. A partitioned design
// is already being laid out when a late fix adds a handful of cells;
// rerunning the whole gradient descent would reshuffle gates across
// planes and invalidate the layout. ExtendPartition instead keeps the
// existing assignment, places the new cells optimally, and only cleans up
// locally — compare how many gates each approach moves.
package main

import (
	"fmt"
	"log"

	"gpp"
)

func main() {
	circuit, err := gpp.Benchmark("KSA16")
	if err != nil {
		log.Fatal(err)
	}
	const k = 5
	base, err := gpp.Partition(circuit, k, gpp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base design: %d gates on %d planes, d≤1 %.1f%%, I_comp %.2f%%\n",
		circuit.NumGates(), k, base.Metrics.DistLEPct(1), base.Metrics.ICompPct)

	// The ECO: splice a 12-stage DFF monitoring chain onto gate 0.
	grown := circuit.Clone()
	lib := gpp.DefaultLibrary()
	dff, _ := lib.ByName("DFFT")
	prev := gpp.GateID(0)
	const added = 12
	for i := 0; i < added; i++ {
		id := gpp.GateID(len(grown.Gates))
		grown.Gates = append(grown.Gates, gpp.Gate{
			ID: id, Name: fmt.Sprintf("eco_mon%d", i), Cell: "DFFT",
			Bias: dff.Bias, Area: dff.Area(),
		})
		grown.Edges = append(grown.Edges, gpp.Edge{From: prev, To: id})
		prev = id
	}
	fmt.Printf("ECO: +%d cells (%d total)\n\n", added, grown.NumGates())

	// Incremental: keep the old assignment.
	labels, adjusted, err := gpp.ExtendPartition(grown, k, base.Labels)
	if err != nil {
		log.Fatal(err)
	}
	mInc, err := gpp.Evaluate(grown, k, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental: d≤1 %.1f%%, I_comp %.2f%% — %d old gates moved\n",
		mInc.DistLEPct(1), mInc.ICompPct, adjusted)

	// Full re-solve: best quality, zero stability guarantees. (A different
	// seed stands in for any real-world perturbation — rerun on another
	// machine, changed iteration order, tool upgrade.)
	full, err := gpp.Partition(grown, k, gpp.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	moved := 0
	for i := 0; i < circuit.NumGates(); i++ {
		if full.Labels[i] != base.Labels[i] {
			moved++
		}
	}
	fmt.Printf("full re-solve: d≤1 %.1f%%, I_comp %.2f%% — %d old gates moved (%.0f%% of the design)\n",
		full.Metrics.DistLEPct(1), full.Metrics.ICompPct, moved,
		100*float64(moved)/float64(circuit.NumGates()))

	fmt.Println("\nreading: the incremental flow trades a little balance for near-total")
	fmt.Println("placement stability — the property a physical design team actually needs")
	fmt.Println("after tapeout-week netlist edits.")
}
