// Quickstart: partition an SFQ benchmark circuit into 5 serially-biased
// ground planes and print the paper's quality metrics.
package main

import (
	"fmt"
	"log"

	"gpp"
)

func main() {
	// Generate an 8-bit Kogge-Stone adder, SFQ-mapped (splitter trees and
	// clock network included) — one of the paper's benchmark circuits.
	circuit, err := gpp.Benchmark("KSA8")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d gates, %d connections, %.1f mA total bias\n",
		circuit.Name, circuit.NumGates(), circuit.NumEdges(), circuit.TotalBias())

	// Partition into K = 5 ground planes with the paper's gradient-descent
	// algorithm (default coefficients, seeded and deterministic).
	res, err := gpp.Partition(circuit, 5, gpp.Options{})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("partitioned into %d planes (%d iterations)\n", res.K, res.Iters)
	fmt.Printf("  connections within a plane or to an adjacent plane: %.1f%%\n", m.DistLEPct(1))
	fmt.Printf("  connections within distance 2:                     %.1f%%\n", m.DistLEPct(2))
	fmt.Printf("  supply current B_max: %.2f mA (vs %.2f mA unpartitioned)\n", m.BMax, m.TotalBias)
	fmt.Printf("  bias compensation I_comp: %.2f%%   free area A_FS: %.2f%%\n", m.ICompPct, m.AFreePct)

	for k := 0; k < res.K; k++ {
		fmt.Printf("  plane %d: %8.2f mA, %.4f mm²\n", k+1, m.PlaneBias[k], m.PlaneArea[k])
	}
}
