// custom_library: using the partitioner with your own SFQ process. Builds
// a custom cell library (different bias currents, geometry, and delays
// than the built-in one), constructs a netlist against it with the
// builder, and runs the full partition → recycle flow. This is the path
// for users whose foundry PDK differs from the bundled MIT-LL-class
// library.
package main

import (
	"fmt"
	"log"

	"gpp"
	"gpp/internal/cellib"
	"gpp/internal/netlist"
	"gpp/internal/partition"
	"gpp/internal/recycle"
)

func main() {
	// A minimal custom library: an aggressive low-bias process.
	lib, err := cellib.NewLibrary("custom-lowpower", []cellib.Cell{
		{Name: "CAND", Kind: cellib.KindAND, JJs: 9, Bias: 0.60, DelayPS: 12, TilesW: 2, TilesH: 2, Inputs: 2, Outputs: 1, Clocked: true},
		{Name: "CXOR", Kind: cellib.KindXOR, JJs: 9, Bias: 0.70, DelayPS: 13, TilesW: 2, TilesH: 2, Inputs: 2, Outputs: 1, Clocked: true},
		{Name: "CDFF", Kind: cellib.KindDFF, JJs: 5, Bias: 0.35, DelayPS: 8, TilesW: 2, TilesH: 1, Inputs: 1, Outputs: 1, Clocked: true},
		{Name: "CSPL", Kind: cellib.KindSplit, JJs: 3, Bias: 0.25, DelayPS: 6, TilesW: 1, TilesH: 1, Inputs: 1, Outputs: 2},
		{Name: "CCLK", Kind: cellib.KindClkSplit, JJs: 3, Bias: 0.25, DelayPS: 6, TilesW: 1, TilesH: 1, Inputs: 1, Outputs: 2},
		{Name: "CIN", Kind: cellib.KindDCSFQ, JJs: 4, Bias: 0.45, DelayPS: 7, TilesW: 2, TilesH: 1, Inputs: 1, Outputs: 1},
		{Name: "COUT", Kind: cellib.KindSFQDC, JJs: 6, Bias: 0.80, DelayPS: 7, TilesW: 2, TilesH: 2, Inputs: 1, Outputs: 1},
		{Name: "CDRV", Kind: cellib.KindDriver, JJs: 4, Bias: 0.10, DelayPS: 9, TilesW: 1, TilesH: 1, Inputs: 1, Outputs: 1},
		{Name: "CRCV", Kind: cellib.KindReceiver, JJs: 4, Bias: 0.10, DelayPS: 9, TilesW: 1, TilesH: 1, Inputs: 1, Outputs: 1},
		{Name: "CDMY", Kind: cellib.KindDummy, JJs: 2, Bias: 0.50, TilesW: 1, TilesH: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom library %q: %d cells\n", lib.Name(), lib.Len())

	// Hand-build a 4-stage shift-register-with-parity netlist against it:
	// in → DFF chain, each stage tapped via splitter into a XOR parity
	// tree.
	b := netlist.NewBuilder("parity_shifter", lib)
	in := b.AddCell("in", cellib.KindDCSFQ)
	prev := in
	var taps []netlist.GateID
	const stages = 12
	for i := 0; i < stages; i++ {
		ff := b.AddCell(fmt.Sprintf("ff%d", i), cellib.KindDFF)
		b.Connect(prev, ff)
		sp := b.AddCell(fmt.Sprintf("sp%d", i), cellib.KindSplit)
		b.Connect(ff, sp)
		taps = append(taps, sp)
		prev = sp
	}
	// Parity tree over the taps.
	level := taps
	x := 0
	for len(level) > 1 {
		var next []netlist.GateID
		for i := 0; i+1 < len(level); i += 2 {
			g := b.AddCell(fmt.Sprintf("x%d", x), cellib.KindXOR)
			x++
			b.Connect(level[i], g)
			b.Connect(level[i+1], g)
			next = append(next, g)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	out := b.AddCell("out", cellib.KindSFQDC)
	b.Connect(level[0], out)
	tail := b.AddCell("tail", cellib.KindSFQDC)
	b.Connect(prev, tail)
	circuit, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist %s: %d cells, %d connections, %.2f mA total\n",
		circuit.Name, circuit.NumGates(), circuit.NumEdges(), circuit.TotalBias())

	// Partition and plan recycling with the custom cells (the plan's
	// couplers and dummies come from this library, not the default one).
	const k = 3
	p, err := partition.FromCircuit(circuit, k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := recycle.BuildPlan(circuit, p, res.Labels, recycle.PlanOptions{Library: lib})
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned into %d planes: d≤1 %.1f%%, B_max %.2f mA, I_comp %.2f%%\n",
		k, m.DistLEPct(1), m.BMax, m.ICompPct)
	fmt.Printf("recycling plan: %.2f mA supply (vs %.2f mA parallel), %d coupler pairs from %s cells\n",
		plan.SupplyCurrent, m.TotalBias, len(plan.Hops), lib.Name())

	_ = gpp.BenchmarkNames // the facade remains available alongside custom flows
}
