// suite_report: the batch workflow — partition the entire benchmark suite,
// render a combined quality report, and drop per-circuit artifacts
// (assignment CSV, layout SVG, bias-stack SVG) into a report directory.
// This is the "run everything overnight, review in the morning" flow.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"gpp"
	"gpp/internal/report"
)

func main() {
	dir := "gpp-report"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	tab := &report.Table{
		Title:   "Benchmark suite at K = 5",
		Columns: []string{"Circuit", "Gates", "d<=1", "Icomp%", "AFS%", "supply(mA)", "f-ratio"},
	}
	// A small subset keeps the example quick; pass more names for the
	// full overnight run.
	for _, name := range []string{"KSA4", "KSA8", "MULT4", "ID4"} {
		circuit, err := gpp.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := gpp.Partition(circuit, 5, gpp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if issues := gpp.Verify(circuit, res, 0); len(issues) > 0 {
			log.Fatalf("%s failed verification: %v", name, issues)
		}
		plan, err := gpp.PlanRecycling(circuit, res)
		if err != nil {
			log.Fatal(err)
		}
		pen, err := gpp.TimingImpact(circuit, res)
		if err != nil {
			log.Fatal(err)
		}
		layout, err := gpp.Place(circuit, res)
		if err != nil {
			log.Fatal(err)
		}

		base := filepath.Join(dir, strings.ToLower(name))
		if err := writeFile(base+"_layout.svg", func(f *os.File) error {
			return gpp.WriteLayoutSVG(f, layout)
		}); err != nil {
			log.Fatal(err)
		}
		if err := writeFile(base+"_stack.svg", func(f *os.File) error {
			return gpp.WriteStackSVG(f, plan)
		}); err != nil {
			log.Fatal(err)
		}

		m := res.Metrics
		tab.MustAddRow(name, fmt.Sprint(circuit.NumGates()),
			report.Pct(m.DistLEPct(1)), report.F(m.ICompPct, 2), report.F(m.AFreePct, 2),
			report.F(plan.SupplyCurrent, 1), report.F(pen.FreqRatio, 3))
	}

	if err := tab.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(filepath.Join(dir, "summary.csv"), func(f *os.File) error {
		return tab.WriteCSV(f)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nartifacts written to %s/ (SVGs + summary.csv)\n", dir)
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
