// current_limit: a bias pad on a typical superconducting chip sustains at
// most ~100 mA (the paper's Table III constraint). This example finds, for
// a circuit whose total bias far exceeds that, the smallest number of
// ground planes K whose partition keeps every plane under the pad limit —
// starting from the theoretical lower bound K_LB = ⌈B_cir/limit⌉ and
// searching upward because partition imbalance makes the bound optimistic.
package main

import (
	"fmt"
	"log"

	"gpp"
)

func main() {
	circuit, err := gpp.Benchmark("C432")
	if err != nil {
		log.Fatal(err)
	}
	const limitMA = 100.0

	klb, err := gpp.MinimumPlanes(circuit, limitMA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s needs %.2f mA total; a %.0f mA pad limit gives K_LB = %d\n",
		circuit.Name, circuit.TotalBias(), limitMA, klb)

	for k := klb; ; k++ {
		res, err := gpp.Partition(circuit, k, gpp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		ok := m.BMax <= limitMA
		status := "over the limit, trying K+1"
		if ok {
			status = "fits!"
		}
		fmt.Printf("  K=%2d: B_max = %6.2f mA, I_comp = %5.2f%%, d≤⌊K/2⌋ = %.1f%%  → %s\n",
			k, m.BMax, m.ICompPct, m.HalfKDistPct(), status)
		if ok {
			fmt.Printf("\nresult: K_res = %d (vs lower bound %d); a single 100 mA pad now powers a %.2f mA circuit\n",
				k, klb, m.TotalBias)
			fmt.Printf("without recycling this chip would need %d bias pads\n", klb)
			break
		}
		if k > 4*klb+16 {
			log.Fatalf("no feasible K found below %d", k)
		}
	}
}
