// ksa_recycling: partition a 16-bit Kogge-Stone adder and build the full
// current-recycling realization — the serial bias stack of Fig. 1 of the
// paper, with inductive coupler chains for inter-plane connections and
// dummy structures equalizing the per-plane current draw.
package main

import (
	"fmt"
	"log"
	"strings"

	"gpp"
)

func main() {
	circuit, err := gpp.Benchmark("KSA16")
	if err != nil {
		log.Fatal(err)
	}
	const k = 5
	res, err := gpp.Partition(circuit, k, gpp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := gpp.PlanRecycling(circuit, res)
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("current recycling plan for %s, K = %d\n\n", circuit.Name, k)
	fmt.Printf("external supply: %.2f mA (one feed, recycled through all planes)\n", plan.SupplyCurrent)
	fmt.Printf("parallel biasing would need: %.2f mA — saving %.2f mA (%.1fx)\n",
		res.Metrics.TotalBias, plan.SavedCurrent(), res.Metrics.TotalBias/plan.SupplyCurrent)
	fmt.Printf("bias stack voltage: %.1f mV (%d planes × %.1f mV)\n\n",
		plan.StackVoltage()*1000, k, plan.BiasBusVoltage*1000)

	// Fig. 1 analog: the serial stack, top plane fed first.
	fmt.Println("        supply")
	fmt.Println("          |")
	for i := range plan.Planes {
		ps := plan.Planes[i]
		bar := strings.Repeat("#", int(ps.Bias/plan.SupplyCurrent*40))
		fmt.Printf("  GP%-2d [%-40s] logic %7.2f mA + couplers %6.2f mA + dummy %6.2f mA\n",
			ps.Plane+1, bar, ps.Bias, ps.OverheadBias, ps.DummyBias)
		if i < len(plan.Planes)-1 {
			fmt.Println("          |  (ground return feeds next plane)")
		}
	}
	fmt.Println("          |")
	fmt.Println("        ground")

	crossings, pairs := res.Metrics.CrossingCount()
	fmt.Printf("\ninter-plane signalling: %d crossing connections, %d driver/receiver pairs\n", crossings, pairs)
	fmt.Printf("worst coupler chain: %d hops (non-adjacent planes need chained couplers)\n", plan.MaxHopsPerConnection)
	for hops, n := range plan.ChainLengths() {
		fmt.Printf("  %d-hop chains: %d\n", hops, n)
	}
	if b, n := plan.BusiestBoundary(); b >= 0 {
		fmt.Printf("busiest plane boundary: GP%d/GP%d with %d hops\n", b+1, b+2, n)
	}
	fmt.Printf("overhead: %.4f mm² couplers, %.4f mm² dummies (%d cells)\n",
		plan.TotalCouplerArea, plan.TotalDummyArea, dummies(plan))
}

func dummies(p *gpp.Plan) int {
	n := 0
	for _, ps := range p.Planes {
		n += ps.DummyCells
	}
	return n
}
