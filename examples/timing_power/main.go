// timing_power: quantifies the two physical consequences of ground plane
// partitioning the paper discusses qualitatively — the operating-frequency
// penalty of chained inductive couplers (Section III-B.3) and the supply
// economics that motivate current recycling in the first place (Sections
// I–II). Sweeps K on a 16-bit Kogge-Stone adder.
package main

import (
	"fmt"
	"log"

	"gpp"
)

func main() {
	circuit, err := gpp.Benchmark("KSA16")
	if err != nil {
		log.Fatal(err)
	}
	base, err := gpp.AnalyzeTiming(circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s unpartitioned: %d pipeline stages, critical stage %.1f ps → f_max %.1f GHz\n\n",
		circuit.Name, base.Stages, base.CriticalStagePS, base.MaxFreqGHz)

	fmt.Println(" K   f_max    ratio   crossings   supply     I-reduction   lead-loss÷   bias pads")
	for _, k := range []int{2, 3, 5, 8} {
		res, err := gpp.Partition(circuit, k, gpp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		pen, err := gpp.TimingImpact(circuit, res)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := gpp.PlanRecycling(circuit, res)
		if err != nil {
			log.Fatal(err)
		}
		pw, err := gpp.PowerImpact(circuit, plan)
		if err != nil {
			log.Fatal(err)
		}
		// Bias pads at a 100 mA pad limit, before vs after recycling.
		before, err := gpp.MinimumPlanes(circuit, 100)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d   %5.1f GHz  %.2f   %6d    %7.1f mA   %.2fx         %.1fx        %d → 1\n",
			k, pen.Partitioned.MaxFreqGHz, pen.FreqRatio,
			pen.Partitioned.CouplerCrossings,
			plan.SupplyCurrent, pw.CurrentReduction, pw.LeadLossReduction, before)
	}

	fmt.Println("\nreading: more planes cut the supply current further (the paper's goal)")
	fmt.Println("but each extra plane adds coupler chains to more connections, eroding f_max —")
	fmt.Println("the frequency/current tradeoff behind Table II's rising I_comp and falling d≤1.")
}
