// Package pool provides the deterministic parallelism primitives used by
// the solver engine: worker-count resolution, fixed sharding of index
// ranges, a shard dispatcher for data-parallel kernels, and a bounded,
// cancellable task runner for the restart portfolio.
//
// The central invariant is that the *shard layout* of a kernel depends only
// on the problem size, never on the worker count. Workers execute shards in
// an unspecified order, but every shard writes only shard-private state and
// the per-shard partial results are merged serially in shard-index order.
// Floating-point reductions therefore associate identically for Workers = 1
// and Workers = N, making parallel results bitwise equal to serial ones.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"gpp/internal/obs"
)

// Pool utilization metrics. Counters are bumped once per Run/Map call (not
// per shard execution), so kernels pay two atomic adds per dispatch —
// invisible next to the kernel work itself, and allocation-free.
var (
	mRuns = obs.Default().Counter("gpp_pool_runs_total",
		"shard-kernel dispatches")
	mParallelRuns = obs.Default().Counter("gpp_pool_parallel_runs_total",
		"shard-kernel dispatches that used more than one goroutine")
	mShards = obs.Default().Counter("gpp_pool_shards_total",
		"shards executed across all dispatches")
	mMapTasks = obs.Default().Counter("gpp_pool_map_tasks_total",
		"tasks submitted to the bounded task runner")
)

// Resolve maps an Options-style worker count to an actual one: anything
// ≤ 0 ("auto") becomes runtime.NumCPU(), anything ≥ 1 is used as-is.
// Negative counts are rejected earlier by Options validation; Resolve
// treats them as auto so direct kernel calls stay safe.
func Resolve(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Shards returns how many fixed-size chunks the index range [0, n) splits
// into. The layout is a pure function of n and chunk — never of the worker
// count — which is what makes shard-order merges reproducible.
func Shards(n, chunk int) int {
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = 1
	}
	return (n + chunk - 1) / chunk
}

// ShardRange returns the half-open index range [lo, hi) covered by shard s
// of the [0, n) range split into chunk-sized shards.
func ShardRange(n, chunk, s int) (lo, hi int) {
	if chunk <= 0 {
		chunk = 1
	}
	lo = s * chunk
	hi = lo + chunk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Run executes fn(s) for every shard s in [0, shards). With one worker the
// shards run inline in index order — the serial path, with zero goroutine
// overhead. With more, min(workers, shards) goroutines drain an atomic
// counter; execution order is unspecified, so fn must touch only
// shard-private state and callers merge partials in shard order afterwards.
func Run(workers, shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	mRuns.Inc()
	mShards.Add(int64(shards))
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	mParallelRuns.Inc()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) on at most `workers` goroutines.
// Started items always run to completion; when ctx is cancelled, not-yet-
// started items are skipped and Map reports the context error. When one or
// more calls fail, the error of the lowest index is returned (deterministic
// even though execution order is not). Item errors take precedence over a
// late cancellation.
func Map(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	mMapTasks.Add(int64(n))
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	var skipped atomic.Bool
	run := func(i int) {
		if ctx.Err() != nil {
			skipped.Store(true)
			return
		}
		errs[i] = fn(i)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if skipped.Load() {
		return ctx.Err()
	}
	return nil
}
