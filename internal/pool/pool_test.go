package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Errorf("Resolve(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(-3); got != runtime.NumCPU() {
		t.Errorf("Resolve(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(1); got != 1 {
		t.Errorf("Resolve(1) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d, want 7", got)
	}
}

func TestShardsLayout(t *testing.T) {
	cases := []struct {
		n, chunk, want int
	}{
		{0, 4, 0},
		{-1, 4, 0},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{8, 4, 2},
		{9, 4, 3},
		{10, 0, 10}, // zero chunk degrades to 1
	}
	for _, tc := range cases {
		if got := Shards(tc.n, tc.chunk); got != tc.want {
			t.Errorf("Shards(%d, %d) = %d, want %d", tc.n, tc.chunk, got, tc.want)
		}
	}
}

func TestShardRangesCoverExactly(t *testing.T) {
	for _, n := range []int{1, 3, 4, 5, 17, 100, 1023} {
		for _, chunk := range []int{1, 3, 4, 16, 2000} {
			shards := Shards(n, chunk)
			covered := 0
			prevHi := 0
			for s := 0; s < shards; s++ {
				lo, hi := ShardRange(n, chunk, s)
				if lo != prevHi {
					t.Fatalf("n=%d chunk=%d shard %d: lo %d, want %d (gap/overlap)", n, chunk, s, lo, prevHi)
				}
				if hi < lo || hi > n {
					t.Fatalf("n=%d chunk=%d shard %d: bad range [%d,%d)", n, chunk, s, lo, hi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("n=%d chunk=%d: shards cover %d indices", n, chunk, covered)
			}
		}
	}
}

func TestRunExecutesEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const shards = 37
		var counts [shards]atomic.Int32
		Run(workers, shards, func(s int) { counts[s].Add(1) })
		for s := range counts {
			if got := counts[s].Load(); got != 1 {
				t.Errorf("workers=%d: shard %d ran %d times", workers, s, got)
			}
		}
	}
}

func TestRunSerialInOrder(t *testing.T) {
	var order []int
	Run(1, 5, func(s int) { order = append(order, s) })
	for i, s := range order {
		if s != i {
			t.Fatalf("serial Run out of order: %v", order)
		}
	}
}

func TestRunZeroShards(t *testing.T) {
	Run(4, 0, func(int) { t.Fatal("fn called with zero shards") })
}

func TestMapRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 64} {
		const n = 23
		var counts [n]atomic.Int32
		err := Map(context.Background(), workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Errorf("workers=%d: item %d ran %d times", workers, i, counts[i].Load())
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom-3")
	err := Map(context.Background(), 8, 10, func(i int) error {
		if i == 3 {
			return wantErr
		}
		if i == 7 {
			return errors.New("boom-7")
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want the lowest-index error %v", err, wantErr)
	}
}

func TestMapCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := Map(ctx, 4, 10, func(i int) error {
		ran++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d items ran despite pre-cancelled context", ran)
	}
}

func TestMapMidwayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := Map(ctx, 1, 10, func(i int) error {
		ran.Add(1)
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 3 {
		t.Errorf("ran %d items before serial cancellation took effect, want 3", got)
	}
}

func TestMapZeroItems(t *testing.T) {
	if err := Map(context.Background(), 4, 0, func(int) error { return fmt.Errorf("no") }); err != nil {
		t.Fatal(err)
	}
}
