package pool

import (
	"sync"
	"sync/atomic"

	"gpp/internal/obs"
)

// Persistent-group metrics: groups created and dispatches handed to live
// workers (as opposed to the spawn-per-call Run path).
var (
	mGroups = obs.Default().Counter("gpp_pool_groups_total",
		"persistent worker groups created")
	mGroupDispatches = obs.Default().Counter("gpp_pool_group_dispatches_total",
		"shard-kernel dispatches executed on persistent group workers")
)

// Executor runs a shard kernel: fn(s) for every shard s in [0, shards).
// Implementations must uphold the pool contract — every shard runs exactly
// once, fn touches only shard-private state, and the caller merges partials
// in shard-index order afterwards — so a kernel behaves identically on any
// Executor.
//
// Two implementations exist: Ephemeral (spawn-per-call, for one-shot entry
// points) and *Group (persistent workers, for iteration hot loops).
type Executor interface {
	Run(shards int, fn func(shard int))
}

// Ephemeral returns a one-shot Executor that dispatches through Run with a
// fixed worker count, spawning and joining goroutines on every call. Fine
// for single evaluations; inside an iteration loop use a Group instead.
func Ephemeral(workers int) Executor { return ephemeral(workers) }

type ephemeral int

func (e ephemeral) Run(shards int, fn func(shard int)) { Run(int(e), shards, fn) }

// Group is a persistent worker pool: `workers−1` long-lived goroutines plus
// the dispatching caller, created once and reused for every Run until Close.
// Compared to the spawn-per-call Run path it replaces one goroutine spawn +
// join per worker per dispatch with one buffered-channel send per worker —
// the difference the descent loop's ~5 dispatches per iteration live on.
//
// A dispatch is an epoch: the caller publishes the kernel and shard count,
// resets the shared shard cursor, wakes the workers, then works the cursor
// itself; a barrier (sync.WaitGroup) closes the epoch when every
// participant has drained the cursor. The channel send/receive orders the
// epoch state writes before the workers' reads, and the barrier orders the
// workers' shard writes before the caller's shard-order merge — the same
// happens-before edges the spawn-per-call path got from go/Wait.
//
// Determinism is untouched: the shard layout never depends on the worker
// count (Shards/ShardRange are functions of the problem size only), workers
// race only for *which* shard to run next, and every shard still writes
// only shard-private state. Run is not reentrant — one dispatch at a time,
// from one goroutine (the solver's descent loop is exactly that shape).
//
// A nil or single-worker Group runs shards inline in index order: the
// serial path, with zero goroutine overhead and no goroutines to leak.
type Group struct {
	workers int
	wake    []chan struct{} // one slot per persistent worker (workers−1 of them)
	fn      func(int)       // current epoch's kernel
	shards  int             // current epoch's shard count
	next    atomic.Int64    // shared shard cursor
	barrier sync.WaitGroup  // open participants of the current epoch
	exited  sync.WaitGroup  // worker lifetimes, for a synchronous Close
	closed  bool
}

// NewGroup creates a persistent group of `workers` participants: the caller
// plus workers−1 goroutines parked on their wake channels. workers ≤ 1
// creates a no-goroutine group whose Run is a plain serial loop.
func NewGroup(workers int) *Group {
	g := &Group{workers: workers}
	if workers <= 1 {
		return g
	}
	mGroups.Inc()
	g.wake = make([]chan struct{}, workers-1)
	g.exited.Add(workers - 1)
	for i := range g.wake {
		g.wake[i] = make(chan struct{}, 1)
		go g.worker(i)
	}
	return g
}

// Workers reports the group's participant count (callers size shard batches
// and validation messages off it).
func (g *Group) Workers() int {
	if g == nil {
		return 1
	}
	return g.workers
}

func (g *Group) worker(id int) {
	defer g.exited.Done()
	for range g.wake[id] {
		g.drain()
		g.barrier.Done()
	}
}

// drain claims shards off the epoch cursor until none remain.
func (g *Group) drain() {
	fn, shards := g.fn, g.shards
	for {
		s := int(g.next.Add(1)) - 1
		if s >= shards {
			return
		}
		fn(s)
	}
}

// Run executes fn(s) for every shard s in [0, shards) on the group. With one
// participant (or one shard) the shards run inline in index order — exactly
// the serial Run path. Otherwise min(workers, shards) participants drain the
// shared cursor. Not reentrant; callers dispatch one kernel at a time.
func (g *Group) Run(shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	mRuns.Inc()
	mShards.Add(int64(shards))
	participants := 1
	if g != nil {
		participants = g.workers
	}
	if participants > shards {
		participants = shards
	}
	if participants <= 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	mParallelRuns.Inc()
	mGroupDispatches.Inc()
	g.fn, g.shards = fn, shards
	g.next.Store(0)
	// Wake workers first so they overlap with the caller's own drain; the
	// caller is always a participant, so only participants−1 workers wake.
	g.barrier.Add(participants - 1)
	for i := 0; i < participants-1; i++ {
		g.wake[i] <- struct{}{}
	}
	g.drain()
	g.barrier.Wait()
	g.fn = nil // drop the kernel reference between epochs
}

// Close retires the persistent workers and waits until every goroutine has
// exited, so callers can bound goroutine counts deterministically (the leak
// regression test does exactly that). Closing a nil, serial, or
// already-closed group is a no-op. Close must not race a Run.
func (g *Group) Close() {
	if g == nil || g.workers <= 1 || g.closed {
		return
	}
	g.closed = true
	for _, ch := range g.wake {
		close(ch)
	}
	g.exited.Wait()
}
