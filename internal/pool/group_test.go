package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupRunsEveryShardOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 4, 9} {
		g := NewGroup(workers)
		for _, shards := range []int{0, 1, 2, 3, 7, 64, 257} {
			hits := make([]atomic.Int32, shards)
			g.Run(shards, func(s int) { hits[s].Add(1) })
			for s := range hits {
				if got := hits[s].Load(); got != 1 {
					t.Errorf("workers=%d shards=%d: shard %d ran %d times, want 1",
						workers, shards, s, got)
				}
			}
		}
		g.Close()
	}
}

func TestGroupSerialIsInOrder(t *testing.T) {
	for _, g := range []*Group{nil, NewGroup(0), NewGroup(1)} {
		var order []int
		g.Run(5, func(s int) { order = append(order, s) })
		for s, got := range order {
			if got != s {
				t.Fatalf("serial group ran shards out of order: %v", order)
			}
		}
		if len(order) != 5 {
			t.Fatalf("serial group ran %d shards, want 5", len(order))
		}
		g.Close()
	}
}

// TestGroupSingleShardRunsInline checks that a one-shard dispatch never pays
// for a worker handoff: the caller runs it.
func TestGroupSingleShardRunsInline(t *testing.T) {
	g := NewGroup(4)
	defer g.Close()
	var calls int // not atomic: must be caller-only
	g.Run(1, func(s int) { calls++ })
	if calls != 1 {
		t.Fatalf("single shard ran %d times, want 1", calls)
	}
}

// TestGroupReuse dispatches many kernels through the same group, checking
// the epoch handoff resets cleanly between Runs.
func TestGroupReuse(t *testing.T) {
	g := NewGroup(4)
	defer g.Close()
	var total atomic.Int64
	for ep := 0; ep < 200; ep++ {
		shards := 1 + ep%13
		g.Run(shards, func(s int) { total.Add(int64(s + 1)) })
	}
	var want int64
	for ep := 0; ep < 200; ep++ {
		n := int64(1 + ep%13)
		want += n * (n + 1) / 2
	}
	if got := total.Load(); got != want {
		t.Fatalf("200 reused dispatches summed %d, want %d", got, want)
	}
}

func TestGroupWorkers(t *testing.T) {
	var nilG *Group
	if got := nilG.Workers(); got != 1 {
		t.Errorf("nil group Workers() = %d, want 1", got)
	}
	g := NewGroup(6)
	defer g.Close()
	if got := g.Workers(); got != 6 {
		t.Errorf("Workers() = %d, want 6", got)
	}
}

// TestGroupCloseStopsGoroutines verifies Close is synchronous: after it
// returns, the group's goroutines are gone.
func TestGroupCloseStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	g := NewGroup(8)
	g.Run(64, func(int) {})
	g.Close()
	g.Close() // idempotent
	// NumGoroutine can transiently overshoot from unrelated runtime
	// goroutines; poll briefly rather than demanding instant equality.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close: %d, want ≤ %d (pre-create)",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupRunAfterSerialClose checks the degenerate groups tolerate Close
// then further (serial) use — Close on them is a documented no-op.
func TestGroupSerialCloseNoOp(t *testing.T) {
	g := NewGroup(1)
	g.Close()
	ran := 0
	g.Run(3, func(int) { ran++ })
	if ran != 3 {
		t.Fatalf("serial group after Close ran %d shards, want 3", ran)
	}
	var nilG *Group
	nilG.Close() // must not panic
}

// TestGroupMatchesEphemeral runs the same shard-partial reduction on a
// persistent group and on the spawn-per-call path and requires bitwise
// identical merges — the substitution the solver makes.
func TestGroupMatchesEphemeral(t *testing.T) {
	const shards = 41
	kernel := func(out []float64) func(int) {
		return func(s int) {
			v := 1.0
			for i := 0; i < 50; i++ {
				v = v*1.0000001 + float64(s)/(float64(i)+1)
			}
			out[s] = v
		}
	}
	want := make([]float64, shards)
	Ephemeral(3).Run(shards, kernel(want))
	for _, workers := range []int{1, 2, 5} {
		g := NewGroup(workers)
		got := make([]float64, shards)
		g.Run(shards, kernel(got))
		g.Close()
		for s := range got {
			if got[s] != want[s] {
				t.Fatalf("workers=%d shard %d: group %x != ephemeral %x",
					workers, s, got[s], want[s])
			}
		}
	}
}

func BenchmarkGroupDispatch(b *testing.B) {
	for _, workers := range []int{2, 4} {
		g := NewGroup(workers)
		b.Run(benchName("group", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Run(32, func(int) {})
			}
		})
		g.Close()
	}
	for _, workers := range []int{2, 4} {
		b.Run(benchName("spawn", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Run(workers, 32, func(int) {})
			}
		})
	}
}

func benchName(kind string, workers int) string {
	return kind + "W" + string(rune('0'+workers))
}
