// Package logic is the small gate-level intermediate representation the
// benchmark generators produce and the SFQ technology mapper consumes.
//
// A logic circuit is a DAG of at-most-2-input Boolean gates plus primary
// inputs and outputs. Fanout is unrestricted here; the SFQ mapper
// (internal/sfqmap) later realizes fanout with explicit splitter trees and
// adds the clock distribution network.
package logic

import "fmt"

// Op is a logic gate operation.
type Op int

// Operations. OpInput nodes have no inputs; OpOutput nodes have exactly one
// input and mark primary outputs. All Boolean ops take one or two inputs.
const (
	OpInvalid Op = iota
	OpInput
	OpOutput
	OpAnd
	OpOr
	OpXor
	OpNot
	OpNand
	OpNor
	OpXnor
	OpAndNot // a AND (NOT b)
	OpBuf    // single-input buffer (used for repeaters)
	OpDelay  // single-input clocked delay (maps to a DFF; used by path balancing)
)

var opNames = map[Op]string{
	OpInvalid: "INVALID",
	OpInput:   "INPUT",
	OpOutput:  "OUTPUT",
	OpAnd:     "AND",
	OpOr:      "OR",
	OpXor:     "XOR",
	OpNot:     "NOT",
	OpNand:    "NAND",
	OpNor:     "NOR",
	OpXnor:    "XNOR",
	OpAndNot:  "ANDNOT",
	OpBuf:     "BUF",
	OpDelay:   "DELAY",
}

// String returns the operation mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", int(o))
}

// Arity returns the input count the operation requires.
func (o Op) Arity() int {
	switch o {
	case OpInput:
		return 0
	case OpOutput, OpNot, OpBuf, OpDelay:
		return 1
	case OpAnd, OpOr, OpXor, OpNand, OpNor, OpXnor, OpAndNot:
		return 2
	default:
		return -1
	}
}

// NodeID indexes a node within one Circuit.
type NodeID int

// Node is one logic gate, primary input, or primary output.
type Node struct {
	ID   NodeID
	Op   Op
	Name string // optional; inputs/outputs get meaningful names
	Ins  []NodeID
}

// Circuit is a gate-level logic netlist.
type Circuit struct {
	Name  string
	Nodes []Node
}

// NumNodes returns the node count.
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// Inputs returns the IDs of all primary inputs, in ID order.
func (c *Circuit) Inputs() []NodeID {
	var out []NodeID
	for _, n := range c.Nodes {
		if n.Op == OpInput {
			out = append(out, n.ID)
		}
	}
	return out
}

// Outputs returns the IDs of all primary output markers, in ID order.
func (c *Circuit) Outputs() []NodeID {
	var out []NodeID
	for _, n := range c.Nodes {
		if n.Op == OpOutput {
			out = append(out, n.ID)
		}
	}
	return out
}

// Fanouts returns, for each node, the IDs of nodes that consume its value
// (each consumption counted once per input pin).
func (c *Circuit) Fanouts() [][]NodeID {
	fo := make([][]NodeID, len(c.Nodes))
	for _, n := range c.Nodes {
		for _, in := range n.Ins {
			fo[in] = append(fo[in], n.ID)
		}
	}
	return fo
}

// Validate checks structural invariants: dense IDs, correct arities,
// forward-only references (nodes may only use lower-numbered nodes, which
// guarantees acyclicity), and outputs driven by non-output nodes.
func (c *Circuit) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("logic: circuit has empty name")
	}
	for i, n := range c.Nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("logic: node at index %d has ID %d", i, n.ID)
		}
		want := n.Op.Arity()
		if want < 0 {
			return fmt.Errorf("logic: node %d has invalid op %v", i, n.Op)
		}
		if len(n.Ins) != want {
			return fmt.Errorf("logic: node %d (%v) has %d inputs, wants %d", i, n.Op, len(n.Ins), want)
		}
		for _, in := range n.Ins {
			if in < 0 || in >= NodeID(i) {
				return fmt.Errorf("logic: node %d references node %d (must be < %d)", i, in, i)
			}
			if c.Nodes[in].Op == OpOutput {
				return fmt.Errorf("logic: node %d consumes output marker %d", i, in)
			}
		}
	}
	return nil
}

// Eval evaluates the circuit on the given input assignment (keyed by input
// node ID) and returns the value at every node. Output markers take their
// driver's value.
func (c *Circuit) Eval(inputs map[NodeID]bool) ([]bool, error) {
	vals := make([]bool, len(c.Nodes))
	for _, n := range c.Nodes {
		switch n.Op {
		case OpInput:
			v, ok := inputs[n.ID]
			if !ok {
				return nil, fmt.Errorf("logic: no value for input %d (%s)", n.ID, n.Name)
			}
			vals[n.ID] = v
		case OpOutput, OpBuf, OpDelay:
			vals[n.ID] = vals[n.Ins[0]]
		case OpNot:
			vals[n.ID] = !vals[n.Ins[0]]
		case OpAnd:
			vals[n.ID] = vals[n.Ins[0]] && vals[n.Ins[1]]
		case OpOr:
			vals[n.ID] = vals[n.Ins[0]] || vals[n.Ins[1]]
		case OpXor:
			vals[n.ID] = vals[n.Ins[0]] != vals[n.Ins[1]]
		case OpNand:
			vals[n.ID] = !(vals[n.Ins[0]] && vals[n.Ins[1]])
		case OpNor:
			vals[n.ID] = !(vals[n.Ins[0]] || vals[n.Ins[1]])
		case OpXnor:
			vals[n.ID] = vals[n.Ins[0]] == vals[n.Ins[1]]
		case OpAndNot:
			vals[n.ID] = vals[n.Ins[0]] && !vals[n.Ins[1]]
		default:
			return nil, fmt.Errorf("logic: cannot evaluate op %v", n.Op)
		}
	}
	return vals, nil
}

// Builder constructs a Circuit with convenience constructors per operation.
type Builder struct {
	name  string
	nodes []Node
}

// NewBuilder starts a circuit.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

func (b *Builder) add(op Op, name string, ins ...NodeID) NodeID {
	id := NodeID(len(b.nodes))
	in := make([]NodeID, len(ins))
	copy(in, ins)
	b.nodes = append(b.nodes, Node{ID: id, Op: op, Name: name, Ins: in})
	return id
}

// Input adds a named primary input.
func (b *Builder) Input(name string) NodeID { return b.add(OpInput, name) }

// Output marks a node as driving a named primary output.
func (b *Builder) Output(name string, src NodeID) NodeID { return b.add(OpOutput, name, src) }

// And adds an AND gate.
func (b *Builder) And(x, y NodeID) NodeID { return b.add(OpAnd, "", x, y) }

// Or adds an OR gate.
func (b *Builder) Or(x, y NodeID) NodeID { return b.add(OpOr, "", x, y) }

// Xor adds an XOR gate.
func (b *Builder) Xor(x, y NodeID) NodeID { return b.add(OpXor, "", x, y) }

// Not adds an inverter.
func (b *Builder) Not(x NodeID) NodeID { return b.add(OpNot, "", x) }

// Nand adds a NAND gate.
func (b *Builder) Nand(x, y NodeID) NodeID { return b.add(OpNand, "", x, y) }

// Nor adds a NOR gate.
func (b *Builder) Nor(x, y NodeID) NodeID { return b.add(OpNor, "", x, y) }

// Xnor adds an XNOR gate.
func (b *Builder) Xnor(x, y NodeID) NodeID { return b.add(OpXnor, "", x, y) }

// AndNot adds an x AND (NOT y) gate.
func (b *Builder) AndNot(x, y NodeID) NodeID { return b.add(OpAndNot, "", x, y) }

// Buf adds a buffer.
func (b *Builder) Buf(x NodeID) NodeID { return b.add(OpBuf, "", x) }

// Delay adds a clocked delay element (DFF).
func (b *Builder) Delay(x NodeID) NodeID { return b.add(OpDelay, "", x) }

// Build finalizes and validates the circuit.
func (b *Builder) Build() (*Circuit, error) {
	c := &Circuit{Name: b.name, Nodes: b.nodes}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustBuild finalizes the circuit, panicking on structural errors (used by
// the fixed-shape generators, where an error is a bug).
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic("logic: MustBuild: " + err.Error())
	}
	return c
}
