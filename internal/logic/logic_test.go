package logic

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpArity(t *testing.T) {
	cases := map[Op]int{
		OpInput: 0, OpOutput: 1, OpNot: 1, OpBuf: 1,
		OpAnd: 2, OpOr: 2, OpXor: 2, OpNand: 2, OpNor: 2, OpXnor: 2, OpAndNot: 2,
		OpInvalid: -1,
	}
	for op, want := range cases {
		if got := op.Arity(); got != want {
			t.Errorf("%v.Arity() = %d, want %d", op, got, want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpAnd.String() != "AND" {
		t.Errorf("OpAnd = %q", OpAnd.String())
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Errorf("unknown op = %q", Op(99).String())
	}
}

// twoInputGates evaluates every 2-input op on all four input combinations.
func TestEvalTruthTables(t *testing.T) {
	type tc struct {
		op Op
		fn func(a, b bool) bool
	}
	cases := []tc{
		{OpAnd, func(a, b bool) bool { return a && b }},
		{OpOr, func(a, b bool) bool { return a || b }},
		{OpXor, func(a, b bool) bool { return a != b }},
		{OpNand, func(a, b bool) bool { return !(a && b) }},
		{OpNor, func(a, b bool) bool { return !(a || b) }},
		{OpXnor, func(a, b bool) bool { return a == b }},
		{OpAndNot, func(a, b bool) bool { return a && !b }},
	}
	for _, c := range cases {
		b := NewBuilder("tt")
		x := b.Input("x")
		y := b.Input("y")
		var g NodeID
		switch c.op {
		case OpAnd:
			g = b.And(x, y)
		case OpOr:
			g = b.Or(x, y)
		case OpXor:
			g = b.Xor(x, y)
		case OpNand:
			g = b.Nand(x, y)
		case OpNor:
			g = b.Nor(x, y)
		case OpXnor:
			g = b.Xnor(x, y)
		case OpAndNot:
			g = b.AndNot(x, y)
		}
		out := b.Output("z", g)
		circ := b.MustBuild()
		for _, a := range []bool{false, true} {
			for _, bb := range []bool{false, true} {
				vals, err := circ.Eval(map[NodeID]bool{x: a, y: bb})
				if err != nil {
					t.Fatal(err)
				}
				if vals[out] != c.fn(a, bb) {
					t.Errorf("%v(%v,%v) = %v, want %v", c.op, a, bb, vals[out], c.fn(a, bb))
				}
			}
		}
	}
}

func TestEvalUnary(t *testing.T) {
	b := NewBuilder("u")
	x := b.Input("x")
	n := b.Not(x)
	bf := b.Buf(x)
	on := b.Output("n", n)
	ob := b.Output("b", bf)
	circ := b.MustBuild()
	vals, err := circ.Eval(map[NodeID]bool{x: true})
	if err != nil {
		t.Fatal(err)
	}
	if vals[on] != false || vals[ob] != true {
		t.Errorf("NOT(true)=%v BUF(true)=%v", vals[on], vals[ob])
	}
}

func TestEvalMissingInput(t *testing.T) {
	b := NewBuilder("m")
	x := b.Input("x")
	b.Output("y", x)
	circ := b.MustBuild()
	if _, err := circ.Eval(map[NodeID]bool{}); err == nil {
		t.Error("Eval without input value should fail")
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("forward reference", func(t *testing.T) {
		c := &Circuit{Name: "f", Nodes: []Node{
			{ID: 0, Op: OpNot, Ins: []NodeID{1}},
			{ID: 1, Op: OpInput},
		}}
		if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "must be <") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("consuming output marker", func(t *testing.T) {
		c := &Circuit{Name: "o", Nodes: []Node{
			{ID: 0, Op: OpInput},
			{ID: 1, Op: OpOutput, Ins: []NodeID{0}},
			{ID: 2, Op: OpNot, Ins: []NodeID{1}},
		}}
		if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "output marker") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("wrong arity", func(t *testing.T) {
		c := &Circuit{Name: "a", Nodes: []Node{
			{ID: 0, Op: OpInput},
			{ID: 1, Op: OpAnd, Ins: []NodeID{0}},
		}}
		if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "wants 2") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad IDs", func(t *testing.T) {
		c := &Circuit{Name: "i", Nodes: []Node{{ID: 3, Op: OpInput}}}
		if err := c.Validate(); err == nil {
			t.Error("dense-ID violation not caught")
		}
	})
	t.Run("empty name", func(t *testing.T) {
		c := &Circuit{Nodes: []Node{{ID: 0, Op: OpInput}}}
		if err := c.Validate(); err == nil {
			t.Error("empty circuit name not caught")
		}
	})
	t.Run("invalid op", func(t *testing.T) {
		c := &Circuit{Name: "x", Nodes: []Node{{ID: 0, Op: Op(55)}}}
		if err := c.Validate(); err == nil {
			t.Error("invalid op not caught")
		}
	})
}

func TestInputsOutputsFanouts(t *testing.T) {
	b := NewBuilder("io")
	x := b.Input("x")
	y := b.Input("y")
	g := b.And(x, y)
	b.Output("o1", g)
	b.Output("o2", g)
	c := b.MustBuild()
	if ins := c.Inputs(); len(ins) != 2 || ins[0] != x || ins[1] != y {
		t.Errorf("Inputs = %v", ins)
	}
	if outs := c.Outputs(); len(outs) != 2 {
		t.Errorf("Outputs = %v", outs)
	}
	fo := c.Fanouts()
	if len(fo[g]) != 2 {
		t.Errorf("fanout of AND = %v, want 2 consumers", fo[g])
	}
	if len(fo[x]) != 1 {
		t.Errorf("fanout of x = %v", fo[x])
	}
}

// Property: builder circuits always validate and Eval never errors when all
// inputs are supplied.
func TestBuilderCircuitsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		b := NewBuilder("prop")
		x := b.Input("x")
		y := b.Input("y")
		nodes := []NodeID{x, y}
		s := seed
		for i := 0; i < 20; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			a := nodes[int(uint64(s)>>33)%len(nodes)]
			s = s*6364136223846793005 + 1442695040888963407
			bb := nodes[int(uint64(s)>>33)%len(nodes)]
			switch uint64(s) % 4 {
			case 0:
				nodes = append(nodes, b.And(a, bb))
			case 1:
				nodes = append(nodes, b.Or(a, bb))
			case 2:
				nodes = append(nodes, b.Xor(a, bb))
			case 3:
				nodes = append(nodes, b.Not(a))
			}
		}
		b.Output("z", nodes[len(nodes)-1])
		c, err := b.Build()
		if err != nil {
			return false
		}
		_, err = c.Eval(map[NodeID]bool{x: true, y: false})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
