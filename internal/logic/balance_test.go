package logic

import (
	"testing"
)

// unbalanced: a ⊕ (b ∧ c) — the XOR's inputs arrive at depths 0 and 1.
func unbalanced(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("ub")
	a := b.Input("a")
	bb := b.Input("b")
	cc := b.Input("c")
	and := b.And(bb, cc)
	x := b.Xor(a, and)
	b.Output("z", x)
	return b.MustBuild()
}

func TestPathBalanceInsertsDelays(t *testing.T) {
	c := unbalanced(t)
	if IsPathBalanced(c) {
		t.Fatal("fixture should be unbalanced")
	}
	bal, inserted, err := PathBalance(c)
	if err != nil {
		t.Fatal(err)
	}
	if inserted != 1 {
		t.Errorf("inserted %d delays, want 1 (lift input a to depth 1)", inserted)
	}
	if !IsPathBalanced(bal) {
		t.Error("result not balanced")
	}
	if bal.NumNodes() != c.NumNodes()+1 {
		t.Errorf("node count %d, want %d", bal.NumNodes(), c.NumNodes()+1)
	}
}

func TestPathBalancePreservesFunction(t *testing.T) {
	c := unbalanced(t)
	bal, _, err := PathBalance(c)
	if err != nil {
		t.Fatal(err)
	}
	ins := c.Inputs()
	balIns := bal.Inputs()
	for mask := 0; mask < 8; mask++ {
		orig := map[NodeID]bool{}
		lift := map[NodeID]bool{}
		for i := 0; i < 3; i++ {
			orig[ins[i]] = mask>>i&1 == 1
			lift[balIns[i]] = mask>>i&1 == 1
		}
		v1, err := c.Eval(orig)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := bal.Eval(lift)
		if err != nil {
			t.Fatal(err)
		}
		if v1[c.Outputs()[0]] != v2[bal.Outputs()[0]] {
			t.Fatalf("function changed at input mask %b", mask)
		}
	}
}

func TestPathBalanceIdempotent(t *testing.T) {
	c := unbalanced(t)
	bal, _, err := PathBalance(c)
	if err != nil {
		t.Fatal(err)
	}
	again, inserted, err := PathBalance(bal)
	if err != nil {
		t.Fatal(err)
	}
	if inserted != 0 {
		t.Errorf("second balance inserted %d delays", inserted)
	}
	if again.NumNodes() != bal.NumNodes() {
		t.Errorf("node count changed on re-balance")
	}
}

func TestPathBalanceEqualizesOutputs(t *testing.T) {
	// Two outputs at different depths: a (depth 0) and a∧b (depth 1).
	b := NewBuilder("outs")
	a := b.Input("a")
	bb := b.Input("b")
	g := b.And(a, bb)
	b.Output("shallow", a)
	b.Output("deep", g)
	c := b.MustBuild()
	if IsPathBalanced(c) {
		t.Fatal("fixture should be output-unbalanced")
	}
	bal, inserted, err := PathBalance(c)
	if err != nil {
		t.Fatal(err)
	}
	if inserted == 0 {
		t.Error("no delays inserted for output skew")
	}
	if !IsPathBalanced(bal) {
		t.Error("outputs still unbalanced")
	}
}

func TestPathBalanceAlreadyBalancedUntouched(t *testing.T) {
	b := NewBuilder("bal")
	x := b.Input("x")
	y := b.Input("y")
	g := b.And(x, y)
	b.Output("z", g)
	c := b.MustBuild()
	out, inserted, err := PathBalance(c)
	if err != nil {
		t.Fatal(err)
	}
	if inserted != 0 || out.NumNodes() != c.NumNodes() {
		t.Errorf("balanced circuit modified: %d inserted", inserted)
	}
}

func TestPathBalanceRejectsInvalid(t *testing.T) {
	bad := &Circuit{Name: "bad", Nodes: []Node{{ID: 0, Op: OpAnd, Ins: []NodeID{0, 0}}}}
	if _, _, err := PathBalance(bad); err == nil {
		t.Error("invalid circuit accepted")
	}
}
