package logic

import "fmt"

// PathBalance returns a fully path-balanced copy of the circuit: every
// clocked gate's data inputs arrive with the same pipeline depth, realized
// by inserting OpDelay (DFF) chains on shallow inputs — the standard SFQ
// synthesis step (the paper's SFQ primer, Section II: "most gates are
// clocked implying that a circuit is gate-level pipelined"). Without it, a
// gate whose inputs come from different pipeline depths would combine
// pulses from different logical waves.
//
// Clock-depth convention: every Boolean op is one pipeline stage; inputs,
// outputs, buffers and delays add depth as marked; OpDelay counts as a
// stage itself. Primary outputs are also equalized so every result of a
// wave leaves the circuit on the same clock tick.
//
// Returns the balanced circuit and the number of delay elements inserted.
// A circuit that is already balanced comes back structurally identical
// (zero insertions).
func PathBalance(c *Circuit) (*Circuit, int, error) {
	if err := c.Validate(); err != nil {
		return nil, 0, err
	}
	b := NewBuilder(c.Name)
	newID := make([]NodeID, len(c.Nodes))
	depth := make([]int, len(c.Nodes)) // pipeline depth at each ORIGINAL node's output
	inserted := 0

	// delayTo lifts src (a NEW-circuit node at depth have) to depth want.
	delayTo := func(src NodeID, have, want int) NodeID {
		for ; have < want; have++ {
			src = b.Delay(src)
			inserted++
		}
		return src
	}

	stageOf := func(op Op) int {
		switch op {
		case OpAnd, OpOr, OpXor, OpNot, OpNand, OpNor, OpXnor, OpAndNot, OpDelay:
			return 1
		default:
			return 0
		}
	}

	// First pass over outputs is not needed separately for inner balance;
	// collect output nodes to equalize at the end.
	maxOutDepth := 0
	type outRec struct {
		oldID NodeID
	}
	var outs []outRec

	for _, n := range c.Nodes {
		switch n.Op {
		case OpInput:
			newID[n.ID] = b.Input(n.Name)
			depth[n.ID] = 0
		case OpOutput:
			// Defer: outputs are added last, equalized to the deepest one.
			outs = append(outs, outRec{oldID: n.ID})
			if d := depth[n.Ins[0]]; d > maxOutDepth {
				maxOutDepth = d
			}
		default:
			// Balance the inputs to the max of their depths.
			maxIn := 0
			for _, in := range n.Ins {
				if depth[in] > maxIn {
					maxIn = depth[in]
				}
			}
			lifted := make([]NodeID, len(n.Ins))
			for i, in := range n.Ins {
				lifted[i] = delayTo(newID[in], depth[in], maxIn)
			}
			id := b.add(n.Op, n.Name, lifted...)
			newID[n.ID] = id
			depth[n.ID] = maxIn + stageOf(n.Op)
		}
	}
	for _, o := range outs {
		src := c.Nodes[o.oldID].Ins[0]
		lifted := delayTo(newID[src], depth[src], maxOutDepth)
		b.Output(c.Nodes[o.oldID].Name, lifted)
	}
	out, err := b.Build()
	if err != nil {
		return nil, 0, fmt.Errorf("logic: path balance produced invalid circuit: %w", err)
	}
	return out, inserted, nil
}

// IsPathBalanced reports whether every multi-input Boolean gate's inputs
// share one pipeline depth and all primary outputs leave at one depth.
func IsPathBalanced(c *Circuit) bool {
	depth := make([]int, len(c.Nodes))
	outDepth := -1
	for _, n := range c.Nodes {
		switch n.Op {
		case OpInput:
			depth[n.ID] = 0
		case OpOutput:
			d := depth[n.Ins[0]]
			if outDepth < 0 {
				outDepth = d
			} else if outDepth != d {
				return false
			}
		default:
			maxIn := 0
			for _, in := range n.Ins {
				if depth[in] > maxIn {
					maxIn = depth[in]
				}
			}
			if len(n.Ins) == 2 && depth[n.Ins[0]] != depth[n.Ins[1]] {
				return false
			}
			stage := 0
			switch n.Op {
			case OpAnd, OpOr, OpXor, OpNot, OpNand, OpNor, OpXnor, OpAndNot, OpDelay:
				stage = 1
			}
			depth[n.ID] = maxIn + stage
		}
	}
	return true
}
