// Package terms is the pluggable cost-term registry (DESIGN.md §16): it
// turns the named term specs in partition.Options.Terms into the concrete
// kernel tables the fused descent sweep consumes. A Term never executes in
// the hot loop — Compile runs once per solve and emits precomputed
// per-gate bias scales, per-edge drop/weight tables, and per-plane penalty
// entries (partition.PlaneTerm, dispatched by kind switch), so the
// registry costs the kernels nothing when idle and one table lookup when
// active.
//
// Built-in terms:
//
//   - "f1".."f4" — the paper's four objective terms. Their weights fold
//     into partition.Coeffs during options normalization (partition owns
//     that path); the Term implementations here exist so the registry is
//     complete and compile to no-ops.
//   - "xesfq" — clockless xeSFQ regime (Volk et al.): clock-splitter cells
//     carry no bias (zero static power, no clock tree) and their
//     connections vanish from the wire-crossing objective.
//   - "current_limit" — ERSFQ supply-pad limit (the paper's Table III
//     constraint as a soft term): planes whose bias sum exceeds Param mA
//     (default 100) are penalized quadratically.
//   - "timing_critical" — clock-follow-data regime (Aviles et al.): F1
//     edge crossings are weighted by 1 + Weight·criticality, with
//     criticality the zero-slack score from internal/timing.
package terms

import (
	"fmt"
	"sort"
	"sync"

	"gpp/internal/cellib"
	"gpp/internal/netlist"
	"gpp/internal/partition"
	"gpp/internal/timing"
)

// Compiled is a term's contribution to one problem instance, as pure data
// the problem builder merges: every field is optional (nil = identity).
type Compiled struct {
	// BiasScale multiplies gate i's bias current (0 erases it).
	BiasScale []float64
	// DropEdge removes connection e from the problem entirely (its weight
	// leaves the F1 normalizer too).
	DropEdge []bool
	// EdgeWeightMul multiplies connection e's F1 weight.
	EdgeWeightMul []float64
	// Plane appends per-plane penalty terms evaluated by the kernels.
	Plane []partition.PlaneTerm
}

// Term is one registered cost term. Implementations must be stateless:
// Compile runs once per solve, may depend only on its arguments, and all
// hot-loop state lives in the Compiled tables.
type Term interface {
	// Name is the registry key referenced by partition.TermSpec.Name.
	Name() string
	// Canon validates the spec and fills term-specific defaults; it feeds
	// the options fingerprint, so it must be pure and idempotent.
	Canon(spec partition.TermSpec) (partition.TermSpec, error)
	// Compile translates the canonical spec into kernel tables for one
	// circuit instance.
	Compile(spec partition.TermSpec, c *netlist.Circuit, k int, lib *cellib.Library) (Compiled, error)
}

var reg = struct {
	sync.RWMutex
	terms map[string]Term
}{terms: map[string]Term{}}

// Register adds a term to the registry (replacing any previous holder of
// the name) and registers its name with the partition options validator.
func Register(t Term) {
	partition.RegisterTermName(t.Name(), t.Canon)
	reg.Lock()
	reg.terms[t.Name()] = t
	reg.Unlock()
}

// Lookup returns the registered term for a name.
func Lookup(name string) (Term, bool) {
	reg.RLock()
	t, ok := reg.terms[name]
	reg.RUnlock()
	return t, ok
}

// Names returns every registered term name, sorted.
func Names() []string {
	reg.RLock()
	names := make([]string, 0, len(reg.terms))
	for n := range reg.terms {
		names = append(names, n)
	}
	reg.RUnlock()
	sort.Strings(names)
	return names
}

// BuildProblem compiles the normalized options' term set against a circuit
// and returns the Problem the solver should run plus the normalized
// options. With an empty (or pure f1–f4) term set it returns exactly
// partition.FromCircuit's problem — the historical kernel path, bit for
// bit. With regime terms it rescales biases, drops/reweights edges, and
// attaches the compiled plane-term table. lib nil means cellib.Default().
func BuildProblem(c *netlist.Circuit, k int, opts partition.Options, lib *cellib.Library) (*partition.Problem, partition.Options, error) {
	n, err := opts.NormalizeFor(k)
	if err != nil {
		return nil, partition.Options{}, err
	}
	if len(n.Terms) == 0 {
		p, err := partition.FromCircuit(c, k)
		if err != nil {
			return nil, partition.Options{}, err
		}
		return p, n, nil
	}
	if lib == nil {
		lib = cellib.Default()
	}
	if err := c.Validate(); err != nil {
		return nil, partition.Options{}, err
	}

	// Merge every term's tables. Scales and weight multipliers compose
	// multiplicatively, drops by OR, plane terms by append — term order
	// cannot matter, and normalization already sorted the specs.
	g, ne := c.NumGates(), c.NumEdges()
	biasScale := make([]float64, g)
	for i := range biasScale {
		biasScale[i] = 1
	}
	weightMul := make([]float64, ne)
	for i := range weightMul {
		weightMul[i] = 1
	}
	drop := make([]bool, ne)
	var plane []partition.PlaneTerm
	weighted := false
	dropped := false
	for _, spec := range n.Terms {
		t, ok := Lookup(spec.Name)
		if !ok {
			return nil, partition.Options{}, fmt.Errorf(
				"terms: %q validated but is not registered for compilation (import the package that provides it)", spec.Name)
		}
		comp, err := t.Compile(spec, c, k, lib)
		if err != nil {
			return nil, partition.Options{}, fmt.Errorf("terms: compile %q: %w", spec.Name, err)
		}
		if comp.BiasScale != nil {
			for i, s := range comp.BiasScale {
				biasScale[i] *= s
			}
		}
		if comp.EdgeWeightMul != nil {
			for i, m := range comp.EdgeWeightMul {
				if m != 1 {
					weighted = true
				}
				weightMul[i] *= m
			}
		}
		if comp.DropEdge != nil {
			for i, d := range comp.DropEdge {
				if d {
					drop[i] = true
					dropped = true
				}
			}
		}
		plane = append(plane, comp.Plane...)
	}

	bias := make([]float64, g)
	area := make([]float64, g)
	for i, gate := range c.Gates {
		bias[i] = gate.Bias * biasScale[i]
		area[i] = gate.Area
	}
	edges := make([][2]int, 0, ne)
	var weights []float64
	if weighted {
		weights = make([]float64, 0, ne)
	}
	for i, e := range c.Edges {
		if drop[i] {
			continue
		}
		edges = append(edges, [2]int{int(e.From), int(e.To)})
		if weighted {
			weights = append(weights, weightMul[i])
		}
	}
	var p *partition.Problem
	if dropped || weighted {
		p, err = partition.NewWeightedProblem(c.Name, k, bias, area, edges, weights)
	} else {
		p, err = partition.NewProblem(c.Name, k, bias, area, edges)
	}
	if err != nil {
		return nil, partition.Options{}, err
	}
	p.PlaneTerms = plane
	return p, n, nil
}

func init() {
	// The paper terms: registry completeness only — their weights already
	// folded into Coeffs during normalization, so compilation is identity.
	for _, name := range []string{"f1", "f2", "f3", "f4"} {
		Register(paperTerm(name))
	}
	Register(xesfqTerm{})
	Register(currentLimitTerm{})
	Register(timingCriticalTerm{})
}

// paperTerm is one of f1..f4: canonical weight defaulting, no-op compile.
type paperTerm string

func (t paperTerm) Name() string { return string(t) }

func (t paperTerm) Canon(spec partition.TermSpec) (partition.TermSpec, error) {
	if spec.Weight == 0 {
		spec.Weight = 1
	}
	return spec, nil
}

func (t paperTerm) Compile(partition.TermSpec, *netlist.Circuit, int, *cellib.Library) (Compiled, error) {
	return Compiled{}, nil
}

// xesfqTerm models the clockless xeSFQ regime: no clock-splitter tree
// exists, so CSPLIT cells contribute no bias current (zero static power)
// and their connections leave the wire-crossing objective entirely (a
// weight-0 edge is invalid, so they are dropped, shrinking the F1
// normalizer with them). Weight/Param are accepted for uniformity but
// unused — the term is structural, not weighted.
type xesfqTerm struct{}

func (xesfqTerm) Name() string { return "xesfq" }

func (xesfqTerm) Canon(spec partition.TermSpec) (partition.TermSpec, error) {
	if spec.Weight == 0 {
		spec.Weight = 1
	}
	return spec, nil
}

func (xesfqTerm) Compile(spec partition.TermSpec, c *netlist.Circuit, k int, lib *cellib.Library) (Compiled, error) {
	isClk := make([]bool, c.NumGates())
	scale := make([]float64, c.NumGates())
	any := false
	for i, g := range c.Gates {
		scale[i] = 1
		if cell, ok := lib.ByName(g.Cell); ok && cell.Kind == cellib.KindClkSplit {
			isClk[i] = true
			scale[i] = 0
			any = true
		}
	}
	if !any {
		return Compiled{}, nil
	}
	drop := make([]bool, c.NumEdges())
	for ei, e := range c.Edges {
		if isClk[e.From] || isClk[e.To] {
			drop[ei] = true
		}
	}
	return Compiled{BiasScale: scale, DropEdge: drop}, nil
}

// currentLimitTerm generalizes examples/current_limit into a first-class
// soft constraint: Weight · Σ_k max(0, B_k − Param)² / (K·Param²), Param
// in mA (default 100, the paper's pad limit). Feasible descents pay
// nothing; infeasible planes feel a restoring gradient proportional to
// their overflow.
type currentLimitTerm struct{}

func (currentLimitTerm) Name() string { return "current_limit" }

func (currentLimitTerm) Canon(spec partition.TermSpec) (partition.TermSpec, error) {
	if spec.Weight == 0 {
		spec.Weight = 1
	}
	if spec.Param == 0 {
		spec.Param = 100
	}
	return spec, nil
}

func (currentLimitTerm) Compile(spec partition.TermSpec, c *netlist.Circuit, k int, lib *cellib.Library) (Compiled, error) {
	return Compiled{Plane: []partition.PlaneTerm{{
		Kind:   partition.PlaneCurrentLimit,
		Weight: spec.Weight,
		Limit:  spec.Param,
	}}}, nil
}

// timingCriticalTerm weights F1 edge crossings by timing slack: an edge
// whose stage path runs at the critical delay gets weight 1 + Weight,
// a fully slack edge keeps weight 1. Cutting slack paths stays cheap;
// cutting zero-slack paths — where coupler delay directly stretches the
// clock period — costs up to (1 + Weight)× the normal crossing penalty.
type timingCriticalTerm struct{}

func (timingCriticalTerm) Name() string { return "timing_critical" }

func (timingCriticalTerm) Canon(spec partition.TermSpec) (partition.TermSpec, error) {
	if spec.Weight == 0 {
		spec.Weight = 1
	}
	return spec, nil
}

func (timingCriticalTerm) Compile(spec partition.TermSpec, c *netlist.Circuit, k int, lib *cellib.Library) (Compiled, error) {
	crit, err := timing.EdgeCriticality(c, timing.Options{Library: lib})
	if err != nil {
		return Compiled{}, err
	}
	mul := make([]float64, len(crit))
	for i, v := range crit {
		mul[i] = 1 + spec.Weight*v
	}
	return Compiled{EdgeWeightMul: mul}, nil
}
