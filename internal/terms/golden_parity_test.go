package terms_test

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/multilevel"
	"gpp/internal/partition"
	"gpp/internal/terms"
)

// The registry's acceptance bar: the default term set — f1..f4 spelled
// explicitly — must compile to *exactly* the historical kernel path. These
// tests prove it against the same pre-PR-9 golden hashes the partition
// package pins, across worker counts, the float32 tier, and the multilevel
// V-cycle.

// defaultSet spells the paper objective through the registry instead of
// relying on the empty-Terms fast path: the weights must fold away into
// the default coefficients without moving a bit.
func defaultSet() []partition.TermSpec {
	return []partition.TermSpec{
		{Name: "f1", Weight: 1}, {Name: "f2", Weight: 1},
		{Name: "f3", Weight: 1}, {Name: "f4", Weight: 1},
	}
}

// parityHash mirrors the partition package's goldenHash: a digest of
// everything Result promises deterministically.
func parityHash(res *partition.Result) string {
	h := sha256.New()
	var buf [8]byte
	putU := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	putF := func(v float64) { putU(math.Float64bits(v)) }
	putU(uint64(res.Iters))
	if res.Converged {
		putU(1)
	} else {
		putU(0)
	}
	putF(res.StepSize)
	for _, v := range res.W {
		putF(v)
	}
	for _, lb := range res.Labels {
		putU(uint64(lb))
	}
	for _, bd := range []partition.Breakdown{res.Relaxed, res.Discrete} {
		putF(bd.F1)
		putF(bd.F2)
		putF(bd.F3)
		putF(bd.F4)
		putF(bd.Total)
	}
	putU(uint64(res.RefineMoves))
	putU(uint64(len(res.CostTrace)))
	for _, v := range res.CostTrace {
		putF(v)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func parityWorkers() []int {
	out := []int{1, 2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		out = append(out, n)
	}
	return out
}

// TestRegistryDefaultSetGoldenParity solves every Table-I golden fixture
// with the default set spelled through the registry and requires the
// digest to equal the recorded pre-PR-9 golden at Workers 1, 2 and
// NumCPU — the registry adds zero drift to the historical kernel.
func TestRegistryDefaultSetGoldenParity(t *testing.T) {
	raw, err := os.ReadFile("../partition/testdata/golden_kernel.json")
	if err != nil {
		t.Fatalf("golden fixtures missing: %v", err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	for _, circuit := range gen.BenchmarkNames {
		circuit := circuit
		t.Run(circuit, func(t *testing.T) {
			want, ok := golden["tableI/"+circuit]
			if !ok {
				t.Fatalf("no golden recorded for tableI/%s", circuit)
			}
			c, err := gen.Benchmark(circuit, nil)
			if err != nil {
				t.Fatal(err)
			}
			opts := partition.Options{MaxIters: 120, Terms: defaultSet()}
			p, n, err := terms.BuildProblem(c, 5, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(n.Terms) != 0 {
				t.Fatalf("default set survived normalization: %+v", n.Terms)
			}
			for _, workers := range parityWorkers() {
				o := n
				o.Workers = workers
				res, err := p.Solve(o)
				if err != nil {
					t.Fatal(err)
				}
				if got := parityHash(res); got != want {
					t.Fatalf("workers=%d: registry default set diverged from golden:\n got %s\nwant %s",
						workers, got, want)
				}
			}
		})
	}
}

// TestRegistryDefaultSetFloat32Parity: the same claim on the opt-in
// reduced-precision tier, where no goldens are recorded — the registry
// path must match the direct FromCircuit path bit for bit.
func TestRegistryDefaultSetFloat32Parity(t *testing.T) {
	for _, circuit := range []string{"KSA16", "C499"} {
		circuit := circuit
		t.Run(circuit, func(t *testing.T) {
			c, err := gen.Benchmark(circuit, nil)
			if err != nil {
				t.Fatal(err)
			}
			opts := partition.Options{MaxIters: 120, Precision: partition.Precision32}
			legacy, err := partition.FromCircuit(c, 5)
			if err != nil {
				t.Fatal(err)
			}
			res, err := legacy.Solve(opts)
			if err != nil {
				t.Fatal(err)
			}
			want := parityHash(res)
			opts.Terms = defaultSet()
			p, n, err := terms.BuildProblem(c, 5, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range parityWorkers() {
				o := n
				o.Workers = workers
				res, err := p.Solve(o)
				if err != nil {
					t.Fatal(err)
				}
				if got := parityHash(res); got != want {
					t.Fatalf("float32 workers=%d: registry path diverged from FromCircuit path", workers)
				}
			}
		})
	}
}

// TestRegistryDefaultSetMultilevelParity: the V-cycle on a registry-built
// problem reproduces the V-cycle on the direct problem exactly.
func TestRegistryDefaultSetMultilevelParity(t *testing.T) {
	c, err := gen.Benchmark("KSA32", nil)
	if err != nil {
		t.Fatal(err)
	}
	solver := partition.Options{MaxIters: 120}
	legacy, err := partition.FromCircuit(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	mo := multilevel.Options{Solver: solver}
	want, err := multilevel.Partition(legacy, mo)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := terms.BuildProblem(c, 5, partition.Options{MaxIters: 120, Terms: defaultSet()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := multilevel.Partition(p, mo)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Labels) != len(want.Labels) {
		t.Fatalf("label count %d != %d", len(got.Labels), len(want.Labels))
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d: registry %d != direct %d", i, got.Labels[i], want.Labels[i])
		}
	}
	if math.Float64bits(got.Discrete.Total) != math.Float64bits(want.Discrete.Total) {
		t.Fatalf("discrete total %x != %x",
			math.Float64bits(got.Discrete.Total), math.Float64bits(want.Discrete.Total))
	}
}

// FuzzTermWeightsFingerprint (satellite): distinct canonical weight
// vectors must produce distinct option fingerprints — the property the
// serve cache and the sweep cell keys lean on — and equal vectors must
// collide. Weights/params are kept positive so the 0-means-default rule
// never aliases two spellings.
func FuzzTermWeightsFingerprint(f *testing.F) {
	f.Add(1.0, 2.0, 80.0, 120.0)
	f.Add(0.5, 0.5, 100.0, 100.0)
	f.Add(3.0, 1e-3, 60.0, 90.0)
	f.Fuzz(func(t *testing.T, w1, w2, p1, p2 float64) {
		pos := func(v float64) bool { return v > 0 && !math.IsInf(v, 0) }
		if !pos(w1) || !pos(w2) || !pos(p1) || !pos(p2) {
			t.Skip("weights/params restricted to positive finite values")
		}
		fp := func(specs ...partition.TermSpec) string {
			o := partition.Options{Terms: specs}
			s, err := o.Fingerprint()
			if err != nil {
				t.Fatalf("fingerprint %+v: %v", specs, err)
			}
			return s
		}
		a := fp(partition.TermSpec{Name: "current_limit", Weight: w1, Param: p1})
		b := fp(partition.TermSpec{Name: "current_limit", Weight: w2, Param: p2})
		if same := w1 == w2 && p1 == p2; same != (a == b) {
			t.Fatalf("weight vectors (%g,%g) vs (%g,%g): fingerprints equal=%v, want %v",
				w1, p1, w2, p2, a == b, same)
		}
		// Adding a term always changes the identity.
		c := fp(
			partition.TermSpec{Name: "current_limit", Weight: w1, Param: p1},
			partition.TermSpec{Name: "timing_critical", Weight: w2},
		)
		if c == a {
			t.Fatalf("adding timing_critical:%g did not change the fingerprint", w2)
		}
	})
}
