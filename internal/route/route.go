// Package route estimates the routing of inter-plane connections over a
// plane-banded placement. Each boundary between adjacent ground planes is a
// routing channel: every connection hopping that boundary occupies a
// horizontal interval (from the driver-side position to its coupler slot
// to the sink-side position), and intervals that overlap need separate
// tracks. Track assignment uses the classic left-edge algorithm, which is
// optimal for interval graphs, so the reported channel height is the true
// congestion lower bound for this placement — the area cost of inter-plane
// wiring that the paper's F1 term is minimizing by proxy.
package route

import (
	"fmt"
	"sort"

	"gpp/internal/netlist"
	"gpp/internal/place"
)

// Span is one routed interval in a boundary channel.
type Span struct {
	Edge  int     // circuit edge index
	Lo    float64 // left end, mm
	Hi    float64 // right end, mm
	Track int     // assigned track (0-based)
}

// Channel is the routing result for one plane boundary.
type Channel struct {
	Boundary int // between plane Boundary and Boundary+1
	Spans    []Span
	Tracks   int // channel height in tracks (max concurrent overlap)
}

// Result is the full channel-routing estimate.
type Result struct {
	Channels []Channel
	// MaxTracks is the tallest channel — the pitch count the die must
	// reserve between the worst pair of bands.
	MaxTracks int
	// TotalWireMM sums the horizontal span lengths (channel wirelength).
	TotalWireMM float64
}

// Build routes every boundary crossing of the placement. Spans derive from
// the placed cell centers and the coupler slot positions: the channel
// interval covers the x-range the connection needs on that boundary.
func Build(c *netlist.Circuit, labels []int, pl *place.Placement) (*Result, error) {
	if len(labels) != c.NumGates() {
		return nil, fmt.Errorf("route: %d labels for %d gates", len(labels), c.NumGates())
	}
	cx := make([]float64, c.NumGates())
	for _, cp := range pl.Cells {
		cx[cp.Gate] = cp.X + cp.W/2
	}
	if pl.K < 2 {
		return &Result{}, nil
	}
	// Group slots per boundary; each slot is one hop of one edge.
	spansPerBoundary := make([][]Span, pl.K-1)
	for _, s := range pl.Slots {
		if s.Boundary < 0 || s.Boundary >= pl.K-1 {
			return nil, fmt.Errorf("route: slot on boundary %d outside [0,%d)", s.Boundary, pl.K-1)
		}
		e := c.Edges[s.Edge]
		lo, hi := spanEnds(cx[e.From], cx[e.To], s.X)
		spansPerBoundary[s.Boundary] = append(spansPerBoundary[s.Boundary], Span{
			Edge: s.Edge, Lo: lo, Hi: hi,
		})
	}
	res := &Result{}
	for b, spans := range spansPerBoundary {
		ch := Channel{Boundary: b, Spans: spans}
		ch.Tracks = assignTracks(ch.Spans)
		for _, sp := range ch.Spans {
			res.TotalWireMM += sp.Hi - sp.Lo
		}
		if ch.Tracks > res.MaxTracks {
			res.MaxTracks = ch.Tracks
		}
		res.Channels = append(res.Channels, ch)
	}
	return res, nil
}

// spanEnds returns the horizontal interval a connection needs on a
// boundary: it must reach from the connection's endpoint positions to its
// coupler slot.
func spanEnds(fromX, toX, slotX float64) (lo, hi float64) {
	lo, hi = fromX, fromX
	for _, x := range []float64{toX, slotX} {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// assignTracks runs the left-edge algorithm: sort spans by left end, place
// each on the lowest track whose last span ends before this one starts.
// Returns the track count and fills Span.Track in place.
func assignTracks(spans []Span) int {
	if len(spans) == 0 {
		return 0
	}
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return spans[order[a]].Lo < spans[order[b]].Lo })
	var trackEnd []float64 // rightmost occupied x per track
	for _, idx := range order {
		sp := &spans[idx]
		placed := false
		for tr := range trackEnd {
			if trackEnd[tr] <= sp.Lo {
				sp.Track = tr
				trackEnd[tr] = sp.Hi
				placed = true
				break
			}
		}
		if !placed {
			sp.Track = len(trackEnd)
			trackEnd = append(trackEnd, sp.Hi)
		}
	}
	return len(trackEnd)
}
