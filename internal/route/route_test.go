package route

import (
	"testing"

	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
	"gpp/internal/place"
)

func TestAssignTracksHandCases(t *testing.T) {
	// Three disjoint spans → 1 track.
	spans := []Span{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}, {Lo: 4, Hi: 5}}
	if got := assignTracks(spans); got != 1 {
		t.Errorf("disjoint spans: %d tracks, want 1", got)
	}
	// Three pairwise overlapping spans → 3 tracks.
	spans = []Span{{Lo: 0, Hi: 10}, {Lo: 1, Hi: 9}, {Lo: 2, Hi: 8}}
	if got := assignTracks(spans); got != 3 {
		t.Errorf("nested spans: %d tracks, want 3", got)
	}
	// Staircase: (0,2) (1,3) (2,4) — spans 1 and 3 can share (2 ≤ 2).
	spans = []Span{{Lo: 0, Hi: 2}, {Lo: 1, Hi: 3}, {Lo: 2, Hi: 4}}
	if got := assignTracks(spans); got != 2 {
		t.Errorf("staircase: %d tracks, want 2", got)
	}
	if got := assignTracks(nil); got != 0 {
		t.Errorf("empty: %d tracks", got)
	}
}

func TestAssignTracksIsValidColoring(t *testing.T) {
	// Whatever the count, no two spans on one track may overlap.
	spans := []Span{
		{Lo: 0, Hi: 5}, {Lo: 1, Hi: 2}, {Lo: 2, Hi: 6}, {Lo: 3, Hi: 4},
		{Lo: 4.5, Hi: 7}, {Lo: 6, Hi: 8}, {Lo: 0.5, Hi: 1.5},
	}
	assignTracks(spans)
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.Track == b.Track && a.Lo < b.Hi && b.Lo < a.Hi {
				t.Fatalf("spans %d and %d overlap on track %d", i, j, a.Track)
			}
		}
	}
}

func TestBuildOnRealPlacement(t *testing.T) {
	c, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 600})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Build(c, 5, res.Labels, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Build(c, res.Labels, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Channels) != 4 {
		t.Fatalf("%d channels for K=5", len(rt.Channels))
	}
	totalSpans := 0
	for _, ch := range rt.Channels {
		totalSpans += len(ch.Spans)
		if len(ch.Spans) > 0 && ch.Tracks == 0 {
			t.Errorf("boundary %d has spans but no tracks", ch.Boundary)
		}
		if ch.Tracks > len(ch.Spans) {
			t.Errorf("boundary %d: %d tracks for %d spans", ch.Boundary, ch.Tracks, len(ch.Spans))
		}
	}
	if totalSpans != len(pl.Slots) {
		t.Errorf("%d spans for %d slots", totalSpans, len(pl.Slots))
	}
	if rt.MaxTracks <= 0 {
		t.Error("no congestion measured on a real partition")
	}
	if rt.TotalWireMM <= 0 {
		t.Error("no channel wirelength")
	}
}

func TestBuildSinglePlane(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, c.NumGates())
	pl, err := place.Build(c, 1, labels, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Build(c, labels, pl)
	if err != nil {
		t.Fatal(err)
	}
	if rt.MaxTracks != 0 || len(rt.Channels) != 0 {
		t.Errorf("single plane routed: %+v", rt)
	}
}

func TestBuildErrors(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	pl := &place.Placement{K: 3}
	if _, err := Build(c, []int{0}, pl); err == nil {
		t.Error("short labels accepted")
	}
	_ = netlist.Edge{}
}
