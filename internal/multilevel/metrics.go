package multilevel

import "gpp/internal/obs"

// Multilevel metrics, registered on the process-wide registry (served by
// the CLIs' -metrics-addr). All updates happen once per V-cycle — never
// inside the level loops — so instrumentation costs nothing on the hot
// path.
var (
	mVCycles = obs.Default().Counter("gpp_multilevel_vcycles_total",
		"completed multilevel V-cycles")
	mCoarsenings = obs.Default().Counter("gpp_multilevel_coarsenings_total",
		"heavy-edge-matching contractions across all V-cycles")
	mVCycleIters = obs.Default().Counter("gpp_multilevel_iterations_total",
		"inner gradient iterations (coarsest solve + per-level refines) across all V-cycles")
	mVCycleRefineMoves = obs.Default().Counter("gpp_multilevel_refine_moves_total",
		"gates moved by the finest-level discrete move pass")
	mVCycleLevels = obs.Default().Histogram("gpp_multilevel_levels_per_vcycle",
		[]float64{2, 3, 4, 6, 8, 12, 16, 24, 32},
		"hierarchy depth distribution per V-cycle (including the original level)")
)
