package multilevel

import (
	"fmt"
	"math/rand"

	"gpp/internal/partition"
)

// level is one coarsened instance plus the projection map from the finer
// level: levels[i] holds the data of level i+1 and the fineToCoarse map
// indexed by level-i vertices.
type level struct {
	bias, area   []float64
	edges        [][2]int
	weight       []float64
	fineToCoarse []int // indexed by finer-level vertex
}

// hierarchy is the full coarsening chain: probs[0] is the original problem
// and probs[i+1] the weighted instance levels[i] produced.
type hierarchy struct {
	levels []level
	probs  []*partition.Problem
}

// levelSeed derives one contraction's matching-order seed from the solver
// seed and the level index with a splitmix64-style finalizer. Each level's
// matching is therefore a pure function of (Solver.Seed, level) — the same
// deterministic RNG discipline as the solver's initialization, where the
// seed alone pins the entire stream. (The historical implementation
// threaded one shared *rand.Rand through every contraction, so a level's
// permutation depended on how many draws earlier levels consumed — an
// accident of hierarchy shape rather than a declared function of the
// options.)
func levelSeed(seed int64, level int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(level+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// buildHierarchy coarsens the problem down to Options.CoarsestSize
// vertices (or until MaxLevels / no contraction), materializing every
// coarse level as a weighted partition.Problem. Deterministic: the chain
// depends only on the problem and (seed, CoarsestSize, MaxLevels).
func buildHierarchy(p *partition.Problem, opts Options, seed int64) (*hierarchy, error) {
	h := &hierarchy{probs: []*partition.Problem{p}}
	curBias, curArea := p.Bias, p.Area
	curEdges := make([][2]int, len(p.Edges))
	curWeight := make([]float64, len(p.Edges))
	for i, e := range p.Edges {
		curEdges[i] = [2]int{int(e[0]), int(e[1])}
		curWeight[i] = 1
	}
	if p.EdgeWeight != nil {
		copy(curWeight, p.EdgeWeight)
	}
	for len(curBias) > opts.CoarsestSize && len(h.levels) < opts.MaxLevels-1 {
		lv, ok := coarsen(curBias, curArea, curEdges, curWeight, levelSeed(seed, len(h.levels)))
		if !ok {
			break // no contraction possible (edgeless residue)
		}
		prob, err := buildProblem(fmt.Sprintf("%s@L%d", p.Name, len(h.levels)+1), p.K, lv.bias, lv.area, lv.edges, lv.weight)
		if err != nil {
			return nil, err
		}
		// Coarse instances inherit the fine problem's compiled plane terms:
		// contraction sums vertex biases, so per-plane bias sums — all these
		// terms read — are preserved level by level. (Bias scaling and edge
		// drops/weights were compiled into p before coarsening, so those
		// regime effects propagate structurally.)
		prob.PlaneTerms = p.PlaneTerms
		h.levels = append(h.levels, lv)
		h.probs = append(h.probs, prob)
		curBias, curArea, curEdges, curWeight = lv.bias, lv.area, lv.edges, lv.weight
	}
	return h, nil
}

// coarsen performs one heavy-edge-matching contraction. Returns ok=false
// when no edge allows any contraction. The adjacency is CSR (two counted
// passes, no per-vertex append slices) and the edge collapse sorts packed
// (a,b) keys instead of accumulating into a map, so a contraction is
// O(E log E) with flat allocations — the difference between a hierarchy
// build in milliseconds and one in seconds at a million gates.
func coarsen(bias, area []float64, edges [][2]int, weight []float64, seed int64) (level, bool) {
	n := len(bias)
	// CSR adjacency, neighbor entries in edge order per vertex (parallel
	// edges stay separate entries, matching by single-edge weight).
	deg := make([]int32, n+1)
	for _, e := range edges {
		if e[0] != e[1] {
			deg[e[0]+1]++
			deg[e[1]+1]++
		}
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adjV := make([]int32, deg[n])
	adjW := make([]float64, deg[n])
	cursor := make([]int32, n)
	copy(cursor, deg[:n])
	for i, e := range edges {
		if e[0] == e[1] {
			continue
		}
		a, b := e[0], e[1]
		adjV[cursor[a]], adjW[cursor[a]] = int32(b), weight[i]
		cursor[a]++
		adjV[cursor[b]], adjW[cursor[b]] = int32(a), weight[i]
		cursor[b]++
	}

	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rand.New(rand.NewSource(seed)).Perm(n)
	matched := 0
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best, bestW := int32(-1), 0.0
		for idx := deg[v]; idx < deg[v+1]; idx++ {
			u := adjV[idx]
			if int(u) != v && match[u] < 0 && adjW[idx] > bestW {
				best, bestW = u, adjW[idx]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = int32(v)
			matched++
		}
	}
	if matched == 0 {
		return level{}, false
	}

	// Assign coarse IDs in vertex order (deterministic).
	lv := level{fineToCoarse: make([]int, n)}
	coarseID := make([]int32, n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	next := int32(0)
	for v := 0; v < n; v++ {
		if coarseID[v] >= 0 {
			continue
		}
		coarseID[v] = next
		if m := match[v]; m >= 0 {
			coarseID[m] = next
		}
		next++
	}
	lv.bias = make([]float64, next)
	lv.area = make([]float64, next)
	for v := 0; v < n; v++ {
		cv := coarseID[v]
		lv.fineToCoarse[v] = int(cv)
		lv.bias[cv] += bias[v]
		lv.area[cv] += area[v]
	}

	// Collapse edges: pack each surviving coarse pair into one sortable
	// key, radix-sort, and merge equal-key runs into a single weighted
	// edge. The output is ordered by (a, b) by construction.
	keys := make([]uint64, 0, len(edges))
	ws := make([]float64, 0, len(edges))
	for i, e := range edges {
		a, b := coarseID[e[0]], coarseID[e[1]]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		keys = append(keys, uint64(uint32(a))<<32|uint64(uint32(b)))
		ws = append(ws, weight[i])
	}
	radixSortEdges(keys, ws)
	lv.edges = make([][2]int, 0, len(keys))
	lv.weight = make([]float64, 0, len(keys))
	for i := 0; i < len(keys); {
		j := i + 1
		w := ws[i]
		for j < len(keys) && keys[j] == keys[i] {
			w += ws[j]
			j++
		}
		lv.edges = append(lv.edges, [2]int{int(keys[i] >> 32), int(uint32(keys[i]))})
		lv.weight = append(lv.weight, w)
		i = j
	}
	return lv, true
}

// radixSortEdges sorts the packed coarse-pair keys ascending, carrying the
// weights in lockstep: LSD counting passes over the significant bytes,
// O(E) per contraction. The comparison sort it replaced (reflection-based
// sort.Slice swaps) dominated million-gate hierarchy builds. Stable, so
// equal keys keep their input order and the weight summation order — and
// with it the merged float weights — is a pure function of the input.
func radixSortEdges(keys []uint64, ws []float64) {
	n := len(keys)
	if n < 64 {
		for i := 1; i < n; i++ {
			k, w := keys[i], ws[i]
			j := i - 1
			for ; j >= 0 && keys[j] > k; j-- {
				keys[j+1], ws[j+1] = keys[j], ws[j]
			}
			keys[j+1], ws[j+1] = k, w
		}
		return
	}
	var maxKey uint64
	for _, k := range keys {
		if k > maxKey {
			maxKey = k
		}
	}
	tmpK := make([]uint64, n)
	tmpW := make([]float64, n)
	src, dst := keys, tmpK
	srcW, dstW := ws, tmpW
	var count [256]int
	for shift := uint(0); maxKey>>shift > 0; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range src {
			count[(k>>shift)&0xFF]++
		}
		sum := 0
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for i, k := range src {
			pos := count[(k>>shift)&0xFF]
			count[(k>>shift)&0xFF]++
			dst[pos], dstW[pos] = k, srcW[i]
		}
		src, dst = dst, src
		srcW, dstW = dstW, srcW
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
		copy(ws, srcW)
	}
}

// buildProblem materializes a weighted instance as a partition.Problem: an
// edge of weight w contributes to the cost exactly like w parallel
// connections (partition.NewWeightedProblem), without materializing the
// replicas — at a million gates the coarsest level would otherwise retain
// the full fine-level connection count.
func buildProblem(name string, k int, bias, area []float64, edges [][2]int, weight []float64) (*partition.Problem, error) {
	if k > len(bias) {
		// Coarsening can undershoot K on tiny inputs; pad is not possible,
		// so surface a clear error.
		return nil, fmt.Errorf("multilevel: level %q has %d vertices for K=%d", name, len(bias), k)
	}
	return partition.NewWeightedProblem(name, k, bias, area, edges, weight)
}

// projectW spreads the coarse relaxed matrix onto the finer level: every
// fine vertex inherits its supervertex's row. Serial and index-ordered —
// trivially deterministic.
func projectW(coarseW partition.W, fineToCoarse []int, k int) partition.W {
	fine := make(partition.W, len(fineToCoarse)*k)
	for v, cv := range fineToCoarse {
		copy(fine[v*k:(v+1)*k], coarseW[cv*k:(cv+1)*k])
	}
	return fine
}
