package multilevel

import (
	"context"
	"fmt"
	"math"

	"gpp/internal/obs"
	"gpp/internal/partition"
)

// runVCycle executes the solve half of the V-cycle on a built hierarchy:
// coarsest descent, then per-level projection + band-limited gradient
// refine, then the discrete move pass at the finest level.
func runVCycle(ctx context.Context, p *partition.Problem, opts Options, sNorm partition.Options, h *hierarchy, vfp string) (*Result, error) {
	nLevels := len(h.probs)
	coarse := nLevels - 1
	tracer := sNorm.Tracer
	// sNorm.Span is the "vcycle" span PartitionCtx opened (nil when
	// tracing is off); this function owns ending it. Level solves get
	// their own child spans below — never the vcycle span directly.
	vspan := sNorm.Span
	sNorm.Span = nil

	resume := opts.Resume
	if err := checkVResume(resume, p, vfp, h); err != nil {
		return nil, err
	}

	out := &Result{Levels: nLevels, CoarsestSize: h.probs[coarse].G}
	out.LevelSizes = make([]int, nLevels)
	for i, prob := range h.probs {
		out.LevelSizes[i] = prob.G
	}
	if tracer != nil {
		tracer.Emit(obs.Event{Kind: obs.KindVCycleStart, Seed: sNorm.Seed,
			K: p.K, Gates: p.G, Edges: len(p.Edges), Levels: nLevels})
		for li := 1; li < nLevels; li++ {
			tracer.Emit(obs.Event{Kind: obs.KindCoarsen, Level: li,
				Gates: h.probs[li].G, Edges: len(h.probs[li].Edges)})
		}
	}

	// wrap turns the inner solver's per-iteration snapshots (and the
	// crafted level-start snapshots) into level-indexed VSnapshots. The
	// running iteration totals ride along so a resumed cycle reconstructs
	// its Result metadata exactly, not just its labels.
	doneIters, coarseIters, coarseConverged := 0, 0, false
	if resume != nil {
		doneIters, coarseIters, coarseConverged = resume.DoneIters, resume.CoarseIters, resume.Converged
	}
	wrap := func(levelIdx int) func(*partition.Snapshot) error {
		return func(s *partition.Snapshot) error {
			return opts.Checkpoint(&VSnapshot{
				Version:     vsnapshotVersion,
				Name:        p.Name,
				G:           p.G,
				K:           p.K,
				EdgeCount:   len(p.Edges),
				Fingerprint: vfp,
				Levels:      nLevels,
				Level:       levelIdx,
				DoneIters:   doneIters,
				CoarseIters: coarseIters,
				Converged:   coarseConverged,
				Inner:       s,
			})
		}
	}

	var w partition.W
	var labels []int
	startLevel := coarse - 1

	// Coarsest level: the full Algorithm-1 descent (skipped entirely when
	// resuming at a finer level — its outcome is already folded into W).
	if resume == nil || resume.Level == coarse {
		copts := sNorm
		if opts.Checkpoint != nil {
			copts.CheckpointEvery = opts.CheckpointEvery
			copts.Checkpoint = wrap(coarse)
		}
		if resume != nil {
			copts.Resume = resume.Inner
		}
		lspan := vspan.Child("level")
		lspan.AttrInt("level", int64(coarse))
		lspan.AttrInt("gates", int64(h.probs[coarse].G))
		copts.Span = lspan
		res, err := h.probs[coarse].SolveCtx(ctx, copts)
		if err != nil {
			return nil, err
		}
		lspan.AttrInt("iters", int64(res.Iters))
		lspan.End()
		w, labels = res.W, res.Labels
		coarseIters, coarseConverged = res.Iters, res.Converged
		doneIters = coarseIters
	} else {
		startLevel = resume.Level
	}
	out.CoarseIters, out.Converged = coarseIters, coarseConverged

	// Uncoarsen: project W and run the band-limited gradient refine at
	// every finer level; the deepest refine produces the final labels.
	for li := startLevel; li >= 0; li-- {
		prob := h.probs[li]
		ropts := sNorm
		ropts.Momentum = 0
		ropts.MaxIters = opts.RefineIters
		lspan := vspan.Child("level")
		lspan.AttrInt("level", int64(li))
		lspan.AttrInt("gates", int64(prob.G))
		ropts.Span = lspan
		var inner *partition.Snapshot
		if resume != nil && resume.Level == li && li != coarse {
			// Mid-refine resume: the level's calibrated step is the
			// snapshot's (LearnRate > 0 is never recalibrated), which makes
			// the reconstructed options fingerprint-identical to the ones
			// that produced the snapshot.
			ropts.LearnRate = resume.Inner.Step
			inner = resume.Inner
		} else {
			pspan := lspan.Child("project")
			fineW := projectW(w, h.levels[li].fineToCoarse, p.K)
			if tracer != nil {
				tracer.Emit(obs.Event{Kind: obs.KindProject, Level: li, Gates: prob.G})
			}
			ropts.LearnRate = calibrateStep(prob, fineW, ropts)
			pspan.End()
			var err error
			inner, err = warmSnapshot(prob, ropts, fineW)
			if err != nil {
				return nil, err
			}
			if opts.Checkpoint != nil {
				// Level-start checkpoint: the projected state is durable
				// before the first refine iteration, so a kill inside this
				// level never has to redo coarser levels.
				if err := wrap(li)(inner); err != nil {
					return nil, fmt.Errorf("multilevel: checkpoint at level %d start: %w", li, err)
				}
			}
		}
		ropts.Resume = inner
		if opts.Checkpoint != nil {
			ropts.CheckpointEvery = opts.CheckpointEvery
			ropts.Checkpoint = wrap(li)
		}
		res, err := prob.SolveCtx(ctx, ropts)
		if err != nil {
			return nil, err
		}
		lspan.AttrInt("iters", int64(res.Iters))
		lspan.End()
		w, labels = res.W, res.Labels
		doneIters += res.Iters
	}
	out.Iters = doneIters
	_ = w

	// Finest level: the paper's greedy discrete move pass.
	rspan := vspan.Child("discrete_refine")
	out.RefineMoves = p.Refine(labels, sNorm.Coeffs, opts.RefinePasses)
	rspan.AttrInt("moves", int64(out.RefineMoves))
	rspan.End()
	out.Labels = labels
	out.Discrete = p.DiscreteCost(labels, sNorm.Coeffs)
	if tracer != nil {
		tracer.Emit(obs.Event{Kind: obs.KindVCycleDone, Levels: nLevels,
			Iters: out.Iters, Converged: out.Converged,
			RefineMoves: out.RefineMoves, FDiscrete: out.Discrete.Total})
	}
	if err := obs.SinkErr(tracer); err != nil {
		return nil, fmt.Errorf("multilevel: trace sink: %w", err)
	}
	vspan.AttrInt("levels", int64(nLevels))
	vspan.AttrInt("iters", int64(out.Iters))
	vspan.End()

	mVCycles.Inc()
	mVCycleLevels.Observe(float64(nLevels))
	mCoarsenings.Add(int64(nLevels - 1))
	mVCycleIters.Add(int64(out.Iters))
	mVCycleRefineMoves.Add(int64(out.RefineMoves))
	return out, nil
}

// calibrateStep replicates the solver's auto-calibration at a warm-start
// point: one gradient evaluation at w, step = InitStep / max|∂F|. Runs on
// the solver's fixed-shard parallel kernels, so the step — and with it the
// whole refine trajectory — is bitwise identical at every worker count.
func calibrateStep(prob *partition.Problem, w partition.W, s partition.Options) float64 {
	grad := make([]float64, prob.G*prob.K)
	prob.GradientParallel(w, s.Coeffs, s.Gradient, grad, s.Workers)
	maxAbs := 0.0
	for _, g := range grad {
		if a := math.Abs(g); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1 // flat start; any step is a no-op until curvature appears
	}
	return s.InitStep / maxAbs
}

// warmSnapshot crafts the iteration-0 solver snapshot that warm-starts a
// refine level from a projected W: the solver's resume path restores the
// matrix and step and skips both the RNG initialization and the step
// auto-calibration, which is exactly the "descend from this point with
// this step" semantics a projection needs. CostOld = +Inf suppresses the
// stopping test on the first iteration, same as a fresh solve.
func warmSnapshot(prob *partition.Problem, ropts partition.Options, w partition.W) (*partition.Snapshot, error) {
	fp, err := ropts.Fingerprint()
	if err != nil {
		return nil, err
	}
	return &partition.Snapshot{
		Version:     1,
		Name:        prob.Name,
		G:           prob.G,
		K:           prob.K,
		EdgeCount:   len(prob.Edges),
		Fingerprint: fp,
		Seed:        ropts.Seed,
		Iter:        0,
		RNGDraws:    uint64(prob.G * prob.K),
		Step:        ropts.LearnRate,
		CostOld:     math.Inf(1),
		W:           append([]float64(nil), w...),
	}, nil
}

// checkVResume validates a V-cycle snapshot against the problem, options
// and rebuilt hierarchy it is being resumed under. The fingerprint covers
// the normalized options and the hierarchy's level shapes, so any drift —
// different seed, coarsening knobs, solver configuration, or a changed
// problem — is rejected rather than silently producing a hybrid run. The
// inner snapshot's own fingerprint is re-checked by the level solve.
func checkVResume(s *VSnapshot, p *partition.Problem, vfp string, h *hierarchy) error {
	if s == nil {
		return nil
	}
	if s.G != p.G || s.K != p.K || s.EdgeCount != len(p.Edges) {
		return fmt.Errorf("multilevel: snapshot is for a %d-gate %d-plane %d-edge problem, not %d/%d/%d",
			s.G, s.K, s.EdgeCount, p.G, p.K, len(p.Edges))
	}
	if s.Fingerprint != vfp {
		return fmt.Errorf("multilevel: snapshot V-cycle fingerprint %.12s… does not match resume options/hierarchy %.12s… (same configuration required)",
			s.Fingerprint, vfp)
	}
	if s.Levels != len(h.probs) {
		return fmt.Errorf("multilevel: snapshot hierarchy has %d levels, rebuilt hierarchy has %d", s.Levels, len(h.probs))
	}
	if s.Level < 0 || s.Level >= s.Levels {
		return fmt.Errorf("multilevel: snapshot level %d out of range [0, %d)", s.Level, s.Levels)
	}
	if s.Inner == nil {
		return fmt.Errorf("multilevel: snapshot has no inner solver state")
	}
	lp := h.probs[s.Level]
	if s.Inner.G != lp.G || s.Inner.K != lp.K || s.Inner.EdgeCount != len(lp.Edges) {
		return fmt.Errorf("multilevel: inner snapshot shape %d/%d/%d does not match level %d (%d/%d/%d)",
			s.Inner.G, s.Inner.K, s.Inner.EdgeCount, s.Level, lp.G, lp.K, len(lp.Edges))
	}
	return nil
}
