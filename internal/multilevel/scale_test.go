package multilevel

import (
	"runtime"
	"testing"
	"time"

	"gpp/internal/partition"
)

// TestMillionGateVCycle is the slow-tier e2e for the PR-6 scale claim: the
// million-gate synthetic partitions through the full V-cycle with a deep
// hierarchy, valid labels, and a sane discrete solution. Wall time is
// logged, not asserted — CI boxes vary too much for a hard timing gate;
// the recorded trajectory lives in BENCH_PR6.json.
func TestMillionGateVCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("million-gate e2e in -short mode")
	}
	p := benchProblem(t, "par1000000", 5)
	start := time.Now()
	res, err := Partition(p, Options{Solver: partition.Options{
		Seed: 1, Workers: runtime.NumCPU(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("par1000000: %d levels %v, %d iters, %d refine moves, %v",
		res.Levels, res.LevelSizes, res.Iters, res.RefineMoves, elapsed)

	if len(res.Labels) != p.G {
		t.Fatalf("%d labels for %d gates", len(res.Labels), p.G)
	}
	for i, lb := range res.Labels {
		if lb < 0 || lb >= p.K {
			t.Fatalf("label[%d] = %d", i, lb)
		}
	}
	if res.Levels < 10 {
		t.Errorf("hierarchy depth %d — coarsening stalled on a million gates", res.Levels)
	}
	if res.CoarsestSize > 2*200 {
		t.Errorf("coarsest level has %d vertices, want ≲ a few hundred", res.CoarsestSize)
	}
	// The solution must be meaningfully better than random assignment.
	rnd := make([]int, p.G)
	for i := range rnd {
		rnd[i] = i % p.K
	}
	coeffs := partition.DefaultCoeffs()
	if rc := p.DiscreteCost(rnd, coeffs).Total; res.Discrete.Total >= rc {
		t.Errorf("V-cycle cost %g not better than striped assignment %g", res.Discrete.Total, rc)
	}
}
