package multilevel

import (
	"encoding/json"
	"os"
	"testing"

	"gpp/internal/partition"
)

// qualityBand is one circuit's allowed ratio range in
// testdata/quality_bands.json.
type qualityBand struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// TestVCycleQualityBands is the golden quality regression: on every Table I
// circuit the V-cycle's discrete cost must stay within the recorded band of
// the flat solver's cost (same seed, flat with its own discrete refine).
// Both totals are negative — a ratio below 1 means the V-cycle captures
// that fraction of the flat objective — so a drop below a band's min is a
// quality regression in the cycle (coarsening, projection, or refine),
// and a jump above max flags a cost-accounting bug dressed up as a win.
func TestVCycleQualityBands(t *testing.T) {
	raw, err := os.ReadFile("testdata/quality_bands.json")
	if err != nil {
		t.Fatal(err)
	}
	var entries map[string]json.RawMessage
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	delete(entries, "_comment")
	bands := make(map[string]qualityBand, len(entries))
	for name, msg := range entries {
		var b qualityBand
		if err := json.Unmarshal(msg, &b); err != nil {
			t.Fatalf("band %s: %v", name, err)
		}
		bands[name] = b
	}
	if len(bands) != len(tableICircuits) {
		t.Fatalf("quality_bands.json covers %d circuits, suite has %d", len(bands), len(tableICircuits))
	}
	coeffs := partition.DefaultCoeffs()
	for _, name := range tableICircuits {
		band, ok := bands[name]
		if !ok {
			t.Fatalf("no band recorded for %s", name)
		}
		p := benchProblem(t, name, 5)
		ml, err := Partition(p, Options{Solver: partition.Options{Seed: 1}})
		if err != nil {
			t.Fatal(err)
		}
		flat, err := p.Solve(partition.Options{Seed: 1, Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		flatCost := p.DiscreteCost(flat.Labels, coeffs).Total
		if flatCost >= 0 {
			t.Fatalf("%s: flat cost %g not negative; band semantics assume minimization below zero", name, flatCost)
		}
		ratio := ml.Discrete.Total / flatCost
		if ratio < band.Min || ratio > band.Max {
			t.Errorf("%s: V-cycle/flat cost ratio %.4f outside band [%.2f, %.2f] (ml %g, flat %g)",
				name, ratio, band.Min, band.Max, ml.Discrete.Total, flatCost)
		}
	}
}
