// Package multilevel implements a multilevel variant of the ground plane
// partitioner, the natural "future work" extension of the paper: its
// Section IV argues the problem cannot be fed to classic multilevel K-way
// tools (Karypis/Kumar, the paper's ref [18]) because of the
// distance-weighted connection cost — but the multilevel *schema*
// (coarsen by heavy-edge matching, solve the coarsest instance, project
// back and refine level by level) composes perfectly with the paper's own
// cost function. The coarse solve uses the paper's gradient-descent
// algorithm; every uncoarsening step runs the move-based refinement on the
// paper's discrete objective, so the distance semantics are preserved at
// every level.
//
// On large instances this trades a slightly different quality profile for
// a much smaller gradient-descent problem (the descent runs on hundreds of
// supervertices instead of thousands of gates).
package multilevel

import (
	"fmt"
	"math/rand"
	"sort"

	"gpp/internal/partition"
)

// Options configures the multilevel flow.
type Options struct {
	// CoarsestSize stops coarsening when a level has at most this many
	// supervertices (default max(60, 10·K)).
	CoarsestSize int
	// MaxLevels caps the hierarchy depth (default 20).
	MaxLevels int
	// Solver configures the coarsest-level gradient descent (its Seed also
	// seeds the matching order).
	Solver partition.Options
	// RefinePasses bounds the per-level refinement sweeps (default 6).
	RefinePasses int
}

func (o Options) withDefaults(k int) Options {
	if o.CoarsestSize <= 0 {
		o.CoarsestSize = 60
		if 10*k > o.CoarsestSize {
			o.CoarsestSize = 10 * k
		}
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 20
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 6
	}
	if o.Solver.Seed == 0 {
		o.Solver.Seed = 1
	}
	return o
}

// level is one coarsened instance plus the projection map from the finer
// level.
type level struct {
	bias, area   []float64
	edges        [][2]int
	weight       []int
	fineToCoarse []int // indexed by finer-level vertex
}

// Result reports the multilevel outcome.
type Result struct {
	Labels []int
	Levels int // hierarchy depth including the original level
	// CoarsestSize is the vertex count the gradient descent actually ran
	// on.
	CoarsestSize int
	// RefineMoves counts moves across all uncoarsening refinements.
	RefineMoves int
}

// Partition runs the multilevel flow on the problem.
func Partition(p *partition.Problem, opts Options) (*Result, error) {
	opts = opts.withDefaults(p.K)
	rng := rand.New(rand.NewSource(opts.Solver.Seed))

	// Build the hierarchy.
	curBias := p.Bias
	curArea := p.Area
	curEdges := make([][2]int, len(p.Edges))
	curWeight := make([]int, len(p.Edges))
	for i, e := range p.Edges {
		curEdges[i] = [2]int{int(e[0]), int(e[1])}
		curWeight[i] = 1
	}
	var levels []level
	for len(curBias) > opts.CoarsestSize && len(levels) < opts.MaxLevels-1 {
		lv, ok := coarsen(curBias, curArea, curEdges, curWeight, rng)
		if !ok {
			break // no contraction possible (edgeless residue)
		}
		levels = append(levels, lv)
		curBias, curArea, curEdges, curWeight = lv.bias, lv.area, lv.edges, lv.weight
	}

	// Solve the coarsest level with the paper's algorithm.
	coarseProb, err := buildProblem(fmt.Sprintf("%s@L%d", p.Name, len(levels)), p.K, curBias, curArea, curEdges, curWeight)
	if err != nil {
		return nil, err
	}
	res, err := coarseProb.Solve(opts.Solver)
	if err != nil {
		return nil, err
	}
	labels := res.Labels

	out := &Result{Levels: len(levels) + 1, CoarsestSize: len(curBias)}
	// Uncoarsen: project and refine at every finer level.
	coeffs := opts.Solver.Coeffs
	if coeffs == (partition.Coeffs{}) {
		coeffs = partition.DefaultCoeffs()
	}
	for li := len(levels) - 1; li >= 0; li-- {
		lv := levels[li]
		fine := make([]int, len(lv.fineToCoarse))
		for v, cv := range lv.fineToCoarse {
			fine[v] = labels[cv]
		}
		labels = fine
		// Rebuild the finer instance for refinement.
		var fb, fa []float64
		var fe [][2]int
		var fw []int
		if li == 0 {
			fb, fa = p.Bias, p.Area
			fe = make([][2]int, len(p.Edges))
			fw = make([]int, len(p.Edges))
			for i, e := range p.Edges {
				fe[i] = [2]int{int(e[0]), int(e[1])}
				fw[i] = 1
			}
		} else {
			prev := levels[li-1]
			fb, fa, fe, fw = prev.bias, prev.area, prev.edges, prev.weight
		}
		fineProb, err := buildProblem(fmt.Sprintf("%s@L%d", p.Name, li), p.K, fb, fa, fe, fw)
		if err != nil {
			return nil, err
		}
		out.RefineMoves += fineProb.Refine(labels, coeffs, opts.RefinePasses)
	}
	if len(levels) == 0 {
		// Hierarchy was trivial — labels are already at the original level;
		// still run one refinement for parity with the non-trivial path.
		out.RefineMoves += p.Refine(labels, coeffs, opts.RefinePasses)
	}
	out.Labels = labels
	return out, nil
}

// coarsen performs one heavy-edge-matching contraction. Returns ok=false
// when no edge allows any contraction.
func coarsen(bias, area []float64, edges [][2]int, weight []int, rng *rand.Rand) (level, bool) {
	n := len(bias)
	// Neighbor weights per vertex.
	type nb struct {
		v, w int
	}
	adj := make([][]nb, n)
	for i, e := range edges {
		if e[0] == e[1] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], nb{e[1], weight[i]})
		adj[e[1]] = append(adj[e[1]], nb{e[0], weight[i]})
	}
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	matched := 0
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best, bestW := -1, 0
		for _, e := range adj[v] {
			if match[e.v] < 0 && e.v != v && e.w > bestW {
				best, bestW = e.v, e.w
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
			matched++
		}
	}
	if matched == 0 {
		return level{}, false
	}
	// Assign coarse IDs.
	lv := level{fineToCoarse: make([]int, n)}
	coarseID := make([]int, n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if coarseID[v] >= 0 {
			continue
		}
		coarseID[v] = next
		if m := match[v]; m >= 0 {
			coarseID[m] = next
		}
		next++
	}
	lv.bias = make([]float64, next)
	lv.area = make([]float64, next)
	for v := 0; v < n; v++ {
		cv := coarseID[v]
		lv.fineToCoarse[v] = cv
		lv.bias[cv] += bias[v]
		lv.area[cv] += area[v]
	}
	// Collapse edges.
	acc := make(map[[2]int]int)
	for i, e := range edges {
		a, b := coarseID[e[0]], coarseID[e[1]]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		acc[[2]int{a, b}] += weight[i]
	}
	lv.edges = make([][2]int, 0, len(acc))
	lv.weight = make([]int, 0, len(acc))
	for e, w := range acc {
		lv.edges = append(lv.edges, e)
		lv.weight = append(lv.weight, w)
	}
	// Map iteration order is random; sort for determinism.
	sortEdges(lv.edges, lv.weight)
	return lv, true
}

func sortEdges(edges [][2]int, weight []int) {
	idx := make([]int, len(edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := edges[idx[a]], edges[idx[b]]
		if ea[0] != eb[0] {
			return ea[0] < eb[0]
		}
		return ea[1] < eb[1]
	})
	se := make([][2]int, len(edges))
	sw := make([]int, len(weight))
	for i, j := range idx {
		se[i] = edges[j]
		sw[i] = weight[j]
	}
	copy(edges, se)
	copy(weight, sw)
}

// buildProblem materializes a (possibly weighted) instance as a
// partition.Problem by edge replication: an edge of weight w contributes w
// parallel connections, which the cost function counts separately —
// exactly the collapsed fine-level connection count.
func buildProblem(name string, k int, bias, area []float64, edges [][2]int, weight []int) (*partition.Problem, error) {
	if k > len(bias) {
		// Coarsening can undershoot K on tiny inputs; pad is not possible,
		// so surface a clear error.
		return nil, fmt.Errorf("multilevel: level %q has %d vertices for K=%d", name, len(bias), k)
	}
	var rep [][2]int
	for i, e := range edges {
		w := weight[i]
		for j := 0; j < w; j++ {
			rep = append(rep, e)
		}
	}
	return partition.NewProblem(name, k, bias, area, rep)
}
