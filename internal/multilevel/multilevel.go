// Package multilevel implements a multilevel V-cycle variant of the ground
// plane partitioner, the natural "future work" extension of the paper: its
// Section IV argues the problem cannot be fed to classic multilevel K-way
// tools (Karypis/Kumar, the paper's ref [18]) because of the
// distance-weighted connection cost — but the multilevel *schema* (coarsen
// by heavy-edge matching, solve the coarsest instance, project back and
// refine level by level) composes perfectly with the paper's own cost
// function, because every level runs the paper's objective.
//
// The V-cycle:
//
//  1. Coarsen. Heavy-edge matching contracts the instance level by level
//     down to a few hundred supervertices. Collapsed parallel connections
//     become edge weights (partition.NewWeightedProblem), so a level's
//     edge count shrinks with its vertex count instead of retaining the
//     full fine-level connection count.
//  2. Solve. The coarsest instance runs the full Algorithm-1 gradient
//     descent (the PR-4 fused kernels).
//  3. Uncoarsen. At each finer level the relaxed matrix W is projected
//     through the matching (every fine vertex inherits its supervertex's
//     row) and polished by a short, band-limited gradient refine — a warm-
//     started descent capped at Options.RefineIters iterations with the
//     step re-calibrated at the projected point. At the finest level the
//     greedy discrete move pass (partition.Refine) runs last.
//
// Both repo invariants hold through the cycle: results are bitwise
// identical at every Options.Solver.Workers count (every stage is either
// serial or built from the solver's fixed-shard kernels), and the whole
// cycle checkpoints and resumes per level through the VSnapshot codec — a
// level-indexed wrapper around the PR-5 solver snapshot.
package multilevel

import (
	"context"
	"fmt"

	"gpp/internal/partition"
)

// Options configures the multilevel V-cycle.
type Options struct {
	// CoarsestSize stops coarsening when a level has at most this many
	// supervertices (default max(200, 10·K)).
	CoarsestSize int
	// MaxLevels caps the hierarchy depth including the original level
	// (default 32 — enough to take a million-gate instance to a few
	// hundred supervertices at typical contraction ratios).
	MaxLevels int
	// Solver configures the coarsest-level gradient descent; the per-level
	// refines inherit everything except MaxIters (RefineIters), Momentum
	// (forced off — a projected W has no meaningful velocity) and the step
	// (re-calibrated at each projection). Solver.Seed also seeds the
	// matching order, through a per-level derived stream (see levelSeed).
	// Solver.Refine is ignored (the V-cycle owns refinement), and
	// Solver.Checkpoint/Resume must be unset — checkpointing a V-cycle
	// goes through the Checkpoint/Resume fields below.
	Solver partition.Options
	// RefineIters caps the band-limited gradient refine at each
	// uncoarsening step (default 30; the margin criterion can stop it
	// earlier).
	RefineIters int
	// RefinePasses bounds the discrete move-pass sweeps at the finest
	// level (default 6).
	RefinePasses int

	// Checkpoint, when non-nil, receives a VSnapshot at the start of every
	// refine level and every CheckpointEvery iterations inside the level
	// solves (deep copies — the hook may retain or serialize them). A
	// V-cycle killed after a checkpoint and resumed from it finishes
	// bitwise identical to the uninterrupted run at any Workers count.
	// Like the solver's hook it is execution-only: it never changes the
	// result and is excluded from the cache-key fingerprint.
	Checkpoint func(*VSnapshot) error
	// CheckpointEvery is the in-level snapshot cadence in iterations; 0
	// with a non-nil Checkpoint hook uses the solver default (100).
	CheckpointEvery int
	// Resume, when non-nil, continues a checkpointed V-cycle: the
	// hierarchy is rebuilt deterministically from the options, levels
	// coarser than the snapshot's are skipped, and the snapshot's level
	// continues mid-solve. The snapshot must match the problem shape and
	// the V-cycle fingerprint (options plus hierarchy identity).
	Resume *VSnapshot
}

func (o Options) withDefaults(k int) Options {
	if o.CoarsestSize <= 0 {
		o.CoarsestSize = 200
		if 10*k > o.CoarsestSize {
			o.CoarsestSize = 10 * k
		}
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 32
	}
	if o.RefineIters <= 0 {
		o.RefineIters = 30
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 6
	}
	if o.Solver.Seed == 0 {
		o.Solver.Seed = 1
	}
	return o
}

// Normalize returns the options with every default resolved for a K-plane
// problem — the exact configuration PartitionCtx would run. Two spellings
// of the same V-cycle normalize to identical values, which is what lets
// the serve daemon's result cache treat them as one configuration.
func (o Options) Normalize(k int) Options { return o.withDefaults(k) }

func (o Options) validate() error {
	if o.Solver.Checkpoint != nil || o.Solver.Resume != nil {
		return fmt.Errorf("multilevel: set Checkpoint/Resume on multilevel.Options, not on the inner solver options")
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("multilevel: checkpoint interval %d must be ≥ 0 (0 = default)", o.CheckpointEvery)
	}
	return nil
}

// Result reports the multilevel outcome.
type Result struct {
	Labels []int
	Levels int // hierarchy depth including the original level
	// CoarsestSize is the vertex count the full gradient descent actually
	// ran on.
	CoarsestSize int
	// LevelSizes is the vertex count per level, finest (the original
	// problem) first.
	LevelSizes []int
	// CoarseIters is the coarsest solve's gradient iteration count;
	// Iters adds every level's band-limited refine iterations on top.
	CoarseIters, Iters int
	// Converged reports whether the coarsest solve stopped on the margin
	// criterion (the refines are iteration-capped by design and do not
	// affect this flag).
	Converged bool
	// RefineMoves counts gates moved by the discrete move pass at the
	// finest level.
	RefineMoves int
	// Discrete is the cost of the final assignment.
	Discrete partition.Breakdown
}

// Partition runs the multilevel V-cycle on the problem.
func Partition(p *partition.Problem, opts Options) (*Result, error) {
	return PartitionCtx(context.Background(), p, opts)
}

// PartitionCtx is Partition with cooperative cancellation: the context is
// threaded into every level's descent, so a server deadline or client
// cancel stops the cycle within one gradient iteration.
func PartitionCtx(ctx context.Context, p *partition.Problem, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(p.K)
	sNorm, err := opts.Solver.NormalizeFor(p.K)
	if err != nil {
		return nil, err
	}
	// The V-cycle owns refinement and checkpointing; the inner solves get
	// neither knob from the caller.
	sNorm.Refine = false
	sNorm.Checkpoint, sNorm.CheckpointEvery, sNorm.Resume = nil, 0, nil

	// Span instrumentation: one "vcycle" span for the whole cycle, with a
	// "coarsen" child covering the hierarchy build; runVCycle hangs the
	// per-level spans under it and ends it. Nil-safe throughout — a nil
	// sNorm.Span (the default) makes every span call free.
	vspan := sNorm.Span.Child("vcycle")
	coarsen := vspan.Child("coarsen")
	h, err := buildHierarchy(p, opts, sNorm.Seed)
	if err != nil {
		return nil, err
	}
	coarsen.AttrInt("levels", int64(len(h.probs)))
	coarsen.AttrInt("coarsest_gates", int64(h.probs[len(h.probs)-1].G))
	coarsen.End()
	vfp, err := vFingerprint(p, opts, sNorm, h)
	if err != nil {
		return nil, err
	}
	sNorm.Span = vspan
	return runVCycle(ctx, p, opts, sNorm, h, vfp)
}
