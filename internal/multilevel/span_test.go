package multilevel

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"gpp/internal/obs"
	"gpp/internal/partition"
)

// spanTraceJSONL runs one V-cycle partition with an untimed span trace
// attached and returns the emitted span JSONL plus the result.
func spanTraceJSONL(t *testing.T, p *partition.Problem, workers int) ([]byte, *Result) {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	root := obs.NewTrace(sink).Root("test")
	res, err := Partition(p, Options{Solver: partition.Options{
		Seed: 1, MaxIters: 80, Workers: workers, Span: root,
	}})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestVCycleSpanDeterminism: the untimed span tree of a V-cycle solve is
// byte-identical at every worker count — span ids, nesting, and attribute
// values (levels, per-level iters, refinement moves) all derive from the
// deterministic solve, never from scheduling.
func TestVCycleSpanDeterminism(t *testing.T) {
	p := benchProblem(t, "par2000", 4)
	var ref []byte
	seen := map[int]bool{}
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		got, _ := spanTraceJSONL(t, p, workers)
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(ref, got) {
			t.Errorf("span JSONL differs between workers=1 and workers=%d:\n--- w1 ---\n%s--- w%d ---\n%s",
				workers, ref, workers, got)
		}
	}
	if len(ref) == 0 {
		t.Fatal("no span events emitted")
	}
}

// TestVCycleSpanTreeShape: the emitted spans reconstruct into one connected
// tree — root → vcycle → {coarsen, one level per hierarchy level,
// discrete_refine} — with per-level project/descent children.
func TestVCycleSpanTreeShape(t *testing.T) {
	p := benchProblem(t, "par2000", 4)
	raw, res := spanTraceJSONL(t, p, 1)
	events, err := obs.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	roots := obs.BuildSpanTree(events)
	if len(roots) != 1 || roots[0].Event.Span != "test" {
		t.Fatalf("want one root span \"test\", got %d roots", len(roots))
	}
	counts := map[string]int{}
	var walk func(n *obs.SpanNode)
	walk = func(n *obs.SpanNode) {
		counts[n.Event.Span]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(roots[0])
	if counts["vcycle"] != 1 || counts["coarsen"] != 1 || counts["discrete_refine"] != 1 {
		t.Errorf("span counts %v: want exactly one vcycle/coarsen/discrete_refine", counts)
	}
	if counts["level"] != res.Levels {
		t.Errorf("%d level spans for a %d-level hierarchy", counts["level"], res.Levels)
	}
	if counts["descent"] != res.Levels {
		t.Errorf("%d descent spans, want one per level (%d)", counts["descent"], res.Levels)
	}
	if counts["project"] != res.Levels-1 {
		t.Errorf("%d project spans, want one per refinement level (%d)", counts["project"], res.Levels-1)
	}
	var vspan *obs.SpanNode
	for _, c := range roots[0].Children {
		if c.Event.Span == "vcycle" {
			vspan = c
		}
	}
	if vspan == nil {
		t.Fatal("vcycle span is not a direct child of the root")
	}
	wantAttr := fmt.Sprintf("levels=%d iters=%d", res.Levels, res.Iters)
	if vspan.Event.Attrs != wantAttr {
		t.Errorf("vcycle attrs = %q, want %q", vspan.Event.Attrs, wantAttr)
	}
}

// TestVCycleSpanParity: attaching a span trace does not change the solve.
// The labels and iteration counts with tracing enabled match a bare run at
// every worker count (the byte-identity half of the acceptance criteria;
// the span JSONL determinism test covers the other half).
func TestVCycleSpanParity(t *testing.T) {
	p := benchProblem(t, "par2000", 4)
	bare, err := Partition(p, Options{Solver: partition.Options{Seed: 1, MaxIters: 80, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		_, traced := spanTraceJSONL(t, p, workers)
		if traced.Iters != bare.Iters || traced.Levels != bare.Levels {
			t.Fatalf("workers=%d: traced solve diverged: iters %d vs %d, levels %d vs %d",
				workers, traced.Iters, bare.Iters, traced.Levels, bare.Levels)
		}
		if !equalLabels(traced.Labels, bare.Labels) {
			t.Fatalf("workers=%d: traced labels differ from bare labels", workers)
		}
	}
}

func equalLabels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVCycleSpanDisabledAllocFree: with no span attached (the default),
// the exact call pattern the V-cycle instrumentation makes is free — no
// allocations on the nil-receiver path.
func TestVCycleSpanDisabledAllocFree(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		var root *obs.Span
		vspan := root.Child("vcycle")
		coarsen := vspan.Child("coarsen")
		coarsen.AttrInt("levels", 3)
		coarsen.AttrInt("coarsest_gates", 100)
		coarsen.End()
		for level := 2; level >= 0; level-- {
			lspan := vspan.Child("level")
			lspan.AttrInt("level", int64(level))
			pspan := lspan.Child("project")
			pspan.End()
			lspan.AttrInt("iters", 30)
			lspan.End()
		}
		rspan := vspan.Child("discrete_refine")
		rspan.AttrInt("moves", 10)
		rspan.End()
		vspan.AttrInt("iters", 100)
		vspan.End()
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %.1f per V-cycle", allocs)
	}
}
