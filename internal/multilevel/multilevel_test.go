package multilevel

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"gpp/internal/gen"
	"gpp/internal/partition"
	"gpp/internal/recycle"
)

func benchProblem(t *testing.T, name string, k int) *partition.Problem {
	t.Helper()
	c, err := gen.Benchmark(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMultilevelBasicContract(t *testing.T) {
	p := benchProblem(t, "KSA16", 5)
	res, err := Partition(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != p.G {
		t.Fatalf("%d labels for %d gates", len(res.Labels), p.G)
	}
	for i, lb := range res.Labels {
		if lb < 0 || lb >= p.K {
			t.Fatalf("label[%d] = %d", i, lb)
		}
	}
	if res.Levels < 2 {
		t.Errorf("hierarchy depth %d — coarsening did not engage on %d gates", res.Levels, p.G)
	}
	if res.CoarsestSize > p.G {
		t.Errorf("coarsest size %d above original %d", res.CoarsestSize, p.G)
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BalanceCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestMultilevelCoarseningShrinks(t *testing.T) {
	p := benchProblem(t, "C432", 5)
	res, err := Partition(p, Options{CoarsestSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoarsestSize > 100 && res.Levels >= 20 {
		t.Errorf("coarsest %d after %d levels", res.CoarsestSize, res.Levels)
	}
	if res.CoarsestSize >= p.G/2 {
		t.Errorf("coarsening barely shrank: %d of %d", res.CoarsestSize, p.G)
	}
}

func TestMultilevelQualityCompetitive(t *testing.T) {
	// The multilevel flow must beat plain random and be in the same league
	// as the flat solve on the discrete objective.
	p := benchProblem(t, "KSA16", 5)
	coeffs := partition.DefaultCoeffs()

	ml, err := Partition(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mlCost := p.DiscreteCost(ml.Labels, coeffs).Total

	rng := rand.New(rand.NewSource(1))
	rndLabels := make([]int, p.G)
	for i := range rndLabels {
		rndLabels[i] = rng.Intn(p.K)
	}
	rndCost := p.DiscreteCost(rndLabels, coeffs).Total
	if mlCost >= rndCost {
		t.Errorf("multilevel %g not better than random %g", mlCost, rndCost)
	}

	flat, err := p.Solve(partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	flatCost := p.DiscreteCost(flat.Labels, coeffs).Total
	// Multilevel includes refinement, so it should usually win; assert it
	// is at least not dramatically worse.
	if mlCost > flatCost*0.5+0.5*rndCost {
		t.Errorf("multilevel %g much worse than flat %g (random %g)", mlCost, flatCost, rndCost)
	}
}

func TestMultilevelFasterOnLargeInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison in -short mode")
	}
	p := benchProblem(t, "C3540", 5)

	t0 := time.Now()
	if _, err := Partition(p, Options{}); err != nil {
		t.Fatal(err)
	}
	mlTime := time.Since(t0)

	t0 = time.Now()
	if _, err := p.Solve(partition.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	flatTime := time.Since(t0)

	if mlTime > flatTime {
		t.Logf("note: multilevel (%v) not faster than flat (%v) on this host", mlTime, flatTime)
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	p := benchProblem(t, "KSA8", 5)
	a, err := Partition(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("multilevel not deterministic")
		}
	}
}

func TestMultilevelTinyInstanceSkipsCoarsening(t *testing.T) {
	p := benchProblem(t, "KSA4", 5) // 79 gates, below the explicit threshold
	res, err := Partition(p, Options{CoarsestSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != 1 {
		t.Errorf("expected trivial hierarchy, got %d levels", res.Levels)
	}
	if len(res.Labels) != p.G {
		t.Fatal("labels wrong length")
	}
}

func TestMultilevelPreservesTotals(t *testing.T) {
	// Coarsening must conserve total bias/area: verify through the metric
	// identity on the final labels.
	p := benchProblem(t, "MULT8", 5)
	res, err := Partition(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bias, area := p.PlaneTotals(res.Labels)
	var b, a float64
	for k := 0; k < p.K; k++ {
		b += bias[k]
		a += area[k]
	}
	if diff := b - p.TotalBias; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("bias total drifted: %g vs %g", b, p.TotalBias)
	}
	if diff := a - p.TotalArea; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("area total drifted: %g vs %g", a, p.TotalArea)
	}
}

func TestMultilevelOvercoarseningSurfacesError(t *testing.T) {
	// Forcing the hierarchy below K vertices must produce a clear error,
	// not a panic or a silent bad partition.
	p := benchProblem(t, "KSA8", 5)
	_, err := Partition(p, Options{CoarsestSize: 2, MaxLevels: 20})
	if err == nil {
		t.Skip("coarsening could not get below K on this instance")
	}
	if !strings.Contains(err.Error(), "vertices for K") {
		t.Errorf("unexpected error: %v", err)
	}
}
