package multilevel

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/partition"
)

// captureVCycle runs one checkpointing V-cycle and returns every VSnapshot
// the hook saw, serialized at hook time (the codec is part of what the
// resume tests exercise).
func captureVCycle(t *testing.T, p *partition.Problem, opts Options, every int) (*Result, [][]byte) {
	t.Helper()
	var snaps [][]byte
	opts.CheckpointEvery = every
	opts.Checkpoint = func(s *VSnapshot) error {
		snaps = append(snaps, EncodeVSnapshot(s))
		return nil
	}
	res, err := Partition(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, snaps
}

// TestVCycleKillResume is the PR-6 checkpoint contract: a V-cycle killed at
// ANY snapshot boundary — mid-coarsest-solve, at a refine level's start, or
// mid-refine — and resumed in a fresh call finishes bitwise identical to
// the uninterrupted run, even when the resumed run uses a different worker
// count. Every captured snapshot is treated as a kill point.
func TestVCycleKillResume(t *testing.T) {
	p := benchProblem(t, "C499", 5)
	base := func(workers int) Options {
		return Options{Solver: partition.Options{Seed: 1, MaxIters: 80, Workers: workers}}
	}

	want, err := Partition(p, base(1))
	if err != nil {
		t.Fatal(err)
	}

	// The checkpoint hook is execution-only: the checkpointing run must
	// already match the plain one.
	got, snaps := captureVCycle(t, p, base(1), 10)
	requireIdenticalVResults(t, "checkpointing run", want, got)
	if len(snaps) < want.Levels+2 {
		t.Fatalf("only %d snapshots captured across %d levels — per-level checkpointing not engaged", len(snaps), want.Levels)
	}

	counts := []int{1, 2, runtime.NumCPU()}
	seenLevels := map[int]bool{}
	for i, raw := range snaps {
		vs, err := DecodeVSnapshot(raw)
		if err != nil {
			t.Fatalf("snapshot %d does not decode: %v", i, err)
		}
		seenLevels[vs.Level] = true
		ropts := base(counts[i%len(counts)])
		ropts.Resume = vs
		res, err := Partition(p, ropts)
		if err != nil {
			t.Fatalf("resume from snapshot %d (level %d, iter %d): %v", i, vs.Level, vs.Inner.Iter, err)
		}
		requireIdenticalVResults(t,
			fmt.Sprintf("resume from snapshot %d (level %d, iter %d, workers %d)",
				i, vs.Level, vs.Inner.Iter, ropts.Solver.Workers),
			want, res)
	}
	// The kill points must cover more than one hierarchy level, or the test
	// only exercised the coarsest solve.
	if len(seenLevels) < 2 {
		t.Fatalf("snapshots covered %d level(s); want kill points across levels", len(seenLevels))
	}
}

// TestVCycleResumeRejectsDrift: a snapshot resumed under a different
// configuration or problem must be rejected with a descriptive error, not
// silently continued as a hybrid run.
func TestVCycleResumeRejectsDrift(t *testing.T) {
	p := benchProblem(t, "C432", 5)
	opts := Options{Solver: partition.Options{Seed: 1, MaxIters: 40}}
	_, snaps := captureVCycle(t, p, opts, 10)
	vs, err := DecodeVSnapshot(snaps[0])
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		p    *partition.Problem
		opts Options
		want string
	}{
		{"different seed", p,
			Options{Solver: partition.Options{Seed: 2, MaxIters: 40}}, "fingerprint"},
		{"different coarsest", p,
			Options{CoarsestSize: 120, Solver: partition.Options{Seed: 1, MaxIters: 40}}, "fingerprint"},
		{"different circuit", benchProblem(t, "C499", 5), opts, "problem"},
	}
	for _, tc := range cases {
		o := tc.opts
		o.Resume = vs
		if _, err := Partition(tc.p, o); err == nil {
			t.Errorf("%s: resume accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestVSnapshotRoundTrip pins the codec: encode → decode reproduces every
// field, with the embedded solver snapshot compared through its own exact
// binary form.
func TestVSnapshotRoundTrip(t *testing.T) {
	p := benchProblem(t, "C432", 5)
	_, snaps := captureVCycle(t, p, Options{Solver: partition.Options{Seed: 7, MaxIters: 30}}, 10)
	for i, raw := range snaps {
		s, err := DecodeVSnapshot(raw)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		re := EncodeVSnapshot(s)
		if !bytes.Equal(re, raw) {
			t.Fatalf("snapshot %d: re-encoding is not byte-identical", i)
		}
		s2, err := DecodeVSnapshot(re)
		if err != nil {
			t.Fatalf("snapshot %d second decode: %v", i, err)
		}
		if s2.Name != s.Name || s2.G != s.G || s2.K != s.K || s2.EdgeCount != s.EdgeCount ||
			s2.Fingerprint != s.Fingerprint || s2.Levels != s.Levels || s2.Level != s.Level ||
			s2.CoarseIters != s.CoarseIters || s2.DoneIters != s.DoneIters || s2.Converged != s.Converged {
			t.Fatalf("snapshot %d: fields drifted across roundtrip", i)
		}
		if !bytes.Equal(partition.EncodeSnapshot(s2.Inner), partition.EncodeSnapshot(s.Inner)) {
			t.Fatalf("snapshot %d: inner snapshot drifted across roundtrip", i)
		}
	}
}

// TestVSnapshotDecodeRejectsDamage walks the classic corruption cases the
// decoder must turn into errors.
func TestVSnapshotDecodeRejectsDamage(t *testing.T) {
	p := benchProblem(t, "C432", 5)
	_, snaps := captureVCycle(t, p, Options{Solver: partition.Options{Seed: 1, MaxIters: 30}}, 10)
	valid := snaps[0]

	cases := []struct {
		name string
		raw  []byte
	}{
		{"empty", nil},
		{"short", valid[:4]},
		{"bad magic", append([]byte("xxxxxxxx"), valid[8:]...)},
		{"truncated payload", valid[:len(valid)-5]},
		{"trailing bytes", append(append([]byte(nil), valid...), 0)},
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x40
	cases = append(cases, struct {
		name string
		raw  []byte
	}{"bit flip", flipped})

	for _, tc := range cases {
		if _, err := DecodeVSnapshot(tc.raw); err == nil {
			t.Errorf("%s: decoded successfully", tc.name)
		}
	}
}

// FuzzVCycleSnapshotDecode holds the decoder to its contract on arbitrary
// bytes: never panic, and anything it accepts must re-encode into a form it
// accepts again with identical fields.
func FuzzVCycleSnapshotDecode(f *testing.F) {
	c, err := gen.Benchmark("C432", nil)
	if err != nil {
		f.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		f.Fatal(err)
	}
	var valid []byte
	_, err = Partition(p, Options{
		Solver:          partition.Options{Seed: 1, MaxIters: 15},
		CheckpointEvery: 10,
		Checkpoint: func(s *VSnapshot) error {
			if valid == nil {
				valid = EncodeVSnapshot(s)
			}
			return nil
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(vsnapshotMagic))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 1
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := DecodeVSnapshot(raw)
		if err != nil {
			return
		}
		re := EncodeVSnapshot(s)
		s2, err := DecodeVSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted snapshot rejected: %v", err)
		}
		if s2.G != s.G || s2.K != s.K || s2.Levels != s.Levels || s2.Level != s.Level ||
			s2.Fingerprint != s.Fingerprint {
			t.Fatal("accepted snapshot drifted across re-encode")
		}
	})
}
