package multilevel

import (
	"fmt"
	"runtime"
	"testing"

	"gpp/internal/partition"
)

// tableICircuits are the paper's Table I instances the regression suites
// sweep; the scaling synthetics ride along in the slow tier.
var tableICircuits = []string{"C432", "C499", "C1355", "C1908", "C3540"}

// requireIdenticalVResults compares every field of two V-cycle results
// bitwise: labels, hierarchy shape, iteration accounting, and the float
// cost breakdown (== on floats — the determinism contract is bit
// equality, not tolerance).
func requireIdenticalVResults(t *testing.T, what string, want, got *Result) {
	t.Helper()
	if got.Levels != want.Levels || got.CoarsestSize != want.CoarsestSize {
		t.Fatalf("%s: hierarchy diverged: %d levels/%d coarsest vs %d/%d",
			what, got.Levels, got.CoarsestSize, want.Levels, want.CoarsestSize)
	}
	if len(got.LevelSizes) != len(want.LevelSizes) {
		t.Fatalf("%s: level count %d vs %d", what, len(got.LevelSizes), len(want.LevelSizes))
	}
	for i := range want.LevelSizes {
		if got.LevelSizes[i] != want.LevelSizes[i] {
			t.Fatalf("%s: level %d size %d vs %d", what, i, got.LevelSizes[i], want.LevelSizes[i])
		}
	}
	if got.CoarseIters != want.CoarseIters || got.Iters != want.Iters ||
		got.Converged != want.Converged || got.RefineMoves != want.RefineMoves {
		t.Fatalf("%s: accounting diverged: coarse %d/%d iters %d/%d conv %v/%v moves %d/%d",
			what, got.CoarseIters, want.CoarseIters, got.Iters, want.Iters,
			got.Converged, want.Converged, got.RefineMoves, want.RefineMoves)
	}
	if got.Discrete != want.Discrete {
		t.Fatalf("%s: discrete cost diverged:\n got  %+v\n want %+v", what, got.Discrete, want.Discrete)
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", what, i, got.Labels[i], want.Labels[i])
		}
	}
}

// TestVCycleWorkersDeterminismSweep is the PR-6 acceptance sweep, the
// V-cycle mirror of partition.TestSolveWorkersDeterminismSweep: Workers =
// 1, 2, and NumCPU produce bitwise identical Results on every Table I
// circuit, and a repeated run with the same seed reproduces the first.
// The slow tier extends the sweep to a 100k-gate synthetic.
func TestVCycleWorkersDeterminismSweep(t *testing.T) {
	counts := []int{1, 2, runtime.NumCPU()}
	circuits := append([]string(nil), tableICircuits...)
	if !testing.Short() {
		circuits = append(circuits, "par100000")
	}
	for _, circuit := range circuits {
		p := benchProblem(t, circuit, 5)
		var want *Result
		for _, workers := range counts {
			got, err := Partition(p, Options{Solver: partition.Options{
				Seed: 1, MaxIters: 300, Workers: workers,
			}})
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			requireIdenticalVResults(t, fmt.Sprintf("%s workers %d", circuit, workers), want, got)
		}
		// Same seed, same worker count, fresh run: the cycle is a pure
		// function of (problem, options).
		again, err := Partition(p, Options{Solver: partition.Options{
			Seed: 1, MaxIters: 300, Workers: counts[len(counts)-1],
		}})
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalVResults(t, circuit+" repeat", want, again)
	}
}

// TestHierarchyDeterministic pins the satellite fix for the shared-RNG
// matching order: two hierarchy builds with equal options must produce
// identical chains — per-level vertex counts, projection maps, edges, and
// weights. (The historical implementation threaded one *rand.Rand through
// all contractions, so a level's permutation depended on hierarchy shape.)
func TestHierarchyDeterministic(t *testing.T) {
	p := benchProblem(t, "C1908", 5)
	opts := Options{}.Normalize(p.K)
	build := func() *hierarchy {
		h, err := buildHierarchy(p, opts, opts.Solver.Seed)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := build(), build()
	if len(a.levels) != len(b.levels) {
		t.Fatalf("depth %d vs %d", len(a.levels), len(b.levels))
	}
	for li := range a.levels {
		la, lb := a.levels[li], b.levels[li]
		if len(la.bias) != len(lb.bias) || len(la.edges) != len(lb.edges) {
			t.Fatalf("level %d shape: %d/%d vertices, %d/%d edges",
				li, len(la.bias), len(lb.bias), len(la.edges), len(lb.edges))
		}
		for v := range la.fineToCoarse {
			if la.fineToCoarse[v] != lb.fineToCoarse[v] {
				t.Fatalf("level %d projection map diverges at vertex %d", li, v)
			}
		}
		for i := range la.edges {
			if la.edges[i] != lb.edges[i] || la.weight[i] != lb.weight[i] {
				t.Fatalf("level %d edge %d diverges", li, i)
			}
		}
		for v := range la.bias {
			if la.bias[v] != lb.bias[v] || la.area[v] != lb.area[v] {
				t.Fatalf("level %d vertex %d bias/area diverges", li, v)
			}
		}
	}
}

// TestLevelSeedIsPerLevel: the derived seeds must differ across levels and
// across solver seeds — a collision would make two contractions share a
// matching permutation by accident.
func TestLevelSeedIsPerLevel(t *testing.T) {
	seen := map[int64]string{}
	for _, seed := range []int64{1, 2, 42} {
		for level := 0; level < 32; level++ {
			s := levelSeed(seed, level)
			key := fmt.Sprintf("seed %d level %d", seed, level)
			if prev, dup := seen[s]; dup {
				t.Fatalf("levelSeed collision: %s and %s both map to %d", key, prev, s)
			}
			seen[s] = key
		}
	}
}
