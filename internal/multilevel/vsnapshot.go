package multilevel

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"strconv"

	"gpp/internal/partition"
)

// VSnapshot is the complete V-cycle state at an inner iteration boundary:
// which hierarchy level is live, the running iteration totals, and the
// level solver's own Snapshot. Resuming a V-cycle from a VSnapshot in a
// fresh process produces a Result bitwise identical to the uninterrupted
// run — at any Workers count — because the hierarchy is rebuilt
// deterministically from the options, levels coarser than the snapshot's
// are already folded into the inner snapshot's W, and the inner snapshot
// itself restarts its level's descent bit-for-bit.
type VSnapshot struct {
	// Version is the codec version that produced this snapshot.
	Version int

	// Name is the original (finest) problem's name (informational).
	Name string

	// G, K and EdgeCount pin the original problem's shape; Fingerprint
	// pins the V-cycle identity — normalized solver options, multilevel
	// knobs, and the per-level shapes of the hierarchy they produce (see
	// vFingerprint). Resume rejects a snapshot whose identity does not
	// match; the continuation would be a different cycle.
	G, K, EdgeCount int
	Fingerprint     string

	// Levels is the hierarchy depth including the original level; Level is
	// the 0-based level the snapshot was taken in (Levels−1 = coarsest).
	Levels, Level int

	// CoarseIters and Converged mirror the coarsest solve's outcome once
	// it has finished (zero / false in snapshots taken during it);
	// DoneIters is the total inner iterations completed in levels coarser
	// than Level. Carrying them lets a resumed cycle reconstruct the
	// Result metadata, not just the labels.
	CoarseIters, DoneIters int
	Converged              bool

	// Inner is the live level's solver snapshot.
	Inner *partition.Snapshot
}

// vsnapshotVersion is the current binary codec version.
const vsnapshotVersion = 1

// vsnapshotMagic tags the binary encoding, distinct from the inner solver
// snapshot's magic so the two formats can never be confused.
const vsnapshotMagic = "gppvsnp\x01"

// maxVSnapshotInner bounds the embedded inner-snapshot length so a
// malformed header cannot demand an absurd allocation before the CRC is
// checked. The inner codec's own element cap implies its encodings stay
// far below this.
const maxVSnapshotInner = 1 << 31

// EncodeVSnapshot serializes the snapshot to the versioned binary format:
//
//	magic ‖ u32 version ‖ u32 crc32(payload) ‖ u64 len(payload) ‖ payload
//
// the same framing as partition.EncodeSnapshot; the inner solver snapshot
// is embedded as one length-prefixed blob of its own encoding, so its
// exactness guarantees (raw IEEE-754 bits, CRC) carry over wholesale.
func EncodeVSnapshot(s *VSnapshot) []byte {
	var p []byte
	putU64 := func(v uint64) { p = binary.LittleEndian.AppendUint64(p, v) }
	putStr := func(v string) { putU64(uint64(len(v))); p = append(p, v...) }
	putStr(s.Name)
	putU64(uint64(s.G))
	putU64(uint64(s.K))
	putU64(uint64(s.EdgeCount))
	putStr(s.Fingerprint)
	putU64(uint64(s.Levels))
	putU64(uint64(s.Level))
	putU64(uint64(s.CoarseIters))
	putU64(uint64(s.DoneIters))
	if s.Converged {
		putU64(1)
	} else {
		putU64(0)
	}
	inner := partition.EncodeSnapshot(s.Inner)
	putU64(uint64(len(inner)))
	p = append(p, inner...)

	out := make([]byte, 0, len(vsnapshotMagic)+16+len(p))
	out = append(out, vsnapshotMagic...)
	out = binary.LittleEndian.AppendUint32(out, vsnapshotVersion)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(p))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(p)))
	return append(out, p...)
}

// vsnapDecoder is a bounds-checked cursor over the payload.
type vsnapDecoder struct {
	p   []byte
	off int
	err error
}

func (d *vsnapDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.p) {
		d.err = fmt.Errorf("multilevel: snapshot truncated at byte %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	return v
}

func (d *vsnapDecoder) bytes(what string, limit uint64) []byte {
	n := d.u64()
	if d.err == nil && n > limit {
		d.err = fmt.Errorf("multilevel: snapshot %s length %d exceeds limit", what, n)
	}
	if d.err == nil && d.off+int(n) > len(d.p) {
		d.err = fmt.Errorf("multilevel: snapshot %s truncated", what)
	}
	if d.err != nil {
		return nil
	}
	b := d.p[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *vsnapDecoder) str(what string) string {
	return string(d.bytes(what, 1<<20))
}

// DecodeVSnapshot parses and validates the binary V-cycle snapshot. Any
// malformed input — bad magic, unknown version, CRC mismatch, truncation,
// trailing garbage, or a corrupt embedded solver snapshot — is a
// descriptive error, never a panic (FuzzVCycleSnapshotDecode holds it to
// that).
func DecodeVSnapshot(raw []byte) (*VSnapshot, error) {
	head := len(vsnapshotMagic) + 16
	if len(raw) < head {
		return nil, fmt.Errorf("multilevel: snapshot too short (%d bytes)", len(raw))
	}
	if string(raw[:len(vsnapshotMagic)]) != vsnapshotMagic {
		return nil, fmt.Errorf("multilevel: not a V-cycle snapshot (bad magic)")
	}
	version := binary.LittleEndian.Uint32(raw[len(vsnapshotMagic):])
	if version != vsnapshotVersion {
		return nil, fmt.Errorf("multilevel: snapshot version %d not supported (have %d)", version, vsnapshotVersion)
	}
	wantCRC := binary.LittleEndian.Uint32(raw[len(vsnapshotMagic)+4:])
	wantLen := binary.LittleEndian.Uint64(raw[len(vsnapshotMagic)+8:])
	payload := raw[head:]
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("multilevel: snapshot payload %d bytes, header says %d", len(payload), wantLen)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("multilevel: snapshot CRC mismatch (got %08x, want %08x)", got, wantCRC)
	}

	d := &vsnapDecoder{p: payload}
	s := &VSnapshot{Version: int(version)}
	s.Name = d.str("name")
	s.G = int(d.u64())
	s.K = int(d.u64())
	s.EdgeCount = int(d.u64())
	s.Fingerprint = d.str("fingerprint")
	s.Levels = int(d.u64())
	s.Level = int(d.u64())
	s.CoarseIters = int(d.u64())
	s.DoneIters = int(d.u64())
	s.Converged = d.u64() != 0
	innerRaw := d.bytes("inner snapshot", maxVSnapshotInner)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.p) {
		return nil, fmt.Errorf("multilevel: snapshot has %d trailing bytes", len(d.p)-d.off)
	}
	inner, err := partition.DecodeSnapshot(innerRaw)
	if err != nil {
		return nil, fmt.Errorf("multilevel: inner snapshot: %w", err)
	}
	s.Inner = inner
	if s.G <= 0 || s.K <= 0 || s.EdgeCount < 0 {
		return nil, fmt.Errorf("multilevel: snapshot shape G=%d K=%d edges=%d invalid", s.G, s.K, s.EdgeCount)
	}
	if s.Levels <= 0 || s.Level < 0 || s.Level >= s.Levels {
		return nil, fmt.Errorf("multilevel: snapshot level %d of %d invalid", s.Level, s.Levels)
	}
	if s.CoarseIters < 0 || s.DoneIters < 0 {
		return nil, fmt.Errorf("multilevel: snapshot iteration counters negative (%d/%d)", s.CoarseIters, s.DoneIters)
	}
	return s, nil
}

// vFingerprint identifies one V-cycle configuration: the normalized inner
// solver options (partition.Options.Fingerprint — execution-only fields
// excluded), the multilevel knobs, the original problem shape, and the
// shape of every hierarchy level the coarsener produced. Two runs share a
// fingerprint exactly when they walk the same hierarchy with the same
// solves, which is the precondition for resuming one from the other's
// snapshot.
func vFingerprint(p *partition.Problem, opts Options, sNorm partition.Options, h *hierarchy) (string, error) {
	sfp, err := sNorm.Fingerprint()
	if err != nil {
		return "", err
	}
	b := make([]byte, 0, 256)
	b = append(b, "gpp-vcycle-v1|"...)
	b = append(b, sfp...)
	i := func(v int) {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(v), 10)
	}
	i(opts.CoarsestSize)
	i(opts.MaxLevels)
	i(opts.RefineIters)
	i(opts.RefinePasses)
	i(p.G)
	i(p.K)
	i(len(p.Edges))
	i(len(h.probs))
	for _, lp := range h.probs {
		i(lp.G)
		i(len(lp.Edges))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
