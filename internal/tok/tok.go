// Package tok provides the whitespace tokenizer shared by the LEF and DEF
// readers. Tokens are whitespace-separated words; ';' and parentheses are
// standalone tokens even when glued to a word (matching LEF/DEF syntax
// where `;`, `(`, `)` are statement/group delimiters); '#' starts a
// line comment.
package tok

import (
	"bufio"
	"io"
	"strings"
)

// Tokenizer scans LEF/DEF-style tokens from a reader.
type Tokenizer struct {
	sc   *bufio.Scanner
	buf  []string
	done bool
}

// New creates a tokenizer over r.
func New(r io.Reader) *Tokenizer {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Tokenizer{sc: sc}
}

// Next returns the next token, or "", false at EOF.
func (t *Tokenizer) Next() (string, bool) {
	for len(t.buf) == 0 {
		if t.done {
			return "", false
		}
		if !t.sc.Scan() {
			t.done = true
			return "", false
		}
		line := t.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, w := range strings.Fields(line) {
			t.buf = append(t.buf, split(w)...)
		}
	}
	tk := t.buf[0]
	t.buf = t.buf[1:]
	return tk, true
}

// Peek returns the next token without consuming it.
func (t *Tokenizer) Peek() (string, bool) {
	tk, ok := t.Next()
	if !ok {
		return "", false
	}
	t.buf = append([]string{tk}, t.buf...)
	return tk, true
}

// SkipStatement consumes tokens up to and including the next ';'.
func (t *Tokenizer) SkipStatement() {
	for {
		tk, ok := t.Next()
		if !ok || tk == ";" {
			return
		}
	}
}

// Err returns any underlying scan error.
func (t *Tokenizer) Err() error { return t.sc.Err() }

// split separates delimiters that LEF/DEF allow to be glued to words.
func split(w string) []string {
	var out []string
	start := 0
	for i := 0; i < len(w); i++ {
		switch w[i] {
		case ';', '(', ')':
			if i > start {
				out = append(out, w[start:i])
			}
			out = append(out, string(w[i]))
			start = i + 1
		}
	}
	if start < len(w) {
		out = append(out, w[start:])
	}
	return out
}
