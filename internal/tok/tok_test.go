package tok

import (
	"strings"
	"testing"
)

func collect(t *testing.T, s string) []string {
	t.Helper()
	tz := New(strings.NewReader(s))
	var out []string
	for {
		tk, ok := tz.Next()
		if !ok {
			break
		}
		out = append(out, tk)
	}
	if err := tz.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := collect(t, "DESIGN top ;\nUNITS DISTANCE MICRONS 1000 ;")
	want := []string{"DESIGN", "top", ";", "UNITS", "DISTANCE", "MICRONS", "1000", ";"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestGluedDelimiters(t *testing.T) {
	got := collect(t, "DIEAREA (0 0) (100 200);")
	want := []string{"DIEAREA", "(", "0", "0", ")", "(", "100", "200", ")", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestComments(t *testing.T) {
	got := collect(t, "A B # this is a comment ; ( )\nC")
	want := []string{"A", "B", "C"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	tz := New(strings.NewReader("X Y"))
	p1, ok := tz.Peek()
	if !ok || p1 != "X" {
		t.Fatalf("Peek = %q, %v", p1, ok)
	}
	n1, _ := tz.Next()
	if n1 != "X" {
		t.Errorf("Next after Peek = %q, want X", n1)
	}
	n2, _ := tz.Next()
	if n2 != "Y" {
		t.Errorf("second Next = %q, want Y", n2)
	}
	if _, ok := tz.Peek(); ok {
		t.Error("Peek at EOF should fail")
	}
}

func TestSkipStatement(t *testing.T) {
	tz := New(strings.NewReader("IGNORE a b c ; NEXT"))
	tz.Next() // IGNORE
	tz.SkipStatement()
	got, _ := tz.Next()
	if got != "NEXT" {
		t.Errorf("after SkipStatement got %q, want NEXT", got)
	}
	// SkipStatement at EOF terminates.
	tz.SkipStatement()
	if _, ok := tz.Next(); ok {
		t.Error("expected EOF")
	}
}

func TestEmptyInput(t *testing.T) {
	tz := New(strings.NewReader(""))
	if _, ok := tz.Next(); ok {
		t.Error("empty input should yield no tokens")
	}
	// Repeated Next at EOF stays at EOF.
	if _, ok := tz.Next(); ok {
		t.Error("EOF is not sticky")
	}
}

func TestLongLine(t *testing.T) {
	// Lines longer than the default bufio.Scanner limit must still scan.
	var sb strings.Builder
	for i := 0; i < 100000; i++ {
		sb.WriteString("tok ")
	}
	got := collect(t, sb.String())
	if len(got) != 100000 {
		t.Errorf("got %d tokens, want 100000", len(got))
	}
}
