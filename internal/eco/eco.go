// Package eco implements incremental repartitioning for engineering
// change orders: when a partitioned design grows by a few cells (buffer
// insertion, coupler retiming, late logic fixes), rerunning the full
// gradient descent both wastes time and — worse for a physical design
// already being laid out — can move every gate. Extend instead keeps the
// existing assignment, places each new gate on the plane that minimizes
// the paper's discrete objective, and runs a move-based cleanup restricted
// to the neighborhood the edit touched.
package eco

import (
	"fmt"

	"gpp/internal/partition"
)

// Options configures Extend.
type Options struct {
	// Coeffs weight the discrete objective; zero value uses the defaults.
	Coeffs partition.Coeffs
	// LocalPasses bounds the neighborhood cleanup sweeps (default 4;
	// 0 keeps the pure greedy insertion).
	LocalPasses int
	localSet    bool
}

// WithoutCleanup disables the local refinement pass.
func (o Options) WithoutCleanup() Options {
	o.LocalPasses = 0
	o.localSet = true
	return o
}

func (o Options) withDefaults() Options {
	if o.Coeffs == (partition.Coeffs{}) {
		o.Coeffs = partition.DefaultCoeffs()
	}
	if o.LocalPasses == 0 && !o.localSet {
		o.LocalPasses = 4
	}
	return o
}

// Result reports the incremental assignment.
type Result struct {
	// Labels covers all p.G gates (old labels preserved unless the
	// cleanup moved them).
	Labels []int
	// Inserted is the number of newly assigned gates; Adjusted counts old
	// gates moved by the cleanup.
	Inserted int
	Adjusted int
}

// Extend assigns the gates of p beyond len(oldLabels) into the existing
// partition. The problem's first len(oldLabels) gates must be the old
// design's gates in their original order (the usual shape of an appended
// netlist edit).
func Extend(p *partition.Problem, oldLabels []int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	oldG := len(oldLabels)
	if oldG == 0 {
		return nil, fmt.Errorf("eco: empty base assignment")
	}
	if oldG > p.G {
		return nil, fmt.Errorf("eco: base assignment has %d gates, problem only %d", oldG, p.G)
	}
	labels := make([]int, p.G)
	for i, lb := range oldLabels {
		if lb < 0 || lb >= p.K {
			return nil, fmt.Errorf("eco: base label %d of gate %d outside [0,%d)", lb, i, p.K)
		}
		labels[i] = lb
	}
	for i := oldG; i < p.G; i++ {
		labels[i] = -1
	}

	adj := make([][]int32, p.G)
	for _, e := range p.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	bk, ak := make([]float64, p.K), make([]float64, p.K)
	for i := 0; i < oldG; i++ {
		bk[labels[i]] += p.Bias[i]
		ak[labels[i]] += p.Area[i]
	}
	pow4 := func(x float64) float64 { x *= x; return x * x }
	c := opts.Coeffs

	// insertionCost of placing unassigned gate i on plane to, counting
	// only edges to already-assigned neighbors.
	insertionCost := func(i, to int) float64 {
		var wire float64
		for _, j := range adj[i] {
			if labels[j] < 0 {
				continue
			}
			wire += pow4(float64(to - labels[j]))
		}
		d1 := c.C1 * wire / p.N1
		bq := bk[to] - p.MeanBias
		bi := p.Bias[i]
		d2 := c.C2 * ((bq+bi)*(bq+bi) - bq*bq) / (float64(p.K) * p.N2)
		aq := ak[to] - p.MeanArea
		ai := p.Area[i]
		d3 := c.C3 * ((aq+ai)*(aq+ai) - aq*aq) / (float64(p.K) * p.N3)
		return d1 + d2 + d3
	}

	res := &Result{}
	for i := oldG; i < p.G; i++ {
		best, bestCost := 0, insertionCost(i, 0)
		for k := 1; k < p.K; k++ {
			if cost := insertionCost(i, k); cost < bestCost {
				best, bestCost = k, cost
			}
		}
		labels[i] = best
		bk[best] += p.Bias[i]
		ak[best] += p.Area[i]
		res.Inserted++
	}

	// Neighborhood cleanup: the touched set is the new gates plus their
	// direct neighbors; sweep single-gate moves over it.
	if opts.LocalPasses > 0 {
		touched := make(map[int]bool)
		for i := oldG; i < p.G; i++ {
			touched[i] = true
			for _, j := range adj[i] {
				touched[int(j)] = true
			}
		}
		order := make([]int, 0, len(touched))
		for i := 0; i < p.G; i++ {
			if touched[i] {
				order = append(order, i)
			}
		}
		for pass := 0; pass < opts.LocalPasses; pass++ {
			moves := 0
			for _, i := range order {
				from := labels[i]
				bi, ai := p.Bias[i], p.Area[i]
				bestDelta, bestTo := 0.0, -1
				for to := 0; to < p.K; to++ {
					if to == from {
						continue
					}
					var dWire float64
					for _, j := range adj[i] {
						lj := float64(labels[j])
						dWire += pow4(float64(to)-lj) - pow4(float64(from)-lj)
					}
					d1 := c.C1 * dWire / p.N1
					bp := bk[from] - p.MeanBias
					bq := bk[to] - p.MeanBias
					d2 := c.C2 * ((bp-bi)*(bp-bi) + (bq+bi)*(bq+bi) - bp*bp - bq*bq) / (float64(p.K) * p.N2)
					ap := ak[from] - p.MeanArea
					aq := ak[to] - p.MeanArea
					d3 := c.C3 * ((ap-ai)*(ap-ai) + (aq+ai)*(aq+ai) - ap*ap - aq*aq) / (float64(p.K) * p.N3)
					if delta := d1 + d2 + d3; delta < bestDelta-1e-15 {
						bestDelta, bestTo = delta, to
					}
				}
				if bestTo >= 0 {
					bk[from] -= bi
					ak[from] -= ai
					bk[bestTo] += bi
					ak[bestTo] += ai
					labels[i] = bestTo
					moves++
					if i < oldG {
						res.Adjusted++
					}
				}
			}
			if moves == 0 {
				break
			}
		}
	}
	res.Labels = labels
	return res, nil
}
