package eco

import (
	"testing"

	"gpp/internal/cellib"
	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
	"gpp/internal/recycle"
)

// grownCircuit partitions a benchmark, then appends a chain of new cells
// hanging off an existing gate, returning the extended problem and the
// base labels.
func grownCircuit(t *testing.T, name string, k, extra int) (*partition.Problem, []int, int) {
	t.Helper()
	c, err := gen.Benchmark(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 600})
	if err != nil {
		t.Fatal(err)
	}
	oldG := c.NumGates()

	// Append a DFF chain driven by the last gate with an output.
	lib := cellib.Default()
	grown := c.Clone()
	dff, _ := lib.ByKind(cellib.KindDFF)
	prev := netlist.GateID(0)
	for i := 0; i < extra; i++ {
		id := netlist.GateID(len(grown.Gates))
		grown.Gates = append(grown.Gates, netlist.Gate{
			ID: id, Name: "eco_ff" + itoa(i), Cell: dff.Name, Bias: dff.Bias, Area: dff.Area(),
		})
		grown.Edges = append(grown.Edges, netlist.Edge{From: prev, To: id})
		prev = id
	}
	if err := grown.Validate(); err != nil {
		t.Fatal(err)
	}
	p2, err := partition.FromCircuit(grown, k)
	if err != nil {
		t.Fatal(err)
	}
	return p2, res.Labels, oldG
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

func TestExtendBasicContract(t *testing.T) {
	p2, base, oldG := grownCircuit(t, "KSA8", 5, 25)
	res, err := Extend(p2, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != p2.G {
		t.Fatalf("%d labels for %d gates", len(res.Labels), p2.G)
	}
	if res.Inserted != 25 {
		t.Errorf("Inserted = %d, want 25", res.Inserted)
	}
	for i, lb := range res.Labels {
		if lb < 0 || lb >= p2.K {
			t.Fatalf("label[%d] = %d", i, lb)
		}
	}
	m, err := recycle.Evaluate(p2, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BalanceCheck(); err != nil {
		t.Fatal(err)
	}
	_ = oldG
}

func TestExtendStability(t *testing.T) {
	// The whole point of ECO: most old gates keep their plane.
	p2, base, oldG := grownCircuit(t, "KSA8", 5, 15)
	res, err := Extend(p2, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < oldG; i++ {
		if res.Labels[i] != base[i] {
			moved++
		}
	}
	if moved != res.Adjusted {
		t.Errorf("Adjusted = %d but %d old gates moved", res.Adjusted, moved)
	}
	if moved > oldG/10 {
		t.Errorf("ECO moved %d of %d old gates (> 10%%)", moved, oldG)
	}
}

func TestExtendWithoutCleanupPreservesOldLabelsExactly(t *testing.T) {
	p2, base, oldG := grownCircuit(t, "KSA4", 4, 10)
	res, err := Extend(p2, base, Options{}.WithoutCleanup())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < oldG; i++ {
		if res.Labels[i] != base[i] {
			t.Fatalf("gate %d moved without cleanup", i)
		}
	}
	if res.Adjusted != 0 {
		t.Errorf("Adjusted = %d without cleanup", res.Adjusted)
	}
}

func TestExtendQualityReasonable(t *testing.T) {
	// The incremental result must not be dramatically worse than a full
	// re-solve of the grown problem on the discrete objective.
	p2, base, _ := grownCircuit(t, "KSA8", 5, 30)
	res, err := Extend(p2, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := partition.DefaultCoeffs()
	ecoCost := p2.DiscreteCost(res.Labels, c).Total

	full, err := p2.Solve(partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fullCost := p2.DiscreteCost(full.Labels, c).Total
	// Allow a generous factor; the win is stability and speed, not cost.
	if ecoCost > 3*fullCost+0.05 {
		t.Errorf("incremental cost %g far above full re-solve %g", ecoCost, fullCost)
	}
}

func TestExtendErrors(t *testing.T) {
	p2, base, _ := grownCircuit(t, "KSA4", 4, 5)
	if _, err := Extend(p2, nil, Options{}); err == nil {
		t.Error("empty base accepted")
	}
	tooLong := make([]int, p2.G+1)
	if _, err := Extend(p2, tooLong, Options{}); err == nil {
		t.Error("oversized base accepted")
	}
	bad := append([]int(nil), base...)
	bad[0] = 99
	if _, err := Extend(p2, bad, Options{}); err == nil {
		t.Error("out-of-range base label accepted")
	}
}

func TestExtendNoNewGates(t *testing.T) {
	// Degenerate edit: base covers the whole problem; Extend is a no-op
	// insertion plus optional cleanup.
	p2, base, oldG := grownCircuit(t, "KSA4", 4, 1)
	full := append([]int(nil), base...)
	full = append(full, 0) // label the single new gate manually
	res, err := Extend(p2, full, Options{}.WithoutCleanup())
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 {
		t.Errorf("Inserted = %d, want 0", res.Inserted)
	}
	_ = oldG
}
