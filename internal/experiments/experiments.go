// Package experiments regenerates the paper's evaluation: Table I
// (benchmark suite at K = 5), Table II (KSA4 over K = 5..10), Table III
// (partitioning under a 100 mA supply limit), plus the ablations called out
// in DESIGN.md (gradient variants, baselines, convergence traces).
//
// Every runner returns structured rows so callers (cmd/gpp-bench, the
// root-level benchmarks, EXPERIMENTS.md generation) can render or compare
// them; PaperTableI/II/III embed the published numbers for side-by-side
// reporting.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"gpp/internal/cellib"
	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/obs"
	"gpp/internal/partition"
	"gpp/internal/recycle"
)

var mExperimentSolves = obs.Default().Counter("gpp_experiment_solves_total",
	"experiment-suite circuit solves (table rows and limit-search probes)")

// Config controls the experiment runs.
type Config struct {
	// Library defaults to cellib.Default().
	Library *cellib.Library
	// Solver options; zero value uses the tuned defaults. The Seed applies
	// to every circuit.
	Solver partition.Options
	// Parallel runs independent per-circuit solves on all CPUs (results
	// are identical either way — every solve is seeded).
	Parallel bool
	// Restarts, when > 1, races that many seeds per solve (Solver.Seed,
	// Seed+1, …) and keeps the best discrete-cost result. Selection is
	// deterministic, so tables stay reproducible.
	Restarts int
}

func (c Config) withDefaults() Config {
	if c.Library == nil {
		c.Library = cellib.Default()
	}
	return c
}

// Row is one partitioning result in the shape of the paper's table rows.
type Row struct {
	Circuit string
	Gates   int
	Conns   int
	K       int

	DLE1Pct  float64 // % connections with d ≤ 1
	DLE2Pct  float64 // % connections with d ≤ 2
	DHalfPct float64 // % connections with d ≤ ⌊K/2⌋

	BCir     float64 // mA
	BMax     float64 // mA
	ICompPct float64 // %
	ACir     float64 // mm²
	AMax     float64 // mm²
	AFSPct   float64 // %

	Iters     int
	Converged bool
}

func runOne(c *netlist.Circuit, k int, cfg Config) (Row, error) {
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return Row{}, err
	}
	mExperimentSolves.Inc()
	if t := cfg.Solver.Tracer; t != nil {
		// Tag the solve that follows with its circuit. Callers that trace
		// must run circuits serially (cfg.Parallel off) so the experiment
		// header and its solve events stay adjacent in the stream; the CLIs
		// enforce that.
		t.Emit(obs.Event{Kind: obs.KindExperiment, Circuit: c.Name, K: k,
			Gates: c.NumGates(), Edges: c.NumEdges()})
	}
	var res *partition.Result
	if cfg.Restarts > 1 {
		res, err = p.SolveBest(cfg.Solver, cfg.Restarts)
	} else {
		res, err = p.Solve(cfg.Solver)
	}
	if err != nil {
		return Row{}, err
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		return Row{}, err
	}
	return Row{
		Circuit:   c.Name,
		Gates:     c.NumGates(),
		Conns:     c.NumEdges(),
		K:         k,
		DLE1Pct:   m.DistLEPct(1),
		DLE2Pct:   m.DistLEPct(2),
		DHalfPct:  m.HalfKDistPct(),
		BCir:      m.TotalBias,
		BMax:      m.BMax,
		ICompPct:  m.ICompPct,
		ACir:      m.TotalArea,
		AMax:      m.AMax,
		AFSPct:    m.AFreePct,
		Iters:     res.Iters,
		Converged: res.Converged,
	}, nil
}

// TableI partitions the full benchmark suite with K = 5.
func TableI(cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	suite, err := gen.Suite(cfg.Library)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(suite))
	err = forEach(cfg.Parallel, len(suite), func(i int) error {
		r, err := runOne(suite[i], 5, cfg)
		if err != nil {
			return fmt.Errorf("experiments: table I %s: %w", suite[i].Name, err)
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// forEach runs fn(0..n-1), in parallel across CPUs when requested. The
// first error wins; all workers run to completion either way.
func forEach(parallel bool, n int, fn func(i int) error) error {
	if !parallel || n < 2 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// TableII partitions KSA4 for K = 5..10.
func TableII(cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	c, err := gen.Benchmark("KSA4", cfg.Library)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, 6)
	for k := 5; k <= 10; k++ {
		r, err := runOne(c, k, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: table II K=%d: %w", k, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// TableIIIRow extends Row with the supply-limit search outcome.
type TableIIIRow struct {
	Row
	KLB  int // ⌈B_cir / limit⌉, the lower bound on K
	KRes int // smallest K for which the partition meets the limit
}

// TableIII reproduces the 100 mA supply-limit experiment: for each circuit
// of the suite except KSA4 (whose B_cir is already below the limit), the
// plane count is searched upward from K_LB = ⌈B_cir/limit⌉ until the
// partition's B_max is within the limit.
func TableIII(cfg Config, limitMA float64) ([]TableIIIRow, error) {
	cfg = cfg.withDefaults()
	if limitMA <= 0 {
		limitMA = 100
	}
	names := make([]string, 0, len(gen.BenchmarkNames)-1)
	for _, name := range gen.BenchmarkNames {
		if name != "KSA4" {
			names = append(names, name)
		}
	}
	rows := make([]TableIIIRow, len(names))
	err := forEach(cfg.Parallel, len(names), func(i int) error {
		c, err := gen.Benchmark(names[i], cfg.Library)
		if err != nil {
			return err
		}
		row, err := CurrentLimitSearch(c, limitMA, cfg)
		if err != nil {
			return fmt.Errorf("experiments: table III %s: %w", names[i], err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// CurrentLimitSearch finds the smallest K ≥ ⌈B_cir/limit⌉ whose partition
// has B_max ≤ limit and returns that partition's row. The search gives up
// (with an error) after 4·K_LB + 16 attempts — the paper's own results show
// K_res can exceed K_LB by ~55% on the hardest circuits, so the cap is
// generous.
func CurrentLimitSearch(c *netlist.Circuit, limitMA float64, cfg Config) (TableIIIRow, error) {
	cfg = cfg.withDefaults()
	totalBias := c.TotalBias()
	if totalBias <= limitMA {
		return TableIIIRow{}, fmt.Errorf("experiments: circuit %s needs only %.2f mA, below the %g mA limit (no partition required)",
			c.Name, totalBias, limitMA)
	}
	klb := int((totalBias + limitMA - 1e-9) / limitMA)
	if float64(klb)*limitMA < totalBias {
		klb++
	}
	if klb < 2 {
		klb = 2
	}
	maxK := 4*klb + 16
	for k := klb; k <= maxK; k++ {
		if k > c.NumGates() {
			break
		}
		r, err := runOne(c, k, cfg)
		if err != nil {
			return TableIIIRow{}, err
		}
		if r.BMax <= limitMA {
			return TableIIIRow{Row: r, KLB: klb, KRes: k}, nil
		}
	}
	return TableIIIRow{}, fmt.Errorf("experiments: %s: no K in [%d, %d] meets the %g mA limit", c.Name, klb, maxK, limitMA)
}
