package experiments

import (
	"testing"
)

func TestFrequencyPenaltyMonotoneInK(t *testing.T) {
	rows, err := FrequencyPenalty("KSA8", []int{2, 5, 8}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.FreqRatio <= 0 || r.FreqRatio > 1 {
			t.Errorf("K=%d frequency ratio %g outside (0,1]", r.K, r.FreqRatio)
		}
		if r.BaseFreqGHz <= 0 {
			t.Errorf("K=%d base frequency %g", r.K, r.BaseFreqGHz)
		}
		if r.PartFreqGHz > r.BaseFreqGHz {
			t.Errorf("K=%d partitioned faster than base", r.K)
		}
		if r.AddedLatencyPS < 0 {
			t.Errorf("K=%d negative added latency", r.K)
		}
	}
	// The base frequency is K-independent.
	if rows[0].BaseFreqGHz != rows[2].BaseFreqGHz {
		t.Error("base frequency varies with K")
	}
	// More planes ⇒ at least as many crossings (loose monotonicity: allow
	// equality, fail only on a strict decrease by more than 20%).
	if float64(rows[2].Crossings) < 0.8*float64(rows[0].Crossings) {
		t.Errorf("crossings fell sharply with K: %d → %d", rows[0].Crossings, rows[2].Crossings)
	}
}

func TestPowerComparisonShowsSavings(t *testing.T) {
	rows, err := PowerComparison([]string{"KSA8", "KSA16"}, 5, 100, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CurrentReduction <= 1 {
			t.Errorf("%s: no current reduction (%.2f)", r.Circuit, r.CurrentReduction)
		}
		if r.LeadLossReduction <= r.CurrentReduction {
			t.Errorf("%s: lead loss reduction %.2f not superlinear vs %.2f",
				r.Circuit, r.LeadLossReduction, r.CurrentReduction)
		}
		if r.BiasLinesAfter > r.BiasLinesBefore {
			t.Errorf("%s: recycling increased bias lines %d → %d",
				r.Circuit, r.BiasLinesBefore, r.BiasLinesAfter)
		}
		if r.RecycledSupplyA >= r.ParallelSupplyA {
			t.Errorf("%s: recycled supply not smaller", r.Circuit)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	st, err := SeedSensitivity("KSA4", 5, 4, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeds != 4 {
		t.Errorf("seeds = %d", st.Seeds)
	}
	if st.MeanDLE1 <= 0 || st.MeanDLE1 > 100 {
		t.Errorf("mean d≤1 = %g", st.MeanDLE1)
	}
	if st.StdDLE1 < 0 || st.StdIComp < 0 {
		t.Error("negative standard deviation")
	}
	if st.BestCost > st.WorstCost {
		t.Errorf("best cost %g above worst %g", st.BestCost, st.WorstCost)
	}
}

func TestSeedSensitivityValidation(t *testing.T) {
	if _, err := SeedSensitivity("KSA4", 5, 1, fastConfig()); err == nil {
		t.Error("single seed accepted")
	}
}

func TestAblationRoundingBoundsBMax(t *testing.T) {
	rows, err := AblationRounding("KSA8", 5, 0.05, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]RoundingRow{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	arg, ok1 := byMethod["argmax"]
	bal, ok2 := byMethod["balanced"]
	if !ok1 || !ok2 {
		t.Fatalf("methods missing: %v", rows)
	}
	if bal.BMax > arg.BMax+1e-9 {
		t.Errorf("balanced rounding B_max %.3f worse than argmax %.3f", bal.BMax, arg.BMax)
	}
	if bal.ICompPct > arg.ICompPct+1e-9 {
		t.Errorf("balanced rounding I_comp %.2f%% worse than argmax %.2f%%", bal.ICompPct, arg.ICompPct)
	}
}

func TestAdderTopologies(t *testing.T) {
	rows, err := AdderTopologies(16, 5, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]TopologyRow{}
	for _, r := range rows {
		byName[r.Topology] = r
		if r.DLE1Pct <= 0 || r.DLE1Pct > 100 {
			t.Errorf("%s: d≤1 = %g", r.Topology, r.DLE1Pct)
		}
		if r.Gates <= 0 || r.Conns <= r.Gates/2 {
			t.Errorf("%s: implausible size %d/%d", r.Topology, r.Gates, r.Conns)
		}
	}
	// Ripple is the deepest topology, Sklansky/Kogge-Stone the shallowest.
	if byName["ripple"].Depth <= byName["sklansky"].Depth {
		t.Errorf("ripple depth %d not above sklansky %d",
			byName["ripple"].Depth, byName["sklansky"].Depth)
	}
	// The near-1D ripple chain must partition at least as well on the
	// locality metric as the long-wire Sklansky network.
	if byName["ripple"].DLE1Pct < byName["sklansky"].DLE1Pct-3 {
		t.Errorf("ripple d≤1 %.1f%% unexpectedly below sklansky %.1f%%",
			byName["ripple"].DLE1Pct, byName["sklansky"].DLE1Pct)
	}
}

func TestTuneCoefficients(t *testing.T) {
	opts := TuneOptions{
		C1Grid:   []float64{1, 4},
		C2Grid:   []float64{0.5},
		C4Grid:   []float64{1},
		MaxIters: 300,
	}
	all, best, err := TuneCoefficients("KSA4", 5, opts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("%d candidates, want 2", len(all))
	}
	for _, r := range all {
		if r.Score < best.Score {
			t.Errorf("candidate %+v beats reported best %+v", r, best)
		}
		if r.Score <= 0 || r.DLE1Pct <= 0 {
			t.Errorf("implausible candidate %+v", r)
		}
	}
	// The best candidate's coefficients must come from the grid.
	if best.Coeffs.C1 != 1 && best.Coeffs.C1 != 4 {
		t.Errorf("best C1 = %g not from grid", best.Coeffs.C1)
	}
	if best.Coeffs.C3 != best.Coeffs.C2 {
		t.Error("C3 should track C2")
	}
}

func TestKSweep(t *testing.T) {
	pts, err := KSweep([]string{"KSA4", "KSA8"}, []int{3, 5}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points, want 4", len(pts))
	}
	// Circuit-major order.
	if pts[0].Circuit != "KSA4" || pts[0].K != 3 || pts[3].Circuit != "KSA8" || pts[3].K != 5 {
		t.Errorf("ordering wrong: %+v", pts)
	}
	for _, p := range pts {
		if p.DLE1Pct <= 0 || p.BMax <= 0 {
			t.Errorf("implausible point %+v", p)
		}
	}
	// B_max falls as K grows for the same circuit.
	if pts[1].BMax >= pts[0].BMax {
		t.Errorf("KSA4 B_max did not fall: K=3 %.2f → K=5 %.2f", pts[0].BMax, pts[1].BMax)
	}
	if _, err := KSweep(nil, []int{3}, fastConfig()); err == nil {
		t.Error("empty circuit list accepted")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// Parallel execution must not change results: every solve is seeded
	// per circuit, so Table II rows (cheap) computed through the parallel
	// sweep path equal the serial ones.
	serial := fastConfig()
	parallel := fastConfig()
	parallel.Parallel = true
	a, err := KSweep([]string{"KSA4", "KSA8"}, []int{3, 5}, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KSweep([]string{"KSA4", "KSA8"}, []int{3, 5}, parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: serial %+v vs parallel %+v", i, a[i], b[i])
		}
	}
}

func TestCongestionGrowsWithK(t *testing.T) {
	rows, err := Congestion("KSA8", []int{2, 5}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MaxTracks <= 0 || r.TotalWireMM <= 0 || r.Crossings <= 0 {
			t.Errorf("implausible congestion row %+v", r)
		}
	}
	// More planes ⇒ more crossings overall (loose check, 20% slop).
	if float64(rows[1].Crossings) < 0.8*float64(rows[0].Crossings) {
		t.Errorf("crossings fell with K: %d → %d", rows[0].Crossings, rows[1].Crossings)
	}
}

func TestTuneCoefficientsDefaultGrids(t *testing.T) {
	all, best, err := TuneCoefficients("KSA4", 4, TuneOptions{MaxIters: 120}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Default grids: 4 × 3 × 3 = 36 candidates.
	if len(all) != 36 {
		t.Errorf("%d candidates with default grids, want 36", len(all))
	}
	if best.Score <= 0 {
		t.Errorf("best score %g", best.Score)
	}
}
