package experiments

import (
	"fmt"

	"gpp/internal/gen"
	"gpp/internal/netlist"
)

// SweepPoint is one (circuit, K) sample of the K-scaling curves.
type SweepPoint struct {
	Circuit  string
	K        int
	DLE1Pct  float64
	DHalfPct float64
	BMax     float64
	ICompPct float64
	AFSPct   float64
}

// KSweep generalizes Table II beyond KSA4: every named circuit is
// partitioned at every K in ks, producing the d≤1 / I_comp / A_FS curves
// versus plane count — the scaling figure the paper's Table II samples at
// a single circuit. Points come back in (circuit-major, K-minor) order.
func KSweep(names []string, ks []int, cfg Config) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	if len(names) == 0 || len(ks) == 0 {
		return nil, fmt.Errorf("experiments: sweep needs circuits and K values")
	}
	circuits := make([]*netlist.Circuit, len(names))
	for i, n := range names {
		c, err := gen.Benchmark(n, cfg.Library)
		if err != nil {
			return nil, err
		}
		circuits[i] = c
	}
	type job struct{ ci, ki int }
	jobs := make([]job, 0, len(names)*len(ks))
	for ci := range names {
		for ki := range ks {
			jobs = append(jobs, job{ci, ki})
		}
	}
	points := make([]SweepPoint, len(jobs))
	err := forEach(cfg.Parallel, len(jobs), func(j int) error {
		ci, ki := jobs[j].ci, jobs[j].ki
		row, err := runOne(circuits[ci], ks[ki], cfg)
		if err != nil {
			return fmt.Errorf("experiments: sweep %s K=%d: %w", names[ci], ks[ki], err)
		}
		points[j] = SweepPoint{
			Circuit:  names[ci],
			K:        ks[ki],
			DLE1Pct:  row.DLE1Pct,
			DHalfPct: row.DHalfPct,
			BMax:     row.BMax,
			ICompPct: row.ICompPct,
			AFSPct:   row.AFSPct,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}
