package experiments

// PaperRow holds the published numbers for one benchmark row, used for
// side-by-side paper-vs-measured reporting in EXPERIMENTS.md and
// cmd/gpp-bench. Fields mirror Row; zero means "not reported".
type PaperRow struct {
	Circuit  string
	Gates    int
	Conns    int
	K        int
	DLE1Pct  float64
	DLE2Pct  float64
	DHalfPct float64
	BCir     float64
	BMax     float64
	ICompPct float64
	ACir     float64
	AMax     float64
	AFSPct   float64
	KLB      int
	KRes     int
}

// PaperTableI is Table I of the paper (K = 5).
var PaperTableI = []PaperRow{
	{Circuit: "KSA4", Gates: 93, Conns: 118, K: 5, DLE1Pct: 74.6, DLE2Pct: 97.5, BCir: 80.089, BMax: 17.50, ICompPct: 9.24, ACir: 0.4512, AMax: 0.0972, AFSPct: 7.71},
	{Circuit: "KSA8", Gates: 252, Conns: 320, K: 5, DLE1Pct: 70.3, DLE2Pct: 94.4, BCir: 216.72, BMax: 45.27, ICompPct: 4.43, ACir: 1.2192, AMax: 0.2520, AFSPct: 3.35},
	{Circuit: "KSA16", Gates: 650, Conns: 826, K: 5, DLE1Pct: 66.5, DLE2Pct: 88.7, BCir: 557.66, BMax: 118.09, ICompPct: 5.88, ACir: 3.1392, AMax: 0.6600, AFSPct: 5.12},
	{Circuit: "KSA32", Gates: 1592, Conns: 2029, K: 5, DLE1Pct: 64.4, DLE2Pct: 85.9, BCir: 1362.55, BMax: 304.07, ICompPct: 11.58, ACir: 7.6800, AMax: 1.7028, AFSPct: 10.86},
	{Circuit: "MULT4", Gates: 254, Conns: 310, K: 5, DLE1Pct: 73.2, DLE2Pct: 93.2, BCir: 222.03, BMax: 47.70, ICompPct: 7.42, ACir: 1.2192, AMax: 0.2616, AFSPct: 7.28},
	{Circuit: "MULT8", Gates: 1374, Conns: 1678, K: 5, DLE1Pct: 63.6, DLE2Pct: 85.6, BCir: 1201.32, BMax: 256.85, ICompPct: 6.90, ACir: 6.5952, AMax: 1.4004, AFSPct: 6.17},
	{Circuit: "ID4", Gates: 553, Conns: 678, K: 5, DLE1Pct: 71.1, DLE2Pct: 91.4, BCir: 467.00, BMax: 100.29, ICompPct: 6.69, ACir: 2.6796, AMax: 0.5700, AFSPct: 6.36},
	{Circuit: "ID8", Gates: 3209, Conns: 3705, K: 5, DLE1Pct: 58.2, DLE2Pct: 81.6, BCir: 2783.89, BMax: 622.39, ICompPct: 11.78, ACir: 15.5400, AMax: 3.4860, AFSPct: 12.16},
	{Circuit: "C432", Gates: 1216, Conns: 1434, K: 5, DLE1Pct: 65.0, DLE2Pct: 87.5, BCir: 1045.17, BMax: 222.31, ICompPct: 6.35, ACir: 5.9448, AMax: 1.2792, AFSPct: 7.59},
	{Circuit: "C499", Gates: 991, Conns: 1318, K: 5, DLE1Pct: 63.5, DLE2Pct: 86.3, BCir: 834.92, BMax: 178.17, ICompPct: 6.70, ACir: 4.8060, AMax: 1.0212, AFSPct: 6.24},
	{Circuit: "C1355", Gates: 1046, Conns: 1367, K: 5, DLE1Pct: 61.8, DLE2Pct: 85.4, BCir: 883.35, BMax: 192.41, ICompPct: 8.97, ACir: 5.0808, AMax: 1.1076, AFSPct: 9.00},
	{Circuit: "C1908", Gates: 1695, Conns: 2095, K: 5, DLE1Pct: 60.0, DLE2Pct: 85.0, BCir: 1447.03, BMax: 328.53, ICompPct: 13.52, ACir: 8.2536, AMax: 1.8804, AFSPct: 13.91},
	{Circuit: "C3540", Gates: 3792, Conns: 4927, K: 5, DLE1Pct: 54.0, DLE2Pct: 77.7, BCir: 3193.23, BMax: 670.01, ICompPct: 4.91, ACir: 18.5556, AMax: 3.8784, AFSPct: 4.51},
}

// PaperTableII is Table II of the paper (KSA4, K = 5..10). DHalfPct is the
// paper's "d ≤ ⌊K/2⌋" column.
var PaperTableII = []PaperRow{
	{Circuit: "KSA4", K: 5, DLE1Pct: 74.6, DHalfPct: 97.5, BMax: 17.50, ICompPct: 9.24, AMax: 0.0972, AFSPct: 7.71},
	{Circuit: "KSA4", K: 6, DLE1Pct: 64.4, DHalfPct: 94.9, BMax: 14.40, ICompPct: 7.88, AMax: 0.0840, AFSPct: 11.70},
	{Circuit: "KSA4", K: 7, DLE1Pct: 53.4, DHalfPct: 89.8, BMax: 12.45, ICompPct: 8.79, AMax: 0.0696, AFSPct: 7.98},
	{Circuit: "KSA4", K: 8, DLE1Pct: 45.8, DHalfPct: 95.8, BMax: 11.16, ICompPct: 11.49, AMax: 0.0648, AFSPct: 14.89},
	{Circuit: "KSA4", K: 9, DLE1Pct: 38.1, DHalfPct: 83.9, BMax: 10.24, ICompPct: 15.12, AMax: 0.0576, AFSPct: 14.89},
	{Circuit: "KSA4", K: 10, DLE1Pct: 38.1, DHalfPct: 90.7, BMax: 9.69, ICompPct: 21.64, AMax: 0.0552, AFSPct: 22.34},
}

// PaperTableIII is Table III of the paper (100 mA supply limit).
var PaperTableIII = []PaperRow{
	{Circuit: "KSA8", KLB: 3, KRes: 3, DHalfPct: 95.9, BMax: 78.31, ICompPct: 8.40, AMax: 0.4476, AFSPct: 10.14},
	{Circuit: "KSA16", KLB: 6, KRes: 7, DHalfPct: 84.9, BMax: 93.37, ICompPct: 17.20, AMax: 0.5208, AFSPct: 16.13},
	{Circuit: "KSA32", KLB: 14, KRes: 17, DHalfPct: 77.4, BMax: 99.98, ICompPct: 24.74, AMax: 0.5628, AFSPct: 24.58},
	{Circuit: "MULT4", KLB: 3, KRes: 3, DHalfPct: 91.0, BMax: 79.34, ICompPct: 7.20, AMax: 0.4404, AFSPct: 8.37},
	{Circuit: "MULT8", KLB: 13, KRes: 15, DHalfPct: 77.5, BMax: 96.78, ICompPct: 20.87, AMax: 0.5340, AFSPct: 21.45},
	{Circuit: "ID4", KLB: 5, KRes: 6, DHalfPct: 92.6, BMax: 87.38, ICompPct: 11.55, AMax: 0.4944, AFSPct: 10.70},
	{Circuit: "ID8", KLB: 28, KRes: 40, DHalfPct: 75.3, BMax: 99.65, ICompPct: 43.17, AMax: 0.5580, AFSPct: 43.63},
	{Circuit: "C432", KLB: 11, KRes: 14, DHalfPct: 83.0, BMax: 87.15, ICompPct: 16.73, AMax: 0.5040, AFSPct: 18.69},
	{Circuit: "C499", KLB: 9, KRes: 11, DHalfPct: 79.6, BMax: 91.42, ICompPct: 20.44, AMax: 0.5340, AFSPct: 22.22},
	{Circuit: "C1355", KLB: 9, KRes: 11, DHalfPct: 80.7, BMax: 96.77, ICompPct: 20.51, AMax: 0.5628, AFSPct: 21.85},
	{Circuit: "C1908", KLB: 15, KRes: 17, DHalfPct: 78.2, BMax: 97.78, ICompPct: 14.88, AMax: 0.5628, AFSPct: 15.92},
	{Circuit: "C3540", KLB: 32, KRes: 50, DHalfPct: 77.1, BMax: 92.61, ICompPct: 45.01, AMax: 0.5400, AFSPct: 45.51},
}

// PaperAverages holds the headline suite averages the paper reports in the
// text for Table I.
var PaperAverages = struct {
	DLE1Pct, DLE2Pct, ICompPct, AFSPct float64
}{DLE1Pct: 65.1, DLE2Pct: 87.7, ICompPct: 8.0, AFSPct: 7.7}

// FindPaperRow looks up a published row by circuit name (and K when
// nonzero).
func FindPaperRow(rows []PaperRow, circuit string, k int) (PaperRow, bool) {
	for _, r := range rows {
		if r.Circuit == circuit && (k == 0 || r.K == k) {
			return r, true
		}
	}
	return PaperRow{}, false
}
