package experiments

import (
	"fmt"

	"gpp/internal/baseline"
	"gpp/internal/gen"
	"gpp/internal/multilevel"
	"gpp/internal/partition"
	"gpp/internal/recycle"
)

// MethodResult scores one partitioning method on one circuit.
type MethodResult struct {
	Circuit  string
	Method   string
	K        int
	DLE1Pct  float64
	DHalfPct float64
	ICompPct float64
	AFSPct   float64
	Cost     float64 // discrete objective c1F1+c2F2+c3F3 (+const F4)
}

func scoreLabels(p *partition.Problem, circuit, method string, labels []int) (MethodResult, error) {
	m, err := recycle.Evaluate(p, labels)
	if err != nil {
		return MethodResult{}, err
	}
	bd := p.DiscreteCost(labels, partition.DefaultCoeffs())
	return MethodResult{
		Circuit:  circuit,
		Method:   method,
		K:        p.K,
		DLE1Pct:  m.DistLEPct(1),
		DHalfPct: m.HalfKDistPct(),
		ICompPct: m.ICompPct,
		AFSPct:   m.AFreePct,
		Cost:     bd.Total,
	}, nil
}

// AblationBaselines compares the paper's gradient-descent algorithm against
// the baseline partitioners on one circuit at the given K.
func AblationBaselines(name string, k int, cfg Config) ([]MethodResult, error) {
	cfg = cfg.withDefaults()
	c, err := gen.Benchmark(name, cfg.Library)
	if err != nil {
		return nil, err
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, err
	}
	coeffs := partition.DefaultCoeffs()
	var out []MethodResult

	res, err := p.Solve(cfg.Solver)
	if err != nil {
		return nil, err
	}
	r, err := scoreLabels(p, name, "gradient-descent", res.Labels)
	if err != nil {
		return nil, err
	}
	out = append(out, r)

	refOpts := cfg.Solver
	refOpts.Refine = true
	resR, err := p.Solve(refOpts)
	if err != nil {
		return nil, err
	}
	r, err = scoreLabels(p, name, "gradient-descent+refine", resR.Labels)
	if err != nil {
		return nil, err
	}
	out = append(out, r)

	r, err = scoreLabels(p, name, "random", baseline.Random(p, 1))
	if err != nil {
		return nil, err
	}
	out = append(out, r)

	r, err = scoreLabels(p, name, "layered-greedy", baseline.LayeredGreedy(p))
	if err != nil {
		return nil, err
	}
	out = append(out, r)

	r, err = scoreLabels(p, name, "greedy-refine", baseline.GreedyRefine(p, coeffs, 1, 12))
	if err != nil {
		return nil, err
	}
	out = append(out, r)

	ann, err := baseline.Anneal(p, baseline.AnnealOptions{Coeffs: coeffs, Seed: 1})
	if err != nil {
		return nil, err
	}
	r, err = scoreLabels(p, name, "anneal", ann)
	if err != nil {
		return nil, err
	}
	out = append(out, r)

	spec, err := baseline.Spectral(p, 300, 1)
	if err != nil {
		return nil, err
	}
	r, err = scoreLabels(p, name, "spectral", spec)
	if err != nil {
		return nil, err
	}
	out = append(out, r)

	ml, err := multilevel.Partition(p, multilevel.Options{Solver: cfg.Solver})
	if err != nil {
		return nil, err
	}
	r, err = scoreLabels(p, name, "multilevel", ml.Labels)
	if err != nil {
		return nil, err
	}
	out = append(out, r)

	return out, nil
}

// AblationGradients compares the exact and paper-literal gradient modes.
func AblationGradients(name string, k int, cfg Config) ([]MethodResult, error) {
	cfg = cfg.withDefaults()
	c, err := gen.Benchmark(name, cfg.Library)
	if err != nil {
		return nil, err
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, err
	}
	var out []MethodResult
	for _, mode := range []partition.GradientMode{partition.GradientExact, partition.GradientPaper} {
		opts := cfg.Solver
		opts.Gradient = mode
		res, err := p.Solve(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: gradient ablation %v: %w", mode, err)
		}
		r, err := scoreLabels(p, name, "gradient-"+mode.String(), res.Labels)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Convergence returns the per-iteration cost trace for one circuit.
func Convergence(name string, k int, cfg Config) ([]float64, error) {
	cfg = cfg.withDefaults()
	c, err := gen.Benchmark(name, cfg.Library)
	if err != nil {
		return nil, err
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, err
	}
	opts := cfg.Solver
	opts.TraceCost = true
	res, err := p.Solve(opts)
	if err != nil {
		return nil, err
	}
	return res.CostTrace, nil
}
