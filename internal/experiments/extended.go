package experiments

import (
	"fmt"
	"math"

	"gpp/internal/gen"
	"gpp/internal/partition"
	"gpp/internal/place"
	"gpp/internal/power"
	"gpp/internal/recycle"
	"gpp/internal/route"
	"gpp/internal/timing"
)

// FreqPenaltyRow quantifies the operating-frequency cost of partitioning —
// the effect the paper's Section III-B.3 warns about qualitatively.
type FreqPenaltyRow struct {
	Circuit        string
	K              int
	BaseFreqGHz    float64
	PartFreqGHz    float64
	FreqRatio      float64
	AddedLatencyPS float64
	Crossings      int
}

// FrequencyPenalty sweeps K and reports the partitioned circuit's maximum
// operating frequency versus the unpartitioned baseline.
func FrequencyPenalty(name string, ks []int, cfg Config) ([]FreqPenaltyRow, error) {
	cfg = cfg.withDefaults()
	c, err := gen.Benchmark(name, cfg.Library)
	if err != nil {
		return nil, err
	}
	rows := make([]FreqPenaltyRow, 0, len(ks))
	for _, k := range ks {
		p, err := partition.FromCircuit(c, k)
		if err != nil {
			return nil, err
		}
		res, err := p.Solve(cfg.Solver)
		if err != nil {
			return nil, err
		}
		pen, err := timing.ComparePartition(c, res.Labels, timing.Options{Library: cfg.Library})
		if err != nil {
			return nil, err
		}
		rows = append(rows, FreqPenaltyRow{
			Circuit:        name,
			K:              k,
			BaseFreqGHz:    pen.Base.MaxFreqGHz,
			PartFreqGHz:    pen.Partitioned.MaxFreqGHz,
			FreqRatio:      pen.FreqRatio,
			AddedLatencyPS: pen.AddedLatencyPS,
			Crossings:      pen.Partitioned.CouplerCrossings,
		})
	}
	return rows, nil
}

// PowerRow is the recycled-vs-parallel power comparison for one circuit.
type PowerRow struct {
	Circuit           string
	K                 int
	ParallelSupplyA   float64
	RecycledSupplyA   float64
	CurrentReduction  float64
	LeadLossReduction float64
	BiasLinesBefore   int
	BiasLinesAfter    int
}

// PowerComparison partitions each named circuit at K and models the supply
// economics (the paper's motivating argument, including the bias-pad count
// of its closing paragraph).
func PowerComparison(names []string, k int, padLimitMA float64, cfg Config) ([]PowerRow, error) {
	cfg = cfg.withDefaults()
	if padLimitMA <= 0 {
		padLimitMA = 100
	}
	rows := make([]PowerRow, 0, len(names))
	for _, name := range names {
		c, err := gen.Benchmark(name, cfg.Library)
		if err != nil {
			return nil, err
		}
		p, err := partition.FromCircuit(c, k)
		if err != nil {
			return nil, err
		}
		res, err := p.Solve(cfg.Solver)
		if err != nil {
			return nil, err
		}
		plan, err := recycle.BuildPlan(c, p, res.Labels, recycle.PlanOptions{Library: cfg.Library})
		if err != nil {
			return nil, err
		}
		cmp, err := power.Compare(c, plan, power.Options{Scheme: power.RSFQ})
		if err != nil {
			return nil, err
		}
		before, err := power.BiasLines(c.TotalBias(), padLimitMA)
		if err != nil {
			return nil, err
		}
		after, err := power.BiasLines(plan.SupplyCurrent, padLimitMA)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PowerRow{
			Circuit:           name,
			K:                 k,
			ParallelSupplyA:   cmp.Parallel.SupplyCurrentA,
			RecycledSupplyA:   cmp.Recycled.SupplyCurrentA,
			CurrentReduction:  cmp.CurrentReduction,
			LeadLossReduction: cmp.LeadLossReduction,
			BiasLinesBefore:   before,
			BiasLinesAfter:    after,
		})
	}
	return rows, nil
}

// SeedStats summarizes metric spread across solver seeds.
type SeedStats struct {
	Circuit string
	K       int
	Seeds   int

	MeanDLE1, StdDLE1   float64
	MeanIComp, StdIComp float64
	BestCost, WorstCost float64
}

// SeedSensitivity runs the solver with `seeds` different seeds and reports
// the spread of the headline metrics — the robustness of Algorithm 1's
// random initialization.
func SeedSensitivity(name string, k, seeds int, cfg Config) (*SeedStats, error) {
	cfg = cfg.withDefaults()
	if seeds < 2 {
		return nil, fmt.Errorf("experiments: need ≥ 2 seeds, got %d", seeds)
	}
	c, err := gen.Benchmark(name, cfg.Library)
	if err != nil {
		return nil, err
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, err
	}
	st := &SeedStats{Circuit: name, K: k, Seeds: seeds, BestCost: math.Inf(1), WorstCost: math.Inf(-1)}
	d1s := make([]float64, 0, seeds)
	ics := make([]float64, 0, seeds)
	coeffs := cfg.Solver.Coeffs
	if coeffs == (partition.Coeffs{}) {
		coeffs = partition.DefaultCoeffs()
	}
	for s := 0; s < seeds; s++ {
		o := cfg.Solver
		o.Seed = int64(s + 1)
		res, err := p.Solve(o)
		if err != nil {
			return nil, err
		}
		m, err := recycle.Evaluate(p, res.Labels)
		if err != nil {
			return nil, err
		}
		d1s = append(d1s, m.DistLEPct(1))
		ics = append(ics, m.ICompPct)
		cost := p.DiscreteCost(res.Labels, coeffs).Total
		if cost < st.BestCost {
			st.BestCost = cost
		}
		if cost > st.WorstCost {
			st.WorstCost = cost
		}
	}
	st.MeanDLE1, st.StdDLE1 = meanStd(d1s)
	st.MeanIComp, st.StdIComp = meanStd(ics)
	return st, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// RoundingRow compares the argmax snap of Algorithm 1 against the
// capacity-aware balanced rounding extension.
type RoundingRow struct {
	Circuit  string
	K        int
	Method   string
	DLE1Pct  float64
	BMax     float64
	ICompPct float64
}

// AblationRounding compares plain argmax snapping, balanced rounding, and
// balanced rounding + refinement on one circuit.
func AblationRounding(name string, k int, slack float64, cfg Config) ([]RoundingRow, error) {
	cfg = cfg.withDefaults()
	c, err := gen.Benchmark(name, cfg.Library)
	if err != nil {
		return nil, err
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, err
	}
	score := func(method string, labels []int) (RoundingRow, error) {
		m, err := recycle.Evaluate(p, labels)
		if err != nil {
			return RoundingRow{}, err
		}
		return RoundingRow{
			Circuit: name, K: k, Method: method,
			DLE1Pct: m.DistLEPct(1), BMax: m.BMax, ICompPct: m.ICompPct,
		}, nil
	}
	var rows []RoundingRow
	res, err := p.Solve(cfg.Solver)
	if err != nil {
		return nil, err
	}
	r, err := score("argmax", res.Labels)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)

	bal, err := p.SolveBalanced(cfg.Solver, slack)
	if err != nil {
		return nil, err
	}
	r, err = score("balanced", bal.Labels)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)

	refOpts := cfg.Solver
	refOpts.Refine = true
	balRef, err := p.SolveBalanced(refOpts, slack)
	if err != nil {
		return nil, err
	}
	r, err = score("balanced+refine", balRef.Labels)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	return rows, nil
}

// CongestionRow reports boundary-channel routing congestion for one K.
type CongestionRow struct {
	Circuit     string
	K           int
	MaxTracks   int
	TotalWireMM float64
	Crossings   int
}

// Congestion sweeps K and measures the channel-routing cost of the
// partition on the banded placement: the tallest boundary channel (in
// tracks) and the total horizontal channel wirelength — the physical area
// cost the paper's distance⁴ term controls by proxy.
func Congestion(name string, ks []int, cfg Config) ([]CongestionRow, error) {
	cfg = cfg.withDefaults()
	c, err := gen.Benchmark(name, cfg.Library)
	if err != nil {
		return nil, err
	}
	rows := make([]CongestionRow, 0, len(ks))
	for _, k := range ks {
		p, err := partition.FromCircuit(c, k)
		if err != nil {
			return nil, err
		}
		res, err := p.Solve(cfg.Solver)
		if err != nil {
			return nil, err
		}
		pl, err := place.Build(c, k, res.Labels, place.Options{Library: cfg.Library})
		if err != nil {
			return nil, err
		}
		rt, err := route.Build(c, res.Labels, pl)
		if err != nil {
			return nil, err
		}
		m, err := recycle.Evaluate(p, res.Labels)
		if err != nil {
			return nil, err
		}
		crossings, _ := m.CrossingCount()
		rows = append(rows, CongestionRow{
			Circuit: name, K: k,
			MaxTracks: rt.MaxTracks, TotalWireMM: rt.TotalWireMM, Crossings: crossings,
		})
	}
	return rows, nil
}
