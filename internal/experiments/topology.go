package experiments

import (
	"fmt"

	"gpp/internal/gen"
	"gpp/internal/logic"
	"gpp/internal/partition"
	"gpp/internal/recycle"
	"gpp/internal/sfqmap"
)

// TopologyRow reports partition quality for one adder topology.
type TopologyRow struct {
	Topology string
	Gates    int
	Conns    int
	Depth    int
	DLE1Pct  float64
	DLE2Pct  float64
	ICompPct float64
}

// AdderTopologies partitions functionally identical n-bit adders with
// different prefix-network topologies at the given K — an experiment on
// how wiring locality drives partitionability. The ripple-carry chain is
// nearly one-dimensional and should partition best on the distance
// metric; Sklansky's long high-fanout prefix wires should partition
// worst; Kogge-Stone and Brent-Kung sit between.
func AdderTopologies(n, k int, cfg Config) ([]TopologyRow, error) {
	cfg = cfg.withDefaults()
	builders := []struct {
		name  string
		build func(int) (*logic.Circuit, error)
	}{
		{"ripple", gen.RippleCarry},
		{"brent-kung", gen.BrentKung},
		{"kogge-stone", gen.KSA},
		{"sklansky", gen.Sklansky},
	}
	rows := make([]TopologyRow, 0, len(builders))
	for _, bd := range builders {
		lc, err := bd.build(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s adder: %w", bd.name, err)
		}
		c, err := sfqmap.Map(lc, sfqmap.Options{Library: cfg.Library, ClockTree: true})
		if err != nil {
			return nil, err
		}
		p, err := partition.FromCircuit(c, k)
		if err != nil {
			return nil, err
		}
		res, err := p.Solve(cfg.Solver)
		if err != nil {
			return nil, err
		}
		m, err := recycle.Evaluate(p, res.Labels)
		if err != nil {
			return nil, err
		}
		_, depth, err := c.Levels()
		if err != nil {
			return nil, err
		}
		rows = append(rows, TopologyRow{
			Topology: bd.name,
			Gates:    c.NumGates(),
			Conns:    c.NumEdges(),
			Depth:    depth,
			DLE1Pct:  m.DistLEPct(1),
			DLE2Pct:  m.DistLEPct(2),
			ICompPct: m.ICompPct,
		})
	}
	return rows, nil
}
