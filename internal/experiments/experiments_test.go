package experiments

import (
	"strings"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
)

// fastConfig caps the solver for quick tests; results are rougher than the
// tuned defaults but structurally identical.
func fastConfig() Config {
	return Config{Solver: partition.Options{Seed: 1, MaxIters: 600}}
}

func TestTableIIShape(t *testing.T) {
	rows, err := TableII(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for i, r := range rows {
		if r.K != 5+i {
			t.Errorf("row %d K = %d, want %d", i, r.K, 5+i)
		}
		if r.Circuit != "KSA4" {
			t.Errorf("row %d circuit = %s", i, r.Circuit)
		}
		if r.BMax <= 0 || r.DLE1Pct < 0 || r.DLE1Pct > 100 {
			t.Errorf("row %d implausible: %+v", i, r)
		}
	}
	// Paper's monotone trends: B_max and A_max shrink as K grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].BMax > rows[i-1].BMax*1.15 {
			t.Errorf("B_max not shrinking: K=%d %.2f → K=%d %.2f",
				rows[i-1].K, rows[i-1].BMax, rows[i].K, rows[i].BMax)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.DLE1Pct >= first.DLE1Pct {
		t.Errorf("d≤1 should fall with K: %.1f%% (K=5) vs %.1f%% (K=10)", first.DLE1Pct, last.DLE1Pct)
	}
	if last.ICompPct <= first.ICompPct {
		t.Errorf("I_comp should grow with K: %.1f%% vs %.1f%%", first.ICompPct, last.ICompPct)
	}
}

func TestCurrentLimitSearch(t *testing.T) {
	c, err := gen.Benchmark("KSA16", nil)
	if err != nil {
		t.Fatal(err)
	}
	row, err := CurrentLimitSearch(c, 100, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.KRes < row.KLB {
		t.Errorf("K_res %d below K_LB %d", row.KRes, row.KLB)
	}
	if row.BMax > 100 {
		t.Errorf("B_max %.2f exceeds the limit", row.BMax)
	}
	// K_LB = ceil(B_cir / 100).
	wantKLB := int(c.TotalBias()/100) + 1
	if c.TotalBias() == float64(wantKLB-1)*100 {
		wantKLB--
	}
	if row.KLB != wantKLB {
		t.Errorf("K_LB = %d, want %d (B_cir %.2f)", row.KLB, wantKLB, c.TotalBias())
	}
}

func TestCurrentLimitSearchBelowLimit(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	// KSA4 needs ~62 mA; a 100 mA limit means no partitioning is required
	// and the search must say so rather than burn cycles.
	if _, err := CurrentLimitSearch(c, 100, fastConfig()); err == nil ||
		!strings.Contains(err.Error(), "no partition required") {
		t.Errorf("err = %v", err)
	}
}

func TestCurrentLimitSearchDefaultsLimit(t *testing.T) {
	cfg := fastConfig()
	rows, err := TableIII(cfg, -5) // invalid → default 100
	if err != nil {
		t.Skipf("table III with fast config: %v", err)
	}
	for _, r := range rows {
		if r.BMax > 100 {
			t.Errorf("%s: B_max %.2f over default 100 mA limit", r.Circuit, r.BMax)
		}
	}
}

func TestAblationBaselinesOrdering(t *testing.T) {
	rows, err := AblationBaselines("KSA4", 5, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]MethodResult{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	for _, m := range []string{"gradient-descent", "gradient-descent+refine", "random", "layered-greedy", "greedy-refine", "anneal"} {
		if _, ok := byMethod[m]; !ok {
			t.Fatalf("method %s missing from ablation", m)
		}
	}
	if byMethod["gradient-descent"].Cost >= byMethod["random"].Cost {
		t.Errorf("gradient descent (%.4f) not better than random (%.4f)",
			byMethod["gradient-descent"].Cost, byMethod["random"].Cost)
	}
	if byMethod["gradient-descent+refine"].Cost > byMethod["gradient-descent"].Cost+1e-12 {
		t.Errorf("refine made gradient descent worse")
	}
}

func TestAblationGradientsBothModes(t *testing.T) {
	rows, err := AblationGradients("KSA4", 5, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if rows[0].Method != "gradient-exact" || rows[1].Method != "gradient-paper" {
		t.Errorf("methods = %s, %s", rows[0].Method, rows[1].Method)
	}
}

func TestConvergenceTraceDecreases(t *testing.T) {
	trace, err := Convergence("KSA4", 5, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 10 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	if trace[len(trace)-1] >= trace[0] {
		t.Errorf("cost did not decrease: %g → %g", trace[0], trace[len(trace)-1])
	}
}

func TestFindPaperRow(t *testing.T) {
	r, ok := FindPaperRow(PaperTableI, "KSA8", 0)
	if !ok || r.Gates != 252 {
		t.Errorf("KSA8 lookup: %+v, %v", r, ok)
	}
	r, ok = FindPaperRow(PaperTableII, "KSA4", 7)
	if !ok || r.BMax != 12.45 {
		t.Errorf("KSA4 K=7 lookup: %+v, %v", r, ok)
	}
	if _, ok := FindPaperRow(PaperTableI, "NOPE", 0); ok {
		t.Error("bogus circuit found")
	}
}

func TestPaperDataSelfConsistent(t *testing.T) {
	// Published Table I rows satisfy I_comp = (K·B_max − B_cir)/B_cir
	// within rounding, a useful check that the transcription is right.
	// (The tolerance is 0.8 rather than rounding-tight because the paper's
	// own ID4 row is internally inconsistent by ~0.7%: 5·100.29 − 467.00
	// gives 7.38%, not the printed 6.69%.)
	for _, r := range PaperTableI {
		wantIComp := 100 * (float64(r.K)*r.BMax - r.BCir) / r.BCir
		if diff := wantIComp - r.ICompPct; diff > 0.8 || diff < -0.8 {
			t.Errorf("%s: published I_comp %.2f%% vs identity %.2f%%", r.Circuit, r.ICompPct, wantIComp)
		}
		wantAFS := 100 * (float64(r.K)*r.AMax - r.ACir) / r.ACir
		if diff := wantAFS - r.AFSPct; diff > 0.8 || diff < -0.8 {
			t.Errorf("%s: published A_FS %.2f%% vs identity %.2f%%", r.Circuit, r.AFSPct, wantAFS)
		}
	}
}

// Integration: the full Table I pipeline on a subset, asserting the bands
// the paper's qualitative claims define.
func TestTableIBands(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline integration in -short mode")
	}
	cfg := Config{}
	cfg.Solver.Seed = 1
	for _, name := range []string{"KSA8", "MULT4", "C499"} {
		c, err := gen.Benchmark(name, cfg.withDefaults().Library)
		if err != nil {
			t.Fatal(err)
		}
		r, err := runOne(c, 5, cfg.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		if r.DLE1Pct < 55 || r.DLE1Pct > 90 {
			t.Errorf("%s: d≤1 = %.1f%% outside the paper band [55, 90]", name, r.DLE1Pct)
		}
		if r.DLE2Pct < 80 {
			t.Errorf("%s: d≤2 = %.1f%% below 80%%", name, r.DLE2Pct)
		}
		if r.ICompPct > 25 {
			t.Errorf("%s: I_comp = %.1f%% above 25%%", name, r.ICompPct)
		}
		if r.AFSPct > 25 {
			t.Errorf("%s: A_FS = %.1f%% above 25%%", name, r.AFSPct)
		}
		_ = netlist.ComputeStats(c)
	}
}

func TestTableIFastShape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in -short mode")
	}
	cfg := fastConfig()
	cfg.Parallel = true
	rows, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("%d rows, want 13", len(rows))
	}
	for i, r := range rows {
		if r.Circuit != gen.BenchmarkNames[i] {
			t.Errorf("row %d = %s, want %s", i, r.Circuit, gen.BenchmarkNames[i])
		}
		if r.K != 5 || r.Gates <= 0 || r.BMax <= 0 {
			t.Errorf("implausible row %+v", r)
		}
		// Identity: I_comp% = (K·B_max − B_cir)/B_cir·100.
		want := 100 * (5*r.BMax - r.BCir) / r.BCir
		if diff := want - r.ICompPct; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: I_comp identity broken: %.3f vs %.3f", r.Circuit, r.ICompPct, want)
		}
	}
}
