package experiments

import (
	"fmt"
	"math"

	"gpp/internal/gen"
	"gpp/internal/partition"
	"gpp/internal/recycle"
)

// TuneResult is one evaluated coefficient set.
type TuneResult struct {
	Coeffs   partition.Coeffs
	Score    float64 // lower is better
	DLE1Pct  float64
	ICompPct float64
	AFSPct   float64
}

// TuneOptions configures the coefficient search.
type TuneOptions struct {
	// Grids for each coefficient; zero-length grids use the defaults
	// below. c3 always tracks c2 (the paper treats bias and area balance
	// symmetrically, and so does the metric structure).
	C1Grid, C2Grid, C4Grid []float64
	// MaxIters caps the per-candidate solve (default 800 — tuning runs
	// many solves, and ranking stabilizes long before full convergence).
	MaxIters int
	// Seed for the solver.
	Seed int64
}

// TuneCoefficients grid-searches the cost-function constants c1..c4 (the
// paper only says they "can be tuned") on one benchmark circuit. The
// score balances the paper's three goals with equal weight:
//
//	score = (100 − %d≤1) + %I_comp + %A_FS
//
// Returns all evaluated candidates sorted by rank order of evaluation,
// plus the best. Deterministic for a fixed seed.
func TuneCoefficients(name string, k int, opts TuneOptions, cfg Config) ([]TuneResult, TuneResult, error) {
	cfg = cfg.withDefaults()
	if len(opts.C1Grid) == 0 {
		opts.C1Grid = []float64{0.5, 1, 2, 4}
	}
	if len(opts.C2Grid) == 0 {
		opts.C2Grid = []float64{0.25, 0.5, 1}
	}
	if len(opts.C4Grid) == 0 {
		opts.C4Grid = []float64{0.5, 1, 2}
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 800
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	c, err := gen.Benchmark(name, cfg.Library)
	if err != nil {
		return nil, TuneResult{}, err
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		return nil, TuneResult{}, err
	}
	var all []TuneResult
	best := TuneResult{Score: math.Inf(1)}
	for _, c1 := range opts.C1Grid {
		for _, c2 := range opts.C2Grid {
			for _, c4 := range opts.C4Grid {
				co := partition.Coeffs{C1: c1, C2: c2, C3: c2, C4: c4}
				res, err := p.Solve(partition.Options{
					Coeffs: co, Seed: opts.Seed, MaxIters: opts.MaxIters,
				})
				if err != nil {
					return nil, TuneResult{}, fmt.Errorf("experiments: tune %+v: %w", co, err)
				}
				m, err := recycle.Evaluate(p, res.Labels)
				if err != nil {
					return nil, TuneResult{}, err
				}
				tr := TuneResult{
					Coeffs:   co,
					DLE1Pct:  m.DistLEPct(1),
					ICompPct: m.ICompPct,
					AFSPct:   m.AFreePct,
				}
				tr.Score = (100 - tr.DLE1Pct) + tr.ICompPct + tr.AFSPct
				all = append(all, tr)
				if tr.Score < best.Score {
					best = tr
				}
			}
		}
	}
	return all, best, nil
}
