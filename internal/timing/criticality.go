package timing

import (
	"fmt"

	"gpp/internal/netlist"
)

// EdgeCriticality scores every connection by how close its pipeline stage
// path runs to the critical stage: crit[e] ∈ [0, 1], where 1 means the
// longest stage path through edge e equals the circuit's critical stage
// delay and values near 0 mean the edge sits on fast stages with plenty of
// slack. The timing-criticality cost term uses these scores to weight F1
// edge crossings — a plane boundary on a zero-slack path costs coupler
// delay the clock period cannot absorb, while a boundary on a slack path
// is timing-free (clock-follow-data delay balancing, Aviles et al.).
//
// The score combines a forward pass (reach: longest stage-local delay from
// the stage-opening clocked output to each gate's output — the same
// recurrence Analyze uses, unpartitioned) with a backward pass (cont:
// longest stage-local delay from a gate's output to the stage-closing
// clocked output). For edge (u, v) the longest stage path through the edge
// is reach(u) + cont(v), and crit = that / CriticalStagePS.
func EdgeCriticality(c *netlist.Circuit, opts Options) ([]float64, error) {
	opts = opts.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	delay := make([]float64, c.NumGates())
	clocked := make([]bool, c.NumGates())
	for i, g := range c.Gates {
		cell, ok := opts.Library.ByName(g.Cell)
		if !ok {
			return nil, fmt.Errorf("timing: gate %s uses cell %q absent from library %q",
				g.Name, g.Cell, opts.Library.Name())
		}
		delay[i] = cell.DelayPS
		clocked[i] = cell.Clocked
	}

	// Forward: stage-local arrival at each gate's output, plus the critical
	// stage delay (the normalizer).
	inEdges := c.InEdges()
	reach := make([]float64, c.NumGates())
	critical := 0.0
	for _, gid := range order {
		i := int(gid)
		var maxIn float64
		for _, ei := range inEdges[i] {
			if v := reach[c.Edges[ei].From]; v > maxIn {
				maxIn = v
			}
		}
		if clocked[i] {
			if stage := maxIn + delay[i]; stage > critical {
				critical = stage
			}
			reach[i] = delay[i] // a clocked output starts a new stage
		} else {
			reach[i] = maxIn + delay[i]
		}
	}

	// Backward: cont[i] is the longest stage-local delay from gate i's
	// *input* boundary to the stage-closing clocked output — delay[i] for a
	// clocked gate (it closes the stage), delay[i] plus the longest
	// continuation otherwise.
	outEdges := c.OutEdges()
	cont := make([]float64, c.NumGates())
	for idx := len(order) - 1; idx >= 0; idx-- {
		i := int(order[idx])
		if clocked[i] {
			cont[i] = delay[i]
			continue
		}
		var maxOut float64
		for _, ei := range outEdges[i] {
			if v := cont[c.Edges[ei].To]; v > maxOut {
				maxOut = v
			}
		}
		cont[i] = delay[i] + maxOut
	}

	if critical == 0 {
		// Purely unclocked circuit: every path is one stage; normalize by
		// the longest reach instead so scores stay in [0, 1].
		for _, r := range reach {
			if r > critical {
				critical = r
			}
		}
		if critical == 0 {
			critical = 1
		}
	}
	crit := make([]float64, c.NumEdges())
	for ei, e := range c.Edges {
		v := (reach[e.From] + cont[e.To]) / critical
		if v > 1 {
			v = 1
		} else if v < 0 {
			v = 0
		}
		crit[ei] = v
	}
	return crit, nil
}
