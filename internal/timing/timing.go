// Package timing implements a first-order SFQ timing model and quantifies
// the frequency penalty of ground plane partitioning.
//
// SFQ circuits are gate-level pipelined (Section II of the paper): every
// clocked gate is a pipeline stage, and the clock period is bounded by the
// slowest stage — the longest delay from one clocked gate's output, through
// any unclocked cells (splitters, JTLs), to the next clocked gate. The
// paper's Section III-B.3 warns that connections between non-adjacent
// planes need chained inductive couplers, which "consume more area on the
// chip and also decrease the operating frequency": every plane boundary a
// connection crosses inserts a driver/receiver pair into the stage path.
// This package makes that penalty measurable.
//
// The model is deliberately first-order — per-cell fixed delays, no skew
// optimization, concurrent-flow clock assumed ideal — because its job is
// comparing the same circuit before and after partitioning, where the
// common-mode simplifications cancel.
package timing

import (
	"fmt"

	"gpp/internal/cellib"
	"gpp/internal/netlist"
)

// Analysis is the timing result for one circuit (optionally under a
// partition).
type Analysis struct {
	CircuitName string

	// CriticalStagePS is the slowest pipeline stage delay (ps): the clock
	// period lower bound.
	CriticalStagePS float64
	// MaxFreqGHz = 1000 / CriticalStagePS.
	MaxFreqGHz float64
	// CriticalStageAt is the clocked gate whose stage is critical.
	CriticalStageAt netlist.GateID
	// TotalLatencyPS is the longest input→output path delay (pipeline
	// depth × period in a perfectly balanced design; reported as raw
	// combinational sum here).
	TotalLatencyPS float64
	// Stages is the number of clocked cells (pipeline stages).
	Stages int
	// CouplerCrossings counts coupler pairs inserted on stage paths (0
	// without a partition).
	CouplerCrossings int
}

// Options configures the analysis.
type Options struct {
	// Library resolves per-cell delays; defaults to cellib.Default().
	Library *cellib.Library
	// Labels, if non-nil, is a plane labeling: every connection crossing
	// |Δplane| boundaries is charged that many coupler-pair delays.
	Labels []int
	// CouplerDelayPS is the added delay of one driver/receiver pair;
	// default is the library driver + receiver delays.
	CouplerDelayPS float64
}

func (o Options) withDefaults() Options {
	if o.Library == nil {
		o.Library = cellib.Default()
	}
	if o.CouplerDelayPS <= 0 {
		drv := o.Library.MustByKind(cellib.KindDriver)
		rcv := o.Library.MustByKind(cellib.KindReceiver)
		o.CouplerDelayPS = drv.DelayPS + rcv.DelayPS
	}
	return o
}

// Analyze computes the stage-delay timing of the circuit.
//
// For every gate g, reach(g) is the longest delay from the most recent
// clocked output (or primary source) to g's output:
//
//	reach(g) = delay(g)                       if g is clocked or a source
//	reach(g) = max over preds p of
//	           (reach(p) + edgeExtra(p,g)) + delay(g)   otherwise
//
// and for clocked g the stage delay is max_p (reach(p) + edgeExtra(p,g)) +
// delay(g). edgeExtra is the coupler chain delay of the connection under
// the partition.
func Analyze(c *netlist.Circuit, opts Options) (*Analysis, error) {
	opts = opts.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opts.Labels != nil && len(opts.Labels) != c.NumGates() {
		return nil, fmt.Errorf("timing: %d labels for %d gates", len(opts.Labels), c.NumGates())
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}

	delay := make([]float64, c.NumGates())
	clocked := make([]bool, c.NumGates())
	for i, g := range c.Gates {
		cell, ok := opts.Library.ByName(g.Cell)
		if !ok {
			return nil, fmt.Errorf("timing: gate %s uses cell %q absent from library %q",
				g.Name, g.Cell, opts.Library.Name())
		}
		delay[i] = cell.DelayPS
		clocked[i] = cell.Clocked
	}

	inEdges := c.InEdges()
	an := &Analysis{CircuitName: c.Name, CriticalStageAt: -1}
	reach := make([]float64, c.NumGates())  // stage-local arrival at output
	arrive := make([]float64, c.NumGates()) // global arrival at output
	for _, gid := range order {
		i := int(gid)
		var maxStageIn, maxGlobalIn float64
		for _, ei := range inEdges[i] {
			e := c.Edges[ei]
			extra := 0.0
			if opts.Labels != nil {
				d := opts.Labels[e.From] - opts.Labels[e.To]
				if d < 0 {
					d = -d
				}
				if d > 0 {
					extra = float64(d) * opts.CouplerDelayPS
					an.CouplerCrossings += d
				}
			}
			if v := reach[e.From] + extra; v > maxStageIn {
				maxStageIn = v
			}
			if v := arrive[e.From] + extra; v > maxGlobalIn {
				maxGlobalIn = v
			}
		}
		arrive[i] = maxGlobalIn + delay[i]
		if arrive[i] > an.TotalLatencyPS {
			an.TotalLatencyPS = arrive[i]
		}
		if clocked[i] {
			an.Stages++
			stage := maxStageIn + delay[i]
			if stage > an.CriticalStagePS {
				an.CriticalStagePS = stage
				an.CriticalStageAt = gid
			}
			reach[i] = delay[i] // a clocked output starts a new stage
		} else {
			reach[i] = maxStageIn + delay[i]
		}
	}
	if an.CriticalStagePS == 0 {
		// Purely unclocked circuit: the whole path is one "stage".
		an.CriticalStagePS = an.TotalLatencyPS
	}
	if an.CriticalStagePS > 0 {
		an.MaxFreqGHz = 1000 / an.CriticalStagePS
	}
	return an, nil
}

// Penalty compares unpartitioned and partitioned timing of the same
// circuit.
type Penalty struct {
	Base        *Analysis
	Partitioned *Analysis
	// FreqRatio = partitioned f_max / base f_max (≤ 1).
	FreqRatio float64
	// AddedLatencyPS = partitioned − base total latency.
	AddedLatencyPS float64
}

// ComparePartition runs the analysis with and without the labeling and
// reports the frequency penalty the coupler chains introduce.
func ComparePartition(c *netlist.Circuit, labels []int, opts Options) (*Penalty, error) {
	base, err := Analyze(c, Options{Library: opts.Library, CouplerDelayPS: opts.CouplerDelayPS})
	if err != nil {
		return nil, err
	}
	po := opts
	po.Labels = labels
	part, err := Analyze(c, po)
	if err != nil {
		return nil, err
	}
	pen := &Penalty{Base: base, Partitioned: part, AddedLatencyPS: part.TotalLatencyPS - base.TotalLatencyPS}
	if base.MaxFreqGHz > 0 {
		pen.FreqRatio = part.MaxFreqGHz / base.MaxFreqGHz
	}
	return pen, nil
}

// StageHistogram buckets every pipeline stage's delay: hist[i] counts
// clocked gates whose stage delay falls in [i·binPS, (i+1)·binPS). The
// spread shows how far the design is from the perfectly balanced pipeline
// the critical stage implies — a long tail means a few stages throttle
// the whole clock.
func StageHistogram(c *netlist.Circuit, opts Options, binPS float64) ([]int, error) {
	if binPS <= 0 {
		return nil, fmt.Errorf("timing: bin width %g must be positive", binPS)
	}
	opts = opts.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	delay := make([]float64, c.NumGates())
	clocked := make([]bool, c.NumGates())
	for i, g := range c.Gates {
		cell, ok := opts.Library.ByName(g.Cell)
		if !ok {
			return nil, fmt.Errorf("timing: gate %s uses unknown cell %q", g.Name, g.Cell)
		}
		delay[i] = cell.DelayPS
		clocked[i] = cell.Clocked
	}
	inEdges := c.InEdges()
	reach := make([]float64, c.NumGates())
	var stages []float64
	for _, gid := range order {
		i := int(gid)
		var maxIn float64
		for _, ei := range inEdges[i] {
			e := c.Edges[ei]
			extra := 0.0
			if opts.Labels != nil {
				d := opts.Labels[e.From] - opts.Labels[e.To]
				if d < 0 {
					d = -d
				}
				extra = float64(d) * opts.CouplerDelayPS
			}
			if v := reach[e.From] + extra; v > maxIn {
				maxIn = v
			}
		}
		if clocked[i] {
			stages = append(stages, maxIn+delay[i])
			reach[i] = delay[i]
		} else {
			reach[i] = maxIn + delay[i]
		}
	}
	maxStage := 0.0
	for _, s := range stages {
		if s > maxStage {
			maxStage = s
		}
	}
	hist := make([]int, int(maxStage/binPS)+1)
	for _, s := range stages {
		hist[int(s/binPS)]++
	}
	return hist, nil
}
