package timing

import (
	"math"
	"strings"
	"testing"

	"gpp/internal/cellib"
	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
)

// handBuilt: DCSFQ → DFF → JTL → JTL → AND (clocked), with a second input
// DCSFQ → AND.
//
// Stage delays with the default library (DCSFQ 5, DFF 5, JTL 3, AND 8).
// A stage includes the upstream clocked gate's clock-to-Q delay (the
// period must cover clk-to-Q + data path + capture):
//
//	DFF stage:  dcsfq(5) + dff(5) = 10          (source starts a stage)
//	AND stage:  dff clk-to-Q(5) + jtl(3) + jtl(3) + and(8) = 19; the other
//	            input path dcsfq(5) + and(8) = 13 → stage is 19.
func handBuilt(t *testing.T) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("hand", cellib.Default())
	in1 := b.AddCell("in1", cellib.KindDCSFQ)
	ff := b.AddCell("ff", cellib.KindDFF)
	j1 := b.AddCell("j1", cellib.KindBuffer)
	j2 := b.AddCell("j2", cellib.KindBuffer)
	in2 := b.AddCell("in2", cellib.KindDCSFQ)
	and := b.AddCell("and", cellib.KindAND)
	b.Connect(in1, ff)
	b.Connect(ff, j1)
	b.Connect(j1, j2)
	b.Connect(j2, and)
	b.Connect(in2, and)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAnalyzeHandComputed(t *testing.T) {
	c := handBuilt(t)
	an, err := Analyze(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Stages != 2 {
		t.Errorf("stages = %d, want 2 (DFF, AND)", an.Stages)
	}
	if math.Abs(an.CriticalStagePS-19) > 1e-9 {
		t.Errorf("critical stage = %g ps, want 19", an.CriticalStagePS)
	}
	andID, _ := c.GateByName("and")
	if an.CriticalStageAt != andID.ID {
		t.Errorf("critical stage at gate %d, want AND (%d)", an.CriticalStageAt, andID.ID)
	}
	// Total latency: 5+5+3+3+8 = 24.
	if math.Abs(an.TotalLatencyPS-24) > 1e-9 {
		t.Errorf("latency = %g ps, want 24", an.TotalLatencyPS)
	}
	if math.Abs(an.MaxFreqGHz-1000.0/19) > 1e-9 {
		t.Errorf("f_max = %g GHz", an.MaxFreqGHz)
	}
	if an.CouplerCrossings != 0 {
		t.Errorf("couplers without partition: %d", an.CouplerCrossings)
	}
}

func TestAnalyzeWithPartitionAddsCouplerDelay(t *testing.T) {
	c := handBuilt(t)
	// Put the two JTLs on plane 2 and everything else on plane 0: the
	// ff→j1 connection crosses 2 boundaries, j2→and crosses 2 back.
	labels := []int{0, 0, 2, 2, 0, 0}
	an, err := Analyze(c, Options{Labels: labels})
	if err != nil {
		t.Fatal(err)
	}
	// Coupler pair = LDRV 8 + LRCV 8 = 16 ps; AND stage gains 2×2×16 = 64:
	// 19 + 64 = 83.
	if math.Abs(an.CriticalStagePS-83) > 1e-9 {
		t.Errorf("critical stage = %g ps, want 83", an.CriticalStagePS)
	}
	if an.CouplerCrossings != 4 {
		t.Errorf("coupler crossings = %d, want 4", an.CouplerCrossings)
	}
}

func TestAnalyzeCustomCouplerDelay(t *testing.T) {
	c := handBuilt(t)
	labels := []int{0, 0, 1, 1, 0, 0}
	an, err := Analyze(c, Options{Labels: labels, CouplerDelayPS: 100})
	if err != nil {
		t.Fatal(err)
	}
	// ff→j1 and j2→and each cross one boundary: stage 19 + 200 = 219.
	if math.Abs(an.CriticalStagePS-219) > 1e-9 {
		t.Errorf("critical stage = %g ps, want 219", an.CriticalStagePS)
	}
}

func TestComparePartitionPenalty(t *testing.T) {
	c, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 800})
	if err != nil {
		t.Fatal(err)
	}
	pen, err := ComparePartition(c, res.Labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pen.FreqRatio <= 0 || pen.FreqRatio > 1 {
		t.Errorf("frequency ratio %g outside (0,1]", pen.FreqRatio)
	}
	if pen.AddedLatencyPS < 0 {
		t.Errorf("partition removed latency: %g", pen.AddedLatencyPS)
	}
	if pen.Partitioned.CouplerCrossings == 0 {
		t.Error("no coupler crossings on a real partition")
	}
	if pen.Base.MaxFreqGHz < pen.Partitioned.MaxFreqGHz {
		t.Error("partitioned circuit faster than unpartitioned")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	c := handBuilt(t)
	if _, err := Analyze(c, Options{Labels: []int{0}}); err == nil {
		t.Error("short labels accepted")
	}
	// Unknown cell.
	bad := c.Clone()
	bad.Gates[0].Cell = "NOSUCH"
	if _, err := Analyze(bad, Options{}); err == nil || !strings.Contains(err.Error(), "NOSUCH") {
		t.Errorf("err = %v", err)
	}
	// Cyclic circuit.
	cyc := c.Clone()
	cyc.Edges = append(cyc.Edges, netlist.Edge{From: 5, To: 0})
	if _, err := Analyze(cyc, Options{}); err == nil {
		t.Error("cyclic circuit accepted")
	}
}

func TestUnclockedCircuitUsesTotalLatency(t *testing.T) {
	b := netlist.NewBuilder("chain", cellib.Default())
	a := b.AddCell("a", cellib.KindBuffer)
	bb := b.AddCell("b", cellib.KindBuffer)
	cc := b.AddCell("c", cellib.KindBuffer)
	b.Connect(a, bb)
	b.Connect(bb, cc)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Stages != 0 {
		t.Errorf("stages = %d", an.Stages)
	}
	if math.Abs(an.CriticalStagePS-9) > 1e-9 { // 3 JTLs
		t.Errorf("critical = %g, want 9", an.CriticalStagePS)
	}
}

func TestIdentityPartitionNoPenalty(t *testing.T) {
	c := handBuilt(t)
	labels := make([]int, c.NumGates()) // all on one plane
	pen, err := ComparePartition(c, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pen.FreqRatio != 1 {
		t.Errorf("single-plane partition has frequency ratio %g", pen.FreqRatio)
	}
	if pen.AddedLatencyPS != 0 {
		t.Errorf("single-plane partition added %g ps", pen.AddedLatencyPS)
	}
}

func TestLibraryDelaysPlausible(t *testing.T) {
	for _, cell := range cellib.Default().Cells() {
		if cell.Kind == cellib.KindDummy {
			continue // passive load, no signal path
		}
		if cell.DelayPS <= 0 || cell.DelayPS > 30 {
			t.Errorf("%s: delay %g ps outside plausible SFQ range", cell.Name, cell.DelayPS)
		}
	}
}

func TestStageHistogram(t *testing.T) {
	c, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := StageHistogram(c, Options{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range hist {
		total += n
	}
	if total != an.Stages {
		t.Errorf("histogram sums to %d stages, analysis says %d", total, an.Stages)
	}
	// The last non-empty bucket must contain the critical stage.
	lastIdx := -1
	for i, n := range hist {
		if n > 0 {
			lastIdx = i
		}
	}
	if lastIdx < 0 {
		t.Fatal("empty histogram")
	}
	lo, hi := float64(lastIdx)*5, float64(lastIdx+1)*5
	if an.CriticalStagePS < lo || an.CriticalStagePS >= hi {
		t.Errorf("critical stage %.1f ps outside last bucket [%.0f, %.0f)", an.CriticalStagePS, lo, hi)
	}
	if _, err := StageHistogram(c, Options{}, 0); err == nil {
		t.Error("zero bin width accepted")
	}
}
