// Package verif is an independent verifier for partitioning results and
// recycling plans. It recomputes every claimed property from first
// principles with deliberately naive code paths (no shared helpers with
// the packages under test), so a bookkeeping bug in the optimizer, the
// metrics, or the planner shows up as a reported issue rather than as two
// modules agreeing on the same mistake.
package verif

import (
	"fmt"

	"gpp/internal/netlist"
	"gpp/internal/place"
	"gpp/internal/recycle"
)

// Issue is one verification finding.
type Issue struct {
	Check string // short machine-friendly check name
	Msg   string
}

func (i Issue) String() string { return i.Check + ": " + i.Msg }

// issuef appends a formatted issue.
func issuef(issues []Issue, check, format string, args ...any) []Issue {
	return append(issues, Issue{Check: check, Msg: fmt.Sprintf(format, args...)})
}

// Partition verifies a plane labeling against the circuit: label ranges,
// no empty planes, and (when limitMA > 0) that no plane's bias exceeds the
// supply limit. Returns the empty slice when everything holds.
func Partition(c *netlist.Circuit, k int, labels []int, limitMA float64) []Issue {
	var issues []Issue
	if err := c.Validate(); err != nil {
		return issuef(issues, "circuit", "%v", err)
	}
	if k < 2 {
		issues = issuef(issues, "planes", "K = %d leaves nothing to recycle", k)
	}
	if len(labels) != c.NumGates() {
		return issuef(issues, "labels", "%d labels for %d gates", len(labels), c.NumGates())
	}
	biasPer := make([]float64, k)
	count := make([]int, k)
	for i, lb := range labels {
		if lb < 0 || lb >= k {
			issues = issuef(issues, "labels", "gate %d labeled %d outside [0,%d)", i, lb, k)
			continue
		}
		biasPer[lb] += c.Gates[i].Bias
		count[lb]++
	}
	for plane := 0; plane < k; plane++ {
		if count[plane] == 0 {
			issues = issuef(issues, "empty-plane",
				"plane %d has no gates: serial biasing would drop the whole supply across dummies", plane+1)
		}
		if limitMA > 0 && biasPer[plane] > limitMA+1e-9 {
			issues = issuef(issues, "supply-limit",
				"plane %d needs %.3f mA, above the %.3f mA limit", plane+1, biasPer[plane], limitMA)
		}
	}
	return issues
}

// Metrics cross-checks a Metrics value against a from-scratch recount.
func Metrics(c *netlist.Circuit, labels []int, m *recycle.Metrics) []Issue {
	var issues []Issue
	if len(labels) != c.NumGates() {
		return issuef(issues, "labels", "%d labels for %d gates", len(labels), c.NumGates())
	}
	k := m.K
	bias := make([]float64, k)
	area := make([]float64, k)
	for i, lb := range labels {
		if lb < 0 || lb >= k {
			return issuef(issues, "labels", "gate %d labeled %d outside [0,%d)", i, lb, k)
		}
		bias[lb] += c.Gates[i].Bias
		area[lb] += c.Gates[i].Area
	}
	var bMax, aMax float64
	for p := 0; p < k; p++ {
		if !near(bias[p], m.PlaneBias[p]) {
			issues = issuef(issues, "plane-bias", "plane %d recount %.6f mA vs reported %.6f mA",
				p+1, bias[p], m.PlaneBias[p])
		}
		if !near(area[p], m.PlaneArea[p]) {
			issues = issuef(issues, "plane-area", "plane %d recount %.6f mm² vs reported %.6f mm²",
				p+1, area[p], m.PlaneArea[p])
		}
		if bias[p] > bMax {
			bMax = bias[p]
		}
		if area[p] > aMax {
			aMax = area[p]
		}
	}
	if !near(bMax, m.BMax) {
		issues = issuef(issues, "bmax", "recount %.6f vs reported %.6f", bMax, m.BMax)
	}
	if !near(aMax, m.AMax) {
		issues = issuef(issues, "amax", "recount %.6f vs reported %.6f", aMax, m.AMax)
	}
	hist := make([]int, k)
	for _, e := range c.Edges {
		d := labels[e.From] - labels[e.To]
		if d < 0 {
			d = -d
		}
		hist[d]++
	}
	for d := 0; d < k; d++ {
		if hist[d] != m.DistHist[d] {
			issues = issuef(issues, "dist-hist", "d=%d recount %d vs reported %d", d, hist[d], m.DistHist[d])
		}
	}
	wantIComp := float64(k)*bMax - c.TotalBias()
	if !near(wantIComp, m.IComp) {
		issues = issuef(issues, "icomp", "recount %.6f vs reported %.6f", wantIComp, m.IComp)
	}
	return issues
}

// Plan verifies a recycling plan end to end: series conservation, chain
// contiguity per crossing connection, and dummy sufficiency.
func Plan(c *netlist.Circuit, labels []int, plan *recycle.Plan) []Issue {
	var issues []Issue
	if plan.K < 1 {
		return issuef(issues, "plan", "K = %d", plan.K)
	}
	// Per-edge chain reconstruction: the hops of edge e must walk
	// plane-by-plane from the driver's plane to the sink's plane.
	hopsByEdge := make(map[int][]recycle.CouplerHop)
	for _, h := range plan.Hops {
		hopsByEdge[h.Edge] = append(hopsByEdge[h.Edge], h)
	}
	for ei, e := range c.Edges {
		a, b := labels[e.From], labels[e.To]
		hops := hopsByEdge[ei]
		want := a - b
		if want < 0 {
			want = -want
		}
		if len(hops) != want {
			issues = issuef(issues, "chain-length", "edge %d (planes %d→%d) has %d hops, want %d",
				ei, a+1, b+1, len(hops), want)
			continue
		}
		cur := a
		for hi, h := range hops {
			if h.FromPlane != cur {
				issues = issuef(issues, "chain-walk", "edge %d hop %d starts at plane %d, chain is at %d",
					ei, hi, h.FromPlane+1, cur+1)
				break
			}
			step := h.ToPlane - h.FromPlane
			if step != 1 && step != -1 {
				issues = issuef(issues, "chain-step", "edge %d hop %d jumps %d planes", ei, hi, step)
				break
			}
			cur = h.ToPlane
		}
		if len(hops) == want && want > 0 && cur != b {
			issues = issuef(issues, "chain-end", "edge %d chain ends at plane %d, sink is on %d", ei, cur+1, b+1)
		}
	}
	// Series conservation: every plane draws the supply exactly.
	for p, ps := range plan.Planes {
		draw := ps.Bias + ps.OverheadBias + ps.DummyBias
		if !near(draw, plan.SupplyCurrent) {
			issues = issuef(issues, "series-conservation",
				"plane %d draws %.6f mA, supply is %.6f mA", p+1, draw, plan.SupplyCurrent)
		}
		if ps.DummyBias < -1e-9 {
			issues = issuef(issues, "dummy", "plane %d has negative dummy bias", p+1)
		}
	}
	// The supply must equal the hungriest plane (no headroom, no deficit).
	maxDraw := 0.0
	for _, ps := range plan.Planes {
		if d := ps.Bias + ps.OverheadBias; d > maxDraw {
			maxDraw = d
		}
	}
	if !near(maxDraw, plan.SupplyCurrent) {
		issues = issuef(issues, "supply", "supply %.6f mA vs hungriest plane %.6f mA",
			plan.SupplyCurrent, maxDraw)
	}
	return issues
}

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > a {
		scale = b
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-9*scale
}

// Placement verifies a plane-banded layout against its labeling: every
// gate placed exactly once, on the band matching its plane, inside the
// die, with no overlapping cells and one coupler slot per boundary hop.
func Placement(c *netlist.Circuit, labels []int, pl *place.Placement) []Issue {
	var issues []Issue
	if len(labels) != c.NumGates() {
		return issuef(issues, "labels", "%d labels for %d gates", len(labels), c.NumGates())
	}
	if err := pl.Validate(); err != nil {
		issues = issuef(issues, "geometry", "%v", err)
	}
	seen := make(map[netlist.GateID]int)
	for _, cp := range pl.Cells {
		seen[cp.Gate]++
		if int(cp.Gate) < len(labels) && cp.Plane != labels[cp.Gate] {
			issues = issuef(issues, "plane-mismatch", "gate %d placed on plane %d but labeled %d",
				cp.Gate, cp.Plane+1, labels[cp.Gate]+1)
		}
	}
	for i := range c.Gates {
		if n := seen[netlist.GateID(i)]; n != 1 {
			issues = issuef(issues, "coverage", "gate %d placed %d times", i, n)
		}
	}
	if n := pl.OverlapCount(); n != 0 {
		issues = issuef(issues, "overlap", "%d overlapping cell pairs", n)
	}
	wantSlots := 0
	for _, e := range c.Edges {
		d := labels[e.From] - labels[e.To]
		if d < 0 {
			d = -d
		}
		wantSlots += d
	}
	if len(pl.Slots) != wantSlots {
		issues = issuef(issues, "coupler-slots", "%d slots for %d boundary hops", len(pl.Slots), wantSlots)
	}
	return issues
}
