package verif

import (
	"strings"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
	"gpp/internal/place"
	"gpp/internal/recycle"
)

func fixture(t *testing.T, name string, k int) (*netlist.Circuit, []int, *recycle.Metrics, *recycle.Plan) {
	t.Helper()
	c, err := gen.Benchmark(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 800})
	if err != nil {
		t.Fatal(err)
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := recycle.BuildPlan(c, p, res.Labels, recycle.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c, res.Labels, m, plan
}

func TestCleanPipelinePassesAllChecks(t *testing.T) {
	c, labels, m, plan := fixture(t, "KSA8", 5)
	if issues := Partition(c, 5, labels, 0); len(issues) != 0 {
		t.Errorf("Partition: %v", issues)
	}
	if issues := Metrics(c, labels, m); len(issues) != 0 {
		t.Errorf("Metrics: %v", issues)
	}
	if issues := Plan(c, labels, plan); len(issues) != 0 {
		t.Errorf("Plan: %v", issues)
	}
}

func TestPartitionDetectsEmptyPlane(t *testing.T) {
	c, _, _, _ := fixture(t, "KSA4", 4)
	labels := make([]int, c.NumGates()) // everything on plane 0
	issues := Partition(c, 4, labels, 0)
	empty := 0
	for _, is := range issues {
		if is.Check == "empty-plane" {
			empty++
		}
	}
	if empty != 3 {
		t.Errorf("%d empty-plane issues, want 3 (%v)", empty, issues)
	}
}

func TestPartitionDetectsSupplyViolation(t *testing.T) {
	c, labels, m, _ := fixture(t, "KSA8", 5)
	limit := m.BMax - 1 // just below the achieved maximum
	issues := Partition(c, 5, labels, limit)
	found := false
	for _, is := range issues {
		if is.Check == "supply-limit" {
			found = true
		}
	}
	if !found {
		t.Errorf("limit violation not reported: %v", issues)
	}
}

func TestPartitionDetectsBadLabels(t *testing.T) {
	c, labels, _, _ := fixture(t, "KSA4", 4)
	bad := append([]int(nil), labels...)
	bad[0] = 9
	issues := Partition(c, 4, bad, 0)
	if len(issues) == 0 {
		t.Error("out-of-range label not reported")
	}
	if issues := Partition(c, 4, labels[:3], 0); len(issues) == 0 {
		t.Error("short labels not reported")
	}
}

func TestMetricsDetectsTampering(t *testing.T) {
	c, labels, m, _ := fixture(t, "KSA4", 4)
	m.PlaneBias[0] += 1 // corrupt
	issues := Metrics(c, labels, m)
	found := false
	for _, is := range issues {
		if is.Check == "plane-bias" {
			found = true
		}
	}
	if !found {
		t.Errorf("tampered plane bias not detected: %v", issues)
	}
	// The corrupted max may also trip; what must not happen is silence.
	m.PlaneBias[0] -= 1
	m.DistHist[0]++
	m.DistHist[1]--
	issues = Metrics(c, labels, m)
	found = false
	for _, is := range issues {
		if is.Check == "dist-hist" {
			found = true
		}
	}
	if !found {
		t.Errorf("tampered histogram not detected: %v", issues)
	}
}

func TestPlanDetectsMissingHop(t *testing.T) {
	c, labels, _, plan := fixture(t, "KSA8", 5)
	if len(plan.Hops) == 0 {
		t.Skip("partition produced no crossings")
	}
	plan.Hops = plan.Hops[:len(plan.Hops)-1]
	issues := Plan(c, labels, plan)
	found := false
	for _, is := range issues {
		if is.Check == "chain-length" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing hop not detected: %v", issues)
	}
}

func TestPlanDetectsBrokenConservation(t *testing.T) {
	c, labels, _, plan := fixture(t, "KSA4", 4)
	plan.Planes[0].DummyBias += 0.5
	issues := Plan(c, labels, plan)
	found := false
	for _, is := range issues {
		if is.Check == "series-conservation" {
			found = true
		}
	}
	if !found {
		t.Errorf("broken conservation not detected: %v", issues)
	}
}

func TestIssueString(t *testing.T) {
	is := Issue{Check: "x", Msg: "y"}
	if !strings.Contains(is.String(), "x") || !strings.Contains(is.String(), "y") {
		t.Errorf("Issue.String = %q", is.String())
	}
}

func TestPlacementVerification(t *testing.T) {
	c, labels, _, _ := fixture(t, "KSA8", 5)
	pl, err := place.Build(c, 5, labels, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if issues := Placement(c, labels, pl); len(issues) != 0 {
		t.Fatalf("clean placement reported issues: %v", issues)
	}
	// Corrupt: move a cell to the wrong band.
	pl.Cells[0].Plane = (pl.Cells[0].Plane + 1) % 5
	issues := Placement(c, labels, pl)
	found := false
	for _, is := range issues {
		if is.Check == "plane-mismatch" {
			found = true
		}
	}
	if !found {
		t.Errorf("plane mismatch not detected: %v", issues)
	}
	// Corrupt: drop a coupler slot.
	pl2, err := place.Build(c, 5, labels, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl2.Slots) > 0 {
		pl2.Slots = pl2.Slots[1:]
		issues = Placement(c, labels, pl2)
		found = false
		for _, is := range issues {
			if is.Check == "coupler-slots" {
				found = true
			}
		}
		if !found {
			t.Errorf("missing slot not detected: %v", issues)
		}
	}
}
