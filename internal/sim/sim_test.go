package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gpp/internal/cellib"
	"gpp/internal/def"
	"gpp/internal/gen"
	"gpp/internal/netlist"
)

// runMappedAdder simulates a mapped KSA and decodes the sum.
func runAdder(t *testing.T, c *netlist.Circuit, n int, a, b uint64) uint64 {
	t.Helper()
	inputs := map[string]bool{}
	for i := 0; i < n; i++ {
		inputs[fmt.Sprintf("a%d", i)] = a>>uint(i)&1 == 1
		inputs[fmt.Sprintf("b%d", i)] = b>>uint(i)&1 == 1
	}
	res, err := Run(c, inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for i := 0; i < n; i++ {
		if res.Outputs[fmt.Sprintf("OUTPUT_s%d", i)] {
			sum |= 1 << uint(i)
		}
	}
	if res.Outputs["OUTPUT_cout"] {
		sum |= 1 << uint(n)
	}
	return sum
}

// TestMappedKSA4Exhaustive is the end-to-end substrate check: the SFQ
// netlist produced by generator + technology mapper (splitter trees, clock
// network) must still compute correct addition pulse-for-pulse.
func TestMappedKSA4Exhaustive(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			if got := runAdder(t, c, 4, a, b); got != a+b {
				t.Fatalf("mapped KSA4: %d + %d = %d, want %d", a, b, got, a+b)
			}
		}
	}
}

func TestMappedKSA16Random(t *testing.T) {
	c, err := gen.Benchmark("KSA16", nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 40; trial++ {
		a := rng.Uint64() & 0xffff
		b := rng.Uint64() & 0xffff
		if got := runAdder(t, c, 16, a, b); got != a+b {
			t.Fatalf("mapped KSA16: %d + %d = %d, want %d", a, b, got, a+b)
		}
	}
}

func TestMappedMult4Exhaustive(t *testing.T) {
	c, err := gen.Benchmark("MULT4", nil)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			inputs := map[string]bool{}
			for i := 0; i < 4; i++ {
				inputs[fmt.Sprintf("a%d", i)] = a>>uint(i)&1 == 1
				inputs[fmt.Sprintf("b%d", i)] = b>>uint(i)&1 == 1
			}
			res, err := Run(c, inputs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var prod uint64
			for i := 0; i < 8; i++ {
				if res.Outputs[fmt.Sprintf("OUTPUT_p%d", i)] {
					prod |= 1 << uint(i)
				}
			}
			if prod != a*b {
				t.Fatalf("mapped MULT4: %d × %d = %d, want %d", a, b, prod, a*b)
			}
		}
	}
}

func TestMappedDividerRandom(t *testing.T) {
	c, err := gen.Benchmark("ID4", nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		a := rng.Uint64() & 0xf
		d := rng.Uint64()&0xe + 1
		inputs := map[string]bool{}
		for i := 0; i < 4; i++ {
			inputs[fmt.Sprintf("a%d", i)] = a>>uint(i)&1 == 1
			inputs[fmt.Sprintf("d%d", i)] = d>>uint(i)&1 == 1
		}
		res, err := Run(c, inputs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var q, r uint64
		for i := 0; i < 4; i++ {
			if res.Outputs[fmt.Sprintf("OUTPUT_q%d", i)] {
				q |= 1 << uint(i)
			}
			if res.Outputs[fmt.Sprintf("OUTPUT_r%d", i)] {
				r |= 1 << uint(i)
			}
		}
		if q != a/d || r != a%d {
			t.Fatalf("mapped ID4: %d / %d = (%d, %d), want (%d, %d)", a, d, q, r, a/d, a%d)
		}
	}
}

func TestMissingInputsReadAsZero(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 0 + 0 = 0: no sum output pulses.
	for name, v := range res.Outputs {
		if v {
			t.Errorf("output %s pulsed for all-zero inputs", name)
		}
	}
	// The clock network still pulses (activity > 0).
	if res.PulseCount == 0 {
		t.Error("no pulses at all — clock network silent")
	}
}

func TestActivityMeasured(t *testing.T) {
	c, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	waves := make([]map[string]bool, 16)
	for w := range waves {
		in := map[string]bool{}
		for i := 0; i < 8; i++ {
			in[fmt.Sprintf("a%d", i)] = rng.Intn(2) == 1
			in[fmt.Sprintf("b%d", i)] = rng.Intn(2) == 1
		}
		waves[w] = in
	}
	act, err := Activity(c, waves, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if act <= 0.1 || act >= 1 {
		t.Errorf("measured activity %.3f outside plausible (0.1, 1)", act)
	}
}

func TestActivityNoWaves(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Activity(c, nil, Options{}); err == nil {
		t.Error("empty wave set accepted")
	}
}

func TestRunUnknownCell(t *testing.T) {
	b := netlist.NewBuilder("x", cellib.Default())
	b.AddCell("a", cellib.KindDFF)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c.Gates[0].Cell = "NOSUCH"
	if _, err := Run(c, nil, Options{}); err == nil {
		t.Error("unknown cell accepted")
	}
}

func TestRunCyclicRejected(t *testing.T) {
	b := netlist.NewBuilder("cyc", cellib.Default())
	a := b.AddCell("a", cellib.KindBuffer)
	bb := b.AddCell("b", cellib.KindBuffer)
	b.Connect(a, bb)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c.Edges = append(c.Edges, netlist.Edge{From: bb, To: a})
	if _, err := Run(c, nil, Options{}); err == nil {
		t.Error("cyclic circuit accepted")
	}
}

// TestDEFRoundTripPreservesSemantics: the divider exercises pin-order
// sensitivity (ANDN2T); writing to DEF and reading back must not change
// its function.
func TestDEFRoundTripPreservesSemantics(t *testing.T) {
	orig, err := gen.Benchmark("ID4", nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := def.Write(&buf, orig, nil); err != nil {
		t.Fatal(err)
	}
	d, err := def.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := def.ToCircuit(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		a := rng.Uint64() & 0xf
		dv := rng.Uint64()&0xe + 1
		inputs := map[string]bool{}
		for i := 0; i < 4; i++ {
			inputs[fmt.Sprintf("a%d", i)] = a>>uint(i)&1 == 1
			inputs[fmt.Sprintf("d%d", i)] = dv>>uint(i)&1 == 1
		}
		r1, err := Run(orig, inputs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(recovered, inputs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range r1.Outputs {
			if r2.Outputs[name] != v {
				t.Fatalf("output %s differs after DEF round trip (a=%d d=%d)", name, a, dv)
			}
		}
	}
}

// TestBalancedMappedKSA4Exhaustive: path balancing (DFF insertion) must
// not change the computed function of the mapped netlist.
func TestBalancedMappedKSA4Exhaustive(t *testing.T) {
	c, err := gen.BenchmarkBalanced("KSA4", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			if got := runAdder(t, c, 4, a, b); got != a+b {
				t.Fatalf("balanced KSA4: %d + %d = %d, want %d", a, b, got, a+b)
			}
		}
	}
}

// TestMergeAndMuxSemantics covers the pulse functions the benchmark suite
// does not exercise (MERGET, MUX2T).
func TestMergeAndMuxSemantics(t *testing.T) {
	b := netlist.NewBuilder("mm", cellib.Default())
	a := b.AddCell("a", cellib.KindDCSFQ)
	bb := b.AddCell("b", cellib.KindDCSFQ)
	sel := b.AddCell("sel", cellib.KindDCSFQ)
	mg := b.AddCell("mg", cellib.KindMerge)
	mx := b.AddCell("mx", cellib.KindMux)
	oMg := b.AddCell("out_mg", cellib.KindSFQDC)
	oMx := b.AddCell("out_mx", cellib.KindSFQDC)
	b.Connect(a, mg)
	b.Connect(bb, mg)
	b.Connect(mg, oMg)
	// Mux pin order: i0 = x, i1 = y, i2 = select.
	a2 := b.AddCell("a2", cellib.KindDCSFQ)
	b2 := b.AddCell("b2", cellib.KindDCSFQ)
	b.Connect(a2, mx)
	b.Connect(b2, mx)
	b.Connect(sel, mx)
	b.Connect(mx, oMx)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in     map[string]bool
		mg, mx bool
	}{
		{map[string]bool{"a": true}, true, false},                // merge passes either input
		{map[string]bool{"b": true}, true, false},                //
		{map[string]bool{}, false, false},                        // no pulses
		{map[string]bool{"a2": true, "sel": true}, false, true},  // mux selects x
		{map[string]bool{"b2": true, "sel": true}, false, false}, // sel=1 picks x (absent)
		{map[string]bool{"b2": true}, false, true},               // sel=0 picks y
	}
	for i, tc := range cases {
		res, err := Run(c, tc.in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs["out_mg"] != tc.mg || res.Outputs["out_mx"] != tc.mx {
			t.Errorf("case %d: merge=%v mux=%v, want %v/%v (in=%v)",
				i, res.Outputs["out_mg"], res.Outputs["out_mx"], tc.mg, tc.mx, tc.in)
		}
	}
}
