// Package sim is a single-wave functional simulator for technology-mapped
// SFQ netlists. In SFQ logic one computation is one wave of pulses: every
// primary input emits at most one pulse (pulse = logic 1, no pulse = 0),
// pulses propagate through asynchronous cells (splitters, JTLs, mergers)
// immediately, and each clocked gate fires once when its clock pulse
// arrives, emitting a pulse iff its Boolean function of the data pulses
// that arrived beforehand is true.
//
// Under the concurrent-flow clocking the paper's circuits use (clock
// follows data), "arrived beforehand" is guaranteed by construction, so a
// wave's functional result equals a topological evaluation of the mapped
// DAG with clock edges ignored. That is what Run computes — making it an
// end-to-end functional check of the whole substrate pipeline: generator →
// technology mapper (splitter trees, clock network) → netlist.
//
// The simulator also reports per-gate pulse activity, which feeds the
// power model's activity factor with measured rather than assumed values.
package sim

import (
	"fmt"
	"strings"

	"gpp/internal/cellib"
	"gpp/internal/netlist"
)

// Result is one simulated wave.
type Result struct {
	// Pulse[g] reports whether gate g emitted a pulse during the wave.
	Pulse []bool
	// Outputs maps every SFQDC (output converter) gate name to its value.
	Outputs map[string]bool
	// PulseCount is the total number of pulses emitted (switching
	// activity of the wave).
	PulseCount int
}

// Options configures the simulator.
type Options struct {
	// Library classifies cells; defaults to cellib.Default().
	Library *cellib.Library
}

// Run simulates one wave. inputs maps DCSFQ gate names (the mapper names
// them after the logic inputs, e.g. "INPUT_a0") to pulse presence; input
// converters absent from the map emit no pulse. The clock source ("clk_src"
// when the mapper generated one) always pulses.
func Run(c *netlist.Circuit, inputs map[string]bool, opts Options) (*Result, error) {
	if opts.Library == nil {
		opts.Library = cellib.Default()
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}

	// Classify cells and collect per-gate data inputs (clock edges are
	// identified as edges from the clock network: clock source or clock
	// splitters).
	kind := make([]cellib.Kind, c.NumGates())
	clocked := make([]bool, c.NumGates())
	for i, g := range c.Gates {
		cell, ok := opts.Library.ByName(g.Cell)
		if !ok {
			return nil, fmt.Errorf("sim: gate %s uses cell %q absent from library %q", g.Name, g.Cell, opts.Library.Name())
		}
		kind[i] = cell.Kind
		clocked[i] = cell.Clocked
	}
	isClockNet := make([]bool, c.NumGates())
	for i, g := range c.Gates {
		if kind[i] == cellib.KindClkSplit || g.Name == "clk_src" {
			isClockNet[i] = true
		}
	}

	inEdges := c.InEdges()
	res := &Result{
		Pulse:   make([]bool, c.NumGates()),
		Outputs: make(map[string]bool),
	}
	for _, gid := range order {
		i := int(gid)
		g := c.Gates[i]
		// Gather data-input pulses (ignore clock edges).
		var data []bool
		for _, ei := range inEdges[i] {
			from := int(c.Edges[ei].From)
			if isClockNet[from] && clocked[i] {
				continue // clock pin
			}
			data = append(data, res.Pulse[from])
		}
		var out bool
		switch kind[i] {
		case cellib.KindDCSFQ:
			if g.Name == "clk_src" {
				out = true
			} else {
				out = inputs[g.Name] || inputs[strings.TrimPrefix(g.Name, "INPUT_")]
			}
		case cellib.KindClkSplit:
			out = allOf(data) && len(data) > 0 // propagate the clock pulse
		case cellib.KindSplit, cellib.KindBuffer, cellib.KindDFF, cellib.KindSFQDC:
			out = len(data) > 0 && data[0]
		case cellib.KindMerge:
			out = anyOf(data)
		case cellib.KindAND:
			out = len(data) == 2 && data[0] && data[1]
		case cellib.KindOR:
			out = anyOf(data) && len(data) == 2
		case cellib.KindXOR:
			out = len(data) == 2 && data[0] != data[1]
		case cellib.KindNAND:
			out = len(data) == 2 && !(data[0] && data[1])
		case cellib.KindNOR:
			out = len(data) == 2 && !(data[0] || data[1])
		case cellib.KindXNOR:
			out = len(data) == 2 && data[0] == data[1]
		case cellib.KindAND2N:
			out = len(data) == 2 && data[0] && !data[1]
		case cellib.KindNOT:
			out = len(data) == 1 && !data[0]
		case cellib.KindMux:
			// data[2] selects between data[0] and data[1].
			if len(data) == 3 {
				if data[2] {
					out = data[0]
				} else {
					out = data[1]
				}
			}
		case cellib.KindDriver, cellib.KindReceiver:
			out = len(data) > 0 && data[0]
		case cellib.KindDummy:
			out = false
		default:
			return nil, fmt.Errorf("sim: no pulse semantics for cell kind %v (gate %s)", kind[i], g.Name)
		}
		res.Pulse[i] = out
		if out {
			res.PulseCount++
		}
		if kind[i] == cellib.KindSFQDC {
			res.Outputs[g.Name] = out
		}
	}
	return res, nil
}

func allOf(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

func anyOf(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// Activity estimates the average switching activity of the circuit over a
// set of input waves: pulses emitted / (gates × waves). This feeds the
// power model with a measured activity factor.
func Activity(c *netlist.Circuit, waves []map[string]bool, opts Options) (float64, error) {
	if len(waves) == 0 {
		return 0, fmt.Errorf("sim: no input waves")
	}
	total := 0
	for _, w := range waves {
		res, err := Run(c, w, opts)
		if err != nil {
			return 0, err
		}
		total += res.PulseCount
	}
	return float64(total) / float64(c.NumGates()*len(waves)), nil
}
