package place

import (
	"math"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
)

func placed(t *testing.T, name string, k int) (*netlist.Circuit, []int, *Placement) {
	t.Helper()
	c, err := gen.Benchmark(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 600})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(c, k, res.Labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c, res.Labels, pl
}

func TestBuildValidGeometry(t *testing.T) {
	c, _, pl := placed(t, "KSA8", 5)
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pl.Cells) != c.NumGates() {
		t.Fatalf("%d placements for %d gates", len(pl.Cells), c.NumGates())
	}
	if pl.OverlapCount() != 0 {
		t.Errorf("%d overlapping cell pairs", pl.OverlapCount())
	}
	if pl.DieW <= 0 || pl.DieH <= 0 {
		t.Errorf("die = %g × %g", pl.DieW, pl.DieH)
	}
}

func TestBandsStackLikeFig1(t *testing.T) {
	_, labels, pl := placed(t, "KSA8", 5)
	if len(pl.Bands) != 5 {
		t.Fatalf("%d bands", len(pl.Bands))
	}
	// Bands tile the die bottom to top in plane order.
	for i := 1; i < len(pl.Bands); i++ {
		if pl.Bands[i].Y0 != pl.Bands[i-1].Y1 {
			t.Errorf("band %d not adjacent to band %d", i, i-1)
		}
	}
	// Every cell's Y range lies inside its plane's band.
	for _, cp := range pl.Cells {
		b := pl.Bands[cp.Plane]
		if cp.Y < b.Y0-1e-9 || cp.Y+cp.H > b.Y1+1e-9 {
			t.Fatalf("cell of gate %d outside band %d", cp.Gate, cp.Plane)
		}
		if labels[cp.Gate] != cp.Plane {
			t.Fatalf("gate %d placed on plane %d but labeled %d", cp.Gate, cp.Plane, labels[cp.Gate])
		}
	}
}

func TestBandUtilization(t *testing.T) {
	_, _, pl := placed(t, "KSA16", 5)
	for _, b := range pl.Bands {
		if b.Util <= 0 || b.Util > 1 {
			t.Errorf("band %d utilization %g outside (0,1]", b.Plane, b.Util)
		}
		// Row packing with 15% whitespace should stay reasonably dense.
		if b.Used > 0 && b.Util < 0.2 {
			t.Errorf("band %d utilization %.2f suspiciously low", b.Plane, b.Util)
		}
	}
}

func TestCouplerSlotsMatchCrossings(t *testing.T) {
	c, labels, pl := placed(t, "KSA8", 5)
	want := 0
	for _, e := range c.Edges {
		d := labels[e.From] - labels[e.To]
		if d < 0 {
			d = -d
		}
		want += d
	}
	if len(pl.Slots) != want {
		t.Errorf("%d coupler slots, want %d", len(pl.Slots), want)
	}
	cong := pl.BoundaryCongestion()
	total := 0
	for _, n := range cong {
		total += n
	}
	if total != want {
		t.Errorf("congestion sums to %d, want %d", total, want)
	}
	for _, s := range pl.Slots {
		if s.X < 0 || s.X >= pl.DieW {
			t.Errorf("slot at x=%g outside die width %g", s.X, pl.DieW)
		}
		if s.Boundary < 0 || s.Boundary >= pl.K-1 {
			t.Errorf("slot on boundary %d outside [0,%d)", s.Boundary, pl.K-1)
		}
	}
}

func TestWirelengthPositiveAndCrossSubset(t *testing.T) {
	_, _, pl := placed(t, "MULT4", 5)
	if pl.HPWL <= 0 {
		t.Error("zero wirelength")
	}
	if pl.CrossHPWL < 0 || pl.CrossHPWL > pl.HPWL {
		t.Errorf("cross HPWL %g outside [0, %g]", pl.CrossHPWL, pl.HPWL)
	}
}

func TestBuildErrors(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, c.NumGates())
	if _, err := Build(c, 0, labels, Options{}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Build(c, 3, labels[:5], Options{}); err == nil {
		t.Error("short labels accepted")
	}
	bad := append([]int(nil), labels...)
	bad[0] = 7
	if _, err := Build(c, 3, bad, Options{}); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestEmptyPlaneStillGetsBand(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, c.NumGates()) // everything on plane 0
	pl, err := Build(c, 3, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pl.Bands) != 3 {
		t.Fatalf("%d bands", len(pl.Bands))
	}
	for _, b := range pl.Bands[1:] {
		if b.Y1 <= b.Y0 {
			t.Error("empty plane band has zero height")
		}
		if b.Used != 0 {
			t.Error("empty plane has used area")
		}
	}
}

func TestAreaConservation(t *testing.T) {
	c, _, pl := placed(t, "KSA8", 4)
	var placedArea float64
	for _, b := range pl.Bands {
		placedArea += b.Used
	}
	if math.Abs(placedArea-c.TotalArea()) > 1e-9 {
		t.Errorf("band areas sum to %g, circuit total %g", placedArea, c.TotalArea())
	}
}

func TestCouplerSlotsNoCollision(t *testing.T) {
	_, _, pl := placed(t, "KSA8", 5)
	type key struct {
		b, row, x int
	}
	seen := map[key]int{}
	maxRow := 0
	for _, s := range pl.Slots {
		k := key{s.Boundary, s.Row, int(s.X*1000 + 0.5)}
		seen[k]++
		if s.Row > maxRow {
			maxRow = s.Row
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("boundary %d row %d has %d slots at x=%d µm", k.b, k.row, n, k.x)
		}
	}
	// Rows fill evenly: the row count is bounded by ⌈crossings/grid⌉ + 1.
	if maxRow > len(pl.Slots) {
		t.Errorf("implausible row %d", maxRow)
	}
}

func TestCouplerSlotsNearEndpoints(t *testing.T) {
	// On average, a slot should sit closer to its connection's midpoint
	// than a uniformly random slot would (die width / 4 expected distance
	// for random). The probing keeps it within a couple of pitches for
	// uncongested boundaries.
	c, labels, pl := placed(t, "KSA8", 5)
	cx := make(map[int]float64)
	for _, cp := range pl.Cells {
		cx[int(cp.Gate)] = cp.X + cp.W/2
	}
	var sum float64
	for _, s := range pl.Slots {
		e := c.Edges[s.Edge]
		mid := (cx[int(e.From)] + cx[int(e.To)]) / 2
		d := s.X - mid
		if d < 0 {
			d = -d
		}
		sum += d
	}
	avg := sum / float64(len(pl.Slots))
	// Min-occupancy filling pushes late slots away from their midpoint on
	// congested boundaries; the average must still beat uniform-random.
	if avg > pl.DieW/4 {
		t.Errorf("average slot-to-midpoint distance %.3f mm not better than random (%.3f)",
			avg, pl.DieW/4)
	}
	_ = labels
}
