// Package place implements ground-plane-aware placement: after
// partitioning, each plane becomes a horizontal band of the chip (the
// stacked layout of the paper's Fig. 1 — planes are parallel stripes so
// that serial bias current flows top to bottom and only adjacent planes
// share a boundary), cells are row-packed inside their plane's band, and
// inter-plane nets are assigned coupler slots on the boundary between the
// bands they cross.
//
// The placement is deliberately simple (row packing, no detailed
// optimization); its role is to turn a partition into laid-out geometry so
// that area metrics, boundary congestion, and wirelength effects of the
// partition can be measured, and so the result can be written back to DEF
// with plane GROUPS/REGIONS.
package place

import (
	"fmt"
	"math"
	"sort"

	"gpp/internal/cellib"
	"gpp/internal/netlist"
)

// CellPlacement is the placed location of one gate, in millimetres.
type CellPlacement struct {
	Gate  netlist.GateID
	Plane int
	X, Y  float64 // lower-left corner
	W, H  float64
}

// Band is the horizontal stripe of one ground plane.
type Band struct {
	Plane  int
	Y0, Y1 float64 // bottom and top edge, mm
	Used   float64 // placed cell area, mm²
	Util   float64 // Used / band area
}

// CouplerSlot is a reserved location for one driver/receiver pair on a
// plane boundary. Congested boundaries stack couplers in multiple rows
// (Row 0 hugs the boundary; higher rows sit behind it).
type CouplerSlot struct {
	Edge     int     // circuit edge index this slot serves
	Boundary int     // between plane Boundary and Boundary+1
	X        float64 // slot position along the boundary, mm
	Row      int     // coupler row on this boundary (0 = closest)
}

// Placement is a full plane-banded layout.
type Placement struct {
	CircuitName string
	K           int
	DieW, DieH  float64 // mm
	Cells       []CellPlacement
	Bands       []Band
	Slots       []CouplerSlot

	// HPWL is the half-perimeter wirelength over all connections, mm.
	HPWL float64
	// CrossHPWL is the HPWL of inter-plane connections only.
	CrossHPWL float64
}

// Options configures the placer.
type Options struct {
	// Library resolves cell geometry; defaults to cellib.Default().
	Library *cellib.Library
	// Whitespace is the fractional slack added to each band beyond its
	// cells' area (default 0.15, i.e. 15% breathing room).
	Whitespace float64
	// CouplerPitch is the spacing between coupler slots on a boundary in
	// mm (default 0.08, two tiles).
	CouplerPitch float64
}

func (o Options) withDefaults() Options {
	if o.Library == nil {
		o.Library = cellib.Default()
	}
	if o.Whitespace <= 0 {
		o.Whitespace = 0.15
	}
	if o.CouplerPitch <= 0 {
		o.CouplerPitch = 2 * cellib.TileW
	}
	return o
}

// Build places the circuit under the given plane labeling (0-based planes,
// one label per gate).
func Build(c *netlist.Circuit, k int, labels []int, opts Options) (*Placement, error) {
	opts = opts.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(labels) != c.NumGates() {
		return nil, fmt.Errorf("place: %d labels for %d gates", len(labels), c.NumGates())
	}
	if k < 1 {
		return nil, fmt.Errorf("place: need at least one plane, got %d", k)
	}
	perPlane := make([][]netlist.GateID, k)
	planeArea := make([]float64, k)
	for i, lb := range labels {
		if lb < 0 || lb >= k {
			return nil, fmt.Errorf("place: gate %d labeled %d outside [0,%d)", i, lb, k)
		}
		perPlane[lb] = append(perPlane[lb], netlist.GateID(i))
		planeArea[lb] += c.Gates[i].Area
	}

	// Die width: wide enough that the largest plane fits in a band of a
	// few rows. Aim for a roughly square die overall.
	total := c.TotalArea() * (1 + opts.Whitespace)
	dieW := math.Sqrt(total)
	if dieW < 4*cellib.TileW {
		dieW = 4 * cellib.TileW
	}

	p := &Placement{CircuitName: c.Name, K: k, DieW: dieW}
	rowH := 2 * cellib.TileH

	y := 0.0
	for plane := 0; plane < k; plane++ {
		band := Band{Plane: plane, Y0: y}
		x, rowY := 0.0, y
		for _, gid := range perPlane[plane] {
			g := c.Gates[gid]
			w, h := cellGeom(opts.Library, g)
			if x+w > dieW && x > 0 {
				x = 0
				rowY += rowH
			}
			p.Cells = append(p.Cells, CellPlacement{
				Gate: gid, Plane: plane, X: x, Y: rowY, W: w, H: h,
			})
			band.Used += g.Area
			x += w
		}
		// Close the band: at least one row tall, plus whitespace rows.
		bandTop := rowY + rowH
		slack := (bandTop - band.Y0) * opts.Whitespace
		band.Y1 = bandTop + slack
		if band.Y1 == band.Y0 {
			band.Y1 = band.Y0 + rowH // empty plane still occupies one row
		}
		bandArea := (band.Y1 - band.Y0) * dieW
		if bandArea > 0 {
			band.Util = band.Used / bandArea
		}
		p.Bands = append(p.Bands, band)
		y = band.Y1
	}
	p.DieH = y

	cx, cy := p.cellCenters(c)
	p.placeCouplers(c, labels, cx, opts)
	p.computeWirelength(c, labels, cx, cy)
	return p, nil
}

func cellGeom(lib *cellib.Library, g netlist.Gate) (w, h float64) {
	if cell, ok := lib.ByName(g.Cell); ok {
		return cell.Width(), cell.Height()
	}
	// Unknown cell: derive a square-ish footprint from its area.
	side := math.Sqrt(g.Area)
	if side < cellib.TileW {
		side = cellib.TileW
	}
	return side, side
}

// cellCenters returns the placed center coordinates per gate.
func (p *Placement) cellCenters(c *netlist.Circuit) (cx, cy []float64) {
	cx = make([]float64, c.NumGates())
	cy = make([]float64, c.NumGates())
	for _, cp := range p.Cells {
		cx[cp.Gate] = cp.X + cp.W/2
		cy[cp.Gate] = cp.Y + cp.H/2
	}
	return cx, cy
}

// placeCouplers assigns each boundary-crossing hop a slot along its
// boundary, near the midpoint of the connection's endpoints so the coupler
// does not add gratuitous horizontal wirelength. Slots sit on a
// CouplerPitch grid; collisions probe outward to the nearest free grid
// position (wrapping at the die edge when a boundary saturates).
func (p *Placement) placeCouplers(c *netlist.Circuit, labels []int, cx []float64, opts Options) {
	gridN := int(p.DieW/opts.CouplerPitch) + 1
	occ := make([]map[int]int, p.K) // per boundary: grid cell → couplers stacked
	for k := range occ {
		occ[k] = make(map[int]int)
	}
	claim := func(boundary int, want float64) (float64, int) {
		g := int(want/opts.CouplerPitch + 0.5)
		if g < 0 {
			g = 0
		}
		if g >= gridN {
			g = gridN - 1
		}
		// The closest grid cell with the boundary's minimum occupancy:
		// probe outward (0, +1, −1, …); the first cell matching the global
		// minimum is the nearest one.
		minOcc := 1 << 30
		for cell := 0; cell < gridN; cell++ {
			if o := occ[boundary][cell]; o < minOcc {
				minOcc = o
			}
		}
		for probe := 0; probe < 2*gridN; probe++ {
			d := (probe + 1) / 2
			if probe%2 == 1 {
				d = -d
			}
			cand := ((g+d)%gridN + gridN) % gridN
			if occ[boundary][cand] == minOcc {
				occ[boundary][cand]++
				return float64(cand) * opts.CouplerPitch, minOcc
			}
		}
		occ[boundary][g]++ // unreachable; keep the bookkeeping consistent
		return float64(g) * opts.CouplerPitch, occ[boundary][g] - 1
	}
	for ei, e := range c.Edges {
		a, b := labels[e.From], labels[e.To]
		if a == b {
			continue
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		mid := (cx[e.From] + cx[e.To]) / 2
		for boundary := lo; boundary < hi; boundary++ {
			x, row := claim(boundary, mid)
			if x >= p.DieW {
				x = math.Mod(x, p.DieW)
			}
			p.Slots = append(p.Slots, CouplerSlot{Edge: ei, Boundary: boundary, X: x, Row: row})
		}
	}
}

// computeWirelength sums HPWL per connection using placed cell centers.
func (p *Placement) computeWirelength(c *netlist.Circuit, labels []int, cx, cy []float64) {
	for _, e := range c.Edges {
		dx := math.Abs(cx[e.From] - cx[e.To])
		dy := math.Abs(cy[e.From] - cy[e.To])
		p.HPWL += dx + dy
		if labels[e.From] != labels[e.To] {
			p.CrossHPWL += dx + dy
		}
	}
}

// BoundaryCongestion returns, per boundary (k, k+1), the number of coupler
// slots placed on it.
func (p *Placement) BoundaryCongestion() []int {
	out := make([]int, p.K-1)
	if p.K < 2 {
		return nil
	}
	for _, s := range p.Slots {
		if s.Boundary >= 0 && s.Boundary < len(out) {
			out[s.Boundary]++
		}
	}
	return out
}

// Validate checks the geometric invariants: every cell inside its plane's
// band and the die, bands contiguous and ordered, no negative utilization.
func (p *Placement) Validate() error {
	if len(p.Bands) != p.K {
		return fmt.Errorf("place: %d bands for %d planes", len(p.Bands), p.K)
	}
	prev := 0.0
	for i, b := range p.Bands {
		if b.Plane != i {
			return fmt.Errorf("place: band %d labeled plane %d", i, b.Plane)
		}
		if math.Abs(b.Y0-prev) > 1e-9 {
			return fmt.Errorf("place: band %d starts at %g, previous ended at %g", i, b.Y0, prev)
		}
		if b.Y1 <= b.Y0 {
			return fmt.Errorf("place: band %d is empty or inverted (%g, %g)", i, b.Y0, b.Y1)
		}
		if b.Util < 0 || b.Util > 1+1e-9 {
			return fmt.Errorf("place: band %d utilization %g outside [0,1]", i, b.Util)
		}
		prev = b.Y1
	}
	if math.Abs(prev-p.DieH) > 1e-9 {
		return fmt.Errorf("place: bands end at %g, die height is %g", prev, p.DieH)
	}
	for _, cp := range p.Cells {
		band := p.Bands[cp.Plane]
		if cp.Y < band.Y0-1e-9 || cp.Y+cp.H > band.Y1+1e-9 {
			return fmt.Errorf("place: gate %d at y=[%g,%g] outside its band [%g,%g]",
				cp.Gate, cp.Y, cp.Y+cp.H, band.Y0, band.Y1)
		}
		if cp.X < -1e-9 || cp.X+cp.W > p.DieW+1e-9 {
			return fmt.Errorf("place: gate %d at x=[%g,%g] outside die width %g",
				cp.Gate, cp.X, cp.X+cp.W, p.DieW)
		}
	}
	return nil
}

// OverlapCount counts pairs of overlapping cells within each plane (the
// row packer should produce zero; exported for verification).
func (p *Placement) OverlapCount() int {
	byPlane := make(map[int][]CellPlacement)
	for _, cp := range p.Cells {
		byPlane[cp.Plane] = append(byPlane[cp.Plane], cp)
	}
	overlaps := 0
	for _, cells := range byPlane {
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].Y != cells[j].Y {
				return cells[i].Y < cells[j].Y
			}
			return cells[i].X < cells[j].X
		})
		for i := 0; i < len(cells); i++ {
			for j := i + 1; j < len(cells); j++ {
				a, b := cells[i], cells[j]
				if b.Y >= a.Y+a.H {
					break // sorted by Y; no further overlap possible
				}
				if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
					overlaps++
				}
			}
		}
	}
	return overlaps
}
