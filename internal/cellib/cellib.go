// Package cellib defines the SFQ standard-cell library used by the ground
// plane partitioning flow.
//
// Each cell carries the three per-gate quantities the partitioner and the
// current-recycling planner consume: the bias current requirement b_i (mA),
// the layout area a_i (mm²), and the Josephson junction count (used for
// overhead accounting of coupler and dummy structures). The library is
// calibrated so that a technology-mapped benchmark circuit averages roughly
// 0.85 mA and 0.005 mm² per cell, matching the per-gate ratios implied by
// Table I of the paper (e.g. KSA4: 80.089 mA / 93 gates, 0.4512 mm² / 93
// gates).
//
// The cell geometry follows the usual SFQ row-based convention: every cell
// is an integer multiple of a fixed-pitch tile (TileW × TileH).
package cellib

import (
	"fmt"
	"sort"
)

// Tile dimensions in millimetres. SFQ standard cells in MIT-LL-class
// processes are laid out on a coarse grid; one logical tile here is
// 40 µm × 40 µm.
const (
	TileW = 0.040 // mm
	TileH = 0.040 // mm
)

// Kind enumerates the cell classes the technology mapper can emit.
type Kind int

// Cell kinds. The set covers the RSFQ cells required to map combinational
// benchmarks: clocked Boolean gates, storage, fanout (splitter), merging,
// I/O conversion, and the passive/active interconnect cells used by the
// recycling planner (driver/receiver coupler halves, dummy bias loads).
const (
	KindUnknown Kind = iota
	KindAND
	KindOR
	KindXOR
	KindNOT
	KindNAND
	KindNOR
	KindXNOR
	KindAND2N // AND with one inverted input (a AND NOT b)
	KindDFF
	KindSplit
	KindMerge
	KindBuffer // JTL chain segment
	KindDCSFQ  // DC to SFQ input converter
	KindSFQDC  // SFQ to DC output converter
	KindClkSplit
	KindMux
	KindDriver   // inductive coupler: sending half
	KindReceiver // inductive coupler: receiving half
	KindDummy    // dummy bias structure for current compensation
)

var kindNames = map[Kind]string{
	KindUnknown:  "UNKNOWN",
	KindAND:      "AND2T",
	KindOR:       "OR2T",
	KindXOR:      "XOR2T",
	KindNOT:      "NOTT",
	KindNAND:     "NAND2T",
	KindNOR:      "NOR2T",
	KindXNOR:     "XNOR2T",
	KindAND2N:    "ANDN2T",
	KindDFF:      "DFFT",
	KindSplit:    "SPLIT",
	KindMerge:    "MERGET",
	KindBuffer:   "JTL",
	KindDCSFQ:    "DCSFQ",
	KindSFQDC:    "SFQDC",
	KindClkSplit: "CSPLIT",
	KindMux:      "MUX2T",
	KindDriver:   "LDRV",
	KindReceiver: "LRCV",
	KindDummy:    "DUMMY",
}

// String returns the library name of the cell kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("KIND(%d)", int(k))
}

// Cell describes one library cell.
type Cell struct {
	Name    string  // library cell name, e.g. "AND2T"
	Kind    Kind    // logical class
	JJs     int     // Josephson junction count
	Bias    float64 // bias current requirement, mA
	DelayPS float64 // propagation delay, picoseconds (clock-to-Q for clocked cells)
	TilesW  int     // width in tiles
	TilesH  int     // height in tiles
	Inputs  int     // number of data inputs
	Outputs int     // number of data outputs
	Clocked bool    // consumes a clock pulse
}

// Area returns the layout area of the cell in mm².
func (c Cell) Area() float64 {
	return float64(c.TilesW) * TileW * float64(c.TilesH) * TileH
}

// Width returns the cell width in mm.
func (c Cell) Width() float64 { return float64(c.TilesW) * TileW }

// Height returns the cell height in mm.
func (c Cell) Height() float64 { return float64(c.TilesH) * TileH }

// Library is an immutable collection of cells indexed by name and kind.
type Library struct {
	name    string
	byName  map[string]Cell
	byKind  map[Kind]Cell
	ordered []Cell
}

// Name returns the library name.
func (l *Library) Name() string { return l.name }

// Cells returns all cells in deterministic (name) order.
func (l *Library) Cells() []Cell {
	out := make([]Cell, len(l.ordered))
	copy(out, l.ordered)
	return out
}

// ByName looks a cell up by its library name.
func (l *Library) ByName(name string) (Cell, bool) {
	c, ok := l.byName[name]
	return c, ok
}

// ByKind looks a cell up by logical kind.
func (l *Library) ByKind(k Kind) (Cell, bool) {
	c, ok := l.byKind[k]
	return c, ok
}

// MustByKind looks a cell up by kind and panics if the library lacks it.
// It is intended for mapper code paths where the default library is known
// to be complete; the panic indicates a programming error, not bad input.
func (l *Library) MustByKind(k Kind) Cell {
	c, ok := l.byKind[k]
	if !ok {
		panic(fmt.Sprintf("cellib: library %q has no cell of kind %v", l.name, k))
	}
	return c
}

// Len returns the number of cells.
func (l *Library) Len() int { return len(l.ordered) }

// NewLibrary builds a library from a cell list. Cell names and kinds must be
// unique; bias and geometry must be positive.
func NewLibrary(name string, cells []Cell) (*Library, error) {
	l := &Library{
		name:   name,
		byName: make(map[string]Cell, len(cells)),
		byKind: make(map[Kind]Cell, len(cells)),
	}
	for _, c := range cells {
		if c.Name == "" {
			return nil, fmt.Errorf("cellib: cell with empty name")
		}
		if _, dup := l.byName[c.Name]; dup {
			return nil, fmt.Errorf("cellib: duplicate cell name %q", c.Name)
		}
		if _, dup := l.byKind[c.Kind]; dup {
			return nil, fmt.Errorf("cellib: duplicate cell kind %v", c.Kind)
		}
		if c.Bias < 0 {
			return nil, fmt.Errorf("cellib: cell %q has negative bias %g", c.Name, c.Bias)
		}
		if c.TilesW <= 0 || c.TilesH <= 0 {
			return nil, fmt.Errorf("cellib: cell %q has non-positive geometry %dx%d", c.Name, c.TilesW, c.TilesH)
		}
		if c.JJs < 0 {
			return nil, fmt.Errorf("cellib: cell %q has negative JJ count %d", c.Name, c.JJs)
		}
		l.byName[c.Name] = c
		l.byKind[c.Kind] = c
		l.ordered = append(l.ordered, c)
	}
	sort.Slice(l.ordered, func(i, j int) bool { return l.ordered[i].Name < l.ordered[j].Name })
	return l, nil
}

// Default returns the built-in SFQ library used throughout the reproduction.
//
// Bias currents are chosen per cell class in the 0.1–1.9 mA range so that a
// mapped netlist (roughly 40% splitters/JTLs, 30% clocked Boolean gates,
// 20% DFFs, 10% other) averages ≈0.85 mA and ≈0.005 mm² per instance —
// the averages implied by the paper's Table I columns B_cir/#Gates and
// A_cir/#Gates.
func Default() *Library {
	cells := []Cell{
		{Name: "AND2T", DelayPS: 8.0, Kind: KindAND, JJs: 11, Bias: 1.15, TilesW: 2, TilesH: 2, Inputs: 2, Outputs: 1, Clocked: true},
		{Name: "OR2T", DelayPS: 7.0, Kind: KindOR, JJs: 10, Bias: 1.05, TilesW: 2, TilesH: 2, Inputs: 2, Outputs: 1, Clocked: true},
		{Name: "XOR2T", DelayPS: 8.5, Kind: KindXOR, JJs: 11, Bias: 1.30, TilesW: 2, TilesH: 2, Inputs: 2, Outputs: 1, Clocked: true},
		{Name: "NOTT", DelayPS: 6.0, Kind: KindNOT, JJs: 9, Bias: 0.95, TilesW: 2, TilesH: 1, Inputs: 1, Outputs: 1, Clocked: true},
		{Name: "NAND2T", DelayPS: 9.0, Kind: KindNAND, JJs: 13, Bias: 1.35, TilesW: 2, TilesH: 2, Inputs: 2, Outputs: 1, Clocked: true},
		{Name: "NOR2T", DelayPS: 8.5, Kind: KindNOR, JJs: 12, Bias: 1.25, TilesW: 2, TilesH: 2, Inputs: 2, Outputs: 1, Clocked: true},
		{Name: "XNOR2T", DelayPS: 9.5, Kind: KindXNOR, JJs: 13, Bias: 1.45, TilesW: 2, TilesH: 2, Inputs: 2, Outputs: 1, Clocked: true},
		{Name: "ANDN2T", DelayPS: 8.5, Kind: KindAND2N, JJs: 12, Bias: 1.25, TilesW: 2, TilesH: 2, Inputs: 2, Outputs: 1, Clocked: true},
		{Name: "DFFT", DelayPS: 5.0, Kind: KindDFF, JJs: 6, Bias: 0.70, TilesW: 2, TilesH: 1, Inputs: 1, Outputs: 1, Clocked: true},
		{Name: "SPLIT", DelayPS: 4.0, Kind: KindSplit, JJs: 3, Bias: 0.45, TilesW: 1, TilesH: 1, Inputs: 1, Outputs: 2, Clocked: false},
		{Name: "MERGET", DelayPS: 6.0, Kind: KindMerge, JJs: 7, Bias: 0.85, TilesW: 2, TilesH: 1, Inputs: 2, Outputs: 1, Clocked: false},
		{Name: "JTL", DelayPS: 3.0, Kind: KindBuffer, JJs: 2, Bias: 0.35, TilesW: 1, TilesH: 1, Inputs: 1, Outputs: 1, Clocked: false},
		{Name: "DCSFQ", DelayPS: 5.0, Kind: KindDCSFQ, JJs: 5, Bias: 0.90, TilesW: 2, TilesH: 1, Inputs: 1, Outputs: 1, Clocked: false},
		{Name: "SFQDC", DelayPS: 5.0, Kind: KindSFQDC, JJs: 8, Bias: 1.60, TilesW: 2, TilesH: 2, Inputs: 1, Outputs: 1, Clocked: false},
		{Name: "CSPLIT", DelayPS: 4.0, Kind: KindClkSplit, JJs: 3, Bias: 0.45, TilesW: 1, TilesH: 1, Inputs: 1, Outputs: 2, Clocked: false},
		{Name: "MUX2T", DelayPS: 10.0, Kind: KindMux, JJs: 15, Bias: 1.90, TilesW: 3, TilesH: 2, Inputs: 3, Outputs: 1, Clocked: true},
		{Name: "LDRV", DelayPS: 8.0, Kind: KindDriver, JJs: 4, Bias: 0.15, TilesW: 1, TilesH: 1, Inputs: 1, Outputs: 1, Clocked: false},
		{Name: "LRCV", DelayPS: 8.0, Kind: KindReceiver, JJs: 4, Bias: 0.15, TilesW: 1, TilesH: 1, Inputs: 1, Outputs: 1, Clocked: false},
		{Name: "DUMMY", DelayPS: 0.0, Kind: KindDummy, JJs: 2, Bias: 1.00, TilesW: 1, TilesH: 1, Inputs: 0, Outputs: 0, Clocked: false},
	}
	l, err := NewLibrary("sfq-repro-1.0", cells)
	if err != nil {
		panic("cellib: default library invalid: " + err.Error())
	}
	return l
}
