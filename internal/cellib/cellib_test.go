package cellib

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultLibraryComplete(t *testing.T) {
	lib := Default()
	if lib.Name() == "" {
		t.Error("default library has empty name")
	}
	kinds := []Kind{
		KindAND, KindOR, KindXOR, KindNOT, KindNAND, KindNOR, KindXNOR,
		KindAND2N, KindDFF, KindSplit, KindMerge, KindBuffer, KindDCSFQ,
		KindSFQDC, KindClkSplit, KindMux, KindDriver, KindReceiver, KindDummy,
	}
	for _, k := range kinds {
		c, ok := lib.ByKind(k)
		if !ok {
			t.Errorf("default library missing kind %v", k)
			continue
		}
		if c.Name != k.String() {
			t.Errorf("kind %v maps to cell %q, want %q", k, c.Name, k.String())
		}
	}
	if lib.Len() != len(kinds) {
		t.Errorf("library has %d cells, want %d", lib.Len(), len(kinds))
	}
}

func TestDefaultLibraryPhysicalSanity(t *testing.T) {
	for _, c := range Default().Cells() {
		if c.Bias <= 0 || c.Bias > 5 {
			t.Errorf("%s: bias %g mA outside plausible SFQ range (0, 5]", c.Name, c.Bias)
		}
		if c.JJs <= 0 || c.JJs > 30 {
			t.Errorf("%s: JJ count %d outside plausible range", c.Name, c.JJs)
		}
		if c.Area() <= 0 || c.Area() > 0.05 {
			t.Errorf("%s: area %g mm² outside plausible range", c.Name, c.Area())
		}
	}
}

func TestSplitterHasTwoOutputs(t *testing.T) {
	lib := Default()
	for _, k := range []Kind{KindSplit, KindClkSplit} {
		c := lib.MustByKind(k)
		if c.Outputs != 2 {
			t.Errorf("%v has %d outputs, want 2", k, c.Outputs)
		}
		if c.Clocked {
			t.Errorf("%v must not be clocked", k)
		}
	}
}

func TestClockedGatesAreClocked(t *testing.T) {
	lib := Default()
	for _, k := range []Kind{KindAND, KindOR, KindXOR, KindNOT, KindDFF, KindMux} {
		if c := lib.MustByKind(k); !c.Clocked {
			t.Errorf("%v should be clocked", k)
		}
	}
	for _, k := range []Kind{KindSplit, KindBuffer, KindDriver, KindReceiver, KindDummy} {
		if c := lib.MustByKind(k); c.Clocked {
			t.Errorf("%v should not be clocked", k)
		}
	}
}

func TestAreaGeometry(t *testing.T) {
	c := Cell{Name: "X", Kind: KindAND, TilesW: 3, TilesH: 2, Bias: 1}
	wantW := 3 * TileW
	wantH := 2 * TileH
	if got := c.Width(); math.Abs(got-wantW) > 1e-12 {
		t.Errorf("Width = %g, want %g", got, wantW)
	}
	if got := c.Height(); math.Abs(got-wantH) > 1e-12 {
		t.Errorf("Height = %g, want %g", got, wantH)
	}
	if got, want := c.Area(), wantW*wantH; math.Abs(got-want) > 1e-12 {
		t.Errorf("Area = %g, want %g", got, want)
	}
}

func TestByNameLookup(t *testing.T) {
	lib := Default()
	c, ok := lib.ByName("AND2T")
	if !ok || c.Kind != KindAND {
		t.Fatalf("ByName(AND2T) = %v, %v", c, ok)
	}
	if _, ok := lib.ByName("NOPE"); ok {
		t.Error("ByName(NOPE) should fail")
	}
	if _, ok := lib.ByKind(Kind(999)); ok {
		t.Error("ByKind(999) should fail")
	}
}

func TestCellsSortedAndCopied(t *testing.T) {
	lib := Default()
	cells := lib.Cells()
	for i := 1; i < len(cells); i++ {
		if cells[i-1].Name >= cells[i].Name {
			t.Fatalf("cells not sorted: %q before %q", cells[i-1].Name, cells[i].Name)
		}
	}
	cells[0].Name = "MUTATED"
	if lib.Cells()[0].Name == "MUTATED" {
		t.Error("Cells() exposes internal slice")
	}
}

func TestNewLibraryErrors(t *testing.T) {
	base := Cell{Name: "A", Kind: KindAND, JJs: 1, Bias: 1, TilesW: 1, TilesH: 1}
	cases := []struct {
		name  string
		cells []Cell
		want  string
	}{
		{"empty name", []Cell{{Kind: KindAND, Bias: 1, TilesW: 1, TilesH: 1}}, "empty name"},
		{"dup name", []Cell{base, {Name: "A", Kind: KindOR, Bias: 1, TilesW: 1, TilesH: 1}}, "duplicate cell name"},
		{"dup kind", []Cell{base, {Name: "B", Kind: KindAND, Bias: 1, TilesW: 1, TilesH: 1}}, "duplicate cell kind"},
		{"negative bias", []Cell{{Name: "A", Kind: KindAND, Bias: -1, TilesW: 1, TilesH: 1}}, "negative bias"},
		{"zero width", []Cell{{Name: "A", Kind: KindAND, Bias: 1, TilesW: 0, TilesH: 1}}, "geometry"},
		{"negative jjs", []Cell{{Name: "A", Kind: KindAND, JJs: -2, Bias: 1, TilesW: 1, TilesH: 1}}, "JJ count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewLibrary("bad", tc.cells)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("NewLibrary error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestMustByKindPanics(t *testing.T) {
	lib, err := NewLibrary("tiny", []Cell{{Name: "A", Kind: KindAND, Bias: 1, TilesW: 1, TilesH: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByKind on missing kind did not panic")
		}
	}()
	lib.MustByKind(KindXOR)
}

func TestKindString(t *testing.T) {
	if got := KindAND.String(); got != "AND2T" {
		t.Errorf("KindAND.String() = %q", got)
	}
	if got := Kind(4242).String(); !strings.Contains(got, "4242") {
		t.Errorf("unknown kind string = %q", got)
	}
}
