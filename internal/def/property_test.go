package def

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gpp/internal/cellib"
	"gpp/internal/netlist"
)

// randomMappedCircuit builds a random SFQ-legal circuit using library
// cells: a layered chain with extra forward edges into free input pins.
func randomMappedCircuit(seed int64, n int) (*netlist.Circuit, error) {
	rng := rand.New(rand.NewSource(seed))
	lib := cellib.Default()
	b := netlist.NewBuilder("rand", lib)
	kinds := []cellib.Kind{cellib.KindDFF, cellib.KindBuffer, cellib.KindSplit, cellib.KindAND}
	ids := make([]netlist.GateID, 0, n)
	ids = append(ids, b.AddCell("src", cellib.KindDCSFQ))
	for i := 1; i < n; i++ {
		ids = append(ids, b.AddCell("g"+itoa(i), kinds[rng.Intn(len(kinds))]))
		b.Connect(ids[rng.Intn(i)], ids[i])
	}
	// A few extra edges.
	for i := 0; i < n/3; i++ {
		a := rng.Intn(n - 1)
		c := a + 1 + rng.Intn(n-a-1)
		b.Connect(ids[a], ids[c])
	}
	return b.Build()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// TestRoundTripProperty: arbitrary library-cell circuits survive the
// write→parse→rebuild cycle with the exact multiset of edges, totals, and
// component count.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%80) + 5
		orig, err := randomMappedCircuit(seed, n)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, orig, nil); err != nil {
			return false
		}
		d, err := Parse(&buf)
		if err != nil {
			return false
		}
		got, err := ToCircuit(d, nil)
		if err != nil {
			return false
		}
		if got.NumGates() != orig.NumGates() || got.NumEdges() != orig.NumEdges() {
			return false
		}
		if got.TotalBias() != orig.TotalBias() || got.TotalArea() != orig.TotalArea() {
			return false
		}
		a := edgeKeys(orig)
		b := edgeKeys(got)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func edgeKeys(c *netlist.Circuit) []string {
	keys := make([]string, 0, c.NumEdges())
	for _, e := range c.Edges {
		keys = append(keys, c.Gates[e.From].Name+">"+c.Gates[e.To].Name)
	}
	sort.Strings(keys)
	return keys
}
