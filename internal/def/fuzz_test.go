package def

import (
	"strings"
	"testing"
)

// FuzzParse asserts the DEF reader never panics on arbitrary input —
// malformed files must fail with errors, not crashes. Without -fuzz the
// seed corpus runs as a regular test.
func FuzzParse(f *testing.F) {
	f.Add("DESIGN top ;\nCOMPONENTS 1 ;\n- a DFFT ;\nEND COMPONENTS\nEND DESIGN\n")
	f.Add("VERSION 5.8 ;\nDESIGN d ;\nNETS 1 ;\n- n ( a o0 ) ( b i0 ) ;\nEND NETS\nEND DESIGN\n")
	f.Add("DESIGN x ;\nDIEAREA ( 0 0 ) ( 10 10 ) ;\nEND DESIGN")
	f.Add("")
	f.Add("- - - ; ( ) END END END")
	f.Add("COMPONENTS 99 ;")
	f.Add("DESIGN 🤖 ;\nUNITS DISTANCE MICRONS notanumber ;")
	f.Add("REGIONS 1 ;\n- r ( 1 2 ) ( 3 4 ) + TYPE FENCE ;\nEND REGIONS")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(strings.NewReader(src))
		if err == nil && d != nil {
			// Whatever parsed must convert or fail cleanly too.
			_, _ = ToCircuit(d, nil)
		}
		_, _, _ = ParseRegionsGroups(strings.NewReader(src))
	})
}
