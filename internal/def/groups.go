package def

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpp/internal/netlist"
	"gpp/internal/place"
	"gpp/internal/tok"
)

// Region is a parsed DEF REGION: a named rectangle (dbu).
type Region struct {
	Name           string
	X0, Y0, X1, Y1 int
	Fence          bool
}

// Group is a parsed DEF GROUP: named component set, optionally bound to a
// region.
type Group struct {
	Name       string
	Components []string
	Region     string
}

// WritePlaced emits a partitioned, placed design as DEF with one REGION
// (TYPE FENCE) per ground-plane band and one GROUP binding each plane's
// cells to its region — the standard DEF way to hand a partition to
// downstream physical design tools.
func WritePlaced(w io.Writer, c *netlist.Circuit, p *place.Placement) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if len(p.Cells) != c.NumGates() {
		return fmt.Errorf("def: placement has %d cells, circuit has %d gates", len(p.Cells), c.NumGates())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n")
	fmt.Fprintf(bw, "DESIGN %s ;\n", c.Name)
	fmt.Fprintf(bw, "UNITS DISTANCE MICRONS %d ;\n", DBU)
	fmt.Fprintf(bw, "DIEAREA ( 0 0 ) ( %d %d ) ;\n\n", mmToDBU(p.DieW), mmToDBU(p.DieH))

	fmt.Fprintf(bw, "REGIONS %d ;\n", len(p.Bands))
	for _, b := range p.Bands {
		fmt.Fprintf(bw, "- plane_%d ( 0 %d ) ( %d %d ) + TYPE FENCE ;\n",
			b.Plane+1, mmToDBU(b.Y0), mmToDBU(p.DieW), mmToDBU(b.Y1))
	}
	fmt.Fprintf(bw, "END REGIONS\n\n")

	// Components with placement from the plane-banded placer.
	pos := make(map[netlist.GateID][2]int, len(p.Cells))
	planeOf := make(map[netlist.GateID]int, len(p.Cells))
	for _, cp := range p.Cells {
		pos[cp.Gate] = [2]int{mmToDBU(cp.X), mmToDBU(cp.Y)}
		planeOf[cp.Gate] = cp.Plane
	}
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", c.NumGates())
	for _, g := range c.Gates {
		xy := pos[g.ID]
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) N ;\n", g.Name, g.Cell, xy[0], xy[1])
	}
	fmt.Fprintf(bw, "END COMPONENTS\n\n")

	fmt.Fprintf(bw, "GROUPS %d ;\n", len(p.Bands))
	for _, b := range p.Bands {
		fmt.Fprintf(bw, "- plane_%d", b.Plane+1)
		n := 0
		for _, g := range c.Gates {
			if planeOf[g.ID] == b.Plane {
				fmt.Fprintf(bw, " %s", g.Name)
				n++
				if n%8 == 0 {
					fmt.Fprintf(bw, "\n   ")
				}
			}
		}
		fmt.Fprintf(bw, " + REGION plane_%d ;\n", b.Plane+1)
	}
	fmt.Fprintf(bw, "END GROUPS\n\n")

	// The serial bias chain as SPECIALNETS: the supply enters plane K (the
	// top band), each plane's ground return feeds the next bias bus, and
	// plane 1 returns to ground — Fig. 1 of the paper in DEF form. Each
	// net is annotated + USE POWER with a routing stub along its band.
	fmt.Fprintf(bw, "SPECIALNETS %d ;\n", len(p.Bands)+1)
	fmt.Fprintf(bw, "- bias_supply + USE POWER ;\n")
	for i := len(p.Bands) - 1; i >= 0; i-- {
		b := p.Bands[i]
		fmt.Fprintf(bw, "- bias_gp%d + USE POWER + POLYGON met0 ( 0 %d ) ( %d %d ) ;\n",
			b.Plane+1, mmToDBU(b.Y0), mmToDBU(p.DieW), mmToDBU(b.Y1))
	}
	fmt.Fprintf(bw, "END SPECIALNETS\n\n")

	out := c.OutEdges()
	nets := 0
	for i := range c.Gates {
		if len(out[i]) > 0 {
			nets++
		}
	}
	pinIdx := make([]int, c.NumEdges())
	seen := make([]int, c.NumGates())
	for ei, e := range c.Edges {
		pinIdx[ei] = seen[e.To]
		seen[e.To]++
	}
	fmt.Fprintf(bw, "NETS %d ;\n", nets)
	for i, g := range c.Gates {
		if len(out[i]) == 0 {
			continue
		}
		fmt.Fprintf(bw, "- net_%s ( %s o0 )", g.Name, g.Name)
		for _, ei := range out[i] {
			sink := c.Edges[ei].To
			fmt.Fprintf(bw, " ( %s i%d )", c.Gates[sink].Name, pinIdx[ei])
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\n\nEND DESIGN\n")
	return bw.Flush()
}

func mmToDBU(mm float64) int { return int(mm*1000*DBU + 0.5) }

// ParseRegionsGroups parses the REGIONS and GROUPS sections of a DEF file
// written by WritePlaced (or any tool using the same subset).
func ParseRegionsGroups(r io.Reader) ([]Region, []Group, error) {
	tz := tok.New(r)
	var regions []Region
	var groups []Group
	for {
		t, ok := tz.Next()
		if !ok {
			break
		}
		switch strings.ToUpper(t) {
		case "REGIONS":
			rs, err := parseRegions(tz)
			if err != nil {
				return nil, nil, err
			}
			regions = rs
		case "GROUPS":
			gs, err := parseGroups(tz)
			if err != nil {
				return nil, nil, err
			}
			groups = gs
		case "END":
			tz.Next()
		default:
			tz.SkipStatement()
		}
	}
	return regions, groups, nil
}

func parseRegions(tz *tok.Tokenizer) ([]Region, error) {
	tz.SkipStatement() // count ;
	var out []Region
	for {
		t, ok := tz.Next()
		if !ok {
			return nil, fmt.Errorf("def: EOF inside REGIONS")
		}
		if strings.EqualFold(t, "END") {
			tz.Next() // REGIONS
			return out, nil
		}
		if t != "-" {
			return nil, fmt.Errorf("def: expected '-' in REGIONS, got %q", t)
		}
		name, ok := tz.Next()
		if !ok {
			return nil, fmt.Errorf("def: truncated region")
		}
		reg := Region{Name: name}
		var nums []int
		for {
			t2, ok := tz.Next()
			if !ok {
				return nil, fmt.Errorf("def: EOF in region %s", name)
			}
			if t2 == ";" {
				break
			}
			if n, err := strconv.Atoi(t2); err == nil {
				nums = append(nums, n)
			}
			if strings.EqualFold(t2, "FENCE") {
				reg.Fence = true
			}
		}
		if len(nums) < 4 {
			return nil, fmt.Errorf("def: region %s has %d coordinates, want 4", name, len(nums))
		}
		reg.X0, reg.Y0, reg.X1, reg.Y1 = nums[0], nums[1], nums[2], nums[3]
		out = append(out, reg)
	}
}

func parseGroups(tz *tok.Tokenizer) ([]Group, error) {
	tz.SkipStatement() // count ;
	var out []Group
	for {
		t, ok := tz.Next()
		if !ok {
			return nil, fmt.Errorf("def: EOF inside GROUPS")
		}
		if strings.EqualFold(t, "END") {
			tz.Next() // GROUPS
			return out, nil
		}
		if t != "-" {
			return nil, fmt.Errorf("def: expected '-' in GROUPS, got %q", t)
		}
		name, ok := tz.Next()
		if !ok {
			return nil, fmt.Errorf("def: truncated group")
		}
		grp := Group{Name: name}
		inRegion := false
		for {
			t2, ok := tz.Next()
			if !ok {
				return nil, fmt.Errorf("def: EOF in group %s", name)
			}
			if t2 == ";" {
				break
			}
			switch {
			case t2 == "+":
				inRegion = false
			case strings.EqualFold(t2, "REGION"):
				inRegion = true
			case inRegion:
				grp.Region = t2
				inRegion = false
			default:
				grp.Components = append(grp.Components, t2)
			}
		}
		out = append(out, grp)
	}
}

// LabelsFromGroups recovers a plane labeling from parsed groups: group
// "plane_<k>" (1-based) assigns its components to plane k−1. Components
// absent from every group are an error.
func LabelsFromGroups(c *netlist.Circuit, groups []Group) ([]int, int, error) {
	ids := make(map[string]netlist.GateID, c.NumGates())
	for _, g := range c.Gates {
		ids[g.Name] = g.ID
	}
	labels := make([]int, c.NumGates())
	for i := range labels {
		labels[i] = -1
	}
	maxPlane := -1
	for _, grp := range groups {
		var plane int
		if _, err := fmt.Sscanf(grp.Name, "plane_%d", &plane); err != nil {
			continue // foreign group
		}
		plane-- // 1-based in DEF
		if plane < 0 {
			return nil, 0, fmt.Errorf("def: group %s has non-positive plane number", grp.Name)
		}
		if plane > maxPlane {
			maxPlane = plane
		}
		for _, comp := range grp.Components {
			id, ok := ids[comp]
			if !ok {
				return nil, 0, fmt.Errorf("def: group %s references unknown component %s", grp.Name, comp)
			}
			if labels[id] >= 0 {
				return nil, 0, fmt.Errorf("def: component %s in multiple plane groups", comp)
			}
			labels[id] = plane
		}
	}
	if maxPlane < 0 {
		return nil, 0, fmt.Errorf("def: no plane_<k> groups found")
	}
	for i, lb := range labels {
		if lb < 0 {
			return nil, 0, fmt.Errorf("def: gate %s not assigned to any plane group", c.Gates[i].Name)
		}
	}
	return labels, maxPlane + 1, nil
}
