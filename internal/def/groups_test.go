package def

import (
	"bytes"
	"strings"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
	"gpp/internal/place"
)

func placedFixture(t *testing.T) (*netlist.Circuit, []int, *place.Placement) {
	t.Helper()
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 600})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Build(c, 4, res.Labels, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c, res.Labels, pl
}

func TestWritePlacedRoundTrip(t *testing.T) {
	c, labels, pl := placedFixture(t)
	var buf bytes.Buffer
	if err := WritePlaced(&buf, c, pl); err != nil {
		t.Fatal(err)
	}
	src := buf.String()

	// The netlist itself must still round-trip through the plain parser.
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ToCircuit(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumGates() != c.NumGates() || got.NumEdges() != c.NumEdges() {
		t.Fatalf("netlist lost: %d/%d gates, %d/%d edges",
			got.NumGates(), c.NumGates(), got.NumEdges(), c.NumEdges())
	}

	// Regions and groups must recover the partition exactly.
	regions, groups, err := ParseRegionsGroups(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 4 || len(groups) != 4 {
		t.Fatalf("%d regions, %d groups; want 4 each", len(regions), len(groups))
	}
	for _, r := range regions {
		if !r.Fence {
			t.Errorf("region %s not a FENCE", r.Name)
		}
		if r.X1 <= r.X0 || r.Y1 <= r.Y0 {
			t.Errorf("region %s degenerate: %+v", r.Name, r)
		}
	}
	recovered, k, err := LabelsFromGroups(c, groups)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("recovered K = %d", k)
	}
	for i := range labels {
		if recovered[i] != labels[i] {
			t.Fatalf("gate %d: recovered plane %d, want %d", i, recovered[i], labels[i])
		}
	}
}

func TestRegionsMatchBands(t *testing.T) {
	c, _, pl := placedFixture(t)
	var buf bytes.Buffer
	if err := WritePlaced(&buf, c, pl); err != nil {
		t.Fatal(err)
	}
	regions, _, err := ParseRegionsGroups(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Regions stack bottom-to-top like the bands.
	for i := 1; i < len(regions); i++ {
		if regions[i].Y0 != regions[i-1].Y1 {
			t.Errorf("region %d not adjacent to %d: %d vs %d",
				i, i-1, regions[i].Y0, regions[i-1].Y1)
		}
	}
	if regions[0].Y0 != 0 {
		t.Errorf("first region starts at %d", regions[0].Y0)
	}
}

func TestLabelsFromGroupsErrors(t *testing.T) {
	c, _, _ := placedFixture(t)
	t.Run("unknown component", func(t *testing.T) {
		groups := []Group{{Name: "plane_1", Components: []string{"ghost"}}}
		if _, _, err := LabelsFromGroups(c, groups); err == nil {
			t.Error("unknown component accepted")
		}
	})
	t.Run("duplicate assignment", func(t *testing.T) {
		name := c.Gates[0].Name
		groups := []Group{
			{Name: "plane_1", Components: []string{name}},
			{Name: "plane_2", Components: []string{name}},
		}
		if _, _, err := LabelsFromGroups(c, groups); err == nil {
			t.Error("duplicate assignment accepted")
		}
	})
	t.Run("no plane groups", func(t *testing.T) {
		if _, _, err := LabelsFromGroups(c, []Group{{Name: "misc"}}); err == nil {
			t.Error("missing plane groups accepted")
		}
	})
	t.Run("unassigned gate", func(t *testing.T) {
		groups := []Group{{Name: "plane_1", Components: []string{c.Gates[0].Name}}}
		if _, _, err := LabelsFromGroups(c, groups); err == nil {
			t.Error("partial assignment accepted")
		}
	})
}

func TestParseRegionsGroupsErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"eof in regions", "REGIONS 1 ;\n- r ( 0 0 ) ( 1 1 ) + TYPE FENCE ;\n"},
		{"bad region lead", "REGIONS 1 ;\nx r ;\nEND REGIONS\n"},
		{"few coords", "REGIONS 1 ;\n- r ( 0 0 ) ;\nEND REGIONS\n"},
		{"eof in groups", "GROUPS 1 ;\n- g a b ;\n"},
		{"bad group lead", "GROUPS 1 ;\nx g ;\nEND GROUPS\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ParseRegionsGroups(strings.NewReader(tc.src)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestWritePlacedRejectsMismatch(t *testing.T) {
	c, _, pl := placedFixture(t)
	other, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePlaced(&bytes.Buffer{}, other, pl); err == nil {
		t.Error("mismatched placement accepted")
	}
	_ = c
}

func TestWritePlacedEmitsBiasSpecialNets(t *testing.T) {
	c, _, pl := placedFixture(t)
	var buf bytes.Buffer
	if err := WritePlaced(&buf, c, pl); err != nil {
		t.Fatal(err)
	}
	src := buf.String()
	if !strings.Contains(src, "SPECIALNETS 5 ;") {
		t.Errorf("SPECIALNETS header missing (K=4 planes + supply)")
	}
	for k := 1; k <= 4; k++ {
		if !strings.Contains(src, "- bias_gp"+string(rune('0'+k))) {
			t.Errorf("bias net for plane %d missing", k)
		}
	}
	if !strings.Contains(src, "- bias_supply + USE POWER ;") {
		t.Error("supply net missing")
	}
	// The plain parser must still read the rest of the design (it skips
	// the SPECIALNETS section).
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Components) != c.NumGates() {
		t.Errorf("components lost: %d vs %d", len(d.Components), c.NumGates())
	}
}
