// Package def reads and writes the subset of the DEF (Design Exchange
// Format) the paper's benchmark flow uses: DESIGN/UNITS headers, DIEAREA,
// placed COMPONENTS, and point-to-point NETS. The writer performs a simple
// row-based placement so the emitted file is a legal placed design; the
// reader recovers the netlist graph, resolving per-cell bias and area
// through a cell library (see internal/lef).
//
// Net convention: the first (component, pin) connection of a net is the
// driver; every further connection is a sink. The writer emits one net per
// driver output with all its sinks (fanout is explicit splitter cells, so
// mapped netlists stay point-to-point).
package def

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"gpp/internal/cellib"
	"gpp/internal/netlist"
	"gpp/internal/tok"
)

// DBU is the database units per micron used by the writer.
const DBU = 1000

// Write emits the circuit as a placed DEF design. The library provides
// cell geometry for placement; gates whose cell name is unknown to the
// library are placed as 1×1-tile cells.
func Write(w io.Writer, c *netlist.Circuit, lib *cellib.Library) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if lib == nil {
		lib = cellib.Default()
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n")
	fmt.Fprintf(bw, "DESIGN %s ;\n", c.Name)
	fmt.Fprintf(bw, "UNITS DISTANCE MICRONS %d ;\n", DBU)

	place, dieW, dieH := rowPlacement(c, lib)
	fmt.Fprintf(bw, "DIEAREA ( 0 0 ) ( %d %d ) ;\n\n", dieW, dieH)

	fmt.Fprintf(bw, "COMPONENTS %d ;\n", c.NumGates())
	for i, g := range c.Gates {
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) N ;\n", g.Name, g.Cell, place[i][0], place[i][1])
	}
	fmt.Fprintf(bw, "END COMPONENTS\n\n")

	// Group edges by driver so each driver output becomes one net.
	out := c.OutEdges()
	// Pin index of each edge = its position among the sink's in-edges in
	// circuit edge order (the sink's semantic pin order).
	pinIdx := make([]int, c.NumEdges())
	seen := make([]int, c.NumGates())
	for ei, e := range c.Edges {
		pinIdx[ei] = seen[e.To]
		seen[e.To]++
	}
	nets := 0
	for i := range c.Gates {
		if len(out[i]) > 0 {
			nets++
		}
	}
	fmt.Fprintf(bw, "NETS %d ;\n", nets)
	for i, g := range c.Gates {
		if len(out[i]) == 0 {
			continue
		}
		fmt.Fprintf(bw, "- net_%s ( %s o0 )", g.Name, g.Name)
		for _, ei := range out[i] {
			sink := c.Edges[ei].To
			fmt.Fprintf(bw, " ( %s i%d )", c.Gates[sink].Name, pinIdx[ei])
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\n\nEND DESIGN\n")
	return bw.Flush()
}

// rowPlacement packs cells left-to-right into rows of uniform height,
// targeting a roughly square die. Coordinates are DEF database units.
func rowPlacement(c *netlist.Circuit, lib *cellib.Library) (pos [][2]int, dieW, dieH int) {
	rowHmm := 2 * cellib.TileH // all library cells are ≤ 2 tiles tall
	total := c.TotalArea()
	// Target row width in mm for a square-ish die; at least one widest cell.
	targetW := math.Sqrt(total * 1.15)
	minW := 3 * cellib.TileW
	if targetW < minW {
		targetW = minW
	}
	pos = make([][2]int, c.NumGates())
	x, y := 0.0, 0.0
	maxX := 0.0
	for i, g := range c.Gates {
		wmm := cellib.TileW
		if cell, ok := lib.ByName(g.Cell); ok {
			wmm = cell.Width()
		}
		if x+wmm > targetW && x > 0 {
			x = 0
			y += rowHmm
		}
		// mm → µm → dbu (DBU database units per micron).
		pos[i] = [2]int{int(x * 1000 * DBU), int(y * 1000 * DBU)}
		x += wmm
		if x > maxX {
			maxX = x
		}
	}
	dieW = int((maxX + cellib.TileW) * 1000 * DBU)
	dieH = int((y + rowHmm + cellib.TileH) * 1000 * DBU)
	return pos, dieW, dieH
}

// Design is a parsed DEF file.
type Design struct {
	Name       string
	DBU        int
	DieW, DieH int // dbu
	Components []Component
	Nets       []Net
}

// Component is one placed instance.
type Component struct {
	Name string
	Cell string
	X, Y int // dbu; 0,0 when unplaced
}

// Net is one parsed net: the first connection is the driver.
type Net struct {
	Name  string
	Conns []Conn
}

// Conn is one (component, pin) connection.
type Conn struct {
	Comp string
	Pin  string
}

// Parse reads a DEF design (the subset written by Write; unknown sections
// and statements are skipped).
func Parse(r io.Reader) (*Design, error) {
	tz := tok.New(r)
	d := &Design{DBU: DBU}
	for {
		t, ok := tz.Next()
		if !ok {
			break
		}
		switch strings.ToUpper(t) {
		case "DESIGN":
			name, ok := tz.Next()
			if !ok {
				return nil, fmt.Errorf("def: EOF after DESIGN")
			}
			d.Name = name
			tz.SkipStatement()
		case "UNITS":
			// UNITS DISTANCE MICRONS <dbu> ;
			var nums []int
			for {
				t2, ok := tz.Next()
				if !ok || t2 == ";" {
					break
				}
				if n, err := strconv.Atoi(t2); err == nil {
					nums = append(nums, n)
				}
			}
			if len(nums) == 1 {
				d.DBU = nums[0]
			}
		case "DIEAREA":
			// DIEAREA ( x0 y0 ) ( x1 y1 ) ;
			var nums []int
			for {
				t2, ok := tz.Next()
				if !ok || t2 == ";" {
					break
				}
				if n, err := strconv.Atoi(t2); err == nil {
					nums = append(nums, n)
				}
			}
			if len(nums) >= 4 {
				d.DieW = nums[2] - nums[0]
				d.DieH = nums[3] - nums[1]
			}
		case "COMPONENTS":
			if err := parseComponents(tz, d); err != nil {
				return nil, err
			}
		case "NETS":
			if err := parseNets(tz, d); err != nil {
				return nil, err
			}
		case "END":
			tz.Next() // DESIGN or section name; ignore
		default:
			// VERSION, DIVIDERCHAR, etc.
			tz.SkipStatement()
		}
	}
	if d.Name == "" {
		return nil, fmt.Errorf("def: no DESIGN statement found")
	}
	return d, nil
}

func parseComponents(tz *tok.Tokenizer, d *Design) error {
	// COMPONENTS <n> ; - name cell [+ PLACED ( x y ) orient] ; ... END COMPONENTS
	declared := -1
	if t, ok := tz.Next(); ok {
		if n, err := strconv.Atoi(t); err == nil {
			declared = n
		}
	}
	tz.SkipStatement()
	for {
		t, ok := tz.Next()
		if !ok {
			return fmt.Errorf("def: EOF inside COMPONENTS")
		}
		if strings.EqualFold(t, "END") {
			tz.Next() // COMPONENTS
			break
		}
		if t != "-" {
			return fmt.Errorf("def: expected '-' in COMPONENTS, got %q", t)
		}
		name, ok1 := tz.Next()
		cell, ok2 := tz.Next()
		if !ok1 || !ok2 {
			return fmt.Errorf("def: truncated component")
		}
		comp := Component{Name: name, Cell: cell}
		// Scan the rest of the statement for PLACED coordinates.
		var nums []int
		for {
			t2, ok := tz.Next()
			if !ok {
				return fmt.Errorf("def: EOF in component %s", name)
			}
			if t2 == ";" {
				break
			}
			if n, err := strconv.Atoi(t2); err == nil {
				nums = append(nums, n)
			}
		}
		if len(nums) >= 2 {
			comp.X, comp.Y = nums[0], nums[1]
		}
		d.Components = append(d.Components, comp)
	}
	if declared >= 0 && declared != len(d.Components) {
		return fmt.Errorf("def: COMPONENTS declares %d, found %d", declared, len(d.Components))
	}
	return nil
}

func parseNets(tz *tok.Tokenizer, d *Design) error {
	declared := -1
	if t, ok := tz.Next(); ok {
		if n, err := strconv.Atoi(t); err == nil {
			declared = n
		}
	}
	tz.SkipStatement()
	for {
		t, ok := tz.Next()
		if !ok {
			return fmt.Errorf("def: EOF inside NETS")
		}
		if strings.EqualFold(t, "END") {
			tz.Next() // NETS
			break
		}
		if t != "-" {
			return fmt.Errorf("def: expected '-' in NETS, got %q", t)
		}
		name, ok := tz.Next()
		if !ok {
			return fmt.Errorf("def: truncated net")
		}
		net := Net{Name: name}
		for {
			t2, ok := tz.Next()
			if !ok {
				return fmt.Errorf("def: EOF in net %s", name)
			}
			if t2 == ";" {
				break
			}
			if t2 != "(" {
				continue // skip properties like + USE SIGNAL
			}
			comp, ok1 := tz.Next()
			pin, ok2 := tz.Next()
			close1, ok3 := tz.Next()
			if !ok1 || !ok2 || !ok3 || close1 != ")" {
				return fmt.Errorf("def: malformed connection in net %s", name)
			}
			net.Conns = append(net.Conns, Conn{Comp: comp, Pin: pin})
		}
		d.Nets = append(d.Nets, net)
	}
	if declared >= 0 && declared != len(d.Nets) {
		return fmt.Errorf("def: NETS declares %d, found %d", declared, len(d.Nets))
	}
	return nil
}

// ToCircuit converts a parsed design into a netlist, resolving bias/area
// via the library. Components referencing cells absent from the library
// are an error.
func ToCircuit(d *Design, lib *cellib.Library) (*netlist.Circuit, error) {
	if lib == nil {
		lib = cellib.Default()
	}
	b := netlist.NewBuilder(d.Name, lib)
	ids := make(map[string]netlist.GateID, len(d.Components))
	for _, comp := range d.Components {
		cell, ok := lib.ByName(comp.Cell)
		if !ok {
			return nil, fmt.Errorf("def: component %s references unknown cell %s", comp.Name, comp.Cell)
		}
		id := b.AddGateRaw(comp.Name, cell.Name, cell.Bias, cell.Area())
		ids[comp.Name] = id
	}
	// Collect sink connections first so each sink's in-edges can be added
	// in input-pin order (pin names "i<k>"): cells with non-commutative
	// inputs (ANDN2T, MUX2T) keep their operand semantics through the
	// round trip.
	type conn struct {
		drv, sink netlist.GateID
		pin       int
		seq       int
	}
	var conns []conn
	seq := 0
	for _, net := range d.Nets {
		if len(net.Conns) < 2 {
			return nil, fmt.Errorf("def: net %s has %d connections (need ≥ 2)", net.Name, len(net.Conns))
		}
		drv, ok := ids[net.Conns[0].Comp]
		if !ok {
			return nil, fmt.Errorf("def: net %s driver %s is not a component", net.Name, net.Conns[0].Comp)
		}
		for _, c := range net.Conns[1:] {
			sink, ok := ids[c.Comp]
			if !ok {
				return nil, fmt.Errorf("def: net %s sink %s is not a component", net.Name, c.Comp)
			}
			pin := 1 << 30 // unknown pin names sort after numbered ones
			if n, err := fmt.Sscanf(c.Pin, "i%d", &pin); n == 1 && err == nil {
				// parsed
			}
			conns = append(conns, conn{drv: drv, sink: sink, pin: pin, seq: seq})
			seq++
		}
	}
	sort.SliceStable(conns, func(a, b int) bool {
		if conns[a].sink != conns[b].sink {
			return conns[a].sink < conns[b].sink
		}
		if conns[a].pin != conns[b].pin {
			return conns[a].pin < conns[b].pin
		}
		return conns[a].seq < conns[b].seq
	})
	for _, c := range conns {
		b.Connect(c.drv, c.sink)
	}
	return b.Build()
}

// SortedComponentNames returns the component names in sorted order (test
// helper for deterministic comparisons).
func (d *Design) SortedComponentNames() []string {
	names := make([]string, len(d.Components))
	for i, c := range d.Components {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}
