package def

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"gpp/internal/cellib"
	"gpp/internal/netlist"
)

// fixture builds a small mapped-style circuit with a splitter fanout.
func fixture(t *testing.T) *netlist.Circuit {
	t.Helper()
	lib := cellib.Default()
	b := netlist.NewBuilder("fix", lib)
	in := b.AddCell("in0", cellib.KindDCSFQ)
	sp := b.AddCell("sp0", cellib.KindSplit)
	f1 := b.AddCell("ff1", cellib.KindDFF)
	f2 := b.AddCell("ff2", cellib.KindDFF)
	o1 := b.AddCell("out1", cellib.KindSFQDC)
	o2 := b.AddCell("out2", cellib.KindSFQDC)
	b.Connect(in, sp)
	b.Connect(sp, f1)
	b.Connect(sp, f2)
	b.Connect(f1, o1)
	b.Connect(f2, o2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func edgeKey(c *netlist.Circuit) []string {
	keys := make([]string, 0, c.NumEdges())
	for _, e := range c.Edges {
		keys = append(keys, c.Gates[e.From].Name+">"+c.Gates[e.To].Name)
	}
	sort.Strings(keys)
	return keys
}

func TestRoundTrip(t *testing.T) {
	orig := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, orig, nil); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if d.Name != "fix" {
		t.Errorf("design name = %q", d.Name)
	}
	if d.DBU != DBU {
		t.Errorf("DBU = %d, want %d", d.DBU, DBU)
	}
	got, err := ToCircuit(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumGates() != orig.NumGates() || got.NumEdges() != orig.NumEdges() {
		t.Fatalf("round trip: %d/%d gates, %d/%d edges",
			got.NumGates(), orig.NumGates(), got.NumEdges(), orig.NumEdges())
	}
	a, b := edgeKey(orig), edgeKey(got)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("edge %d: %q vs %q", i, a[i], b[i])
		}
	}
	if got.TotalBias() != orig.TotalBias() || got.TotalArea() != orig.TotalArea() {
		t.Errorf("totals differ: bias %g/%g area %g/%g",
			got.TotalBias(), orig.TotalBias(), got.TotalArea(), orig.TotalArea())
	}
}

func TestWriterPlacementInsideDie(t *testing.T) {
	orig := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, orig, nil); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.DieW <= 0 || d.DieH <= 0 {
		t.Fatalf("die = %dx%d", d.DieW, d.DieH)
	}
	for _, comp := range d.Components {
		if comp.X < 0 || comp.X >= d.DieW || comp.Y < 0 || comp.Y >= d.DieH {
			t.Errorf("component %s placed at (%d,%d) outside die %dx%d",
				comp.Name, comp.X, comp.Y, d.DieW, d.DieH)
		}
	}
}

func TestWriterNetConvention(t *testing.T) {
	orig := fixture(t)
	var buf bytes.Buffer
	if err := Write(&buf, orig, nil); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The splitter's net must list the splitter first (driver), then both
	// sinks.
	for _, n := range d.Nets {
		if n.Name == "net_sp0" {
			if len(n.Conns) != 3 {
				t.Fatalf("net_sp0 has %d conns", len(n.Conns))
			}
			if n.Conns[0].Comp != "sp0" || n.Conns[0].Pin != "o0" {
				t.Errorf("driver = %+v", n.Conns[0])
			}
			return
		}
	}
	t.Error("net_sp0 not found")
}

func TestWriteRejectsInvalidCircuit(t *testing.T) {
	bad := &netlist.Circuit{Name: "", Gates: nil, Edges: nil}
	if err := Write(&bytes.Buffer{}, bad, nil); err == nil {
		t.Error("Write accepted an invalid circuit")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no design", "VERSION 5.8 ;\n", "no DESIGN"},
		{"eof after design", "DESIGN", "EOF after DESIGN"},
		{"component count mismatch", "DESIGN d ;\nCOMPONENTS 2 ;\n- a DFFT ;\nEND COMPONENTS\nEND DESIGN\n", "declares 2, found 1"},
		{"bad component lead", "DESIGN d ;\nCOMPONENTS 1 ;\nx a DFFT ;\nEND COMPONENTS\n", "expected '-'"},
		{"eof in components", "DESIGN d ;\nCOMPONENTS 1 ;\n- a DFFT ", "EOF"},
		{"net count mismatch", "DESIGN d ;\nNETS 5 ;\n- n ( a o0 ) ( b i0 ) ;\nEND NETS\nEND DESIGN\n", "declares 5, found 1"},
		{"bad net lead", "DESIGN d ;\nNETS 1 ;\nx n ;\nEND NETS\n", "expected '-'"},
		{"malformed conn", "DESIGN d ;\nNETS 1 ;\n- n ( a o0 ( b ;\nEND NETS\nEND DESIGN\n", "malformed connection"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestToCircuitErrors(t *testing.T) {
	t.Run("unknown cell", func(t *testing.T) {
		d := &Design{Name: "d", Components: []Component{{Name: "a", Cell: "NOSUCH"}}}
		if _, err := ToCircuit(d, nil); err == nil || !strings.Contains(err.Error(), "unknown cell") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("one-conn net", func(t *testing.T) {
		d := &Design{Name: "d",
			Components: []Component{{Name: "a", Cell: "DFFT"}},
			Nets:       []Net{{Name: "n", Conns: []Conn{{Comp: "a", Pin: "o0"}}}},
		}
		if _, err := ToCircuit(d, nil); err == nil || !strings.Contains(err.Error(), "need ≥ 2") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("unknown driver", func(t *testing.T) {
		d := &Design{Name: "d",
			Components: []Component{{Name: "a", Cell: "DFFT"}},
			Nets:       []Net{{Name: "n", Conns: []Conn{{Comp: "ghost", Pin: "o0"}, {Comp: "a", Pin: "i0"}}}},
		}
		if _, err := ToCircuit(d, nil); err == nil || !strings.Contains(err.Error(), "driver") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("unknown sink", func(t *testing.T) {
		d := &Design{Name: "d",
			Components: []Component{{Name: "a", Cell: "DFFT"}},
			Nets:       []Net{{Name: "n", Conns: []Conn{{Comp: "a", Pin: "o0"}, {Comp: "ghost", Pin: "i0"}}}},
		}
		if _, err := ToCircuit(d, nil); err == nil || !strings.Contains(err.Error(), "sink") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestParseToleratesForeignStatements(t *testing.T) {
	src := `
VERSION 5.8 ;
DIVIDERCHAR "/" ;
DESIGN top ;
TECHNOLOGY tech ;
UNITS DISTANCE MICRONS 2000 ;
ROW row0 CORE 0 0 N DO 10 BY 1 STEP 100 0 ;
COMPONENTS 2 ;
- u1 DFFT + PLACED ( 100 200 ) N ;
- u2 SFQDC ;
END COMPONENTS
NETS 1 ;
- n1 ( u1 o0 ) ( u2 i0 ) + USE SIGNAL ;
END NETS
END DESIGN
`
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.DBU != 2000 {
		t.Errorf("DBU = %d", d.DBU)
	}
	if len(d.Components) != 2 || d.Components[0].X != 100 || d.Components[0].Y != 200 {
		t.Errorf("components = %+v", d.Components)
	}
	if len(d.Nets) != 1 || len(d.Nets[0].Conns) != 2 {
		t.Errorf("nets = %+v", d.Nets)
	}
	c, err := ToCircuit(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 2 || c.NumEdges() != 1 {
		t.Errorf("circuit = %d gates %d edges", c.NumGates(), c.NumEdges())
	}
}

func TestSortedComponentNames(t *testing.T) {
	d := &Design{Components: []Component{{Name: "z"}, {Name: "a"}, {Name: "m"}}}
	got := d.SortedComponentNames()
	if got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Errorf("sorted = %v", got)
	}
}
