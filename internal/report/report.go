// Package report renders experiment results as paper-style ASCII tables,
// CSV, or Markdown.
package report

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Table is a simple rectangular table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; it must have exactly one cell per column.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow appends a row, panicking on arity mismatch (for fixed-shape
// experiment code where a mismatch is a bug).
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintln(bw, t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(bw)
	}
	line(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(bw, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
	return bw.Flush()
}

// WriteCSV renders the table as CSV (RFC-4180 quoting for cells containing
// commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(bw, ",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				fmt.Fprintf(bw, "\"%s\"", strings.ReplaceAll(cell, `"`, `""`))
			} else {
				fmt.Fprint(bw, cell)
			}
		}
		fmt.Fprintln(bw)
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return bw.Flush()
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintf(bw, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(bw, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(bw, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(bw, "| %s |\n", strings.Join(row, " | "))
	}
	return bw.Flush()
}

// F formats a float with the given number of decimals (helper for
// experiment code).
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
