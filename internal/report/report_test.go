package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Sample",
		Columns: []string{"Name", "Value"},
	}
	t.MustAddRow("alpha", "1")
	t.MustAddRow("beta", "22")
	return t
}

func TestWriteTextAlignment(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows → 5? title+header+rule+2
		if len(lines) != 5 {
			t.Fatalf("got %d lines:\n%s", len(lines), out)
		}
	}
	if !strings.HasPrefix(lines[0], "Sample") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Errorf("missing cells:\n%s", out)
	}
	// Columns aligned: "Name " padded to width of "alpha".
	headerIdx := strings.Index(lines[1], "Value")
	rowIdx := strings.Index(lines[3], "1")
	if headerIdx != rowIdx {
		t.Errorf("column start misaligned: header %d vs row %d\n%s", headerIdx, rowIdx, out)
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.MustAddRow("plain", `quote " and, comma`)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"quote \"\" and, comma\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| Name | Value |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Errorf("markdown separator missing:\n%s", out)
	}
	if !strings.Contains(out, "| alpha | 1 |") {
		t.Errorf("markdown row missing:\n%s", out)
	}
}

func TestAddRowArity(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	if err := tab.AddRow("only one"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tab.AddRow("1", "2"); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
}

func TestMustAddRowPanics(t *testing.T) {
	tab := &Table{Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow did not panic")
		}
	}()
	tab.MustAddRow("1", "2")
}

func TestFormatters(t *testing.T) {
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(65.04); got != "65.0%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string              `json:"title"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Title != "Sample" || len(doc.Columns) != 2 || len(doc.Rows) != 2 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.Rows[0]["Name"] != "alpha" || doc.Rows[1]["Value"] != "22" {
		t.Errorf("rows = %v", doc.Rows)
	}
}

func TestWriteJSONRowArity(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.Rows = append(tab.Rows, []string{"only one"})
	if err := tab.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("arity mismatch accepted")
	}
}
