package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON renders the table as a JSON array of objects keyed by column
// name — the machine-readable form for downstream tooling (plotting,
// regression tracking).
func (t *Table) WriteJSON(w io.Writer) error {
	rows := make([]map[string]string, 0, len(t.Rows))
	for i, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("report: row %d has %d cells for %d columns", i, len(row), len(t.Columns))
		}
		obj := make(map[string]string, len(row))
		for j, cell := range row {
			obj[t.Columns[j]] = cell
		}
		rows = append(rows, obj)
	}
	doc := struct {
		Title   string              `json:"title,omitempty"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}{Title: t.Title, Columns: t.Columns, Rows: rows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
