// Package graph provides the small set of graph utilities the benchmark
// generators and baseline partitioners need: undirected connectivity,
// BFS distances, and seeded random DAG construction.
//
// Vertices are dense ints 0..N-1; edges are directed (from, to) pairs.
// The package is deliberately free of netlist-specific types so it can be
// tested in isolation.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Edge is a directed edge.
type Edge struct {
	From, To int
}

// Undirected builds undirected adjacency lists for n vertices.
func Undirected(n int, edges []Edge) [][]int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	return adj
}

// Components labels each vertex with its undirected connected component
// (0-based, in order of first discovery) and returns the component count.
func Components(n int, edges []Edge) (label []int, count int) {
	adj := Undirected(n, edges)
	label = make([]int, n)
	for i := range label {
		label[i] = -1
	}
	var stack []int
	for v := 0; v < n; v++ {
		if label[v] >= 0 {
			continue
		}
		label[v] = count
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[u] {
				if label[w] < 0 {
					label[w] = count
					stack = append(stack, w)
				}
			}
		}
		count++
	}
	return label, count
}

// BFSDist returns the undirected BFS distance from src to every vertex
// (-1 for unreachable vertices).
func BFSDist(n int, edges []Edge, src int) []int {
	adj := Undirected(n, edges)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range adj[u] {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// IsDAG reports whether the directed edge set is acyclic over n vertices.
func IsDAG(n int, edges []Edge) bool {
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, e := range edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	queue := make([]int, 0, n)
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		seen++
		for _, w := range succ[u] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return seen == n
}

// DegreeHistogram returns out-degree counts: hist[d] = number of vertices
// with out-degree d.
func DegreeHistogram(n int, edges []Edge) map[int]int {
	out := make([]int, n)
	for _, e := range edges {
		out[e.From]++
	}
	hist := make(map[int]int)
	for _, d := range out {
		hist[d]++
	}
	return hist
}

// RandomDAGConfig controls RandomLayeredDAG.
type RandomDAGConfig struct {
	Vertices  int     // total vertex count
	Layers    int     // number of topological layers (≥ 2)
	EdgeRatio float64 // target |E| / |V|
	Locality  float64 // probability an edge targets the next layer (vs any later layer), in [0,1]
	Seed      int64
}

// RandomLayeredDAG builds a connected, layered random DAG that mimics the
// structure of technology-mapped logic: vertices are spread over layers,
// every non-first-layer vertex has at least one predecessor in an earlier
// layer, and additional edges are added (mostly layer-local) until the target
// edge ratio is met. The result is deterministic for a given config.
func RandomLayeredDAG(cfg RandomDAGConfig) ([]Edge, error) {
	if cfg.Vertices < 2 {
		return nil, fmt.Errorf("graph: need ≥2 vertices, got %d", cfg.Vertices)
	}
	if cfg.Layers < 2 {
		return nil, fmt.Errorf("graph: need ≥2 layers, got %d", cfg.Layers)
	}
	if cfg.Layers > cfg.Vertices {
		return nil, fmt.Errorf("graph: layers %d > vertices %d", cfg.Layers, cfg.Vertices)
	}
	if cfg.EdgeRatio <= 0 {
		return nil, fmt.Errorf("graph: edge ratio must be positive, got %g", cfg.EdgeRatio)
	}
	if cfg.Locality < 0 || cfg.Locality > 1 {
		return nil, fmt.Errorf("graph: locality must be in [0,1], got %g", cfg.Locality)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Assign vertices to layers: each layer gets at least one vertex, the
	// remainder is spread randomly.
	layerOf := make([]int, cfg.Vertices)
	for v := 0; v < cfg.Layers; v++ {
		layerOf[v] = v
	}
	for v := cfg.Layers; v < cfg.Vertices; v++ {
		layerOf[v] = rng.Intn(cfg.Layers)
	}
	// Renumber so vertex order follows layer order (keeps edges forward).
	order := make([]int, cfg.Vertices)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return layerOf[order[a]] < layerOf[order[b]] })
	layers := make([][]int, cfg.Layers)
	newLayer := make([]int, cfg.Vertices)
	for newID, oldID := range order {
		l := layerOf[oldID]
		layers[l] = append(layers[l], newID)
		newLayer[newID] = l
	}

	var edges []Edge
	// Backbone: every vertex beyond layer 0 gets one predecessor from the
	// previous non-empty layer, guaranteeing connectivity and acyclicity.
	for l := 1; l < cfg.Layers; l++ {
		prev := layers[l-1]
		for _, v := range layers[l] {
			p := prev[rng.Intn(len(prev))]
			edges = append(edges, Edge{From: p, To: v})
		}
	}
	target := int(cfg.EdgeRatio * float64(cfg.Vertices))
	if target < len(edges) {
		target = len(edges)
	}
	for len(edges) < target {
		// Pick a source in a layer that has at least one later layer.
		l := rng.Intn(cfg.Layers - 1)
		if len(layers[l]) == 0 {
			continue
		}
		src := layers[l][rng.Intn(len(layers[l]))]
		dstLayer := l + 1
		if rng.Float64() > cfg.Locality {
			dstLayer = l + 1 + rng.Intn(cfg.Layers-l-1)
		}
		if len(layers[dstLayer]) == 0 {
			continue
		}
		dst := layers[dstLayer][rng.Intn(len(layers[dstLayer]))]
		edges = append(edges, Edge{From: src, To: dst})
	}
	_ = newLayer
	return edges, nil
}
