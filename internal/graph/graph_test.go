package graph

import (
	"testing"
	"testing/quick"
)

func TestComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4}; vertex 5 isolated.
	edges := []Edge{{0, 1}, {1, 2}, {3, 4}}
	label, count := Components(6, edges)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Errorf("vertices 0,1,2 not in one component: %v", label)
	}
	if label[3] != label[4] || label[3] == label[0] {
		t.Errorf("vertices 3,4 mislabeled: %v", label)
	}
	if label[5] == label[0] || label[5] == label[3] {
		t.Errorf("vertex 5 not isolated: %v", label)
	}
}

func TestComponentsEmpty(t *testing.T) {
	label, count := Components(0, nil)
	if count != 0 || len(label) != 0 {
		t.Errorf("empty graph: count=%d label=%v", count, label)
	}
}

func TestBFSDist(t *testing.T) {
	// Path 0-1-2-3 with a chord 0-2; vertex 4 unreachable.
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 2}}
	dist := BFSDist(5, edges, 0)
	want := []int{0, 1, 1, 2, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestIsDAG(t *testing.T) {
	if !IsDAG(3, []Edge{{0, 1}, {1, 2}, {0, 2}}) {
		t.Error("acyclic graph reported cyclic")
	}
	if IsDAG(3, []Edge{{0, 1}, {1, 2}, {2, 0}}) {
		t.Error("cycle not detected")
	}
	if !IsDAG(2, nil) {
		t.Error("edgeless graph should be a DAG")
	}
}

func TestDegreeHistogram(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}}
	hist := DegreeHistogram(4, edges)
	if hist[2] != 1 || hist[1] != 1 || hist[0] != 2 {
		t.Errorf("hist = %v", hist)
	}
}

func TestRandomLayeredDAGInvariants(t *testing.T) {
	cfg := RandomDAGConfig{Vertices: 200, Layers: 10, EdgeRatio: 1.3, Locality: 0.8, Seed: 7}
	edges, err := RandomLayeredDAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDAG(cfg.Vertices, edges) {
		t.Error("generated graph is cyclic")
	}
	if len(edges) < int(cfg.EdgeRatio*float64(cfg.Vertices)) {
		t.Errorf("only %d edges for target ratio %.2f", len(edges), cfg.EdgeRatio)
	}
	// Every vertex that is not a source must have an in-edge (the backbone
	// guarantees a predecessor in an earlier layer), so the number of weak
	// components is bounded by the number of sources.
	indeg := make([]int, cfg.Vertices)
	for _, e := range edges {
		if e.From < 0 || e.From >= cfg.Vertices || e.To < 0 || e.To >= cfg.Vertices {
			t.Fatalf("edge %v out of range", e)
		}
		indeg[e.To]++
	}
	sources := 0
	for _, d := range indeg {
		if d == 0 {
			sources++
		}
	}
	_, count := Components(cfg.Vertices, edges)
	if count > sources {
		t.Errorf("graph has %d components but only %d sources", count, sources)
	}
}

func TestRandomLayeredDAGDeterministic(t *testing.T) {
	cfg := RandomDAGConfig{Vertices: 60, Layers: 6, EdgeRatio: 1.2, Locality: 0.7, Seed: 42}
	a, err := RandomLayeredDAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomLayeredDAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRandomLayeredDAGErrors(t *testing.T) {
	cases := []RandomDAGConfig{
		{Vertices: 1, Layers: 2, EdgeRatio: 1},
		{Vertices: 10, Layers: 1, EdgeRatio: 1},
		{Vertices: 5, Layers: 9, EdgeRatio: 1},
		{Vertices: 10, Layers: 2, EdgeRatio: 0},
		{Vertices: 10, Layers: 2, EdgeRatio: 1, Locality: 1.5},
	}
	for i, cfg := range cases {
		if _, err := RandomLayeredDAG(cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
}

// Property: random layered DAGs are always acyclic, whatever the seed and
// (valid) shape.
func TestRandomLayeredDAGAlwaysAcyclic(t *testing.T) {
	f := func(seed int64, vRaw, lRaw uint8) bool {
		v := int(vRaw%150) + 10
		l := int(lRaw%8) + 2
		if l > v {
			l = v
		}
		edges, err := RandomLayeredDAG(RandomDAGConfig{
			Vertices: v, Layers: l, EdgeRatio: 1.25, Locality: 0.75, Seed: seed,
		})
		if err != nil {
			return false
		}
		return IsDAG(v, edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
