package svg

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/partition"
	"gpp/internal/place"
	"gpp/internal/recycle"
)

func fixtures(t *testing.T) (*place.Placement, *recycle.Plan) {
	t.Helper()
	c, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 600})
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.Build(c, 4, res.Labels, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := recycle.BuildPlan(c, p, res.Labels, recycle.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return layout, plan
}

// wellFormed parses the output as XML — catches unescaped characters and
// tag mismatches.
func wellFormed(t *testing.T, data []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
}

func TestWriteLayout(t *testing.T) {
	layout, _ := fixtures(t)
	var buf bytes.Buffer
	if err := WriteLayout(&buf, layout); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, buf.Bytes())
	// One band rect + one cell rect each, plus slot ticks.
	if n := strings.Count(out, "<rect"); n < len(layout.Bands)+len(layout.Cells) {
		t.Errorf("%d rects for %d bands + %d cells", n, len(layout.Bands), len(layout.Cells))
	}
	if n := strings.Count(out, "<line"); n != len(layout.Slots) {
		t.Errorf("%d slot ticks for %d slots", n, len(layout.Slots))
	}
	for k := 1; k <= 4; k++ {
		if !strings.Contains(out, "GP"+string(rune('0'+k))) {
			t.Errorf("plane label GP%d missing", k)
		}
	}
}

func TestWriteStack(t *testing.T) {
	_, plan := fixtures(t)
	var buf bytes.Buffer
	if err := WriteStack(&buf, plan); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, buf.Bytes())
	if !strings.Contains(out, "supply") || !strings.Contains(out, "ground return") {
		t.Error("stack annotations missing")
	}
	// Two rects per plane (frame + fill bar).
	if n := strings.Count(out, "<rect"); n < 2*plan.K {
		t.Errorf("%d rects for %d planes", n, plan.K)
	}
	// K−1 inter-plane arrows.
	if n := strings.Count(out, "marker-end"); n != plan.K-1 {
		t.Errorf("%d arrows for %d planes", n, plan.K)
	}
}

func TestEmptyInputsRejected(t *testing.T) {
	if err := WriteLayout(&bytes.Buffer{}, &place.Placement{}); err == nil {
		t.Error("empty placement accepted")
	}
	if err := WriteStack(&bytes.Buffer{}, &recycle.Plan{}); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestPlaneColorsCycle(t *testing.T) {
	if planeColor(0) == planeColor(1) {
		t.Error("adjacent planes share a color")
	}
	if planeColor(3) != planeColor(3+len(planePalette)) {
		t.Error("palette does not cycle")
	}
}
