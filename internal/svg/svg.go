// Package svg renders ground-plane partitioning artifacts as standalone
// SVG documents: the plane-banded chip layout (cells colored by plane,
// coupler slots on band boundaries) and the serial bias stack of the
// paper's Fig. 1. Pure string generation on the standard library; the
// output opens in any browser and embeds in documentation.
package svg

import (
	"bufio"
	"fmt"
	"io"

	"gpp/internal/place"
	"gpp/internal/recycle"
)

// planePalette cycles for arbitrary K; the first entries are chosen for
// adjacent-contrast (neighboring bands always differ clearly).
var planePalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
	"#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
}

func planeColor(k int) string { return planePalette[k%len(planePalette)] }

// WriteLayout renders a plane-banded placement: one horizontal band per
// ground plane, placed cells as rectangles in the plane's color, coupler
// slots as ticks on the boundaries.
func WriteLayout(w io.Writer, p *place.Placement) error {
	if len(p.Bands) == 0 {
		return fmt.Errorf("svg: placement has no bands")
	}
	const scale = 220 // px per mm
	const margin = 24
	width := p.DieW*scale + 2*margin
	height := p.DieH*scale + 2*margin
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	// Y flips so plane 1 is drawn at the top (the supply side in Fig. 1).
	flipY := func(y float64) float64 { return margin + (p.DieH-y)*scale }

	for _, b := range p.Bands {
		yTop := flipY(b.Y1)
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.10" stroke="#888" stroke-width="0.5"/>`+"\n",
			float64(margin), yTop, p.DieW*scale, (b.Y1-b.Y0)*scale, planeColor(b.Plane))
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif" fill="#444">GP%d (util %.0f%%)</text>`+"\n",
			float64(margin)+4, yTop+13, b.Plane+1, b.Util*100)
	}
	for _, cp := range p.Cells {
		fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.8"/>`+"\n",
			margin+cp.X*scale, flipY(cp.Y+cp.H), cp.W*scale, cp.H*scale, planeColor(cp.Plane))
	}
	for _, s := range p.Slots {
		y := flipY(p.Bands[s.Boundary].Y1)
		fmt.Fprintf(bw, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#222" stroke-width="1.2"/>`+"\n",
			margin+s.X*scale, y-3, margin+s.X*scale, y+3)
	}
	fmt.Fprintf(bw, "</svg>\n")
	return bw.Flush()
}

// WriteStack renders the serial bias stack of a recycling plan (the
// paper's Fig. 1): one box per plane with its current budget, the supply
// entering the top plane and the ground return leaving the bottom.
func WriteStack(w io.Writer, plan *recycle.Plan) error {
	if plan.K == 0 {
		return fmt.Errorf("svg: plan has no planes")
	}
	const boxW, boxH, gap, margin = 360, 46, 18, 30
	width := boxW + 2*margin + 140
	height := plan.K*(boxH+gap) + 2*margin + 20
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(bw, `<text x="%d" y="%d" font-size="12" font-family="sans-serif">supply %.1f mA ↓ (stack %.1f mV)</text>`+"\n",
		margin, margin-8, plan.SupplyCurrent, plan.StackVoltage()*1000)
	for i, ps := range plan.Planes {
		y := margin + i*(boxH+gap)
		frac := 0.0
		if plan.SupplyCurrent > 0 {
			frac = ps.Bias / plan.SupplyCurrent
		}
		fmt.Fprintf(bw, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.15" stroke="#555"/>`+"\n",
			margin, y, boxW, boxH, planeColor(ps.Plane))
		fmt.Fprintf(bw, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="0.75"/>`+"\n",
			margin, y, float64(boxW)*frac, boxH, planeColor(ps.Plane))
		fmt.Fprintf(bw, `<text x="%d" y="%d" font-size="11" font-family="sans-serif" fill="#222">GP%d: logic %.1f + couplers %.1f + dummy %.1f mA</text>`+"\n",
			margin+6, y+boxH/2+4, ps.Plane+1, ps.Bias, ps.OverheadBias, ps.DummyBias)
		if i < plan.K-1 {
			midX := margin + boxW/2
			fmt.Fprintf(bw, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333" stroke-width="1.5" marker-end="url(#arr)"/>`+"\n",
				midX, y+boxH, midX, y+boxH+gap)
		}
	}
	fmt.Fprintf(bw, `<defs><marker id="arr" markerWidth="8" markerHeight="8" refX="4" refY="4" orient="auto"><path d="M0,0 L8,4 L0,8 z" fill="#333"/></marker></defs>`+"\n")
	fmt.Fprintf(bw, `<text x="%d" y="%d" font-size="12" font-family="sans-serif">↓ ground return</text>`+"\n",
		margin, margin+plan.K*(boxH+gap)+8)
	fmt.Fprintf(bw, "</svg>\n")
	return bw.Flush()
}
