package verilog

import (
	"bytes"
	"strings"
	"testing"

	"gpp/internal/cellib"
	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
)

func small(t *testing.T) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("tiny", cellib.Default())
	in := b.AddCell("in0", cellib.KindDCSFQ)
	clk := b.AddCell("clk0", cellib.KindDCSFQ)
	ff := b.AddCell("ff0", cellib.KindDFF)
	o := b.AddCell("out0", cellib.KindSFQDC)
	b.Connect(in, ff)
	b.Connect(clk, ff) // DFF data + clk
	b.Connect(ff, o)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func render(t *testing.T, c *netlist.Circuit, opts Options) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, c, opts); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWriteBasicStructure(t *testing.T) {
	src := render(t, small(t), Options{})
	for _, want := range []string{
		"module tiny (",
		"endmodule",
		"input pi_in0;",
		"input pi_clk0;",
		"output po_out0;",
		"wire net_ff0;",
		"DFFT u_ff0 (",
		"SFQDC u_out0 (.i0(net_ff0), .o0(po_out0));",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in output:\n%s", want, src)
		}
	}
}

func TestWriteClockPinNamed(t *testing.T) {
	src := render(t, small(t), Options{})
	// The DFF's second input is the clock pin: .clk(net_clk0).
	if !strings.Contains(src, ".clk(net_clk0)") {
		t.Errorf("clock pin not named:\n%s", src)
	}
}

func TestWritePlaneAttributes(t *testing.T) {
	c := small(t)
	src := render(t, c, Options{Labels: []int{0, 0, 1, 2}})
	if !strings.Contains(src, "(* ground_plane = 2 *)") {
		t.Errorf("plane attribute missing:\n%s", src)
	}
	if strings.Count(src, "(* ground_plane") != c.NumGates() {
		t.Errorf("expected one attribute per instance:\n%s", src)
	}
}

func TestWriteLabelsLengthChecked(t *testing.T) {
	if err := Write(&bytes.Buffer{}, small(t), Options{Labels: []int{0}}); err == nil {
		t.Error("short labels accepted")
	}
}

func TestWriteRejectsInvalidCircuit(t *testing.T) {
	if err := Write(&bytes.Buffer{}, &netlist.Circuit{}, Options{}); err == nil {
		t.Error("invalid circuit accepted")
	}
}

func TestEscapeIdentifiers(t *testing.T) {
	if escape("ok_name$1") != "ok_name$1" {
		t.Error("legal identifier escaped")
	}
	got := escape("weird.name[3]")
	if !strings.HasPrefix(got, `\`) || !strings.HasSuffix(got, " ") {
		t.Errorf("escaped identifier malformed: %q", got)
	}
}

func TestWriteWholeBenchmarkParsesAsBalancedText(t *testing.T) {
	// Not a Verilog parser, but strong structural checks on real output:
	// one instantiation per gate, one wire per driver, balanced
	// parentheses, module/endmodule bracketing.
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	src := render(t, c, Options{Labels: res.Labels})
	if strings.Count(src, "module ") != 1 || strings.Count(src, "endmodule") != 1 {
		t.Error("module bracketing wrong")
	}
	if n := strings.Count(src, "\n  (* ground_plane"); n != c.NumGates() {
		t.Errorf("%d plane attributes for %d gates", n, c.NumGates())
	}
	if strings.Count(src, "(") != strings.Count(src, ")") {
		t.Error("unbalanced parentheses")
	}
	_, out := c.Degrees()
	wires := 0
	for i := range c.Gates {
		if out[i] > 0 {
			wires++
		}
	}
	if n := strings.Count(src, "  wire "); n != wires {
		t.Errorf("%d wires for %d drivers", n, wires)
	}
}
