package lef

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gpp/internal/cellib"
)

func TestRoundTrip(t *testing.T) {
	lib := cellib.Default()
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	macros, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(macros) != lib.Len() {
		t.Fatalf("parsed %d macros, library has %d cells", len(macros), lib.Len())
	}
	for _, c := range lib.Cells() {
		m, ok := macros[c.Name]
		if !ok {
			t.Errorf("macro %s missing", c.Name)
			continue
		}
		if math.Abs(m.Bias-c.Bias) > 1e-9 {
			t.Errorf("%s: bias %g, want %g", c.Name, m.Bias, c.Bias)
		}
		if math.Abs(m.Area()-c.Area()) > 1e-9 {
			t.Errorf("%s: area %g, want %g", c.Name, m.Area(), c.Area())
		}
		if m.JJs != c.JJs {
			t.Errorf("%s: JJs %d, want %d", c.Name, m.JJs, c.JJs)
		}
		if m.Clocked != c.Clocked {
			t.Errorf("%s: clocked %v, want %v", c.Name, m.Clocked, c.Clocked)
		}
		if len(m.OutPins) != c.Outputs {
			t.Errorf("%s: %d output pins, want %d", c.Name, len(m.OutPins), c.Outputs)
		}
		wantIns := c.Inputs
		if c.Clocked {
			wantIns++ // clk pin
		}
		if len(m.InPins) != wantIns {
			t.Errorf("%s: %d input pins, want %d", c.Name, len(m.InPins), wantIns)
		}
	}
}

func TestRoundTripToLibrary(t *testing.T) {
	lib := cellib.Default()
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	macros, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lib2, err := ToLibrary("roundtrip", macros)
	if err != nil {
		t.Fatal(err)
	}
	if lib2.Len() != lib.Len() {
		t.Fatalf("library sizes differ: %d vs %d", lib2.Len(), lib.Len())
	}
	for _, want := range lib.Cells() {
		got, ok := lib2.ByName(want.Name)
		if !ok {
			t.Errorf("cell %s missing after round trip", want.Name)
			continue
		}
		if got.Bias != want.Bias || got.TilesW != want.TilesW || got.TilesH != want.TilesH ||
			got.Inputs != want.Inputs || got.Outputs != want.Outputs ||
			got.Clocked != want.Clocked || got.JJs != want.JJs || got.Kind != want.Kind ||
			got.DelayPS != want.DelayPS {
			t.Errorf("cell %s differs: got %+v, want %+v", want.Name, got, want)
		}
	}
}

func TestParseUnknownStatementsSkipped(t *testing.T) {
	src := `
VERSION 5.8 ;
MANUFACTURINGGRID 0.005 ;
MACRO FOO
  CLASS CORE ;
  FOREIGN FOO 0 0 ;
  SIZE 80.000 BY 40.000 ;
  PROPERTY biasCurrent 0.5000 ;
  SYMMETRY X Y ;
  PIN a
    DIRECTION INPUT ;
    USE SIGNAL ;
  END a
  PIN q
    DIRECTION OUTPUT ;
  END q
END FOO
END LIBRARY
`
	macros, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := macros["FOO"]
	if !ok {
		t.Fatal("FOO not parsed")
	}
	if m.WidthUm != 80 || m.HeightUm != 40 {
		t.Errorf("size = %gx%g", m.WidthUm, m.HeightUm)
	}
	if m.Bias != 0.5 {
		t.Errorf("bias = %g", m.Bias)
	}
	if len(m.InPins) != 1 || len(m.OutPins) != 1 {
		t.Errorf("pins = %v / %v", m.InPins, m.OutPins)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no macros", "VERSION 5.8 ;\nEND LIBRARY\n", "no MACRO"},
		{"eof in macro", "MACRO X\n SIZE 1 BY 1 ;\n", "EOF inside MACRO"},
		{"bad size", "MACRO X\n SIZE a BY b ;\nEND X\n", "bad SIZE"},
		{"size missing BY", "MACRO X\n SIZE 1 2 ;\nEND X\n", "malformed SIZE"},
		{"bad bias", "MACRO X\n PROPERTY biasCurrent oops ;\nEND X\n", "bad biasCurrent"},
		{"bad jj", "MACRO X\n PROPERTY jjCount oops ;\nEND X\n", "bad jjCount"},
		{"bad delay", "MACRO X\n PROPERTY delayPS oops ;\nEND X\n", "bad delayPS"},
		{"mismatched end", "MACRO X\n SIZE 1 BY 1 ;\nEND Y\n", "END Y inside MACRO X"},
		{"eof after macro kw", "MACRO", "EOF after MACRO"},
		{"eof in propdefs", "PROPERTYDEFINITIONS\n MACRO biasCurrent REAL ;\n", "EOF inside PROPERTYDEFINITIONS"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestToLibraryUnknownMacroGetsSyntheticKind(t *testing.T) {
	macros := map[string]Macro{
		"CUSTOM1": {Name: "CUSTOM1", WidthUm: 40, HeightUm: 40, Bias: 0.3, InPins: []string{"a"}, OutPins: []string{"q"}},
		"CUSTOM2": {Name: "CUSTOM2", WidthUm: 80, HeightUm: 40, Bias: 0.7, InPins: []string{"a", "clk"}, OutPins: []string{"q"}, Clocked: true},
	}
	lib, err := ToLibrary("custom", macros)
	if err != nil {
		t.Fatal(err)
	}
	c1, ok := lib.ByName("CUSTOM1")
	if !ok {
		t.Fatal("CUSTOM1 missing")
	}
	c2, ok := lib.ByName("CUSTOM2")
	if !ok {
		t.Fatal("CUSTOM2 missing")
	}
	if c1.Kind == c2.Kind {
		t.Error("synthetic kinds must be distinct")
	}
	if c2.Inputs != 1 {
		t.Errorf("clk pin counted as data input: Inputs = %d", c2.Inputs)
	}
	if c1.TilesW != 1 || c2.TilesW != 2 {
		t.Errorf("tile rounding wrong: %d, %d", c1.TilesW, c2.TilesW)
	}
}
