// Package lef reads and writes the subset of the LEF (Library Exchange
// Format) needed to describe an SFQ cell library: MACRO blocks with SIZE
// geometry, PIN declarations, and a biasCurrent PROPERTY carrying the cell's
// bias requirement in mA (LEF itself has no bias concept; the property
// convention keeps the DEF/LEF pair self-contained, mirroring how the SFQ
// benchmark suite distributes cell data alongside the routed designs).
package lef

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gpp/internal/cellib"
	"gpp/internal/tok"
)

// Write emits the library as LEF. Geometry is written in microns.
func Write(w io.Writer, lib *cellib.Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n")
	fmt.Fprintf(bw, "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n\n")
	fmt.Fprintf(bw, "PROPERTYDEFINITIONS\n  MACRO biasCurrent REAL ;\n  MACRO jjCount INTEGER ;\n  MACRO clocked INTEGER ;\n  MACRO delayPS REAL ;\nEND PROPERTYDEFINITIONS\n\n")
	for _, c := range lib.Cells() {
		fmt.Fprintf(bw, "MACRO %s\n", c.Name)
		fmt.Fprintf(bw, "  CLASS CORE ;\n")
		fmt.Fprintf(bw, "  SIZE %.3f BY %.3f ;\n", c.Width()*1000, c.Height()*1000)
		fmt.Fprintf(bw, "  PROPERTY biasCurrent %.4f ;\n", c.Bias)
		fmt.Fprintf(bw, "  PROPERTY jjCount %d ;\n", c.JJs)
		fmt.Fprintf(bw, "  PROPERTY delayPS %.3f ;\n", c.DelayPS)
		clk := 0
		if c.Clocked {
			clk = 1
		}
		fmt.Fprintf(bw, "  PROPERTY clocked %d ;\n", clk)
		for i := 0; i < c.Inputs; i++ {
			fmt.Fprintf(bw, "  PIN i%d\n    DIRECTION INPUT ;\n  END i%d\n", i, i)
		}
		if c.Clocked {
			fmt.Fprintf(bw, "  PIN clk\n    DIRECTION INPUT ;\n  END clk\n")
		}
		for i := 0; i < c.Outputs; i++ {
			fmt.Fprintf(bw, "  PIN o%d\n    DIRECTION OUTPUT ;\n  END o%d\n", i, i)
		}
		fmt.Fprintf(bw, "END %s\n\n", c.Name)
	}
	fmt.Fprintf(bw, "END LIBRARY\n")
	return bw.Flush()
}

// Macro is one parsed LEF macro.
type Macro struct {
	Name     string
	WidthUm  float64 // microns
	HeightUm float64
	Bias     float64 // mA (from the biasCurrent property; 0 if absent)
	DelayPS  float64 // ps (from the delayPS property; 0 if absent)
	JJs      int
	Clocked  bool
	InPins   []string
	OutPins  []string
}

// Area returns the macro area in mm².
func (m Macro) Area() float64 { return m.WidthUm * m.HeightUm / 1e6 }

// Parse reads the LEF subset written by Write (and tolerates unknown
// statements by skipping to the next ';').
func Parse(r io.Reader) (map[string]Macro, error) {
	tz := tok.New(r)
	macros := make(map[string]Macro)
	for {
		t, ok := tz.Next()
		if !ok {
			break
		}
		// PROPERTYDEFINITIONS contains "MACRO <name> <type> ;" statements
		// that must not be mistaken for macro blocks.
		if strings.EqualFold(t, "PROPERTYDEFINITIONS") {
			for {
				t2, ok := tz.Next()
				if !ok {
					return nil, fmt.Errorf("lef: EOF inside PROPERTYDEFINITIONS")
				}
				if strings.EqualFold(t2, "END") {
					tz.Next() // PROPERTYDEFINITIONS
					break
				}
			}
			continue
		}
		if !strings.EqualFold(t, "MACRO") {
			continue
		}
		name, ok := tz.Next()
		if !ok {
			return nil, fmt.Errorf("lef: EOF after MACRO")
		}
		m := Macro{Name: name}
		if err := parseMacroBody(tz, &m); err != nil {
			return nil, err
		}
		macros[name] = m
	}
	if len(macros) == 0 {
		return nil, fmt.Errorf("lef: no MACRO blocks found")
	}
	return macros, nil
}

func parseMacroBody(tz *tok.Tokenizer, m *Macro) error {
	for {
		t, ok := tz.Next()
		if !ok {
			return fmt.Errorf("lef: EOF inside MACRO %s", m.Name)
		}
		switch strings.ToUpper(t) {
		case "END":
			nxt, _ := tz.Next() // macro name (or LIBRARY)
			if nxt != m.Name {
				return fmt.Errorf("lef: END %s inside MACRO %s", nxt, m.Name)
			}
			return nil
		case "SIZE":
			wStr, ok1 := tz.Next()
			by, ok2 := tz.Next()
			hStr, ok3 := tz.Next()
			if !ok1 || !ok2 || !ok3 || !strings.EqualFold(by, "BY") {
				return fmt.Errorf("lef: malformed SIZE in MACRO %s", m.Name)
			}
			w, err1 := strconv.ParseFloat(wStr, 64)
			h, err2 := strconv.ParseFloat(hStr, 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("lef: bad SIZE numbers in MACRO %s", m.Name)
			}
			m.WidthUm, m.HeightUm = w, h
			tz.SkipStatement()
		case "PROPERTY":
			key, ok1 := tz.Next()
			val, ok2 := tz.Next()
			if !ok1 || !ok2 {
				return fmt.Errorf("lef: malformed PROPERTY in MACRO %s", m.Name)
			}
			switch key {
			case "biasCurrent":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return fmt.Errorf("lef: bad biasCurrent %q in MACRO %s", val, m.Name)
				}
				m.Bias = f
			case "delayPS":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return fmt.Errorf("lef: bad delayPS %q in MACRO %s", val, m.Name)
				}
				m.DelayPS = f
			case "jjCount":
				n, err := strconv.Atoi(val)
				if err != nil {
					return fmt.Errorf("lef: bad jjCount %q in MACRO %s", val, m.Name)
				}
				m.JJs = n
			case "clocked":
				m.Clocked = val == "1"
			}
			tz.SkipStatement()
		case "PIN":
			pin, ok := tz.Next()
			if !ok {
				return fmt.Errorf("lef: EOF in PIN of MACRO %s", m.Name)
			}
			dirOut := false
			for {
				t2, ok := tz.Next()
				if !ok {
					return fmt.Errorf("lef: EOF in PIN %s of MACRO %s", pin, m.Name)
				}
				if strings.EqualFold(t2, "END") {
					tz.Next() // pin name
					break
				}
				if strings.EqualFold(t2, "DIRECTION") {
					d, _ := tz.Next()
					dirOut = strings.EqualFold(d, "OUTPUT")
				}
			}
			if dirOut {
				m.OutPins = append(m.OutPins, pin)
			} else {
				m.InPins = append(m.InPins, pin)
			}
		default:
			tz.SkipStatement()
		}
	}
}

// ToLibrary converts parsed macros into a cell library. Cells get
// KindUnknown unless their name matches the default library's naming.
func ToLibrary(name string, macros map[string]Macro) (*cellib.Library, error) {
	def := cellib.Default()
	names := make([]string, 0, len(macros))
	for n := range macros {
		names = append(names, n)
	}
	sort.Strings(names)
	cells := make([]cellib.Cell, 0, len(names))
	nextKind := cellib.Kind(1000) // synthetic kinds for unknown macros
	for _, n := range names {
		m := macros[n]
		kind := nextKind
		if c, ok := def.ByName(n); ok {
			kind = c.Kind
		} else {
			nextKind++
		}
		tw := int(m.WidthUm/(cellib.TileW*1000) + 0.5)
		th := int(m.HeightUm/(cellib.TileH*1000) + 0.5)
		if tw < 1 {
			tw = 1
		}
		if th < 1 {
			th = 1
		}
		// The clk pin is an input in LEF but is not a data input.
		dataIns := 0
		for _, p := range m.InPins {
			if p != "clk" {
				dataIns++
			}
		}
		cells = append(cells, cellib.Cell{
			Name: n, Kind: kind, JJs: m.JJs, Bias: m.Bias, DelayPS: m.DelayPS,
			TilesW: tw, TilesH: th,
			Inputs: dataIns, Outputs: len(m.OutPins), Clocked: m.Clocked,
		})
	}
	return cellib.NewLibrary(name, cells)
}
