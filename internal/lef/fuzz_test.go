package lef

import (
	"strings"
	"testing"
)

// FuzzParse asserts the LEF reader never panics on arbitrary input.
func FuzzParse(f *testing.F) {
	f.Add("MACRO X\n SIZE 1 BY 1 ;\nEND X\n")
	f.Add("PROPERTYDEFINITIONS\n MACRO biasCurrent REAL ;\nEND PROPERTYDEFINITIONS\nMACRO Y\n PIN a\n DIRECTION INPUT ;\n END a\nEND Y\n")
	f.Add("")
	f.Add("MACRO")
	f.Add("MACRO Z\n PROPERTY biasCurrent -1e309 ;\nEND Z\n")
	f.Add("END LIBRARY MACRO ; ; ;")
	f.Fuzz(func(t *testing.T, src string) {
		macros, err := Parse(strings.NewReader(src))
		if err == nil && macros != nil {
			_, _ = ToLibrary("fuzz", macros)
		}
	})
}
