// Package sfqmap performs SFQ technology mapping: it turns a gate-level
// logic circuit (internal/logic) into an SFQ cell netlist
// (internal/netlist) the way the paper's benchmark suite was prepared.
//
// SFQ imposes two structural requirements that the mapper realizes
// explicitly (Section II of the paper):
//
//   - Fanout: an SFQ gate output can drive exactly one sink, so a logical
//     fanout of f is realized with a binary tree of f−1 splitter cells.
//   - Clocking: most SFQ logic gates are clocked (gate-level pipelining).
//     The mapper builds a clock distribution network as a binary tree of
//     clock splitters rooted at a clock source, delivering one clock pulse
//     edge to every clocked cell. Clock connections are ordinary
//     connections in the DEF netlist, exactly as in the paper's
//     post-routing benchmarks.
package sfqmap

import (
	"fmt"

	"gpp/internal/cellib"
	"gpp/internal/logic"
	"gpp/internal/netlist"
)

// Options configures the mapper.
type Options struct {
	// Library supplies the SFQ cells; defaults to cellib.Default().
	Library *cellib.Library
	// ClockTree controls whether the clock distribution network is
	// generated. Default true (matches the paper's netlists, where clock
	// nets are part of the routed design).
	ClockTree bool
	// clockTreeSet distinguishes "explicitly false" from zero value.
	clockTreeSet bool
}

// DefaultOptions returns the standard mapping configuration.
func DefaultOptions() Options {
	return Options{Library: cellib.Default(), ClockTree: true, clockTreeSet: true}
}

// WithoutClockTree returns o with clock tree generation disabled.
func (o Options) WithoutClockTree() Options {
	o.ClockTree = false
	o.clockTreeSet = true
	return o
}

func (o Options) withDefaults() Options {
	if o.Library == nil {
		o.Library = cellib.Default()
	}
	if !o.clockTreeSet {
		o.ClockTree = true
	}
	return o
}

var opToKind = map[logic.Op]cellib.Kind{
	logic.OpInput:  cellib.KindDCSFQ,
	logic.OpOutput: cellib.KindSFQDC,
	logic.OpAnd:    cellib.KindAND,
	logic.OpOr:     cellib.KindOR,
	logic.OpXor:    cellib.KindXOR,
	logic.OpNot:    cellib.KindNOT,
	logic.OpNand:   cellib.KindNAND,
	logic.OpNor:    cellib.KindNOR,
	logic.OpXnor:   cellib.KindXNOR,
	logic.OpAndNot: cellib.KindAND2N,
	logic.OpBuf:    cellib.KindBuffer,
	logic.OpDelay:  cellib.KindDFF,
}

// Map technology-maps a logic circuit into an SFQ netlist.
func Map(lc *logic.Circuit, opts Options) (*netlist.Circuit, error) {
	opts = opts.withDefaults()
	if err := lc.Validate(); err != nil {
		return nil, err
	}
	lib := opts.Library
	b := netlist.NewBuilder(lc.Name, lib)

	// 1. Instantiate one SFQ cell per logic node.
	gateOf := make([]netlist.GateID, len(lc.Nodes))
	var clocked []netlist.GateID
	for _, n := range lc.Nodes {
		kind, ok := opToKind[n.Op]
		if !ok {
			return nil, fmt.Errorf("sfqmap: no SFQ mapping for op %v", n.Op)
		}
		name := n.Name
		if name == "" {
			name = fmt.Sprintf("%s_%d", n.Op, n.ID)
		} else {
			name = fmt.Sprintf("%s_%s", n.Op, name)
		}
		id := b.AddCell(name, kind)
		gateOf[n.ID] = id
		if cell, _ := lib.ByKind(kind); cell.Clocked {
			clocked = append(clocked, id)
		}
	}

	// 2. Realize data connections with splitter trees. For each driver with
	// fanout f ≥ 2, build a binary splitter tree with f−1 SPLIT cells; the
	// tree's f leaf outputs feed the sinks. Leaves are handed out in
	// consumption order and the sink-side edges are added in *pin order*
	// (a second pass over every node's inputs), so non-commutative cells
	// (ANDN2T, MUX2T) keep their operand semantics through mapping.
	fanouts := lc.Fanouts()
	splitters := 0
	feeds := make([][]netlist.GateID, len(lc.Nodes)) // per driver: leaf queue
	for _, n := range lc.Nodes {
		f := len(fanouts[n.ID])
		if f == 0 {
			continue
		}
		feeds[n.ID] = buildSplitterTree(b, gateOf[n.ID], f, &splitters)
		if b.Err() != nil {
			return nil, b.Err()
		}
	}
	next := make([]int, len(lc.Nodes)) // consumption cursor per driver
	for _, n := range lc.Nodes {
		for _, src := range n.Ins {
			leaf := feeds[src][next[src]]
			next[src]++
			b.Connect(leaf, gateOf[n.ID])
		}
		if b.Err() != nil {
			return nil, b.Err()
		}
	}

	// 3. Clock network: a clock source feeding a binary tree of clock
	// splitters, one leaf per clocked cell.
	if opts.ClockTree && len(clocked) > 0 {
		clkSrc := b.AddCell("clk_src", cellib.KindDCSFQ)
		cs := 0
		connectClockTree(b, clkSrc, clocked, &cs)
		if b.Err() != nil {
			return nil, b.Err()
		}
	}

	return b.Build()
}

// buildSplitterTree creates the splitter tree that fans driver out to n
// consumers and returns the n leaf sources (each may appear twice — a
// splitter's two outputs — and is to be connected to exactly one sink).
func buildSplitterTree(b *netlist.Builder, driver netlist.GateID, n int, counter *int) []netlist.GateID {
	if n == 1 {
		return []netlist.GateID{driver}
	}
	sp := b.AddCell(fmt.Sprintf("split_%d", *counter), cellib.KindSplit)
	*counter++
	b.Connect(driver, sp)
	half := n / 2
	leaves := buildSplitterTree(b, sp, half, counter)
	return append(leaves, buildSplitterTree(b, sp, n-half, counter)...)
}

// connectClockTree distributes a clock pulse from src to every gate in
// sinks via CSPLIT cells.
func connectClockTree(b *netlist.Builder, src netlist.GateID, sinks []netlist.GateID, counter *int) {
	if len(sinks) == 1 {
		b.Connect(src, sinks[0])
		return
	}
	sp := b.AddCell(fmt.Sprintf("csplit_%d", *counter), cellib.KindClkSplit)
	*counter++
	b.Connect(src, sp)
	half := len(sinks) / 2
	connectClockTree(b, sp, sinks[:half], counter)
	connectClockTree(b, sp, sinks[half:], counter)
}

// MapStats describes what mapping produced.
type MapStats struct {
	LogicNodes     int
	Cells          int
	DataSplitters  int
	ClockSplitters int
	ClockedCells   int
	Edges          int
}

// Stats recomputes mapping statistics from a mapped circuit.
func Stats(lc *logic.Circuit, mapped *netlist.Circuit) MapStats {
	st := MapStats{LogicNodes: lc.NumNodes(), Cells: mapped.NumGates(), Edges: mapped.NumEdges()}
	for _, g := range mapped.Gates {
		switch g.Cell {
		case "SPLIT":
			st.DataSplitters++
		case "CSPLIT":
			st.ClockSplitters++
		}
	}
	lib := cellib.Default()
	for _, g := range mapped.Gates {
		if c, ok := lib.ByName(g.Cell); ok && c.Clocked {
			st.ClockedCells++
		}
	}
	return st
}
