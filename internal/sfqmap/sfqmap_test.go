package sfqmap

import (
	"testing"

	"gpp/internal/cellib"
	"gpp/internal/logic"
	"gpp/internal/netlist"
)

// smallCircuit: two inputs, an AND with fanout 3, three outputs.
func smallCircuit(t *testing.T) *logic.Circuit {
	t.Helper()
	b := logic.NewBuilder("small")
	x := b.Input("x")
	y := b.Input("y")
	g := b.And(x, y)
	b.Output("o0", g)
	b.Output("o1", g)
	b.Output("o2", g)
	return b.MustBuild()
}

func TestMapBasicStructure(t *testing.T) {
	mapped, err := Map(smallCircuit(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Validate(); err != nil {
		t.Fatal(err)
	}
	if !mapped.IsDAG() {
		t.Error("mapped circuit is cyclic")
	}
	counts := map[string]int{}
	for _, g := range mapped.Gates {
		counts[g.Cell]++
	}
	// 2 inputs + 1 clock source = 3 DCSFQ; 1 AND; fanout 3 → 2 SPLIT;
	// 3 SFQDC; 1 clocked cell → 0 CSPLIT (single leaf connects directly).
	if counts["DCSFQ"] != 3 {
		t.Errorf("DCSFQ = %d, want 3 (2 inputs + clock source)", counts["DCSFQ"])
	}
	if counts["AND2T"] != 1 {
		t.Errorf("AND2T = %d", counts["AND2T"])
	}
	if counts["SPLIT"] != 2 {
		t.Errorf("SPLIT = %d, want 2 for fanout 3", counts["SPLIT"])
	}
	if counts["SFQDC"] != 3 {
		t.Errorf("SFQDC = %d", counts["SFQDC"])
	}
	if counts["CSPLIT"] != 0 {
		t.Errorf("CSPLIT = %d, want 0 for a single clocked cell", counts["CSPLIT"])
	}
}

func TestMapFanoutDiscipline(t *testing.T) {
	// After mapping, only splitter cells may drive two sinks; everything
	// else drives at most one.
	lc, err := logicKSA(t)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := Map(lc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, out := mapped.Degrees()
	for i, g := range mapped.Gates {
		switch g.Cell {
		case "SPLIT", "CSPLIT":
			if out[i] != 2 {
				t.Errorf("splitter %s drives %d sinks, want 2", g.Name, out[i])
			}
		default:
			if out[i] > 1 {
				t.Errorf("%s (%s) drives %d sinks, want ≤ 1", g.Name, g.Cell, out[i])
			}
		}
	}
}

// logicKSA builds a small parallel-prefix adder shape with real fanout.
func logicKSA(t *testing.T) (*logic.Circuit, error) {
	t.Helper()
	b := logic.NewBuilder("mini-ksa")
	var p, g []logic.NodeID
	for i := 0; i < 4; i++ {
		a := b.Input("a" + string(rune('0'+i)))
		bb := b.Input("b" + string(rune('0'+i)))
		p = append(p, b.Xor(a, bb))
		g = append(g, b.And(a, bb))
	}
	c1 := g[0]
	for i := 1; i < 4; i++ {
		c1 = b.Or(g[i], b.And(p[i], c1))
	}
	b.Output("cout", c1)
	for i := 0; i < 4; i++ {
		b.Output("s"+string(rune('0'+i)), p[i])
	}
	return b.Build()
}

func TestMapClockTree(t *testing.T) {
	lc, err := logicKSA(t)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := Map(lc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib := cellib.Default()
	// Every clocked cell must receive exactly one connection from the
	// clock network (CSPLIT or the clock source).
	clockSources := map[netlist.GateID]bool{}
	for _, g := range mapped.Gates {
		if g.Cell == "CSPLIT" || g.Name == "clk_src" {
			clockSources[g.ID] = true
		}
	}
	clockIn := make(map[netlist.GateID]int)
	for _, e := range mapped.Edges {
		if clockSources[e.From] {
			clockIn[e.To]++
		}
	}
	nClocked := 0
	for _, g := range mapped.Gates {
		cell, _ := lib.ByName(g.Cell)
		if cell.Clocked {
			nClocked++
			if clockIn[g.ID] != 1 {
				t.Errorf("clocked cell %s receives %d clock pulses, want 1", g.Name, clockIn[g.ID])
			}
		}
	}
	// Binary tree: n leaves need n−1 splitters.
	st := Stats(lc, mapped)
	if st.ClockSplitters != nClocked-1 {
		t.Errorf("clock splitters = %d, want %d", st.ClockSplitters, nClocked-1)
	}
	if st.ClockedCells != nClocked {
		t.Errorf("Stats.ClockedCells = %d, want %d", st.ClockedCells, nClocked)
	}
}

func TestMapWithoutClockTree(t *testing.T) {
	lc := smallCircuit(t)
	mapped, err := Map(lc, DefaultOptions().WithoutClockTree())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range mapped.Gates {
		if g.Cell == "CSPLIT" || g.Name == "clk_src" {
			t.Fatalf("clock network present despite WithoutClockTree: %s", g.Name)
		}
	}
	// Zero-options Map defaults to including the clock tree.
	mapped2, err := Map(lc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range mapped2.Gates {
		if g.Name == "clk_src" {
			found = true
		}
	}
	if !found {
		t.Error("zero-value Options should enable the clock tree")
	}
}

func TestMapSplitterCountMatchesFanout(t *testing.T) {
	lc, err := logicKSA(t)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := Map(lc, DefaultOptions().WithoutClockTree())
	if err != nil {
		t.Fatal(err)
	}
	// Σ over logic nodes of max(fanout−1, 0) data splitters.
	fo := lc.Fanouts()
	want := 0
	for _, sinks := range fo {
		if len(sinks) > 1 {
			want += len(sinks) - 1
		}
	}
	st := Stats(lc, mapped)
	if st.DataSplitters != want {
		t.Errorf("data splitters = %d, want %d", st.DataSplitters, want)
	}
	// Edges: every logic edge becomes a path; total edge count is
	// original-consumptions + 2 per splitter − splitter count… simplest
	// strong check: |E| = Σ out-degrees and every non-splitter ≤ 1.
	if mapped.NumEdges() != sumFanouts(lc)+st.DataSplitters {
		t.Errorf("edges = %d, want consumptions %d + splitters %d",
			mapped.NumEdges(), sumFanouts(lc), st.DataSplitters)
	}
}

func sumFanouts(lc *logic.Circuit) int {
	n := 0
	for _, sinks := range lc.Fanouts() {
		n += len(sinks)
	}
	return n
}

func TestMapRejectsInvalidLogic(t *testing.T) {
	bad := &logic.Circuit{Name: "bad", Nodes: []logic.Node{
		{ID: 0, Op: logic.OpAnd, Ins: []logic.NodeID{0, 0}},
	}}
	if _, err := Map(bad, DefaultOptions()); err == nil {
		t.Error("invalid logic circuit accepted")
	}
}

func TestMapBiasAreaFromLibrary(t *testing.T) {
	mapped, err := Map(smallCircuit(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lib := cellib.Default()
	for _, g := range mapped.Gates {
		cell, ok := lib.ByName(g.Cell)
		if !ok {
			t.Fatalf("unknown cell %q", g.Cell)
		}
		if g.Bias != cell.Bias || g.Area != cell.Area() {
			t.Errorf("%s: bias/area (%g, %g) do not match library (%g, %g)",
				g.Name, g.Bias, g.Area, cell.Bias, cell.Area())
		}
	}
}
