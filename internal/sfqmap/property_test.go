package sfqmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpp/internal/cellib"
	"gpp/internal/logic"
)

// randomLogic builds a random valid logic circuit from a seed: a few
// inputs, a run of random 1/2-input gates over earlier nodes, and outputs
// on the last few nodes.
func randomLogic(seed int64, size int) *logic.Circuit {
	rng := rand.New(rand.NewSource(seed))
	b := logic.NewBuilder("rand")
	nodes := []logic.NodeID{}
	nIn := 3 + rng.Intn(4)
	for i := 0; i < nIn; i++ {
		nodes = append(nodes, b.Input("in"+itoa(i)))
	}
	for i := 0; i < size; i++ {
		x := nodes[rng.Intn(len(nodes))]
		y := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(6) {
		case 0:
			nodes = append(nodes, b.And(x, y))
		case 1:
			nodes = append(nodes, b.Or(x, y))
		case 2:
			nodes = append(nodes, b.Xor(x, y))
		case 3:
			nodes = append(nodes, b.Not(x))
		case 4:
			nodes = append(nodes, b.AndNot(x, y))
		case 5:
			nodes = append(nodes, b.Buf(x))
		}
	}
	nOut := 1 + rng.Intn(3)
	for i := 0; i < nOut; i++ {
		b.Output("out"+itoa(i), nodes[len(nodes)-1-i])
	}
	return b.MustBuild()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// TestMapPropertyInvariants: for arbitrary random logic circuits, mapping
// preserves the SFQ structural discipline.
func TestMapPropertyInvariants(t *testing.T) {
	lib := cellib.Default()
	f := func(seed int64, sizeRaw uint8) bool {
		size := int(sizeRaw%60) + 5
		lc := randomLogic(seed, size)
		mapped, err := Map(lc, DefaultOptions())
		if err != nil {
			return false
		}
		if mapped.Validate() != nil || !mapped.IsDAG() {
			return false
		}
		in, out := mapped.Degrees()
		for i, g := range mapped.Gates {
			cell, ok := lib.ByName(g.Cell)
			if !ok {
				return false
			}
			// Fanout discipline: only splitters drive two sinks.
			switch cell.Kind {
			case cellib.KindSplit, cellib.KindClkSplit:
				if out[i] != 2 {
					return false
				}
			default:
				if out[i] > 1 {
					return false
				}
			}
			// Clock discipline: clocked cells get data inputs + 1 clock.
			if cell.Clocked && in[i] != cell.Inputs+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMapPreservesReachability: every mapped non-clock cell must be
// reachable from some input converter, mirroring the logic circuit's
// connectivity.
func TestMapPreservesReachability(t *testing.T) {
	lc := randomLogic(11, 40)
	mapped, err := Map(lc, DefaultOptions().WithoutClockTree())
	if err != nil {
		t.Fatal(err)
	}
	in, _ := mapped.Degrees()
	reach := make([]bool, mapped.NumGates())
	succ := make([][]int, mapped.NumGates())
	for _, e := range mapped.Edges {
		succ[e.From] = append(succ[e.From], int(e.To))
	}
	var stack []int
	for i := range mapped.Gates {
		if in[i] == 0 {
			reach[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range succ[u] {
			if !reach[v] {
				reach[v] = true
				stack = append(stack, v)
			}
		}
	}
	for i, r := range reach {
		if !r {
			t.Fatalf("mapped cell %s unreachable from inputs", mapped.Gates[i].Name)
		}
	}
}
