package store

import (
	"bytes"
	"errors"
	"testing"
)

// TestBackendConformance runs the Backend contract against both
// implementations, so a future remote backend has an executable spec to
// pass: add it to the table.
func TestBackendConformance(t *testing.T) {
	backends := map[string]func(t *testing.T) Backend{
		"blobs": func(t *testing.T) Backend {
			b, err := OpenBlobs(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
		"mem": func(t *testing.T) Backend { return NewMemBackend() },
	}
	for name, open := range backends {
		t.Run(name, func(t *testing.T) {
			b := open(t)
			data := []byte("backend conformance payload")

			key, err := b.Put(data)
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			if len(key) != 64 {
				t.Fatalf("Put key = %q, want 64 hex chars", key)
			}
			if !b.Has(key) {
				t.Fatal("Has after Put = false")
			}
			got, err := b.Get(key)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("Get = %q, want %q", got, data)
			}

			// Get must not alias the stored bytes.
			got[0] ^= 0xff
			again, err := b.Get(key)
			if err != nil || !bytes.Equal(again, data) {
				t.Fatalf("Get after caller mutation = %q, %v; want original bytes", again, err)
			}

			// Caller-derived keys: overwrite wins, content independent.
			derived := "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
			if err := b.PutKeyed(derived, []byte("v1")); err != nil {
				t.Fatalf("PutKeyed: %v", err)
			}
			if err := b.PutKeyed(derived, []byte("v2")); err != nil {
				t.Fatalf("PutKeyed overwrite: %v", err)
			}
			if got, _ := b.Get(derived); string(got) != "v2" {
				t.Fatalf("Get after overwrite = %q, want v2", got)
			}

			// Misses and bad keys.
			missing := "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
			if _, err := b.Get(missing); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(missing) err = %v, want ErrNotFound", err)
			}
			if b.Has(missing) {
				t.Fatal("Has(missing) = true")
			}
			if err := b.PutKeyed("short", data); err == nil {
				t.Fatal("PutKeyed with malformed key should fail")
			}
			if _, err := b.Get("UPPERCASE"); err == nil {
				t.Fatal("Get with malformed key should fail")
			}

			// Delete is idempotent.
			if err := b.Delete(derived); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if b.Has(derived) {
				t.Fatal("Has after Delete = true")
			}
			if err := b.Delete(derived); err != nil {
				t.Fatalf("second Delete: %v", err)
			}
		})
	}
}
