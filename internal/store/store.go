// Package store is the durability layer: everything the rest of the
// system needs to survive a crash or redeploy lives here, with zero
// dependencies beyond the standard library.
//
// Three building blocks, each with a narrow crash-safety contract:
//
//   - Blobs, an on-disk content-addressed blob store. Every blob is a
//     sha256-keyed file written via write-to-temp + fsync + rename (the
//     POSIX atomic-replace idiom), framed with a magic header and a
//     CRC-32 of the payload so a torn or bit-rotted file is detected on
//     read instead of being served as data. Garbage collection trims the
//     store to a byte budget, coldest mtime first.
//
//   - Journal, a write-ahead log of small JSON records (append-only
//     JSONL, one CRC-framed record per line, fsync per append). Replay
//     tolerates a torn tail — the records before the tear are returned,
//     the tear is truncated away — and Compact atomically rewrites the
//     file down to the live set.
//
//   - WriteFileAtomic / ReadFileChecked, the same temp+rename+CRC frame
//     for standalone files (solver checkpoint snapshots use these).
//
// The serve daemon composes Blobs (result cache persistence) and Journal
// (job re-enqueue on boot) under a -data-dir; see internal/serve. The
// Store type is that composition: one directory owning both.
package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store is one durable data directory: a blob store for bulk content and
// a well-known journal path for the write-ahead log. Open creates the
// layout on first use:
//
//	dir/
//	  blobs/<aa>/<sha256-hex>      content-addressed blobs
//	  journal.wal                  write-ahead JSONL journal
type Store struct {
	// Dir is the root data directory.
	Dir string

	// Blobs is the content-addressed blob store rooted at Dir/blobs.
	Blobs *Blobs
}

// Open creates (if needed) and opens a durable data directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	blobs, err := OpenBlobs(filepath.Join(dir, "blobs"))
	if err != nil {
		return nil, err
	}
	return &Store{Dir: dir, Blobs: blobs}, nil
}

// JournalPath is where the store's write-ahead journal lives; pass it to
// OpenJournal. The journal is not opened by Open because only some users
// of a data directory keep one (the serve daemon does, a checkpointing
// CLI run does not).
func (s *Store) JournalPath() string {
	return filepath.Join(s.Dir, "journal.wal")
}

// syncDir fsyncs a directory so a just-renamed or just-created entry in
// it is durable. Some filesystems don't support fsync on directories;
// those errors are ignored (the rename itself is still atomic).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
