package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Blobs is an on-disk content-addressed blob store: each blob lives in a
// file named by a 64-hex-char sha256 key under a two-character fan-out
// directory (dir/ab/abcd…), CRC-framed and atomically written. Keys are
// either the hash of the content itself (Put) or any caller-derived
// sha256 hex — the serve result cache keys on the *request* identity, not
// the response bytes (PutKeyed).
//
// All methods are safe for concurrent use. Two concurrent Puts of the
// same key both succeed: each writes its own temp file and the renames
// serialize, last writer wins — identical content either way for honest
// content addressing.
type Blobs struct {
	dir string

	// mu serializes GC against itself; Put/Get run lock-free (atomic
	// rename makes concurrent writes safe, and a Get racing a GC unlink
	// just reports a miss, exactly as if GC had run first).
	mu sync.Mutex
}

// OpenBlobs creates (if needed) and opens a blob directory.
func OpenBlobs(dir string) (*Blobs, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Blobs{dir: dir}, nil
}

// ErrNotFound reports a missing blob key.
var ErrNotFound = fmt.Errorf("store: blob not found")

// checkKey enforces the sha256-hex key shape so keys are always safe path
// components (no separators, fixed length).
func checkKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("store: blob key %q is not 64 hex chars", key)
	}
	for _, c := range key {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return fmt.Errorf("store: blob key %q is not lowercase hex", key)
		}
	}
	return nil
}

func (b *Blobs) path(key string) string {
	return filepath.Join(b.dir, key[:2], key)
}

// Put stores data under its own sha256 and returns the hex key.
func (b *Blobs) Put(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:])
	return key, b.PutKeyed(key, data)
}

// PutKeyed stores data under a caller-derived sha256-hex key. Re-putting
// an existing key rewrites the file (atomically) and refreshes its mtime,
// which doubles as the GC's recency signal.
func (b *Blobs) PutKeyed(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	p := b.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := WriteFileAtomic(p, data, 0o644); err != nil {
		return err
	}
	mBlobWrites.Inc()
	return nil
}

// Get returns the blob for key, or ErrNotFound. A blob that exists but
// fails its frame check (torn write by a non-atomic actor, bit rot) is
// removed and reported as a checked error — never served as data.
func (b *Blobs) Get(key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	payload, err := ReadFileChecked(b.path(key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		mBlobCorrupt.Inc()
		_ = os.Remove(b.path(key))
		return nil, err
	}
	mBlobReads.Inc()
	return payload, nil
}

// Has reports whether key exists (without reading or validating it).
func (b *Blobs) Has(key string) bool {
	if checkKey(key) != nil {
		return false
	}
	_, err := os.Stat(b.path(key))
	return err == nil
}

// Delete removes a blob; a missing key is not an error.
func (b *Blobs) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	err := os.Remove(b.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// blobInfo is one on-disk blob for Stats/GC.
type blobInfo struct {
	key   string
	size  int64
	mtime time.Time
}

// scan walks the fan-out directories. Temp files (in-flight atomic
// writes) are skipped.
func (b *Blobs) scan() ([]blobInfo, error) {
	var out []blobInfo
	fans, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, fan := range fans {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(b.dir, fan.Name()))
		if err != nil {
			continue // fan dir GC'd concurrently
		}
		for _, e := range entries {
			if checkKey(e.Name()) != nil {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			out = append(out, blobInfo{key: e.Name(), size: info.Size(), mtime: info.ModTime()})
		}
	}
	return out, nil
}

// Stats returns the blob count and total on-disk bytes (frame included).
func (b *Blobs) Stats() (count int, bytes int64, err error) {
	infos, err := b.scan()
	if err != nil {
		return 0, 0, err
	}
	for _, in := range infos {
		bytes += in.size
	}
	return len(infos), bytes, nil
}

// GC trims the store: blobs older than maxAge go first (0 disables the
// age rule), then coldest-mtime blobs until total size fits maxBytes
// (0 disables the size rule). It returns how many blobs were removed.
// Ties on mtime break by key so the sweep is deterministic.
func (b *Blobs) GC(maxBytes int64, maxAge time.Duration) (removed int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	infos, err := b.scan()
	if err != nil {
		return 0, err
	}
	sort.Slice(infos, func(i, j int) bool {
		if !infos[i].mtime.Equal(infos[j].mtime) {
			return infos[i].mtime.Before(infos[j].mtime)
		}
		return infos[i].key < infos[j].key
	})
	var total int64
	for _, in := range infos {
		total += in.size
	}
	cutoff := time.Time{}
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge)
	}
	for _, in := range infos {
		tooOld := maxAge > 0 && in.mtime.Before(cutoff)
		tooBig := maxBytes > 0 && total > maxBytes
		if !tooOld && !tooBig {
			// infos are mtime-sorted, so nothing later is older, and total
			// only shrinks on removal — no later entry can qualify either.
			break
		}
		if rmErr := os.Remove(b.path(in.key)); rmErr != nil && !os.IsNotExist(rmErr) {
			err = fmt.Errorf("store: gc: %w", rmErr)
			continue
		}
		total -= in.size
		removed++
		mBlobGCRemoved.Inc()
	}
	return removed, err
}
