package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// File frame shared by blobs and standalone checked files: a magic tag, a
// CRC-32 (IEEE) of the payload, the payload length, then the payload.
// The length makes truncation detectable even when the truncated prefix
// happens to CRC clean (it can't — the CRC covers the full payload — but
// the explicit length gives a crisper error), and the magic rejects files
// that were never written by this layer at all.
const frameMagic = "gppblob1"

const frameHeaderLen = len(frameMagic) + 4 + 8 // magic ‖ crc32 ‖ len

// frame wraps payload in the on-disk record format.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeaderLen+len(payload))
	copy(buf, frameMagic)
	binary.LittleEndian.PutUint32(buf[len(frameMagic):], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(buf[len(frameMagic)+4:], uint64(len(payload)))
	copy(buf[frameHeaderLen:], payload)
	return buf
}

// unframe validates the record format and returns the payload (aliasing
// raw, not a copy).
func unframe(raw []byte) ([]byte, error) {
	if len(raw) < frameHeaderLen {
		return nil, fmt.Errorf("store: truncated record (%d bytes, need ≥ %d header)", len(raw), frameHeaderLen)
	}
	if string(raw[:len(frameMagic)]) != frameMagic {
		return nil, fmt.Errorf("store: bad record magic")
	}
	wantCRC := binary.LittleEndian.Uint32(raw[len(frameMagic):])
	wantLen := binary.LittleEndian.Uint64(raw[len(frameMagic)+4:])
	payload := raw[frameHeaderLen:]
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("store: record length %d, header says %d", len(payload), wantLen)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("store: record CRC mismatch (got %08x, want %08x)", got, wantCRC)
	}
	return payload, nil
}

// WriteFileAtomic durably replaces path with a CRC-framed copy of data:
// write to a temp file in the same directory, fsync it, rename over path,
// fsync the directory. A crash at any point leaves either the old file or
// the new one — never a torn mix — and ReadFileChecked detects any
// partial temp state that a non-atomic writer could have left behind.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer func() {
		if tmp != nil {
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(frame(data)); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("store: chmod %s: %w", path, err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name)
		tmp = nil
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	tmp = nil
	syncDir(dir)
	return nil
}

// ReadFileChecked reads a file written by WriteFileAtomic, validating the
// frame (magic, length, CRC) before returning the payload.
func ReadFileChecked(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := unframe(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return payload, nil
}
