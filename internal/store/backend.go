package store

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Backend is the blob-storage contract behind the content-addressed
// store: everything the serve layer needs from its result cache and
// circuit storage, and nothing tied to the local filesystem. Blobs is the
// on-disk implementation; MemBackend backs tests; the interface is the
// seam for pointing the same call sites at an S3/MinIO-style HTTP object
// store, whose operations map one-to-one (PutKeyed = PUT, Get = GET,
// Has = HEAD, Delete = DELETE).
//
// Contract, shared by every implementation:
//
//   - Keys are 64-char lowercase sha256 hex (checkKey); anything else is
//     an error.
//   - Get on a missing key returns an error satisfying
//     errors.Is(err, ErrNotFound).
//   - PutKeyed overwrites: callers key on content identity (the hash of
//     the value, or of the request that deterministically produces it),
//     so any same-key race writes identical bytes.
//   - All methods are safe for concurrent use.
type Backend interface {
	// Put stores data under its own sha256 and returns the hex key.
	Put(data []byte) (string, error)
	// PutKeyed stores data under a caller-derived sha256-hex key.
	PutKeyed(key string, data []byte) error
	// Get returns the blob's bytes, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Has reports whether the key exists (cheaper than Get on remote
	// backends: HEAD, no body).
	Has(key string) bool
	// Delete removes the key; deleting a missing key is not an error.
	Delete(key string) error
}

// The on-disk store is the reference Backend implementation.
var _ Backend = (*Blobs)(nil)

// MemBackend is an in-memory Backend: the test double, and the reference
// for the semantics a remote implementation must reproduce. Zero value is
// not usable; call NewMemBackend.
type MemBackend struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemBackend returns an empty in-memory blob store.
func NewMemBackend() *MemBackend {
	return &MemBackend{blobs: make(map[string][]byte)}
}

var _ Backend = (*MemBackend)(nil)

// Put stores data under its own sha256 and returns the hex key.
func (m *MemBackend) Put(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:])
	return key, m.PutKeyed(key, data)
}

// PutKeyed stores a copy of data under key.
func (m *MemBackend) PutKeyed(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	m.blobs[key] = cp
	m.mu.Unlock()
	return nil
}

// Get returns a copy of the blob, or ErrNotFound.
func (m *MemBackend) Get(key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	m.mu.Lock()
	data, ok := m.blobs[key]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), data...), nil
}

// Has reports whether key exists.
func (m *MemBackend) Has(key string) bool {
	if checkKey(key) != nil {
		return false
	}
	m.mu.Lock()
	_, ok := m.blobs[key]
	m.mu.Unlock()
	return ok
}

// Delete removes key; missing keys are a no-op.
func (m *MemBackend) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.blobs, key)
	m.mu.Unlock()
	return nil
}

// Len reports the number of stored blobs (test helper).
func (m *MemBackend) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blobs)
}
