package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"sync"
)

// Record is one journal entry: a small operation descriptor plus an
// opaque JSON payload owned by the caller. Seq is assigned by Append in
// strictly increasing order (replay re-derives the next sequence).
type Record struct {
	Seq  uint64          `json:"seq"`
	Op   string          `json:"op"`
	ID   string          `json:"id,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Journal is a write-ahead log: append-only JSONL, one record per line,
// each line prefixed with a CRC-32 of its JSON so replay can tell a clean
// record from a torn or corrupted one. Appends are fsync'd before they
// return — an acknowledged record survives a crash an instant later.
//
// Line format:
//
//	crc32-hex <space> {"seq":…,"op":…,"id":…,"data":…} <newline>
//
// Replay (OpenJournal) stops at the first line that fails its CRC or
// doesn't parse: everything before it is returned, everything from it on
// is discarded and truncated away, which is exactly the torn-tail
// semantics a crash mid-append produces. A tear is counted in
// gpp_journal_torn_total but is not an error — it is the expected shape
// of a crash.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	nextSeq uint64
	appends int // since last compact, drives auto-compaction hints
}

// OpenJournal opens (creating if needed) the journal at path, replays the
// existing records, truncates any torn tail, and returns the journal
// positioned for appends plus the replayed records in order.
func OpenJournal(path string) (*Journal, []Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	recs, goodLen, torn := replay(raw)
	if torn {
		mJournalTorn.Inc()
	}
	// Truncate a torn tail before appending: a new record must never sit
	// after garbage, or the next replay would stop at the garbage and
	// lose it.
	if goodLen < len(raw) {
		if err := os.WriteFile(path+".tmp", raw[:goodLen], 0o644); err != nil {
			return nil, nil, fmt.Errorf("store: journal: %w", err)
		}
		if err := os.Rename(path+".tmp", path); err != nil {
			return nil, nil, fmt.Errorf("store: journal: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	j := &Journal{path: path, f: f, w: bufio.NewWriter(f)}
	for _, r := range recs {
		if r.Seq >= j.nextSeq {
			j.nextSeq = r.Seq + 1
		}
	}
	mJournalReplayed.Add(int64(len(recs)))
	return j, recs, nil
}

// replay parses raw into clean records, returning the byte length of the
// clean prefix and whether a tear (bad CRC / parse / truncation) was hit.
func replay(raw []byte) (recs []Record, goodLen int, torn bool) {
	off := 0
	for off < len(raw) {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			return recs, off, true // unterminated final line = torn append
		}
		line := raw[off : off+nl]
		rec, ok := parseLine(line)
		if !ok {
			return recs, off, true
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, off, false
}

func parseLine(line []byte) (Record, bool) {
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return Record{}, false
	}
	want, err := strconv.ParseUint(string(line[:sp]), 16, 32)
	if err != nil {
		return Record{}, false
	}
	payload := line[sp+1:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return Record{}, false
	}
	var rec Record
	if json.Unmarshal(payload, &rec) != nil {
		return Record{}, false
	}
	return rec, true
}

func appendLine(dst []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return dst, fmt.Errorf("store: journal: %w", err)
	}
	dst = append(dst, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload))...)
	dst = append(dst, payload...)
	return append(dst, '\n'), nil
}

// Append writes one record (Seq assigned here) and fsyncs it before
// returning. The assigned record is returned so callers can track the
// sequence of what they wrote.
func (j *Journal) Append(rec Record) (Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return Record{}, fmt.Errorf("store: journal: closed")
	}
	rec.Seq = j.nextSeq
	line, err := appendLine(nil, rec)
	if err != nil {
		return Record{}, err
	}
	if _, err := j.w.Write(line); err != nil {
		return Record{}, fmt.Errorf("store: journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return Record{}, fmt.Errorf("store: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return Record{}, fmt.Errorf("store: journal: %w", err)
	}
	j.nextSeq++
	j.appends++
	mJournalRecords.Inc()
	return rec, nil
}

// AppendsSinceCompact reports how many records were appended since the
// journal was opened or last compacted — the caller's signal for when a
// Compact is worth the rewrite.
func (j *Journal) AppendsSinceCompact() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Compact atomically rewrites the journal to contain exactly live (in the
// given order, original sequence numbers preserved), dropping everything
// else — the replay/compact cycle that keeps a long-running daemon's log
// proportional to its live state instead of its history.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal: closed")
	}
	var buf []byte
	var err error
	for _, rec := range live {
		if buf, err = appendLine(buf, rec); err != nil {
			return err
		}
	}
	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	// Swap the live file under the append handle: close, rename, reopen.
	// Appends are excluded by mu for the whole window, so no write can
	// land on the closed handle.
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	f, err = os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: journal: reopen after compact: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.appends = 0
	mJournalCompactions.Inc()
	return nil
}

// Close flushes and closes the journal file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.w.Flush()
	if serr := j.f.Sync(); err == nil {
		err = serr
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
