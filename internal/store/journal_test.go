package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openEmpty(t *testing.T) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	return j, path
}

func TestJournalAppendReplay(t *testing.T) {
	j, path := openEmpty(t)
	for i := 0; i < 5; i++ {
		data, _ := json.Marshal(map[string]int{"n": i})
		rec, err := j.Append(Record{Op: "accept", ID: fmt.Sprintf("job-%d", i), Data: data})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, rec.Seq)
		}
	}
	if _, err := j.Append(Record{Op: "done", ID: "job-2"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 6 {
		t.Fatalf("replayed %d records, want 6", len(recs))
	}
	if recs[5].Op != "done" || recs[5].ID != "job-2" || recs[5].Seq != 5 {
		t.Fatalf("last record = %+v", recs[5])
	}
	var payload map[string]int
	if err := json.Unmarshal(recs[3].Data, &payload); err != nil || payload["n"] != 3 {
		t.Fatalf("record 3 data = %s (%v)", recs[3].Data, err)
	}
	// Sequence continues where the replay left off.
	rec, err := j2.Append(Record{Op: "accept", ID: "job-9"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 6 {
		t.Fatalf("post-replay seq = %d, want 6", rec.Seq)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	j, path := openEmpty(t)
	for i := 0; i < 3; i++ {
		if _, err := j.Append(Record{Op: "accept", ID: fmt.Sprintf("j%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage with no newline at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":3,"op":"acc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records through a torn tail, want 3", len(recs))
	}
	// The tear was truncated: a fresh append lands cleanly and a third
	// open sees all four records.
	if _, err := j2.Append(Record{Op: "accept", ID: "after-tear"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(recs) != 4 || recs[3].ID != "after-tear" {
		t.Fatalf("after tear+append: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
}

func TestJournalCorruptMiddleStopsReplay(t *testing.T) {
	j, path := openEmpty(t)
	for i := 0; i < 4; i++ {
		if _, err := j.Append(Record{Op: "accept", ID: fmt.Sprintf("j%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's JSON. Replay keeps record 0
	// and drops everything from the corruption on — a conservative
	// prefix, never a gap.
	lines := 0
	for i, c := range raw {
		if c == '\n' {
			lines++
			if lines == 1 {
				raw[i+12] ^= 0x40
				break
			}
		}
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 1 || recs[0].ID != "j0" {
		t.Fatalf("replay past corruption: %d records", len(recs))
	}
}

func TestJournalCompact(t *testing.T) {
	j, path := openEmpty(t)
	var live []Record
	for i := 0; i < 20; i++ {
		rec, err := j.Append(Record{Op: "accept", ID: fmt.Sprintf("j%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 { // keep every fifth as "unfinished"
			live = append(live, rec)
		}
	}
	if n := j.AppendsSinceCompact(); n != 20 {
		t.Fatalf("AppendsSinceCompact = %d, want 20", n)
	}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	if n := j.AppendsSinceCompact(); n != 0 {
		t.Fatalf("AppendsSinceCompact after compact = %d", n)
	}
	// The journal stays appendable across the compact, and the rewritten
	// file replays as live set + new appends with sequence continuity.
	rec, err := j.Append(Record{Op: "accept", ID: "post-compact"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 20 {
		t.Fatalf("post-compact seq = %d, want 20", rec.Seq)
	}
	j.Close()
	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != len(live)+1 {
		t.Fatalf("replayed %d records, want %d", len(recs), len(live)+1)
	}
	for i, want := range live {
		if recs[i].ID != want.ID || recs[i].Seq != want.Seq {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want)
		}
	}
}

func TestJournalClosedAppendFails(t *testing.T) {
	j, _ := openEmpty(t)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Record{Op: "accept"}); err == nil {
		t.Fatal("append on closed journal succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
