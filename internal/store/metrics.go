package store

import "gpp/internal/obs"

// Durability metrics, registered on the process-wide obs registry so a
// daemon's /metrics exposes the whole stack in one scrape. The replay and
// torn-tail counters are the post-crash forensics: after a restart,
// gpp_journal_replayed_total says how much state came back and
// gpp_journal_torn_total whether the crash tore an append.
var (
	mBlobWrites = obs.Default().Counter("gpp_store_blob_writes_total",
		"blobs durably written (atomic temp+rename, fsync'd)")
	mBlobReads = obs.Default().Counter("gpp_store_blob_reads_total",
		"blobs read and CRC-verified")
	mBlobCorrupt = obs.Default().Counter("gpp_store_blob_corrupt_total",
		"blobs that failed their frame check on read (removed, never served)")
	mBlobGCRemoved = obs.Default().Counter("gpp_store_gc_removed_total",
		"blobs removed by garbage collection (size budget or max age)")
	mJournalRecords = obs.Default().Counter("gpp_journal_records_total",
		"records appended to the write-ahead journal")
	mJournalReplayed = obs.Default().Counter("gpp_journal_replayed_total",
		"journal records replayed at open (crash/restart recovery)")
	mJournalTorn = obs.Default().Counter("gpp_journal_torn_total",
		"journal opens that found and truncated a torn tail")
	mJournalCompactions = obs.Default().Counter("gpp_journal_compactions_total",
		"journal compactions (rewrite down to the live record set)")
)
