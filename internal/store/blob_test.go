package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestBlobPutGetRoundTrip(t *testing.T) {
	b, err := OpenBlobs(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, durable world")
	key, err := b.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(data)
	if key != hex.EncodeToString(want[:]) {
		t.Fatalf("Put key = %s, want sha256 of content", key)
	}
	got, err := b.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	if !b.Has(key) {
		t.Fatal("Has = false after Put")
	}
}

func TestBlobKeyedAndMissing(t *testing.T) {
	b, err := OpenBlobs(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if err := b.PutKeyed(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if got, err := b.Get(key); err != nil || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	_, err = b.Get("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: err = %v, want ErrNotFound", err)
	}
	for _, bad := range []string{"", "short", "ZZ23456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
		"../3456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef0"} {
		if err := b.PutKeyed(bad, nil); err == nil {
			t.Fatalf("PutKeyed(%q) accepted a malformed key", bad)
		}
	}
}

func TestBlobCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBlobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, err := b.Put([]byte("precious bytes"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk.
	p := filepath.Join(dir, key[:2], key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(key); err == nil {
		t.Fatal("Get served a corrupted blob")
	}
	// The corrupt file is quarantined (removed); the key now reads as
	// missing rather than repeatedly erroring.
	if _, err := b.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after corruption: err = %v, want ErrNotFound", err)
	}
}

func TestBlobTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBlobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, err := b.Put(bytes.Repeat([]byte("x"), 1024))
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key[:2], key)
	raw, _ := os.ReadFile(p)
	if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(key); err == nil {
		t.Fatal("Get served a truncated blob")
	}
}

func TestBlobGCSizeBudget(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBlobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Ten 1 KiB blobs with strictly increasing mtimes.
	var keys []string
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 10; i++ {
		key, err := b.Put([]byte(fmt.Sprintf("blob-%02d-%s", i, bytes.Repeat([]byte("p"), 1024))))
		if err != nil {
			t.Fatal(err)
		}
		stamp := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, key[:2], key), stamp, stamp); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	_, total, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	removed, err := b.GC(total/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed < 4 || removed > 6 {
		t.Fatalf("GC removed %d blobs, want about half of 10", removed)
	}
	// The oldest went first; the newest survive.
	for _, key := range keys[:removed] {
		if b.Has(key) {
			t.Fatalf("GC kept cold blob %s", key)
		}
	}
	for _, key := range keys[removed:] {
		if !b.Has(key) {
			t.Fatalf("GC removed hot blob %s", key)
		}
	}
	count, bytesLeft, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if count != 10-removed || bytesLeft > total/2 {
		t.Fatalf("after GC: %d blobs, %d bytes (budget %d)", count, bytesLeft, total/2)
	}
}

func TestBlobGCMaxAge(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenBlobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	oldKey, err := b.Put([]byte("ancient"))
	if err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(filepath.Join(dir, oldKey[:2], oldKey), stale, stale); err != nil {
		t.Fatal(err)
	}
	newKey, err := b.Put([]byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	removed, err := b.GC(0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || b.Has(oldKey) || !b.Has(newKey) {
		t.Fatalf("GC removed %d; old present=%v new present=%v", removed, b.Has(oldKey), b.Has(newKey))
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileChecked(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("ReadFileChecked = %q, want v2", got)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the target file", len(entries))
	}
}

func TestStoreOpenLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Blobs.Put([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if st.JournalPath() != filepath.Join(dir, "journal.wal") {
		t.Fatalf("JournalPath = %s", st.JournalPath())
	}
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
