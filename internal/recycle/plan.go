package recycle

import (
	"fmt"
	"sort"

	"gpp/internal/cellib"
	"gpp/internal/netlist"
	"gpp/internal/partition"
)

// CouplerHop is one plane-boundary crossing of one logical connection. A
// connection from plane p to plane q with |p − q| = d is realized as d
// chained driver/receiver pairs, one per intermediate boundary, because
// inductive coupling only works between physically adjacent ground planes
// (Section III-B.3 of the paper).
type CouplerHop struct {
	Edge      int // index into the circuit's edge list
	FromPlane int // sending plane of this hop (0-based)
	ToPlane   int // receiving plane of this hop
}

// PlaneSummary describes one ground plane of the recycling plan.
type PlaneSummary struct {
	Plane      int
	Gates      int
	Bias       float64 // mA consumed by logic gates
	Area       float64 // mm² of logic gates
	DummyBias  float64 // mA routed through dummy structures
	DummyCells int     // number of dummy cells inserted
	Drivers    int     // coupler driver halves on this plane
	Receivers  int     // coupler receiver halves on this plane
	// OverheadBias/OverheadArea add couplers and dummies.
	OverheadBias float64
	OverheadArea float64
}

// Plan is the physical realization of a partition for serial biasing.
type Plan struct {
	CircuitName string
	K           int
	Labels      []int

	Metrics *Metrics
	Planes  []PlaneSummary
	Hops    []CouplerHop

	// SupplyCurrent is the externally provided current, equal to the
	// largest per-plane total (logic + overhead) after dummy insertion
	// makes all planes equal.
	SupplyCurrent float64

	// BiasBusVoltage is the per-plane bias bus voltage (V); the stack
	// voltage is K times this.
	BiasBusVoltage float64

	// TotalDummyBias is Σ dummy current over planes (mA); TotalCouplerArea
	// and TotalDummyArea are the added layout area (mm²).
	TotalDummyBias   float64
	TotalCouplerArea float64
	TotalDummyArea   float64

	// MaxHopsPerConnection is the largest coupler chain length, a proxy for
	// the worst-case added latency the paper warns about.
	MaxHopsPerConnection int
}

// PlanOptions configures BuildPlan.
type PlanOptions struct {
	// Library supplies the driver, receiver and dummy cells. Defaults to
	// cellib.Default().
	Library *cellib.Library
	// BiasBusVoltage in volts; default 2.5e-3 (the paper's 2.5 mV).
	BiasBusVoltage float64
}

// BuildPlan turns a discrete partition into a current-recycling plan:
// coupler chains for every inter-plane connection, dummy structures sized so
// every plane draws the same current, and the resulting supply requirement.
//
// The circuit must be the one the problem was built from (same gate order).
func BuildPlan(c *netlist.Circuit, p *partition.Problem, labels []int, opts PlanOptions) (*Plan, error) {
	if c.NumGates() != p.G {
		return nil, fmt.Errorf("recycle: circuit has %d gates, problem has %d", c.NumGates(), p.G)
	}
	if opts.Library == nil {
		opts.Library = cellib.Default()
	}
	if opts.BiasBusVoltage == 0 {
		opts.BiasBusVoltage = 2.5e-3
	}
	m, err := Evaluate(p, labels)
	if err != nil {
		return nil, err
	}
	drv := opts.Library.MustByKind(cellib.KindDriver)
	rcv := opts.Library.MustByKind(cellib.KindReceiver)
	dummy := opts.Library.MustByKind(cellib.KindDummy)

	plan := &Plan{
		CircuitName:    c.Name,
		K:              p.K,
		Labels:         append([]int(nil), labels...),
		Metrics:        m,
		BiasBusVoltage: opts.BiasBusVoltage,
	}
	plan.Planes = make([]PlaneSummary, p.K)
	for k := range plan.Planes {
		plan.Planes[k].Plane = k
	}
	for i, lb := range labels {
		ps := &plan.Planes[lb]
		ps.Gates++
		ps.Bias += p.Bias[i]
		ps.Area += p.Area[i]
	}

	// Coupler chains: a connection from plane a to plane b is realized as
	// hops a→a±1→…→b. The driver half sits on the sending plane of each
	// hop, the receiver half on the receiving plane.
	for ei, e := range p.Edges {
		a, b := labels[e[0]], labels[e[1]]
		if a == b {
			continue
		}
		stepDir := 1
		if b < a {
			stepDir = -1
		}
		hops := 0
		for q := a; q != b; q += stepDir {
			hop := CouplerHop{Edge: ei, FromPlane: q, ToPlane: q + stepDir}
			plan.Hops = append(plan.Hops, hop)
			plan.Planes[q].Drivers++
			plan.Planes[q+stepDir].Receivers++
			hops++
		}
		if hops > plan.MaxHopsPerConnection {
			plan.MaxHopsPerConnection = hops
		}
	}
	for k := range plan.Planes {
		ps := &plan.Planes[k]
		ps.OverheadBias = float64(ps.Drivers)*drv.Bias + float64(ps.Receivers)*rcv.Bias
		ps.OverheadArea = float64(ps.Drivers)*drv.Area() + float64(ps.Receivers)*rcv.Area()
		plan.TotalCouplerArea += ps.OverheadArea
	}

	// Dummy insertion: after couplers, every plane must draw the same
	// current as the hungriest plane. The shortfall is burned in dummy
	// cells (each passes dummy.Bias mA).
	maxDraw := 0.0
	for k := range plan.Planes {
		if d := plan.Planes[k].Bias + plan.Planes[k].OverheadBias; d > maxDraw {
			maxDraw = d
		}
	}
	plan.SupplyCurrent = maxDraw
	for k := range plan.Planes {
		ps := &plan.Planes[k]
		short := maxDraw - (ps.Bias + ps.OverheadBias)
		if short <= 0 {
			continue
		}
		n := int(short / dummy.Bias)
		if float64(n)*dummy.Bias < short-1e-12 {
			n++ // round up so the plane can absorb the full shortfall
		}
		ps.DummyCells = n
		ps.DummyBias = short
		plan.TotalDummyBias += short
		da := float64(n) * dummy.Area()
		ps.OverheadArea += da
		plan.TotalDummyArea += da
	}
	return plan, nil
}

// StackVoltage returns the total voltage across the serial bias stack.
func (p *Plan) StackVoltage() float64 {
	return float64(p.K) * p.BiasBusVoltage
}

// SavedCurrent returns how much supply current serial biasing saves versus
// parallel biasing (B_cir − supply).
func (p *Plan) SavedCurrent() float64 {
	return p.Metrics.TotalBias - p.SupplyCurrent
}

// Validate checks the plan's electrical bookkeeping: every plane draws
// exactly the supply current (Kirchhoff-style series conservation), hop
// chains are plane-adjacent, and per-plane driver/receiver counts match the
// hop list.
func (p *Plan) Validate() error {
	drvCount := make([]int, p.K)
	rcvCount := make([]int, p.K)
	for _, h := range p.Hops {
		d := h.ToPlane - h.FromPlane
		if d != 1 && d != -1 {
			return fmt.Errorf("recycle: hop on edge %d spans non-adjacent planes %d→%d", h.Edge, h.FromPlane, h.ToPlane)
		}
		if h.FromPlane < 0 || h.FromPlane >= p.K || h.ToPlane < 0 || h.ToPlane >= p.K {
			return fmt.Errorf("recycle: hop on edge %d out of plane range", h.Edge)
		}
		drvCount[h.FromPlane]++
		rcvCount[h.ToPlane]++
	}
	for k, ps := range p.Planes {
		if ps.Drivers != drvCount[k] || ps.Receivers != rcvCount[k] {
			return fmt.Errorf("recycle: plane %d coupler counts (%d,%d) disagree with hop list (%d,%d)",
				k, ps.Drivers, ps.Receivers, drvCount[k], rcvCount[k])
		}
		draw := ps.Bias + ps.OverheadBias + ps.DummyBias
		if diff := draw - p.SupplyCurrent; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("recycle: plane %d draws %.9f mA, supply is %.9f mA", k, draw, p.SupplyCurrent)
		}
	}
	return nil
}

// ChainLengths returns a histogram of coupler chain lengths per crossing
// connection: hist[d] = number of connections realized with d hops (d ≥ 1).
func (p *Plan) ChainLengths() map[int]int {
	perEdge := make(map[int]int)
	for _, h := range p.Hops {
		perEdge[h.Edge]++
	}
	hist := make(map[int]int)
	for _, n := range perEdge {
		hist[n]++
	}
	return hist
}

// BusiestBoundary returns the plane boundary (k, k+1) carrying the most
// hops and that count. Returns (-1, 0) if there are no hops.
func (p *Plan) BusiestBoundary() (boundary, hops int) {
	if len(p.Hops) == 0 {
		return -1, 0
	}
	counts := make(map[int]int)
	for _, h := range p.Hops {
		b := h.FromPlane
		if h.ToPlane < h.FromPlane {
			b = h.ToPlane
		}
		counts[b]++
	}
	keys := make([]int, 0, len(counts))
	for b := range counts {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	boundary, hops = -1, 0
	for _, b := range keys {
		if counts[b] > hops {
			boundary, hops = b, counts[b]
		}
	}
	return boundary, hops
}
