package recycle

import (
	"fmt"

	"gpp/internal/cellib"
	"gpp/internal/netlist"
	"gpp/internal/partition"
)

// TrafficMatrix returns the K×K inter-plane connection matrix: t[a][b] is
// the number of directed connections from a gate on plane a to a gate on
// plane b (diagonal = intra-plane). Physical designers read this as
// boundary congestion: entries far from the diagonal are the expensive
// chained-coupler routes the paper's distance⁴ cost suppresses.
func TrafficMatrix(p *partition.Problem, labels []int) ([][]int, error) {
	if len(labels) != p.G {
		return nil, fmt.Errorf("recycle: %d labels for %d gates", len(labels), p.G)
	}
	t := make([][]int, p.K)
	for i := range t {
		t[i] = make([]int, p.K)
	}
	for _, e := range p.Edges {
		a, b := labels[e[0]], labels[e[1]]
		if a < 0 || a >= p.K || b < 0 || b >= p.K {
			return nil, fmt.Errorf("recycle: label outside [0,%d)", p.K)
		}
		t[a][b]++
	}
	return t, nil
}

// BiasWindow is the feasible supply-current interval for a serial stack
// whose gates tolerate a relative bias deviation of ±Tolerance before
// under- or over-biasing (Section III-B.1 of the paper: "some blocks may
// fail because of under-biasing or over-biasing").
type BiasWindow struct {
	Tolerance float64 // δ, relative
	// LoMA/HiMA bound the supply current that keeps every plane inside
	// its tolerance. Feasible reports Lo ≤ Hi.
	LoMA, HiMA float64
	Feasible   bool
	// WindowPct is the feasible window width relative to its center
	// (0 when infeasible) — the stack's operating margin.
	WindowPct float64
}

// BiasWindowWithoutDummies computes the supply window for the raw
// partition: every plane k is designed for B_k, so a common supply I works
// only if B_max·(1−δ) ≤ I ≤ B_min·(1+δ) — usually an empty interval,
// which is exactly why the paper inserts dummy structures.
func BiasWindowWithoutDummies(m *Metrics, tolerance float64) (BiasWindow, error) {
	if tolerance <= 0 || tolerance >= 1 {
		return BiasWindow{}, fmt.Errorf("recycle: tolerance %g outside (0,1)", tolerance)
	}
	bMin := m.PlaneBias[0]
	for _, b := range m.PlaneBias[1:] {
		if b < bMin {
			bMin = b
		}
	}
	w := BiasWindow{
		Tolerance: tolerance,
		LoMA:      m.BMax * (1 - tolerance),
		HiMA:      bMin * (1 + tolerance),
	}
	finish(&w)
	return w, nil
}

// BiasWindowWithDummies computes the supply window after dummy insertion:
// every plane is compensated to draw the plan's supply current, so the
// whole stack shares one design point and the window is the full ±δ.
func BiasWindowWithDummies(plan *Plan, tolerance float64) (BiasWindow, error) {
	if tolerance <= 0 || tolerance >= 1 {
		return BiasWindow{}, fmt.Errorf("recycle: tolerance %g outside (0,1)", tolerance)
	}
	w := BiasWindow{
		Tolerance: tolerance,
		LoMA:      plan.SupplyCurrent * (1 - tolerance),
		HiMA:      plan.SupplyCurrent * (1 + tolerance),
	}
	finish(&w)
	return w, nil
}

func finish(w *BiasWindow) {
	w.Feasible = w.LoMA <= w.HiMA
	if w.Feasible {
		center := (w.LoMA + w.HiMA) / 2
		if center > 0 {
			w.WindowPct = 100 * (w.HiMA - w.LoMA) / center
		}
	}
}

// JJStats counts Josephson junctions: the whole circuit, per plane, and
// the overhead a plan adds (couplers + dummies). JJ count is the standard
// complexity measure for SFQ chips.
type JJStats struct {
	Total    int   // logic JJs in the circuit
	PerPlane []int // logic JJs per plane
	Coupler  int   // JJs added by driver/receiver pairs
	Dummy    int   // JJs added by dummy structures
}

// CountJJs derives JJ statistics for a partitioned circuit (and its plan,
// when non-nil) using the library's per-cell JJ counts.
func CountJJs(c *netlist.Circuit, labels []int, plan *Plan, lib *cellib.Library) (*JJStats, error) {
	if lib == nil {
		lib = cellib.Default()
	}
	if len(labels) != c.NumGates() {
		return nil, fmt.Errorf("recycle: %d labels for %d gates", len(labels), c.NumGates())
	}
	k := 0
	for _, lb := range labels {
		if lb+1 > k {
			k = lb + 1
		}
	}
	st := &JJStats{PerPlane: make([]int, k)}
	for i, g := range c.Gates {
		cell, ok := lib.ByName(g.Cell)
		if !ok {
			return nil, fmt.Errorf("recycle: gate %s uses unknown cell %q", g.Name, g.Cell)
		}
		st.Total += cell.JJs
		if labels[i] < 0 {
			return nil, fmt.Errorf("recycle: negative label for gate %d", i)
		}
		st.PerPlane[labels[i]] += cell.JJs
	}
	if plan != nil {
		drv := lib.MustByKind(cellib.KindDriver)
		rcv := lib.MustByKind(cellib.KindReceiver)
		dmy := lib.MustByKind(cellib.KindDummy)
		st.Coupler = len(plan.Hops) * (drv.JJs + rcv.JJs)
		for _, ps := range plan.Planes {
			st.Dummy += ps.DummyCells * dmy.JJs
		}
	}
	return st, nil
}
