package recycle

import (
	"fmt"

	"gpp/internal/netlist"
	"gpp/internal/partition"
)

// PlaneBlock is one ground plane's extracted circuit block.
type PlaneBlock struct {
	Plane   int
	Circuit *netlist.Circuit
	// Receivers/Drivers count the coupler ports this block needs on its
	// boundaries (connections entering / leaving the plane). Chained hops
	// through the plane (for non-adjacent connections) are NOT included —
	// they are interconnect of the plan, not ports of the logic block.
	Receivers int
	Drivers   int
}

// PlaneNetlists splits a partitioned circuit into one standalone netlist
// per ground plane (names preserved; IDs re-densified per block), the
// deliverable each plane's physical design starts from.
func PlaneNetlists(c *netlist.Circuit, p *partition.Problem, labels []int) ([]PlaneBlock, error) {
	if c.NumGates() != p.G {
		return nil, fmt.Errorf("recycle: circuit has %d gates, problem %d", c.NumGates(), p.G)
	}
	if len(labels) != p.G {
		return nil, fmt.Errorf("recycle: %d labels for %d gates", len(labels), p.G)
	}
	blocks := make([]PlaneBlock, 0, p.K)
	for k := 0; k < p.K; k++ {
		selected := make([]bool, c.NumGates())
		any := false
		for i, lb := range labels {
			if lb == k {
				selected[i] = true
				any = true
			}
		}
		if !any {
			return nil, fmt.Errorf("recycle: plane %d is empty", k+1)
		}
		sub, _, bd, err := netlist.Subcircuit(c, fmt.Sprintf("%s_plane%d", c.Name, k+1), selected)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, PlaneBlock{
			Plane:     k,
			Circuit:   sub,
			Receivers: len(bd.In),
			Drivers:   len(bd.Out),
		})
	}
	return blocks, nil
}
