// Package recycle evaluates ground-plane partitions for current recycling
// and plans the physical realization: inter-plane inductive couplers, dummy
// bias structures, and the serial bias stack.
//
// The metrics here are exactly the columns of the paper's Tables I–III:
//
//	d ≤ x    fraction of connections whose plane distance |l_i1 − l_i2| ≤ x
//	B_max    largest per-plane bias current (= the external supply current)
//	I_comp   Σ_k (B_max − B_k), the current wasted in dummy structures,
//	         reported as a percentage of B_cir
//	A_max    largest per-plane gate area
//	A_FS     Σ_k (A_max − A_k) / A_cir, free (wasted) chip area percentage
package recycle

import (
	"fmt"
	"math"

	"gpp/internal/partition"
)

// Metrics summarizes the quality of one discrete partition.
type Metrics struct {
	K     int
	Gates int
	Edges int

	// DistHist[d] counts connections with plane distance exactly d,
	// d ∈ [0, K−1].
	DistHist []int

	// Bias per plane (mA) and area per plane (mm²), indexed by plane.
	PlaneBias []float64
	PlaneArea []float64

	TotalBias float64 // B_cir, mA
	TotalArea float64 // A_cir, mm²

	BMax        float64 // B_max, mA
	IComp       float64 // Σ_k (B_max − B_k), mA
	ICompPct    float64 // I_comp as % of B_cir
	AMax        float64 // A_max, mm²
	AFreePct    float64 // A_FS as % of A_cir
	EmptyPlanes int     // planes with no gates (a defect for recycling)
}

// Evaluate computes the metrics of a labeling for problem p. Labels are
// 0-based planes and must all lie in [0, K).
func Evaluate(p *partition.Problem, labels []int) (*Metrics, error) {
	if len(labels) != p.G {
		return nil, fmt.Errorf("recycle: %d labels for %d gates", len(labels), p.G)
	}
	m := &Metrics{
		K:         p.K,
		Gates:     p.G,
		Edges:     len(p.Edges),
		DistHist:  make([]int, p.K),
		PlaneBias: make([]float64, p.K),
		PlaneArea: make([]float64, p.K),
		TotalBias: p.TotalBias,
		TotalArea: p.TotalArea,
	}
	counts := make([]int, p.K)
	for i, lb := range labels {
		if lb < 0 || lb >= p.K {
			return nil, fmt.Errorf("recycle: gate %d has label %d outside [0,%d)", i, lb, p.K)
		}
		m.PlaneBias[lb] += p.Bias[i]
		m.PlaneArea[lb] += p.Area[i]
		counts[lb]++
	}
	for _, c := range counts {
		if c == 0 {
			m.EmptyPlanes++
		}
	}
	for _, e := range p.Edges {
		d := labels[e[0]] - labels[e[1]]
		if d < 0 {
			d = -d
		}
		m.DistHist[d]++
	}
	for k := 0; k < p.K; k++ {
		if m.PlaneBias[k] > m.BMax {
			m.BMax = m.PlaneBias[k]
		}
		if m.PlaneArea[k] > m.AMax {
			m.AMax = m.PlaneArea[k]
		}
	}
	m.IComp = float64(p.K)*m.BMax - m.TotalBias
	if m.TotalBias > 0 {
		m.ICompPct = 100 * m.IComp / m.TotalBias
	}
	if m.TotalArea > 0 {
		m.AFreePct = 100 * (float64(p.K)*m.AMax - m.TotalArea) / m.TotalArea
	}
	return m, nil
}

// DistLEPct returns the percentage of connections with plane distance ≤ d.
// For d ≥ K−1 it returns 100 (all connections). Circuits with no
// connections report 100.
func (m *Metrics) DistLEPct(d int) float64 {
	if m.Edges == 0 {
		return 100
	}
	if d >= m.K-1 {
		return 100
	}
	n := 0
	for i := 0; i <= d && i < len(m.DistHist); i++ {
		n += m.DistHist[i]
	}
	return 100 * float64(n) / float64(m.Edges)
}

// HalfKDistPct returns the paper's "d ≤ ⌊K/2⌋" column.
func (m *Metrics) HalfKDistPct() float64 {
	return m.DistLEPct(m.K / 2)
}

// CrossingCount returns the number of connections with distance ≥ 1 (each
// needs at least one coupler pair) and the total coupler pairs needed
// (distance d needs d pairs, one per plane boundary crossed).
func (m *Metrics) CrossingCount() (crossings, couplerPairs int) {
	for d := 1; d < len(m.DistHist); d++ {
		crossings += m.DistHist[d]
		couplerPairs += d * m.DistHist[d]
	}
	return crossings, couplerPairs
}

// BalanceCheck verifies the metric identities that must hold for any valid
// evaluation: Σ B_k = B_cir, Σ A_k = A_cir, I_comp = K·B_max − B_cir ≥ 0,
// and the distance histogram sums to |E|.
func (m *Metrics) BalanceCheck() error {
	var bSum, aSum float64
	for k := 0; k < m.K; k++ {
		bSum += m.PlaneBias[k]
		aSum += m.PlaneArea[k]
	}
	if !closeEnough(bSum, m.TotalBias) {
		return fmt.Errorf("recycle: plane bias sums to %g, circuit total is %g", bSum, m.TotalBias)
	}
	if !closeEnough(aSum, m.TotalArea) {
		return fmt.Errorf("recycle: plane area sums to %g, circuit total is %g", aSum, m.TotalArea)
	}
	if m.IComp < -1e-9 {
		return fmt.Errorf("recycle: negative I_comp %g", m.IComp)
	}
	n := 0
	for _, c := range m.DistHist {
		n += c
	}
	if n != m.Edges {
		return fmt.Errorf("recycle: distance histogram sums to %d, edge count is %d", n, m.Edges)
	}
	return nil
}

func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}
