package recycle

import (
	"math"
	"testing"

	"gpp/internal/cellib"
	"gpp/internal/gen"
	"gpp/internal/partition"
)

func TestTrafficMatrix(t *testing.T) {
	p := mkProblem(t, 5, 3, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}}, 1)
	labels := []int{0, 0, 1, 2, 2}
	tm, err := TrafficMatrix(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	// (0,1): 0→0; (1,2): 0→1; (2,3): 1→2; (3,4): 2→2; (0,4): 0→2.
	want := [][]int{{1, 1, 1}, {0, 0, 1}, {0, 0, 1}}
	for a := range want {
		for b := range want[a] {
			if tm[a][b] != want[a][b] {
				t.Errorf("t[%d][%d] = %d, want %d", a, b, tm[a][b], want[a][b])
			}
		}
	}
	// Sum equals the edge count.
	total := 0
	for _, row := range tm {
		for _, v := range row {
			total += v
		}
	}
	if total != p.G-0 && total != len(p.Edges) {
		t.Errorf("matrix sums to %d, want %d", total, len(p.Edges))
	}
}

func TestTrafficMatrixErrors(t *testing.T) {
	p := mkProblem(t, 4, 2, [][2]int{{0, 1}}, 2)
	if _, err := TrafficMatrix(p, []int{0}); err == nil {
		t.Error("short labels accepted")
	}
	if _, err := TrafficMatrix(p, []int{0, 9, 0, 0}); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestBiasWindowWithoutDummiesUsuallyInfeasible(t *testing.T) {
	// Planes at 80, 100, 120 mA with ±5% tolerance: supply must be ≥ 114
	// and ≤ 84 — empty. This is the paper's argument for dummies.
	m := &Metrics{K: 3, PlaneBias: []float64{80, 100, 120}, BMax: 120}
	w, err := BiasWindowWithoutDummies(m, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if w.Feasible {
		t.Errorf("imbalanced stack reported feasible: %+v", w)
	}
	// Nearly balanced planes with a generous tolerance: feasible.
	m2 := &Metrics{K: 3, PlaneBias: []float64{98, 100, 102}, BMax: 102}
	w2, err := BiasWindowWithoutDummies(m2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Feasible {
		t.Errorf("balanced stack reported infeasible: %+v", w2)
	}
	if w2.LoMA >= w2.HiMA || w2.WindowPct <= 0 {
		t.Errorf("window malformed: %+v", w2)
	}
}

func TestBiasWindowWithDummies(t *testing.T) {
	c, p, labels := planFixture(t, "KSA8", 5)
	plan, err := BuildPlan(c, p, labels, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := BiasWindowWithDummies(plan, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Feasible {
		t.Fatal("compensated stack must be feasible")
	}
	if math.Abs(w.WindowPct-20) > 1e-9 {
		t.Errorf("±10%% tolerance should give a 20%% window, got %.2f%%", w.WindowPct)
	}
	if math.Abs(w.LoMA-plan.SupplyCurrent*0.9) > 1e-9 {
		t.Errorf("Lo = %g", w.LoMA)
	}
}

func TestBiasWindowValidation(t *testing.T) {
	m := &Metrics{K: 2, PlaneBias: []float64{1, 1}, BMax: 1}
	for _, tol := range []float64{0, -0.1, 1, 1.5} {
		if _, err := BiasWindowWithoutDummies(m, tol); err == nil {
			t.Errorf("tolerance %g accepted", tol)
		}
	}
}

func TestCountJJs(t *testing.T) {
	c, p, labels := planFixture(t, "KSA4", 4)
	plan, err := BuildPlan(c, p, labels, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := CountJJs(c, labels, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total <= 0 {
		t.Fatal("no JJs counted")
	}
	sum := 0
	for _, n := range st.PerPlane {
		sum += n
	}
	if sum != st.Total {
		t.Errorf("per-plane JJs sum to %d, total %d", sum, st.Total)
	}
	lib := cellib.Default()
	drv := lib.MustByKind(cellib.KindDriver)
	rcv := lib.MustByKind(cellib.KindReceiver)
	if st.Coupler != len(plan.Hops)*(drv.JJs+rcv.JJs) {
		t.Errorf("coupler JJs = %d", st.Coupler)
	}
	if st.Dummy < 0 {
		t.Error("negative dummy JJs")
	}
	// Note: on a circuit this small the coupler overhead legitimately
	// exceeds the logic JJ count — recycling pays off at scale, not on
	// 79-gate toys — so no upper bound is asserted here.
}

func TestCountJJsErrors(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CountJJs(c, []int{0}, nil, nil); err == nil {
		t.Error("short labels accepted")
	}
	labels := make([]int, c.NumGates())
	bad := c.Clone()
	bad.Gates[0].Cell = "NOSUCH"
	if _, err := CountJJs(bad, labels, nil, nil); err == nil {
		t.Error("unknown cell accepted")
	}
	_ = partition.DefaultCoeffs()
}

func TestPlaneNetlists(t *testing.T) {
	c, p, labels := planFixture(t, "KSA8", 5)
	blocks, err := PlaneNetlists(c, p, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 5 {
		t.Fatalf("%d blocks", len(blocks))
	}
	totalGates, totalEdges, totalRecv, totalDrv := 0, 0, 0, 0
	var totalBias float64
	for _, b := range blocks {
		if err := b.Circuit.Validate(); err != nil {
			t.Fatalf("plane %d invalid: %v", b.Plane, err)
		}
		totalGates += b.Circuit.NumGates()
		totalEdges += b.Circuit.NumEdges()
		totalRecv += b.Receivers
		totalDrv += b.Drivers
		totalBias += b.Circuit.TotalBias()
	}
	if totalGates != c.NumGates() {
		t.Errorf("blocks hold %d gates, circuit has %d", totalGates, c.NumGates())
	}
	m, err := Evaluate(p, labels)
	if err != nil {
		t.Fatal(err)
	}
	crossings, _ := m.CrossingCount()
	if totalEdges+crossings != c.NumEdges() {
		t.Errorf("intra %d + crossing %d != total %d", totalEdges, crossings, c.NumEdges())
	}
	if totalRecv != crossings || totalDrv != crossings {
		t.Errorf("ports (%d in, %d out) vs %d crossings", totalRecv, totalDrv, crossings)
	}
	if diff := totalBias - c.TotalBias(); diff > 1e-9 || diff < -1e-9 {
		t.Error("bias not conserved across blocks")
	}
}

func TestPlaneNetlistsEmptyPlane(t *testing.T) {
	c, p, _ := planFixture(t, "KSA4", 4)
	labels := make([]int, c.NumGates()) // all on plane 0
	if _, err := PlaneNetlists(c, p, labels); err == nil {
		t.Error("empty plane accepted")
	}
}
