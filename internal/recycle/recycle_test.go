package recycle

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gpp/internal/partition"
)

func mkProblem(t *testing.T, g, k int, edges [][2]int, seed int64) *partition.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bias := make([]float64, g)
	area := make([]float64, g)
	for i := range bias {
		bias[i] = 0.5 + rng.Float64()
		area[i] = 0.002 + 0.004*rng.Float64()
	}
	p, err := partition.NewProblem("t", k, bias, area, edges)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEvaluateHandComputed(t *testing.T) {
	p, err := partition.NewProblem("hand", 3,
		[]float64{2, 4, 6, 8},
		[]float64{0.2, 0.4, 0.6, 0.8},
		[][2]int{{0, 1}, {1, 2}, {0, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Planes: gate0→0, gate1→0, gate2→1, gate3→2.
	m, err := Evaluate(p, []int{0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Distances: (0,1)=0, (1,2)=1, (0,3)=2, (2,3)=1 → hist [1,2,1].
	if m.DistHist[0] != 1 || m.DistHist[1] != 2 || m.DistHist[2] != 1 {
		t.Errorf("hist = %v", m.DistHist)
	}
	if got := m.DistLEPct(0); math.Abs(got-25) > 1e-9 {
		t.Errorf("d≤0 = %g%%", got)
	}
	if got := m.DistLEPct(1); math.Abs(got-75) > 1e-9 {
		t.Errorf("d≤1 = %g%%", got)
	}
	if got := m.DistLEPct(2); got != 100 {
		t.Errorf("d≤2 = %g%%", got)
	}
	// B: plane0 = 6, plane1 = 6, plane2 = 8 → Bmax = 8, Icomp = 24−20 = 4,
	// pct = 20%.
	if m.BMax != 8 {
		t.Errorf("BMax = %g", m.BMax)
	}
	if math.Abs(m.IComp-4) > 1e-9 || math.Abs(m.ICompPct-20) > 1e-9 {
		t.Errorf("Icomp = %g (%g%%)", m.IComp, m.ICompPct)
	}
	// A: 0.6, 0.6, 0.8 → Amax 0.8, AFS = (2.4−2)/2 = 20%.
	if math.Abs(m.AMax-0.8) > 1e-9 || math.Abs(m.AFreePct-20) > 1e-9 {
		t.Errorf("Amax = %g, AFS = %g%%", m.AMax, m.AFreePct)
	}
	if m.EmptyPlanes != 0 {
		t.Errorf("EmptyPlanes = %d", m.EmptyPlanes)
	}
	if err := m.BalanceCheck(); err != nil {
		t.Errorf("BalanceCheck: %v", err)
	}
}

func TestEvaluateErrors(t *testing.T) {
	p := mkProblem(t, 4, 2, [][2]int{{0, 1}}, 1)
	if _, err := Evaluate(p, []int{0, 1}); err == nil || !strings.Contains(err.Error(), "labels") {
		t.Errorf("short labels: %v", err)
	}
	if _, err := Evaluate(p, []int{0, 1, 2, 0}); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-range label: %v", err)
	}
}

func TestEmptyPlaneDetection(t *testing.T) {
	p := mkProblem(t, 4, 3, nil, 2)
	m, err := Evaluate(p, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.EmptyPlanes != 1 {
		t.Errorf("EmptyPlanes = %d, want 1", m.EmptyPlanes)
	}
}

func TestDistLEPctNoEdges(t *testing.T) {
	p := mkProblem(t, 4, 2, nil, 3)
	m, err := Evaluate(p, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.DistLEPct(0) != 100 || m.HalfKDistPct() != 100 {
		t.Error("edgeless circuit should report 100%")
	}
}

func TestCrossingCount(t *testing.T) {
	p := mkProblem(t, 6, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}, 4)
	// labels: 0,0,1,3,3,0 → distances 0,1,2,0,3
	m, err := Evaluate(p, []int{0, 0, 1, 3, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	crossings, pairs := m.CrossingCount()
	if crossings != 3 {
		t.Errorf("crossings = %d, want 3", crossings)
	}
	if pairs != 1+2+3 {
		t.Errorf("pairs = %d, want 6", pairs)
	}
}

// Property: the metric identities hold for arbitrary random labelings.
func TestMetricIdentitiesProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%5) + 2
		g := 30
		rng := rand.New(rand.NewSource(seed))
		var edges [][2]int
		for i := 0; i < 50; i++ {
			a, b := rng.Intn(g), rng.Intn(g)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		p := mkProblem(t, g, k, edges, seed)
		labels := make([]int, g)
		for i := range labels {
			labels[i] = rng.Intn(k)
		}
		m, err := Evaluate(p, labels)
		if err != nil {
			return false
		}
		if m.BalanceCheck() != nil {
			return false
		}
		// I_comp = K·B_max − B_cir and is non-negative.
		if math.Abs(m.IComp-(float64(k)*m.BMax-m.TotalBias)) > 1e-9 {
			return false
		}
		if m.IComp < -1e-9 {
			return false
		}
		// DistLEPct is monotone in d and reaches 100 at K−1.
		prev := -1.0
		for d := 0; d < k; d++ {
			v := m.DistLEPct(d)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return m.DistLEPct(k-1) == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
