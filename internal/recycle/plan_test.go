package recycle

import (
	"math"
	"strings"
	"testing"

	"gpp/internal/cellib"
	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/partition"
)

// planFixture builds a benchmark circuit, partitions it deterministically,
// and returns everything BuildPlan needs.
func planFixture(t *testing.T, name string, k int) (*netlist.Circuit, *partition.Problem, []int) {
	t.Helper()
	c, err := gen.Benchmark(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 800})
	if err != nil {
		t.Fatal(err)
	}
	return c, p, res.Labels
}

func TestBuildPlanValidates(t *testing.T) {
	c, p, labels := planFixture(t, "KSA4", 4)
	plan, err := BuildPlan(c, p, labels, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.K != 4 || plan.CircuitName != "KSA4" {
		t.Errorf("plan header: %+v", plan)
	}
	if plan.BiasBusVoltage != 2.5e-3 {
		t.Errorf("default bus voltage = %g", plan.BiasBusVoltage)
	}
	if got := plan.StackVoltage(); math.Abs(got-4*2.5e-3) > 1e-12 {
		t.Errorf("stack voltage = %g", got)
	}
}

func TestPlanEveryPlaneDrawsSupply(t *testing.T) {
	c, p, labels := planFixture(t, "KSA8", 5)
	plan, err := BuildPlan(c, p, labels, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k, ps := range plan.Planes {
		draw := ps.Bias + ps.OverheadBias + ps.DummyBias
		if math.Abs(draw-plan.SupplyCurrent) > 1e-9 {
			t.Errorf("plane %d draws %g, supply is %g", k, draw, plan.SupplyCurrent)
		}
	}
	// Serial biasing must beat parallel biasing on this benchmark.
	if plan.SavedCurrent() <= 0 {
		t.Errorf("no supply current saved: supply %g vs total %g", plan.SupplyCurrent, plan.Metrics.TotalBias)
	}
}

func TestPlanCouplerAccounting(t *testing.T) {
	c, p, labels := planFixture(t, "KSA4", 5)
	plan, err := BuildPlan(c, p, labels, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Hop count must equal Σ_d d·hist[d].
	wantHops := 0
	for d := 1; d < len(plan.Metrics.DistHist); d++ {
		wantHops += d * plan.Metrics.DistHist[d]
	}
	if len(plan.Hops) != wantHops {
		t.Errorf("%d hops, want %d", len(plan.Hops), wantHops)
	}
	_, pairs := plan.Metrics.CrossingCount()
	if pairs != wantHops {
		t.Errorf("CrossingCount pairs %d != %d", pairs, wantHops)
	}
	// Chain length histogram sums to the crossing count.
	crossings, _ := plan.Metrics.CrossingCount()
	total := 0
	maxLen := 0
	for hops, n := range plan.ChainLengths() {
		total += n
		if hops > maxLen {
			maxLen = hops
		}
	}
	if total != crossings {
		t.Errorf("chain histogram sums to %d, want %d", total, crossings)
	}
	if maxLen != plan.MaxHopsPerConnection {
		t.Errorf("max chain %d, plan says %d", maxLen, plan.MaxHopsPerConnection)
	}
	// Every hop crosses exactly one boundary.
	for _, h := range plan.Hops {
		if d := h.ToPlane - h.FromPlane; d != 1 && d != -1 {
			t.Fatalf("hop %+v crosses %d boundaries", h, d)
		}
	}
}

func TestPlanDummyRounding(t *testing.T) {
	c, p, labels := planFixture(t, "MULT4", 5)
	plan, err := BuildPlan(c, p, labels, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lib := cellib.Default()
	dummy := lib.MustByKind(cellib.KindDummy)
	for k, ps := range plan.Planes {
		if ps.DummyBias < 0 {
			t.Errorf("plane %d has negative dummy bias", k)
		}
		// Enough dummy cells to absorb the shortfall.
		if float64(ps.DummyCells)*dummy.Bias < ps.DummyBias-1e-9 {
			t.Errorf("plane %d: %d dummies cannot pass %g mA", k, ps.DummyCells, ps.DummyBias)
		}
		// Not grossly over-provisioned (at most one extra cell).
		if ps.DummyCells > 0 && float64(ps.DummyCells-1)*dummy.Bias >= ps.DummyBias+1e-9 {
			t.Errorf("plane %d: %d dummies over-provisioned for %g mA", k, ps.DummyCells, ps.DummyBias)
		}
	}
}

func TestPlanBusiestBoundary(t *testing.T) {
	c, p, labels := planFixture(t, "KSA8", 5)
	plan, err := BuildPlan(c, p, labels, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, hops := plan.BusiestBoundary()
	if b < 0 || b >= plan.K-1 {
		t.Fatalf("boundary = %d", b)
	}
	// Recount by hand.
	count := 0
	for _, h := range plan.Hops {
		lo := h.FromPlane
		if h.ToPlane < lo {
			lo = h.ToPlane
		}
		if lo == b {
			count++
		}
	}
	if count != hops {
		t.Errorf("busiest boundary recount %d != %d", count, hops)
	}
}

func TestPlanNoHops(t *testing.T) {
	// All gates on one plane (K=2, everything on plane 0): no hops, and
	// BusiestBoundary reports none.
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, c.NumGates())
	plan, err := BuildPlan(c, p, labels, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Hops) != 0 {
		t.Errorf("%d hops for a single-plane labeling", len(plan.Hops))
	}
	if b, n := plan.BusiestBoundary(); b != -1 || n != 0 {
		t.Errorf("BusiestBoundary = %d, %d", b, n)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPlanMismatchedCircuit(t *testing.T) {
	c, p, labels := planFixture(t, "KSA4", 4)
	other, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPlan(other, p, labels, PlanOptions{}); err == nil ||
		!strings.Contains(err.Error(), "gates") {
		t.Errorf("mismatched circuit accepted: %v", err)
	}
	_ = c
}

func TestBuildPlanCustomVoltage(t *testing.T) {
	c, p, labels := planFixture(t, "KSA4", 4)
	plan, err := BuildPlan(c, p, labels, PlanOptions{BiasBusVoltage: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	if plan.BiasBusVoltage != 5e-3 {
		t.Errorf("voltage = %g", plan.BiasBusVoltage)
	}
}

func TestPlanValidateDetectsCorruption(t *testing.T) {
	c, p, labels := planFixture(t, "KSA4", 4)
	plan, err := BuildPlan(c, p, labels, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Hops) == 0 {
		t.Skip("no hops to corrupt")
	}
	plan.Hops[0].ToPlane = plan.Hops[0].FromPlane + 2
	if err := plan.Validate(); err == nil {
		t.Error("corrupted hop not detected")
	}
}
