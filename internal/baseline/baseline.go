// Package baseline implements comparison partitioners for the ablation
// experiments. The paper argues ground plane partitioning cannot be cast as
// classic K-way min-cut partitioning because of the distance-weighted
// connection cost and the twin balance constraints; these baselines make
// that comparison concrete:
//
//   - Random: uniform random assignment (the floor).
//   - LayeredGreedy: topological-order slicing into K bias-balanced chunks
//     — the "obvious" heuristic exploiting SFQ dataflow direction.
//   - GreedyRefine: random start followed by the move-based refinement
//     used as the paper-algorithm post-pass (an FM-flavored local search
//     on the discrete objective).
//   - Anneal: simulated annealing on the same discrete objective (a
//     strong but slow reference point).
//
// All baselines optimize or are scored by the same discrete objective
// c1·F1 + c2·F2 + c3·F3 used by the core algorithm, so results are directly
// comparable.
package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"gpp/internal/partition"
)

// Random assigns every gate to a uniformly random plane.
func Random(p *partition.Problem, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int, p.G)
	for i := range labels {
		labels[i] = rng.Intn(p.K)
	}
	return labels
}

// LayeredGreedy orders gates topologically (data edges define the order;
// falls back to index order on cyclic inputs) and slices the order into K
// consecutive chunks with equal bias-current targets. Because SFQ dataflow
// is pipelined front-to-back, consecutive chunks naturally keep most
// connections within a plane or across one boundary.
func LayeredGreedy(p *partition.Problem) []int {
	order := topoOrder(p)
	labels := make([]int, p.G)
	target := p.TotalBias / float64(p.K)
	plane, acc := 0, 0.0
	for _, g := range order {
		if plane < p.K-1 && acc >= target*float64(plane+1) {
			plane++
		}
		labels[g] = plane
		acc += p.Bias[g]
	}
	return labels
}

func topoOrder(p *partition.Problem) []int {
	indeg := make([]int, p.G)
	succ := make([][]int32, p.G)
	for _, e := range p.Edges {
		indeg[e[1]]++
		succ[e[0]] = append(succ[e[0]], e[1])
	}
	queue := make([]int, 0, p.G)
	for i := 0; i < p.G; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, p.G)
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		order = append(order, g)
		for _, s := range succ[g] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, int(s))
			}
		}
	}
	if len(order) != p.G {
		order = order[:0]
		for i := 0; i < p.G; i++ {
			order = append(order, i)
		}
	}
	return order
}

// GreedyRefine runs the move-based refinement from a random start.
func GreedyRefine(p *partition.Problem, c partition.Coeffs, seed int64, passes int) []int {
	labels := Random(p, seed)
	p.Refine(labels, c, passes)
	return labels
}

// AnnealOptions configures Anneal.
type AnnealOptions struct {
	Coeffs partition.Coeffs
	Seed   int64
	// Moves is the total number of proposed single-gate moves; default
	// 200·G.
	Moves int
	// T0 and T1 are the geometric temperature schedule endpoints relative
	// to the initial cost scale; defaults 0.1 and 1e-5.
	T0, T1 float64
}

// Anneal minimizes the discrete objective with single-gate-move simulated
// annealing under a geometric cooling schedule.
func Anneal(p *partition.Problem, opts AnnealOptions) ([]int, error) {
	if opts.Coeffs == (partition.Coeffs{}) {
		opts.Coeffs = partition.DefaultCoeffs()
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Moves <= 0 {
		opts.Moves = 200 * p.G
	}
	if opts.T0 <= 0 {
		opts.T0 = 0.1
	}
	if opts.T1 <= 0 {
		opts.T1 = 1e-5
	}
	if opts.T1 >= opts.T0 {
		return nil, fmt.Errorf("baseline: annealing needs T1 < T0, got %g ≥ %g", opts.T1, opts.T0)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	labels := Random(p, opts.Seed)

	// Incremental state, mirroring partition.Refine.
	adj := make([][]int32, p.G)
	for _, e := range p.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	bk := make([]float64, p.K)
	ak := make([]float64, p.K)
	for i, lb := range labels {
		bk[lb] += p.Bias[i]
		ak[lb] += p.Area[i]
	}
	pow4 := func(x float64) float64 { x *= x; return x * x }
	c := opts.Coeffs

	moveDelta := func(i, to int) float64 {
		from := labels[i]
		var dWire float64
		for _, j := range adj[i] {
			lj := float64(labels[j])
			dWire += pow4(float64(to)-lj) - pow4(float64(from)-lj)
		}
		d1 := c.C1 * dWire / p.N1
		bi, ai := p.Bias[i], p.Area[i]
		bp := bk[from] - p.MeanBias
		bq := bk[to] - p.MeanBias
		d2 := c.C2 * ((bp-bi)*(bp-bi) + (bq+bi)*(bq+bi) - bp*bp - bq*bq) / (float64(p.K) * p.N2)
		ap := ak[from] - p.MeanArea
		aq := ak[to] - p.MeanArea
		d3 := c.C3 * ((ap-ai)*(ap-ai) + (aq+ai)*(aq+ai) - ap*ap - aq*aq) / (float64(p.K) * p.N3)
		return d1 + d2 + d3
	}

	cool := math.Pow(opts.T1/opts.T0, 1/float64(opts.Moves))
	t := opts.T0
	for m := 0; m < opts.Moves; m++ {
		i := rng.Intn(p.G)
		to := rng.Intn(p.K)
		if to == labels[i] {
			t *= cool
			continue
		}
		d := moveDelta(i, to)
		if d <= 0 || rng.Float64() < math.Exp(-d/t) {
			from := labels[i]
			bk[from] -= p.Bias[i]
			ak[from] -= p.Area[i]
			bk[to] += p.Bias[i]
			ak[to] += p.Area[i]
			labels[i] = to
		}
		t *= cool
	}
	return labels, nil
}
