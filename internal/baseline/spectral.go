package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gpp/internal/partition"
)

// Spectral implements a spectral-ordering baseline: the gates are embedded
// on a line by (an approximation of) the Fiedler vector of the connection
// graph's Laplacian, then the line is cut into K consecutive chunks with
// equal bias targets. Because the Fiedler embedding places strongly
// connected gates near each other, consecutive chunks concentrate
// connections within and between neighboring planes — the same objective
// the paper's distance-weighted F1 encodes, reached by classic means.
//
// The Fiedler vector is approximated with power iteration on a shifted
// Laplacian (deflating the constant eigenvector), which needs only the
// standard library. Disconnected graphs are handled by the deflation (the
// iteration converges to some low-frequency mode; chunking remains valid).
func Spectral(p *partition.Problem, iters int, seed int64) ([]int, error) {
	if iters <= 0 {
		iters = 200
	}
	n := p.G
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty problem")
	}
	// Degree and adjacency.
	deg := make([]float64, n)
	adj := make([][]int32, n)
	for _, e := range p.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
		deg[e[0]]++
		deg[e[1]]++
	}
	maxDeg := 0.0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Power iteration on M = (2·maxDeg)·I − L, whose dominant eigenvectors
	// are L's smallest. Deflate the all-ones vector each step so the
	// iteration converges to the Fiedler direction.
	shift := 2*maxDeg + 1
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	y := make([]float64, n)
	for it := 0; it < iters; it++ {
		// y = (shift·I − L)·x = shift·x − deg*x + Σ_adj x.
		for i := 0; i < n; i++ {
			s := (shift - deg[i]) * x[i]
			for _, j := range adj[i] {
				s += x[j]
			}
			y[i] = s
		}
		// Deflate constant component and normalize.
		var mean float64
		for _, v := range y {
			mean += v
		}
		mean /= float64(n)
		var norm float64
		for i := range y {
			y[i] -= mean
			norm += y[i] * y[i]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-30 {
			// Degenerate (e.g. edgeless graph): fall back to index order.
			for i := range x {
				x[i] = float64(i)
			}
			break
		}
		for i := range y {
			y[i] /= norm
		}
		x, y = y, x
	}

	// Order gates by embedding coordinate and slice by cumulative bias.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return x[order[a]] < x[order[b]] })
	labels := make([]int, n)
	target := p.TotalBias / float64(p.K)
	plane, acc := 0, 0.0
	for _, g := range order {
		if plane < p.K-1 && acc >= target*float64(plane+1) {
			plane++
		}
		labels[g] = plane
		acc += p.Bias[g]
	}
	return labels, nil
}
