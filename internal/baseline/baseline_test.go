package baseline

import (
	"math/rand"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/partition"
)

func benchProblem(t *testing.T, name string, k int) *partition.Problem {
	t.Helper()
	c, err := gen.Benchmark(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func checkLabels(t *testing.T, p *partition.Problem, labels []int) {
	t.Helper()
	if len(labels) != p.G {
		t.Fatalf("%d labels for %d gates", len(labels), p.G)
	}
	for i, lb := range labels {
		if lb < 0 || lb >= p.K {
			t.Fatalf("label[%d] = %d outside [0,%d)", i, lb, p.K)
		}
	}
}

func TestRandomLabels(t *testing.T) {
	p := benchProblem(t, "KSA4", 5)
	labels := Random(p, 7)
	checkLabels(t, p, labels)
	// Deterministic per seed.
	labels2 := Random(p, 7)
	for i := range labels {
		if labels[i] != labels2[i] {
			t.Fatal("Random not deterministic for fixed seed")
		}
	}
	// All planes used (overwhelmingly likely for 79 gates on 5 planes).
	used := make(map[int]bool)
	for _, lb := range labels {
		used[lb] = true
	}
	if len(used) != 5 {
		t.Errorf("random labeling used %d planes", len(used))
	}
}

func TestLayeredGreedyRespectsTopoOrder(t *testing.T) {
	p := benchProblem(t, "KSA8", 5)
	labels := LayeredGreedy(p)
	checkLabels(t, p, labels)
	// Along every edge the plane index may only stay or grow when walking
	// with the dataflow... not exactly (topo order interleaves), but the
	// plane of a successor can never be smaller by more than the plane
	// width of one chunk boundary crossing backwards. The robust property:
	// plane indexes are monotone along the topological order used, which
	// implies every plane is a contiguous chunk. Verify contiguity by
	// checking per-plane bias is within a factor of the target.
	bias, _ := p.PlaneTotals(labels)
	target := p.TotalBias / float64(p.K)
	for k, b := range bias {
		if b > 2.5*target {
			t.Errorf("plane %d bias %.1f far above target %.1f", k, b, target)
		}
	}
	// All planes non-empty.
	counts := make([]int, p.K)
	for _, lb := range labels {
		counts[lb]++
	}
	for k, c := range counts {
		if c == 0 {
			t.Errorf("plane %d empty", k)
		}
	}
}

func TestLayeredGreedyBeatsRandomOnWireCost(t *testing.T) {
	p := benchProblem(t, "KSA8", 5)
	c := partition.DefaultCoeffs()
	greedy := p.DiscreteCost(LayeredGreedy(p), c)
	random := p.DiscreteCost(Random(p, 3), c)
	if greedy.F1 >= random.F1 {
		t.Errorf("layered greedy F1 %g not better than random %g", greedy.F1, random.F1)
	}
}

func TestGreedyRefineImprovesOnRandom(t *testing.T) {
	p := benchProblem(t, "KSA8", 5)
	c := partition.DefaultCoeffs()
	seed := int64(5)
	random := p.DiscreteCost(Random(p, seed), c).Total
	refined := p.DiscreteCost(GreedyRefine(p, c, seed, 10), c).Total
	if refined >= random {
		t.Errorf("greedy refine %g did not improve on random %g", refined, random)
	}
}

func TestAnnealImprovesOnRandom(t *testing.T) {
	p := benchProblem(t, "KSA4", 5)
	c := partition.DefaultCoeffs()
	labels, err := Anneal(p, AnnealOptions{Coeffs: c, Seed: 2, Moves: 40 * p.G})
	if err != nil {
		t.Fatal(err)
	}
	checkLabels(t, p, labels)
	annealed := p.DiscreteCost(labels, c).Total
	random := p.DiscreteCost(Random(p, 2), c).Total
	if annealed >= random {
		t.Errorf("anneal %g did not improve on random %g", annealed, random)
	}
}

func TestAnnealDefaultsAndDeterminism(t *testing.T) {
	p := benchProblem(t, "KSA4", 4)
	a, err := Anneal(p, AnnealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(p, AnnealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("anneal not deterministic with default options")
		}
	}
}

func TestAnnealBadSchedule(t *testing.T) {
	p := benchProblem(t, "KSA4", 4)
	if _, err := Anneal(p, AnnealOptions{T0: 1e-6, T1: 1e-3}); err == nil {
		t.Error("inverted temperature schedule accepted")
	}
}

func TestAnnealIncrementalStateConsistent(t *testing.T) {
	// The annealer maintains plane totals incrementally; its final labels
	// must agree with a from-scratch evaluation (no drift).
	p := benchProblem(t, "MULT4", 5)
	labels, err := Anneal(p, AnnealOptions{Seed: 3, Moves: 20 * p.G})
	if err != nil {
		t.Fatal(err)
	}
	bias, area := p.PlaneTotals(labels)
	var bSum, aSum float64
	for k := 0; k < p.K; k++ {
		bSum += bias[k]
		aSum += area[k]
	}
	if diff := bSum - p.TotalBias; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("bias sum %g != circuit total %g", bSum, p.TotalBias)
	}
	if diff := aSum - p.TotalArea; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("area sum %g != circuit total %g", aSum, p.TotalArea)
	}
}

func TestTopoOrderFallbackOnCycle(t *testing.T) {
	// A cyclic "circuit" (possible via hand-built problems): LayeredGreedy
	// must still produce a full, in-range labeling via index order.
	bias := []float64{1, 1, 1, 1}
	area := []float64{1, 1, 1, 1}
	p, err := partition.NewProblem("cyc", 2, bias, area, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	labels := LayeredGreedy(p)
	checkLabels(t, p, labels)
}

func TestBaselinesComparableScale(t *testing.T) {
	// Sanity: on a mid-size circuit, gradient descent beats random and is
	// in the same league as annealing on the shared objective — the
	// relationship the ablation table reports.
	p := benchProblem(t, "MULT4", 5)
	c := partition.DefaultCoeffs()
	gd, err := p.Solve(partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gdCost := p.DiscreteCost(gd.Labels, c).Total
	rnd := p.DiscreteCost(Random(p, 1), c).Total
	if gdCost >= rnd {
		t.Errorf("gradient descent %g not better than random %g", gdCost, rnd)
	}
}

func TestRandomSpreadAcrossSeeds(t *testing.T) {
	p := benchProblem(t, "KSA4", 3)
	rng := rand.New(rand.NewSource(1))
	_ = rng
	diff := false
	a := Random(p, 1)
	b := Random(p, 2)
	for i := range a {
		if a[i] != b[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical labelings")
	}
}
