package baseline

import (
	"testing"

	"gpp/internal/partition"
)

func TestSpectralBasicContract(t *testing.T) {
	p := benchProblem(t, "KSA8", 5)
	labels, err := Spectral(p, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkLabels(t, p, labels)
	counts := make([]int, p.K)
	for _, lb := range labels {
		counts[lb]++
	}
	for k, c := range counts {
		if c == 0 {
			t.Errorf("plane %d empty", k)
		}
	}
	// Bias slicing keeps planes near target.
	bias, _ := p.PlaneTotals(labels)
	target := p.TotalBias / float64(p.K)
	for k, b := range bias {
		if b > 2.5*target {
			t.Errorf("plane %d bias %.1f far above target %.1f", k, b, target)
		}
	}
}

func TestSpectralBeatsRandomOnWireCost(t *testing.T) {
	p := benchProblem(t, "KSA16", 5)
	c := partition.DefaultCoeffs()
	spec, err := Spectral(p, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	specF1 := p.DiscreteCost(spec, c).F1
	randF1 := p.DiscreteCost(Random(p, 1), c).F1
	if specF1 >= randF1 {
		t.Errorf("spectral F1 %g not better than random %g", specF1, randF1)
	}
}

func TestSpectralSeparatesCliques(t *testing.T) {
	// Two 10-cliques joined by a single edge must be split cleanly at K=2.
	var edges [][2]int
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			edges = append(edges, [2]int{i, j})
			edges = append(edges, [2]int{i + 10, j + 10})
		}
	}
	edges = append(edges, [2]int{0, 10})
	bias := make([]float64, 20)
	area := make([]float64, 20)
	for i := range bias {
		bias[i], area[i] = 1, 1
	}
	p, err := partition.NewProblem("cliques", 2, bias, area, edges)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Spectral(p, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	cut := 0
	for _, e := range edges {
		if labels[e[0]] != labels[e[1]] {
			cut++
		}
	}
	if cut != 1 {
		t.Errorf("spectral cut %d edges, want the single bridge", cut)
	}
}

func TestSpectralEdgelessGraph(t *testing.T) {
	bias := []float64{1, 1, 1, 1}
	area := []float64{1, 1, 1, 1}
	p, err := partition.NewProblem("edgeless", 2, bias, area, nil)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Spectral(p, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkLabels(t, p, labels)
	bal, _ := p.PlaneTotals(labels)
	if bal[0] != 2 || bal[1] != 2 {
		t.Errorf("edgeless balance = %v", bal)
	}
}

func TestSpectralDeterministic(t *testing.T) {
	p := benchProblem(t, "KSA4", 4)
	a, err := Spectral(p, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spectral(p, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("spectral not deterministic for fixed seed")
		}
	}
}
