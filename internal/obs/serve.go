package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the debug HTTP mux for a registry:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar JSON (reg is bridged under the name "gpp")
//	/debug/pprof/  the standard pprof handlers (profile, heap, trace, …)
func NewMux(reg *Registry) *http.ServeMux {
	reg.PublishExpvar("gpp")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug mux on addr (":0" picks a free port) in a
// background goroutine and returns the server plus the bound address.
// Callers stop it with server.Close.
func Serve(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: NewMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
