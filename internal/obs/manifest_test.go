package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestManifestWrite(t *testing.T) {
	m := NewManifest("obs-test")
	m.Set("seed", int64(7))
	m.Set("circuit", map[string]any{"name": "KSA8", "gates": 160})
	m.Finish()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Tool      string         `json:"tool"`
		GoVersion string         `json:"go_version"`
		NumCPU    int            `json:"num_cpu"`
		Start     string         `json:"start"`
		Extra     map[string]any `json:"extra"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Tool != "obs-test" || decoded.GoVersion == "" || decoded.NumCPU < 1 || decoded.Start == "" {
		t.Errorf("manifest fields incomplete: %+v", decoded)
	}
	if decoded.Extra["seed"].(float64) != 7 {
		t.Errorf("extra seed = %v", decoded.Extra["seed"])
	}
}

// TestServeMux checks the three debug surfaces: Prometheus text on
// /metrics, expvar JSON on /debug/vars, and a live pprof index.
func TestServeMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mux_test_total", "mux test counter").Add(9)
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64*1024)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return sb.String()
	}

	if body := get("/metrics"); !strings.Contains(body, "mux_test_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "mux_test_total") {
		t.Errorf("/debug/vars missing bridged registry:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing:\n%s", body)
	}
}
