package obs

import (
	"bytes"
	"strings"
	"testing"
)

func portfolioTrace() []Event {
	var evs []Event
	solve := func(restart int, seed int64, iters int, fd float64) {
		evs = append(evs,
			Event{Kind: KindRestartStart, Restart: restart, Seed: seed},
			Event{Kind: KindSolveStart, Seed: seed, K: 5, Gates: 24, Edges: 30},
			Event{Kind: KindPool, GateShards: 1, EdgeShards: 1},
		)
		for i := 0; i < iters; i++ {
			evs = append(evs, Event{Kind: KindIter, Iter: i, F: 2.0 - float64(i)*0.1,
				F1: 1, F2: 0.5, F3: 0.25, F4: 0.25, GradN: 0.5, Step: 0.01, Clamped: i})
		}
		evs = append(evs,
			Event{Kind: KindSnap, FDiscrete: fd + 0.1},
			Event{Kind: KindRefine, Pass: 1, Moves: 2},
			Event{Kind: KindSolveDone, Iters: iters, Converged: true, FRelaxed: 1.5, FDiscrete: fd, Step: 0.01, RefineMoves: 2},
			Event{Kind: KindRestartDone, Restart: restart, Seed: seed, Iters: iters, Converged: true, FDiscrete: fd},
		)
	}
	solve(0, 1, 5, 0.8)
	solve(1, 2, 4, 0.6)
	evs = append(evs, Event{Kind: KindRestartSkipped, Restart: 2, Seed: 3})
	evs = append(evs, Event{Kind: KindWinner, Seed: 2, Restarts: 3, FDiscrete: 0.6})
	return evs
}

func TestSummarizePortfolio(t *testing.T) {
	s := Summarize(portfolioTrace())
	if len(s.Solves) != 2 {
		t.Fatalf("got %d solves, want 2", len(s.Solves))
	}
	first := s.Solves[0]
	if first.Restart != 0 || first.Seed != 1 || len(first.Iters) != 5 {
		t.Errorf("solve 0 misattributed: restart=%d seed=%d iters=%d", first.Restart, first.Seed, len(first.Iters))
	}
	if first.Done == nil || first.Done.FDiscrete != 0.8 {
		t.Errorf("solve 0 done record wrong: %+v", first.Done)
	}
	if first.Snap == nil || len(first.Refines) != 1 {
		t.Errorf("solve 0 snap/refine missing")
	}
	if s.Winner == nil || s.Winner.Seed != 2 {
		t.Errorf("winner = %+v, want seed 2", s.Winner)
	}
}

func TestSummaryWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := Summarize(portfolioTrace()).WriteText(&buf, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"2 solve(s)",
		"restart 0, seed=1",
		"restart 1, seed=2",
		"F1", "F2", "F3", "F4", "|grad|",
		"restart leaderboard",
		"winner: seed 2 of 3 restarts",
		"refine pass 1: 2 moves",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q in:\n%s", want, out)
		}
	}
	// The leaderboard is sorted by discrete cost: seed 2 (0.6) first.
	if li, other := strings.Index(out, "leaderboard"), strings.LastIndex(out, "0.8"); li > other {
		t.Errorf("leaderboard ordering looks wrong:\n%s", out)
	}
}

func TestSampleRowsKeepsEnds(t *testing.T) {
	evs := make([]Event, 100)
	for i := range evs {
		evs[i] = Event{Kind: KindIter, Iter: i}
	}
	got := sampleRows(evs, 10)
	if len(got) != 10 {
		t.Fatalf("sampled %d rows, want 10", len(got))
	}
	if got[0].Iter != 0 || got[9].Iter != 99 {
		t.Errorf("sampling dropped the endpoints: first=%d last=%d", got[0].Iter, got[9].Iter)
	}
}
