// Package obscli wires the telemetry subsystem into the command-line tools:
// every CLI registers the same three flags (-trace, -metrics-addr,
// -manifest), starts a Session after flag parsing, and defers Close. The
// package keeps the per-command boilerplate to three lines and guarantees
// the tools agree on flag names and semantics.
package obscli

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"gpp/internal/obs"
)

// Flags holds the observability flag values. Register them on a FlagSet
// before Parse, then call Start.
type Flags struct {
	Trace       string
	Spans       bool
	SpansTimed  bool
	Manifest    string
	MetricsAddr string
}

// Register adds -trace, -spans, -spans-timed, -manifest, and -metrics-addr
// to fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "",
		"write a JSONL solver trace to this path (deterministic; inspect with `gpp-inspect trace`)")
	fs.BoolVar(&f.Spans, "spans", false,
		"add hierarchical span events to the -trace file (deterministic, untimed; view with `gpp-inspect spans`)")
	fs.BoolVar(&f.SpansTimed, "spans-timed", false,
		"like -spans but stamped with wall-clock offsets and durations (non-deterministic)")
	fs.StringVar(&f.Manifest, "manifest", "",
		"write a JSON run manifest (args, code version, timings) to this path on exit")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :8080 or 127.0.0.1:0)")
}

// Session is the live telemetry state of one CLI run.
type Session struct {
	// Tracer is non-nil iff -trace was given; pass it to the solver options.
	Tracer obs.Tracer

	// Span is the run's root span, non-nil iff -spans or -spans-timed was
	// given (it requires -trace). Pass it to the solver options; Close ends
	// it, so sub-spans the run left open are simply never emitted.
	Span *obs.Span

	manifest  *obs.Manifest
	manifestP string
	sink      *obs.JSONL
	traceFile *os.File
	server    *http.Server
	closed    bool
}

// Start opens the trace sink, starts the metrics server, and begins the run
// manifest, according to which flags were set. The returned Session is
// non-nil even when all flags are empty (every method is a no-op then);
// callers defer Close unconditionally.
func (f Flags) Start(tool string) (*Session, error) {
	s := &Session{}
	if (f.Spans || f.SpansTimed) && f.Trace == "" {
		return nil, fmt.Errorf("%s: -spans needs -trace (spans are events in the trace file)", tool)
	}
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("%s: trace: %w", tool, err)
		}
		s.traceFile = file
		s.sink = obs.NewJSONL(file)
		s.Tracer = s.sink
		if f.Spans || f.SpansTimed {
			tr := obs.NewTrace(s.sink)
			if f.SpansTimed {
				tr.Timed()
			}
			s.Span = tr.Root(tool)
		}
	}
	if f.MetricsAddr != "" {
		srv, addr, err := obs.Serve(f.MetricsAddr, obs.Default())
		if err != nil {
			s.cleanupTrace()
			return nil, fmt.Errorf("%s: %w", tool, err)
		}
		s.server = srv
		fmt.Fprintf(os.Stderr, "%s: serving metrics on http://%s/metrics (pprof on /debug/pprof/)\n", tool, addr)
	}
	if f.Manifest != "" {
		s.manifest = obs.NewManifest(tool)
		s.manifestP = f.Manifest
	}
	return s, nil
}

func (s *Session) cleanupTrace() {
	if s.traceFile != nil {
		s.traceFile.Close()
		s.traceFile = nil
	}
}

// Meta records one extra manifest key (solver options, circuit stats, …).
// No-op without -manifest.
func (s *Session) Meta(key string, v any) {
	if s.manifest != nil {
		s.manifest.Set(key, v)
	}
}

// Close flushes and closes the trace file, stamps and writes the manifest,
// and shuts down the metrics server. The first error wins; trace-sink write
// errors that the solver already surfaced come back here too, so a run that
// ignored them still fails loudly. Close is idempotent — error paths and
// the normal exit path can both call it.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	s.Span.End() // nil-safe; emits the root span before the sink closes
	if s.sink != nil {
		keep(s.sink.Close())
	}
	if s.traceFile != nil {
		keep(s.traceFile.Close())
		s.traceFile = nil
	}
	if s.manifest != nil {
		s.manifest.Finish()
		keep(s.manifest.WriteFile(s.manifestP))
	}
	if s.server != nil {
		keep(s.server.Close())
	}
	return first
}
