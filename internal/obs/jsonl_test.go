package obs

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

// newTinyBufWriter returns a bufio.Writer whose buffer is smaller than any
// event line, so every Emit hits the underlying writer immediately.
func newTinyBufWriter(w io.Writer) *bufio.Writer { return bufio.NewWriterSize(w, 1) }

// traceFixture exercises every event kind the solver stack emits.
func traceFixture() []Event {
	return []Event{
		{Kind: KindExperiment, Circuit: "KSA8", K: 5, Gates: 160, Edges: 230},
		{Kind: KindRestartStart, Restart: 0, Seed: 1},
		{Kind: KindSolveStart, Seed: 1, K: 5, Gates: 160, Edges: 230},
		{Kind: KindPool, GateShards: 1, EdgeShards: 1},
		{Kind: KindIter, Iter: 0, F: 1.25, F1: 0.5, F2: 0.25, F3: 0.125, F4: 0.375, GradN: 0.0625, Step: 0.03125, Clamped: 12},
		{Kind: KindSnap, FDiscrete: 0.75},
		{Kind: KindRefine, Pass: 1, Moves: 3},
		{Kind: KindSolveDone, Iters: 42, Converged: true, FRelaxed: 1.125, FDiscrete: 0.625, Step: 0.03125, RefineMoves: 3},
		{Kind: KindRestartDone, Restart: 0, Seed: 1, Iters: 42, Converged: true, FDiscrete: 0.625},
		{Kind: KindRestartSkipped, Restart: 1, Seed: 2},
		{Kind: KindWinner, Seed: 1, Restarts: 2, FDiscrete: 0.625},
		{Kind: KindSimWave, Circuit: "KSA4", Pulses: 17},
		{Kind: KindSimActivity, Circuit: "KSA4", Waves: 64, Activity: 0.5},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := traceFixture()
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	for i := range events {
		if decoded[i] != events[i] {
			t.Errorf("event %d (%s) round-trip mismatch:\n got %+v\nwant %+v",
				i, events[i].Kind, decoded[i], events[i])
		}
	}
}

// TestJSONLDeterministic: the same events produce byte-identical output —
// the property that lets traces be diffed across Workers settings.
func TestJSONLDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		sink := NewJSONL(&buf)
		for _, e := range traceFixture() {
			sink.Emit(e)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Error("identical event streams rendered differently")
	}
}

// TestJSONLExactFloats: floats survive with full precision (shortest
// round-trip formatting), and non-finite values degrade to null instead of
// corrupting the stream.
func TestJSONLExactFloats(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	want := 0.1 + 0.2 // classic non-representable sum
	sink.Emit(Event{Kind: KindIter, Iter: 1, F: want, GradN: math.NaN(), Step: math.Inf(1)})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].F != want {
		t.Errorf("F = %v, want exact %v", evs[0].F, want)
	}
	if evs[0].GradN != 0 || evs[0].Step != 0 {
		t.Errorf("non-finite floats should decode as absent, got grad=%v step=%v", evs[0].GradN, evs[0].Step)
	}
}

type failWriter struct{ fails int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.fails++
	return 0, errors.New("disk full")
}

// TestJSONLErrorLatch: the first write error is kept, later emits are
// dropped (no repeated writes against a broken sink), and Err/Close both
// report it.
func TestJSONLErrorLatch(t *testing.T) {
	fw := &failWriter{}
	sink := &JSONL{w: newTinyBufWriter(fw)}
	sink.Emit(Event{Kind: KindIter, Iter: 0})
	sink.Emit(Event{Kind: KindIter, Iter: 1})
	sink.Emit(Event{Kind: KindIter, Iter: 2})
	if sink.Err() == nil {
		t.Fatal("expected latched error")
	}
	if !strings.Contains(sink.Err().Error(), "disk full") {
		t.Errorf("unexpected error: %v", sink.Err())
	}
	if fw.fails != 1 {
		t.Errorf("sink wrote %d times after failure, want exactly 1 attempt", fw.fails)
	}
	if err := sink.Close(); err == nil {
		t.Error("Close should report the latched error")
	}
}

func TestReadTraceBadLine(t *testing.T) {
	_, err := ReadTrace(strings.NewReader("{\"ev\":\"iter\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
}

// BenchmarkJSONLEmit measures the per-event cost of the hand-rolled
// encoder on the hottest event kind (iter).
func BenchmarkJSONLEmit(b *testing.B) {
	sink := NewJSONL(io.Discard)
	ev := Event{Kind: KindIter, Iter: 17, F: 1.25, F1: 0.5, F2: 0.25,
		F3: 0.125, F4: 0.375, GradN: 0.0625, Step: 0.03125, Clamped: 12}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink.Emit(ev)
	}
	if err := sink.Close(); err != nil {
		b.Fatal(err)
	}
}
