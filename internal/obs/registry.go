package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry is a zero-dependency metrics registry. Instruments are created
// (or fetched) by name; all mutating operations are lock-free atomics, so
// instruments are safe on hot paths and under arbitrary goroutine
// concurrency. WriteProm renders the Prometheus text exposition format;
// PublishExpvar bridges a JSON snapshot into /debug/vars.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry the solver stack instruments
// (expvar-style). CLIs serve it via -metrics-addr.
func Default() *Registry { return defaultRegistry }

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is a programming error and is
// ignored to keep the monotonicity contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; safe under concurrency).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets
// (Prometheus-style `le` semantics: bucket i counts observations ≤
// bounds[i], with an implicit +Inf bucket).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// NewHistogram returns a standalone histogram (not registered anywhere)
// with the given sorted bucket upper bounds. The serve subsystem uses
// these for per-server stats that must not leak across servers through
// the process-wide registry.
func NewHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds not sorted")
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// LogBuckets returns logarithmically spaced bucket bounds from min to at
// least max with perDecade buckets per factor of ten — the natural shape
// for latency histograms, where p99 can sit orders of magnitude above
// p50. Panics on nonsense arguments (instrument construction happens at
// init; a bad spec is a programming error).
func LogBuckets(min, max float64, perDecade int) []float64 {
	if !(min > 0) || !(max > min) || perDecade < 1 {
		panic("obs: invalid LogBuckets spec")
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var bounds []float64
	for v := min; ; v *= ratio {
		bounds = append(bounds, v)
		if v >= max || len(bounds) > 400 {
			return bounds
		}
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation inside the bucket holding the target rank —
// standard Prometheus histogram_quantile semantics. Observations in the
// +Inf bucket clamp to the last finite bound. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if c == 0 {
				return bound
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (bound-lo)*frac
		}
		cum += c
	}
	// Target rank fell in the +Inf bucket: clamp to the last finite bound.
	return h.bounds[len(h.bounds)-1]
}

// validName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*; instruments are created at package init, so a
// bad name is a programming error worth a panic.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) checkName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

// Counter returns the named counter, creating it on first use. The
// optional help string is kept for exposition.
func (r *Registry) Counter(name string, help ...string) *Counter {
	r.checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	if len(help) > 0 && r.help[name] == "" {
		r.help[name] = help[0]
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, help ...string) *Gauge {
	r.checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	if len(help) > 0 && r.help[name] == "" {
		r.help[name] = help[0]
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (must be sorted ascending) on first use. Later calls ignore
// the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64, help ...string) *Histogram {
	r.checkName(name)
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not sorted", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	if len(help) > 0 && r.help[name] == "" {
		r.help[name] = help[0]
	}
	return h
}

// WriteProm renders the registry in the Prometheus text exposition format,
// with metric families sorted by name so the output is deterministic.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	help := make(map[string]string, len(r.help))
	for n, h := range r.help {
		help[n] = h
	}
	r.mu.Unlock()

	sort.Strings(names)
	var b []byte
	fv := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, n := range names {
		if h := help[n]; h != "" {
			b = append(b, "# HELP "...)
			b = append(b, n...)
			b = append(b, ' ')
			b = append(b, h...)
			b = append(b, '\n')
		}
		switch {
		case counters[n] != nil:
			b = append(b, "# TYPE "...)
			b = append(b, n...)
			b = append(b, " counter\n"...)
			b = append(b, n...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, counters[n].Value(), 10)
			b = append(b, '\n')
		case gauges[n] != nil:
			b = append(b, "# TYPE "...)
			b = append(b, n...)
			b = append(b, " gauge\n"...)
			b = append(b, n...)
			b = append(b, ' ')
			b = append(b, fv(gauges[n].Value())...)
			b = append(b, '\n')
		case hists[n] != nil:
			h := hists[n]
			b = append(b, "# TYPE "...)
			b = append(b, n...)
			b = append(b, " histogram\n"...)
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				b = append(b, n...)
				b = append(b, `_bucket{le="`...)
				b = append(b, fv(bound)...)
				b = append(b, `"} `...)
				b = strconv.AppendInt(b, cum, 10)
				b = append(b, '\n')
			}
			cum += h.counts[len(h.bounds)].Load()
			b = append(b, n...)
			b = append(b, `_bucket{le="+Inf"} `...)
			b = strconv.AppendInt(b, cum, 10)
			b = append(b, '\n')
			b = append(b, n...)
			b = append(b, "_sum "...)
			b = append(b, fv(h.Sum())...)
			b = append(b, '\n')
			b = append(b, n...)
			b = append(b, "_count "...)
			b = strconv.AppendInt(b, h.Count(), 10)
			b = append(b, '\n')
			// Pre-computed quantile gauges: scrape-side
			// histogram_quantile() needs a full PromQL engine; a service
			// being eyeballed with curl does not.
			for _, pq := range [...]struct {
				suffix string
				q      float64
			}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
				b = append(b, "# TYPE "...)
				b = append(b, n...)
				b = append(b, pq.suffix...)
				b = append(b, " gauge\n"...)
				b = append(b, n...)
				b = append(b, pq.suffix...)
				b = append(b, ' ')
				b = append(b, fv(h.Quantile(pq.q))...)
				b = append(b, '\n')
			}
		}
	}
	_, err := w.Write(b)
	return err
}

// Snapshot returns the registry as a plain map (counters as int64, gauges
// as float64, histograms as {count, sum, buckets}) — the payload the
// expvar bridge serves.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		buckets := make(map[string]int64, len(h.bounds)+1)
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			buckets[strconv.FormatFloat(bound, 'g', -1, 64)] = cum
		}
		cum += h.counts[len(h.bounds)].Load()
		buckets["+Inf"] = cum
		out[n] = map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": buckets}
	}
	return out
}
