// Package obs is the solver telemetry subsystem: a zero-dependency metrics
// registry (counters, gauges, histograms) with Prometheus-style text
// exposition and an expvar bridge, a structured event Tracer with a JSONL
// sink, and a run-manifest writer that makes every solve reproducible from
// its artifacts.
//
// Design constraints, in order of importance:
//
//  1. The disabled path costs nothing. A nil Tracer in partition.Options
//     adds no allocations and no measurable time to the solver's iteration
//     path (guarded by testing.AllocsPerRun in internal/partition and the
//     `make obs-bench` benchmark gate).
//  2. Traces are deterministic modulo timestamps. Event payloads are pure
//     functions of the solver state, which is itself bit-identical at every
//     Options.Workers count; the JSONL encoder is hand-rolled with
//     fixed field order and shortest-round-trip floats, so two traces of
//     the same solve diff clean byte-for-byte (the optional "t" field is
//     the only exception). Concurrent restarts are buffered per seed and
//     replayed in seed order (see partition.SolvePortfolio).
//  3. Sink failures surface exactly once. A sink latches its first write
//     error, stops writing, and the solver returns it through the normal
//     error path instead of silently dropping the trace.
package obs

// Kind identifies the type of a trace Event.
type Kind string

// Event kinds emitted by the instrumented solver stack. The set is a closed
// vocabulary: gpp-inspect's trace summarizer and the JSONL encoder both
// switch on it.
const (
	// KindSolveStart opens one Algorithm-1 run: seed and problem shape.
	// Deliberately no worker count — the trace stream is byte-identical
	// across Workers settings; the run manifest records the environment.
	KindSolveStart Kind = "solve_start"
	// KindPool reports the kernel shard decomposition the run will use
	// (shard counts depend only on the problem size, never on workers).
	KindPool Kind = "pool"
	// KindIter is one gradient iteration: cost breakdown at entry, the
	// gradient norm, step size, and how many W entries the update clamped.
	KindIter Kind = "iter"
	// KindSnap reports the discrete cost right after argmax snapping,
	// before any refinement.
	KindSnap Kind = "snap"
	// KindRefine is one greedy refinement sweep (pass index, moves made).
	KindRefine Kind = "refine"
	// KindSolveDone closes a run: iteration count, convergence flag, final
	// relaxed and discrete costs.
	KindSolveDone Kind = "solve_done"
	// KindRestartStart / KindRestartDone / KindRestartSkipped bracket one
	// seed of a restart portfolio (skipped = cancelled before it ran or
	// failed before producing a result).
	KindRestartStart   Kind = "restart_start"
	KindRestartDone    Kind = "restart_done"
	KindRestartSkipped Kind = "restart_skipped"
	// KindWinner records the portfolio's deterministic winner selection.
	KindWinner Kind = "winner"
	// KindExperiment tags the start of one experiment-suite solve.
	KindExperiment Kind = "experiment"
	// KindVCycleStart opens one multilevel V-cycle: problem shape plus the
	// hierarchy depth the coarsener produced. Like KindSolveStart it never
	// records the worker count — V-cycle traces are byte-identical across
	// Workers settings.
	KindVCycleStart Kind = "vcycle_start"
	// KindCoarsen reports one heavy-edge-matching contraction: the level
	// index it produced and that level's vertex/edge counts.
	KindCoarsen Kind = "coarsen"
	// KindProject reports one uncoarsening step: W projected onto the
	// finer level (by index) ahead of its band-limited gradient refine.
	KindProject Kind = "project"
	// KindVCycleDone closes a V-cycle: total inner iterations, convergence
	// of the coarsest solve, refinement moves, final discrete cost.
	KindVCycleDone Kind = "vcycle_done"
	// KindSimWave / KindSimActivity are pulse-simulator events.
	KindSimWave     Kind = "sim_wave"
	KindSimActivity Kind = "sim_activity"
	// KindSpan closes one hierarchical span (see span.go): name, ordinal
	// span id, parent span id (0 = root), key=value attrs, and — on timed
	// traces only — start offset and duration in microseconds. Untimed
	// span streams are byte-identical for bit-identical runs.
	KindSpan Kind = "span"
)

// Event is the flat superset of every trace payload. Producers fill only
// the fields meaningful for the Kind; the JSONL encoder writes exactly
// those, in a fixed order. Field tags match the encoder's keys so
// encoding/json can decode what the hand-rolled encoder wrote.
type Event struct {
	Kind Kind  `json:"ev"`
	T    int64 `json:"t,omitempty"` // unix ms, stamped by the sink when enabled

	Circuit string `json:"circuit,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Restart int    `json:"restart,omitempty"`

	K          int `json:"k,omitempty"`
	Gates      int `json:"gates,omitempty"`
	Edges      int `json:"edges,omitempty"`
	GateShards int `json:"gate_shards,omitempty"`
	EdgeShards int `json:"edge_shards,omitempty"`

	Iter    int     `json:"iter,omitempty"`
	F       float64 `json:"f,omitempty"`
	F1      float64 `json:"f1,omitempty"`
	F2      float64 `json:"f2,omitempty"`
	F3      float64 `json:"f3,omitempty"`
	F4      float64 `json:"f4,omitempty"`
	GradN   float64 `json:"grad_norm,omitempty"`
	Step    float64 `json:"step,omitempty"`
	Clamped int     `json:"clamped,omitempty"`

	Iters       int     `json:"iters,omitempty"`
	Converged   bool    `json:"converged,omitempty"`
	FRelaxed    float64 `json:"f_relaxed,omitempty"`
	FDiscrete   float64 `json:"f_discrete,omitempty"`
	Pass        int     `json:"pass,omitempty"`
	Moves       int     `json:"moves,omitempty"`
	RefineMoves int     `json:"refine_moves,omitempty"`
	Restarts    int     `json:"restarts,omitempty"`

	Pulses   int     `json:"pulses,omitempty"`
	Waves    int     `json:"waves,omitempty"`
	Activity float64 `json:"activity,omitempty"`

	// Multilevel V-cycle fields: Level is a 0-based hierarchy level (0 =
	// the original problem), Levels the hierarchy depth including level 0.
	Level  int `json:"level,omitempty"`
	Levels int `json:"levels,omitempty"`

	// Span fields (KindSpan): name, ordinal span id, parent span id (0 =
	// root), space-separated key=value attrs, and on timed traces the
	// start offset / duration in microseconds from the trace's monotonic
	// anchor.
	Span  string `json:"span,omitempty"`
	SID   int64  `json:"sid,omitempty"`
	PSID  int64  `json:"psid,omitempty"`
	AtUS  int64  `json:"at_us,omitempty"`
	DurUS int64  `json:"dur_us,omitempty"`
	Attrs string `json:"attrs,omitempty"`
}

// Tracer receives structured solver events. Implementations must be safe
// for use from a single goroutine at a time per solve; sinks shared across
// concurrent solves (the JSONL sink, for instance) serialize internally.
//
// A Tracer may additionally implement `Err() error` to report a latched
// sink failure; the solver checks it once per solve via SinkErr.
type Tracer interface {
	Emit(Event)
}

// TracerFunc adapts a plain function to the Tracer interface — the
// adapter the serve subsystem uses to fan solver events into a job's
// progress stream without a named type per consumer.
type TracerFunc func(Event)

// Emit calls f(e).
func (f TracerFunc) Emit(e Event) { f(e) }

// tee forwards every event to two tracers, a's latched sink error (if
// any) winning over b's for SinkErr.
type tee struct{ a, b Tracer }

func (t tee) Emit(e Event) {
	t.a.Emit(e)
	t.b.Emit(e)
}

func (t tee) Err() error {
	if err := SinkErr(t.a); err != nil {
		return err
	}
	return SinkErr(t.b)
}

// Tee returns a Tracer duplicating every event to both arguments. A nil
// argument means "just the other one" (and Tee(nil, nil) is nil), so
// callers can compose optional tracers unconditionally.
func Tee(a, b Tracer) Tracer {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return tee{a, b}
}

// nop discards every event. Its Emit inlines to nothing.
type nop struct{}

func (nop) Emit(Event) {}

// Nop returns the no-op Tracer. A nil Tracer in solver options means the
// same thing and is cheaper still (no interface call at all); Nop exists
// for call sites that want a non-nil default.
func Nop() Tracer { return nop{} }

// Buffer is an in-memory Tracer. The restart portfolio hands each
// concurrently racing seed its own Buffer and replays them in seed order,
// which is what keeps multi-restart traces deterministic at every worker
// count.
type Buffer struct {
	Events []Event
}

// Emit appends the event.
func (b *Buffer) Emit(e Event) { b.Events = append(b.Events, e) }

// ReplayTo re-emits every buffered event, in order, into t.
func (b *Buffer) ReplayTo(t Tracer) {
	for _, e := range b.Events {
		t.Emit(e)
	}
}

// SinkErr returns the latched error of a Tracer that reports one (the
// JSONL sink does), or nil for trackers without an error concept — nil
// Tracers included, so callers can check unconditionally.
func SinkErr(t Tracer) error {
	if t == nil {
		return nil
	}
	if e, ok := t.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}
