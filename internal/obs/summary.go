package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// SolveTrace is one reconstructed Algorithm-1 run inside a trace: its
// bracketing events plus every iteration event, attributed to a restart
// when the run raced inside a portfolio.
type SolveTrace struct {
	Restart int   // -1 for a standalone solve
	Seed    int64 // from solve_start (or restart_start)

	Start   Event
	Iters   []Event // KindIter, in order
	Snap    *Event
	Refines []Event // KindRefine, in order
	Done    *Event  // KindSolveDone (or restart_done fallback)
}

// Summary is the structural digest of a JSONL trace.
type Summary struct {
	Events      int
	Solves      []*SolveTrace
	Winner      *Event  // portfolio winner, if any
	Experiments []Event // KindExperiment headers, in order
}

// Summarize reconstructs per-solve traces from a flat event stream.
// Portfolio traces are serial by construction (restarts are replayed in
// seed order), so attribution is positional: events between restart_start
// and restart_done belong to that restart.
func Summarize(events []Event) *Summary {
	s := &Summary{Events: len(events)}
	restart := -1
	var seed int64
	var cur *SolveTrace
	for i := range events {
		e := events[i]
		switch e.Kind {
		case KindRestartStart:
			restart, seed = e.Restart, e.Seed
		case KindSolveStart:
			cur = &SolveTrace{Restart: restart, Seed: e.Seed, Start: e}
			if restart >= 0 {
				cur.Seed = seed
			}
			s.Solves = append(s.Solves, cur)
		case KindIter:
			if cur != nil {
				cur.Iters = append(cur.Iters, e)
			}
		case KindSnap:
			if cur != nil {
				ev := e
				cur.Snap = &ev
			}
		case KindRefine:
			if cur != nil {
				cur.Refines = append(cur.Refines, e)
			}
		case KindSolveDone:
			if cur != nil {
				ev := e
				cur.Done = &ev
				cur = nil
			}
		case KindRestartDone:
			// Replay order guarantees this follows the restart's solve
			// events; use it as the Done record if the inner solve lacked
			// one, then close the restart scope.
			if n := len(s.Solves); n > 0 && s.Solves[n-1].Done == nil && s.Solves[n-1].Restart == e.Restart {
				ev := e
				s.Solves[n-1].Done = &ev
			}
			restart, seed, cur = -1, 0, nil
		case KindRestartSkipped:
			restart, seed, cur = -1, 0, nil
		case KindWinner:
			ev := e
			s.Winner = &ev
		case KindExperiment:
			s.Experiments = append(s.Experiments, e)
		}
	}
	return s
}

// WriteText renders the summary for humans: one per-term convergence table
// per solve (sampled down to maxRows rows) and, for portfolio traces, a
// restart leaderboard sorted by discrete cost. maxRows ≤ 0 means 12.
func (s *Summary) WriteText(w io.Writer, maxRows int) error {
	if maxRows <= 0 {
		maxRows = 12
	}
	bw := &errWriter{w: w}
	bw.printf("trace: %d events, %d solve(s)\n", s.Events, len(s.Solves))
	for _, ex := range s.Experiments {
		bw.printf("experiment: %s K=%d (%d gates, %d connections)\n", ex.Circuit, ex.K, ex.Gates, ex.Edges)
	}
	for _, st := range s.Solves {
		bw.printf("\n")
		label := fmt.Sprintf("solve seed=%d", st.Seed)
		if st.Restart >= 0 {
			label = fmt.Sprintf("restart %d, seed=%d", st.Restart, st.Seed)
		}
		if st.Done != nil {
			bw.printf("%s: %d iters, converged=%v, F_relaxed=%s, F_discrete=%s\n",
				label, st.Done.Iters, st.Done.Converged, fnum(st.Done.FRelaxed), fnum(st.Done.FDiscrete))
		} else {
			bw.printf("%s: (incomplete trace)\n", label)
		}
		if len(st.Iters) > 0 {
			bw.printf("  %6s %12s %12s %12s %12s %12s %11s %8s\n",
				"iter", "F", "F1", "F2", "F3", "F4", "|grad|", "clamped")
			for _, e := range sampleRows(st.Iters, maxRows) {
				bw.printf("  %6d %12s %12s %12s %12s %12s %11s %8d\n",
					e.Iter, fnum(e.F), fnum(e.F1), fnum(e.F2), fnum(e.F3), fnum(e.F4), fnum(e.GradN), e.Clamped)
			}
			first, last := st.Iters[0], st.Iters[len(st.Iters)-1]
			if first.F != 0 {
				bw.printf("  F dropped %.2f%% over %d traced iterations\n",
					100*(first.F-last.F)/first.F, len(st.Iters))
			}
		}
		if st.Snap != nil {
			bw.printf("  snap: F_discrete=%s\n", fnum(st.Snap.FDiscrete))
		}
		for _, r := range st.Refines {
			bw.printf("  refine pass %d: %d moves\n", r.Pass, r.Moves)
		}
	}
	// Restart leaderboard: every solve that ran inside a portfolio, by
	// ascending discrete cost (the selection objective).
	var board []*SolveTrace
	for _, st := range s.Solves {
		if st.Restart >= 0 && st.Done != nil {
			board = append(board, st)
		}
	}
	if len(board) > 0 {
		sort.SliceStable(board, func(a, b int) bool {
			if board[a].Done.FDiscrete != board[b].Done.FDiscrete {
				return board[a].Done.FDiscrete < board[b].Done.FDiscrete
			}
			return board[a].Seed < board[b].Seed
		})
		bw.printf("\nrestart leaderboard (by discrete cost):\n")
		bw.printf("  %4s %6s %6s %10s %12s\n", "", "seed", "iters", "converged", "F_discrete")
		for _, st := range board {
			marker := " "
			if s.Winner != nil && st.Seed == s.Winner.Seed {
				marker = "*"
			}
			bw.printf("  %4s %6d %6d %10v %12s\n", marker, st.Seed, st.Done.Iters, st.Done.Converged, fnum(st.Done.FDiscrete))
		}
	}
	if s.Winner != nil {
		bw.printf("\nwinner: seed %d of %d restarts, F_discrete=%s\n",
			s.Winner.Seed, s.Winner.Restarts, fnum(s.Winner.FDiscrete))
	}
	return bw.err
}

// sampleRows picks ≤ max rows spread evenly across evs, always keeping the
// first and last.
func sampleRows(evs []Event, max int) []Event {
	if len(evs) <= max {
		return evs
	}
	out := make([]Event, 0, max)
	for i := 0; i < max; i++ {
		idx := i * (len(evs) - 1) / (max - 1)
		out = append(out, evs[idx])
	}
	return out
}

func fnum(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// errWriter folds the write-error plumbing out of the render loop.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
