package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("t_counter") != c {
		t.Error("Counter not idempotent by name")
	}

	g := r.Gauge("t_gauge")
	g.Set(2.5)
	g.Add(-1.25)
	if got := g.Value(); got != 1.25 {
		t.Errorf("gauge = %g, want 1.25", got)
	}

	h := r.Histogram("t_hist", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 99, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("hist count = %d, want 5", h.Count())
	}
	if h.Sum() != 1105.5 {
		t.Errorf("hist sum = %g, want 1105.5", h.Sum())
	}
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid metric name")
		}
	}()
	NewRegistry().Counter("bad name!")
}

// TestRegistryConcurrency hammers every instrument type from many
// goroutines while a reader repeatedly snapshots and renders — the test
// is meaningful under -race (make check runs it there).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_counter")
			g := r.Gauge("conc_gauge")
			h := r.Histogram("conc_hist", []float64{10, 100})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 150))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WriteProm(&buf); err != nil {
				t.Error(err)
				return
			}
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("conc_counter").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc_gauge").Value(); got != workers*perWorker {
		t.Errorf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("conc_hist", nil).Count(); got != workers*perWorker {
		t.Errorf("hist count = %d, want %d", got, workers*perWorker)
	}
}

// TestPromExpositionGolden pins the exact exposition text: sorted
// families, TYPE/HELP lines, cumulative le buckets with +Inf, sum, count.
func TestPromExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("gpp_solves_total", "completed solves").Add(3)
	r.Gauge("gpp_active_workers").Set(2.5)
	h := r.Histogram("gpp_iters", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE gpp_active_workers gauge",
		"gpp_active_workers 2.5",
		"# TYPE gpp_iters histogram",
		`gpp_iters_bucket{le="10"} 1`,
		`gpp_iters_bucket{le="100"} 2`,
		`gpp_iters_bucket{le="+Inf"} 3`,
		"gpp_iters_sum 555",
		"gpp_iters_count 3",
		"# TYPE gpp_iters_p50 gauge",
		"gpp_iters_p50 55",
		"# TYPE gpp_iters_p95 gauge",
		"gpp_iters_p95 100",
		"# TYPE gpp_iters_p99 gauge",
		"gpp_iters_p99 100",
		"# HELP gpp_solves_total completed solves",
		"# TYPE gpp_solves_total counter",
		"gpp_solves_total 3",
		"",
	}, "\n")
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestExpvarBridge(t *testing.T) {
	r := NewRegistry()
	r.Counter("bridge_counter").Add(7)
	r.PublishExpvar("obs_test_bridge")
	r.PublishExpvar("obs_test_bridge") // second publish must not panic

	v := expvar.Get("obs_test_bridge")
	if v == nil {
		t.Fatal("expvar name not published")
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar payload not JSON: %v", err)
	}
	if got, ok := decoded["bridge_counter"].(float64); !ok || got != 7 {
		t.Errorf("bridge_counter = %v, want 7", decoded["bridge_counter"])
	}
}
