package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: hierarchical, request-scoped timing built on the same
// event stream as the solver trace. A Trace owns one tree of spans; each
// span records its name, a deterministic ordinal id, its parent's id, an
// append-ordered key=value attribute list, and (on timed traces) its
// start offset and duration from one monotonic clock reading per edge.
// Ending a span emits exactly one KindSpan event into the trace's sink,
// so spans interleave with solver events in JSONL traces, SSE streams,
// and flight recorders without a second transport.
//
// The design constraints mirror the rest of the package:
//
//  1. The disabled path costs nothing. A nil *Trace hands out nil *Spans,
//     and every method on a nil Trace or Span returns immediately without
//     allocating — callers never guard (see TestSpanNilPathAllocFree).
//  2. Span trees are deterministic modulo time. Ids are assigned in Start
//     order, attributes in append order, and the default (untimed) trace
//     omits at_us/dur_us entirely — two traces of bit-identical solves
//     diff clean byte-for-byte at every Workers count. Timed() opts into
//     wall durations for production services.
//  3. Emission happens once, at End. Unended spans are never emitted
//     (they vanish with the trace), and End is idempotent.

// Trace manages one tree of spans feeding a Tracer sink. The zero of the
// type is not used; NewTrace(nil) returns nil, which is the disabled
// trace — every derived span is nil and free.
type Trace struct {
	sink   Tracer
	t0     time.Time
	timed  bool
	nextID atomic.Int64
}

// NewTrace returns a trace emitting span events into sink, untimed (the
// deterministic configuration: no at_us/dur_us fields). A nil sink means
// tracing is off and the returned trace is nil.
func NewTrace(sink Tracer) *Trace {
	if sink == nil {
		return nil
	}
	return &Trace{sink: sink}
}

// Timed stamps every span with its start offset and duration in
// microseconds, measured against one monotonic clock anchored here.
// Returns the trace for chaining; a nil receiver stays nil.
func (t *Trace) Timed() *Trace {
	if t != nil {
		t.timed = true
		t.t0 = time.Now()
	}
	return t
}

// Root starts a top-level span (parent id 0). Nil-safe.
func (t *Trace) Root(name string) *Span { return t.start(name, 0) }

func (t *Trace) start(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, id: t.nextID.Add(1), psid: parent, name: name}
	if t.timed {
		sp.start = time.Since(t.t0)
	}
	return sp
}

// Span is one node of a trace's span tree. All methods are nil-safe: a
// nil span (from a nil trace) is the disabled path and does nothing.
// A span may be ended on a different goroutine than it was started on
// (the serve queue-wait span crosses the submit→worker handoff); Attr
// and End serialize on the span's own mutex.
type Span struct {
	tr    *Trace
	id    int64
	psid  int64
	name  string
	start time.Duration

	mu    sync.Mutex
	attrs []byte
	ended bool
}

// Child starts a sub-span. Nil-safe: a nil receiver returns nil, so whole
// instrumentation chains hang off one conditional at the top.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(name, s.id)
}

// Attr appends a key=value attribute. Attributes are encoded in append
// order as one space-separated string, so a fixed call order keeps the
// encoding deterministic. No-op after End, and on nil spans.
func (s *Span) Attr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = appendAttrKey(s.attrs, key)
		s.attrs = append(s.attrs, val...)
	}
	s.mu.Unlock()
}

// AttrInt appends an integer attribute.
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = appendAttrKey(s.attrs, key)
		s.attrs = strconv.AppendInt(s.attrs, v, 10)
	}
	s.mu.Unlock()
}

func appendAttrKey(b []byte, key string) []byte {
	if len(b) > 0 {
		b = append(b, ' ')
	}
	b = append(b, key...)
	return append(b, '=')
}

// End closes the span and emits its KindSpan event. Idempotent: only the
// first End emits; later calls (including a deferred End after an
// explicit one) do nothing.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	e := Event{Kind: KindSpan, Span: s.name, SID: s.id, PSID: s.psid, Attrs: string(s.attrs)}
	s.mu.Unlock()
	if s.tr.timed {
		now := time.Since(s.tr.t0)
		e.AtUS = s.start.Microseconds()
		e.DurUS = (now - s.start).Microseconds()
	}
	s.tr.sink.Emit(e)
}

// FlightRecorder is a bounded in-memory Tracer: a ring buffer of the most
// recent events. The serve daemon attaches one per job so every job —
// including one that failed or was cancelled — carries a retrievable
// post-mortem of its recent spans and solver events, with memory bounded
// regardless of solve length.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int // write index
	n       int // valid entries
	dropped int64
}

// DefaultFlightRecorderCap is the ring size NewFlightRecorder uses for
// capacity ≤ 0: enough for a full job lifecycle (spans, lifecycle events,
// throttled iteration samples) without unbounded growth.
const DefaultFlightRecorderCap = 256

// NewFlightRecorder returns a recorder keeping the last capacity events
// (capacity ≤ 0 means DefaultFlightRecorderCap).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRecorderCap
	}
	return &FlightRecorder{buf: make([]Event, capacity)}
}

// Emit records the event, evicting the oldest when the ring is full.
func (r *FlightRecorder) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained events oldest-first plus how many older
// events the ring has evicted.
func (r *FlightRecorder) Snapshot() (events []Event, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	events = make([]Event, 0, r.n)
	start := (r.next - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		events = append(events, r.buf[(start+i)%len(r.buf)])
	}
	return events, r.dropped
}

// Len reports how many events the ring currently retains.
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
