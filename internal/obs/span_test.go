package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// emitSpanTree drives a small fixed span tree into a fresh sink and
// returns the JSONL bytes.
func emitSpanTree(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := NewTrace(sink)
	root := tr.Root("job")
	root.Attr("id", "j1")
	lookup := root.Child("cache_lookup")
	lookup.Attr("outcome", "miss")
	lookup.End()
	solve := root.Child("solve")
	desc := solve.Child("descent")
	desc.AttrInt("iters", 42)
	desc.End()
	solve.End()
	root.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSpanTreeEncodingDeterministic(t *testing.T) {
	a := emitSpanTree(t)
	b := emitSpanTree(t)
	if !bytes.Equal(a, b) {
		t.Errorf("untimed span JSONL not byte-identical:\n%s\nvs\n%s", a, b)
	}
	want := `{"ev":"span","span":"cache_lookup","sid":2,"psid":1,"attrs":"outcome=miss"}
{"ev":"span","span":"descent","sid":4,"psid":3,"attrs":"iters=42"}
{"ev":"span","span":"solve","sid":3,"psid":1}
{"ev":"span","span":"job","sid":1,"psid":0,"attrs":"id=j1"}
`
	if string(a) != want {
		t.Errorf("span JSONL:\n%s\nwant:\n%s", a, want)
	}
}

func TestSpanRoundTrip(t *testing.T) {
	raw := emitSpanTree(t)
	events, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	roots := BuildSpanTree(events)
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	job := roots[0]
	if job.Event.Span != "job" || len(job.Children) != 2 {
		t.Fatalf("root = %q with %d children, want job with 2", job.Event.Span, len(job.Children))
	}
	if job.Children[0].Event.Span != "cache_lookup" || job.Children[1].Event.Span != "solve" {
		t.Errorf("children out of start order: %q, %q", job.Children[0].Event.Span, job.Children[1].Event.Span)
	}
	if got := job.Children[1].Children[0].Event.Span; got != "descent" {
		t.Errorf("grandchild = %q, want descent", got)
	}
	var w bytes.Buffer
	WriteWaterfall(&w, roots)
	for _, needle := range []string{"job", "├─ cache_lookup [outcome=miss]", "└─ solve", "   └─ descent [iters=42]"} {
		if !strings.Contains(w.String(), needle) {
			t.Errorf("waterfall missing %q:\n%s", needle, w.String())
		}
	}
}

func TestSpanTimed(t *testing.T) {
	var buf Buffer
	tr := NewTrace(&buf).Timed()
	root := tr.Root("job")
	child := root.Child("work")
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()
	if len(buf.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(buf.Events))
	}
	work, job := buf.Events[0], buf.Events[1]
	if work.DurUS < 1000 {
		t.Errorf("work dur_us = %d, want ≥ 1000", work.DurUS)
	}
	if job.DurUS < work.DurUS {
		t.Errorf("parent dur_us %d < child dur_us %d", job.DurUS, work.DurUS)
	}
	if work.AtUS < job.AtUS {
		t.Errorf("child at_us %d before parent at_us %d", work.AtUS, job.AtUS)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	var buf Buffer
	tr := NewTrace(&buf)
	s := tr.Root("once")
	s.End()
	s.End()
	s.Attr("late", "x") // after End: dropped
	if len(buf.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(buf.Events))
	}
	if buf.Events[0].Attrs != "" {
		t.Errorf("post-End attr recorded: %q", buf.Events[0].Attrs)
	}
}

// TestSpanNilPathAllocFree pins the disabled-tracing contract: every
// operation on a nil Trace / nil Span is allocation-free.
func TestSpanNilPathAllocFree(t *testing.T) {
	tr := NewTrace(nil)
	if tr != nil {
		t.Fatal("NewTrace(nil) must return nil")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr2 := tr.Timed()
		root := tr2.Root("job")
		root.Attr("k", "v")
		root.AttrInt("n", 7)
		c := root.Child("child")
		c.AttrInt("i", 1)
		c.End()
		root.End()
	})
	if allocs != 0 {
		t.Errorf("nil-trace span path allocates %.1f/op, want 0", allocs)
	}
}

func TestFlightRecorderRingBound(t *testing.T) {
	const capacity = 8
	r := NewFlightRecorder(capacity)
	for i := 0; i < 3*capacity; i++ {
		r.Emit(Event{Kind: KindIter, Iter: i})
	}
	if got := r.Len(); got != capacity {
		t.Fatalf("Len = %d, want %d", got, capacity)
	}
	events, dropped := r.Snapshot()
	if len(events) != capacity {
		t.Fatalf("snapshot len = %d, want %d", len(events), capacity)
	}
	if dropped != 2*capacity {
		t.Errorf("dropped = %d, want %d", dropped, 2*capacity)
	}
	for i, e := range events {
		if want := 2*capacity + i; e.Iter != want {
			t.Errorf("events[%d].Iter = %d, want %d (oldest-first)", i, e.Iter, want)
		}
	}
}

func TestFlightRecorderDefaultCap(t *testing.T) {
	r := NewFlightRecorder(0)
	for i := 0; i < DefaultFlightRecorderCap+10; i++ {
		r.Emit(Event{Kind: KindIter, Iter: i})
	}
	if got := r.Len(); got != DefaultFlightRecorderCap {
		t.Errorf("Len = %d, want %d", got, DefaultFlightRecorderCap)
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.001, 60, 3)
	if b[0] != 0.001 {
		t.Errorf("first bound = %g, want 0.001", b[0])
	}
	if last := b[len(b)-1]; last < 60 {
		t.Errorf("last bound = %g, want ≥ 60", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %g ≤ %g", i, b[i], b[i-1])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty quantile = %g, want 0", h.Quantile(0.5))
	}
	// 100 observations uniform in (0, 4]: 25 per bucket of {1,2,4}... use
	// a simple spread: 50 ≤1, 30 ≤2, 20 ≤4.
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 20; i++ {
		h.Observe(3)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("p50 = %g, want in (0, 1]", q)
	}
	if q := h.Quantile(0.95); q <= 2 || q > 4 {
		t.Errorf("p95 = %g, want in (2, 4]", q)
	}
	// Everything beyond the last bound clamps to it.
	h2 := NewHistogram([]float64{1})
	for i := 0; i < 10; i++ {
		h2.Observe(100)
	}
	if q := h2.Quantile(0.99); q != 1 {
		t.Errorf("+Inf-bucket quantile = %g, want clamp to 1", q)
	}
}
