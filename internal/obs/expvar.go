package obs

import "expvar"

// PublishExpvar exposes the registry's Snapshot under the given expvar
// name (e.g. "gpp"), making it part of every /debug/vars payload.
// Publishing the same name twice is a no-op instead of the expvar panic,
// so CLIs can call this unconditionally.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
