package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Manifest is the reproducibility record of one run: the exact command,
// code version, host shape, and timing, plus caller-supplied extras
// (solver options, seed, circuit stats). Together with a JSONL trace it
// makes any solve re-runnable and attributable from its artifacts alone.
type Manifest struct {
	Tool string   `json:"tool"`
	Args []string `json:"args"`

	GitDescribe string `json:"git_describe,omitempty"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	Start     string  `json:"start"` // RFC 3339
	WallMS    float64 `json:"wall_ms"`
	UserCPUMS float64 `json:"user_cpu_ms,omitempty"`
	SysCPUMS  float64 `json:"sys_cpu_ms,omitempty"`

	// Extra carries run-specific payload: "options" (the solver Options
	// with the Tracer field zeroed), "seed", "circuit" stats, table names…
	Extra map[string]any `json:"extra,omitempty"`

	start time.Time
}

// NewManifest starts a manifest for the named tool: captures the command
// line, environment shape, code version, and the start timestamp.
func NewManifest(tool string) *Manifest {
	now := time.Now()
	return &Manifest{
		Tool:        tool,
		Args:        append([]string(nil), os.Args[1:]...),
		GitDescribe: gitDescribe(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Start:       now.Format(time.RFC3339),
		start:       now,
	}
}

// Set records one extra key (solver options, circuit stats, …).
func (m *Manifest) Set(key string, v any) {
	if m.Extra == nil {
		m.Extra = map[string]any{}
	}
	m.Extra[key] = v
}

// Finish stamps wall and CPU time. Call once, just before writing.
func (m *Manifest) Finish() {
	m.WallMS = float64(time.Since(m.start)) / float64(time.Millisecond)
	user, sys := cpuTimes()
	m.UserCPUMS = float64(user) / float64(time.Millisecond)
	m.SysCPUMS = float64(sys) / float64(time.Millisecond)
}

// Write renders the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	return nil
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// gitDescribe identifies the built code: the module build info's VCS
// revision when present (release binaries), else `git describe` against
// the working tree (development runs), else empty. Best effort only —
// failures never block a run.
func gitDescribe() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
	}
	out, err := exec.Command("git", "describe", "--tags", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
