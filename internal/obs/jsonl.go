package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// JSONL writes one JSON object per event line. The encoder is hand-rolled:
// fields appear in a fixed order per Kind and floats use the shortest
// round-trip representation, so traces of bit-identical solver runs are
// byte-identical (modulo the optional "t" timestamp, see Timestamped).
//
// The sink latches its first write error and drops everything after it;
// Err/Close report that error so the solver can surface it exactly once.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	now func() int64 // nil = no timestamps
	err error
}

// NewJSONL returns a sink writing to w without timestamps — the
// deterministic, diffable configuration.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriterSize(w, 1<<16)}
}

// Timestamped makes the sink stamp every event with a "t" field (unix
// milliseconds). Returns the sink for chaining. Traces stay deterministic
// modulo this one field.
func (j *JSONL) Timestamped() *JSONL {
	j.mu.Lock()
	j.now = func() int64 { return time.Now().UnixMilli() }
	j.mu.Unlock()
	return j
}

// Emit encodes and writes one event. After the first write error the sink
// goes quiet; the error is reported by Err and Close.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if j.now != nil {
		e.T = j.now()
	}
	j.buf = appendEvent(j.buf[:0], e)
	if _, err := j.w.Write(j.buf); err != nil {
		j.err = fmt.Errorf("obs: jsonl write: %w", err)
	}
}

// Err returns the latched write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes the sink and returns the first error seen (write or
// flush). It does not close the underlying writer.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = fmt.Errorf("obs: jsonl flush: %w", err)
	}
	return j.err
}

// AppendEvent appends the one-line JSON encoding of e (including the
// trailing newline) to b — the same deterministic encoding the JSONL sink
// writes. The serve subsystem uses it to frame SSE progress payloads so a
// streamed trace diffs clean against a file trace of the same solve.
func AppendEvent(b []byte, e Event) []byte { return appendEvent(b, e) }

// appendEvent encodes e as one JSON line into b. Only the fields
// meaningful for e.Kind are written, always in the same order; unknown
// kinds fall back to encoding/json over the whole struct.
func appendEvent(b []byte, e Event) []byte {
	b = append(b, `{"ev":"`...)
	b = append(b, e.Kind...)
	b = append(b, '"')
	if e.T != 0 {
		b = appendInt(b, "t", e.T)
	}
	switch e.Kind {
	case KindSolveStart:
		b = appendInt(b, "seed", e.Seed)
		b = appendInt(b, "k", int64(e.K))
		b = appendInt(b, "gates", int64(e.Gates))
		b = appendInt(b, "edges", int64(e.Edges))
	case KindPool:
		b = appendInt(b, "gate_shards", int64(e.GateShards))
		b = appendInt(b, "edge_shards", int64(e.EdgeShards))
	case KindIter:
		b = appendInt(b, "iter", int64(e.Iter))
		b = appendFloat(b, "f", e.F)
		b = appendFloat(b, "f1", e.F1)
		b = appendFloat(b, "f2", e.F2)
		b = appendFloat(b, "f3", e.F3)
		b = appendFloat(b, "f4", e.F4)
		b = appendFloat(b, "grad_norm", e.GradN)
		b = appendFloat(b, "step", e.Step)
		b = appendInt(b, "clamped", int64(e.Clamped))
	case KindSnap:
		b = appendFloat(b, "f_discrete", e.FDiscrete)
	case KindRefine:
		b = appendInt(b, "pass", int64(e.Pass))
		b = appendInt(b, "moves", int64(e.Moves))
	case KindSolveDone:
		b = appendInt(b, "iters", int64(e.Iters))
		b = appendBool(b, "converged", e.Converged)
		b = appendFloat(b, "f_relaxed", e.FRelaxed)
		b = appendFloat(b, "f_discrete", e.FDiscrete)
		b = appendFloat(b, "step", e.Step)
		b = appendInt(b, "refine_moves", int64(e.RefineMoves))
	case KindRestartStart, KindRestartSkipped:
		b = appendInt(b, "restart", int64(e.Restart))
		b = appendInt(b, "seed", e.Seed)
	case KindRestartDone:
		b = appendInt(b, "restart", int64(e.Restart))
		b = appendInt(b, "seed", e.Seed)
		b = appendInt(b, "iters", int64(e.Iters))
		b = appendBool(b, "converged", e.Converged)
		b = appendFloat(b, "f_discrete", e.FDiscrete)
	case KindWinner:
		b = appendInt(b, "seed", e.Seed)
		b = appendInt(b, "restarts", int64(e.Restarts))
		b = appendFloat(b, "f_discrete", e.FDiscrete)
	case KindExperiment:
		b = appendString(b, "circuit", e.Circuit)
		b = appendInt(b, "k", int64(e.K))
		b = appendInt(b, "gates", int64(e.Gates))
		b = appendInt(b, "edges", int64(e.Edges))
	case KindVCycleStart:
		b = appendInt(b, "seed", e.Seed)
		b = appendInt(b, "k", int64(e.K))
		b = appendInt(b, "gates", int64(e.Gates))
		b = appendInt(b, "edges", int64(e.Edges))
		b = appendInt(b, "levels", int64(e.Levels))
	case KindCoarsen:
		b = appendInt(b, "level", int64(e.Level))
		b = appendInt(b, "gates", int64(e.Gates))
		b = appendInt(b, "edges", int64(e.Edges))
	case KindProject:
		b = appendInt(b, "level", int64(e.Level))
		b = appendInt(b, "gates", int64(e.Gates))
	case KindVCycleDone:
		b = appendInt(b, "levels", int64(e.Levels))
		b = appendInt(b, "iters", int64(e.Iters))
		b = appendBool(b, "converged", e.Converged)
		b = appendInt(b, "refine_moves", int64(e.RefineMoves))
		b = appendFloat(b, "f_discrete", e.FDiscrete)
	case KindSimWave:
		b = appendString(b, "circuit", e.Circuit)
		b = appendInt(b, "pulses", int64(e.Pulses))
	case KindSimActivity:
		b = appendString(b, "circuit", e.Circuit)
		b = appendInt(b, "waves", int64(e.Waves))
		b = appendFloat(b, "activity", e.Activity)
	case KindSpan:
		b = appendString(b, "span", e.Span)
		b = appendInt(b, "sid", e.SID)
		b = appendInt(b, "psid", e.PSID)
		// Timing fields only on timed traces: untimed span streams stay
		// byte-identical across runs and worker counts.
		if e.AtUS != 0 || e.DurUS != 0 {
			b = appendInt(b, "at_us", e.AtUS)
			b = appendInt(b, "dur_us", e.DurUS)
		}
		if e.Attrs != "" {
			b = appendString(b, "attrs", e.Attrs)
		}
	default:
		// Unknown kind: re-encode the whole struct (allocates; only hit by
		// foreign event kinds, never by the solver's own).
		raw, err := json.Marshal(e)
		if err == nil {
			return append(b[:0], append(raw, '\n')...)
		}
	}
	return append(b, "}\n"...)
}

func appendInt(b []byte, key string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

func appendBool(b []byte, key string, v bool) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendBool(b, v)
}

func appendFloat(b []byte, key string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	if math.IsNaN(v) || math.IsInf(v, 0) {
		// JSON has no NaN/Inf; null decodes as "field absent".
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendString(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	q, _ := json.Marshal(v)
	return append(b, q...)
}

// ReadTrace decodes a JSONL trace back into events. Blank lines are
// skipped; a malformed line fails with its line number.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}
