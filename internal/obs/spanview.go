package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Span-tree reconstruction and text rendering. Spans are emitted at End,
// so a child's event precedes its parent's in the stream; BuildSpanTree
// reassembles the hierarchy by span id and gpp-inspect / the serve ops
// endpoint render it as an indented waterfall.

// SpanNode is one reconstructed span with its children in start (span-id)
// order.
type SpanNode struct {
	Event    Event
	Children []*SpanNode
}

// BuildSpanTree extracts the KindSpan events from a trace and rebuilds
// the span forest. Spans whose parent never ended (or whose parent id is
// 0) become roots. Roots and children are ordered by span id, which is
// start order.
func BuildSpanTree(events []Event) []*SpanNode {
	nodes := make(map[int64]*SpanNode)
	var spans []*SpanNode
	for _, e := range events {
		if e.Kind != KindSpan || e.SID == 0 {
			continue
		}
		n := &SpanNode{Event: e}
		nodes[e.SID] = n
		spans = append(spans, n)
	}
	var roots []*SpanNode
	for _, n := range spans {
		if p, ok := nodes[n.Event.PSID]; ok && n.Event.PSID != n.Event.SID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Event.SID < ns[j].Event.SID })
	}
	order(roots)
	for _, n := range spans {
		order(n.Children)
	}
	return roots
}

// WriteWaterfall renders a span forest as indented text. Timed spans get
// a duration column, a self-time percentage of their root, and a
// proportional offset bar; untimed spans render structure and attributes
// only.
//
//	solve                                  12.4ms  ██████████████████████
//	├─ cache_lookup outcome=miss           0.1ms   ▏
//	└─ vcycle levels=3                     11.9ms   █████████████████████
func WriteWaterfall(w io.Writer, roots []*SpanNode) {
	for _, root := range roots {
		total := root.Event.DurUS
		writeSpanNode(w, root, "", "", total, root.Event.AtUS)
	}
}

const waterfallCols = 28

func writeSpanNode(w io.Writer, n *SpanNode, prefix, childPrefix string, totalUS, baseUS int64) {
	label := prefix + string(n.Event.Span)
	if n.Event.Attrs != "" {
		label += " [" + n.Event.Attrs + "]"
	}
	if totalUS > 0 {
		bar := spanBar(n.Event.AtUS-baseUS, n.Event.DurUS, totalUS)
		fmt.Fprintf(w, "%-52s %9s  %s\n", label, fmtUS(n.Event.DurUS), bar)
	} else if n.Event.DurUS > 0 || n.Event.AtUS > 0 {
		fmt.Fprintf(w, "%-52s %9s\n", label, fmtUS(n.Event.DurUS))
	} else {
		fmt.Fprintf(w, "%s\n", label)
	}
	for i, c := range n.Children {
		connector, nextPrefix := "├─ ", "│  "
		if i == len(n.Children)-1 {
			connector, nextPrefix = "└─ ", "   "
		}
		writeSpanNode(w, c, childPrefix+connector, childPrefix+nextPrefix, totalUS, baseUS)
	}
}

// spanBar renders a proportional [offset, offset+dur] bar over totalUS.
func spanBar(offsetUS, durUS, totalUS int64) string {
	if totalUS <= 0 {
		return ""
	}
	start := int(float64(offsetUS) / float64(totalUS) * waterfallCols)
	width := int(float64(durUS) / float64(totalUS) * waterfallCols)
	if start < 0 {
		start = 0
	}
	if start > waterfallCols {
		start = waterfallCols
	}
	if width < 1 {
		width = 1
	}
	if start+width > waterfallCols {
		width = waterfallCols - start
		if width < 1 {
			width = 1
			start = waterfallCols - 1
		}
	}
	return strings.Repeat(" ", start) + strings.Repeat("█", width)
}

// fmtUS renders a microsecond duration at human scale.
func fmtUS(us int64) string {
	switch {
	case us >= 10_000_000:
		return fmt.Sprintf("%.1fs", float64(us)/1e6)
	case us >= 10_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
