//go:build !unix

package obs

import "time"

// cpuTimes is unavailable off unix; the manifest omits CPU time there.
func cpuTimes() (user, sys time.Duration) { return 0, 0 }
