package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpp/internal/obs"
	"gpp/internal/store"
)

// profileDoc mirrors the JSON served by GET /v1/jobs/{id}/profile.
type profileDoc struct {
	ID      string            `json:"id"`
	Status  Status            `json:"status"`
	Circuit string            `json:"circuit"`
	K       int               `json:"k"`
	Dropped int64             `json:"dropped"`
	Events  []json.RawMessage `json:"events"`
}

func getProfile(t *testing.T, base, id string) profileDoc {
	t.Helper()
	raw := getBody(t, base, "/v1/jobs/"+id+"/profile", http.StatusOK)
	var doc profileDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("profile is not JSON: %v\n%s", err, raw)
	}
	return doc
}

// profileSpans decodes the profile's raw event lines back into events and
// rebuilds the span forest.
func profileSpans(t *testing.T, doc profileDoc) []*obs.SpanNode {
	t.Helper()
	events := make([]obs.Event, 0, len(doc.Events))
	for _, raw := range doc.Events {
		var e obs.Event
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("profile event %s: %v", raw, err)
		}
		events = append(events, e)
	}
	return obs.BuildSpanTree(events)
}

// TestJobProfileSpanTree is the tracing acceptance test: a cold multilevel
// solve on a durable daemon yields one connected span tree from HTTP
// accept to persist — queue wait, cache lookup (miss), WAL accept, solve →
// vcycle → every hierarchy level, persist — all under the root "job" span.
func TestJobProfileSpanTree(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 8, DataDir: t.TempDir()})
	req := JobRequest{Circuit: "par2000", K: 4,
		Options: &JobOptions{MaxIters: 120}, Multilevel: &MultilevelJob{}}
	_, sb, _ := postJob(t, base, req)
	done := waitTerminal(t, base, sb.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", done.Status, done.Error)
	}

	doc := getProfile(t, base, sb.ID)
	if doc.ID != sb.ID || doc.Status != StatusDone || doc.Circuit != "par2000" || doc.K != 4 {
		t.Fatalf("profile header = %+v", doc)
	}
	roots := profileSpans(t, doc)
	if len(roots) != 1 || roots[0].Event.Span != "job" {
		t.Fatalf("want one connected tree rooted at \"job\", got %d roots", len(roots))
	}
	root := roots[0]
	if !strings.Contains(root.Event.Attrs, "circuit=par2000") ||
		!strings.Contains(root.Event.Attrs, "status=done") {
		t.Errorf("root attrs = %q, want circuit and terminal status", root.Event.Attrs)
	}

	counts := map[string]int{}
	attrs := map[string]string{}
	var walk func(n *obs.SpanNode)
	walk = func(n *obs.SpanNode) {
		counts[n.Event.Span]++
		attrs[n.Event.Span] = n.Event.Attrs
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	for _, want := range []string{"queue_wait", "cache_lookup", "wal_accept", "solve", "vcycle", "coarsen", "level", "persist"} {
		if counts[want] == 0 {
			t.Errorf("span tree missing %q (got %v)", want, counts)
		}
	}
	if attrs["cache_lookup"] != "outcome=miss" {
		t.Errorf("cache_lookup attrs = %q, want outcome=miss", attrs["cache_lookup"])
	}
	if counts["level"] < 2 {
		t.Errorf("%d level spans — V-cycle hierarchy missing from the trace", counts["level"])
	}

	// The trace is timed: the root span carries a duration covering the
	// whole lifecycle.
	if root.Event.DurUS <= 0 {
		t.Errorf("root span duration %dµs, want > 0", root.Event.DurUS)
	}

	// Text rendering of the same profile shows the waterfall.
	text := string(getBody(t, base, "/v1/jobs/"+sb.ID+"/profile?format=text", http.StatusOK))
	for _, want := range []string{"job [", "└─", "vcycle"} {
		if !strings.Contains(text, want) {
			t.Errorf("text profile missing %q:\n%s", want, text)
		}
	}
}

// TestProfileCacheHitOutcome: a repeat submission resolves synchronously
// from the memory cache and its profile says so.
func TestProfileCacheHitOutcome(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	_, cold, _ := postJob(t, base, fastReq(8801))
	waitTerminal(t, base, cold.ID)
	code, hot, _ := postJob(t, base, fastReq(8801))
	if code != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200 cache hit", code)
	}
	doc := getProfile(t, base, hot.ID)
	roots := profileSpans(t, doc)
	if len(roots) != 1 {
		t.Fatalf("%d span roots", len(roots))
	}
	var lookup string
	for _, c := range roots[0].Children {
		if c.Event.Span == "cache_lookup" {
			lookup = c.Event.Attrs
		}
	}
	if lookup != "outcome=memory" {
		t.Errorf("cache_lookup attrs = %q, want outcome=memory", lookup)
	}
	if !strings.Contains(roots[0].Event.Attrs, "cache=hit") {
		t.Errorf("root attrs = %q, want cache=hit", roots[0].Event.Attrs)
	}
}

// TestTracingDisabled: with FlightRecorder < 0 the profile endpoint 404s,
// jobs still solve, and the span call pattern the serve hot path makes is
// allocation-free.
func TestTracingDisabled(t *testing.T) {
	s, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4, FlightRecorder: -1})
	_, sb, _ := postJob(t, base, fastReq(8802))
	done := waitTerminal(t, base, sb.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", done.Status, done.Error)
	}
	getBody(t, base, "/v1/jobs/"+sb.ID+"/profile", http.StatusNotFound)

	j, ok := s.store.get(sb.ID)
	if !ok {
		t.Fatal("job vanished from the store")
	}
	if j.rec != nil || j.trace != nil || j.span != nil {
		t.Fatal("tracing state attached despite FlightRecorder: -1")
	}
	allocs := testing.AllocsPerRun(100, func() {
		j.spanCacheLookup("memory")
		solve := j.span.Child("solve")
		wal := j.span.Child("wal_accept")
		wal.End()
		solve.AttrInt("iters", 100)
		solve.End()
		j.endRootSpan(StatusDone, false)
	})
	if allocs != 0 {
		t.Errorf("disabled-tracing span path allocates %.1f per job", allocs)
	}
}

// TestFlightRecorderBounded: a tiny ring drops oldest events but keeps the
// job's span tree intact (spans emit at End, so the lifecycle spans are
// the newest events and survive).
func TestFlightRecorderBounded(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4,
		FlightRecorder: 32, ProgressEvery: 1})
	req := JobRequest{Circuit: "KSA8", K: 4, Options: &JobOptions{Seed: 9, MaxIters: 2000, Margin: 1e-300}}
	_, sb, _ := postJob(t, base, req)
	waitTerminal(t, base, sb.ID)
	doc := getProfile(t, base, sb.ID)
	if len(doc.Events) > 32 {
		t.Fatalf("ring served %d events, cap 32", len(doc.Events))
	}
	if doc.Dropped == 0 {
		t.Fatal("2000 per-iteration events through a 32-slot ring dropped nothing")
	}
	roots := profileSpans(t, doc)
	if len(roots) != 1 || roots[0].Event.Span != "job" {
		t.Fatalf("root span lost to ring eviction (%d roots)", len(roots))
	}
}

// TestSSEKeepalive: a slow job's event stream carries comment-line
// heartbeats so idle stretches don't look like a dead connection.
func TestSSEKeepalive(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4,
		SSEKeepalive: 20 * time.Millisecond, ProgressEvery: 1_000_000})
	_, sb, _ := postJob(t, base, slowReq(8803))
	waitRunning(t, base, sb.ID)

	resp, err := http.Get(base + "/v1/jobs/" + sb.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	keepalives := 0
	deadline := time.Now().Add(15 * time.Second)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() && time.Now().Before(deadline) {
		if strings.HasPrefix(sc.Text(), ": keepalive") {
			keepalives++
			if keepalives >= 3 {
				return
			}
		}
	}
	t.Fatalf("saw %d keepalive comments before the stream ended (want ≥3)", keepalives)
}

// TestOpsSnapshotAndHealthz: after a cold solve and a cache hit, the ops
// endpoint reports the daemon's counters, quantiles, SLO burn, and recent
// jobs; /healthz carries the new uptime/in-flight fields.
func TestOpsSnapshotAndHealthz(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2, QueueDepth: 8, SLOSolve: time.Hour})
	_, cold, _ := postJob(t, base, fastReq(8804))
	waitTerminal(t, base, cold.ID)
	code, _, _ := postJob(t, base, fastReq(8804))
	if code != http.StatusOK {
		t.Fatalf("resubmit = %d, want cache hit", code)
	}

	var ops opsBody
	if err := json.Unmarshal(getBody(t, base, "/v1/debug/ops", http.StatusOK), &ops); err != nil {
		t.Fatal(err)
	}
	if ops.Jobs.Submitted < 2 || ops.Jobs.Completed < 2 {
		t.Errorf("ops jobs = %+v, want ≥2 submitted and completed", ops.Jobs)
	}
	if ops.Cache.Hits < 1 || ops.Cache.Misses < 1 || ops.Cache.HitRate <= 0 {
		t.Errorf("ops cache = %+v, want ≥1 hit and miss", ops.Cache)
	}
	if ops.Workers != 2 || ops.UptimeS < 0 {
		t.Errorf("ops workers=%d uptime=%f", ops.Workers, ops.UptimeS)
	}
	if ops.Latency.SolveP50S <= 0 {
		t.Errorf("solve p50 = %f, want > 0 after a cold solve", ops.Latency.SolveP50S)
	}
	if ops.SLO == nil || ops.SLO.Within < 1 || ops.SLO.Breached != 0 || ops.SLO.BurnRate != 0 {
		t.Errorf("ops slo = %+v, want ≥1 within and no burn under a 1h target", ops.SLO)
	}
	if len(ops.Recent) == 0 || ops.Recent[0].Status != StatusDone {
		t.Errorf("ops recent = %+v, want newest job done", ops.Recent)
	}

	text := string(getBody(t, base, "/v1/debug/ops?format=text", http.StatusOK))
	for _, want := range []string{"gpp-serve ops", "jobs:", "cache:", "slo:", "└─"} {
		if !strings.Contains(text, want) {
			t.Errorf("ops text missing %q:\n%s", want, text)
		}
	}

	var health struct {
		Status   string  `json:"status"`
		UptimeS  float64 `json:"uptime_s"`
		Inflight *int64  `json:"inflight"`
	}
	if err := json.Unmarshal(getBody(t, base, "/healthz", http.StatusOK), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.UptimeS < 0 || health.Inflight == nil {
		t.Errorf("healthz = %+v, want ok with uptime and inflight", health)
	}
}

// TestProfilePersistedInJournal: the terminal journal record carries the
// job's profile, so the flight recorder survives the daemon.
func TestProfilePersistedInJournal(t *testing.T) {
	dir := t.TempDir()
	s, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DataDir: dir})
	_, sb, _ := postJob(t, base, fastReq(8805))
	waitTerminal(t, base, sb.ID)
	// The worker appends the terminal record after flipping job status;
	// give it a beat.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.durable.mu.Lock()
		_, live := s.durable.live[sb.ID]
		s.durable.mu.Unlock()
		if !live || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	jnl, recs, err := store.OpenJournal(s.durable.st.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	found := false
	for _, rec := range recs {
		if rec.ID == sb.ID && rec.Op == string(StatusDone) {
			found = true
			var doc profileDoc
			if err := json.Unmarshal(rec.Data, &doc); err != nil {
				t.Fatalf("terminal record payload is not a profile: %v", err)
			}
			if doc.ID != sb.ID || len(doc.Events) == 0 {
				t.Fatalf("journaled profile = id %q with %d events", doc.ID, len(doc.Events))
			}
		}
	}
	if !found {
		t.Fatal("no terminal journal record for the finished job")
	}
}
