package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"gpp/internal/gen"
	"gpp/internal/store"
)

// restartServer shuts one daemon down cleanly and boots a fresh one on
// the same data directory — the redeploy half of the durability story
// (the crash half, SIGKILL mid-solve, lives in the e2e test).
func restartServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	return newTestServer(t, cfg)
}

func TestDurableCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, QueueDepth: 8, DataDir: dir}

	s1, base1 := newTestServer(t, cfg)
	code, sb, _ := postJob(t, base1, fastReq(4001))
	if code != http.StatusAccepted {
		t.Fatalf("cold submit = %d, want 202", code)
	}
	done := waitTerminal(t, base1, sb.ID)
	if done.Status != StatusDone {
		t.Fatalf("cold solve ended %s: %s", done.Status, done.Error)
	}
	cold := getBody(t, base1, "/v1/jobs/"+sb.ID+"/result", http.StatusOK)
	shutdownNow(t, s1)

	s2, base2 := restartServer(t, cfg)
	if s2.cache.len() != 0 {
		t.Fatalf("fresh LRU has %d entries", s2.cache.len())
	}
	code, sb2, _ := postJob(t, base2, fastReq(4001))
	// The identical request must resolve synchronously from disk: 200 (not
	// 202), marked a cache hit, body byte-identical to the pre-restart
	// solve.
	if code != http.StatusOK {
		t.Fatalf("post-restart submit = %d, want 200 (disk cache hit)", code)
	}
	if sb2.Cache != "hit" || sb2.Status != StatusDone {
		t.Fatalf("post-restart job: cache=%s status=%s", sb2.Cache, sb2.Status)
	}
	warm := getBody(t, base2, "/v1/jobs/"+sb2.ID+"/result", http.StatusOK)
	if string(cold) != string(warm) {
		t.Fatalf("result changed across restart:\n pre: %s\npost: %s", cold, warm)
	}
	if sb2.Key != sb.Key {
		t.Fatalf("cache key changed across restart: %s vs %s", sb2.Key, sb.Key)
	}
}

func TestDurableJournalReplaysUnfinishedJob(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8, DataDir: dir}

	// Forge the on-disk state a crashed daemon leaves behind: the circuit
	// blob plus an accepted-but-unfinished job in the journal, written with
	// the same store primitives the daemon uses.
	circuit, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	circJSON, err := json.Marshal(circuit)
	if err != nil {
		t.Fatal(err)
	}
	blobKey, err := st.Blobs.Put(circJSON)
	if err != nil {
		t.Fatal(err)
	}
	jnl, _, err := store.OpenJournal(st.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	const jobID = "deadbeef00000001"
	data, err := json.Marshal(&journaledJob{
		ID: jobID, CircuitBlob: blobKey, CircuitName: circuit.Name,
		K: 4, Options: &JobOptions{Seed: 4002, MaxIters: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jnl.Append(store.Record{Op: "accept", ID: jobID, Data: data}); err != nil {
		t.Fatal(err)
	}
	// A second job already marked done must NOT replay.
	if _, err := jnl.Append(store.Record{Op: "accept", ID: "deadbeef00000002", Data: data}); err != nil {
		t.Fatal(err)
	}
	if _, err := jnl.Append(store.Record{Op: "done", ID: "deadbeef00000002"}); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	recovered0 := mJobsRecovered.Value()
	_, base := newTestServer(t, cfg)
	if got := mJobsRecovered.Value() - recovered0; got != 1 {
		t.Fatalf("recovered %v jobs at boot, want 1", got)
	}
	// The replayed job is queryable under its original id and completes.
	sb := waitTerminal(t, base, jobID)
	if sb.Status != StatusDone {
		t.Fatalf("replayed job ended %s: %s", sb.Status, sb.Error)
	}
	if sb.ID != jobID {
		t.Fatalf("replayed job id = %s, want %s", sb.ID, jobID)
	}
	// Its result must equal a fresh submission of the same request — the
	// re-run is a pure function of the journaled request.
	replayed := getBody(t, base, "/v1/jobs/"+jobID+"/result", http.StatusOK)
	code, sb2, _ := postJob(t, base, JobRequest{
		Circuit: "KSA8", K: 4, Options: &JobOptions{Seed: 4002, MaxIters: 300},
	})
	if code != http.StatusOK || sb2.Cache != "hit" {
		t.Fatalf("identical submit after replayed solve: code=%d cache=%s", code, sb2.Cache)
	}
	fresh := getBody(t, base, "/v1/jobs/"+sb2.ID+"/result", http.StatusOK)
	if string(replayed) != string(fresh) {
		t.Fatalf("replayed result differs from fresh solve")
	}
}

func TestDurableJournalMarksFinished(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8, DataDir: dir}

	s1, base1 := newTestServer(t, cfg)
	_, sb, _ := postJob(t, base1, fastReq(4003))
	waitTerminal(t, base1, sb.ID)
	shutdownNow(t, s1)

	// The finished job left a terminal record, so a restart replays
	// nothing and the journal compacts to empty.
	recovered0 := mJobsRecovered.Value()
	s2, _ := restartServer(t, cfg)
	if got := mJobsRecovered.Value() - recovered0; got != 0 {
		t.Fatalf("restart after clean finish recovered %v jobs, want 0", got)
	}
	s2.durable.mu.Lock()
	live := len(s2.durable.live)
	s2.durable.mu.Unlock()
	if live != 0 {
		t.Fatalf("journal has %d live records after clean finish", live)
	}
}

// shutdownNow drains a server inline (httptest cleanup from newTestServer
// will still run later; Shutdown is idempotent).
func shutdownNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestListNewestFirstBoundedFiltered(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	var ids []string
	for i := 0; i < 5; i++ {
		code, sb, _ := postJob(t, base, fastReq(int64(4100+i)))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		waitTerminal(t, base, sb.ID)
		ids = append(ids, sb.ID)
	}
	var out struct {
		Jobs  []statusBody `json:"jobs"`
		Total int          `json:"total"`
	}
	decode := func(path string) {
		t.Helper()
		out.Jobs, out.Total = nil, 0
		if err := json.Unmarshal(getBody(t, base, path, http.StatusOK), &out); err != nil {
			t.Fatal(err)
		}
	}

	decode("/v1/jobs")
	if out.Total != 5 || len(out.Jobs) != 5 {
		t.Fatalf("list: total=%d len=%d, want 5/5", out.Total, len(out.Jobs))
	}
	for i, sb := range out.Jobs { // newest first
		if want := ids[len(ids)-1-i]; sb.ID != want {
			t.Fatalf("list[%d] = %s, want %s (newest first)", i, sb.ID, want)
		}
		if sb.Result != nil {
			t.Fatalf("list[%d] carries a result body", i)
		}
	}

	decode("/v1/jobs?limit=2")
	if out.Total != 5 || len(out.Jobs) != 2 {
		t.Fatalf("limit=2: total=%d len=%d, want 5/2", out.Total, len(out.Jobs))
	}
	if out.Jobs[0].ID != ids[4] || out.Jobs[1].ID != ids[3] {
		t.Fatalf("limit=2 returned %s,%s, want the two newest", out.Jobs[0].ID, out.Jobs[1].ID)
	}

	decode("/v1/jobs?status=done")
	if out.Total != 5 {
		t.Fatalf("status=done total=%d, want 5", out.Total)
	}
	decode("/v1/jobs?status=failed")
	if out.Total != 0 || len(out.Jobs) != 0 {
		t.Fatalf("status=failed: total=%d len=%d, want 0/0", out.Total, len(out.Jobs))
	}

	getBody(t, base, "/v1/jobs?limit=0", http.StatusBadRequest)
	getBody(t, base, "/v1/jobs?limit=x", http.StatusBadRequest)
	getBody(t, base, "/v1/jobs?status=bogus", http.StatusBadRequest)
}
