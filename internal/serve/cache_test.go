package serve

import (
	"fmt"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/multilevel"
	"gpp/internal/partition"
)

func entry(key string) *cacheEntry {
	return &cacheEntry{key: key, body: []byte(key), labels: []int{0}}
}

func TestLRUEvictsColdEnd(t *testing.T) {
	c := newLRU(2)
	c.put(entry("a"))
	c.put(entry("b"))
	if _, ok := c.get("a"); !ok { // refresh a: b is now coldest
		t.Fatal("a missing")
	}
	c.put(entry("c"))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (coldest after a's refresh)")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite being refreshed")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing right after insert")
	}
}

func TestLRUDuplicateInsertKeepsFirst(t *testing.T) {
	c := newLRU(4)
	first := entry("k")
	c.put(first)
	c.put(&cacheEntry{key: "k", body: []byte("other")})
	got, ok := c.get("k")
	if !ok || &got.body[0] != &first.body[0] {
		t.Fatal("duplicate insert replaced the first entry")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(-1)
	c.put(entry("a"))
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatalf("disabled cache len = %d", c.len())
	}
}

func TestCircuitHashStableAndNameBlind(t *testing.T) {
	a, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	if CircuitHash(a) != CircuitHash(b) {
		t.Fatal("two generations of the same benchmark hash differently")
	}
	renamed := a.Clone()
	for i := range renamed.Gates {
		renamed.Gates[i].Name = fmt.Sprintf("x%d", i)
	}
	if CircuitHash(renamed) != CircuitHash(a) {
		t.Fatal("renaming gates changed the circuit hash")
	}
	other, err := gen.Benchmark("MULT4", nil)
	if err != nil {
		t.Fatal(err)
	}
	if CircuitHash(other) == CircuitHash(a) {
		t.Fatal("distinct benchmarks collide")
	}
}

// TestJobKeyContract pins the cache-key semantics: Workers never changes
// the key (the solver is bitwise deterministic across worker counts), while
// every solve-relevant dial does.
func TestJobKeyContract(t *testing.T) {
	c, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(o partition.Options) partition.Options {
		n, err := o.NormalizeFor(4)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	base, err := jobKey(c, norm(partition.Options{Workers: 1}), 4, 1, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}

	parallel, err := jobKey(c, norm(partition.Options{Workers: 8}), 4, 1, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if parallel != base {
		t.Error("Workers changed the cache key; it must be execution-only")
	}

	slack := 0.05
	mlA := multilevel.Options{}.Normalize(4)
	mlB := multilevel.Options{CoarsestSize: 500}.Normalize(4)
	variants := map[string]string{}
	add := func(name string, opts partition.Options, k, restarts int, balanced *float64, ml *multilevel.Options, plan bool) {
		key, err := jobKey(c, norm(opts), k, restarts, balanced, ml, plan)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		variants[name] = key
	}
	add("k5", partition.Options{Workers: 1}, 5, 1, nil, nil, false)
	add("seed", partition.Options{Workers: 1, Seed: 9}, 4, 1, nil, nil, false)
	add("restarts", partition.Options{Workers: 1}, 4, 8, nil, nil, false)
	add("balanced", partition.Options{Workers: 1}, 4, 1, &slack, nil, false)
	add("multilevel", partition.Options{Workers: 1}, 4, 1, nil, &mlA, false)
	add("multilevel-coarsest", partition.Options{Workers: 1}, 4, 1, nil, &mlB, false)
	add("plan", partition.Options{Workers: 1}, 4, 1, nil, nil, true)
	seen := map[string]string{base: "base"}
	for name, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[key] = name
	}

	other, err := gen.Benchmark("MULT4", nil)
	if err != nil {
		t.Fatal(err)
	}
	otherKey, err := jobKey(other, norm(partition.Options{Workers: 1}), 4, 1, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if otherKey == base {
		t.Error("different circuits share a cache key")
	}
}
