package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"gpp/internal/cluster"
	"gpp/internal/multilevel"
	"gpp/internal/obs"
	"gpp/internal/partition"
	"gpp/internal/recycle"
	"gpp/internal/terms"
)

// Server is the partition daemon: an http.Handler plus the worker pool
// behind it. Create one with New, mount it (or let Run listen), and stop
// it with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	store   *jobStore
	cache   *lru
	durable *durable // nil unless Config.DataDir is set
	queue   chan *job
	stats   *serverStats

	// sweeps is the batch-sweep registry; sweepWG tracks the feeder and
	// finalizer goroutines so Shutdown drains them with the workers.
	sweeps  *sweepStore
	sweepWG sync.WaitGroup

	// qmu guards the draining flag and queue sends against the close in
	// Shutdown; a send never races the close because both hold qmu.
	qmu      sync.Mutex
	draining bool

	workers  sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc

	// Cluster membership (nil in single-node mode) and the jobs currently
	// out on loan to thieves, keyed by job id.
	cluster  *cluster.Cluster
	stolenMu sync.Mutex
	stolen   map[string]*stolenJob
	loopStop chan struct{}  // closed at drain; stops steal/reclaim loops
	loops    sync.WaitGroup // steal + reclaim loop goroutines
}

// New builds a Server and starts its worker pool. With Config.DataDir
// set it also opens the durable store, replays the job journal, and
// re-enqueues every accepted-but-unfinished job under its original id
// before returning. The caller owns shutdown: every New must be paired
// with Shutdown (tests included), or the workers leak.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		store:  newJobStore(cfg.MaxJobs),
		cache:  newLRU(cfg.CacheEntries),
		queue:  make(chan *job, cfg.QueueDepth),
		stats:  newServerStats(),
		sweeps: newSweepStore(),
	}
	var pending []*journaledJob
	if cfg.DataDir != "" {
		var err error
		s.durable, pending, err = openDurable(cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: open data dir %s: %w", cfg.DataDir, err)
		}
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	s.routes()
	// Cluster state must exist before the first worker runs: recovery can
	// hand a replayed job to a worker immediately, and its peer-cache
	// read-through reads s.cluster.
	if err := s.startCluster(); err != nil {
		return nil, err
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer s.workers.Done()
			for j := range s.queue {
				mQueueDepth.Set(float64(len(s.queue)))
				s.runJob(j)
			}
		}()
	}
	// Recovery happens with the workers already draining the queue, so a
	// replay larger than the queue buffer cannot deadlock the blocking
	// sends; Shutdown cannot race New's sends because the caller does not
	// hold the Server yet.
	for _, jj := range pending {
		s.recoverJob(jj)
	}
	if s.durable != nil && cfg.StoreMaxBytes > 0 {
		if _, err := s.durable.st.Blobs.GC(cfg.StoreMaxBytes, 0); err != nil {
			return nil, fmt.Errorf("serve: boot GC: %w", err)
		}
	}
	return s, nil
}

// recoverJob rebuilds one journaled job and re-enqueues it under its
// original id. Unrecoverable jobs (circuit blob lost, request no longer
// valid) are marked terminal in the journal so they do not replay again.
func (s *Server) recoverJob(jj *journaledJob) {
	c, err := s.durable.loadCircuit(jj)
	if err == nil {
		var j *job
		j, _, err = s.makeJob(c, jj.CircuitName, &JobRequest{
			K: jj.K, Restarts: jj.Restarts, BalancedSlack: jj.Balanced,
			Multilevel: jj.Multilevel,
			Plan:       jj.Plan, TimeoutMS: jj.TimeoutMS, Options: jj.Options,
		})
		if err == nil {
			j.id = jj.ID
			mSubmitted.Inc()
			mJobsRecovered.Inc()
			s.stats.submitted.Add(1)
			s.store.add(j)
			j.publish(obs.Event{Kind: kindJobQueued})
			j.beginQueueWait()
			s.queue <- j
			mQueueDepth.Set(float64(len(s.queue)))
			return
		}
	}
	fmt.Fprintf(os.Stderr, "gpp-serve: journaled job %s unrecoverable, dropping: %v\n", jj.ID, err)
	s.durable.finishJob(jj.ID, StatusFailed, nil)
}

// cacheGet is the two-level cache lookup: the in-memory LRU first, then
// (when durable) the blob store, promoting disk hits into the LRU. tier
// names where the hit landed ("memory" or "disk") for the lookup span.
func (s *Server) cacheGet(key string) (ent *cacheEntry, tier string, ok bool) {
	if ent, ok := s.cache.get(key); ok {
		return ent, "memory", true
	}
	if s.durable != nil {
		if ent, ok := s.durable.loadEntry(key); ok {
			s.cache.put(ent)
			return ent, "disk", true
		}
	}
	return nil, "", false
}

// ServeHTTP dispatches to the daemon's mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.draining
}

// Shutdown drains the daemon: admissions stop (submissions get 503), the
// queue is closed, and every accepted job — queued or in flight — runs to
// completion with its response intact. If ctx expires first, in-flight
// solves are cancelled (they stop within one gradient iteration, are
// recorded as cancelled jobs, and the remaining queued jobs fail fast the
// same way) and ctx's error is returned. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.qmu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		if s.loopStop != nil {
			close(s.loopStop)
		}
	}
	s.qmu.Unlock()

	// The loop join covers a stolen job this node is solving for a peer
	// (stealLoop runs it synchronously), so drain extends to borrowed
	// work; waitStolen below covers the mirror case of jobs on loan.
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		s.loops.Wait()
		// Sweep feeders stop at the next enqueue (503 while draining) and
		// finalizers return once their last cell is terminal, which the
		// worker drain above guarantees.
		s.sweepWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseStop() // cancel every job context; drains promptly
		<-done
		err = ctx.Err()
	}
	s.waitStolen(ctx)
	if s.cluster != nil {
		s.cluster.Close()
	}
	s.closeDurable()
	return err
}

// closeDurable releases the journal handle once, after the last worker
// (and with it the last journal append) is done. Shutdown is idempotent,
// so the close must be too; durable.close tolerates a double close.
func (s *Server) closeDurable() {
	if s.durable != nil {
		s.durable.close()
	}
}

// Run listens on addr and serves until ctx is cancelled (the daemon wires
// SIGTERM/SIGINT into ctx), then drains with the given grace period and
// finally closes the listener. It returns the bound address via the
// started callback (nil is fine) so callers binding ":0" can discover it.
func (s *Server) Run(ctx context.Context, addr string, grace time.Duration, started func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	if started != nil {
		started(ln.Addr().String())
	}
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	drainErr := s.Shutdown(dctx)
	// In-flight jobs are done (or cancelled); now stop the HTTP side,
	// giving open SSE streams a moment to flush their terminal frames.
	hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer hcancel()
	_ = hs.Shutdown(hctx)
	return drainErr
}

// enqueue admits a job under the backpressure contract. It returns
// http.StatusAccepted on success, 503 while draining, or 429 when full.
func (s *Server) enqueue(j *job) int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.draining {
		return http.StatusServiceUnavailable
	}
	select {
	case s.queue <- j:
		mQueueDepth.Set(float64(len(s.queue)))
		return http.StatusAccepted
	default:
		return http.StatusTooManyRequests
	}
}

// retryAfterSeconds estimates how long a rejected client should wait: the
// time to drain this node's live backlog — queued plus in-flight jobs, so
// the hint shrinks as the queue empties — at the recent mean job time,
// bounded to [1, 60] seconds. Scaling with actual depth matters once
// nodes are clustered: clients spraying a busy node back off in
// proportion to its load instead of stampeding back in lockstep. Uses the
// per-server stats, not the process-global histogram, which other servers
// in the same process (tests run dozens) would pollute.
func (s *Server) retryAfterSeconds() int {
	backlog := len(s.queue) + int(s.stats.inflight.Load())
	if backlog < 1 {
		backlog = 1
	}
	n := s.stats.jobSeconds.Count()
	if n == 0 {
		return 1
	}
	mean := s.stats.jobSeconds.Sum() / float64(n)
	wait := mean * float64(backlog) / float64(s.cfg.Workers)
	if wait < 1 {
		return 1
	}
	if wait > 60 {
		return 60
	}
	return int(wait + 0.5)
}

// runJob executes one queued job end to end. Every terminal transition
// goes through claimFinish (directly or via finishWithError): a job
// reclaimed from a dead thief can race the thief's late complete, and
// exactly one of the two may finish it.
func (s *Server) runJob(j *job) {
	defer j.cancel()
	j.endQueueWait(s.stats)
	// A second identical request may have been cached while this one
	// waited in the queue; serve it from there instead of re-solving.
	if ent, tier, ok := s.cacheGet(j.key); ok {
		if !j.claimFinish() {
			return
		}
		j.spanCacheLookup(tier)
		mCacheHits.Inc()
		mCompleted.Inc()
		s.stats.cacheHits.Add(1)
		s.stats.completed.Add(1)
		j.setRunning()
		j.finishOK(ent.body, ent.labels, true)
		s.journalFinish(j, StatusDone)
		return
	}
	// Third cache tier: a peer may have solved this key already. Runs
	// before the miss is counted, so a peer hit keeps the invariant that
	// every submission resolves as exactly one hit or one miss.
	if ent, ok := s.peerFetch(j); ok {
		if !j.claimFinish() {
			return
		}
		j.spanCacheLookup("peer")
		mCacheHits.Inc()
		mCompleted.Inc()
		s.stats.cacheHits.Add(1)
		s.stats.completed.Add(1)
		j.setRunning()
		j.finishOK(ent.body, ent.labels, true)
		s.journalFinish(j, StatusDone)
		return
	}
	j.spanCacheLookup("miss")
	// This is the single miss-counting point: every submission resolves as
	// exactly one hit (here or synchronously at submit) or one miss, so
	// hits + misses never exceeds submissions. countMiss dedupes the
	// re-run of a job that already counted its miss when it was stolen.
	if j.countMiss() {
		mCacheMisses.Inc()
		s.stats.cacheMiss.Add(1)
	}
	if err := j.ctx.Err(); err != nil {
		s.finishWithError(j, err)
		return
	}
	j.setRunning()
	mInflight.Add(1)
	s.stats.inflight.Add(1)
	start := time.Now()
	solveSpan := j.span.Child("solve")
	body, labels, err := s.solve(j, solveSpan)
	solveSpan.End()
	mInflight.Add(-1)
	s.stats.inflight.Add(-1)
	if err != nil {
		s.finishWithError(j, err)
		return
	}
	elapsed := time.Since(start)
	mJobSeconds.Observe(elapsed.Seconds())
	s.stats.jobSeconds.Observe(elapsed.Seconds())
	if s.cfg.SLOSolve > 0 {
		if elapsed <= s.cfg.SLOSolve {
			mSLOWithin.Inc()
			s.stats.sloWithin.Add(1)
		} else {
			mSLOBreached.Inc()
			s.stats.sloBreach.Add(1)
		}
	}
	persist := j.span.Child("persist")
	ent := &cacheEntry{key: j.key, body: body, labels: labels}
	s.cache.put(ent)
	if s.durable != nil {
		s.durable.persistEntry(ent)
	}
	persist.End()
	// The cache write above stands even if a thief's complete won the
	// finish race while this re-solve ran — the bytes are identical.
	if !j.claimFinish() {
		return
	}
	mCompleted.Inc()
	s.stats.completed.Add(1)
	j.finishOK(body, labels, false)
	s.journalFinish(j, StatusDone)
}

// finishWithError resolves a job as cancelled or failed. It reports
// whether this caller won the finish claim; a false return means someone
// else (a thief's complete, a concurrent re-solve) already finished the
// job and nothing was recorded.
func (s *Server) finishWithError(j *job, err error) bool {
	if !j.claimFinish() {
		return false
	}
	if errors.Is(err, context.Canceled) {
		mCancelled.Inc()
		s.stats.cancelled.Add(1)
		j.finishErr(StatusCancelled, err)
		s.journalFinish(j, StatusCancelled)
		return true
	}
	mFailed.Inc()
	s.stats.failed.Add(1)
	j.finishErr(StatusFailed, err)
	s.journalFinish(j, StatusFailed)
	return true
}

// journalFinish records a job's terminal state when running durable,
// attaching the flight-recorder profile so crashed-and-replayed history
// keeps a forensic trail of how each job actually ran.
func (s *Server) journalFinish(j *job, st Status) {
	if s.durable != nil {
		s.durable.finishJob(j.id, st, j.profileJSON())
	}
}

// solve runs the job's configured solver flavor and marshals the result
// envelope. The progress tracer forwards a throttled event stream into
// the job's broker and flight recorder; span is the job's "solve" span
// the solver layers hang their descent/vcycle spans under. The solver's
// determinism guarantees make the envelope a pure function of the cache
// key — the tracer and span never influence the result.
func (s *Server) solve(j *job, span *obs.Span) (body []byte, labels []int, err error) {
	// The term registry builds the problem: with an empty term set this is
	// exactly partition.FromCircuit (the historical kernel path, bit for
	// bit); regime terms rescale biases, drop/reweight edges, and attach
	// the compiled plane-term tables before the solver ever runs.
	p, opts, err := terms.BuildProblem(j.circuit, j.k, j.opts, s.cfg.Library)
	if err != nil {
		return nil, nil, err
	}
	opts.Span = span
	every := s.cfg.ProgressEvery
	opts.Tracer = obs.TracerFunc(func(e obs.Event) {
		if e.Kind == obs.KindIter && every > 1 && e.Iter%every != 0 {
			return
		}
		j.publish(e)
	})

	var res *partition.Result
	var mr *multilevel.Result
	bestSeed := int64(0)
	switch {
	case j.ml != nil:
		mlOpts := *j.ml
		mlOpts.Solver = opts
		mr, err = multilevel.PartitionCtx(j.ctx, p, mlOpts)
		if err == nil {
			res = &partition.Result{
				Labels: mr.Labels, Iters: mr.Iters, Converged: mr.Converged,
				Discrete: mr.Discrete, RefineMoves: mr.RefineMoves,
			}
		}
	case j.balanced != nil:
		res, err = p.SolveBalancedCtx(j.ctx, opts, *j.balanced)
	case j.restarts > 1:
		// Restarts are the parallelism axis within the job: auto (one per
		// CPU) while kernels stay serial, which is the daemon default. A
		// request that raises kernel workers flips the axis — restarts go
		// serial so exactly one of the two knobs is parallel, per the
		// PortfolioOptions guidance (the product would oversubscribe).
		portfolioWorkers := 0
		if opts.Workers > 1 {
			portfolioWorkers = 1
		}
		var pf *partition.Portfolio
		pf, err = p.SolvePortfolio(j.ctx, opts, partition.PortfolioOptions{
			Restarts: j.restarts,
			Workers:  portfolioWorkers,
		})
		if err == nil {
			res = pf.Best
			bestSeed = pf.BestSeed
		}
	default:
		res, err = p.SolveCtx(j.ctx, opts)
	}
	if err != nil {
		return nil, nil, err
	}
	m, err := recycle.Evaluate(p, res.Labels)
	if err != nil {
		return nil, nil, err
	}
	env := resultEnvelope{
		K:            j.k,
		BestSeed:     bestSeed,
		Iters:        res.Iters,
		Converged:    res.Converged,
		DiscreteCost: res.Discrete.Total,
		RefineMoves:  res.RefineMoves,
		Labels:       res.Labels,
		Metrics:      metricsJSON(m),
		Cost: &costJSON{
			F1: res.Discrete.F1, F2: res.Discrete.F2,
			F3: res.Discrete.F3, F4: res.Discrete.F4,
			Extra: res.Discrete.Extra, Total: res.Discrete.Total,
		},
	}
	if mr != nil {
		env.Levels = mr.Levels
		env.CoarsestSize = mr.CoarsestSize
	}
	if j.plan {
		pl, perr := recycle.BuildPlan(j.circuit, p, res.Labels, recycle.PlanOptions{Library: s.cfg.Library})
		if perr != nil {
			return nil, nil, perr
		}
		crossings, pairs := m.CrossingCount()
		env.Plan = &planJSON{
			SupplyCurrentMA: pl.SupplyCurrent,
			SavedCurrentMA:  pl.SavedCurrent(),
			StackVoltageMV:  pl.StackVoltage() * 1000,
			Crossings:       crossings,
			CouplerPairs:    pairs,
			CouplerAreaMM2:  pl.TotalCouplerArea,
			DummyAreaMM2:    pl.TotalDummyArea,
			MaxHops:         pl.MaxHopsPerConnection,
		}
	}
	body, err = json.Marshal(&env)
	if err != nil {
		return nil, nil, err
	}
	return body, res.Labels, nil
}

// resultEnvelope is the cached/served result document. Marshaling goes
// through encoding/json with a fixed field order (struct order) and
// shortest-round-trip floats, so bit-identical solver outputs marshal to
// byte-identical documents — the property the cache-determinism tests
// assert end to end.
type resultEnvelope struct {
	K            int         `json:"k"`
	BestSeed     int64       `json:"best_seed,omitempty"`
	Iters        int         `json:"iters"`
	Converged    bool        `json:"converged"`
	DiscreteCost float64     `json:"discrete_cost"`
	RefineMoves  int         `json:"refine_moves,omitempty"`
	Levels       int         `json:"levels,omitempty"`
	CoarsestSize int         `json:"coarsest_size,omitempty"`
	Labels       []int       `json:"labels"`
	Metrics      metricsBody `json:"metrics"`
	Cost         *costJSON   `json:"cost_breakdown,omitempty"`
	Plan         *planJSON   `json:"plan,omitempty"`
}

// costJSON is the discrete cost decomposed per objective term — what a
// sweep's ranked cells report as their per-cell breakdown. Extra is the
// summed plane-term (regime) contribution, zero on the default term set.
type costJSON struct {
	F1    float64 `json:"f1"`
	F2    float64 `json:"f2"`
	F3    float64 `json:"f3"`
	F4    float64 `json:"f4"`
	Extra float64 `json:"extra,omitempty"`
	Total float64 `json:"total"`
}

// metricsBody mirrors recycle.Metrics with wire-friendly names plus the
// paper's derived headline percentages.
type metricsBody struct {
	K           int       `json:"k"`
	Gates       int       `json:"gates"`
	Edges       int       `json:"edges"`
	DistHist    []int     `json:"dist_hist"`
	PlaneBias   []float64 `json:"plane_bias_ma"`
	PlaneArea   []float64 `json:"plane_area_mm2"`
	TotalBias   float64   `json:"total_bias_ma"`
	TotalArea   float64   `json:"total_area_mm2"`
	BMax        float64   `json:"b_max_ma"`
	IComp       float64   `json:"i_comp_ma"`
	ICompPct    float64   `json:"i_comp_pct"`
	AMax        float64   `json:"a_max_mm2"`
	AFreePct    float64   `json:"a_free_pct"`
	EmptyPlanes int       `json:"empty_planes,omitempty"`
	DistLE1Pct  float64   `json:"dist_le1_pct"`
	DistLE2Pct  float64   `json:"dist_le2_pct"`
	HalfKPct    float64   `json:"dist_le_halfk_pct"`
}

func metricsJSON(m *recycle.Metrics) metricsBody {
	return metricsBody{
		K: m.K, Gates: m.Gates, Edges: m.Edges,
		DistHist: m.DistHist, PlaneBias: m.PlaneBias, PlaneArea: m.PlaneArea,
		TotalBias: m.TotalBias, TotalArea: m.TotalArea,
		BMax: m.BMax, IComp: m.IComp, ICompPct: m.ICompPct,
		AMax: m.AMax, AFreePct: m.AFreePct, EmptyPlanes: m.EmptyPlanes,
		DistLE1Pct: m.DistLEPct(1), DistLE2Pct: m.DistLEPct(2), HalfKPct: m.HalfKDistPct(),
	}
}

// planJSON is the recycling-plan summary included when a job asks for it.
type planJSON struct {
	SupplyCurrentMA float64 `json:"supply_current_ma"`
	SavedCurrentMA  float64 `json:"saved_current_ma"`
	StackVoltageMV  float64 `json:"stack_voltage_mv"`
	Crossings       int     `json:"crossings"`
	CouplerPairs    int     `json:"coupler_pairs"`
	CouplerAreaMM2  float64 `json:"coupler_area_mm2"`
	DummyAreaMM2    float64 `json:"dummy_area_mm2"`
	MaxHops         int     `json:"max_hops"`
}
