package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"gpp/internal/netlist"
	"gpp/internal/obs"
	"gpp/internal/store"
)

// Durability glue: when Config.DataDir is set, the daemon survives a
// crash or redeploy with its two kinds of state intact.
//
//   - Result cache. Every solved entry is persisted to the blob store
//     under its cache key (the request's content address), so a restarted
//     daemon answers repeated requests byte-identical from disk — the
//     in-memory LRU becomes a read-through cache over the blob store.
//
//   - Job queue. Accepted jobs are journaled (write-ahead: the accept
//     record is durable before the 202 leaves the process) with their
//     circuit stored content-addressed in the blob store. On boot the
//     journal replays, every accepted-but-unfinished job is re-enqueued
//     under its original id — a client polling a pre-crash job id finds
//     its job running again, not a 404 — and the journal compacts down
//     to the still-live records.
//
// Journal record schema: op "accept" carries a journaledJob document;
// "done", "failed", and "cancelled" mark that id terminal; "handoff"
// records a steal grant (informational — the accept stays live, so a
// crash mid-steal replays the job). Unknown ops are ignored on replay.
type durable struct {
	st  *store.Store
	jnl *store.Journal

	// blobs is where circuits and cache entries live, behind the Backend
	// seam: every durable read/write goes through it, so pointing it at a
	// remote object store is a one-line change here. Only maintenance
	// (boot GC) reaches for the concrete on-disk store.
	blobs store.Backend

	// mu guards live, the accept records not yet marked terminal — the
	// compaction set.
	mu   sync.Mutex
	live map[string]store.Record
}

// compactAfter bounds journal growth: once this many records accumulate
// past the last compact, the journal is rewritten down to the live set.
const compactAfter = 1024

// journaledJob is the accept record's payload: the original request with
// the circuit replaced by its content address in the blob store (a DEF
// upload would otherwise bloat the journal, and the blob dedupes repeat
// submissions of the same circuit for free).
type journaledJob struct {
	ID          string         `json:"id"`
	CircuitBlob string         `json:"circuit_blob"`
	CircuitName string         `json:"circuit_name"`
	K           int            `json:"k"`
	Restarts    int            `json:"restarts,omitempty"`
	Balanced    *float64       `json:"balanced_slack,omitempty"`
	Multilevel  *MultilevelJob `json:"multilevel,omitempty"`
	Plan        bool           `json:"plan,omitempty"`
	TimeoutMS   int64          `json:"timeout_ms,omitempty"`
	Options     *JobOptions    `json:"options,omitempty"`
}

// cacheBlob is the persisted form of one cache entry: the exact served
// body plus the decoded labels the assignment endpoint needs.
type cacheBlob struct {
	Labels []int           `json:"labels"`
	Body   json.RawMessage `json:"body"`
}

// openDurable opens the data directory, replays the journal, and returns
// the durable state plus the jobs to re-enqueue (in journal order).
func openDurable(cfg Config) (*durable, []*journaledJob, error) {
	st, err := store.Open(cfg.DataDir)
	if err != nil {
		return nil, nil, err
	}
	jnl, recs, err := store.OpenJournal(st.JournalPath())
	if err != nil {
		return nil, nil, err
	}
	d := &durable{st: st, jnl: jnl, blobs: st.Blobs, live: make(map[string]store.Record)}
	for _, rec := range recs {
		switch rec.Op {
		case "accept":
			d.live[rec.ID] = rec
		case string(StatusDone), string(StatusFailed), string(StatusCancelled):
			delete(d.live, rec.ID)
		default:
			// "handoff" (and any future informational op) does NOT
			// terminate the accept record: a node that crashed after
			// granting a steal re-enqueues the job — the thief's result,
			// if it ever arrives, dedupes against the re-run via
			// claimFinish, so the job still finishes exactly once.
		}
	}
	// Unfinished jobs, oldest first (map iteration is unordered; the
	// journal is the order of record).
	var pending []*journaledJob
	for _, rec := range recs {
		liveRec, ok := d.live[rec.ID]
		if !ok || liveRec.Seq != rec.Seq {
			continue
		}
		var jj journaledJob
		if err := json.Unmarshal(rec.Data, &jj); err != nil {
			fmt.Fprintf(os.Stderr, "gpp-serve: journal record %d (job %s) unreadable, skipping: %v\n", rec.Seq, rec.ID, err)
			delete(d.live, rec.ID)
			continue
		}
		pending = append(pending, &jj)
	}
	// Start from a compact log: replayed history minus everything
	// terminal.
	if err := d.compactLocked(); err != nil {
		return nil, nil, err
	}
	return d, pending, nil
}

// loadCircuit fetches and decodes a journaled job's circuit blob.
func (d *durable) loadCircuit(jj *journaledJob) (*netlist.Circuit, error) {
	raw, err := d.blobs.Get(jj.CircuitBlob)
	if err != nil {
		return nil, fmt.Errorf("job %s circuit blob: %w", jj.ID, err)
	}
	var c netlist.Circuit
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("job %s circuit blob %s: %w", jj.ID, jj.CircuitBlob, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("job %s circuit blob %s: %w", jj.ID, jj.CircuitBlob, err)
	}
	return &c, nil
}

// acceptJob write-ahead-logs an accepted job: circuit into the blob
// store (content-addressed, deduped), accept record fsync'd into the
// journal. Called before the 202 is written; an error here fails the
// submission rather than accepting a job that could not be made durable.
func (d *durable) acceptJob(j *job, req *JobRequest) error {
	circJSON, err := json.Marshal(j.circuit)
	if err != nil {
		return fmt.Errorf("serve: journal circuit: %w", err)
	}
	blobKey, err := d.blobs.Put(circJSON)
	if err != nil {
		return fmt.Errorf("serve: journal circuit: %w", err)
	}
	jj := journaledJob{
		ID:          j.id,
		CircuitBlob: blobKey,
		CircuitName: j.circuitName,
		K:           j.k,
		Restarts:    j.restarts,
		Balanced:    j.balanced,
		Multilevel:  req.Multilevel,
		Plan:        j.plan,
		TimeoutMS:   req.TimeoutMS,
		Options:     req.Options,
	}
	data, err := json.Marshal(&jj)
	if err != nil {
		return fmt.Errorf("serve: journal job: %w", err)
	}
	rec, err := d.jnl.Append(store.Record{Op: "accept", ID: j.id, Data: data})
	if err != nil {
		return fmt.Errorf("serve: journal job: %w", err)
	}
	d.mu.Lock()
	d.live[j.id] = rec
	d.mu.Unlock()
	return nil
}

// handoffJob journals a steal handoff. The record is informational — the
// accept record stays live, so a crash on either side replays the job —
// but it must be durable before the grant leaves the process: it is the
// forensic evidence of where the job went, and the fsync is the point of
// no return after which the thief may be executing.
func (d *durable) handoffJob(id, thief string) error {
	data, err := json.Marshal(map[string]string{"thief": thief})
	if err != nil {
		return fmt.Errorf("serve: journal handoff: %w", err)
	}
	if _, err := d.jnl.Append(store.Record{Op: "handoff", ID: id, Data: data}); err != nil {
		return fmt.Errorf("serve: journal handoff: %w", err)
	}
	return nil
}

// reacceptJob re-registers a replayed job in the live map under its
// original accept record (already in the journal; nothing is appended).
func (d *durable) reacceptJob(id string, rec store.Record) {
	d.mu.Lock()
	d.live[id] = rec
	d.mu.Unlock()
}

// finishJob marks a job terminal in the journal, attaching the job's
// flight-recorder profile (may be nil) as the record payload — recent
// terminal records double as a post-mortem trail until the next
// compaction. Errors are reported but not fatal: the worst case is a
// finished job being re-run after a crash, and the solver's determinism
// makes that re-run byte-identical.
func (d *durable) finishJob(id string, status Status, profile []byte) {
	if _, err := d.jnl.Append(store.Record{Op: string(status), ID: id, Data: profile}); err != nil {
		fmt.Fprintf(os.Stderr, "gpp-serve: journal finish %s: %v\n", id, err)
		return
	}
	d.mu.Lock()
	delete(d.live, id)
	doCompact := d.jnl.AppendsSinceCompact() >= compactAfter
	var err error
	if doCompact {
		err = d.compactLocked()
	}
	d.mu.Unlock()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpp-serve: journal compact: %v\n", err)
	}
}

// compactLocked rewrites the journal down to the live accept records, in
// sequence order. Callers hold d.mu (or have exclusive access at boot).
func (d *durable) compactLocked() error {
	recs := make([]store.Record, 0, len(d.live))
	for _, rec := range d.live {
		recs = append(recs, rec)
	}
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Seq < recs[j-1].Seq; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	return d.jnl.Compact(recs)
}

// persistEntry writes a finished solve's cache entry to the blob store
// under its cache key. Best-effort: a disk error costs re-solving after
// a restart, not correctness.
func (d *durable) persistEntry(e *cacheEntry) {
	data, err := json.Marshal(&cacheBlob{Labels: e.labels, Body: e.body})
	if err == nil {
		err = d.blobs.PutKeyed(e.key, data)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpp-serve: persist cache entry: %v\n", err)
		return
	}
	mCachePersisted.Inc()
}

// loadEntry reads a cache entry back from the blob store; ok is false on
// any miss or damage (damaged blobs are quarantined by the store).
func (d *durable) loadEntry(key string) (*cacheEntry, bool) {
	raw, err := d.blobs.Get(key)
	if err != nil {
		return nil, false
	}
	var cb cacheBlob
	if err := json.Unmarshal(raw, &cb); err != nil {
		return nil, false
	}
	mCacheDiskHits.Inc()
	return &cacheEntry{key: key, body: cb.Body, labels: cb.Labels}, true
}

// close releases the journal handle.
func (d *durable) close() {
	if err := d.jnl.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "gpp-serve: close journal: %v\n", err)
	}
}

var (
	mCachePersisted = obs.Default().Counter("gpp_serve_cache_persisted_total",
		"result-cache entries written to the blob store")
	mCacheDiskHits = obs.Default().Counter("gpp_serve_cache_disk_hits_total",
		"cache lookups answered from the blob store after an LRU miss")
	mJobsRecovered = obs.Default().Counter("gpp_serve_jobs_recovered_total",
		"journaled unfinished jobs re-enqueued at boot")
)
