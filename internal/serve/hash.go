package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"gpp/internal/multilevel"
	"gpp/internal/netlist"
	"gpp/internal/partition"
)

// CircuitHash returns the hex sha256 of the circuit's canonical bytes
// (netlist.AppendCanonical): the content address of everything the solver
// sees. Instance and cell names are excluded — renaming gates does not
// change the solve — while gate/edge order is included, because the
// kernels' fixed reduction order makes a reordered circuit a different
// float computation.
func CircuitHash(c *netlist.Circuit) string {
	sum := sha256.Sum256(c.AppendCanonical(nil))
	return hex.EncodeToString(sum[:])
}

// cacheKey derives the content address of one solve: the circuit hash
// input, the normalized options fingerprint (which deliberately excludes
// Workers/Tracer/TraceCost — see partition.Options.Fingerprint), the
// plane count, the restart count, the balanced-rounding slack (absent
// when plain argmax snapping is used), the normalized multilevel knobs
// (absent for flat solves — a V-cycle's result differs from the flat
// descent's on the same circuit and options), and the plan flag. The
// plan flag must be part of the key because the cached body differs with
// it: a plan=true result embeds the recycling-plan section, a plan=false
// result omits it, and serving one for the other would silently drop or
// invent that section. Any two requests with equal keys are guaranteed
// the same result bytes; the determinism tests hold the serve stack to
// that.
func cacheKey(c *netlist.Circuit, optsFingerprint string, k, restarts int, balanced float64, hasBalanced bool, ml *multilevel.Options, plan bool) string {
	h := sha256.New()
	h.Write([]byte("gpp-serve-v1\n"))
	h.Write(c.AppendCanonical(nil))
	fmt.Fprintf(h, "\n%s|k=%d|restarts=%d", optsFingerprint, k, restarts)
	if hasBalanced {
		fmt.Fprintf(h, "|balanced=%s", strconv.FormatFloat(balanced, 'x', -1, 64))
	}
	if ml != nil {
		fmt.Fprintf(h, "|ml=%d,%d,%d,%d", ml.CoarsestSize, ml.MaxLevels, ml.RefineIters, ml.RefinePasses)
	}
	if plan {
		h.Write([]byte("|plan=true"))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// jobKey computes the cache key for a parsed job request. The solver
// options must already be normalized for k so the fingerprint resolves
// the K-dependent InitStep default, and ml (when set) must already be
// normalized so default spellings collapse to one key.
func jobKey(c *netlist.Circuit, opts partition.Options, k, restarts int, balanced *float64, ml *multilevel.Options, plan bool) (string, error) {
	fp, err := opts.Fingerprint()
	if err != nil {
		return "", err
	}
	if balanced != nil {
		return cacheKey(c, fp, k, restarts, *balanced, true, ml, plan), nil
	}
	return cacheKey(c, fp, k, restarts, 0, false, ml, plan), nil
}
