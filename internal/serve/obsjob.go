package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"gpp/internal/obs"
)

// Per-job observability: every accepted job carries a timed span trace
// (HTTP accept → queue wait → cache lookup → WAL append → solve →
// persist, linking into the solver's own descent/vcycle spans) recorded
// into a bounded flight recorder alongside its lifecycle and throttled
// solver events. The ring is served by GET /v1/jobs/{id}/profile, fanned
// into the SSE stream, rendered as waterfalls on /v1/debug/ops, and
// persisted with the terminal journal record so a crashed daemon keeps a
// forensic trail of its recent jobs.
//
// The per-server stats here deliberately duplicate a subset of the
// process-wide gpp_serve_* metrics: the obs registry is shared by every
// Server in the process (tests run dozens), while /v1/debug/ops must
// describe exactly one daemon since its boot.

// serverStats aggregates one Server's lifetime counters and latency
// distributions. All fields are atomics / internally-locked histograms;
// no mutex needed.
type serverStats struct {
	start      time.Time
	submitted  atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	cancelled  atomic.Int64
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64
	sloWithin  atomic.Int64
	sloBreach  atomic.Int64
	inflight   atomic.Int64
	queueWait  *obs.Histogram // seconds from admission to worker pickup
	jobSeconds *obs.Histogram // cold-solve wall seconds
}

func newServerStats() *serverStats {
	return &serverStats{
		start:      time.Now(),
		queueWait:  obs.NewHistogram(obs.LogBuckets(0.0001, 60, 3)),
		jobSeconds: obs.NewHistogram(obs.LogBuckets(0.001, 600, 3)),
	}
}

// initTracing attaches the flight recorder and opens the job's root span.
// With tracing disabled (Config.FlightRecorder < 0) everything stays nil
// and every span operation on the job is a nil-receiver no-op.
func (s *Server) initTracing(j *job) {
	if s.cfg.FlightRecorder < 0 {
		return
	}
	j.rec = obs.NewFlightRecorder(s.cfg.FlightRecorder)
	rec, br := j.rec, j.broker
	j.trace = obs.NewTrace(obs.TracerFunc(func(e obs.Event) {
		rec.Emit(e)
		br.publish(e)
	})).Timed()
	j.span = j.trace.Root("job")
	j.span.Attr("circuit", j.circuitName)
	j.span.AttrInt("k", int64(j.k))
}

// publish mirrors an event into both the progress broker and the flight
// recorder — lifecycle events use it so a profile reads as one ordered
// stream.
func (j *job) publish(e obs.Event) {
	if j.rec != nil {
		j.rec.Emit(e)
	}
	j.broker.publish(e)
}

// beginQueueWait opens the queue_wait span and stamps the admission time.
// It must run before the job is sent on the queue channel: the channel
// send is the happens-before edge that makes these fields visible to the
// worker that calls endQueueWait.
func (j *job) beginQueueWait() {
	j.enqueued = time.Now()
	j.spanQueue = j.span.Child("queue_wait")
}

// endQueueWait closes the queue_wait span and records the wait in the
// histograms. Called once, by the worker that picked the job up.
func (j *job) endQueueWait(stats *serverStats) {
	if !j.enqueued.IsZero() {
		wait := time.Since(j.enqueued).Seconds()
		mQueueWait.Observe(wait)
		stats.queueWait.Observe(wait)
	}
	j.spanQueue.End()
	j.spanQueue = nil
}

// spanCacheLookup brackets one cache probe with its outcome
// ("memory", "disk", or "miss").
func (j *job) spanCacheLookup(tier string) {
	sp := j.span.Child("cache_lookup")
	sp.Attr("outcome", tier)
	sp.End()
}

// endRootSpan closes the job's root span with its terminal status. Runs
// inside finishOK/finishErr before the broker closes, so the root span is
// always the last event in a completed profile.
func (j *job) endRootSpan(status Status, fromCache bool) {
	if j.span == nil {
		return
	}
	j.span.Attr("status", string(status))
	if fromCache {
		j.span.Attr("cache", "hit")
	}
	j.span.End()
}

// profileJSON renders the job's flight-recorder contents as the profile
// document: ring events (deterministically encoded, same bytes as a JSONL
// trace line) plus identity and drop accounting. Returns nil when tracing
// is disabled.
func (j *job) profileJSON() []byte {
	if j.rec == nil {
		return nil
	}
	events, dropped := j.rec.Snapshot()
	status, _, _, _, _, _, _, _ := j.snapshot()
	doc := struct {
		ID      string            `json:"id"`
		Status  Status            `json:"status"`
		Circuit string            `json:"circuit"`
		K       int               `json:"k"`
		Dropped int64             `json:"dropped,omitempty"`
		Events  []json.RawMessage `json:"events"`
	}{ID: j.id, Status: status, Circuit: j.circuitName, K: j.k,
		Dropped: dropped, Events: make([]json.RawMessage, 0, len(events))}
	var scratch []byte
	for _, e := range events {
		scratch = obs.AppendEvent(scratch[:0], e)
		doc.Events = append(doc.Events,
			json.RawMessage(bytes.Clone(bytes.TrimRight(scratch, "\n"))))
	}
	b, err := json.Marshal(&doc)
	if err != nil {
		return nil
	}
	return b
}

// profileWaterfall renders the job's span tree as indented text.
func (j *job) profileWaterfall(w io.Writer) {
	if j.rec == nil {
		fmt.Fprintln(w, "(flight recorder disabled)")
		return
	}
	events, dropped := j.rec.Snapshot()
	roots := obs.BuildSpanTree(events)
	if len(roots) == 0 {
		fmt.Fprintln(w, "(no completed spans)")
		return
	}
	obs.WriteWaterfall(w, roots)
	if dropped > 0 {
		fmt.Fprintf(w, "(%d older events dropped from the ring)\n", dropped)
	}
}

// opsBody is the JSON document behind GET /v1/debug/ops: one daemon's
// state since boot — queue pressure, job outcomes, cache efficiency,
// latency quantiles, and SLO burn.
type opsBody struct {
	UptimeS    float64 `json:"uptime_s"`
	Draining   bool    `json:"draining"`
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	QueueCap   int     `json:"queue_cap"`
	Inflight   int64   `json:"inflight"`

	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Cancelled int64 `json:"cancelled"`
	} `json:"jobs"`

	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Entries int     `json:"entries"`
	} `json:"cache"`

	Latency struct {
		SolveP50S     float64 `json:"solve_p50_s"`
		SolveP95S     float64 `json:"solve_p95_s"`
		SolveP99S     float64 `json:"solve_p99_s"`
		QueueWaitP50S float64 `json:"queue_wait_p50_s"`
		QueueWaitP99S float64 `json:"queue_wait_p99_s"`
	} `json:"latency"`

	SLO *struct {
		TargetMS int64   `json:"target_ms"`
		Within   int64   `json:"within"`
		Breached int64   `json:"breached"`
		BurnRate float64 `json:"burn_rate"` // breached / (within+breached)
	} `json:"slo,omitempty"`

	Recent []opsJob `json:"recent"`
}

// opsJob is one row of the recent-job table.
type opsJob struct {
	ID        string  `json:"id"`
	Status    Status  `json:"status"`
	Cache     string  `json:"cache"`
	Circuit   string  `json:"circuit"`
	K         int     `json:"k"`
	DurationS float64 `json:"duration_s,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// opsRecentJobs bounds the recent table (and the text waterfall count).
const opsRecentJobs = 10

func (s *Server) opsSnapshot() opsBody {
	st := s.stats
	var body opsBody
	body.UptimeS = time.Since(st.start).Seconds()
	body.Draining = s.Draining()
	body.Workers = s.cfg.Workers
	body.QueueDepth = len(s.queue)
	body.QueueCap = s.cfg.QueueDepth
	body.Inflight = st.inflight.Load()
	body.Jobs.Submitted = st.submitted.Load()
	body.Jobs.Completed = st.completed.Load()
	body.Jobs.Failed = st.failed.Load()
	body.Jobs.Cancelled = st.cancelled.Load()
	body.Cache.Hits = st.cacheHits.Load()
	body.Cache.Misses = st.cacheMiss.Load()
	body.Cache.Entries = s.cache.len()
	if total := body.Cache.Hits + body.Cache.Misses; total > 0 {
		body.Cache.HitRate = float64(body.Cache.Hits) / float64(total)
	}
	body.Latency.SolveP50S = st.jobSeconds.Quantile(0.50)
	body.Latency.SolveP95S = st.jobSeconds.Quantile(0.95)
	body.Latency.SolveP99S = st.jobSeconds.Quantile(0.99)
	body.Latency.QueueWaitP50S = st.queueWait.Quantile(0.50)
	body.Latency.QueueWaitP99S = st.queueWait.Quantile(0.99)
	if s.cfg.SLOSolve > 0 {
		slo := &struct {
			TargetMS int64   `json:"target_ms"`
			Within   int64   `json:"within"`
			Breached int64   `json:"breached"`
			BurnRate float64 `json:"burn_rate"`
		}{TargetMS: s.cfg.SLOSolve.Milliseconds(),
			Within: st.sloWithin.Load(), Breached: st.sloBreach.Load()}
		if total := slo.Within + slo.Breached; total > 0 {
			slo.BurnRate = float64(slo.Breached) / float64(total)
		}
		body.SLO = slo
	}
	for _, j := range s.recentJobs(opsRecentJobs) {
		status, hit, errMsg, _, _, _, started, finished := j.snapshot()
		cache := "miss"
		if hit {
			cache = "hit"
		}
		row := opsJob{ID: j.id, Status: status, Cache: cache,
			Circuit: j.circuitName, K: j.k, Error: errMsg}
		if !started.IsZero() && !finished.IsZero() {
			row.DurationS = finished.Sub(started).Seconds()
		}
		body.Recent = append(body.Recent, row)
	}
	return body
}

// recentJobs returns up to n jobs, newest first.
func (s *Server) recentJobs(n int) []*job {
	jobs := s.store.list()
	out := make([]*job, 0, n)
	for i := len(jobs) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, jobs[i])
	}
	return out
}

// writeOpsText renders the ops snapshot as a plain-text console: the
// headline numbers plus a span waterfall per recent job.
func (s *Server) writeOpsText(w io.Writer) {
	b := s.opsSnapshot()
	fmt.Fprintf(w, "gpp-serve ops — uptime %.0fs, %d workers, queue %d/%d, %d in flight\n",
		b.UptimeS, b.Workers, b.QueueDepth, b.QueueCap, b.Inflight)
	fmt.Fprintf(w, "jobs: %d submitted, %d completed, %d failed, %d cancelled\n",
		b.Jobs.Submitted, b.Jobs.Completed, b.Jobs.Failed, b.Jobs.Cancelled)
	fmt.Fprintf(w, "cache: %d hits / %d misses (%.0f%% hit rate), %d entries\n",
		b.Cache.Hits, b.Cache.Misses, b.Cache.HitRate*100, b.Cache.Entries)
	fmt.Fprintf(w, "latency: solve p50 %.3fs p95 %.3fs p99 %.3fs; queue wait p50 %.4fs p99 %.4fs\n",
		b.Latency.SolveP50S, b.Latency.SolveP95S, b.Latency.SolveP99S,
		b.Latency.QueueWaitP50S, b.Latency.QueueWaitP99S)
	if b.SLO != nil {
		fmt.Fprintf(w, "slo: %dms target, %d within, %d breached (burn %.1f%%)\n",
			b.SLO.TargetMS, b.SLO.Within, b.SLO.Breached, b.SLO.BurnRate*100)
	}
	for _, j := range s.recentJobs(opsRecentJobs) {
		status, _, _, _, _, _, _, _ := j.snapshot()
		fmt.Fprintf(w, "\njob %s (%s, %s k=%d):\n", j.id, status, j.circuitName, j.k)
		j.profileWaterfall(w)
	}
}
