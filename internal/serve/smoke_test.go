package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os/signal"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end drain proof the Makefile's serve-smoke
// target runs under -race: a daemon on a real listener takes 32 concurrent
// submissions (8 distinct cache keys × 4 repeats, so misses and hits
// interleave), receives a real SIGTERM while work is still queued, and must
// drain every accepted job to a complete, consistent response — no drops,
// no forced cancellations, and byte-identical bodies within each key.
func TestServeSmoke(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	srv, err := New(Config{Workers: 4, QueueDepth: 64, ProgressEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- srv.Run(ctx, "127.0.0.1:0", 120*time.Second, func(a string) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case err := <-runErr:
		t.Fatalf("daemon exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never reported its address")
	}

	const requests = 32
	ids := make([]string, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// 8 distinct seeds → 8 cache keys; each submitted 4 times.
			req := fastReq(int64(1000 + i%8))
			body, err := json.Marshal(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("submit %d: status %d (queue 64 must absorb 32 submissions)", i, resp.StatusCode)
				return
			}
			var sb statusBody
			if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = sb.ID
		}(i)
	}
	wg.Wait()

	// Every submission was accepted; most are still queued or solving.
	// Deliver a real SIGTERM — the signal path the production daemon wires
	// into Run's context — and require a clean drain.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain was forced or failed: %v", err)
		}
	case <-time.After(150 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}

	// The listener is gone; audit the registry directly. Every accepted job
	// must have completed with an intact result, and all jobs sharing a
	// cache key must hold byte-identical bodies.
	byKey := map[string][]byte{}
	hits := 0
	for i, id := range ids {
		if id == "" {
			t.Fatalf("submission %d was not accepted", i)
		}
		j, ok := srv.store.get(id)
		if !ok {
			t.Fatalf("job %s dropped from the registry", id)
		}
		status, cacheHit, errMsg, body, labels, _, _, _ := j.snapshot()
		if status != StatusDone {
			t.Fatalf("job %s drained to %s (%s), want done", id, status, errMsg)
		}
		if len(body) == 0 || len(labels) == 0 {
			t.Fatalf("job %s finished without a result", id)
		}
		if cacheHit {
			hits++
		}
		if prev, seen := byKey[j.key]; seen {
			if !bytes.Equal(prev, body) {
				t.Fatalf("jobs with key %s hold different result bytes", j.key)
			}
		} else {
			byKey[j.key] = body
		}
	}
	if len(byKey) != 8 {
		t.Errorf("expected 8 distinct cache keys, got %d", len(byKey))
	}
	// 24 of the 32 shared a key with an earlier submission. Races between
	// identical misses may solve a few redundantly (that is allowed — the
	// bytes are identical), but the cache must have served a good share.
	if hits == 0 {
		t.Error("no submission was served from the cache")
	}
	t.Logf("drained %d jobs, %d cache hits, %d distinct keys", requests, hits, len(byKey))
}
