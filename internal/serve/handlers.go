package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gpp/internal/assignio"
	"gpp/internal/def"
	"gpp/internal/gen"
	"gpp/internal/multilevel"
	"gpp/internal/netlist"
	"gpp/internal/obs"
	"gpp/internal/partition"
)

// maxRequestBytes bounds a submission body; DEF uploads dominate and the
// paper-scale benchmarks are well under a megabyte, so 8 MiB is generous
// headroom without letting a client pin tens of megabytes per request on
// a body that would only fail DEF parsing anyway.
const maxRequestBytes = 8 << 20

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/assignment", s.handleAssignment)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/profile", s.handleProfile)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	s.mux.HandleFunc("GET /v1/debug/ops", s.handleOps)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Node-to-node endpoints; they answer 404 on a non-clustered daemon.
	s.mux.HandleFunc("GET /v1/cluster/ping", s.handleClusterPing)
	s.mux.HandleFunc("GET /v1/cluster/blob/{key}", s.handleClusterBlob)
	s.mux.HandleFunc("POST /v1/cluster/steal", s.handleClusterSteal)
	s.mux.HandleFunc("POST /v1/cluster/complete", s.handleClusterComplete)
	debug := obs.NewMux(obs.Default())
	s.mux.Handle("GET /metrics", debug)
	s.mux.Handle("/debug/", debug)
}

// JobRequest is the submission document for POST /v1/jobs. Exactly one of
// Circuit (a benchmark name), DEF (an inline DEF netlist), or FromJob (a
// prior job id whose circuit is reused) selects the input.
type JobRequest struct {
	Circuit string `json:"circuit,omitempty"`
	DEF     string `json:"def,omitempty"`
	FromJob string `json:"from_job,omitempty"`

	// K is the plane count. Required.
	K int `json:"k"`

	// Restarts > 1 races a multi-seed portfolio and keeps the best result.
	Restarts int `json:"restarts,omitempty"`

	// BalancedSlack, when set, snaps with capacity-aware rounding at this
	// bias slack instead of plain argmax.
	BalancedSlack *float64 `json:"balanced_slack,omitempty"`

	// Multilevel, when set, solves with the multilevel V-cycle instead of
	// the flat descent — the scale path for ≳10⁵-gate circuits. Mutually
	// exclusive with BalancedSlack and Restarts > 1.
	Multilevel *MultilevelJob `json:"multilevel,omitempty"`

	// Plan includes the current-recycling plan summary in the result.
	Plan bool `json:"plan,omitempty"`

	// TimeoutMS bounds the job (queue wait included); 0 means the server
	// default, and the server maximum caps it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Options tunes the solver; zero values mean the solver defaults.
	Options *JobOptions `json:"options,omitempty"`
}

// JobOptions is the JSON mirror of partition.Options (the solver-relevant
// subset plus Workers; Workers affects speed only, never the result or the
// cache key).
type JobOptions struct {
	Seed          int64   `json:"seed,omitempty"`
	Margin        float64 `json:"margin,omitempty"`
	MaxIters      int     `json:"max_iters,omitempty"`
	LearnRate     float64 `json:"learn_rate,omitempty"`
	InitStep      float64 `json:"init_step,omitempty"`
	Momentum      float64 `json:"momentum,omitempty"`
	Renormalize   bool    `json:"renormalize,omitempty"`
	ReduceDims    bool    `json:"reduce_dims,omitempty"`
	PaperGradient bool    `json:"paper_gradient,omitempty"`
	Refine        bool    `json:"refine,omitempty"`
	RefinePasses  int     `json:"refine_passes,omitempty"`
	Workers       int     `json:"workers,omitempty"`

	// Precision selects the kernel arithmetic tier: "" or "float64" is the
	// default kernel, "float32" the opt-in reduced-precision tier. The
	// tiers produce different (individually deterministic) results, and
	// the solver folds the tier into its fingerprint, so float32 jobs get
	// distinct cache keys automatically. Unknown values are rejected by
	// the solver's validation.
	Precision string `json:"precision,omitempty"`

	// Terms selects named cost terms from the registry (internal/terms),
	// e.g. [{"name":"xesfq"},{"name":"current_limit","weight":2,"param":80}].
	// f1–f4 specs scale the paper coefficients; regime terms reshape the
	// compiled problem. Unknown names are rejected with the registered
	// list, and the surviving set folds into the options fingerprint — and
	// with it the cache key — so scenarios never collide.
	Terms []partition.TermSpec `json:"terms,omitempty"`
}

// MultilevelJob is the JSON mirror of the multilevel V-cycle knobs; zero
// values mean the V-cycle defaults. The normalized values (not the raw
// ones) enter the cache key, so two spellings of the same cycle share an
// entry.
type MultilevelJob struct {
	Coarsest     int `json:"coarsest,omitempty"`
	MaxLevels    int `json:"max_levels,omitempty"`
	RefineIters  int `json:"refine_iters,omitempty"`
	RefinePasses int `json:"refine_passes,omitempty"`
}

func (m *MultilevelJob) toOptions(k int) multilevel.Options {
	o := multilevel.Options{
		CoarsestSize: m.Coarsest,
		MaxLevels:    m.MaxLevels,
		RefineIters:  m.RefineIters,
		RefinePasses: m.RefinePasses,
	}
	return o.Normalize(k)
}

func (o *JobOptions) toPartition() partition.Options {
	if o == nil {
		return partition.Options{}
	}
	p := partition.Options{
		Seed:         o.Seed,
		Margin:       o.Margin,
		MaxIters:     o.MaxIters,
		LearnRate:    o.LearnRate,
		InitStep:     o.InitStep,
		Momentum:     o.Momentum,
		Renormalize:  o.Renormalize,
		ReduceDims:   o.ReduceDims,
		Refine:       o.Refine,
		RefinePasses: o.RefinePasses,
		Workers:      o.Workers,
		Terms:        o.Terms,
	}
	if o.PaperGradient {
		p.Gradient = partition.GradientPaper
	}
	switch o.Precision {
	case "float32":
		p.Precision = partition.Precision32
	case "", "float64":
		// Default tier.
	default:
		// Map unknown strings onto an invalid Precision so the solver's
		// validation reports them instead of silently running float64.
		p.Precision = partition.Precision(-1)
	}
	return p
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	// The body is slurped (not stream-decoded) so a submission owned by
	// another cluster node can be forwarded verbatim.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var req JobRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, status, err := s.buildJob(&req)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	// Consistent-hash routing: if another node owns this job's cache key,
	// proxy the submission there (response relayed as-is). Falls through
	// to local handling whenever the owner can't take it.
	if s.maybeForward(w, r, &req, j, raw) {
		return
	}

	mSubmitted.Inc()
	s.stats.submitted.Add(1)
	// Cache check before queueing: a hit — in the LRU or persisted on
	// disk from before a restart — completes synchronously and never
	// occupies a queue slot or a worker.
	if ent, tier, ok := s.cacheGet(j.key); ok {
		j.spanCacheLookup(tier)
		mCacheHits.Inc()
		mCompleted.Inc()
		s.stats.cacheHits.Add(1)
		s.stats.completed.Add(1)
		j.cancel()
		s.store.add(j)
		j.finishOK(ent.body, ent.labels, true)
		writeJSON(w, http.StatusOK, s.statusJSON(j))
		return
	}
	j.spanCacheLookup("miss")
	// Misses are counted at resolution time (runJob), not here: a job that
	// misses now may still be answered from the cache after queueing behind
	// an identical solve, and counting both ends would double-book it.
	//
	// Write-ahead: the accept record must be durable before the job can
	// reach a worker, or a fast solve could journal its terminal record
	// first and the replay would resurrect a finished job.
	if s.durable != nil {
		wal := j.span.Child("wal_accept")
		err := s.durable.acceptJob(j, &req)
		wal.End()
		if err != nil {
			j.cancel()
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	s.store.add(j)
	j.publish(obs.Event{Kind: kindJobQueued})
	j.beginQueueWait()
	switch code := s.enqueue(j); code {
	case http.StatusAccepted:
		writeJSON(w, http.StatusAccepted, s.statusJSON(j))
	case http.StatusServiceUnavailable:
		s.store.remove(j.id)
		j.cancel()
		s.journalFinish(j, StatusCancelled)
		writeError(w, code, "daemon is draining")
	default: // 429
		mRejected.Inc()
		s.store.remove(j.id)
		j.cancel()
		s.journalFinish(j, StatusCancelled)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			"queue full (%d jobs waiting); retry later", s.cfg.QueueDepth)
	}
}

// buildJob parses and validates a request into a ready-to-queue job. The
// returned int is the HTTP status for the error case.
func (s *Server) buildJob(req *JobRequest) (*job, int, error) {
	var (
		c    *netlist.Circuit
		name string
	)
	sources := 0
	for _, set := range []bool{req.Circuit != "", req.DEF != "", req.FromJob != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, http.StatusBadRequest,
			fmt.Errorf("exactly one of circuit, def, from_job must be set")
	}
	switch {
	case req.Circuit != "":
		bc, err := gen.Benchmark(req.Circuit, nil)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		c, name = bc, bc.Name
	case req.DEF != "":
		d, err := def.Parse(strings.NewReader(req.DEF))
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		c, err = def.ToCircuit(d, s.cfg.Library)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		name = c.Name
	default:
		prior, ok := s.store.get(req.FromJob)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("from_job %q not found", req.FromJob)
		}
		c, name = prior.circuit, prior.circuitName
	}
	return s.makeJob(c, name, req)
}

// makeJob validates the request against an already-resolved circuit and
// assembles the job. It is the part of submission shared with journal
// recovery, which re-runs it against the blob-stored circuit.
func (s *Server) makeJob(c *netlist.Circuit, name string, req *JobRequest) (*job, int, error) {
	if req.K < 1 {
		return nil, http.StatusBadRequest, fmt.Errorf("k must be ≥ 1, got %d", req.K)
	}
	restarts := req.Restarts
	if restarts < 1 {
		restarts = 1
	}
	if req.BalancedSlack != nil && restarts > 1 {
		return nil, http.StatusBadRequest,
			fmt.Errorf("balanced_slack and restarts > 1 are mutually exclusive")
	}
	var ml *multilevel.Options
	if req.Multilevel != nil {
		if req.BalancedSlack != nil || restarts > 1 {
			return nil, http.StatusBadRequest,
				fmt.Errorf("multilevel is mutually exclusive with balanced_slack and restarts > 1")
		}
		n := req.Multilevel.toOptions(req.K)
		ml = &n
	}
	opts := req.Options.toPartition()
	if opts.Workers == 0 {
		// Inside the daemon, cross-job concurrency is the parallelism
		// axis; kernels default to serial (a request may override).
		opts.Workers = 1
	}
	opts, err := opts.NormalizeFor(req.K)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	key, err := jobKey(c, opts, req.K, restarts, req.BalancedSlack, ml, req.Plan)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	timeout := s.cfg.DefaultJobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxJobTimeout {
		timeout = s.cfg.MaxJobTimeout
	}
	// Keep the request for steal grants, minus the circuit payload (it
	// ships separately as canonical circuit JSON; a DEF upload would
	// bloat every grant).
	reqCopy := *req
	reqCopy.Circuit, reqCopy.DEF, reqCopy.FromJob = "", "", ""
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	j := &job{
		id:          newJobID(),
		circuit:     c,
		circuitName: name,
		circuitHash: CircuitHash(c),
		key:         key,
		k:           req.K,
		restarts:    restarts,
		balanced:    req.BalancedSlack,
		ml:          ml,
		opts:        opts,
		plan:        req.Plan,
		req:         &reqCopy,
		ctx:         ctx,
		cancel:      cancel,
		broker:      newBroker(),
	}
	j.mu.Lock()
	j.status = StatusQueued
	j.submitted = time.Now()
	j.mu.Unlock()
	s.initTracing(j)
	return j, 0, nil
}

// statusBody is the job document served by GET /v1/jobs/{id} (and echoed
// on submission). Result is the exact cached body, embedded raw.
type statusBody struct {
	ID          string          `json:"id"`
	Status      Status          `json:"status"`
	Cache       string          `json:"cache"`
	Circuit     string          `json:"circuit"`
	CircuitHash string          `json:"circuit_hash"`
	Gates       int             `json:"gates"`
	Edges       int             `json:"edges"`
	K           int             `json:"k"`
	Restarts    int             `json:"restarts,omitempty"`
	Key         string          `json:"key"`
	Submitted   string          `json:"submitted_at,omitempty"`
	Started     string          `json:"started_at,omitempty"`
	Finished    string          `json:"finished_at,omitempty"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

func (s *Server) statusJSON(j *job) statusBody {
	status, hit, errMsg, body, _, submitted, started, finished := j.snapshot()
	cache := "miss"
	if hit {
		cache = "hit"
	}
	sb := statusBody{
		ID:          j.id,
		Status:      status,
		Cache:       cache,
		Circuit:     j.circuitName,
		CircuitHash: j.circuitHash,
		Gates:       j.circuit.NumGates(),
		Edges:       j.circuit.NumEdges(),
		K:           j.k,
		Key:         j.key,
		Error:       errMsg,
		Result:      body,
	}
	if j.restarts > 1 {
		sb.Restarts = j.restarts
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	sb.Submitted, sb.Started, sb.Finished = stamp(submitted), stamp(started), stamp(finished)
	return sb
}

// listLimitDefault and listLimitMax bound GET /v1/jobs responses; the
// registry holds up to MaxJobs (4096 by default) jobs and an unbounded
// listing would serialize all of them on every poll.
const (
	listLimitDefault = 100
	listLimitMax     = 1000
)

// handleList serves a bounded, newest-first job listing. ?limit=N caps
// the page (default 100, max 1000) and ?status=queued|running|done|
// failed|cancelled filters before the cap is applied; "total" counts the
// matches so a truncated page is detectable.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit := listLimitDefault
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = min(n, listLimitMax)
	}
	var filter Status
	if v := r.URL.Query().Get("status"); v != "" {
		switch st := Status(v); st {
		case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled:
			filter = st
		default:
			writeError(w, http.StatusBadRequest,
				"bad status %q; valid statuses: %s, %s, %s, %s, %s", v,
				StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled)
			return
		}
	}
	jobs := s.store.list()
	out := struct {
		Jobs  []statusBody `json:"jobs"`
		Total int          `json:"total"`
	}{Jobs: make([]statusBody, 0, min(limit, len(jobs)))}
	for i := len(jobs) - 1; i >= 0; i-- { // newest first
		sb := s.statusJSON(jobs[i])
		if filter != "" && sb.Status != filter {
			continue
		}
		out.Total++
		if len(out.Jobs) < limit {
			sb.Result = nil // list is a summary; fetch results per job
			out.Jobs = append(out.Jobs, sb)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, s.statusJSON(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	status, _, _, _, _, _, _, _ := j.snapshot()
	if status.terminal() {
		writeError(w, http.StatusConflict, "job %s already %s", j.id, status)
		return
	}
	j.cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": "cancelling"})
}

// handleResult serves the raw result document — byte-identical across a
// cold solve and every later cache hit of the same key.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	status, _, errMsg, body, _, _, _, _ := j.snapshot()
	switch status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	case StatusFailed, StatusCancelled:
		writeError(w, http.StatusConflict, "job %s %s: %s", j.id, status, errMsg)
	default:
		writeError(w, http.StatusConflict, "job %s is %s; poll or stream /events", j.id, status)
	}
}

// handleAssignment renders the result as the assignment TSV the CLI tools
// share (assignio format), against this job's own gate names.
func (s *Server) handleAssignment(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	status, _, _, _, labels, _, _, _ := j.snapshot()
	if status != StatusDone {
		writeError(w, http.StatusConflict, "job %s is %s", j.id, status)
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	var buf bytes.Buffer
	if err := assignio.Write(&buf, j.circuit, labels); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	_, _ = w.Write(buf.Bytes())
}

// handleEvents streams the job's progress as Server-Sent Events: the
// buffered history first, then live events until the job finishes, closed
// by a terminal "status" frame carrying the full job document.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	replay, ch, detach := j.broker.subscribe()
	defer detach()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	var scratch []byte
	for _, e := range replay {
		scratch = writeSSE(w, scratch, e)
	}
	flusher.Flush()
	// Idle heartbeat: a comment line every SSEKeepalive keeps proxies and
	// load balancers from reaping the connection during a long quiet solve
	// (iter events are throttled, so minutes can pass between frames).
	var keepalive <-chan time.Time
	if s.cfg.SSEKeepalive > 0 {
		t := time.NewTicker(s.cfg.SSEKeepalive)
		defer t.Stop()
		keepalive = t.C
	}
	for {
		select {
		case e, open := <-ch:
			if !open {
				// Job finished: emit the terminal status frame and end.
				doc, err := json.Marshal(s.statusJSON(j))
				if err == nil {
					fmt.Fprintf(w, "event: status\ndata: %s\n\n", doc)
				}
				flusher.Flush()
				return
			}
			scratch = writeSSE(w, scratch, e)
			flusher.Flush()
		case <-keepalive:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleProfile serves the job's flight-recorder contents: the recent
// spans and events as JSON (the default), or the reconstructed span
// waterfall as text with ?format=text.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	if j.rec == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled (start the daemon without -flight-recorder=-1)")
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		j.profileWaterfall(w)
		return
	}
	body := j.profileJSON()
	if body == nil {
		writeError(w, http.StatusInternalServerError, "profile encoding failed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleOps serves the daemon's ops snapshot — the one-stop console for
// "what is this node doing": queue pressure, outcomes, cache hit rate,
// latency quantiles, SLO burn, and recent jobs. JSON by default,
// ?format=text for the human console with span waterfalls.
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.writeOpsText(w)
		return
	}
	writeJSON(w, http.StatusOK, s.opsSnapshot())
}

// writeSSE frames one event, reusing scratch for the JSONL encoding.
func writeSSE(w io.Writer, scratch []byte, e obs.Event) []byte {
	scratch = obs.AppendEvent(scratch[:0], e)
	data := bytes.TrimRight(scratch, "\n")
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind, data)
	return scratch
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type healthCluster struct {
		Self       string `json:"self"`
		Nodes      int    `json:"nodes"`
		PeersAlive int    `json:"peers_alive"`
		Stolen     int    `json:"stolen_out"`
	}
	type health struct {
		Status      string         `json:"status"`
		UptimeS     float64        `json:"uptime_s"`
		Jobs        int            `json:"jobs"`
		Inflight    int64          `json:"inflight"`
		QueueDepth  int            `json:"queue_depth"`
		QueueCap    int            `json:"queue_cap"`
		CacheSize   int            `json:"cache_entries"`
		Workers     int            `json:"workers"`
		DataDir     string         `json:"data_dir,omitempty"`
		JournalLive int            `json:"journal_live,omitempty"`
		Cluster     *healthCluster `json:"cluster,omitempty"`
	}
	h := health{
		Status:     "ok",
		UptimeS:    time.Since(s.stats.start).Seconds(),
		Jobs:       s.store.len(),
		Inflight:   s.stats.inflight.Load(),
		QueueDepth: len(s.queue),
		QueueCap:   s.cfg.QueueDepth,
		CacheSize:  s.cache.len(),
		Workers:    s.cfg.Workers,
	}
	if s.durable != nil {
		h.DataDir = s.cfg.DataDir
		s.durable.mu.Lock()
		h.JournalLive = len(s.durable.live)
		s.durable.mu.Unlock()
	}
	if s.cluster != nil {
		s.stolenMu.Lock()
		out := len(s.stolen)
		s.stolenMu.Unlock()
		h.Cluster = &healthCluster{
			Self:       s.cluster.Self(),
			Nodes:      len(s.cluster.Nodes()),
			PeersAlive: s.cluster.PeersAlive(),
			Stolen:     out,
		}
	}
	code := http.StatusOK
	if s.Draining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
