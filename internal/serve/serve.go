// Package serve is the partition-as-a-service subsystem: a stdlib-only
// HTTP/JSON daemon that accepts partition jobs (circuit by DEF upload,
// named benchmark, or prior-job reference), runs them on a bounded worker
// pool, and answers repeated requests from a content-addressed result
// cache so identical (circuit, options, K) solves never recompute.
//
// The moving parts, and the contracts the tests pin down:
//
//   - Job queue with backpressure. Submissions enter a bounded channel;
//     when it is full the daemon answers 429 with a Retry-After header
//     instead of buffering unboundedly. A draining daemon answers 503.
//   - Content-addressed cache. The key is
//     sha256(canonical circuit bytes ‖ normalized-options fingerprint ‖
//     K ‖ restarts ‖ balanced slack ‖ plan flag); see cacheKey. Cached
//     entries store
//     the marshaled result body, so a cache hit returns bytes identical
//     to the cold solve that produced them — and because the solver is
//     bitwise deterministic at every Options.Workers count and Workers is
//     excluded from the fingerprint, a cold solve at any worker count
//     would produce those same bytes.
//   - Per-job deadlines and cancellation. Every job carries a context
//     whose timeout starts at submission (queue wait counts);
//     DELETE /v1/jobs/{id} cancels it, and the solver stops within one
//     gradient iteration (partition.SolveCtx).
//   - Streaming progress. Each job owns an event broker fed by an
//     obs.TracerFunc adapter; GET /v1/jobs/{id}/events replays the
//     history and then streams live solver events as SSE frames encoded
//     with the deterministic obs JSONL encoder.
//   - Graceful shutdown. Shutdown stops admissions, closes the queue, and
//     drains: every accepted job still runs to completion and keeps its
//     response. Only when the shutdown context expires are in-flight
//     solves cancelled.
//   - Optional durability. With Config.DataDir set, solved results
//     persist to a content-addressed blob store and accepted jobs are
//     write-ahead journaled (internal/store): a restarted daemon serves
//     its old cache byte-identical from disk and re-enqueues
//     accepted-but-unfinished jobs under their original ids.
//
// The daemon front-end lives in cmd/gpp-serve; the gpp facade re-exports
// the Config type for embedding the server in other Go programs.
package serve

import (
	"runtime"
	"time"

	"gpp/internal/cellib"
	"gpp/internal/cluster"
	"gpp/internal/obs"
)

// Config sizes the daemon. The zero value is usable: every field has a
// production-sane default filled in by New.
type Config struct {
	// QueueDepth bounds how many accepted-but-not-started jobs the daemon
	// holds; a full queue rejects submissions with 429 + Retry-After.
	// Default 64.
	QueueDepth int

	// Workers is how many jobs solve concurrently. 0 means one per CPU.
	// Kernel parallelism inside each job defaults to serial (a job's
	// options may raise it); cross-job concurrency is the daemon's main
	// parallelism axis.
	Workers int

	// CacheEntries bounds the content-addressed result cache (LRU
	// eviction). Default 256; 0 means the default, negative disables
	// caching.
	CacheEntries int

	// MaxJobs bounds the job registry; beyond it the oldest finished job
	// is evicted. Default 4096.
	MaxJobs int

	// DefaultJobTimeout applies when a request carries no timeout_ms.
	// Default 2m.
	DefaultJobTimeout time.Duration

	// MaxJobTimeout caps any requested timeout. Default 10m.
	MaxJobTimeout time.Duration

	// ProgressEvery forwards every Nth iter event to a job's progress
	// stream (all other event kinds always pass). Default 25; 1 streams
	// every iteration.
	ProgressEvery int

	// Library resolves DEF uploads. Default cellib.Default().
	Library *cellib.Library

	// DataDir, when set, makes the daemon durable: solved results persist
	// to a content-addressed blob store under this directory and every
	// accepted job is write-ahead journaled, so a crashed or redeployed
	// daemon restarts with its cache intact and re-runs unfinished jobs
	// under their original ids. Empty means fully in-memory (the default).
	DataDir string

	// StoreMaxBytes bounds the blob store; at boot (after journal
	// recovery) entries are garbage-collected oldest-first down to this
	// budget. 0 means unbounded. Ignored without DataDir.
	StoreMaxBytes int64

	// FlightRecorder sizes each job's bounded event ring (spans, lifecycle
	// and throttled solver events), served by GET /v1/jobs/{id}/profile
	// and persisted with the terminal journal record. 0 means the default
	// (obs.DefaultFlightRecorderCap); negative disables per-job tracing
	// entirely (the span path then costs nothing).
	FlightRecorder int

	// SLOSolve, when positive, is the solve-latency objective: each cold
	// solve (cache hits excluded) counts toward the within/breached burn
	// counters on /metrics and /v1/debug/ops. 0 disables SLO accounting.
	SLOSolve time.Duration

	// SSEKeepalive is the idle heartbeat interval on /events streams — a
	// comment line that keeps proxies from dropping long solves. 0 means
	// the 15s default; negative disables keepalives.
	SSEKeepalive time.Duration

	// Cluster, when set, makes this daemon a member of a static-membership
	// cluster: submissions route to the node owning their cache key, local
	// cache misses read through to peers before solving, and idle nodes
	// steal queued jobs from busy ones. Nil (the default) is single-node
	// mode; every cluster code path also degrades to single-node behavior
	// when peers are unreachable. See internal/cluster.
	Cluster *cluster.Config
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.DefaultJobTimeout <= 0 {
		c.DefaultJobTimeout = 2 * time.Minute
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 10 * time.Minute
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 25
	}
	if c.Library == nil {
		c.Library = cellib.Default()
	}
	if c.FlightRecorder == 0 {
		c.FlightRecorder = obs.DefaultFlightRecorderCap
	}
	if c.SSEKeepalive == 0 {
		c.SSEKeepalive = 15 * time.Second
	}
	return c
}

// Serve metrics, registered on the process-wide obs registry like the
// solver and pool counters, so /metrics on the daemon exposes the whole
// stack in one scrape.
var (
	mSubmitted = obs.Default().Counter("gpp_serve_jobs_submitted_total",
		"partition jobs accepted (cache hits included)")
	mCompleted = obs.Default().Counter("gpp_serve_jobs_completed_total",
		"jobs that finished with a result (cache hits included)")
	mFailed = obs.Default().Counter("gpp_serve_jobs_failed_total",
		"jobs that ended in an error (deadline exceeded included)")
	mCancelled = obs.Default().Counter("gpp_serve_jobs_cancelled_total",
		"jobs cancelled by the client or a forced shutdown")
	mCacheHits = obs.Default().Counter("gpp_serve_cache_hits_total",
		"submissions answered from the content-addressed result cache")
	mCacheMisses = obs.Default().Counter("gpp_serve_cache_misses_total",
		"jobs that reached a worker with no cached result (counted at resolution, not submission)")
	mRejected = obs.Default().Counter("gpp_serve_queue_rejected_total",
		"submissions rejected with 429 because the queue was full")
	mQueueDepth = obs.Default().Gauge("gpp_serve_queue_depth",
		"jobs waiting in the queue")
	mInflight = obs.Default().Gauge("gpp_serve_jobs_inflight",
		"jobs currently solving")
	mJobSeconds = obs.Default().Histogram("gpp_serve_job_seconds",
		obs.LogBuckets(0.001, 600, 3),
		"wall time of completed solves (cache hits excluded)")
	mQueueWait = obs.Default().Histogram("gpp_serve_queue_wait_seconds",
		obs.LogBuckets(0.0001, 60, 3),
		"time jobs spent queued before a worker picked them up")
	mSLOWithin = obs.Default().Counter("gpp_serve_slo_within_total",
		"cold solves that finished within the configured solve SLO")
	mSLOBreached = obs.Default().Counter("gpp_serve_slo_breached_total",
		"cold solves that exceeded the configured solve SLO")
)
