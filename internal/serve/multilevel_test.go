package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestMultilevelJobSolves: a multilevel job runs the V-cycle path, its key
// differs from the flat solve of the same circuit/options, the envelope
// carries the V-cycle shape, and a resubmission is a byte-identical cache
// hit.
func TestMultilevelJobSolves(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	flat := JobRequest{Circuit: "par2000", K: 4, Options: &JobOptions{MaxIters: 300}}
	ml := JobRequest{Circuit: "par2000", K: 4, Options: &JobOptions{MaxIters: 300},
		Multilevel: &MultilevelJob{}}

	_, sbFlat, _ := postJob(t, base, flat)
	waitTerminal(t, base, sbFlat.ID)

	code, sbML, _ := postJob(t, base, ml)
	if code != http.StatusAccepted {
		t.Fatalf("multilevel submit = %d, want 202", code)
	}
	if sbML.Key == sbFlat.Key {
		t.Fatal("multilevel request shares a cache key with the flat solve")
	}
	done := waitTerminal(t, base, sbML.ID)
	if done.Status != StatusDone {
		t.Fatalf("multilevel job ended %s (%s), want done", done.Status, done.Error)
	}

	cold := getBody(t, base, "/v1/jobs/"+sbML.ID+"/result", http.StatusOK)
	var env resultEnvelope
	if err := json.Unmarshal(cold, &env); err != nil {
		t.Fatalf("result is not a result envelope: %v", err)
	}
	if env.Levels < 2 || env.CoarsestSize <= 0 || env.CoarsestSize > 2000 {
		t.Fatalf("implausible V-cycle envelope: levels=%d coarsest=%d", env.Levels, env.CoarsestSize)
	}
	if len(env.Labels) != done.Gates || env.Iters <= 0 {
		t.Fatalf("implausible envelope: labels=%d iters=%d", len(env.Labels), env.Iters)
	}

	// A spelled-out default cycle collapses to the same key and hits the
	// cache with the same bytes.
	explicit := ml
	explicit.Multilevel = &MultilevelJob{Coarsest: 200, MaxLevels: 32, RefineIters: 30, RefinePasses: 6}
	code2, sbHit, _ := postJob(t, base, explicit)
	if code2 != http.StatusOK || sbHit.Cache != "hit" {
		t.Fatalf("explicit-defaults multilevel resubmit: code=%d cache=%q, want 200/hit", code2, sbHit.Cache)
	}
	hot := getBody(t, base, "/v1/jobs/"+sbHit.ID+"/result", http.StatusOK)
	if !bytes.Equal(cold, hot) {
		t.Fatal("multilevel cache hit is not byte-identical to the cold solve")
	}
}

// TestMultilevelMutualExclusion: the V-cycle path rejects combinations
// with the portfolio and balanced-rounding modes at submission time.
func TestMultilevelMutualExclusion(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	slack := 0.05
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"balanced", JobRequest{Circuit: "KSA8", K: 4,
			Multilevel: &MultilevelJob{}, BalancedSlack: &slack}},
		{"restarts", JobRequest{Circuit: "KSA8", K: 4,
			Multilevel: &MultilevelJob{}, Restarts: 3}},
	}
	for _, tc := range cases {
		code, _, _ := postJob(t, base, tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("multilevel+%s submit = %d, want 400", tc.name, code)
		}
	}
}
