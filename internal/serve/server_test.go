package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"gpp/internal/assignio"
	"gpp/internal/def"
	"gpp/internal/gen"
)

// newTestServer starts a daemon behind an httptest listener. Cleanup closes
// the listener first (no new requests) and then force-drains the worker
// pool with an already-expired context so slow jobs left behind by a test
// are cancelled rather than waited for.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, hs.URL
}

func postJob(t *testing.T, base string, req JobRequest) (int, statusBody, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sb statusBody
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &sb); err != nil {
			t.Fatalf("bad submit response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, sb, resp.Header
}

func getStatus(t *testing.T, base, id string) statusBody {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb statusBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	return sb
}

// waitTerminal polls the status endpoint until the job settles.
func waitTerminal(t *testing.T, base, id string) statusBody {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		sb := getStatus(t, base, id)
		if Status(sb.Status).terminal() {
			return sb
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return statusBody{}
}

// waitRunning polls until the job leaves the queue and starts solving.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		sb := getStatus(t, base, id)
		if sb.Status == StatusRunning {
			return
		}
		if Status(sb.Status).terminal() {
			t.Fatalf("job %s finished (%s) before it was observed running", id, sb.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

func getBody(t *testing.T, base, path string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d (%s), want %d", path, resp.StatusCode, raw, wantCode)
	}
	return raw
}

// fastReq is a small solve (~tens of ms serial) with a distinguishing seed.
func fastReq(seed int64) JobRequest {
	return JobRequest{Circuit: "KSA8", K: 4, Options: &JobOptions{Seed: seed, MaxIters: 300}}
}

// slowReq never converges (margin below any reachable relative change,
// oscillating learn rate) and runs minutes at the iteration cap, so it
// reliably occupies a worker until cancelled; cancellation lands within
// one gradient iteration.
func slowReq(seed int64) JobRequest {
	return JobRequest{Circuit: "KSA8", K: 4, Options: &JobOptions{
		Seed: seed, MaxIters: 1_000_000, Margin: 1e-300, LearnRate: 0.5,
	}}
}

func TestSubmitSolveAndCacheHit(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	hits0, misses0 := mCacheHits.Value(), mCacheMisses.Value()

	code, sb, _ := postJob(t, base, fastReq(1))
	if code != http.StatusAccepted {
		t.Fatalf("cold submit = %d, want 202", code)
	}
	if sb.Cache != "miss" {
		t.Fatalf("cold submit cache = %q, want miss", sb.Cache)
	}
	done := waitTerminal(t, base, sb.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s (%s), want done", done.Status, done.Error)
	}
	cold := getBody(t, base, "/v1/jobs/"+sb.ID+"/result", http.StatusOK)

	var env resultEnvelope
	if err := json.Unmarshal(cold, &env); err != nil {
		t.Fatalf("result is not a result envelope: %v", err)
	}
	if env.K != 4 || len(env.Labels) != done.Gates || env.Iters <= 0 {
		t.Fatalf("implausible envelope: k=%d labels=%d iters=%d", env.K, len(env.Labels), env.Iters)
	}

	// The identical request completes synchronously from the cache with the
	// exact same bytes.
	code2, sb2, _ := postJob(t, base, fastReq(1))
	if code2 != http.StatusOK {
		t.Fatalf("cached submit = %d, want 200", code2)
	}
	if sb2.Cache != "hit" || sb2.Status != StatusDone {
		t.Fatalf("cached submit cache=%q status=%s, want hit/done", sb2.Cache, sb2.Status)
	}
	if sb2.Key != sb.Key {
		t.Fatalf("identical requests got different keys:\n %s\n %s", sb.Key, sb2.Key)
	}
	hot := getBody(t, base, "/v1/jobs/"+sb2.ID+"/result", http.StatusOK)
	if !bytes.Equal(cold, hot) {
		t.Fatalf("cache hit is not byte-identical to the cold solve:\ncold: %s\nhot:  %s", cold, hot)
	}
	if d := mCacheHits.Value() - hits0; d != 1 {
		t.Errorf("gpp_serve_cache_hits_total advanced by %d, want 1", d)
	}
	if d := mCacheMisses.Value() - misses0; d != 1 {
		t.Errorf("gpp_serve_cache_misses_total advanced by %d, want 1", d)
	}
}

// TestCacheByteIdenticalAcrossWorkers is the headline determinism claim:
// the cache key excludes Options.Workers, and a cold solve at any worker
// count produces the same bytes a cache hit would serve. Two independent
// daemons solve the same job at Workers 1 and 4; the bodies must match
// each other and every later cache hit.
func TestCacheByteIdenticalAcrossWorkers(t *testing.T) {
	_, baseA := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	_, baseB := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	serial := fastReq(42)
	serial.Options.Workers = 1
	wide := fastReq(42)
	wide.Options.Workers = 4

	_, sbA, _ := postJob(t, baseA, serial)
	waitTerminal(t, baseA, sbA.ID)
	bodyA := getBody(t, baseA, "/v1/jobs/"+sbA.ID+"/result", http.StatusOK)

	_, sbB, _ := postJob(t, baseB, wide)
	waitTerminal(t, baseB, sbB.ID)
	bodyB := getBody(t, baseB, "/v1/jobs/"+sbB.ID+"/result", http.StatusOK)

	if sbA.Key != sbB.Key {
		t.Fatalf("Workers leaked into the cache key:\n w1: %s\n w4: %s", sbA.Key, sbB.Key)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("cold solves at Workers=1 and Workers=4 produced different bytes")
	}

	// On daemon A the wide spelling is now a cache hit — same bytes again.
	code, sbHit, _ := postJob(t, baseA, wide)
	if code != http.StatusOK || sbHit.Cache != "hit" {
		t.Fatalf("Workers=4 resubmit on daemon A: code=%d cache=%q, want 200/hit", code, sbHit.Cache)
	}
	hot := getBody(t, baseA, "/v1/jobs/"+sbHit.ID+"/result", http.StatusOK)
	if !bytes.Equal(hot, bodyA) {
		t.Fatal("cache hit across Workers settings is not byte-identical")
	}
}

// TestOptionSpellingsShareCacheEntry: a request spelling the solver
// defaults explicitly must hit the cache entry written by the
// all-defaults request.
func TestOptionSpellingsShareCacheEntry(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	_, implicit, _ := postJob(t, base, JobRequest{Circuit: "KSA8", K: 3})
	waitTerminal(t, base, implicit.ID)

	code, explicit, _ := postJob(t, base, JobRequest{Circuit: "KSA8", K: 3, Options: &JobOptions{
		Seed: 1, Margin: 1e-4, MaxIters: 4000, RefinePasses: 8, Workers: 1,
	}})
	if explicit.Key != implicit.Key {
		t.Fatalf("default spellings produced different keys:\n %s\n %s", implicit.Key, explicit.Key)
	}
	if code != http.StatusOK || explicit.Cache != "hit" {
		t.Fatalf("explicit-defaults submit: code=%d cache=%q, want 200/hit", code, explicit.Cache)
	}
}

func TestQueueOverflow429(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	rejected0 := mRejected.Value()

	codeA, a, _ := postJob(t, base, slowReq(101))
	if codeA != http.StatusAccepted {
		t.Fatalf("job A = %d, want 202", codeA)
	}
	waitRunning(t, base, a.ID) // worker occupied; queue empty

	codeB, b, _ := postJob(t, base, slowReq(102))
	if codeB != http.StatusAccepted {
		t.Fatalf("job B = %d, want 202", codeB)
	}

	// Queue slot taken: the next distinct submission must bounce.
	codeC, _, hdr := postJob(t, base, slowReq(103))
	if codeC != http.StatusTooManyRequests {
		t.Fatalf("job C = %d, want 429", codeC)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want an integer ≥ 1", hdr.Get("Retry-After"))
	}
	if d := mRejected.Value() - rejected0; d != 1 {
		t.Errorf("gpp_serve_queue_rejected_total advanced by %d, want 1", d)
	}

	// A rejected submission leaves no job behind.
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []statusBody `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 2 {
		t.Fatalf("registry holds %d jobs after a 429, want 2", len(list.Jobs))
	}

	// Cancel both so cleanup drains instantly.
	for _, id := range []string{a.ID, b.ID} {
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
	}
	if st := waitTerminal(t, base, a.ID); st.Status != StatusCancelled {
		t.Errorf("job A ended %s, want cancelled", st.Status)
	}
	if st := waitTerminal(t, base, b.ID); st.Status != StatusCancelled {
		t.Errorf("job B ended %s, want cancelled", st.Status)
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	cancelled0 := mCancelled.Value()
	_, sb, _ := postJob(t, base, slowReq(201))
	waitRunning(t, base, sb.ID)

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+sb.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", resp.StatusCode)
	}
	st := waitTerminal(t, base, sb.ID)
	if st.Status != StatusCancelled {
		t.Fatalf("job ended %s (%s), want cancelled", st.Status, st.Error)
	}
	if d := mCancelled.Value() - cancelled0; d != 1 {
		t.Errorf("gpp_serve_jobs_cancelled_total advanced by %d, want 1", d)
	}
	// A second cancel conflicts, and the result endpoint refuses.
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of a terminal job = %d, want 409", resp2.StatusCode)
	}
	getBody(t, base, "/v1/jobs/"+sb.ID+"/result", http.StatusConflict)
}

func TestJobDeadline(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	req := slowReq(301)
	req.TimeoutMS = 50
	_, sb, _ := postJob(t, base, req)
	st := waitTerminal(t, base, sb.ID)
	if st.Status != StatusFailed {
		t.Fatalf("deadlined job ended %s, want failed", st.Status)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", st.Error)
	}
}

func TestSSEStream(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4, ProgressEvery: 10})
	_, sb, _ := postJob(t, base, fastReq(401))

	resp, err := http.Get(base + "/v1/jobs/" + sb.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Read frames until the terminal status frame (the handler closes the
	// stream after it). Whether events arrive via replay or live depends on
	// timing; the union must cover the whole lifecycle either way.
	kinds := map[string]int{}
	var statusData string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			kinds[event]++
		case strings.HasPrefix(line, "data: ") && event == "status":
			statusData = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"job_queued", "job_running", "solve_start", "iter", "solve_done", "job_done", "status"} {
		if kinds[want] == 0 {
			t.Errorf("stream missing %q frames (got %v)", want, kinds)
		}
	}
	var final statusBody
	if err := json.Unmarshal([]byte(statusData), &final); err != nil {
		t.Fatalf("terminal status frame %q: %v", statusData, err)
	}
	if final.Status != StatusDone || len(final.Result) == 0 {
		t.Fatalf("terminal frame status=%s result=%d bytes, want done with result", final.Status, len(final.Result))
	}
}

func TestSubmitValidation(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	slack := 0.05
	cases := []struct {
		name string
		req  JobRequest
		want int
	}{
		{"no source", JobRequest{K: 2}, http.StatusBadRequest},
		{"two sources", JobRequest{Circuit: "KSA8", DEF: "x", K: 2}, http.StatusBadRequest},
		{"unknown benchmark", JobRequest{Circuit: "nope", K: 2}, http.StatusBadRequest},
		{"bad k", JobRequest{Circuit: "KSA8", K: 0}, http.StatusBadRequest},
		{"unknown from_job", JobRequest{FromJob: "deadbeef", K: 2}, http.StatusNotFound},
		{"balanced plus restarts", JobRequest{Circuit: "KSA8", K: 2, Restarts: 3, BalancedSlack: &slack}, http.StatusBadRequest},
		{"bad margin", JobRequest{Circuit: "KSA8", K: 2, Options: &JobOptions{Margin: 1.5}}, http.StatusBadRequest},
		{"bad def", JobRequest{DEF: "not a def file", K: 2}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, _, _ := postJob(t, base, tc.req)
		if code != tc.want {
			t.Errorf("%s: code = %d, want %d", tc.name, code, tc.want)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
}

// TestAssignmentCacheRoundTrip covers the assignio interaction: the
// assignment TSV of a cache-hit job must be byte-identical to the cold
// job's, and both must round-trip through assignio.Read and ReadPartial
// back to the served labels.
func TestAssignmentCacheRoundTrip(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	_, cold, _ := postJob(t, base, fastReq(501))
	waitTerminal(t, base, cold.ID)
	coldTSV := getBody(t, base, "/v1/jobs/"+cold.ID+"/assignment", http.StatusOK)

	code, hot, _ := postJob(t, base, fastReq(501))
	if code != http.StatusOK || hot.Cache != "hit" {
		t.Fatalf("resubmit: code=%d cache=%q, want 200/hit", code, hot.Cache)
	}
	hotTSV := getBody(t, base, "/v1/jobs/"+hot.ID+"/assignment", http.StatusOK)
	if !bytes.Equal(coldTSV, hotTSV) {
		t.Fatal("cache-hit assignment TSV differs from the cold solve's")
	}

	var env resultEnvelope
	if err := json.Unmarshal(getBody(t, base, "/v1/jobs/"+cold.ID+"/result", http.StatusOK), &env); err != nil {
		t.Fatal(err)
	}
	circuit, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	labels, k, err := assignio.Read(bytes.NewReader(coldTSV), circuit)
	if err != nil {
		t.Fatalf("assignio.Read: %v", err)
	}
	if k > 4 || len(labels) != len(env.Labels) {
		t.Fatalf("read k=%d labels=%d, want ≤4 planes over %d gates", k, len(labels), len(env.Labels))
	}
	for i := range labels {
		if labels[i] != env.Labels[i] {
			t.Fatalf("gate %d: TSV label %d != result label %d", i, labels[i], env.Labels[i])
		}
	}

	// ReadPartial over a truncated assignment (an ECO-style subset): kept
	// lines must match the result, dropped gates must be -1.
	lines := strings.Split(strings.TrimRight(string(coldTSV), "\n"), "\n")
	keep := lines[:len(lines)/2]
	partial, _, err := assignio.ReadPartial(strings.NewReader(strings.Join(keep, "\n")+"\n"), circuit)
	if err != nil {
		t.Fatalf("assignio.ReadPartial: %v", err)
	}
	seen := 0
	for i := range partial {
		switch partial[i] {
		case -1:
			// dropped by truncation
		case env.Labels[i]:
			seen++
		default:
			t.Fatalf("gate %d: partial label %d != result label %d", i, partial[i], env.Labels[i])
		}
	}
	if seen == 0 || seen == len(partial) {
		t.Fatalf("truncation produced a degenerate partial read (%d/%d assigned)", seen, len(partial))
	}
}

func TestFromJobReusesCircuit(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	_, first, _ := postJob(t, base, fastReq(601))
	waitTerminal(t, base, first.ID)

	code, ref, _ := postJob(t, base, JobRequest{FromJob: first.ID, K: 5, Options: &JobOptions{Seed: 601, MaxIters: 300}})
	if code != http.StatusAccepted {
		t.Fatalf("from_job submit = %d, want 202", code)
	}
	if ref.CircuitHash != first.CircuitHash || ref.Gates != first.Gates {
		t.Fatal("from_job did not reuse the prior job's circuit")
	}
	if ref.Key == first.Key {
		t.Fatal("different K reused the same cache key")
	}
	st := waitTerminal(t, base, ref.ID)
	if st.Status != StatusDone {
		t.Fatalf("from_job job ended %s (%s)", st.Status, st.Error)
	}
}

func TestDEFUploadAndPlan(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	circuit, err := gen.Benchmark("MULT4", nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := def.Write(&buf, circuit, nil); err != nil {
		t.Fatal(err)
	}
	req := JobRequest{DEF: buf.String(), K: 3, Plan: true, Options: &JobOptions{Seed: 601, MaxIters: 300}}
	_, sb, _ := postJob(t, base, req)
	st := waitTerminal(t, base, sb.ID)
	if st.Status != StatusDone {
		t.Fatalf("DEF job ended %s (%s)", st.Status, st.Error)
	}
	var env resultEnvelope
	if err := json.Unmarshal(getBody(t, base, "/v1/jobs/"+sb.ID+"/result", http.StatusOK), &env); err != nil {
		t.Fatal(err)
	}
	if env.Plan == nil {
		t.Fatal("plan requested but absent from the result")
	}
	if env.Plan.SupplyCurrentMA <= 0 || env.Plan.SupplyCurrentMA >= circuit.TotalBias() {
		t.Fatalf("recycling plan supply %.3f mA not inside (0, %.3f)", env.Plan.SupplyCurrentMA, circuit.TotalBias())
	}

	// The same upload again is a cache hit: DEF parsing is deterministic.
	code, again, _ := postJob(t, base, req)
	if code != http.StatusOK || again.Cache != "hit" || again.CircuitHash != sb.CircuitHash {
		t.Fatalf("identical DEF resubmit: code=%d cache=%q, want 200/hit with equal hash", code, again.Cache)
	}
}

// TestPlanFlagSplitsCacheKey is the regression test for a cache-key
// collision: the plan flag changes the cached body (the recycling-plan
// section is only present when requested), so a plan=true submission must
// never be answered from a plan=false entry or vice versa.
func TestPlanFlagSplitsCacheKey(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	bare := fastReq(7)
	planned := fastReq(7)
	planned.Plan = true

	code, sbBare, _ := postJob(t, base, bare)
	if code != http.StatusAccepted {
		t.Fatalf("cold plan=false submit = %d, want 202", code)
	}
	if st := waitTerminal(t, base, sbBare.ID); st.Status != StatusDone {
		t.Fatalf("plan=false job ended %s (%s)", st.Status, st.Error)
	}

	// The planned variant of the now-cached solve must miss and re-solve.
	code, sbPlan, _ := postJob(t, base, planned)
	if code != http.StatusAccepted || sbPlan.Cache != "miss" {
		t.Fatalf("plan=true after cached plan=false: code=%d cache=%q, want 202/miss", code, sbPlan.Cache)
	}
	if sbPlan.Key == sbBare.Key {
		t.Fatal("plan=true and plan=false share a cache key")
	}
	if st := waitTerminal(t, base, sbPlan.ID); st.Status != StatusDone {
		t.Fatalf("plan=true job ended %s (%s)", st.Status, st.Error)
	}

	// Each flavor now hits its own entry with the matching body shape.
	check := func(req JobRequest, wantPlan bool) {
		t.Helper()
		code, sb, _ := postJob(t, base, req)
		if code != http.StatusOK || sb.Cache != "hit" {
			t.Fatalf("resubmit plan=%v: code=%d cache=%q, want 200/hit", req.Plan, code, sb.Cache)
		}
		var env resultEnvelope
		if err := json.Unmarshal(getBody(t, base, "/v1/jobs/"+sb.ID+"/result", http.StatusOK), &env); err != nil {
			t.Fatal(err)
		}
		if got := env.Plan != nil; got != wantPlan {
			t.Fatalf("plan=%v cache hit returned plan-present=%v", req.Plan, got)
		}
	}
	check(bare, false)
	check(planned, true)
}

func TestHealthzAndMetrics(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	var h struct {
		Status   string `json:"status"`
		QueueCap int    `json:"queue_cap"`
		Workers  int    `json:"workers"`
	}
	if err := json.Unmarshal(getBody(t, base, "/healthz", http.StatusOK), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.QueueCap != 8 || h.Workers != 2 {
		t.Fatalf("healthz = %+v", h)
	}
	prom := string(getBody(t, base, "/metrics", http.StatusOK))
	for _, metric := range []string{
		"gpp_serve_cache_hits_total", "gpp_serve_jobs_submitted_total",
		"gpp_serve_queue_rejected_total", "gpp_serve_job_seconds",
	} {
		if !strings.Contains(prom, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}

func TestDrainingRejectsSubmissions(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	code, _, _ := postJob(t, hs.URL, fastReq(701))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", code)
	}
	getBody(t, hs.URL, "/healthz", http.StatusServiceUnavailable)
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestPrecisionJobTier covers the precision knob end to end: a float32 job
// solves, its cache key differs from the same job at the default tier
// (distinct trajectories must never share a cache entry), spelling the
// default as "float64" shares the default key, and an unknown tier is a
// 400 from validation rather than a silent float64 run.
func TestPrecisionJobTier(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	req := func(prec string) JobRequest {
		return JobRequest{Circuit: "KSA8", K: 3, Options: &JobOptions{
			MaxIters: 200, Precision: prec,
		}}
	}
	_, def, _ := postJob(t, base, req(""))
	waitTerminal(t, base, def.ID)
	_, f32, _ := postJob(t, base, req("float32"))
	if f32.Key == def.Key {
		t.Fatalf("float32 job shares the float64 cache key %s", def.Key)
	}
	done := waitTerminal(t, base, f32.ID)
	if done.Status != StatusDone {
		t.Fatalf("float32 job ended %s (%s), want done", done.Status, done.Error)
	}
	code, f64sp, _ := postJob(t, base, req("float64"))
	if f64sp.Key != def.Key {
		t.Fatalf("explicit float64 spelling got its own key:\n %s\n %s", f64sp.Key, def.Key)
	}
	if code != http.StatusOK || f64sp.Cache != "hit" {
		t.Fatalf("explicit float64 spelling: code=%d cache=%q, want 200/hit", code, f64sp.Cache)
	}
	code, _, raw := postJob(t, base, req("float16"))
	if code != http.StatusBadRequest {
		t.Fatalf("unknown precision accepted: code=%d body=%s", code, raw)
	}
}
