package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"gpp/internal/multilevel"
	"gpp/internal/netlist"
	"gpp/internal/obs"
	"gpp/internal/partition"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// terminal reports whether the state can no longer change.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Lifecycle event kinds published on a job's progress stream alongside the
// solver's own obs events. They use the JSONL encoder's generic fallback
// (no dedicated payload fields).
const (
	kindJobQueued    obs.Kind = "job_queued"
	kindJobRunning   obs.Kind = "job_running"
	kindJobCacheHit  obs.Kind = "job_cache_hit"
	kindJobDone      obs.Kind = "job_done"
	kindJobFailed    obs.Kind = "job_failed"
	kindJobCancelled obs.Kind = "job_cancelled"
	kindJobStolen    obs.Kind = "job_stolen"    // handed to an idle peer
	kindJobReclaimed obs.Kind = "job_reclaimed" // thief lease expired; re-enqueued
)

// job is one partition request moving through the daemon. The immutable
// request-derived fields are set before the job is published to the store;
// everything mutable sits behind mu.
type job struct {
	id          string
	circuit     *netlist.Circuit
	circuitName string
	circuitHash string
	key         string
	k           int
	restarts    int
	balanced    *float64            // nil = argmax snapping
	ml          *multilevel.Options // nil = flat solve; normalized V-cycle knobs otherwise
	opts        partition.Options
	plan        bool

	// req is the originating request with the circuit payload cleared
	// (the circuit travels separately) — what a steal grant ships so the
	// thief rebuilds the identical job, cache key included.
	req *JobRequest

	ctx    context.Context
	cancel context.CancelFunc
	broker *broker

	// Per-job tracing (nil when Config.FlightRecorder < 0): the ring of
	// recent events, the timed span trace feeding it, the root "job"
	// span, and the in-flight queue_wait span. spanQueue and enqueued are
	// written by the submitter before the queue send and read by the
	// worker after the receive — the channel is the happens-before edge.
	rec       *obs.FlightRecorder
	trace     *obs.Trace
	span      *obs.Span
	spanQueue *obs.Span
	enqueued  time.Time

	mu        sync.Mutex
	status    Status
	cacheHit  bool
	err       string
	body      []byte // marshaled result, nil until done
	labels    []int
	submitted time.Time
	started   time.Time
	finished  time.Time

	// finishing is the finish claim: once a cluster exists, a job can
	// have two would-be finishers (a thief's posted result and a local
	// re-solve after lease reclaim), and claimFinish lets exactly one
	// through. missCounted plays the same role for cache-miss accounting
	// across a steal + reclaim re-run.
	finishing   bool
	missCounted bool
}

// claimFinish atomically claims the right to finish this job; exactly one
// caller wins over the job's lifetime. Every terminal transition after
// admission must go through it.
func (j *job) claimFinish() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finishing || j.status.terminal() {
		return false
	}
	j.finishing = true
	return true
}

// countMiss claims the job's single cache-miss accounting slot; the first
// caller gets true.
func (j *job) countMiss() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.missCounted {
		return false
	}
	j.missCounted = true
	return true
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("serve: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// snapshot returns a consistent copy of the mutable state.
func (j *job) snapshot() (status Status, cacheHit bool, errMsg string, body []byte, labels []int, submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.cacheHit, j.err, j.body, j.labels, j.submitted, j.started, j.finished
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.publish(obs.Event{Kind: kindJobRunning})
}

// finishOK publishes the result and closes the progress stream. The root
// span ends first, so a finished job's profile always contains it.
func (j *job) finishOK(body []byte, labels []int, fromCache bool) {
	j.mu.Lock()
	j.status = StatusDone
	j.cacheHit = fromCache
	j.body = body
	j.labels = labels
	j.finished = time.Now()
	j.mu.Unlock()
	j.endRootSpan(StatusDone, fromCache)
	if fromCache {
		j.publish(obs.Event{Kind: kindJobCacheHit})
	}
	j.publish(obs.Event{Kind: kindJobDone})
	j.broker.close()
}

// finishErr records a failure (or cancellation) and closes the stream.
func (j *job) finishErr(status Status, err error) {
	j.mu.Lock()
	j.status = status
	j.err = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
	j.endRootSpan(status, false)
	kind := kindJobFailed
	if status == StatusCancelled {
		kind = kindJobCancelled
	}
	j.publish(obs.Event{Kind: kind})
	j.broker.close()
}

// broker fans a job's progress events out to any number of SSE
// subscribers. Publishes never block the solver: each subscriber has a
// buffered channel and slow consumers drop events (the history replay and
// the terminal status frame still give them a complete picture).
type broker struct {
	mu     sync.Mutex
	hist   []obs.Event
	subs   map[chan obs.Event]struct{}
	closed bool
}

// histCap bounds the replay history. With the default iter throttle a
// 4000-iteration solve publishes ~170 events, so the cap is headroom, not
// a working limit; when it overflows the oldest events roll off.
const histCap = 1024

// subBuf is each subscriber's channel depth.
const subBuf = 256

func newBroker() *broker {
	return &broker{subs: make(map[chan obs.Event]struct{})}
}

func (b *broker) publish(e obs.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if len(b.hist) == histCap {
		copy(b.hist, b.hist[1:])
		b.hist[histCap-1] = e
	} else {
		b.hist = append(b.hist, e)
	}
	for ch := range b.subs {
		select {
		case ch <- e:
		default: // slow consumer: drop rather than stall the solve
		}
	}
}

// subscribe returns the history so far plus a live channel. The channel is
// closed when the job finishes; if it already has, the returned channel is
// closed immediately and the history is complete. cancel detaches early.
func (b *broker) subscribe() (replay []obs.Event, ch chan obs.Event, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay = append([]obs.Event(nil), b.hist...)
	ch = make(chan obs.Event, subBuf)
	if b.closed {
		close(ch)
		return replay, ch, func() {}
	}
	b.subs[ch] = struct{}{}
	return replay, ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
	}
}

func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
}

// jobStore is the job registry: id → job plus submission order, bounded
// by evicting the oldest finished job when full.
type jobStore struct {
	mu    sync.Mutex
	max   int
	jobs  map[string]*job
	order []string
}

func newJobStore(max int) *jobStore {
	return &jobStore{max: max, jobs: make(map[string]*job)}
}

func (s *jobStore) add(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) >= s.max {
		for i, id := range s.order {
			old := s.jobs[id]
			st, _, _, _, _, _, _, _ := old.snapshot()
			if st.terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		// If nothing was evictable (every job live — impossible beyond
		// queue depth + workers in practice) the registry grows past max
		// rather than dropping a live job.
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
}

// remove deletes a job that never entered the queue (submission rejected).
func (s *jobStore) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return
	}
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns the jobs in submission order.
func (s *jobStore) list() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

func (s *jobStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}
