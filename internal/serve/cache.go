package serve

import (
	"container/list"
	"sync"
)

// cacheEntry is one cached solve: the exact marshaled result body served
// to every request with the same key, plus the decoded labels the
// assignment endpoint renders against a job's own gate names. Both are
// read-only after insertion — entries are shared across jobs.
type cacheEntry struct {
	key    string
	body   []byte
	labels []int
}

// lru is a small content-addressed LRU: map for lookup, intrusive list
// for recency, capacity in entries. Result bodies are a few KB (labels
// dominate), so an entry-count bound is the right granularity; a
// byte-size bound would buy little and complicate eviction.
type lru struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent; values are *cacheEntry
	idx map[string]*list.Element
}

func newLRU(capacity int) *lru {
	if capacity < 0 {
		capacity = 0 // caching disabled
	}
	return &lru{cap: capacity, ll: list.New(), idx: make(map[string]*list.Element, capacity)}
}

// get returns the entry and marks it most recently used.
func (c *lru) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts the entry, evicting from the cold end when over capacity.
// A concurrent duplicate insert (two identical misses racing) keeps the
// first entry — both computed identical bytes, so either is correct.
func (c *lru) put(e *cacheEntry) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[e.key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.idx[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.idx, cold.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
