package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"gpp/internal/def"
	"gpp/internal/gen"
	"gpp/internal/netlist"
	"gpp/internal/obs"
	"gpp/internal/partition"
	"gpp/internal/sweep"
)

// Batch sweeps: POST /v1/sweeps expands a declarative spec (K ranges,
// c-weight grids, a regime portfolio of term sets) into a cell matrix and
// runs every cell as an ordinary content-addressed job through the same
// queue the single-job endpoint feeds. Nothing downstream knows about
// sweeps: cells hit the result cache, cluster peers steal them, and a
// durable daemon journals them individually (after a crash they replay as
// plain jobs — the sweep wrapper is in-memory bookkeeping, the solved
// results all land in the content-addressed cache either way).
//
// Lifecycle: the submit handler validates the whole matrix up front (every
// cell must pass makeJob, so one bad term name rejects the sweep with the
// registered-terms message), then a feeder goroutine admits cells in order
// — cache hits complete synchronously, misses enqueue with retry under
// backpressure — while watcher goroutines forward each cell's progress
// events onto the sweep's own SSE broker (Event.Restart carries the cell
// index). When the last cell is terminal the finalizer ranks the
// non-failed cells and computes the (cost, b_max) Pareto front; failed or
// cancelled cells are reported with their errors and excluded from both.

// Sweep lifecycle event kinds on the sweep's SSE stream. Cell-scoped kinds
// set Event.Restart to the cell index (same convention as portfolio
// restarts); forwarded solver events keep their own kinds, retagged with
// the cell index the same way.
const (
	kindSweepCellDone   obs.Kind = "sweep_cell_done"
	kindSweepCellFailed obs.Kind = "sweep_cell_failed"
	kindSweepDone       obs.Kind = "sweep_done"
)

// SweepRequest is the POST /v1/sweeps submission document. Exactly one of
// Circuit or DEF selects the input; Spec declares the scenario matrix.
type SweepRequest struct {
	Circuit string `json:"circuit,omitempty"`
	DEF     string `json:"def,omitempty"`

	// K is the fallback plane count when the spec declares no K axis.
	K int `json:"k,omitempty"`

	// Spec is the declarative scenario matrix (see internal/sweep).
	Spec sweep.Spec `json:"spec"`

	// Restarts and Plan apply to every cell, as in JobRequest.
	Restarts int  `json:"restarts,omitempty"`
	Plan     bool `json:"plan,omitempty"`

	// TimeoutMS is the per-cell deadline (queue wait included); a regime's
	// own timeout_ms overrides it for that regime's cells.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Options is the base solver configuration shared by every cell; a
	// cell's expanded term specs append to (and must not duplicate)
	// Options.Terms.
	Options *JobOptions `json:"options,omitempty"`
}

// sweepCell pairs one expanded cell with its job and the outcome the
// watcher recorded; out is valid only once done is true.
type sweepCell struct {
	cell sweep.Cell
	req  *JobRequest
	job  *job

	mu   sync.Mutex
	done bool
	hit  bool
	out  sweep.Outcome
	errS string
}

// sweepRun is one batch sweep moving through the daemon.
type sweepRun struct {
	id          string
	circuitName string
	rankBy      string
	broker      *broker
	cells       []*sweepCell

	mu        sync.Mutex
	status    Status
	cancelled bool
	ranking   []int
	pareto    []int
	submitted time.Time
	finished  time.Time
}

func (sr *sweepRun) isCancelled() bool {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.cancelled
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var req SweepRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	c, name, err := s.resolveSweepCircuit(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells, err := sweep.Expand(req.Spec, req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sr := &sweepRun{
		id:          "sw-" + newJobID(),
		circuitName: name,
		rankBy:      req.Spec.RankBy,
		broker:      newBroker(),
		status:      StatusRunning,
		submitted:   time.Now(),
	}
	var base JobOptions
	if req.Options != nil {
		base = *req.Options
	}
	for _, cell := range cells {
		jo := base
		jo.Terms = append(append([]partition.TermSpec(nil), base.Terms...), cell.Terms...)
		timeout := req.TimeoutMS
		if cell.TimeoutMS > 0 {
			timeout = cell.TimeoutMS
		}
		jreq := &JobRequest{
			K: cell.K, Restarts: req.Restarts, Plan: req.Plan,
			TimeoutMS: timeout, Options: &jo,
		}
		j, _, err := s.makeJob(c, name, jreq)
		if err != nil {
			// One invalid cell rejects the whole sweep at submit — the
			// 400 carries the solver's message (unknown term names list
			// the registered terms), prefixed with which cell tripped it.
			for _, sc := range sr.cells {
				sc.job.cancel()
			}
			writeError(w, http.StatusBadRequest, "cell %d (k=%d regime=%q): %v",
				cell.Index, cell.K, cell.Regime, err)
			return
		}
		sr.cells = append(sr.cells, &sweepCell{cell: cell, req: jreq, job: j})
	}
	s.sweeps.add(sr)
	s.sweepWG.Add(1)
	go s.runSweep(sr)
	writeJSON(w, http.StatusAccepted, s.sweepJSON(sr))
}

// resolveSweepCircuit resolves the sweep's input circuit (benchmark name
// or inline DEF; sweeps have no from_job — cells reference each other by
// cache key already).
func (s *Server) resolveSweepCircuit(req *SweepRequest) (*netlist.Circuit, string, error) {
	switch {
	case req.Circuit != "" && req.DEF != "":
		return nil, "", fmt.Errorf("exactly one of circuit, def must be set")
	case req.Circuit != "":
		c, err := gen.Benchmark(req.Circuit, nil)
		if err != nil {
			return nil, "", err
		}
		return c, c.Name, nil
	case req.DEF != "":
		d, err := def.Parse(strings.NewReader(req.DEF))
		if err != nil {
			return nil, "", err
		}
		c, err := def.ToCircuit(d, s.cfg.Library)
		if err != nil {
			return nil, "", err
		}
		return c, c.Name, nil
	default:
		return nil, "", fmt.Errorf("exactly one of circuit, def must be set")
	}
}

// runSweep is the feeder + finalizer: admit cells in matrix order, watch
// each to termination, then rank.
func (s *Server) runSweep(sr *sweepRun) {
	defer s.sweepWG.Done()
	var watchers sync.WaitGroup
	for _, sc := range sr.cells {
		if sr.isCancelled() {
			sc.job.cancel()
			if sc.job.claimFinish() {
				sc.job.finishErr(StatusCancelled, context.Canceled)
			}
		} else {
			s.admitCell(sc.job, sc.req)
		}
		watchers.Add(1)
		go s.watchCell(sr, sc, &watchers)
	}
	watchers.Wait()
	s.finalizeSweep(sr)
}

// admitCell is the sweep-side mirror of handleSubmit's admission: cache
// hits (memory or disk) complete the cell synchronously, misses are
// write-ahead journaled and enqueued. Under backpressure (429) the feeder
// retries until a slot frees, the cell's own deadline fires, or the daemon
// drains — a sweep wider than the queue must not deadlock it, just feed it.
func (s *Server) admitCell(j *job, req *JobRequest) {
	mSubmitted.Inc()
	s.stats.submitted.Add(1)
	if ent, tier, ok := s.cacheGet(j.key); ok {
		j.spanCacheLookup(tier)
		mCacheHits.Inc()
		mCompleted.Inc()
		s.stats.cacheHits.Add(1)
		s.stats.completed.Add(1)
		j.cancel()
		s.store.add(j)
		j.finishOK(ent.body, ent.labels, true)
		return
	}
	j.spanCacheLookup("miss")
	if s.durable != nil {
		wal := j.span.Child("wal_accept")
		err := s.durable.acceptJob(j, req)
		wal.End()
		if err != nil {
			j.cancel()
			if j.claimFinish() {
				j.finishErr(StatusFailed, err)
			}
			return
		}
	}
	s.store.add(j)
	j.publish(obs.Event{Kind: kindJobQueued})
	j.beginQueueWait()
	for {
		switch s.enqueue(j) {
		case http.StatusAccepted:
			return
		case http.StatusServiceUnavailable:
			j.cancel()
			s.finishWithError(j, context.Canceled)
			return
		default: // queue full: wait for a slot
			select {
			case <-j.ctx.Done():
				s.finishWithError(j, j.ctx.Err())
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
}

// watchCell forwards one cell's progress events onto the sweep stream
// (retagged with the cell index) and records its outcome when the cell's
// broker closes — the job's terminal signal on every path, including
// cache hits, thief completions, and recovery.
func (s *Server) watchCell(sr *sweepRun, sc *sweepCell, wg *sync.WaitGroup) {
	defer wg.Done()
	replay, ch, detach := sc.job.broker.subscribe()
	defer detach()
	for _, e := range replay {
		e.Restart = sc.cell.Index
		sr.broker.publish(e)
	}
	for e := range ch {
		e.Restart = sc.cell.Index
		sr.broker.publish(e)
	}
	st, hit, errMsg, body, _, _, _, _ := sc.job.snapshot()
	out := sweep.Outcome{Index: sc.cell.Index}
	if st == StatusDone {
		var env struct {
			DiscreteCost float64 `json:"discrete_cost"`
			Metrics      struct {
				BMax float64 `json:"b_max_ma"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			out.Failed = true
			errMsg = "result body unreadable: " + err.Error()
		} else {
			out.Cost = env.DiscreteCost
			out.BMax = env.Metrics.BMax
		}
	} else {
		out.Failed = true
	}
	sc.mu.Lock()
	sc.done, sc.hit, sc.out, sc.errS = true, hit, out, errMsg
	sc.mu.Unlock()
	kind := kindSweepCellDone
	if out.Failed {
		kind = kindSweepCellFailed
	}
	sr.broker.publish(obs.Event{Kind: kind, Restart: sc.cell.Index, FDiscrete: out.Cost})
}

// finalizeSweep ranks the finished matrix. Failed cells (cancelled,
// deadline-exceeded, unreadable) are excluded from the ranking and the
// Pareto front; they stay in the cell list with their errors, so one bad
// cell never poisons the batch.
func (sr *sweepRun) finalize() {
	outs := make([]sweep.Outcome, len(sr.cells))
	for i, sc := range sr.cells {
		sc.mu.Lock()
		outs[i] = sc.out
		sc.mu.Unlock()
	}
	sr.mu.Lock()
	sr.ranking = sweep.Rank(outs, sr.rankBy)
	sr.pareto = sweep.ParetoFront(outs)
	if sr.cancelled {
		sr.status = StatusCancelled
	} else {
		sr.status = StatusDone
	}
	sr.finished = time.Now()
	sr.mu.Unlock()
}

func (s *Server) finalizeSweep(sr *sweepRun) {
	sr.finalize()
	sr.broker.publish(obs.Event{Kind: kindSweepDone})
	sr.broker.close()
}

// cancel cancels every non-terminal cell; cells not yet admitted are
// cancelled by the feeder when it reaches them.
func (sr *sweepRun) cancel() {
	sr.mu.Lock()
	sr.cancelled = true
	sr.mu.Unlock()
	for _, sc := range sr.cells {
		sc.job.cancel()
	}
}

// sweepStatusBody is the sweep document served by GET /v1/sweeps/{id} (and
// echoed on submission). Ranking and Pareto list cell indices, best first,
// and appear once the sweep is terminal.
type sweepStatusBody struct {
	ID        string          `json:"id"`
	Status    Status          `json:"status"`
	Circuit   string          `json:"circuit"`
	RankBy    string          `json:"rank_by"`
	Cells     []sweepCellBody `json:"cells"`
	Done      int             `json:"done"`
	Failed    int             `json:"failed"`
	Pending   int             `json:"pending"`
	Ranking   []int           `json:"ranking,omitempty"`
	Pareto    []int           `json:"pareto,omitempty"`
	Submitted string          `json:"submitted_at,omitempty"`
	Finished  string          `json:"finished_at,omitempty"`
}

// sweepCellBody summarizes one cell: its scenario coordinates, the job
// backing it (poll /v1/jobs/{job_id} for the full result document), and —
// once finished — its ranking metrics.
type sweepCellBody struct {
	Index   int                  `json:"index"`
	JobID   string               `json:"job_id"`
	Key     string               `json:"key"`
	K       int                  `json:"k"`
	Regime  string               `json:"regime,omitempty"`
	Weights *sweep.WeightPoint   `json:"weights,omitempty"`
	Terms   []partition.TermSpec `json:"terms,omitempty"`
	Status  Status               `json:"status"`
	Cache   string               `json:"cache,omitempty"`
	Cost    *float64             `json:"cost,omitempty"`
	BMaxMA  *float64             `json:"b_max_ma,omitempty"`
	Error   string               `json:"error,omitempty"`
}

func (s *Server) sweepJSON(sr *sweepRun) sweepStatusBody {
	sr.mu.Lock()
	body := sweepStatusBody{
		ID:      sr.id,
		Status:  sr.status,
		Circuit: sr.circuitName,
		RankBy:  sr.rankBy,
		Ranking: append([]int(nil), sr.ranking...),
		Pareto:  append([]int(nil), sr.pareto...),
	}
	submitted, finished := sr.submitted, sr.finished
	sr.mu.Unlock()
	if body.RankBy == "" {
		body.RankBy = sweep.RankByCost
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	body.Submitted, body.Finished = stamp(submitted), stamp(finished)
	for _, sc := range sr.cells {
		st, _, errMsg, _, _, _, _, _ := sc.job.snapshot()
		cb := sweepCellBody{
			Index:   sc.cell.Index,
			JobID:   sc.job.id,
			Key:     sc.job.key,
			K:       sc.cell.K,
			Regime:  sc.cell.Regime,
			Weights: sc.cell.Weights,
			Terms:   sc.cell.Terms,
			Status:  st,
			Error:   errMsg,
		}
		sc.mu.Lock()
		if sc.done {
			if sc.hit {
				cb.Cache = "hit"
			} else {
				cb.Cache = "miss"
			}
			if !sc.out.Failed {
				cost, bmax := sc.out.Cost, sc.out.BMax
				cb.Cost, cb.BMaxMA = &cost, &bmax
				body.Done++
			} else {
				body.Failed++
				if cb.Error == "" {
					cb.Error = sc.errS
				}
			}
		} else {
			body.Pending++
		}
		sc.mu.Unlock()
		body.Cells = append(body.Cells, cb)
	}
	return body
}

func (s *Server) sweepFor(w http.ResponseWriter, r *http.Request) (*sweepRun, bool) {
	sr, ok := s.sweeps.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "sweep %q not found", r.PathValue("id"))
		return nil, false
	}
	return sr, true
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	if sr, ok := s.sweepFor(w, r); ok {
		writeJSON(w, http.StatusOK, s.sweepJSON(sr))
	}
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sr, ok := s.sweepFor(w, r)
	if !ok {
		return
	}
	sr.mu.Lock()
	terminal := sr.status.terminal()
	sr.mu.Unlock()
	if terminal {
		writeError(w, http.StatusConflict, "sweep %s already %s", sr.id, sr.status)
		return
	}
	sr.cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": sr.id, "status": "cancelling"})
}

// handleSweepEvents streams the sweep's merged progress as SSE: every
// cell's lifecycle and throttled solver events (Restart = cell index),
// the sweep's own cell_done/cell_failed markers, and a terminal "status"
// frame carrying the ranked sweep document.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sr, ok := s.sweepFor(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	replay, ch, detach := sr.broker.subscribe()
	defer detach()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	var scratch []byte
	for _, e := range replay {
		scratch = writeSSE(w, scratch, e)
	}
	flusher.Flush()
	var keepalive <-chan time.Time
	if s.cfg.SSEKeepalive > 0 {
		t := time.NewTicker(s.cfg.SSEKeepalive)
		defer t.Stop()
		keepalive = t.C
	}
	for {
		select {
		case e, open := <-ch:
			if !open {
				doc, err := json.Marshal(s.sweepJSON(sr))
				if err == nil {
					fmt.Fprintf(w, "event: status\ndata: %s\n\n", doc)
				}
				flusher.Flush()
				return
			}
			scratch = writeSSE(w, scratch, e)
			flusher.Flush()
		case <-keepalive:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// sweepStoreMax bounds the sweep registry; beyond it the oldest terminal
// sweep is evicted (live sweeps are never dropped).
const sweepStoreMax = 256

type sweepStore struct {
	mu    sync.Mutex
	m     map[string]*sweepRun
	order []string
}

func newSweepStore() *sweepStore {
	return &sweepStore{m: make(map[string]*sweepRun)}
}

func (s *sweepStore) add(sr *sweepRun) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) >= sweepStoreMax {
		for i, id := range s.order {
			old := s.m[id]
			old.mu.Lock()
			terminal := old.status.terminal()
			old.mu.Unlock()
			if terminal {
				delete(s.m, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.m[sr.id] = sr
	s.order = append(s.order, sr.id)
}

func (s *sweepStore) get(id string) (*sweepRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.m[id]
	return sr, ok
}
