package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpp/internal/partition"
	"gpp/internal/sweep"
)

func postSweep(t *testing.T, base string, req SweepRequest) (int, sweepStatusBody, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sb sweepStatusBody
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &sb); err != nil {
			t.Fatalf("bad sweep response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, sb, raw
}

func waitSweepTerminal(t *testing.T, base, id string) sweepStatusBody {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sb sweepStatusBody
		err = json.NewDecoder(resp.Body).Decode(&sb)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sb.Status.terminal() {
			return sb
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached a terminal state", id)
	return sweepStatusBody{}
}

// TestSweepThreeRegimes is the acceptance-criteria flow: one POST
// /v1/sweeps with a three-regime portfolio returns a ranked result set
// whose cells are individually addressable jobs and individually
// cache-hittable.
func TestSweepThreeRegimes(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	code, sb, raw := postSweep(t, base, SweepRequest{
		Circuit: "KSA8",
		Spec: sweep.Spec{
			Ks: []int{4},
			Regimes: []sweep.Regime{
				{Name: "paper"},
				{Name: "xesfq", Terms: []partition.TermSpec{{Name: "xesfq"}}},
				{Name: "ersfq", Terms: []partition.TermSpec{{Name: "current_limit", Weight: 2, Param: 50}}},
			},
		},
	})
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d: %s", code, raw)
	}
	if len(sb.Cells) != 3 {
		t.Fatalf("expanded %d cells, want 3", len(sb.Cells))
	}
	done := waitSweepTerminal(t, base, sb.ID)
	if done.Status != StatusDone {
		t.Fatalf("sweep status = %s, want done", done.Status)
	}
	if done.Done != 3 || done.Failed != 0 || done.Pending != 0 {
		t.Fatalf("cell counts done=%d failed=%d pending=%d, want 3/0/0", done.Done, done.Failed, done.Pending)
	}
	if len(done.Ranking) != 3 {
		t.Fatalf("ranking = %v, want all 3 cells", done.Ranking)
	}
	if len(done.Pareto) == 0 {
		t.Fatalf("pareto front empty")
	}
	// Ranking is best-first under discrete cost.
	costOf := make(map[int]float64, 3)
	for _, c := range done.Cells {
		if c.Cost == nil || c.BMaxMA == nil {
			t.Fatalf("cell %d missing ranking metrics: %+v", c.Index, c)
		}
		costOf[c.Index] = *c.Cost
	}
	for i := 1; i < len(done.Ranking); i++ {
		if costOf[done.Ranking[i-1]] > costOf[done.Ranking[i]] {
			t.Fatalf("ranking not ascending by cost: %v (%v)", done.Ranking, costOf)
		}
	}
	// Every cell is an ordinary job: its document is served by the jobs
	// API and its result carries the per-cell cost breakdown.
	for _, c := range done.Cells {
		js := getStatus(t, base, c.JobID)
		if js.Status != StatusDone {
			t.Fatalf("cell %d job %s status = %s", c.Index, c.JobID, js.Status)
		}
		if !strings.Contains(string(js.Result), `"cost_breakdown"`) {
			t.Fatalf("cell %d result has no cost breakdown: %s", c.Index, js.Result)
		}
	}
	// Cells are individually cache-hittable: resubmitting one cell's
	// scenario as a plain job answers synchronously from the cache.
	var xesfqCell *sweepCellBody
	for i := range done.Cells {
		if done.Cells[i].Regime == "xesfq" {
			xesfqCell = &done.Cells[i]
		}
	}
	code, js, _ := postJob(t, base, JobRequest{
		Circuit: "KSA8", K: 4,
		Options: &JobOptions{Terms: xesfqCell.Terms},
	})
	if code != http.StatusOK || js.Cache != "hit" {
		t.Fatalf("cell resubmission code=%d cache=%q, want 200/hit", code, js.Cache)
	}
	// The SSE stream replays per-cell progress and closes with the ranked
	// status frame.
	events := string(getBody(t, base, "/v1/sweeps/"+sb.ID+"/events", http.StatusOK))
	if !strings.Contains(events, string(kindSweepCellDone)) {
		t.Errorf("sweep events missing %s frames: %s", kindSweepCellDone, events[:min(len(events), 400)])
	}
	if !strings.Contains(events, "event: status") || !strings.Contains(events, `"ranking"`) {
		t.Errorf("sweep events missing terminal ranked status frame")
	}
}

// TestSweepUnknownTermRejected (satellite): a sweep naming an unregistered
// term must 400 at submit with the registered terms listed — mirroring the
// jobs API's ?status= 400 pattern.
func TestSweepUnknownTermRejected(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	code, _, raw := postSweep(t, base, SweepRequest{
		Circuit: "KSA4",
		Spec: sweep.Spec{
			Ks:      []int{3},
			Regimes: []sweep.Regime{{Name: "bad", Terms: []partition.TermSpec{{Name: "warp_drive"}}}},
		},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown term sweep = %d, want 400: %s", code, raw)
	}
	body := string(raw)
	for _, name := range []string{"warp_drive", "registered terms", "xesfq", "current_limit", "timing_critical", "f1"} {
		if !strings.Contains(body, name) {
			t.Errorf("400 body does not mention %q: %s", name, body)
		}
	}
}

// TestJobUnknownTermRejected: the single-job endpoint gets the same
// validation through Options.Terms.
func TestJobUnknownTermRejected(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	body, err := json.Marshal(JobRequest{
		Circuit: "KSA4", K: 3,
		Options: &JobOptions{Terms: []partition.TermSpec{{Name: "bogus"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown term job = %d, want 400: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "registered terms") {
		t.Errorf("400 body does not list registered terms: %s", raw)
	}
}

// TestSweepFailedCellExcluded (satellite): a cell killed by its injected
// per-regime deadline is marked failed with its error and excluded from
// the ranking and the Pareto front — it never poisons the batch.
func TestSweepFailedCellExcluded(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	code, sb, raw := postSweep(t, base, SweepRequest{
		// KSA32 is big enough that no solve finishes inside 1 ms, so the
		// injected deadline always fires.
		Circuit: "KSA32",
		Spec: sweep.Spec{
			Ks: []int{3},
			Regimes: []sweep.Regime{
				{Name: "healthy"},
				// Distinct term set (distinct cache key) so the doomed cell
				// cannot be rescued by a cache hit on the healthy cell, and a
				// 1 ms deadline no real solve can meet.
				{Name: "doomed", Terms: []partition.TermSpec{{Name: "current_limit"}}, TimeoutMS: 1},
			},
		},
	})
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d: %s", code, raw)
	}
	done := waitSweepTerminal(t, base, sb.ID)
	if done.Status != StatusDone {
		t.Fatalf("sweep status = %s, want done (failed cells must not fail the sweep)", done.Status)
	}
	if done.Done != 1 || done.Failed != 1 {
		t.Fatalf("cell counts done=%d failed=%d, want 1/1", done.Done, done.Failed)
	}
	var healthy, doomed *sweepCellBody
	for i := range done.Cells {
		switch done.Cells[i].Regime {
		case "healthy":
			healthy = &done.Cells[i]
		case "doomed":
			doomed = &done.Cells[i]
		}
	}
	if doomed.Status != StatusFailed && doomed.Status != StatusCancelled {
		t.Fatalf("doomed cell status = %s, want failed/cancelled", doomed.Status)
	}
	if doomed.Error == "" {
		t.Errorf("doomed cell reports no error")
	}
	if doomed.Cost != nil {
		t.Errorf("doomed cell has a ranking cost")
	}
	want := []int{healthy.Index}
	if len(done.Ranking) != 1 || done.Ranking[0] != want[0] {
		t.Errorf("ranking = %v, want %v (doomed cell excluded)", done.Ranking, want)
	}
	for _, idx := range done.Pareto {
		if idx == doomed.Index {
			t.Errorf("pareto front contains the failed cell: %v", done.Pareto)
		}
	}
}

// TestSweepCancel: DELETE cancels the remaining cells and the sweep
// settles as cancelled with the already-finished cells intact.
func TestSweepCancel(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	code, sb, raw := postSweep(t, base, SweepRequest{
		Circuit: "KSA8",
		Spec:    sweep.Spec{KRange: &sweep.KRange{From: 2, To: 9}},
	})
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d: %s", code, raw)
	}
	delReq, err := http.NewRequest(http.MethodDelete, base+"/v1/sweeps/"+sb.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep cancel = %d, want 202", resp.StatusCode)
	}
	done := waitSweepTerminal(t, base, sb.ID)
	if done.Status != StatusCancelled {
		t.Fatalf("cancelled sweep status = %s, want cancelled", done.Status)
	}
	if done.Pending != 0 {
		t.Fatalf("cancelled sweep still has %d pending cells", done.Pending)
	}
}
