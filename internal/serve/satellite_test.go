package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestListBadStatusListsValid: an unknown ?status= filter must be a 400
// whose error names every valid status — the client typo'd, tell them
// what would have worked.
func TestListBadStatusListsValid(t *testing.T) {
	_, base := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	raw := getBody(t, base, "/v1/jobs?status=bogus", http.StatusBadRequest)
	body := string(raw)
	if !strings.Contains(body, `"error"`) {
		t.Fatalf("bad-status response is not a JSON error: %s", body)
	}
	for _, st := range []Status{StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled} {
		if !strings.Contains(body, string(st)) {
			t.Errorf("bad-status error does not list %q: %s", st, body)
		}
	}
}

// TestRetryAfterScalesWithBacklog: the 429 hint must grow with the live
// backlog (queued + in-flight jobs) instead of quoting a constant, and
// stay inside [1, 60].
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	// No history yet: the floor.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("retryAfter with no history = %d, want 1", got)
	}

	// Recent jobs took ~10s each.
	for i := 0; i < 4; i++ {
		s.stats.jobSeconds.Observe(10)
	}
	idle := s.retryAfterSeconds() // backlog floor of 1 → ~10s
	s.stats.inflight.Add(3)       // now 3 jobs in flight
	busy := s.retryAfterSeconds() // ~30s
	s.stats.inflight.Add(100)     // pathological depth
	capped := s.retryAfterSeconds()
	s.stats.inflight.Add(-103)

	if idle != 10 {
		t.Errorf("retryAfter idle = %d, want 10 (one 10s job ahead)", idle)
	}
	if busy <= idle {
		t.Errorf("retryAfter did not scale with backlog: idle=%d busy=%d", idle, busy)
	}
	if busy != 30 {
		t.Errorf("retryAfter with backlog 3 = %d, want 30", busy)
	}
	if capped != 60 {
		t.Errorf("retryAfter is unbounded: got %d, want the 60s cap", capped)
	}
}
