package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"gpp/internal/cluster"
	"gpp/internal/netlist"
	"gpp/internal/obs"
)

// Cluster glue: the server side of the node-to-node protocol plus the
// loops that make one daemon a cluster member. internal/cluster owns
// membership, the hash ring, breakers, and the client calls; this file
// owns everything that touches jobs, the queue, the cache, and the WAL:
//
//   - Submit routing (maybeForward): a submission whose cache key hashes
//     to another node is proxied there verbatim, so the solve and its
//     cached result land on the one node every identical request routes
//     to. Transport errors and owner-side 5xx degrade to solving locally.
//
//   - Peer read-through (peerFetch): a worker that misses the local
//     memory+disk cache consults the key's owner and replicas before
//     solving, and persists a fetched blob locally so the hit is durable.
//
//   - Work stealing. handleClusterSteal pops a queued job, journals a
//     handoff record (durable before the grant leaves the process), and
//     hands the full job — circuit bytes inline — to the thief.
//     stealLoop is the thief side: when idle it polls busy peers, solves
//     a granted job privately (never entering its own job registry), and
//     posts the result back (handleClusterComplete). reclaimLoop
//     re-enqueues stolen jobs whose lease expired — a dead thief delays
//     a job by one lease, never loses it. claimFinish arbitrates the
//     thief-returns-vs-reclaim race so exactly one completion is
//     recorded under the original job id.
//
// Crash accounting, the invariant the crash-matrix tests pin down: a
// handoff record in the journal does NOT terminate the accept record, so
// an owner killed mid-handoff replays the job at boot; a thief killed
// mid-solve triggers the lease reclaim; a thief completing into a
// restarted or reclaimed owner hits claimFinish and is dropped. In every
// interleaving the job reaches exactly one terminal journal record, and
// solver determinism makes any shadow re-execution byte-identical.

// stolenJob tracks one job handed to a thief, until the thief posts the
// result back or the lease expires.
type stolenJob struct {
	j        *job
	thief    string
	deadline time.Time
}

// startCluster wires the optional cluster membership into a freshly built
// server: the heartbeat loop, the steal loop, and the reclaim loop.
func (s *Server) startCluster() error {
	if s.cfg.Cluster == nil {
		return nil
	}
	c, err := cluster.New(*s.cfg.Cluster)
	if err != nil {
		return err
	}
	s.cluster = c
	s.stolen = make(map[string]*stolenJob)
	s.loopStop = make(chan struct{})
	c.Start()
	s.loops.Add(2)
	go s.stealLoop()
	go s.reclaimLoop()
	return nil
}

// --- submit routing ---

// maybeForward proxies a freshly built (but not yet admitted) job to the
// node owning its cache key. It reports whether the request was fully
// handled (response written). Degrades to local handling — returning
// false — when this node is the owner, the owner looks dead, the
// transport fails, or the owner answers 5xx/503; a from_job submission
// always runs locally (the prior job it references is local), as does a
// request already forwarded once (loop guard).
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, req *JobRequest, j *job, raw []byte) bool {
	if s.cluster == nil || req.FromJob != "" || r.Header.Get(cluster.ForwardedHeader) != "" {
		return false
	}
	owner, self := s.cluster.Owner(j.key)
	if self || !s.cluster.Alive(owner) {
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cluster.Config().PeerTimeout)
	defer cancel()
	resp, err := s.cluster.Forward(ctx, owner, raw)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		// Owner draining or broken; this node can still solve.
		return false
	}
	j.cancel()
	mForwarded.Inc()
	w.Header().Set("Content-Type", "application/json")
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(cluster.RoutedHeader, owner)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// --- peer cache read-through ---

// peerFetch is the third cache tier: after a local memory+disk miss, ask
// the key's owner and replicas. A fetched blob is persisted locally
// (memory LRU + blob store) so later lookups — including after a restart
// — hit without touching the network again.
func (s *Server) peerFetch(j *job) (*cacheEntry, bool) {
	if s.cluster == nil {
		return nil, false
	}
	sp := j.span.Child("peer_fetch")
	defer sp.End()
	ctx, cancel := context.WithTimeout(j.ctx, s.cluster.Config().PeerTimeout)
	defer cancel()
	raw, from, ok := s.cluster.FetchBlob(ctx, j.key)
	if !ok {
		sp.Attr("outcome", "miss")
		return nil, false
	}
	var cb cacheBlob
	if err := json.Unmarshal(raw, &cb); err != nil || len(cb.Body) == 0 {
		sp.Attr("outcome", "damaged")
		return nil, false
	}
	sp.Attr("outcome", "hit")
	sp.Attr("from", from)
	ent := &cacheEntry{key: j.key, body: cb.Body, labels: cb.Labels}
	s.cache.put(ent)
	if s.durable != nil {
		s.durable.persistEntry(ent)
	}
	mPeerCacheHits.Inc()
	return ent, true
}

// --- node-to-node endpoints ---

// handleClusterPing answers peer heartbeats with this node's load, which
// feeds the peers' steal targeting.
func (s *Server) handleClusterPing(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "not a cluster member")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Node       string `json:"node"`
		Draining   bool   `json:"draining"`
		QueueDepth int    `json:"queue_depth"`
		Inflight   int64  `json:"inflight"`
	}{s.cluster.Self(), s.Draining(), len(s.queue), s.stats.inflight.Load()})
}

// handleClusterBlob serves one result-cache entry (the cacheBlob
// document) to a peer read-through. Strictly local: memory+disk only,
// never recursing into this node's own peer fetch.
func (s *Server) handleClusterBlob(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "not a cluster member")
		return
	}
	key := r.PathValue("key")
	ent, _, ok := s.cacheGet(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached entry for %s", key)
		return
	}
	writeJSON(w, http.StatusOK, &cacheBlob{Labels: ent.labels, Body: ent.body})
}

// stealGrant is the handoff document: everything a thief needs to run the
// job — circuit bytes inline (the thief shares no storage with the
// owner), the original request (normalization is idempotent, so the thief
// derives the identical cache key), and the job's remaining deadline.
type stealGrant struct {
	ID          string          `json:"id"`
	CircuitName string          `json:"circuit_name"`
	Circuit     json.RawMessage `json:"circuit"`
	RemainingMS int64           `json:"remaining_ms"`
	Request     JobRequest      `json:"request"`
}

// completeDoc is a thief's result post: terminal status plus, when done,
// the exact result bytes the owner caches and serves.
type completeDoc struct {
	ID     string          `json:"id"`
	Status Status          `json:"status"`
	Error  string          `json:"error,omitempty"`
	Labels []int           `json:"labels,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// handleClusterSteal grants one queued job to an idle peer, or 204 when
// there is nothing to give. The WAL handoff record is appended before the
// grant is written: once the grant can have left this process, a crash
// replays the accept record (the handoff does not terminate it) and the
// job re-runs — the thief's eventual complete deduplicates via
// claimFinish.
func (s *Server) handleClusterSteal(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "not a cluster member")
		return
	}
	var req struct {
		Thief string `json:"thief"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil || req.Thief == "" {
		writeError(w, http.StatusBadRequest, "bad steal request")
		return
	}
	// Bounded pop loop: jobs that expired while queued are finished
	// locally and skipped, not handed out.
	for tries := 0; tries < s.cfg.QueueDepth; tries++ {
		var j *job
		var open bool
		select {
		case j, open = <-s.queue:
			if !open {
				j = nil // draining: the queue is closed
			}
		default:
		}
		if j == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		mQueueDepth.Set(float64(len(s.queue)))
		j.endQueueWait(s.stats)
		if j.ctx.Err() != nil {
			s.finishWithError(j, j.ctx.Err())
			continue
		}
		grant, err := s.grantSteal(j, req.Thief)
		if err != nil {
			// Handoff could not be made durable: keep the job local.
			s.requeue(j)
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(grant)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// grantSteal journals the handoff and builds the grant document for a job
// already popped from the queue.
func (s *Server) grantSteal(j *job, thief string) ([]byte, error) {
	circJSON, err := json.Marshal(j.circuit)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal stolen circuit: %w", err)
	}
	g := stealGrant{ID: j.id, CircuitName: j.circuitName, Circuit: circJSON}
	if j.req != nil {
		g.Request = *j.req
	} else {
		g.Request = JobRequest{K: j.k}
	}
	if dl, ok := j.ctx.Deadline(); ok {
		g.RemainingMS = time.Until(dl).Milliseconds()
	}
	grant, err := json.Marshal(&g)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal steal grant: %w", err)
	}
	if s.durable != nil {
		if err := s.durable.handoffJob(j.id, thief); err != nil {
			return nil, err
		}
	}
	// The job resolved as a miss the moment it left for a thief (even a
	// thief-side cache hit missed here); countMiss keeps a later reclaim
	// from double-booking it.
	if j.countMiss() {
		mCacheMisses.Inc()
		s.stats.cacheMiss.Add(1)
	}
	sp := j.span.Child("steal_handoff")
	sp.Attr("thief", thief)
	sp.End()
	j.publish(obs.Event{Kind: kindJobStolen})
	j.setRunning()
	s.stolenMu.Lock()
	s.stolen[j.id] = &stolenJob{j: j, thief: thief,
		deadline: time.Now().Add(s.cluster.Config().StealLease)}
	s.stolenMu.Unlock()
	mStealGrants.Inc()
	return grant, nil
}

// requeue puts a job back on the queue after a failed handoff; if the
// daemon is draining or the queue refilled meanwhile, the job finishes
// cancelled instead of blocking the steal handler.
func (s *Server) requeue(j *job) {
	j.beginQueueWait()
	s.qmu.Lock()
	if !s.draining {
		select {
		case s.queue <- j:
			s.qmu.Unlock()
			mQueueDepth.Set(float64(len(s.queue)))
			return
		default:
		}
	}
	s.qmu.Unlock()
	j.endQueueWait(s.stats)
	s.finishWithError(j, context.Canceled)
}

// handleClusterComplete accepts a thief's result for a job this node
// owns. claimFinish arbitrates against a concurrent reclaim re-solve (or
// a second, duplicate complete): the loser is acknowledged and dropped,
// so the job finishes exactly once.
func (s *Server) handleClusterComplete(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "not a cluster member")
		return
	}
	var doc completeDoc
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, "bad complete body: %v", err)
		return
	}
	j, ok := s.store.get(doc.ID)
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", doc.ID)
		return
	}
	s.stolenMu.Lock()
	if s.stolen != nil {
		delete(s.stolen, doc.ID)
	}
	s.stolenMu.Unlock()
	switch doc.Status {
	case StatusDone:
		if len(doc.Body) == 0 {
			writeError(w, http.StatusBadRequest, "done without a result body")
			return
		}
		// Cache the result regardless of who wins the finish race; the
		// bytes are identical either way.
		ent := &cacheEntry{key: j.key, body: doc.Body, labels: doc.Labels}
		s.cache.put(ent)
		if s.durable != nil {
			s.durable.persistEntry(ent)
		}
		if !j.claimFinish() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ignored"})
			return
		}
		mCompleted.Inc()
		s.stats.completed.Add(1)
		sp := j.span.Child("steal_complete")
		sp.End()
		j.finishOK(doc.Body, doc.Labels, false)
		s.journalFinish(j, StatusDone)
		mStealCompletesIn.Inc()
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case StatusFailed:
		if doc.Error == "" {
			doc.Error = "stolen job failed on thief"
		}
		if !s.finishWithError(j, errors.New(doc.Error)) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ignored"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	default:
		writeError(w, http.StatusBadRequest, "bad status %q", doc.Status)
	}
}

// --- thief side ---

// stealLoop polls busy peers whenever this node is idle and runs one
// stolen job at a time, synchronously — the natural throttle: a node
// never holds more than one stolen job, and Shutdown's loop join waits
// for it like any worker.
func (s *Server) stealLoop() {
	defer s.loops.Done()
	cfg := s.cluster.Config()
	t := time.NewTicker(cfg.StealEvery)
	defer t.Stop()
	for {
		select {
		case <-s.loopStop:
			return
		case <-t.C:
		}
		if s.Draining() || !s.idle() {
			continue
		}
		for _, peer := range s.cluster.StealTargets() {
			ctx, cancel := context.WithTimeout(s.baseCtx, cfg.PeerTimeout)
			grant, ok := s.cluster.Steal(ctx, peer)
			cancel()
			if !ok {
				continue
			}
			mSteals.Inc()
			s.runStolen(peer, grant)
			break
		}
	}
}

// idle reports whether this node has spare capacity worth filling with a
// peer's work.
func (s *Server) idle() bool {
	return len(s.queue) == 0 && s.stats.inflight.Load() < int64(s.cfg.Workers)
}

// runStolen executes one steal grant: rebuild the job privately (it never
// enters this node's registry or journal — the owner owns its identity),
// answer from the local cache when possible, otherwise solve, cache the
// result locally, and post it back under the original id.
func (s *Server) runStolen(owner string, raw []byte) {
	var g stealGrant
	if err := json.Unmarshal(raw, &g); err != nil {
		fmt.Fprintf(os.Stderr, "gpp-serve: bad steal grant from %s: %v\n", owner, err)
		return
	}
	var c netlist.Circuit
	if err := json.Unmarshal(g.Circuit, &c); err != nil {
		s.completeStolen(owner, g.ID, nil, fmt.Errorf("bad circuit in grant: %w", err))
		return
	}
	if err := c.Validate(); err != nil {
		s.completeStolen(owner, g.ID, nil, fmt.Errorf("bad circuit in grant: %w", err))
		return
	}
	req := g.Request
	req.Circuit, req.DEF, req.FromJob = "", "", ""
	if g.RemainingMS > 0 {
		req.TimeoutMS = g.RemainingMS
	}
	j, _, err := s.makeJob(&c, g.CircuitName, &req)
	if err != nil {
		s.completeStolen(owner, g.ID, nil, err)
		return
	}
	defer j.cancel()
	j.span.Attr("stolen_from", owner)
	if g.RemainingMS <= 0 {
		s.completeStolen(owner, g.ID, nil, context.DeadlineExceeded)
		return
	}
	if ent, tier, ok := s.cacheGet(j.key); ok {
		j.spanCacheLookup(tier)
		j.finishOK(ent.body, ent.labels, true)
		s.completeStolen(owner, g.ID, ent, nil)
		return
	}
	j.spanCacheLookup("miss")
	j.setRunning()
	solveSpan := j.span.Child("solve")
	body, labels, err := s.solve(j, solveSpan)
	solveSpan.End()
	if err != nil {
		j.finishErr(StatusFailed, err)
		s.completeStolen(owner, g.ID, nil, err)
		return
	}
	ent := &cacheEntry{key: j.key, body: body, labels: labels}
	s.cache.put(ent)
	if s.durable != nil {
		s.durable.persistEntry(ent)
	}
	j.finishOK(body, labels, false)
	s.completeStolen(owner, g.ID, ent, nil)
}

// completeStolen posts a stolen job's outcome back to its owner, with a
// few spaced retries. A cancellation (thief shutting down) or deadline is
// NOT posted: failing the job terminally for a thief-side interruption
// would be wrong — silence lets the owner's lease reclaim re-run it.
// Posting done can also fail outright (owner crashed); same answer: the
// owner replays the job at boot and re-solves byte-identically.
func (s *Server) completeStolen(owner, id string, ent *cacheEntry, solveErr error) {
	doc := completeDoc{ID: id, Status: StatusDone}
	if solveErr != nil {
		if errors.Is(solveErr, context.Canceled) || errors.Is(solveErr, context.DeadlineExceeded) {
			return
		}
		doc.Status = StatusFailed
		doc.Error = solveErr.Error()
	} else {
		doc.Labels = ent.labels
		doc.Body = ent.body
	}
	raw, err := json.Marshal(&doc)
	if err != nil {
		return
	}
	cfg := s.cluster.Config()
	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.PeerTimeout)
		err := s.cluster.Complete(ctx, owner, raw)
		cancel()
		if err == nil {
			mStealCompletesOut.Inc()
			return
		}
		select {
		case <-s.loopStop:
			return
		case <-time.After(cfg.StealEvery):
		}
	}
}

// --- owner-side reclaim ---

// reclaimLoop re-enqueues stolen jobs whose lease expired without a
// complete — the thief died, or its post is lost. Re-running is safe:
// claimFinish drops whichever completion comes second, and determinism
// makes both byte-identical anyway.
func (s *Server) reclaimLoop() {
	defer s.loops.Done()
	cfg := s.cluster.Config()
	every := cfg.StealLease / 4
	if every > cfg.StealEvery {
		every = cfg.StealEvery
	}
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.loopStop:
			return
		case <-t.C:
		}
		s.reclaimExpired(every)
	}
}

func (s *Server) reclaimExpired(retryAfter time.Duration) {
	now := time.Now()
	var expired []*stolenJob
	s.stolenMu.Lock()
	for id, sj := range s.stolen {
		if now.After(sj.deadline) {
			delete(s.stolen, id)
			expired = append(expired, sj)
		}
	}
	s.stolenMu.Unlock()
	for _, sj := range expired {
		j := sj.j
		j.mu.Lock()
		gone := j.finishing || j.status.terminal()
		j.mu.Unlock()
		if gone {
			continue
		}
		mReclaims.Inc()
		sp := j.span.Child("steal_reclaim")
		sp.Attr("thief", sj.thief)
		sp.End()
		j.publish(obs.Event{Kind: kindJobReclaimed})
		j.beginQueueWait()
		s.qmu.Lock()
		if !s.draining {
			select {
			case s.queue <- j:
				s.qmu.Unlock()
				mQueueDepth.Set(float64(len(s.queue)))
				continue
			default:
			}
		}
		draining := s.draining
		s.qmu.Unlock()
		j.endQueueWait(s.stats)
		if draining {
			s.finishWithError(j, context.Canceled)
			continue
		}
		// Queue full right now: push the lease out and retry shortly.
		s.stolenMu.Lock()
		sj.deadline = time.Now().Add(retryAfter)
		s.stolen[j.id] = sj
		s.stolenMu.Unlock()
	}
}

// waitStolen blocks until every outstanding stolen job has been resolved
// (thief posted back, or reclaim finished it) or ctx expires. Part of
// drain: a stolen job is an accepted job, and Shutdown's contract says
// accepted jobs keep their responses.
func (s *Server) waitStolen(ctx context.Context) {
	if s.cluster == nil {
		return
	}
	for {
		s.stolenMu.Lock()
		n := len(s.stolen)
		s.stolenMu.Unlock()
		if n == 0 {
			return
		}
		// While draining the reclaim loop is gone; expired leases are
		// resolved here so the wait cannot hang on a dead thief.
		s.reclaimExpired(10 * time.Millisecond)
		select {
		case <-ctx.Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

var (
	mForwarded = obs.Default().Counter("gpp_cluster_jobs_forwarded_total",
		"submissions proxied to the node owning their cache key")
	mPeerCacheHits = obs.Default().Counter("gpp_cluster_peer_cache_hits_total",
		"jobs answered from a peer's result cache via read-through")
	mStealGrants = obs.Default().Counter("gpp_cluster_steal_grants_total",
		"queued jobs handed to an idle peer")
	mSteals = obs.Default().Counter("gpp_cluster_steals_total",
		"jobs this node stole from busy peers")
	mStealCompletesOut = obs.Default().Counter("gpp_cluster_steal_completes_sent_total",
		"stolen-job results posted back to owners")
	mStealCompletesIn = obs.Default().Counter("gpp_cluster_steal_completes_applied_total",
		"thief results applied to jobs this node owns")
	mReclaims = obs.Default().Counter("gpp_cluster_steal_reclaims_total",
		"stolen jobs re-enqueued after their lease expired")
)
