package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gpp/internal/cluster"
	"gpp/internal/gen"
	"gpp/internal/store"
)

// clusterNode is one in-process cluster member: a Server behind a real
// TCP listener whose address was known before the Server was built (the
// membership config needs every URL up front).
type clusterNode struct {
	s   *Server
	url string
	hs  *http.Server
}

// newServeCluster boots n cluster members on loopback. mut tweaks each
// node's config after the cluster defaults are filled in.
func newServeCluster(t *testing.T, n int, mut func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range urls {
		peers := make([]string, 0, n-1)
		for k, u := range urls {
			if k != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{
			Workers:    1,
			QueueDepth: 16,
			Cluster: &cluster.Config{
				Self:           urls[i],
				Peers:          peers,
				HeartbeatEvery: 20 * time.Millisecond,
				StealEvery:     20 * time.Millisecond,
				StealLease:     10 * time.Second,
				PeerTimeout:    2 * time.Second,
			},
		}
		if mut != nil {
			mut(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s}
		ln := lns[i]
		go func() { _ = hs.Serve(ln) }()
		nodes[i] = &clusterNode{s: s, url: urls[i], hs: hs}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			_ = nd.s.Shutdown(ctx)
			cancel()
		}
	})
	return nodes
}

// waitPeersAlive blocks until every node's heartbeats have seen every
// other node, so routing decisions in the test body are deterministic.
func waitPeersAlive(t *testing.T, nodes []*clusterNode) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, nd := range nodes {
		for nd.s.cluster.PeersAlive() < len(nodes)-1 {
			if time.Now().After(deadline) {
				t.Fatalf("node %s never saw all peers alive", nd.url)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// postJobLocal submits with the forwarded marker set, pinning the job to
// the receiving node regardless of ring ownership — how tests place work
// on a specific member.
func postJobLocal(t *testing.T, base string, req JobRequest) (int, statusBody) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(cluster.ForwardedHeader, "test")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sb statusBody
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &sb); err != nil {
			t.Fatalf("bad submit response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, sb
}

// TestClusterRoutesSubmissionToOwner: any node accepts a submission, but
// the job runs (and its result lives) on the ring owner of its cache key;
// a repeat submission through a different non-owner is a cache hit served
// by the same owner, byte-identical.
func TestClusterRoutesSubmissionToOwner(t *testing.T) {
	nodes := newServeCluster(t, 3, nil)
	waitPeersAlive(t, nodes)

	req := fastReq(9001)
	code, sb, hdr := postJob(t, nodes[0].url, req)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit = %d, want 202 or 200", code)
	}
	ownerURL := hdr.Get(cluster.RoutedHeader)
	if ownerURL == "" {
		ownerURL = nodes[0].url // node 0 owned the key itself
	}
	// Every node's ring must agree with where the job actually went.
	for _, nd := range nodes {
		if o, _ := nd.s.cluster.Owner(sb.Key); o != ownerURL {
			t.Fatalf("node %s says owner(%s) = %s, but the job went to %s",
				nd.url, sb.Key, o, ownerURL)
		}
	}
	done := waitTerminal(t, ownerURL, sb.ID)
	if done.Status != StatusDone {
		t.Fatalf("routed job ended %s: %s", done.Status, done.Error)
	}
	cold := getBody(t, ownerURL, "/v1/jobs/"+sb.ID+"/result", http.StatusOK)

	// The job must exist only on its owner.
	for _, nd := range nodes {
		if nd.url != ownerURL {
			getBody(t, nd.url, "/v1/jobs/"+sb.ID, http.StatusNotFound)
		}
	}

	// Re-submit through a non-owner: forwarded again, answered as a cache
	// hit with the exact same bytes.
	var nonOwner string
	for _, nd := range nodes {
		if nd.url != ownerURL {
			nonOwner = nd.url
			break
		}
	}
	code2, sb2, hdr2 := postJob(t, nonOwner, req)
	if got := hdr2.Get(cluster.RoutedHeader); got != ownerURL {
		t.Fatalf("non-owner submit routed to %q, want %q", got, ownerURL)
	}
	if code2 != http.StatusOK || sb2.Cache != "hit" {
		t.Fatalf("non-owner resubmit: code=%d cache=%s, want 200/hit", code2, sb2.Cache)
	}
	if !bytes.Equal(sb2.Result, bytes.TrimSpace(cold)) && string(sb2.Result) != string(cold) {
		t.Fatalf("routed cache hit differs from owner's cold solve:\n%s\nvs\n%s", sb2.Result, cold)
	}
}

// TestClusterPeerReadThroughByteIdentity (satellite): a result solved on
// node A and read through by node B is byte-identical to the cold solve,
// and B's disk-persisted copy of the fetched blob survives B's restart.
func TestClusterPeerReadThroughByteIdentity(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	nodes := newServeCluster(t, 2, func(i int, cfg *Config) { cfg.DataDir = dirs[i] })
	waitPeersAlive(t, nodes)
	a, b := nodes[0], nodes[1]

	req := fastReq(9100)
	_, sbA := postJobLocal(t, a.url, req)
	if done := waitTerminal(t, a.url, sbA.ID); done.Status != StatusDone {
		t.Fatalf("node A solve ended %s: %s", done.Status, done.Error)
	}
	cold := getBody(t, a.url, "/v1/jobs/"+sbA.ID+"/result", http.StatusOK)

	// Same request pinned to node B: local memory+disk miss, then peer
	// read-through finds A's blob before solving.
	peerHits0 := mPeerCacheHits.Value()
	_, sbB := postJobLocal(t, b.url, req)
	doneB := waitTerminal(t, b.url, sbB.ID)
	if doneB.Status != StatusDone || doneB.Cache != "hit" {
		t.Fatalf("node B job: status=%s cache=%s, want done/hit", doneB.Status, doneB.Cache)
	}
	fetched := getBody(t, b.url, "/v1/jobs/"+sbB.ID+"/result", http.StatusOK)
	if string(fetched) != string(cold) {
		t.Fatalf("peer read-through differs from cold solve:\n%s\nvs\n%s", fetched, cold)
	}
	if d := mPeerCacheHits.Value() - peerHits0; d != 1 {
		t.Errorf("gpp_cluster_peer_cache_hits_total advanced by %d, want 1", d)
	}

	// Restart node B (standalone is enough: the fetched blob lives in its
	// own store now). The identical request hits from disk, same bytes.
	_ = b.hs.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := b.s.Shutdown(sctx); err != nil {
		t.Fatalf("node B shutdown: %v", err)
	}
	scancel()
	_, base2 := newTestServer(t, Config{Workers: 1, QueueDepth: 8, DataDir: dirs[1]})
	code, sb2, _ := postJob(t, base2, req)
	if code != http.StatusOK || sb2.Cache != "hit" {
		t.Fatalf("post-restart submit on B: code=%d cache=%s, want 200/hit (disk)", code, sb2.Cache)
	}
	warm := getBody(t, base2, "/v1/jobs/"+sb2.ID+"/result", http.StatusOK)
	if string(warm) != string(cold) {
		t.Fatalf("restarted B serves different bytes:\n%s\nvs\n%s", warm, cold)
	}
}

// TestClusterWorkStealing: jobs queued behind a busy node's worker are
// stolen and completed by an idle peer, finishing under their original
// ids on the owner.
func TestClusterWorkStealing(t *testing.T) {
	nodes := newServeCluster(t, 2, nil)
	waitPeersAlive(t, nodes)
	a, b := nodes[0], nodes[1]

	// Occupy A's single worker indefinitely.
	_, slow := postJobLocal(t, a.url, slowReq(9200))
	waitRunning(t, a.url, slow.ID)

	grants0 := mStealGrants.Value()
	completes0 := mStealCompletesIn.Value()
	var ids []string
	for i := int64(0); i < 4; i++ {
		code, sb := postJobLocal(t, a.url, fastReq(9300+i))
		if code != http.StatusAccepted {
			t.Fatalf("queued submit = %d, want 202", code)
		}
		ids = append(ids, sb.ID)
	}
	// A's worker never frees (the slow job runs for minutes), so every
	// fast job MUST finish via B stealing it.
	for _, id := range ids {
		sb := waitTerminal(t, a.url, id)
		if sb.Status != StatusDone {
			t.Fatalf("stolen job %s ended %s: %s", id, sb.Status, sb.Error)
		}
		getBody(t, a.url, "/v1/jobs/"+id+"/result", http.StatusOK)
	}
	if d := mStealGrants.Value() - grants0; d != 4 {
		t.Errorf("steal grants advanced by %d, want 4", d)
	}
	if d := mStealCompletesIn.Value() - completes0; d != 4 {
		t.Errorf("applied thief completes advanced by %d, want 4", d)
	}
	a.s.stolenMu.Lock()
	outstanding := len(a.s.stolen)
	a.s.stolenMu.Unlock()
	if outstanding != 0 {
		t.Errorf("%d stolen jobs still outstanding after completion", outstanding)
	}
	// B solved them: its cache holds the results (cross-node spread).
	if b.s.cache.len() < 4 {
		t.Errorf("thief cached %d results, want ≥ 4", b.s.cache.len())
	}
	// Free the worker promptly.
	hr, _ := http.NewRequest(http.MethodDelete, a.url+"/v1/jobs/"+slow.ID, nil)
	resp, err := http.DefaultClient.Do(hr)
	if err == nil {
		resp.Body.Close()
	}
}

// deadPeerCluster returns a cluster config whose only peer is unreachable
// — a member in name only, for tests that drive the protocol by hand.
func deadPeerCluster(lease time.Duration) *cluster.Config {
	return &cluster.Config{
		Self:           "127.0.0.1:59990",
		Peers:          []string{"127.0.0.1:9"}, // discard port: refuses instantly
		HeartbeatEvery: time.Hour,
		StealEvery:     time.Hour,
		StealLease:     lease,
		PeerTimeout:    200 * time.Millisecond,
	}
}

// TestClusterStealLeaseReclaim (satellite, thief-dies half): the test
// steals a job and never reports back — the owner's lease expires, the
// job re-enqueues, and it completes exactly once under its original id.
// A late duplicate complete from the "dead" thief is acknowledged and
// ignored.
func TestClusterStealLeaseReclaim(t *testing.T) {
	s, base := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8,
		Cluster: deadPeerCluster(300 * time.Millisecond),
	})

	_, slow, _ := postJob(t, base, slowReq(9400))
	waitRunning(t, base, slow.ID)
	code, fast, _ := postJob(t, base, fastReq(9401))
	if code != http.StatusAccepted {
		t.Fatalf("queued submit = %d, want 202", code)
	}

	// Act as the thief: claim the queued job, then vanish.
	reclaims0 := mReclaims.Value()
	resp, err := http.Post(base+"/v1/cluster/steal", "application/json",
		bytes.NewReader([]byte(`{"thief":"http://127.0.0.1:59991"}`)))
	if err != nil {
		t.Fatal(err)
	}
	grantRaw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steal = %d (%s), want 200", resp.StatusCode, grantRaw)
	}
	var g stealGrant
	if err := json.Unmarshal(grantRaw, &g); err != nil {
		t.Fatalf("bad grant %q: %v", grantRaw, err)
	}
	if g.ID != fast.ID {
		t.Fatalf("grant id = %s, want %s", g.ID, fast.ID)
	}
	if len(g.Circuit) == 0 || g.Request.K != 4 {
		t.Fatalf("grant missing payload: circuit %d bytes, k=%d", len(g.Circuit), g.Request.K)
	}
	if got := getStatus(t, base, fast.ID); got.Status != StatusRunning {
		t.Fatalf("stolen job status = %s, want running", got.Status)
	}

	// Lease expires → reclaim re-enqueues. The worker is still occupied,
	// so free it once the reclaim is observed.
	deadline := time.Now().Add(5 * time.Second)
	for mReclaims.Value() == reclaims0 {
		if time.Now().After(deadline) {
			t.Fatal("lease reclaim never happened")
		}
		time.Sleep(10 * time.Millisecond)
	}
	hr, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+slow.ID, nil)
	if resp, err := http.DefaultClient.Do(hr); err == nil {
		resp.Body.Close()
	}
	sb := waitTerminal(t, base, fast.ID)
	if sb.Status != StatusDone {
		t.Fatalf("reclaimed job ended %s: %s", sb.Status, sb.Error)
	}
	real := getBody(t, base, "/v1/jobs/"+fast.ID+"/result", http.StatusOK)

	// The thief comes back from the dead with a bogus result: exactly-once
	// means it is acknowledged but changes nothing.
	late, err := json.Marshal(&completeDoc{
		ID: fast.ID, Status: StatusDone,
		Labels: []int{0}, Body: json.RawMessage(`{"bogus":true}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(base+"/v1/cluster/complete", "application/json", bytes.NewReader(late))
	if err != nil {
		t.Fatal(err)
	}
	ack, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !bytes.Contains(ack, []byte("ignored")) {
		t.Fatalf("late complete = %d %s, want 200 ignored", resp2.StatusCode, ack)
	}
	after := getBody(t, base, "/v1/jobs/"+fast.ID+"/result", http.StatusOK)
	if string(after) != string(real) {
		t.Fatalf("late duplicate complete overwrote the result:\n%s\nvs\n%s", after, real)
	}
	_ = s
}

// TestClusterOwnerCrashMidHandoffReplays (satellite, owner-dies half): a
// journal holding an accept plus a handoff — the state a node killed
// right after granting a steal leaves behind — replays the job at boot
// and finishes it exactly once; the thief's late complete into the
// restarted owner is ignored.
func TestClusterOwnerCrashMidHandoffReplays(t *testing.T) {
	dir := t.TempDir()
	circuit, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	circJSON, err := json.Marshal(circuit)
	if err != nil {
		t.Fatal(err)
	}
	blobKey, err := st.Blobs.Put(circJSON)
	if err != nil {
		t.Fatal(err)
	}
	jnl, _, err := store.OpenJournal(st.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	const jobID = "deadbeefcafe0001"
	data, err := json.Marshal(&journaledJob{
		ID: jobID, CircuitBlob: blobKey, CircuitName: circuit.Name,
		K: 4, Options: &JobOptions{Seed: 9500, MaxIters: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jnl.Append(store.Record{Op: "accept", ID: jobID, Data: data}); err != nil {
		t.Fatal(err)
	}
	if _, err := jnl.Append(store.Record{Op: "handoff", ID: jobID,
		Data: []byte(`{"thief":"http://127.0.0.1:59992"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	recovered0 := mJobsRecovered.Value()
	s, err := New(Config{
		Workers: 1, QueueDepth: 8, DataDir: dir,
		Cluster: deadPeerCluster(10 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	base := hs.URL
	if got := mJobsRecovered.Value() - recovered0; got != 1 {
		t.Fatalf("recovered %d jobs at boot, want 1 (handoff must not terminate the accept)", got)
	}
	sb := waitTerminal(t, base, jobID)
	if sb.Status != StatusDone {
		t.Fatalf("replayed job ended %s: %s", sb.Status, sb.Error)
	}
	real := getBody(t, base, "/v1/jobs/"+jobID+"/result", http.StatusOK)

	// Thief posts its (identical-by-determinism, here deliberately bogus)
	// result after the replay already finished: ignored.
	late, err := json.Marshal(&completeDoc{
		ID: jobID, Status: StatusDone,
		Labels: []int{0}, Body: json.RawMessage(`{"bogus":true}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/cluster/complete", "application/json", bytes.NewReader(late))
	if err != nil {
		t.Fatal(err)
	}
	ack, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(ack, []byte("ignored")) {
		t.Fatalf("late complete = %d %s, want 200 ignored", resp.StatusCode, ack)
	}
	if after := getBody(t, base, "/v1/jobs/"+jobID+"/result", http.StatusOK); string(after) != string(real) {
		t.Fatal("late duplicate complete changed the replayed result")
	}

	// Shut down cleanly and audit the journal: the job must have exactly
	// one terminal record — one execution's worth of history.
	hs.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	scancel()
	jnl2, recs, err := store.OpenJournal(st.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	terminals := 0
	for _, rec := range recs {
		if rec.ID != jobID {
			continue
		}
		switch rec.Op {
		case string(StatusDone), string(StatusFailed), string(StatusCancelled):
			terminals++
		}
	}
	if terminals != 1 {
		t.Fatalf("job %s has %d terminal journal records, want exactly 1", jobID, terminals)
	}
}
