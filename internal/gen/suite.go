package gen

import (
	"fmt"
	"strconv"
	"strings"

	"gpp/internal/cellib"
	"gpp/internal/logic"
	"gpp/internal/netlist"
	"gpp/internal/sfqmap"
)

// BenchmarkNames lists the paper's Table I benchmark suite, in table order.
var BenchmarkNames = []string{
	"KSA4", "KSA8", "KSA16", "KSA32",
	"MULT4", "MULT8",
	"ID4", "ID8",
	"C432", "C499", "C1355", "C1908", "C3540",
}

// iscasSpecs are the ISCAS85 substitutes, calibrated to the exact gate and
// connection counts the paper reports in Table I (see DESIGN.md §2).
var iscasSpecs = map[string]SyntheticSpec{
	"C432":  {Name: "C432", Gates: 1216, Conns: 1434, Seed: 432},
	"C499":  {Name: "C499", Gates: 991, Conns: 1318, Seed: 499},
	"C1355": {Name: "C1355", Gates: 1046, Conns: 1367, Seed: 1355},
	"C1908": {Name: "C1908", Gates: 1695, Conns: 2095, Seed: 1908},
	"C3540": {Name: "C3540", Gates: 3792, Conns: 4927, Seed: 3540},
}

// Benchmark generates one suite circuit by name, SFQ-mapped and ready for
// partitioning. Beyond the Table I names it accepts "par<N>" for the
// N-gate scaling synthetic (see ParSpec) — "par6000" is the root-package
// parallel-benchmark instance, "par1000000" the million-gate multilevel
// target.
func Benchmark(name string, lib *cellib.Library) (*netlist.Circuit, error) {
	return BenchmarkBalanced(name, lib, false)
}

// ParSpec parses a "par<N>" scaling-synthetic name into its spec: N gates,
// 1.4·N connections (the mapped-netlist density of the par6000 instance
// the solver benchmarks standardized on), seed 1. Returns ok=false when
// the name does not match the pattern.
func ParSpec(name string) (SyntheticSpec, bool) {
	digits, found := strings.CutPrefix(name, "par")
	if !found || digits == "" {
		return SyntheticSpec{}, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n <= 0 {
		return SyntheticSpec{}, false
	}
	return SyntheticSpec{Name: name, Gates: n, Conns: n + 2*n/5, Seed: 1}, true
}

// BenchmarkBalanced generates a suite circuit with optional full path
// balancing (DFF insertion equalizing pipeline depths) before mapping.
// Balancing grows the arithmetic circuits toward the cell counts of the
// paper's own suite — its deep netlists (e.g. ID8 at 3209 gates) carry the
// DFF overhead our lean default mapping omits. The ISCAS-class synthetics
// are generated directly as mapped netlists and ignore the flag.
func BenchmarkBalanced(name string, lib *cellib.Library, balance bool) (*netlist.Circuit, error) {
	if lib == nil {
		lib = cellib.Default()
	}
	mapOpts := sfqmap.Options{Library: lib, ClockTree: true}
	var lc *logic.Circuit
	var err error
	switch name {
	case "KSA4":
		lc, err = KSA(4)
	case "KSA8":
		lc, err = KSA(8)
	case "KSA16":
		lc, err = KSA(16)
	case "KSA32":
		lc, err = KSA(32)
	case "MULT4":
		lc, err = Mult(4)
	case "MULT8":
		lc, err = Mult(8)
	case "ID4":
		lc, err = Divider(4)
	case "ID8":
		lc, err = Divider(8)
	default:
		spec, ok := iscasSpecs[name]
		if !ok {
			if spec, ok = ParSpec(name); !ok {
				return nil, fmt.Errorf("gen: unknown benchmark %q", name)
			}
		}
		return Synthetic(spec, lib)
	}
	if err != nil {
		return nil, err
	}
	if balance {
		lc, _, err = logic.PathBalance(lc)
		if err != nil {
			return nil, err
		}
	}
	return sfqmap.Map(lc, mapOpts)
}

// Suite generates the full 13-circuit Table I benchmark suite in table
// order.
func Suite(lib *cellib.Library) ([]*netlist.Circuit, error) {
	out := make([]*netlist.Circuit, 0, len(BenchmarkNames))
	for _, name := range BenchmarkNames {
		c, err := Benchmark(name, lib)
		if err != nil {
			return nil, fmt.Errorf("gen: suite circuit %s: %w", name, err)
		}
		out = append(out, c)
	}
	return out, nil
}
