package gen

import (
	"strings"
	"testing"
	"testing/quick"

	"gpp/internal/cellib"
	"gpp/internal/graph"
	"gpp/internal/netlist"
)

func TestSyntheticExactCounts(t *testing.T) {
	spec := SyntheticSpec{Name: "syn", Gates: 500, Conns: 620, Seed: 3}
	c, err := Synthetic(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 500 || c.NumEdges() != 620 {
		t.Fatalf("got %d gates, %d edges; want exact 500/620", c.NumGates(), c.NumEdges())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticSFQLegalStructure(t *testing.T) {
	spec := SyntheticSpec{Name: "syn", Gates: 400, Conns: 500, Seed: 11}
	c, err := Synthetic(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsDAG() {
		t.Error("synthetic circuit is cyclic")
	}
	in, out := c.Degrees()
	lib := cellib.Default()
	for i, g := range c.Gates {
		cell, ok := lib.ByName(g.Cell)
		if !ok {
			t.Fatalf("gate %d uses unknown cell %q", i, g.Cell)
		}
		if out[i] > 2 {
			t.Errorf("gate %d (%s) has out-degree %d > 2", i, g.Cell, out[i])
		}
		if out[i] == 2 && cell.Kind != cellib.KindSplit {
			t.Errorf("gate %d (%s) has fanout 2 but is not a splitter", i, g.Cell)
		}
		switch cell.Kind {
		case cellib.KindDCSFQ:
			if in[i] != 0 {
				t.Errorf("input cell %d has in-degree %d", i, in[i])
			}
		case cellib.KindSFQDC:
			if out[i] != 0 || in[i] != 1 {
				t.Errorf("sink cell %d has degrees (%d,%d)", i, in[i], out[i])
			}
		}
		if in[i] > 2 {
			t.Errorf("gate %d has in-degree %d > 2", i, in[i])
		}
	}
}

func TestSyntheticNoDuplicateEdges(t *testing.T) {
	c, err := Synthetic(SyntheticSpec{Name: "syn", Gates: 300, Conns: 380, Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[netlist.Edge]bool)
	for _, e := range c.Edges {
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	spec := SyntheticSpec{Name: "syn", Gates: 120, Conns: 150, Seed: 9}
	a, err := Synthetic(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGates() != b.NumGates() || a.NumEdges() != b.NumEdges() {
		t.Fatal("sizes differ between identical runs")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	for i := range a.Gates {
		if a.Gates[i].Cell != b.Gates[i].Cell {
			t.Fatalf("gate %d cell differs", i)
		}
	}
}

func TestSyntheticErrors(t *testing.T) {
	cases := []struct {
		spec SyntheticSpec
		want string
	}{
		{SyntheticSpec{Name: "a", Gates: 5, Conns: 10}, "≥ 10 gates"},
		{SyntheticSpec{Name: "b", Gates: 100, Conns: 99}, "connected"},
		{SyntheticSpec{Name: "c", Gates: 100, Conns: 200}, "out-degree 2"},
	}
	for _, tc := range cases {
		_, err := Synthetic(tc.spec, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Synthetic(%+v) = %v, want containing %q", tc.spec, err, tc.want)
		}
	}
}

// Property: any feasible spec produces a DAG with exactly the requested
// counts.
func TestSyntheticProperty(t *testing.T) {
	f := func(seed int64, gRaw, extraRaw uint8) bool {
		g := int(gRaw)%400 + 60
		extra := int(extraRaw) % (g / 2)
		e := g + extra
		c, err := Synthetic(SyntheticSpec{Name: "p", Gates: g, Conns: e, Seed: seed}, nil)
		if err != nil {
			// Stub-matching can fail for unlucky seeds; that is reported,
			// not silent, and acceptable — but it should be rare.
			return true
		}
		if c.NumGates() != g || c.NumEdges() != e {
			return false
		}
		edges := make([]graph.Edge, len(c.Edges))
		for i, ed := range c.Edges {
			edges[i] = graph.Edge{From: int(ed.From), To: int(ed.To)}
		}
		return graph.IsDAG(g, edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSuiteMatchesPaperTableIStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation in -short mode")
	}
	suite, err := Suite(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != len(BenchmarkNames) {
		t.Fatalf("suite has %d circuits, want %d", len(suite), len(BenchmarkNames))
	}
	// The ISCAS substitutes must match the paper's exact counts.
	wantCounts := map[string][2]int{
		"C432": {1216, 1434}, "C499": {991, 1318}, "C1355": {1046, 1367},
		"C1908": {1695, 2095}, "C3540": {3792, 4927},
	}
	for i, c := range suite {
		if c.Name != BenchmarkNames[i] {
			t.Errorf("suite[%d] = %s, want %s", i, c.Name, BenchmarkNames[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
		if !c.IsDAG() {
			t.Errorf("%s is cyclic", c.Name)
		}
		if want, ok := wantCounts[c.Name]; ok {
			if c.NumGates() != want[0] || c.NumEdges() != want[1] {
				t.Errorf("%s: %d gates %d edges, want %d/%d (paper Table I)",
					c.Name, c.NumGates(), c.NumEdges(), want[0], want[1])
			}
		}
		// Per-gate averages must stay in the SFQ family band the cost
		// normalization assumes (paper: ~0.84–0.86 mA, ~0.0049 mm²).
		st := netlist.ComputeStats(c)
		if st.AvgBias < 0.5 || st.AvgBias > 1.2 {
			t.Errorf("%s: average bias %.3f mA/gate outside SFQ band", c.Name, st.AvgBias)
		}
		if st.AvgArea < 0.002 || st.AvgArea > 0.008 {
			t.Errorf("%s: average area %.5f mm²/gate outside SFQ band", c.Name, st.AvgArea)
		}
		ratio := float64(st.Edges) / float64(st.Gates)
		if ratio < 1.05 || ratio > 1.7 {
			t.Errorf("%s: connection/gate ratio %.2f outside mapped-netlist band", c.Name, ratio)
		}
	}
}

func TestBenchmarkUnknownName(t *testing.T) {
	if _, err := Benchmark("KSA5", nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBenchmarkSizesOrdered(t *testing.T) {
	small, err := Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumGates() >= big.NumGates() {
		t.Errorf("KSA4 (%d gates) not smaller than KSA8 (%d)", small.NumGates(), big.NumGates())
	}
}

func TestBenchmarkBalancedGrowsTowardPaperSizes(t *testing.T) {
	// Full path balancing adds the DFF overhead the paper's deep netlists
	// carry: balanced KSA4 must land near the paper's 93 gates, between
	// our lean mapping (79) and 1.5× the paper.
	lean, err := Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := BenchmarkBalanced("KSA4", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if bal.NumGates() <= lean.NumGates() {
		t.Errorf("balancing did not grow KSA4: %d → %d", lean.NumGates(), bal.NumGates())
	}
	if bal.NumGates() < 93-20 || bal.NumGates() > 93+60 {
		t.Errorf("balanced KSA4 has %d gates, not near the paper's 93", bal.NumGates())
	}
	if err := bal.Validate(); err != nil {
		t.Fatal(err)
	}
	if !bal.IsDAG() {
		t.Error("balanced circuit cyclic")
	}
}

func TestBenchmarkBalancedSyntheticsUnchanged(t *testing.T) {
	a, err := Benchmark("C432", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BenchmarkBalanced("C432", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGates() != b.NumGates() || a.NumEdges() != b.NumEdges() {
		t.Error("balancing flag changed a synthetic circuit")
	}
}
