package gen

import (
	"math/rand"
	"testing"

	"gpp/internal/logic"
)

func checkAdder(t *testing.T, c *logic.Circuit, n int, a, b uint64) {
	t.Helper()
	outs := evalBits(t, c, map[string]uint64{"a": a, "b": b}, map[string]int{"a": n, "b": n})
	sum := bitsToUint(t, outs, "s", n)
	cout := uint64(0)
	if outs["cout"] {
		cout = 1
	}
	if got, want := cout<<uint(n)|sum, a+b; got != want {
		t.Fatalf("%s: %d + %d = %d, want %d", c.Name, a, b, got, want)
	}
}

func TestAdderTopologiesExhaustive4(t *testing.T) {
	builders := map[string]func(int) (*logic.Circuit, error){
		"ripple":    RippleCarry,
		"sklansky":  Sklansky,
		"brentkung": BrentKung,
	}
	for name, build := range builders {
		c, err := build(4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for a := uint64(0); a < 16; a++ {
			for b := uint64(0); b < 16; b++ {
				checkAdder(t, c, 4, a, b)
			}
		}
	}
}

func TestAdderTopologiesRandom16(t *testing.T) {
	for _, build := range []func(int) (*logic.Circuit, error){RippleCarry, Sklansky, BrentKung} {
		c, err := build(16)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(61))
		for trial := 0; trial < 60; trial++ {
			a := rng.Uint64() & 0xffff
			b := rng.Uint64() & 0xffff
			checkAdder(t, c, 16, a, b)
		}
	}
}

func TestAdderTopologyShapes(t *testing.T) {
	// Structural sanity: ripple is deepest, Sklansky shallowest; Brent-Kung
	// has the fewest prefix cells of the log-depth networks.
	rca, err := RippleCarry(16)
	if err != nil {
		t.Fatal(err)
	}
	skl, err := Sklansky(16)
	if err != nil {
		t.Fatal(err)
	}
	bk, err := BrentKung(16)
	if err != nil {
		t.Fatal(err)
	}
	if rca.NumNodes() >= skl.NumNodes() {
		t.Errorf("ripple (%d nodes) should be smaller than Sklansky (%d)", rca.NumNodes(), skl.NumNodes())
	}
	if bk.NumNodes() > skl.NumNodes() {
		t.Errorf("Brent-Kung (%d nodes) should not exceed Sklansky (%d)", bk.NumNodes(), skl.NumNodes())
	}
}

func TestAdderTopologyErrors(t *testing.T) {
	if _, err := RippleCarry(1); err == nil {
		t.Error("RippleCarry(1) accepted")
	}
	if _, err := Sklansky(12); err == nil {
		t.Error("Sklansky(12) accepted")
	}
	if _, err := BrentKung(6); err == nil {
		t.Error("BrentKung(6) accepted")
	}
}
