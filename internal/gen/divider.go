package gen

import (
	"fmt"

	"gpp/internal/logic"
)

// Divider builds an n-bit restoring array integer divider at the logic
// level: dividend a (n bits) / divisor d (n bits) → quotient q (n bits) and
// remainder r (n bits). Division by zero yields q = all-ones, r = a (the
// natural behavior of the restoring array; callers verify d ≠ 0).
//
// Structure: n rows; row i shifts the partial remainder left by one,
// brings in dividend bit a_{n−1−i}, subtracts the divisor with a ripple
// borrow chain, and selects (restores) via muxes controlled by the borrow
// out — the classic restoring array divider the SFQ benchmark suite's ID
// circuits implement.
func Divider(n int) (*logic.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: divider width must be ≥ 2, got %d", n)
	}
	b := logic.NewBuilder(fmt.Sprintf("ID%d", n))
	a := make([]logic.NodeID, n)
	d := make([]logic.NodeID, n)
	for i := 0; i < n; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		d[i] = b.Input(fmt.Sprintf("d%d", i))
	}

	// fullSubtractor computes x − y − bin → (diff, bout) in 6 gates.
	fullSub := func(x, y, bin logic.NodeID) (diff, bout logic.NodeID) {
		t := b.Xor(x, y)
		diff = b.Xor(t, bin)
		// bout = (¬x ∧ (y ∨ bin)) ∨ (y ∧ bin)
		u := b.Or(y, bin)
		v := b.AndNot(u, x) // u ∧ ¬x
		w := b.And(y, bin)
		bout = b.Or(v, w)
		return diff, bout
	}
	// halfSub computes x − y → (diff, bout) in 2 gates.
	halfSub := func(x, y logic.NodeID) (diff, bout logic.NodeID) {
		return b.Xor(x, y), b.AndNot(y, x) // y ∧ ¬x
	}
	// mux selects sel ? x : y in 3 gates.
	mux := func(sel, x, y logic.NodeID) logic.NodeID {
		return b.Or(b.And(x, sel), b.AndNot(y, sel))
	}

	// Partial remainder R, n bits, invariant R < D when D ≠ 0. There is no
	// constant-zero node in the IR, so the first rows track only the bits
	// that can be nonzero (the remainder grows by one bit per row until it
	// reaches full width).
	var r []logic.NodeID // r[0] = LSB; len grows to n
	q := make([]logic.NodeID, n)
	for i := 0; i < n; i++ {
		// Shift left, bring in a_{n−1−i}: R' = 2R + a_bit (len(r)+1 bits).
		// When len(rp) exceeds n, the invariant R < D keeps the top bit's
		// value zero after the restore muxes, so it is dropped below.
		rp := append([]logic.NodeID{a[n-1-i]}, r...)
		// T = R' − D over len(rp) bits (D padded conceptually with zeros:
		// positions ≥ n subtract zero, i.e. borrow propagation only).
		t := make([]logic.NodeID, len(rp))
		var borrow logic.NodeID
		for j := 0; j < len(rp); j++ {
			var dj logic.NodeID
			hasD := j < n
			if hasD {
				dj = d[j]
			}
			switch {
			case j == 0 && hasD:
				t[j], borrow = halfSub(rp[j], dj)
			case j == 0:
				t[j] = rp[j] // subtracting zero with no borrow
			case hasD:
				t[j], borrow = fullSub(rp[j], dj, borrow)
			default:
				// x − 0 − borrow
				t[j] = b.Xor(rp[j], borrow)
				borrow = b.AndNot(borrow, rp[j]) // borrow ∧ ¬x
			}
		}
		// Divisor bits above the current remainder width subtract from an
		// implicit zero: any set bit forces a borrow (0 − d_j − bin
		// borrows whenever d_j ∨ bin). The difference bits are not needed:
		// when q_i = 1 they are provably zero and the restore muxes below
		// never read them.
		for j := len(rp); j < n; j++ {
			borrow = b.Or(d[j], borrow)
		}
		// q_i = 1 iff no final borrow (T ≥ 0).
		qi := b.Not(borrow)
		q[n-1-i] = qi
		// Restore: R_next = qi ? T : R', truncated to min(len, n) bits.
		width := len(rp)
		if width > n {
			width = n
		}
		next := make([]logic.NodeID, width)
		for j := 0; j < width; j++ {
			next[j] = mux(qi, t[j], rp[j])
		}
		r = next
	}
	for i := 0; i < n; i++ {
		b.Output(fmt.Sprintf("q%d", i), q[i])
	}
	for i := 0; i < len(r); i++ {
		b.Output(fmt.Sprintf("r%d", i), r[i])
	}
	return b.Build()
}
