package gen

import (
	"fmt"

	"gpp/internal/logic"
)

// This file provides alternative adder topologies beside the Kogge–Stone
// of ksa.go: ripple-carry, Sklansky and Brent–Kung. They compute the same
// function with very different wiring locality, which makes them a natural
// workload for studying how circuit topology interacts with ground plane
// partitioning (see experiments.AdderTopologies): a ripple chain is almost
// one-dimensional (ideal for consecutive planes), Sklansky has high-fanout
// long wires (hard), Brent–Kung sits between.

// prefixAdder builds an n-bit adder from a parallel-prefix network: the
// network function receives a combine(hi, lo) callback that merges the
// group generate/propagate of segment lo into segment hi in place.
func prefixAdder(name string, n int, network func(combine func(hi, lo int), n int)) (*logic.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: adder width must be ≥ 2, got %d", n)
	}
	b := logic.NewBuilder(name)
	a := make([]logic.NodeID, n)
	bb := make([]logic.NodeID, n)
	for i := 0; i < n; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
		bb[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	p := make([]logic.NodeID, n)
	g := make([]logic.NodeID, n)
	for i := 0; i < n; i++ {
		p[i] = b.Xor(a[i], bb[i])
		g[i] = b.And(a[i], bb[i])
	}
	G := append([]logic.NodeID(nil), g...)
	P := append([]logic.NodeID(nil), p...)
	combine := func(hi, lo int) {
		// (G,P)[hi] ∘ (G,P)[lo]: G = G_hi ∨ (P_hi · G_lo); P = P_hi · P_lo.
		t := b.And(P[hi], G[lo])
		G[hi] = b.Or(G[hi], t)
		P[hi] = b.And(P[hi], P[lo])
	}
	network(combine, n)
	b.Output("s0", p[0])
	for i := 1; i < n; i++ {
		b.Output(fmt.Sprintf("s%d", i), b.Xor(p[i], G[i-1]))
	}
	b.Output("cout", G[n-1])
	return b.Build()
}

// RippleCarry builds an n-bit ripple-carry adder: the prefix network is a
// serial chain (depth n−1, minimal wiring).
func RippleCarry(n int) (*logic.Circuit, error) {
	return prefixAdder(fmt.Sprintf("RCA%d", n), n, func(combine func(hi, lo int), n int) {
		for i := 1; i < n; i++ {
			combine(i, i-1)
		}
	})
}

// Sklansky builds an n-bit Sklansky (divide-and-conquer) adder: minimal
// depth log2(n) with fanout growing toward the root. n must be a power of
// two.
func Sklansky(n int) (*logic.Circuit, error) {
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("gen: Sklansky width must be a power of two, got %d", n)
	}
	return prefixAdder(fmt.Sprintf("SKL%d", n), n, func(combine func(hi, lo int), n int) {
		for d := 1; d < n; d <<= 1 {
			for i := 0; i < n; i++ {
				if i&d != 0 {
					// Source is the last index of the lower half-block;
					// it has bit d clear, so it is never a same-level
					// target and in-place combining is safe.
					combine(i, (i&^(d-1))-1)
				}
			}
		}
	})
}

// BrentKung builds an n-bit Brent–Kung adder: depth 2·log2(n)−1 with
// minimal cell count and bounded fanout. n must be a power of two.
func BrentKung(n int) (*logic.Circuit, error) {
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("gen: Brent-Kung width must be a power of two, got %d", n)
	}
	return prefixAdder(fmt.Sprintf("BK%d", n), n, func(combine func(hi, lo int), n int) {
		// Up-sweep: build power-of-two group prefixes.
		for d := 1; d < n; d <<= 1 {
			for i := 2*d - 1; i < n; i += 2 * d {
				combine(i, i-d)
			}
		}
		// Down-sweep: fill in the remaining prefixes.
		for d := n / 4; d >= 1; d >>= 1 {
			for i := 3*d - 1; i < n; i += 2 * d {
				combine(i, i-d)
			}
		}
	})
}
