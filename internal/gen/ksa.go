// Package gen generates the benchmark circuits of the paper's evaluation:
// Kogge–Stone adders (KSA4/8/16/32), array multipliers (MULT4/8),
// non-restoring integer dividers (ID4/8), and ISCAS85-class synthetic
// netlists calibrated to the published gate/connection counts (C432, C499,
// C1355, C1908, C3540).
//
// The arithmetic circuits are built structurally at the logic level and
// then SFQ-technology-mapped (internal/sfqmap); the ISCAS substitutes are
// generated directly as mapped netlists with SFQ-legal degree bounds. See
// DESIGN.md §2 for the substitution rationale.
package gen

import (
	"fmt"

	"gpp/internal/logic"
)

// KSA builds an n-bit Kogge–Stone adder (a + b, carry out) at the logic
// level. n must be a power of two ≥ 2.
//
// Structure: bitwise propagate p_i = a_i⊕b_i and generate g_i = a_i·b_i,
// then log2(n) parallel-prefix combine levels
//
//	G_i^(d) = G_i ∨ (P_i · G_{i−2^(d−1)})
//	P_i^(d) = P_i · P_{i−2^(d−1)}
//
// and finally sums s_i = p_i ⊕ c_{i−1} with c_i = G_i^(final).
func KSA(n int) (*logic.Circuit, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("gen: KSA width must be a power of two ≥ 2, got %d", n)
	}
	b := logic.NewBuilder(fmt.Sprintf("KSA%d", n))
	a := make([]logic.NodeID, n)
	bb := make([]logic.NodeID, n)
	for i := 0; i < n; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
		bb[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	p := make([]logic.NodeID, n)
	g := make([]logic.NodeID, n)
	for i := 0; i < n; i++ {
		p[i] = b.Xor(a[i], bb[i])
		g[i] = b.And(a[i], bb[i])
	}
	// Parallel-prefix combine. G[i], P[i] evolve level by level.
	G := append([]logic.NodeID(nil), g...)
	P := append([]logic.NodeID(nil), p...)
	for d := 1; d < n; d <<= 1 {
		nextG := append([]logic.NodeID(nil), G...)
		nextP := append([]logic.NodeID(nil), P...)
		for i := d; i < n; i++ {
			t := b.And(P[i], G[i-d])
			nextG[i] = b.Or(G[i], t)
			// P is only needed where another combine level will read it.
			if i >= 2*d {
				nextP[i] = b.And(P[i], P[i-d])
			}
		}
		G, P = nextG, nextP
	}
	// Sums: s_0 = p_0 (no carry in), s_i = p_i ⊕ c_{i−1} with c_i = G[i].
	b.Output("s0", p[0])
	for i := 1; i < n; i++ {
		s := b.Xor(p[i], G[i-1])
		b.Output(fmt.Sprintf("s%d", i), s)
	}
	b.Output("cout", G[n-1])
	return b.Build()
}

// fullAdder adds a 1-bit full adder (x + y + cin → sum, cout) using the
// standard 5-gate decomposition (2 XOR, 2 AND, 1 OR).
func fullAdder(b *logic.Builder, x, y, cin logic.NodeID) (sum, cout logic.NodeID) {
	t := b.Xor(x, y)
	sum = b.Xor(t, cin)
	c1 := b.And(x, y)
	c2 := b.And(t, cin)
	cout = b.Or(c1, c2)
	return sum, cout
}

// halfAdder adds a 1-bit half adder (x + y → sum, cout).
func halfAdder(b *logic.Builder, x, y logic.NodeID) (sum, cout logic.NodeID) {
	return b.Xor(x, y), b.And(x, y)
}
