package gen

import (
	"testing"
	"testing/quick"

	"gpp/internal/logic"
	"gpp/internal/sfqmap"
)

func TestRandomLogicValidAndMappable(t *testing.T) {
	lc, err := RandomLogic(RandomLogicConfig{Inputs: 6, Gates: 80, Outputs: 3, Locality: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := lc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(lc.Inputs()); got != 6 {
		t.Errorf("%d inputs", got)
	}
	if got := len(lc.Outputs()); got != 3 {
		t.Errorf("%d outputs", got)
	}
	mapped, err := sfqmap.Map(lc, sfqmap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.IsDAG() {
		t.Error("mapped random circuit cyclic")
	}
}

// depthOf computes the Boolean-gate depth of a logic circuit.
func depthOf(lc *logic.Circuit) int {
	depth := make([]int, lc.NumNodes())
	max := 0
	for _, n := range lc.Nodes {
		d := 0
		for _, in := range n.Ins {
			if depth[in] > d {
				d = depth[in]
			}
		}
		switch n.Op {
		case logic.OpInput, logic.OpOutput, logic.OpBuf:
		default:
			d++
		}
		depth[n.ID] = d
		if d > max {
			max = d
		}
	}
	return max
}

func TestRandomLogicLocalityShapesDepth(t *testing.T) {
	deep, err := RandomLogic(RandomLogicConfig{Gates: 200, Locality: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RandomLogic(RandomLogicConfig{Gates: 200, Locality: 0.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dDeep, dWide := depthOf(deep), depthOf(wide); dDeep <= dWide {
		t.Errorf("high locality depth %d not above low locality %d", dDeep, dWide)
	}
}

func TestRandomLogicDeterministic(t *testing.T) {
	cfg := RandomLogicConfig{Gates: 50, Seed: 11}
	a, err := RandomLogic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomLogic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("non-deterministic size")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Op != b.Nodes[i].Op {
			t.Fatal("non-deterministic structure")
		}
	}
}

func TestRandomLogicValidation(t *testing.T) {
	if _, err := RandomLogic(RandomLogicConfig{Locality: 1.0}); err == nil {
		t.Error("locality 1.0 accepted")
	}
	if _, err := RandomLogic(RandomLogicConfig{Locality: -0.5}); err == nil {
		t.Error("negative locality accepted")
	}
}

// Property: every random config yields a circuit that validates, maps, and
// evaluates without error.
func TestRandomLogicProperty(t *testing.T) {
	f := func(seed int64, gRaw, locRaw uint8) bool {
		cfg := RandomLogicConfig{
			Inputs:   3 + int(gRaw%5),
			Gates:    20 + int(gRaw),
			Outputs:  1 + int(gRaw%4),
			Locality: float64(locRaw%90) / 100,
			Seed:     seed,
		}
		lc, err := RandomLogic(cfg)
		if err != nil {
			return false
		}
		in := map[logic.NodeID]bool{}
		for i, id := range lc.Inputs() {
			in[id] = i%2 == 0
		}
		if _, err := lc.Eval(in); err != nil {
			return false
		}
		mapped, err := sfqmap.Map(lc, sfqmap.DefaultOptions())
		return err == nil && mapped.IsDAG()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
