package gen

import (
	"fmt"
	"math/rand"

	"gpp/internal/cellib"
	"gpp/internal/netlist"
)

// SyntheticSpec describes a synthetic technology-mapped netlist with exact
// gate and connection counts. It is used to substitute the ISCAS85 rows of
// the paper's benchmark suite (C432, C499, C1355, C1908, C3540), whose
// post-routing DEF files are not available: the generated netlists have the
// published gate/connection counts and SFQ-legal structure (out-degree ≤ 2,
// splitter-realized fanout, single-sink nets).
type SyntheticSpec struct {
	Name  string
	Gates int // exact cell count G
	Conns int // exact connection count |E|
	Seed  int64
}

// Synthetic generates a mapped SFQ netlist with exactly spec.Gates cells
// and spec.Conns connections, as a layered random DAG with a degree plan
// matching mapped-netlist structure:
//
//	inputs   (DCSFQ):  in 0, out 1
//	sinks    (SFQDC):  in 1, out 0
//	splitters(SPLIT):  in 1, out 2
//	2-in gates (clocked Boolean): in 2, out 1
//	1-in cells (DFF/JTL/NOT mix): in 1, out 1
//
// The counts follow from the degree balance: with E − G = nS − nO, the
// splitter count is nS = nO + (E − G) and the 2-input gate count is
// nG = nI + (E − G). Generation is deterministic for a given spec.
func Synthetic(spec SyntheticSpec, lib *cellib.Library) (*netlist.Circuit, error) {
	g, e := spec.Gates, spec.Conns
	if g < 10 {
		return nil, fmt.Errorf("gen: synthetic circuit needs ≥ 10 gates, got %d", g)
	}
	if e <= g-1 {
		return nil, fmt.Errorf("gen: synthetic circuit needs > G-1 connections for a connected mapped netlist, got G=%d E=%d", g, e)
	}
	if e >= 2*g {
		return nil, fmt.Errorf("gen: synthetic circuit cannot exceed out-degree 2: G=%d E=%d", g, e)
	}
	if lib == nil {
		lib = cellib.Default()
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Degree plan.
	nI := g / 25
	if nI < 4 {
		nI = 4
	}
	nO := g / 25
	if nO < 4 {
		nO = 4
	}
	nS := nO + (e - g) // splitters
	nG := nI + (e - g) // 2-input gates
	nB := g - nI - nO - nS - nG
	if nS < 0 || nG < 0 || nB < 0 {
		return nil, fmt.Errorf("gen: infeasible degree plan for G=%d E=%d (nI=%d nO=%d nS=%d nG=%d nB=%d)",
			g, e, nI, nO, nS, nG, nB)
	}

	// Roles in topological position order: inputs first, sinks last, the
	// rest shuffled between.
	type role int
	const (
		roleInput role = iota
		roleSink
		roleSplit
		roleGate2
		roleBuf1
	)
	middle := make([]role, 0, nS+nG+nB)
	for i := 0; i < nS; i++ {
		middle = append(middle, roleSplit)
	}
	for i := 0; i < nG; i++ {
		middle = append(middle, roleGate2)
	}
	for i := 0; i < nB; i++ {
		middle = append(middle, roleBuf1)
	}
	rng.Shuffle(len(middle), func(i, j int) { middle[i], middle[j] = middle[j], middle[i] })
	roles := make([]role, 0, g)
	for i := 0; i < nI; i++ {
		roles = append(roles, roleInput)
	}
	roles = append(roles, middle...)
	for i := 0; i < nO; i++ {
		roles = append(roles, roleSink)
	}

	outCap := make([]int, g)
	inCap := make([]int, g)
	for v, r := range roles {
		switch r {
		case roleInput:
			outCap[v] = 1
		case roleSink:
			inCap[v] = 1
		case roleSplit:
			inCap[v], outCap[v] = 1, 2
		case roleGate2:
			inCap[v], outCap[v] = 2, 1
		case roleBuf1:
			inCap[v], outCap[v] = 1, 1
		}
	}

	// Edge construction. Phase 1 (connectivity backbone): every vertex with
	// in-capacity gets its first in-edge from a random earlier vertex with
	// free out-capacity. Phase 2: remaining in-stubs are matched to free
	// out-stubs of earlier vertices. Duplicate edges are avoided.
	outUsed := make([]int, g)
	inUsed := make([]int, g)
	edgeSet := make(map[[2]int]bool, e)
	edges := make([]netlist.Edge, 0, e)

	// freeOut tracks vertices with available out-capacity, kept sorted by
	// construction (vertices enter when created, leave when saturated).
	addEdge := func(u, v int) bool {
		key := [2]int{u, v}
		if edgeSet[key] {
			return false
		}
		edgeSet[key] = true
		edges = append(edges, netlist.Edge{From: netlist.GateID(u), To: netlist.GateID(v)})
		outUsed[u]++
		inUsed[v]++
		return true
	}
	// pickEarlierSource returns a random earlier vertex with free
	// out-capacity and no existing edge to v, or -1.
	pickEarlierSource := func(v int) int {
		// Random probing first, linear fallback for determinism.
		for try := 0; try < 32; try++ {
			u := rng.Intn(v)
			if outUsed[u] < outCap[u] && !edgeSet[[2]int{u, v}] {
				return u
			}
		}
		for u := v - 1; u >= 0; u-- {
			if outUsed[u] < outCap[u] && !edgeSet[[2]int{u, v}] {
				return u
			}
		}
		return -1
	}

	for v := 0; v < g; v++ {
		for s := 0; s < inCap[v]; s++ {
			u := pickEarlierSource(v)
			if u < 0 {
				return nil, fmt.Errorf("gen: synthetic %s: no free source for vertex %d (seed %d)", spec.Name, v, spec.Seed)
			}
			if !addEdge(u, v) {
				return nil, fmt.Errorf("gen: synthetic %s: duplicate edge injection at vertex %d", spec.Name, v)
			}
		}
	}
	if len(edges) != e {
		return nil, fmt.Errorf("gen: synthetic %s: produced %d edges, want %d (degree plan bug)", spec.Name, len(edges), e)
	}

	// Materialize cells.
	b := netlist.NewBuilder(spec.Name, lib)
	gate2Kinds := []cellib.Kind{cellib.KindAND, cellib.KindOR, cellib.KindXOR, cellib.KindNAND, cellib.KindNOR, cellib.KindXNOR}
	buf1Kinds := []cellib.Kind{cellib.KindDFF, cellib.KindDFF, cellib.KindBuffer, cellib.KindNOT}
	for v, r := range roles {
		var kind cellib.Kind
		switch r {
		case roleInput:
			kind = cellib.KindDCSFQ
		case roleSink:
			kind = cellib.KindSFQDC
		case roleSplit:
			kind = cellib.KindSplit
		case roleGate2:
			kind = gate2Kinds[rng.Intn(len(gate2Kinds))]
		case roleBuf1:
			kind = buf1Kinds[rng.Intn(len(buf1Kinds))]
		}
		b.AddCell(fmt.Sprintf("n%d", v), kind)
	}
	for _, ed := range edges {
		b.Connect(ed.From, ed.To)
	}
	return b.Build()
}
