package gen

import (
	"fmt"

	"gpp/internal/logic"
)

// Mult builds an n×n unsigned array multiplier (2n-bit product) at the
// logic level.
//
// Structure: n² partial products pp_{i,j} = a_i·b_j are reduced with a
// deterministic column-compression array of half/full adders (carry-save
// reduction, column by column), the gate-level shape the SFQ benchmark
// suite's MULT circuits implement.
func Mult(n int) (*logic.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: MULT width must be ≥ 2, got %d", n)
	}
	b := logic.NewBuilder(fmt.Sprintf("MULT%d", n))
	a := make([]logic.NodeID, n)
	bb := make([]logic.NodeID, n)
	for i := 0; i < n; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
		bb[i] = b.Input(fmt.Sprintf("b%d", i))
	}

	// cols[w] collects the bits of weight w awaiting reduction.
	width := 2 * n
	cols := make([][]logic.NodeID, width+1) // +1 guard column, must stay empty
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cols[i+j] = append(cols[i+j], b.And(a[i], bb[j]))
		}
	}

	// Column-by-column carry-save reduction: compress each column to a
	// single bit, pushing carries into the next column.
	for w := 0; w < width; w++ {
		for len(cols[w]) > 1 {
			if len(cols[w]) >= 3 {
				x, y, z := cols[w][0], cols[w][1], cols[w][2]
				cols[w] = cols[w][3:]
				s, c := fullAdder(b, x, y, z)
				cols[w] = append(cols[w], s)
				cols[w+1] = append(cols[w+1], c)
			} else {
				x, y := cols[w][0], cols[w][1]
				cols[w] = cols[w][2:]
				s, c := halfAdder(b, x, y)
				cols[w] = append(cols[w], s)
				cols[w+1] = append(cols[w+1], c)
			}
		}
		if len(cols[w]) == 1 {
			b.Output(fmt.Sprintf("p%d", w), cols[w][0])
		}
	}
	if len(cols[width]) != 0 {
		return nil, fmt.Errorf("gen: MULT%d reduction overflowed the product width", n)
	}
	return b.Build()
}
