package gen

import (
	"fmt"
	"math/rand"

	"gpp/internal/logic"
)

// RandomLogicConfig controls RandomLogic.
type RandomLogicConfig struct {
	// Inputs is the primary input count (default 8).
	Inputs int
	// Gates is the Boolean gate count (default 100).
	Gates int
	// Outputs is the primary output count (default 4, capped at Gates).
	Outputs int
	// Locality biases operand selection toward recently created nodes,
	// in [0,1): 0 = uniform over all earlier nodes (wide, ISCAS-like
	// reconvergence), 0.9 = mostly chains (deep, datapath-like). Default
	// 0.5.
	Locality float64
	Seed     int64
}

func (c RandomLogicConfig) withDefaults() RandomLogicConfig {
	if c.Inputs <= 0 {
		c.Inputs = 8
	}
	if c.Gates <= 0 {
		c.Gates = 100
	}
	if c.Outputs <= 0 {
		c.Outputs = 4
	}
	if c.Outputs > c.Gates {
		c.Outputs = c.Gates
	}
	return c
}

// RandomLogic generates a random valid logic circuit — an arbitrary
// workload for partitioning studies beyond the fixed benchmark suite.
// Deterministic for a given config.
func RandomLogic(cfg RandomLogicConfig) (*logic.Circuit, error) {
	cfg = cfg.withDefaults()
	if cfg.Locality < 0 || cfg.Locality >= 1 {
		return nil, fmt.Errorf("gen: locality %g outside [0,1)", cfg.Locality)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := logic.NewBuilder(fmt.Sprintf("RAND%d", cfg.Gates))
	nodes := make([]logic.NodeID, 0, cfg.Inputs+cfg.Gates)
	for i := 0; i < cfg.Inputs; i++ {
		nodes = append(nodes, b.Input(fmt.Sprintf("x%d", i)))
	}
	pick := func() logic.NodeID {
		n := len(nodes)
		if rng.Float64() < cfg.Locality {
			// Recent window: the last ~12% of created nodes.
			win := n / 8
			if win < 2 {
				win = 2
			}
			if win > n {
				win = n
			}
			return nodes[n-1-rng.Intn(win)]
		}
		return nodes[rng.Intn(n)]
	}
	for i := 0; i < cfg.Gates; i++ {
		x, y := pick(), pick()
		switch rng.Intn(8) {
		case 0, 1:
			nodes = append(nodes, b.And(x, y))
		case 2, 3:
			nodes = append(nodes, b.Or(x, y))
		case 4, 5:
			nodes = append(nodes, b.Xor(x, y))
		case 6:
			nodes = append(nodes, b.Not(x))
		case 7:
			nodes = append(nodes, b.AndNot(x, y))
		}
	}
	for i := 0; i < cfg.Outputs; i++ {
		b.Output(fmt.Sprintf("y%d", i), nodes[len(nodes)-1-i])
	}
	return b.Build()
}
