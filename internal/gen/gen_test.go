package gen

import (
	"math/rand"
	"testing"

	"gpp/internal/logic"
)

// evalBits drives a logic circuit whose inputs are named with the given
// prefixes + bit index and returns the output values keyed by name.
func evalBits(t *testing.T, c *logic.Circuit, inputs map[string]uint64, widths map[string]int) map[string]bool {
	t.Helper()
	vals := make(map[logic.NodeID]bool)
	for _, n := range c.Nodes {
		if n.Op != logic.OpInput {
			continue
		}
		assigned := false
		for prefix, v := range inputs {
			w := widths[prefix]
			for b := 0; b < w; b++ {
				if n.Name == prefix+itoa(b) {
					vals[n.ID] = v>>uint(b)&1 == 1
					assigned = true
				}
			}
		}
		if !assigned {
			t.Fatalf("input %q not covered by test harness", n.Name)
		}
	}
	all, err := c.Eval(vals)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool)
	for _, n := range c.Nodes {
		if n.Op == logic.OpOutput {
			out[n.Name] = all[n.ID]
		}
	}
	return out
}

func bitsToUint(t *testing.T, outs map[string]bool, prefix string, width int) uint64 {
	t.Helper()
	var v uint64
	for b := 0; b < width; b++ {
		name := prefix + itoa(b)
		bit, ok := outs[name]
		if !ok {
			t.Fatalf("output %q missing (have %v)", name, keys(outs))
		}
		if bit {
			v |= 1 << uint(b)
		}
	}
	return v
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

func TestKSAFunctionalExhaustive4(t *testing.T) {
	c, err := KSA(4)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			outs := evalBits(t, c, map[string]uint64{"a": a, "b": b}, map[string]int{"a": 4, "b": 4})
			sum := bitsToUint(t, outs, "s", 4)
			cout := uint64(0)
			if outs["cout"] {
				cout = 1
			}
			if got, want := cout<<4|sum, a+b; got != want {
				t.Fatalf("KSA4: %d + %d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestKSAFunctionalRandom(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		c, err := KSA(n)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		mask := uint64(1)<<uint(n) - 1
		for trial := 0; trial < 50; trial++ {
			a := rng.Uint64() & mask
			b := rng.Uint64() & mask
			outs := evalBits(t, c, map[string]uint64{"a": a, "b": b}, map[string]int{"a": n, "b": n})
			sum := bitsToUint(t, outs, "s", n)
			cout := uint64(0)
			if outs["cout"] {
				cout = 1
			}
			if got, want := cout<<uint(n)|sum, a+b; got != want {
				t.Fatalf("KSA%d: %d + %d = %d, want %d", n, a, b, got, want)
			}
		}
	}
}

func TestKSARejectsBadWidths(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 12} {
		if _, err := KSA(n); err == nil {
			t.Errorf("KSA(%d) should fail", n)
		}
	}
}

func TestMultFunctionalExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		c, err := Mult(n)
		if err != nil {
			t.Fatal(err)
		}
		lim := uint64(1) << uint(n)
		for a := uint64(0); a < lim; a++ {
			for b := uint64(0); b < lim; b++ {
				outs := evalBits(t, c, map[string]uint64{"a": a, "b": b}, map[string]int{"a": n, "b": n})
				got := bitsToUint(t, outs, "p", 2*n)
				if got != a*b {
					t.Fatalf("MULT%d: %d × %d = %d, want %d", n, a, b, got, a*b)
				}
			}
		}
	}
}

func TestMultFunctionalRandom8(t *testing.T) {
	c, err := Mult(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		a := rng.Uint64() & 0xff
		b := rng.Uint64() & 0xff
		outs := evalBits(t, c, map[string]uint64{"a": a, "b": b}, map[string]int{"a": 8, "b": 8})
		got := bitsToUint(t, outs, "p", 16)
		if got != a*b {
			t.Fatalf("MULT8: %d × %d = %d, want %d", a, b, got, a*b)
		}
	}
}

func TestMultRejectsBadWidths(t *testing.T) {
	for _, n := range []int{0, 1} {
		if _, err := Mult(n); err == nil {
			t.Errorf("Mult(%d) should fail", n)
		}
	}
}

func TestDividerFunctionalExhaustive4(t *testing.T) {
	c, err := Divider(4)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for d := uint64(1); d < 16; d++ {
			outs := evalBits(t, c, map[string]uint64{"a": a, "d": d}, map[string]int{"a": 4, "d": 4})
			q := bitsToUint(t, outs, "q", 4)
			r := bitsToUint(t, outs, "r", 4)
			if q != a/d || r != a%d {
				t.Fatalf("ID4: %d / %d = (%d, %d), want (%d, %d)", a, d, q, r, a/d, a%d)
			}
		}
	}
}

func TestDividerFunctionalRandom8(t *testing.T) {
	c, err := Divider(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() & 0xff
		d := rng.Uint64()&0xff + 1
		if d > 0xff {
			d = 0xff
		}
		outs := evalBits(t, c, map[string]uint64{"a": a, "d": d}, map[string]int{"a": 8, "d": 8})
		q := bitsToUint(t, outs, "q", 8)
		r := bitsToUint(t, outs, "r", 8)
		if q != a/d || r != a%d {
			t.Fatalf("ID8: %d / %d = (%d, %d), want (%d, %d)", a, d, q, r, a/d, a%d)
		}
	}
}

func TestDividerRejectsBadWidths(t *testing.T) {
	if _, err := Divider(1); err == nil {
		t.Error("Divider(1) should fail")
	}
}
