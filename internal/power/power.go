// Package power models the power and thermal-load economics that motivate
// current recycling (Sections I–II of the paper): the bias current of a
// large SFQ chip reaches tens of amperes, and the problem is not the
// on-chip power (microwatts) but the current magnitude itself — resistive
// dissipation in the cryostat's current leads grows with I², and every
// ampere of lead current adds conductive heat load at 4 K. Serial biasing
// divides the supply current by ≈K at the cost of a K× higher stack
// voltage, leaving on-chip power unchanged while shrinking lead loss
// quadratically.
//
// Two biasing schemes are modeled:
//
//   - RSFQ: resistor biasing from a ~2.5 mV bus; static power V_bus·B_cir
//     dominates on-chip dissipation.
//   - ERSFQ: inductor/JJ-limiter biasing; static power is eliminated and
//     only the dynamic switching energy I_b·Φ0 per SFQ pulse remains.
//
// All values are first-order and per the constants in the paper's cited
// literature; the package's purpose is the parallel-vs-recycled comparison,
// where modeling simplifications cancel.
package power

import (
	"fmt"

	"gpp/internal/netlist"
	"gpp/internal/recycle"
)

// Phi0 is the single flux quantum, V·s (Eq. 1 of the paper).
const Phi0 = 2.07e-15

// Scheme selects the biasing style.
type Scheme int

// Biasing schemes.
const (
	RSFQ Scheme = iota
	ERSFQ
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case RSFQ:
		return "RSFQ"
	case ERSFQ:
		return "ERSFQ"
	default:
		return "UNKNOWN"
	}
}

// Options configures the model.
type Options struct {
	Scheme Scheme
	// BiasBusVoltage (V); default 2.5e-3.
	BiasBusVoltage float64
	// ClockGHz is the operating frequency; default 20.
	ClockGHz float64
	// Activity is the average switching probability per gate per cycle;
	// default 0.25.
	Activity float64
	// LeadResistance is the effective room-temperature-to-4K current lead
	// resistance in ohms; default 0.1 Ω (a few meters of graded leads).
	LeadResistance float64
}

func (o Options) withDefaults() Options {
	if o.BiasBusVoltage <= 0 {
		o.BiasBusVoltage = 2.5e-3
	}
	if o.ClockGHz <= 0 {
		o.ClockGHz = 20
	}
	if o.Activity <= 0 {
		o.Activity = 0.25
	}
	if o.LeadResistance <= 0 {
		o.LeadResistance = 0.1
	}
	return o
}

// Budget is the modeled power breakdown, all in watts unless noted.
type Budget struct {
	Scheme Scheme

	// SupplyCurrentA is the current delivered through the cryostat leads.
	SupplyCurrentA float64
	// SupplyVoltage is the voltage across the bias network (stack voltage
	// when recycled).
	SupplyVoltage float64

	// StaticOnChip is the bias-network dissipation on chip (zero for
	// ERSFQ).
	StaticOnChip float64
	// DynamicOnChip is the switching energy burn: Σ_i b_i·Φ0·α·f.
	DynamicOnChip float64
	// LeadLoss is the I²R dissipation in the supply leads.
	LeadLoss float64
	// Total = StaticOnChip + DynamicOnChip + LeadLoss.
	Total float64
}

// ForCircuit models the budget for an unpartitioned (parallel-biased)
// circuit: the leads carry the full B_cir.
func ForCircuit(c *netlist.Circuit, opts Options) (*Budget, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	bcirA := c.TotalBias() / 1000 // mA → A
	return budget(opts, bcirA, opts.BiasBusVoltage, bcirA), nil
}

// ForPlan models the budget for a recycled design: the leads carry only
// the plan's supply current, the stack voltage is K·V_bus, and on-chip
// static/dynamic terms still see the full circuit bias (every gate is
// biased regardless of which plane it sits on; dummy and coupler overhead
// current is included since it flows through the stack).
func ForPlan(plan *recycle.Plan, opts Options) (*Budget, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	supplyA := plan.SupplyCurrent / 1000
	// On-chip static dissipation: the full stack drops K·V_bus across the
	// supply current — identical to V_bus across B_cir(+overhead) in the
	// balanced limit.
	onChipA := supplyA * float64(plan.K)
	return budget(opts, supplyA, plan.StackVoltage(), onChipA), nil
}

func budget(opts Options, supplyA, supplyV, onChipEquivA float64) *Budget {
	b := &Budget{
		Scheme:         opts.Scheme,
		SupplyCurrentA: supplyA,
		SupplyVoltage:  supplyV,
	}
	if opts.Scheme == RSFQ {
		b.StaticOnChip = opts.BiasBusVoltage * onChipEquivA
	}
	// Dynamic: each mA of gate bias switching at α·f burns b·Φ0 per pulse.
	fHz := opts.ClockGHz * 1e9
	b.DynamicOnChip = onChipEquivA * Phi0 * opts.Activity * fHz
	b.LeadLoss = opts.LeadResistance * supplyA * supplyA
	b.Total = b.StaticOnChip + b.DynamicOnChip + b.LeadLoss
	return b
}

// Comparison reports parallel vs recycled budgets.
type Comparison struct {
	Parallel *Budget
	Recycled *Budget
	// CurrentReduction = parallel supply current / recycled supply
	// current (≈ K for a balanced partition).
	CurrentReduction float64
	// LeadLossReduction = parallel lead loss / recycled lead loss
	// (≈ K² — the quadratic win that motivates the technique).
	LeadLossReduction float64
}

// Compare models both configurations of the same circuit.
func Compare(c *netlist.Circuit, plan *recycle.Plan, opts Options) (*Comparison, error) {
	par, err := ForCircuit(c, opts)
	if err != nil {
		return nil, err
	}
	rec, err := ForPlan(plan, opts)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{Parallel: par, Recycled: rec}
	if rec.SupplyCurrentA > 0 {
		cmp.CurrentReduction = par.SupplyCurrentA / rec.SupplyCurrentA
	}
	if rec.LeadLoss > 0 {
		cmp.LeadLossReduction = par.LeadLoss / rec.LeadLoss
	}
	return cmp, nil
}

// BiasLines estimates how many physical bias pads a supply needs when one
// pad sustains at most padLimitMA — the paper's closing argument (its [23]
// uses 31 lines for 2.5 A; recycling collapses that to 1).
func BiasLines(supplyMA, padLimitMA float64) (int, error) {
	if padLimitMA <= 0 {
		return 0, fmt.Errorf("power: pad limit must be positive, got %g", padLimitMA)
	}
	if supplyMA <= 0 {
		return 0, nil
	}
	n := int(supplyMA / padLimitMA)
	if float64(n)*padLimitMA < supplyMA {
		n++
	}
	return n, nil
}
