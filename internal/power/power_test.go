package power

import (
	"math"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/partition"
	"gpp/internal/recycle"
)

func fixture(t *testing.T, name string, k int) (*Comparison, *recycle.Plan) {
	t.Helper()
	c, err := gen.Benchmark(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromCircuit(c, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(partition.Options{Seed: 1, MaxIters: 800})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := recycle.BuildPlan(c, p, res.Labels, recycle.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(c, plan, Options{Scheme: RSFQ})
	if err != nil {
		t.Fatal(err)
	}
	return cmp, plan
}

func TestCompareCurrentAndLeadLoss(t *testing.T) {
	cmp, plan := fixture(t, "KSA16", 5)
	// Current reduction approaches K for a balanced partition, minus
	// coupler overhead; it must be meaningfully above 1.
	if cmp.CurrentReduction < 1.5 {
		t.Errorf("current reduction %.2f, want > 1.5", cmp.CurrentReduction)
	}
	if cmp.CurrentReduction > float64(plan.K) {
		t.Errorf("current reduction %.2f exceeds K=%d (impossible)", cmp.CurrentReduction, plan.K)
	}
	// Lead loss shrinks quadratically with the current reduction.
	wantLead := cmp.CurrentReduction * cmp.CurrentReduction
	if math.Abs(cmp.LeadLossReduction-wantLead)/wantLead > 1e-9 {
		t.Errorf("lead loss reduction %.3f, want (current reduction)² = %.3f",
			cmp.LeadLossReduction, wantLead)
	}
}

func TestRSFQvsERSFQStatic(t *testing.T) {
	c, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		t.Fatal(err)
	}
	rsfq, err := ForCircuit(c, Options{Scheme: RSFQ})
	if err != nil {
		t.Fatal(err)
	}
	ersfq, err := ForCircuit(c, Options{Scheme: ERSFQ})
	if err != nil {
		t.Fatal(err)
	}
	if rsfq.StaticOnChip <= 0 {
		t.Error("RSFQ has no static power")
	}
	if ersfq.StaticOnChip != 0 {
		t.Errorf("ERSFQ static power = %g, want 0", ersfq.StaticOnChip)
	}
	if ersfq.DynamicOnChip <= 0 {
		t.Error("ERSFQ has no dynamic power")
	}
	if rsfq.DynamicOnChip != ersfq.DynamicOnChip {
		t.Error("dynamic power should not depend on the biasing scheme")
	}
	if ersfq.Total >= rsfq.Total {
		t.Error("ERSFQ not more efficient than RSFQ")
	}
}

func TestForCircuitHandNumbers(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Scheme: RSFQ, BiasBusVoltage: 2.5e-3, ClockGHz: 20, Activity: 0.25, LeadResistance: 0.1}
	b, err := ForCircuit(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	iA := c.TotalBias() / 1000
	if math.Abs(b.SupplyCurrentA-iA) > 1e-12 {
		t.Errorf("supply = %g A, want %g", b.SupplyCurrentA, iA)
	}
	if math.Abs(b.StaticOnChip-2.5e-3*iA) > 1e-15 {
		t.Errorf("static = %g W", b.StaticOnChip)
	}
	wantDyn := iA * Phi0 * 0.25 * 20e9
	if math.Abs(b.DynamicOnChip-wantDyn)/wantDyn > 1e-12 {
		t.Errorf("dynamic = %g W, want %g", b.DynamicOnChip, wantDyn)
	}
	if math.Abs(b.LeadLoss-0.1*iA*iA)/b.LeadLoss > 1e-12 {
		t.Errorf("lead loss = %g W", b.LeadLoss)
	}
	if math.Abs(b.Total-(b.StaticOnChip+b.DynamicOnChip+b.LeadLoss)) > 1e-15 {
		t.Error("total is not the sum of parts")
	}
}

func TestStackVoltageScalesWithK(t *testing.T) {
	cmp, plan := fixture(t, "KSA8", 5)
	if math.Abs(cmp.Recycled.SupplyVoltage-plan.StackVoltage()) > 1e-12 {
		t.Errorf("recycled voltage %g, want stack voltage %g",
			cmp.Recycled.SupplyVoltage, plan.StackVoltage())
	}
	if cmp.Parallel.SupplyVoltage >= cmp.Recycled.SupplyVoltage {
		t.Error("recycling should raise the supply voltage")
	}
}

func TestBiasLines(t *testing.T) {
	// The paper's closing argument: its ref [23] feeds 2.5 A through 31
	// lines at ~80 mA each; one recycled feed replaces them.
	n, err := BiasLines(2500, 81)
	if err != nil {
		t.Fatal(err)
	}
	if n != 31 {
		t.Errorf("BiasLines(2500, 81) = %d, want 31", n)
	}
	n, err = BiasLines(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("exact fit needs %d lines", n)
	}
	if n, _ := BiasLines(0, 100); n != 0 {
		t.Errorf("zero current needs %d lines", n)
	}
	if _, err := BiasLines(100, 0); err == nil {
		t.Error("zero pad limit accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if RSFQ.String() != "RSFQ" || ERSFQ.String() != "ERSFQ" || Scheme(9).String() != "UNKNOWN" {
		t.Error("scheme names wrong")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c, err := gen.Benchmark("KSA4", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.SupplyVoltage != 2.5e-3 {
		t.Errorf("default bus voltage %g", b.SupplyVoltage)
	}
	if b.LeadLoss <= 0 || b.DynamicOnChip <= 0 {
		t.Error("defaults produced zero terms")
	}
}
