package netlist

import (
	"strings"
	"testing"
	"testing/quick"

	"gpp/internal/cellib"
)

func TestBuilderBasic(t *testing.T) {
	lib := cellib.Default()
	b := NewBuilder("tiny", lib)
	in := b.AddCell("in0", cellib.KindDCSFQ)
	ff := b.AddCell("ff0", cellib.KindDFF)
	out := b.AddCell("out0", cellib.KindSFQDC)
	b.Connect(in, ff)
	b.Connect(ff, out)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 3 || c.NumEdges() != 2 {
		t.Fatalf("built %d gates, %d edges", c.NumGates(), c.NumEdges())
	}
	dff, _ := lib.ByKind(cellib.KindDFF)
	if c.Gates[1].Bias != dff.Bias || c.Gates[1].Area != dff.Area() {
		t.Errorf("gate bias/area not drawn from library: %+v", c.Gates[1])
	}
	if c.Gates[1].Cell != "DFFT" {
		t.Errorf("cell name = %q, want DFFT", c.Gates[1].Cell)
	}
}

func TestBuilderIDLookup(t *testing.T) {
	b := NewBuilder("t", cellib.Default())
	want := b.AddCell("x", cellib.KindDFF)
	got, ok := b.ID("x")
	if !ok || got != want {
		t.Errorf("ID(x) = %v, %v; want %v", got, ok, want)
	}
	if _, ok := b.ID("missing"); ok {
		t.Error("ID(missing) should fail")
	}
	if b.NumGates() != 1 {
		t.Errorf("NumGates = %d", b.NumGates())
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder("t", cellib.Default())
	a := b.AddCell("a", cellib.KindDFF)
	b.Connect(a, a) // self loop → error
	if b.Err() == nil {
		t.Fatal("self loop not rejected")
	}
	// Subsequent calls are no-ops and Build fails with the first error.
	if id := b.AddCell("b", cellib.KindDFF); id != -1 {
		t.Errorf("AddCell after error = %v, want -1", id)
	}
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "self loop") {
		t.Errorf("Build error = %v, want self loop", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate name", func(t *testing.T) {
		b := NewBuilder("t", cellib.Default())
		b.AddCell("a", cellib.KindDFF)
		b.AddCell("a", cellib.KindAND)
		if err := b.Err(); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("empty name", func(t *testing.T) {
		b := NewBuilder("t", cellib.Default())
		b.AddCell("", cellib.KindDFF)
		if err := b.Err(); err == nil || !strings.Contains(err.Error(), "empty instance name") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		b := NewBuilder("t", cellib.Default())
		b.AddCell("a", cellib.Kind(777))
		if err := b.Err(); err == nil || !strings.Contains(err.Error(), "no cell of kind") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("connect out of range", func(t *testing.T) {
		b := NewBuilder("t", cellib.Default())
		a := b.AddCell("a", cellib.KindDFF)
		b.Connect(a, 7)
		if err := b.Err(); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("negative raw attributes", func(t *testing.T) {
		b := NewBuilder("t", cellib.Default())
		b.AddGateRaw("a", "X", -1, 0)
		if err := b.Err(); err == nil || !strings.Contains(err.Error(), "negative") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestMustBuildPanics(t *testing.T) {
	b := NewBuilder("t", cellib.Default())
	b.AddCell("", cellib.KindDFF)
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on builder error")
		}
	}()
	b.MustBuild()
}

// Property: any chain circuit built through the Builder validates and has
// the expected totals.
func TestBuilderProducesValidCircuits(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 2
		b := NewBuilder("prop", cellib.Default())
		ids := make([]GateID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddCell(strings.Repeat("g", 1)+string(rune('A'+i%26))+itoa(i), cellib.KindDFF)
		}
		for i := 1; i < n; i++ {
			b.Connect(ids[i-1], ids[i])
		}
		c, err := b.Build()
		if err != nil {
			return false
		}
		return c.Validate() == nil && c.NumGates() == n && c.NumEdges() == n-1 && c.IsDAG()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
