package netlist

import "fmt"

// Boundary lists the connections crossing a gate selection, in original
// gate IDs: In edges enter the selection, Out edges leave it.
type Boundary struct {
	In  []Edge
	Out []Edge
}

// Subcircuit returns the subcircuit induced by the selected gates (dense
// re-IDed, names preserved), a map from original to new gate IDs, and the
// boundary crossing edges. After ground plane partitioning this is how one
// plane's block is handed to downstream tools: the boundary's In/Out lists
// are exactly the coupler receiver/driver ports the block needs.
func Subcircuit(c *Circuit, name string, selected []bool) (*Circuit, map[GateID]GateID, *Boundary, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if len(selected) != c.NumGates() {
		return nil, nil, nil, fmt.Errorf("netlist: %d selections for %d gates", len(selected), c.NumGates())
	}
	sub := &Circuit{Name: name}
	idMap := make(map[GateID]GateID)
	for i, g := range c.Gates {
		if !selected[i] {
			continue
		}
		ng := g
		ng.ID = GateID(len(sub.Gates))
		sub.Gates = append(sub.Gates, ng)
		idMap[g.ID] = ng.ID
	}
	if len(sub.Gates) == 0 {
		return nil, nil, nil, fmt.Errorf("netlist: empty selection")
	}
	bd := &Boundary{}
	for _, e := range c.Edges {
		fromIn := selected[e.From]
		toIn := selected[e.To]
		switch {
		case fromIn && toIn:
			sub.Edges = append(sub.Edges, Edge{From: idMap[e.From], To: idMap[e.To]})
		case fromIn:
			bd.Out = append(bd.Out, e)
		case toIn:
			bd.In = append(bd.In, e)
		}
	}
	if err := sub.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("netlist: extracted subcircuit invalid: %w", err)
	}
	return sub, idMap, bd, nil
}
