package netlist

import (
	"math"
	"strings"
	"testing"
)

// chain builds a 4-gate chain 0→1→2→3 with distinct bias/area.
func chain(t *testing.T) *Circuit {
	t.Helper()
	c := &Circuit{
		Name: "chain",
		Gates: []Gate{
			{ID: 0, Name: "g0", Cell: "DCSFQ", Bias: 1.0, Area: 0.001},
			{ID: 1, Name: "g1", Cell: "DFFT", Bias: 2.0, Area: 0.002},
			{ID: 2, Name: "g2", Cell: "DFFT", Bias: 3.0, Area: 0.003},
			{ID: 3, Name: "g3", Cell: "SFQDC", Bias: 4.0, Area: 0.004},
		},
		Edges: []Edge{{0, 1}, {1, 2}, {2, 3}},
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("chain fixture invalid: %v", err)
	}
	return c
}

func TestTotals(t *testing.T) {
	c := chain(t)
	if got := c.TotalBias(); math.Abs(got-10) > 1e-12 {
		t.Errorf("TotalBias = %g, want 10", got)
	}
	if got := c.TotalArea(); math.Abs(got-0.010) > 1e-12 {
		t.Errorf("TotalArea = %g, want 0.010", got)
	}
	if c.NumGates() != 4 || c.NumEdges() != 3 {
		t.Errorf("counts = %d gates, %d edges", c.NumGates(), c.NumEdges())
	}
}

func TestValidateErrors(t *testing.T) {
	mk := func(mutate func(*Circuit)) *Circuit {
		c := &Circuit{
			Name: "m",
			Gates: []Gate{
				{ID: 0, Name: "a", Bias: 1, Area: 1},
				{ID: 1, Name: "b", Bias: 1, Area: 1},
			},
			Edges: []Edge{{0, 1}},
		}
		mutate(c)
		return c
	}
	cases := []struct {
		name   string
		mutate func(*Circuit)
		want   string
	}{
		{"empty circuit name", func(c *Circuit) { c.Name = "" }, "empty name"},
		{"non-dense IDs", func(c *Circuit) { c.Gates[1].ID = 5 }, "dense"},
		{"empty gate name", func(c *Circuit) { c.Gates[0].Name = "" }, "empty name"},
		{"duplicate names", func(c *Circuit) { c.Gates[1].Name = "a" }, "duplicate gate name"},
		{"negative bias", func(c *Circuit) { c.Gates[0].Bias = -1 }, "negative bias"},
		{"negative area", func(c *Circuit) { c.Gates[0].Area = -1 }, "negative area"},
		{"edge out of range", func(c *Circuit) { c.Edges[0].To = 9 }, "out of range"},
		{"negative endpoint", func(c *Circuit) { c.Edges[0].From = -1 }, "out of range"},
		{"self loop", func(c *Circuit) { c.Edges[0] = Edge{1, 1} }, "self loop"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mk(tc.mutate).Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestGateByName(t *testing.T) {
	c := chain(t)
	g, ok := c.GateByName("g2")
	if !ok || g.ID != 2 {
		t.Errorf("GateByName(g2) = %v, %v", g, ok)
	}
	if _, ok := c.GateByName("nope"); ok {
		t.Error("GateByName(nope) should fail")
	}
}

func TestAdjacencyUndirectedWithDuplicates(t *testing.T) {
	c := chain(t)
	c.Edges = append(c.Edges, Edge{0, 1}) // parallel edge preserved
	adj := c.Adjacency()
	if len(adj[0]) != 2 || adj[0][0] != 1 || adj[0][1] != 1 {
		t.Errorf("adj[0] = %v, want [1 1]", adj[0])
	}
	if len(adj[1]) != 3 { // 0, 0, 2
		t.Errorf("adj[1] = %v, want 3 neighbors", adj[1])
	}
	if len(adj[3]) != 1 || adj[3][0] != 2 {
		t.Errorf("adj[3] = %v, want [2]", adj[3])
	}
}

func TestInOutEdgesAndDegrees(t *testing.T) {
	c := chain(t)
	out := c.OutEdges()
	in := c.InEdges()
	if len(out[0]) != 1 || c.Edges[out[0][0]].To != 1 {
		t.Errorf("out[0] = %v", out[0])
	}
	if len(in[0]) != 0 || len(in[3]) != 1 {
		t.Errorf("in degrees wrong: in[0]=%v in[3]=%v", in[0], in[3])
	}
	ind, outd := c.Degrees()
	wantIn := []int{0, 1, 1, 1}
	wantOut := []int{1, 1, 1, 0}
	for i := range wantIn {
		if ind[i] != wantIn[i] || outd[i] != wantOut[i] {
			t.Errorf("gate %d degrees = (%d,%d), want (%d,%d)", i, ind[i], outd[i], wantIn[i], wantOut[i])
		}
	}
}

func TestTopoOrder(t *testing.T) {
	c := chain(t)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[GateID]int)
	for i, g := range order {
		pos[g] = i
	}
	for _, e := range c.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d→%d violates topo order", e.From, e.To)
		}
	}
	if !c.IsDAG() {
		t.Error("chain should be a DAG")
	}
}

func TestTopoOrderCycle(t *testing.T) {
	c := chain(t)
	c.Edges = append(c.Edges, Edge{3, 0})
	if _, err := c.TopoOrder(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("TopoOrder on cycle = %v, want cycle error", err)
	}
	if c.IsDAG() {
		t.Error("cyclic circuit reported as DAG")
	}
}

func TestLevels(t *testing.T) {
	// Diamond: 0→1, 0→2, 1→3, 2→3, plus a long path 0→1→2 makes level(3)=3.
	c := &Circuit{
		Name: "diamond",
		Gates: []Gate{
			{ID: 0, Name: "a"}, {ID: 1, Name: "b"}, {ID: 2, Name: "c"}, {ID: 3, Name: "d"},
		},
		Edges: []Edge{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}},
	}
	lvl, maxLvl, err := c.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if lvl[i] != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, lvl[i], want[i])
		}
	}
	if maxLvl != 3 {
		t.Errorf("maxLevel = %d, want 3", maxLvl)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := chain(t)
	cp := c.Clone()
	cp.Gates[0].Bias = 99
	cp.Edges[0].To = 3
	if c.Gates[0].Bias == 99 || c.Edges[0].To == 3 {
		t.Error("Clone shares storage with original")
	}
	if err := cp.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	c := chain(t)
	c.Edges = append(c.Edges, Edge{0, 2}) // fanout 2 at gate 0, fanin 2 at gate 2
	st := ComputeStats(c)
	if st.Gates != 4 || st.Edges != 4 {
		t.Errorf("stats counts = %d/%d", st.Gates, st.Edges)
	}
	if st.MaxFanout != 2 || st.MaxFanin != 2 {
		t.Errorf("max degrees = out %d in %d, want 2/2", st.MaxFanout, st.MaxFanin)
	}
	if math.Abs(st.AvgBias-2.5) > 1e-12 {
		t.Errorf("AvgBias = %g, want 2.5", st.AvgBias)
	}
	if st.Levels != 3 {
		t.Errorf("Levels = %d, want 3", st.Levels)
	}
}

func TestComputeStatsCyclic(t *testing.T) {
	c := chain(t)
	c.Edges = append(c.Edges, Edge{3, 0})
	st := ComputeStats(c)
	if st.Levels != 0 {
		t.Errorf("cyclic circuit Levels = %d, want 0", st.Levels)
	}
}
