package netlist

import (
	"encoding/binary"
	"math"
)

// AppendCanonical appends a canonical binary encoding of the circuit's
// solver-visible content to b and returns the extended slice. The encoding
// covers exactly what determines a partition result: the gate count, every
// gate's bias and area (IEEE-754 bit patterns, in gate-ID order), and the
// edge list in circuit order. Instance names and cell names are excluded —
// two netlists differing only in naming solve identically, so a
// content-addressed cache must give them the same key.
//
// Gate and edge *order* is preserved, not sorted: the cost kernels reduce
// in a fixed order derived from these lists, so a reordered-but-isomorphic
// circuit is a genuinely different solve and must hash differently.
func (c *Circuit) AppendCanonical(b []byte) []byte {
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		b = append(b, scratch[:]...)
	}
	b = append(b, "gpp-netlist-v1"...)
	u64(uint64(len(c.Gates)))
	u64(uint64(len(c.Edges)))
	for _, g := range c.Gates {
		u64(math.Float64bits(g.Bias))
		u64(math.Float64bits(g.Area))
	}
	for _, e := range c.Edges {
		u64(uint64(e.From))
		u64(uint64(e.To))
	}
	return b
}
