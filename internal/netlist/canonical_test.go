package netlist

import (
	"bytes"
	"fmt"
	"testing"
)

func canonTestCircuit() *Circuit {
	c := &Circuit{Name: "canon"}
	for i := 0; i < 4; i++ {
		c.Gates = append(c.Gates, Gate{
			ID:   GateID(i),
			Name: fmt.Sprintf("g%d", i),
			Cell: "AND2T",
			Bias: 0.1 * float64(i+1),
			Area: 0.001 * float64(i+1),
		})
	}
	c.Edges = []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	return c
}

func TestAppendCanonicalDeterministic(t *testing.T) {
	c := canonTestCircuit()
	a := c.AppendCanonical(nil)
	b := c.AppendCanonical(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same circuit differ")
	}
	if !bytes.HasPrefix(a, []byte("gpp-netlist-v1")) {
		t.Fatalf("missing version prefix: %q", a[:16])
	}
	// 14-byte prefix + 2 count words + 2 words per gate + 2 per edge.
	want := 14 + 8*(2+2*len(c.Gates)+2*len(c.Edges))
	if len(a) != want {
		t.Fatalf("encoding length %d, want %d", len(a), want)
	}
	// Appends to an existing slice rather than replacing it.
	pre := []byte("head")
	ext := c.AppendCanonical(pre)
	if !bytes.Equal(ext[:4], []byte("head")) || !bytes.Equal(ext[4:], a) {
		t.Fatal("AppendCanonical did not append to the given slice")
	}
}

// Renaming instances or cells must not change the canonical bytes: the
// solver never sees names, so a content-addressed cache must treat the
// renamed netlist as the same circuit.
func TestAppendCanonicalIgnoresNames(t *testing.T) {
	c := canonTestCircuit()
	renamed := c.Clone()
	renamed.Name = "other"
	for i := range renamed.Gates {
		renamed.Gates[i].Name = fmt.Sprintf("renamed_%d", i)
		renamed.Gates[i].Cell = "OR2T"
	}
	if !bytes.Equal(c.AppendCanonical(nil), renamed.AppendCanonical(nil)) {
		t.Fatal("renaming gates changed the canonical bytes")
	}
}

// Reordering the edge list (even to an isomorphic circuit) must change the
// bytes: the kernels reduce in list order, so a reordered circuit is a
// different float computation and caching across the two would be wrong.
func TestAppendCanonicalOrderSensitive(t *testing.T) {
	c := canonTestCircuit()
	reordered := c.Clone()
	reordered.Edges[0], reordered.Edges[1] = reordered.Edges[1], reordered.Edges[0]
	if bytes.Equal(c.AppendCanonical(nil), reordered.AppendCanonical(nil)) {
		t.Fatal("edge reorder did not change the canonical bytes")
	}
}

func TestAppendCanonicalContentSensitive(t *testing.T) {
	c := canonTestCircuit()
	base := c.AppendCanonical(nil)

	biased := c.Clone()
	biased.Gates[2].Bias += 1e-9
	if bytes.Equal(base, biased.AppendCanonical(nil)) {
		t.Fatal("bias change did not change the canonical bytes")
	}

	area := c.Clone()
	area.Gates[0].Area *= 2
	if bytes.Equal(base, area.AppendCanonical(nil)) {
		t.Fatal("area change did not change the canonical bytes")
	}

	edge := c.Clone()
	edge.Edges[3] = Edge{1, 3}
	if bytes.Equal(base, edge.AppendCanonical(nil)) {
		t.Fatal("edge change did not change the canonical bytes")
	}
}
