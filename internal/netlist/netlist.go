// Package netlist defines the gate-level circuit model consumed by the
// ground plane partitioner and the current-recycling planner.
//
// A Circuit is a directed graph: vertices are SFQ cell instances ("gates",
// following the paper's terminology), edges are point-to-point driver→sink
// connections. After SFQ technology mapping every net is point-to-point
// (fanout is realized with explicit splitter cells), so the edge list is
// exactly the paper's connection set E.
//
// Each gate carries the two per-gate quantities the cost function needs:
// bias current b_i (mA) and area a_i (mm²).
package netlist

import (
	"fmt"
	"sort"
)

// GateID identifies a gate within one Circuit. IDs are dense indices
// 0..NumGates-1.
type GateID int

// Gate is one cell instance.
type Gate struct {
	ID   GateID
	Name string  // instance name, unique within the circuit
	Cell string  // library cell name (e.g. "AND2T"); informational
	Bias float64 // bias current requirement, mA
	Area float64 // layout area, mm²
}

// Edge is a directed connection from the output of gate From to an input of
// gate To. The partitioning cost uses the undirected plane distance, but the
// direction matters to the recycling planner (couplers are unidirectional).
type Edge struct {
	From, To GateID
}

// Circuit is a gate-level netlist.
type Circuit struct {
	Name  string
	Gates []Gate
	Edges []Edge
}

// NumGates returns G, the gate count.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumEdges returns |E|, the connection count.
func (c *Circuit) NumEdges() int { return len(c.Edges) }

// TotalBias returns B_cir = Σ b_i in mA.
func (c *Circuit) TotalBias() float64 {
	var s float64
	for _, g := range c.Gates {
		s += g.Bias
	}
	return s
}

// TotalArea returns A_cir = Σ a_i in mm².
func (c *Circuit) TotalArea() float64 {
	var s float64
	for _, g := range c.Gates {
		s += g.Area
	}
	return s
}

// Validate checks structural invariants: dense sequential IDs, unique names,
// edge endpoints in range, no self loops, non-negative bias/area.
func (c *Circuit) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("netlist: circuit has empty name")
	}
	names := make(map[string]GateID, len(c.Gates))
	for i, g := range c.Gates {
		if g.ID != GateID(i) {
			return fmt.Errorf("netlist: gate at index %d has ID %d (want dense IDs)", i, g.ID)
		}
		if g.Name == "" {
			return fmt.Errorf("netlist: gate %d has empty name", i)
		}
		if prev, dup := names[g.Name]; dup {
			return fmt.Errorf("netlist: duplicate gate name %q (gates %d and %d)", g.Name, prev, i)
		}
		names[g.Name] = g.ID
		if g.Bias < 0 {
			return fmt.Errorf("netlist: gate %q has negative bias %g", g.Name, g.Bias)
		}
		if g.Area < 0 {
			return fmt.Errorf("netlist: gate %q has negative area %g", g.Name, g.Area)
		}
	}
	n := GateID(len(c.Gates))
	for i, e := range c.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("netlist: edge %d (%d→%d) out of range [0,%d)", i, e.From, e.To, n)
		}
		if e.From == e.To {
			return fmt.Errorf("netlist: edge %d is a self loop on gate %d", i, e.From)
		}
	}
	return nil
}

// GateByName returns the gate with the given instance name.
func (c *Circuit) GateByName(name string) (Gate, bool) {
	for _, g := range c.Gates {
		if g.Name == name {
			return g, true
		}
	}
	return Gate{}, false
}

// Adjacency returns, for every gate, the IDs of all gates connected to it by
// any edge (in either direction). Neighbor lists are sorted and may contain
// duplicates if parallel edges exist (the cost function counts each
// connection separately, so duplicates are preserved).
func (c *Circuit) Adjacency() [][]GateID {
	adj := make([][]GateID, len(c.Gates))
	for _, e := range c.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	for _, l := range adj {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return adj
}

// OutEdges returns, for every gate, the indices into Edges of its outgoing
// connections.
func (c *Circuit) OutEdges() [][]int {
	out := make([][]int, len(c.Gates))
	for i, e := range c.Edges {
		out[e.From] = append(out[e.From], i)
	}
	return out
}

// InEdges returns, for every gate, the indices into Edges of its incoming
// connections.
func (c *Circuit) InEdges() [][]int {
	in := make([][]int, len(c.Gates))
	for i, e := range c.Edges {
		in[e.To] = append(in[e.To], i)
	}
	return in
}

// Degrees returns the (in, out) degree of every gate.
func (c *Circuit) Degrees() (in, out []int) {
	in = make([]int, len(c.Gates))
	out = make([]int, len(c.Gates))
	for _, e := range c.Edges {
		out[e.From]++
		in[e.To]++
	}
	return in, out
}

// TopoOrder returns a topological order of the gates, or an error if the
// circuit contains a directed cycle. SFQ-mapped combinational benchmarks are
// DAGs (clock edges are not modeled as data edges).
func (c *Circuit) TopoOrder() ([]GateID, error) {
	n := len(c.Gates)
	indeg := make([]int, n)
	succ := make([][]GateID, n)
	for _, e := range c.Edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	queue := make([]GateID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, GateID(i))
		}
	}
	order := make([]GateID, 0, n)
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		order = append(order, g)
		for _, s := range succ[g] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("netlist: circuit %q contains a directed cycle (%d of %d gates ordered)", c.Name, len(order), n)
	}
	return order, nil
}

// IsDAG reports whether the circuit's data edges form a directed acyclic
// graph.
func (c *Circuit) IsDAG() bool {
	_, err := c.TopoOrder()
	return err == nil
}

// Levels assigns every gate its longest-path depth from any primary input
// (gate with in-degree zero). Returns the per-gate level and the maximum
// level. Fails on cyclic circuits.
func (c *Circuit) Levels() ([]int, int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	lvl := make([]int, len(c.Gates))
	succ := make([][]GateID, len(c.Gates))
	for _, e := range c.Edges {
		succ[e.From] = append(succ[e.From], e.To)
	}
	maxLvl := 0
	for _, g := range order {
		for _, s := range succ[g] {
			if lvl[g]+1 > lvl[s] {
				lvl[s] = lvl[g] + 1
				if lvl[s] > maxLvl {
					maxLvl = lvl[s]
				}
			}
		}
	}
	return lvl, maxLvl, nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	cp := &Circuit{Name: c.Name}
	cp.Gates = make([]Gate, len(c.Gates))
	copy(cp.Gates, c.Gates)
	cp.Edges = make([]Edge, len(c.Edges))
	copy(cp.Edges, c.Edges)
	return cp
}

// Stats summarizes a circuit the way the paper's Table I header does,
// plus degree information useful for sanity checks.
type Stats struct {
	Name      string
	Gates     int
	Edges     int
	TotalBias float64 // B_cir, mA
	TotalArea float64 // A_cir, mm²
	MaxFanout int
	MaxFanin  int
	AvgBias   float64 // mA per gate
	AvgArea   float64 // mm² per gate
	Levels    int     // longest path length (0 if cyclic)
}

// ComputeStats derives Stats for the circuit.
func ComputeStats(c *Circuit) Stats {
	in, out := c.Degrees()
	s := Stats{
		Name:      c.Name,
		Gates:     c.NumGates(),
		Edges:     c.NumEdges(),
		TotalBias: c.TotalBias(),
		TotalArea: c.TotalArea(),
	}
	for i := range c.Gates {
		if out[i] > s.MaxFanout {
			s.MaxFanout = out[i]
		}
		if in[i] > s.MaxFanin {
			s.MaxFanin = in[i]
		}
	}
	if s.Gates > 0 {
		s.AvgBias = s.TotalBias / float64(s.Gates)
		s.AvgArea = s.TotalArea / float64(s.Gates)
	}
	if _, ml, err := c.Levels(); err == nil {
		s.Levels = ml
	}
	return s
}
