package netlist

import (
	"strings"
	"testing"
)

func TestSubcircuitBasic(t *testing.T) {
	c := chain(t) // g0→g1→g2→g3
	// Select the middle two gates.
	sub, idMap, bd, err := Subcircuit(c, "mid", []bool{false, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumGates() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("sub = %d gates, %d edges", sub.NumGates(), sub.NumEdges())
	}
	if sub.Gates[0].Name != "g1" || sub.Gates[1].Name != "g2" {
		t.Errorf("names = %s, %s", sub.Gates[0].Name, sub.Gates[1].Name)
	}
	if idMap[1] != 0 || idMap[2] != 1 {
		t.Errorf("idMap = %v", idMap)
	}
	if len(bd.In) != 1 || bd.In[0].From != 0 || bd.In[0].To != 1 {
		t.Errorf("boundary in = %v", bd.In)
	}
	if len(bd.Out) != 1 || bd.Out[0].From != 2 || bd.Out[0].To != 3 {
		t.Errorf("boundary out = %v", bd.Out)
	}
	// Bias/area carried over.
	if sub.TotalBias() != c.Gates[1].Bias+c.Gates[2].Bias {
		t.Error("bias not preserved")
	}
}

func TestSubcircuitErrors(t *testing.T) {
	c := chain(t)
	if _, _, _, err := Subcircuit(c, "x", []bool{true}); err == nil {
		t.Error("short selection accepted")
	}
	if _, _, _, err := Subcircuit(c, "x", make([]bool, 4)); err == nil ||
		!strings.Contains(err.Error(), "empty selection") {
		t.Errorf("empty selection: %v", err)
	}
}

func TestSubcircuitWholeCircuit(t *testing.T) {
	c := chain(t)
	all := []bool{true, true, true, true}
	sub, _, bd, err := Subcircuit(c, "all", all)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumGates() != c.NumGates() || sub.NumEdges() != c.NumEdges() {
		t.Error("whole-circuit extraction lost elements")
	}
	if len(bd.In) != 0 || len(bd.Out) != 0 {
		t.Error("whole-circuit extraction has boundary edges")
	}
}

// Property: for random selections of a chain, intra + boundary edges
// always partition the original edge set, and totals are conserved.
func TestSubcircuitPartitionsEdges(t *testing.T) {
	c := chain(t)
	c.Edges = append(c.Edges, Edge{0, 2}, Edge{1, 3})
	for mask := 1; mask < 15; mask++ { // skip empty and keep ≥1 selected
		sel := make([]bool, 4)
		n := 0
		for i := 0; i < 4; i++ {
			if mask>>i&1 == 1 {
				sel[i] = true
				n++
			}
		}
		sub, _, bd, err := Subcircuit(c, "s", sel)
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		outside := 0
		for _, e := range c.Edges {
			if !sel[e.From] && !sel[e.To] {
				outside++
			}
		}
		if sub.NumEdges()+len(bd.In)+len(bd.Out)+outside != c.NumEdges() {
			t.Fatalf("mask %b: edge partition broken: %d + %d + %d + %d != %d",
				mask, sub.NumEdges(), len(bd.In), len(bd.Out), outside, c.NumEdges())
		}
		if sub.NumGates() != n {
			t.Fatalf("mask %b: %d gates selected, %d extracted", mask, n, sub.NumGates())
		}
	}
}
