package netlist

import (
	"fmt"

	"gpp/internal/cellib"
)

// Builder constructs a Circuit incrementally, assigning dense gate IDs and
// pulling bias/area from a cell library. It is the single construction path
// used by generators and the technology mapper, so every produced circuit
// satisfies Validate by construction.
type Builder struct {
	name  string
	lib   *cellib.Library
	gates []Gate
	edges []Edge
	names map[string]GateID
	err   error
}

// NewBuilder creates a builder for a circuit with the given name, drawing
// cell properties from lib.
func NewBuilder(name string, lib *cellib.Library) *Builder {
	return &Builder{
		name:  name,
		lib:   lib,
		names: make(map[string]GateID),
	}
}

// AddCell adds an instance of the library cell with the given kind. The
// instance name must be unique. Returns the new gate's ID.
func (b *Builder) AddCell(instName string, kind cellib.Kind) GateID {
	cell, ok := b.lib.ByKind(kind)
	if !ok {
		b.fail(fmt.Errorf("netlist: library %q has no cell of kind %v", b.lib.Name(), kind))
		return -1
	}
	return b.addGate(instName, cell.Name, cell.Bias, cell.Area())
}

// AddGateRaw adds a gate with explicit bias/area, bypassing the library.
// Used by synthetic generators and by the DEF reader when a component
// references an unknown cell.
func (b *Builder) AddGateRaw(instName, cellName string, bias, area float64) GateID {
	return b.addGate(instName, cellName, bias, area)
}

func (b *Builder) addGate(instName, cellName string, bias, area float64) GateID {
	if b.err != nil {
		return -1
	}
	if instName == "" {
		b.fail(fmt.Errorf("netlist: empty instance name"))
		return -1
	}
	if _, dup := b.names[instName]; dup {
		b.fail(fmt.Errorf("netlist: duplicate instance name %q", instName))
		return -1
	}
	if bias < 0 || area < 0 {
		b.fail(fmt.Errorf("netlist: instance %q has negative bias/area", instName))
		return -1
	}
	id := GateID(len(b.gates))
	b.gates = append(b.gates, Gate{ID: id, Name: instName, Cell: cellName, Bias: bias, Area: area})
	b.names[instName] = id
	return id
}

// Connect adds a directed connection from the output of gate `from` to an
// input of gate `to`.
func (b *Builder) Connect(from, to GateID) {
	if b.err != nil {
		return
	}
	n := GateID(len(b.gates))
	if from < 0 || from >= n || to < 0 || to >= n {
		b.fail(fmt.Errorf("netlist: connect %d→%d out of range [0,%d)", from, to, n))
		return
	}
	if from == to {
		b.fail(fmt.Errorf("netlist: self loop on gate %d (%s)", from, b.gates[from].Name))
		return
	}
	b.edges = append(b.edges, Edge{From: from, To: to})
}

// ID returns the gate ID for an instance name added earlier.
func (b *Builder) ID(instName string) (GateID, bool) {
	id, ok := b.names[instName]
	return id, ok
}

// NumGates returns the number of gates added so far.
func (b *Builder) NumGates() int { return len(b.gates) }

// Err returns the first error encountered, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build finalizes the circuit. It returns an error if any earlier builder
// call failed or if the result fails validation.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	c := &Circuit{Name: b.name, Gates: b.gates, Edges: b.edges}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustBuild is Build for code paths (generators with fixed structure) where
// failure indicates a programming error.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic("netlist: MustBuild: " + err.Error())
	}
	return c
}
