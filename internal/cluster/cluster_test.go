package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// --- ring ---

func TestRingDeterministicAndComplete(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := newRing(nodes, 64)
	r2 := newRing(nodes, 64)
	if len(r1.points) != 3*64 {
		t.Fatalf("points = %d, want %d", len(r1.points), 3*64)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if o1, o2 := r1.owner(key), r2.owner(key); o1 != o2 {
			t.Fatalf("owner(%q) nondeterministic: %q vs %q", key, o1, o2)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(nodes, 64)
	counts := make(map[string]int)
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, node := range nodes {
		got := counts[node]
		// Fair share is 1000; vnode smoothing should keep each node
		// well inside a 2x band.
		if got < n/6 || got > n/2 {
			t.Errorf("node %s owns %d of %d keys, outside [%d,%d]", node, got, n, n/6, n/2)
		}
	}
}

func TestRingStabilityUnderNodeRemoval(t *testing.T) {
	all := []string{"http://a:1", "http://b:1", "http://c:1"}
	rAll := newRing(all, 64)
	rTwo := newRing(all[:2], 64)
	moved := 0
	const n = 1000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := rAll.owner(key)
		after := rTwo.owner(key)
		if before != "http://c:1" && before != after {
			moved++
		}
	}
	// Removing c must not reshuffle keys between a and b.
	if moved != 0 {
		t.Errorf("%d keys moved between surviving nodes after removal", moved)
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(nodes, 32)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		succ := r.successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("successors(%q,3) = %v, want 3 distinct nodes", key, succ)
		}
		if succ[0] != r.owner(key) {
			t.Fatalf("successors(%q)[0] = %q, owner = %q", key, succ[0], r.owner(key))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("successors(%q) repeats %q: %v", key, s, succ)
			}
			seen[s] = true
		}
	}
	// Asking for more nodes than exist caps at membership size.
	if got := r.successors("k", 10); len(got) != 3 {
		t.Fatalf("successors capped = %v, want 3", got)
	}
}

// --- breaker ---

func TestBreakerOpensAfterThreshold(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Second, 30*time.Second)
	if !b.allow(now) {
		t.Fatal("new breaker should allow")
	}
	if b.failure(now) {
		t.Fatal("1st failure should not open")
	}
	if b.failure(now) {
		t.Fatal("2nd failure should not open")
	}
	if !b.failure(now) {
		t.Fatal("3rd failure should open")
	}
	if b.allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker inside cooldown should fail fast")
	}
	// Cooldown elapsed: half-open probe allowed.
	if !b.allow(now.Add(1100 * time.Millisecond)) {
		t.Fatal("breaker should half-open after cooldown")
	}
	// Probe fails: cooldown doubles from the new failure time.
	b.failure(now.Add(1100 * time.Millisecond))
	if b.allow(now.Add(2 * time.Second)) {
		t.Fatal("cooldown should have doubled to 2s")
	}
	// Probe succeeds: snaps closed.
	b.success()
	if !b.allow(now) {
		t.Fatal("success should close the breaker")
	}
	if b.fails != 0 {
		t.Fatalf("fails = %d after success, want 0", b.fails)
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, time.Second, 8*time.Second)
	for i := 0; i < 40; i++ {
		b.failure(now)
	}
	if !b.allow(now.Add(8*time.Second + time.Millisecond)) {
		t.Fatal("cooldown should be capped at max")
	}
	if b.allow(now.Add(7 * time.Second)) {
		t.Fatal("cooldown should be the full max")
	}
}

// --- config / membership ---

func TestNormalizeURL(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8080":        "http://127.0.0.1:8080",
		"http://host:1/":        "http://host:1",
		" https://host:2 ":      "https://host:2",
		"http://HOST.example:3": "http://HOST.example:3",
	}
	for in, want := range cases {
		got, err := NormalizeURL(in)
		if err != nil {
			t.Fatalf("NormalizeURL(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("NormalizeURL(%q) = %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"", "ftp://host:1", "http://", "http://host:1/path"} {
		if _, err := NormalizeURL(bad); err == nil {
			t.Errorf("NormalizeURL(%q) should fail", bad)
		}
	}
}

func TestNewFiltersSelfAndDups(t *testing.T) {
	c, err := New(Config{
		Self:  "127.0.0.1:9001",
		Peers: []string{"http://127.0.0.1:9001", "127.0.0.1:9002", "http://127.0.0.1:9002/", "127.0.0.1:9003"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Self(); got != "http://127.0.0.1:9001" {
		t.Fatalf("Self = %q", got)
	}
	if n := len(c.Nodes()); n != 3 {
		t.Fatalf("membership = %v, want 3 nodes", c.Nodes())
	}
	if _, err := New(Config{Self: "h:1", Peers: []string{"h:1"}}); err == nil {
		t.Fatal("self-only membership should be rejected")
	}
}

func TestOwnerAgreesAcrossNodes(t *testing.T) {
	members := []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"}
	var views []*Cluster
	for i, self := range members {
		peers := append(append([]string{}, members[:i]...), members[i+1:]...)
		c, err := New(Config{Self: self, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		views = append(views, c)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("sha-%d", i)
		owner0, _ := views[0].Owner(key)
		for _, v := range views[1:] {
			if o, _ := v.Owner(key); o != owner0 {
				t.Fatalf("views disagree on owner(%q): %q vs %q", key, owner0, o)
			}
		}
	}
}

// --- heartbeats, fetch, breaker integration over real HTTP ---

func TestHeartbeatAndFetchBlob(t *testing.T) {
	var pings atomic.Int64
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/cluster/ping":
			pings.Add(1)
			fmt.Fprintf(w, `{"node":"me","draining":false,"queue_depth":2,"inflight":0}`)
		case r.URL.Path == "/v1/cluster/blob/havekey":
			w.Write([]byte(`{"labels":[0,1],"body":{}}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer peerSrv.Close()

	c, err := New(Config{
		Self:           "127.0.0.1:59999",
		Peers:          []string{peerSrv.URL},
		HeartbeatEvery: 20 * time.Millisecond,
		ReadReplicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Start()

	deadline := time.Now().Add(2 * time.Second)
	for c.PeersAlive() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer never became alive via heartbeat")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !c.Alive(peerSrv.URL) {
		t.Fatal("Alive(peer) = false after successful heartbeat")
	}
	targets := c.StealTargets()
	if len(targets) != 1 || targets[0] != peerSrv.URL {
		t.Fatalf("StealTargets = %v, want [%s]", targets, peerSrv.URL)
	}

	ctx := context.Background()
	if data, from, ok := c.FetchBlob(ctx, "havekey"); !ok || from != peerSrv.URL || len(data) == 0 {
		t.Fatalf("FetchBlob(havekey) = %q from %q ok=%v", data, from, ok)
	}
	if _, _, ok := c.FetchBlob(ctx, "nokey"); ok {
		t.Fatal("FetchBlob(nokey) should miss")
	}
	if pings.Load() == 0 {
		t.Fatal("no pings recorded")
	}
}

func TestBreakerTripsOnDeadPeerAndDegrades(t *testing.T) {
	peerSrv := httptest.NewServer(http.NotFoundHandler())
	dead := peerSrv.URL
	peerSrv.Close() // connection refused from here on

	c, err := New(Config{
		Self:             "127.0.0.1:59998",
		Peers:            []string{dead},
		FailureThreshold: 2,
		BackoffBase:      time.Hour, // stays open for the whole test
		PeerTimeout:      200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, ok := c.FetchBlob(ctx, "k"); ok {
			t.Fatal("fetch from dead peer should fail")
		}
	}
	if c.Alive(dead) {
		t.Fatal("dead peer should not be alive")
	}
	// Breaker now open: the read path is empty, so the fetch degrades to
	// an instant miss instead of another timed-out dial.
	if got := c.ReadPath("k"); len(got) != 0 {
		t.Fatalf("ReadPath with open breaker = %v, want empty", got)
	}
	start := time.Now()
	if _, _, ok := c.FetchBlob(ctx, "k"); ok {
		t.Fatal("fetch should still miss")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("breaker-open fetch took %v, want fail-fast", d)
	}
}

func TestStealAndCompleteWire(t *testing.T) {
	var gotThief atomic.Value
	var completed atomic.Int64
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/cluster/steal":
			var req struct {
				Thief string `json:"thief"`
			}
			if err := jsonDecode(r, &req); err != nil {
				w.WriteHeader(400)
				return
			}
			gotThief.Store(req.Thief)
			if completed.Load() > 0 { // nothing left after first grant
				w.WriteHeader(http.StatusNoContent)
				return
			}
			w.Write([]byte(`{"id":"j1","remaining_ms":1000}`))
		case "/v1/cluster/complete":
			completed.Add(1)
			w.WriteHeader(http.StatusOK)
		default:
			http.NotFound(w, r)
		}
	}))
	defer owner.Close()

	c, err := New(Config{Self: "127.0.0.1:59997", Peers: []string{owner.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	grant, ok := c.Steal(ctx, owner.URL)
	if !ok || len(grant) == 0 {
		t.Fatalf("Steal = %q ok=%v", grant, ok)
	}
	if th, _ := gotThief.Load().(string); th != c.Self() {
		t.Fatalf("owner saw thief %q, want %q", th, c.Self())
	}
	if err := c.Complete(ctx, owner.URL, []byte(`{"id":"j1"}`)); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if _, ok := c.Steal(ctx, owner.URL); ok {
		t.Fatal("204 steal should report no work")
	}
}

func jsonDecode(r *http.Request, v any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(v)
}
