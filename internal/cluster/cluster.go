// Package cluster is the stdlib-only clustering layer for gpp-serve: a
// static-membership, shared-nothing cluster in which any node accepts any
// request and the nodes cooperate through three mechanisms, all speaking
// the daemon's existing HTTP/JSON wire format:
//
//   - Consistent-hash routing. Every job's cache key (the content address
//     of its circuit + normalized options) hashes onto a ring of nodes;
//     the node owning that arc is where the job runs and where its result
//     lives. A submission landing anywhere else is transparently proxied
//     to the owner, so clients need no routing logic and identical
//     requests always converge on one solve.
//
//   - Peer cache read-through. Result-cache keys are deterministic and
//     byte-identical at any worker count, so a cache hit anywhere is a
//     hit everywhere: a node missing locally consults the key's owner and
//     up to ReadReplicas ring successors before solving, and persists a
//     fetched blob into its own store so the hit is durable locally.
//
//   - Work stealing. An idle node polls busy peers for queued jobs; the
//     owner hands a job over through a WAL-journaled handoff record, the
//     thief solves it and posts the result back, and a lease timer
//     reclaims the job if the thief dies — exactly one completion is
//     recorded under the original job id either way.
//
// Failure handling is defensive everywhere: every peer has a circuit
// breaker with exponential-backoff cooldowns, peers are health-checked by
// periodic heartbeats, and any peer operation that fails degrades to
// single-node behavior (solve locally, skip the peer) rather than
// surfacing an error to the client.
//
// This package owns membership, the ring, breakers, heartbeats, and the
// client side of the node-to-node endpoints; the server side (the
// /v1/cluster/* handlers, the steal/reclaim loops, the journal records)
// lives in internal/serve, which composes a Cluster into the daemon.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"gpp/internal/obs"
)

// ForwardedHeader marks a node-to-node proxied submission; a receiving
// node never re-forwards a request carrying it, which is what keeps
// routing loops impossible even with inconsistent peer configs.
const ForwardedHeader = "X-Gpp-Forwarded"

// RoutedHeader names the owner a submission was proxied to, set on the
// response the originating node relays back to the client.
const RoutedHeader = "X-Gpp-Routed-To"

// Config is the static cluster membership plus the tuning knobs. The zero
// value of every knob means its default; Self and Peers are required for
// a cluster to exist at all (serve treats a nil/empty config as
// single-node mode).
type Config struct {
	// Self is this node's advertised base URL (scheme://host:port) — the
	// identity peers know it by. It must match the URL in the peers'
	// configs byte-for-byte after normalization.
	Self string

	// Peers are the other nodes' base URLs. Self is filtered out if
	// present, so every node can share one literal membership list.
	Peers []string

	// ReadReplicas is how many ring successors (beyond the owner) a cache
	// read-through consults. Default 1.
	ReadReplicas int

	// HeartbeatEvery is the peer health-check period. Default 2s.
	HeartbeatEvery time.Duration

	// StealEvery is how often an idle node polls busy peers for queued
	// jobs. Default 1s.
	StealEvery time.Duration

	// StealLease is how long a stolen job may stay out before its owner
	// reclaims and re-enqueues it. Default 30s.
	StealLease time.Duration

	// PeerTimeout bounds every node-to-node request. Default 3s.
	PeerTimeout time.Duration

	// FailureThreshold is how many consecutive failures open a peer's
	// circuit breaker. Default 3.
	FailureThreshold int

	// BackoffBase and BackoffMax bound the breaker cooldown: the first
	// open lasts BackoffBase and doubles per further failure up to
	// BackoffMax. Defaults 500ms and 30s.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// VirtualNodes is the ring points per node. Default 64.
	VirtualNodes int
}

func (c Config) withDefaults() Config {
	if c.ReadReplicas <= 0 {
		c.ReadReplicas = 1
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.StealEvery <= 0 {
		c.StealEvery = time.Second
	}
	if c.StealLease <= 0 {
		c.StealLease = 30 * time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 3 * time.Second
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 30 * time.Second
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	return c
}

// NormalizeURL canonicalizes a node URL: https?://host[:port], no path,
// no trailing slash; a bare host:port gets http://.
func NormalizeURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("cluster: empty node URL")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("cluster: node URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: node URL %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: node URL %q: missing host", raw)
	}
	if u.Path != "" && u.Path != "/" {
		return "", fmt.Errorf("cluster: node URL %q: must not have a path", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// peer is one remote node's live state: its breaker plus what the last
// heartbeat reported. alive/queueDepth are refreshed by the heartbeat
// loop and read by routing and steal targeting under c.mu.
type peer struct {
	url        string
	brk        *breaker
	alive      bool
	draining   bool
	queueDepth int
	lastSeen   time.Time
}

// Cluster is one node's view of the membership: the ring, the peers'
// breakers and health, and the client side of every node-to-node call.
type Cluster struct {
	cfg    Config
	self   string
	ring   *ring
	client *http.Client

	mu    sync.Mutex
	peers map[string]*peer // url → state; never includes self

	hbOnce   sync.Once
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New validates and normalizes the membership and builds the cluster.
// Heartbeats do not start until Start.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	self, err := NormalizeURL(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %w", err)
	}
	members := []string{self}
	peers := make(map[string]*peer)
	for _, p := range cfg.Peers {
		u, err := NormalizeURL(p)
		if err != nil {
			return nil, err
		}
		if u == self {
			continue
		}
		if _, dup := peers[u]; dup {
			continue
		}
		peers[u] = &peer{
			url: u,
			brk: newBreaker(cfg.FailureThreshold, cfg.BackoffBase, cfg.BackoffMax),
		}
		members = append(members, u)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers besides self %s", self)
	}
	return &Cluster{
		cfg:    cfg,
		self:   self,
		ring:   newRing(members, cfg.VirtualNodes),
		client: &http.Client{Timeout: cfg.PeerTimeout},
		peers:  peers,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// Self returns this node's normalized advertised URL.
func (c *Cluster) Self() string { return c.self }

// Config returns the normalized configuration (defaults filled).
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the full membership (self included), ring input order.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.ring.nodes...) }

// Owner returns the node owning key and whether that node is this one.
func (c *Cluster) Owner(key string) (node string, self bool) {
	node = c.ring.owner(key)
	return node, node == c.self
}

// ReadPath returns the peers a cache read-through for key should consult,
// in order: the key's owner first, then up to ReadReplicas ring
// successors. Self is excluded (the caller already missed locally), as
// are peers whose breaker is open.
func (c *Cluster) ReadPath(key string) []string {
	cand := c.ring.successors(key, 1+c.cfg.ReadReplicas)
	now := time.Now()
	out := cand[:0]
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range cand {
		if n == c.self {
			continue
		}
		if p := c.peers[n]; p != nil && p.brk.allow(now) {
			out = append(out, n)
		}
	}
	return out
}

// Alive reports whether a node looks routable: self always is; a peer is
// when its last heartbeat succeeded, it was not draining, and its breaker
// is closed.
func (c *Cluster) Alive(node string) bool {
	if node == c.self {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[node]
	return ok && p.alive && !p.draining && p.brk.allow(time.Now())
}

// StealTargets returns the alive peers ordered by reported queue depth,
// deepest first — the nodes most worth stealing from. Peers with an empty
// queue at last heartbeat are excluded.
func (c *Cluster) StealTargets() []string {
	c.mu.Lock()
	type cand struct {
		url   string
		depth int
	}
	now := time.Now()
	var cands []cand
	for _, p := range c.peers {
		if p.alive && !p.draining && p.queueDepth > 0 && p.brk.allow(now) {
			cands = append(cands, cand{p.url, p.queueDepth})
		}
	}
	c.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].depth != cands[j].depth {
			return cands[i].depth > cands[j].depth
		}
		return cands[i].url < cands[j].url
	})
	out := make([]string, len(cands))
	for i, cd := range cands {
		out[i] = cd.url
	}
	return out
}

// PeersAlive counts peers whose last heartbeat succeeded.
func (c *Cluster) PeersAlive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.peers {
		if p.alive {
			n++
		}
	}
	return n
}

// Start launches the heartbeat loop (idempotent). The first sweep runs
// immediately so a freshly booted node learns its peers without waiting a
// full period.
func (c *Cluster) Start() {
	c.hbOnce.Do(func() {
		go func() {
			defer close(c.done)
			c.sweep()
			t := time.NewTicker(c.cfg.HeartbeatEvery)
			defer t.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-t.C:
					c.sweep()
				}
			}
		}()
	})
}

// Close stops the heartbeat loop. Idempotent; safe if Start never ran.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	select {
	case <-c.done:
	default:
		c.hbOnce.Do(func() { close(c.done) }) // Start never ran; nothing to wait for
		<-c.done
	}
}

// pingBody mirrors the serve daemon's GET /v1/cluster/ping document.
type pingBody struct {
	Node       string `json:"node"`
	Draining   bool   `json:"draining"`
	QueueDepth int    `json:"queue_depth"`
	Inflight   int64  `json:"inflight"`
}

// sweep heartbeats every peer once and refreshes the alive gauge.
func (c *Cluster) sweep() {
	for _, u := range c.peerURLs() {
		c.heartbeat(u)
	}
	mPeersAlive.Set(float64(c.PeersAlive()))
}

func (c *Cluster) peerURLs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.peers))
	for u := range c.peers {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func (c *Cluster) heartbeat(u string) {
	mHeartbeats.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PeerTimeout)
	defer cancel()
	var pb pingBody
	err := c.getJSON(ctx, u, "/v1/cluster/ping", &pb)
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.peers[u]
	if p == nil {
		return
	}
	if err != nil {
		mHeartbeatFailures.Inc()
		p.alive = false
		p.queueDepth = 0
		return
	}
	p.alive = true
	p.draining = pb.Draining
	p.queueDepth = pb.QueueDepth
	p.lastSeen = time.Now()
}

// do runs one node-to-node request with breaker accounting: an open
// breaker fails fast, a transport error counts against the breaker, any
// HTTP response (status irrelevant — the peer is alive) counts as
// success. The caller owns resp.Body.
func (c *Cluster) do(req *http.Request, peerURL string) (*http.Response, error) {
	now := time.Now()
	c.mu.Lock()
	p := c.peers[peerURL]
	c.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("cluster: unknown peer %s", peerURL)
	}
	if !p.brk.allow(now) {
		return nil, fmt.Errorf("cluster: peer %s breaker open", peerURL)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if p.brk.failure(time.Now()) {
			mBreakerOpens.Inc()
		}
		c.mu.Lock()
		p.alive = false
		c.mu.Unlock()
		return nil, err
	}
	p.brk.success()
	return resp, nil
}

func (c *Cluster) getJSON(ctx context.Context, peerURL, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req, peerURL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: GET %s%s: %s", peerURL, path, resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
}

// blobMaxBytes bounds a fetched result blob; result documents are a few
// hundred KB at million-gate scale (labels dominate), so 64 MiB is
// generous headroom while still refusing a pathological peer.
const blobMaxBytes = 64 << 20

// FetchBlob is the peer read-through: it walks key's ReadPath and returns
// the first peer's blob bytes (the serve cacheBlob document). ok is false
// when no consulted peer had the key.
func (c *Cluster) FetchBlob(ctx context.Context, key string) (data []byte, from string, ok bool) {
	for _, peerURL := range c.ReadPath(key) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL+"/v1/cluster/blob/"+key, nil)
		if err != nil {
			continue
		}
		resp, err := c.do(req, peerURL)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, blobMaxBytes))
		resp.Body.Close()
		if err != nil || len(raw) == 0 {
			continue
		}
		mBlobFetchHits.Inc()
		return raw, peerURL, true
	}
	mBlobFetchMisses.Inc()
	return nil, "", false
}

// Steal asks one peer for a queued job. It returns the peer's handoff
// grant document; ok is false when the peer had nothing to give (204) or
// the request failed.
func (c *Cluster) Steal(ctx context.Context, peerURL string) (grant []byte, ok bool) {
	body, err := json.Marshal(map[string]string{"thief": c.self})
	if err != nil {
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peerURL+"/v1/cluster/steal", bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req, peerURL)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, blobMaxBytes))
	if err != nil || len(raw) == 0 {
		return nil, false
	}
	return raw, true
}

// Complete posts a stolen job's result back to its owner. A 2xx from the
// owner — including "already finished, ignored" — is success.
func (c *Cluster) Complete(ctx context.Context, ownerURL string, doc []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ownerURL+"/v1/cluster/complete", bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req, ownerURL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: complete on %s: %s: %s", ownerURL, resp.Status, raw)
	}
	return nil
}

// Forward proxies a submission body to the owner node, marked with the
// forwarded header so the owner handles it locally. The caller relays the
// response (and owns its body).
func (c *Cluster) Forward(ctx context.Context, ownerURL string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ownerURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.self)
	return c.do(req, ownerURL)
}

// Cluster metrics, on the shared process registry like every other
// subsystem so one /metrics scrape covers the node's whole stack.
var (
	mPeersAlive = obs.Default().Gauge("gpp_cluster_peers_alive",
		"peers whose last heartbeat succeeded")
	mHeartbeats = obs.Default().Counter("gpp_cluster_heartbeats_total",
		"peer heartbeat probes sent")
	mHeartbeatFailures = obs.Default().Counter("gpp_cluster_heartbeat_failures_total",
		"peer heartbeat probes that failed")
	mBreakerOpens = obs.Default().Counter("gpp_cluster_breaker_opens_total",
		"peer circuit breakers tripped open")
	mBlobFetchHits = obs.Default().Counter("gpp_cluster_blob_fetch_hits_total",
		"peer read-throughs that found the blob on a peer")
	mBlobFetchMisses = obs.Default().Counter("gpp_cluster_blob_fetch_misses_total",
		"peer read-throughs that exhausted the read path empty-handed")
)
