package cluster

import (
	"sync"
	"time"
)

// breaker is a per-peer circuit breaker: after Threshold consecutive
// failures the breaker opens and calls fail fast for a cooldown that
// doubles with each further failure (capped), so a dead peer costs one
// timed-out request per cooldown instead of one per operation. Any
// success snaps the breaker closed.
//
// The half-open probe is implicit: once the cooldown elapses, Allow
// returns true again and the next real request is the probe — its
// outcome either closes the breaker or doubles the cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures before opening
	base      time.Duration // first cooldown
	max       time.Duration // cooldown ceiling
	fails     int
	openUntil time.Time
}

func newBreaker(threshold int, base, max time.Duration) *breaker {
	return &breaker{threshold: threshold, base: base, max: max}
}

// allow reports whether a request may go out now: breaker closed, or the
// cooldown of an open breaker has elapsed (the half-open probe).
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.After(b.openUntil) || b.openUntil.IsZero()
}

// success closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// failure records one failed request; it returns true when this failure
// opened (or re-opened) the breaker, for metrics.
func (b *breaker) failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails < b.threshold {
		return false
	}
	cool := b.base << uint(min(b.fails-b.threshold, 16))
	if cool > b.max || cool <= 0 {
		cool = b.max
	}
	b.openUntil = now.Add(cool)
	return b.fails == b.threshold
}

// open reports whether the breaker currently fails fast.
func (b *breaker) open(now time.Time) bool {
	return !b.allow(now)
}
