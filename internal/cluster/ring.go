package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Consistent-hash ring over the cluster membership. Every node is
// projected onto the ring at VirtualNodes points (hash of "url#i"), and a
// cache key's owner is the node at the first ring point clockwise of the
// key's hash. Virtual nodes smooth the key distribution: with 64 vnodes
// per node a 3-node ring assigns each node 33%±a few percent of the key
// space, and removing a node moves only that node's arcs — the other
// nodes' assignments are untouched, which is what makes the routing
// stable under single-node failures.
//
// The ring is immutable after construction (membership is static
// configuration), so lookups are lock-free binary searches.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct members in input order
}

type ringPoint struct {
	hash uint64
	node string
}

// hashPoint maps an arbitrary string onto the ring's key space: the first
// 8 bytes of its sha256, big-endian. sha256 rather than a fast
// non-cryptographic hash because ring placement is configuration-time
// work, and the same digest already names blobs everywhere else.
func hashPoint(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring over nodes (deduplicated, order preserved) with
// vnodes virtual points each.
func newRing(nodes []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	for _, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: hashPoint(n + "#" + itoa(i)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node // total order: ties break by name
	})
	return r
}

// itoa avoids strconv for the two-digit vnode suffix hot path at build
// time; plain and allocation-light.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// owner returns the node owning key: the first ring point at or clockwise
// of the key's hash, wrapping at the top.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// successors returns up to n distinct nodes in ring order starting at
// key's owner — the owner itself first, then the replica candidates a
// read-through consults after it.
func (r *ring) successors(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for off := 0; off < len(r.points) && len(out) < n; off++ {
		p := r.points[(i+off)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
