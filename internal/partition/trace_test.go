package partition

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/obs"
)

func traceProblem(t testing.TB, circuit string, k int) *Problem {
	t.Helper()
	c, err := gen.Benchmark(circuit, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromCircuit(c, k)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSolveTraceEvents checks the shape of a single-solve trace: the
// bracketing events, one iter event per performed gradient update, and
// payloads that agree with the returned Result.
func TestSolveTraceEvents(t *testing.T) {
	p := traceProblem(t, "KSA4", 5)
	buf := &obs.Buffer{}
	res, err := p.Solve(Options{Seed: 1, MaxIters: 40, Refine: true, Workers: 1, Tracer: buf})
	if err != nil {
		t.Fatal(err)
	}
	evs := buf.Events
	if len(evs) < 4 {
		t.Fatalf("only %d events traced", len(evs))
	}
	if evs[0].Kind != obs.KindSolveStart || evs[1].Kind != obs.KindPool {
		t.Fatalf("trace must open with solve_start, pool; got %s, %s", evs[0].Kind, evs[1].Kind)
	}
	if evs[0].Seed != 1 || evs[0].Gates != p.G || evs[0].K != p.K || evs[0].Edges != len(p.Edges) {
		t.Errorf("solve_start payload wrong: %+v", evs[0])
	}
	var iters, refines int
	var snap, done *obs.Event
	for i := range evs {
		switch evs[i].Kind {
		case obs.KindIter:
			if evs[i].Iter != iters {
				t.Fatalf("iter events out of order: got %d, want %d", evs[i].Iter, iters)
			}
			iters++
		case obs.KindRefine:
			refines++
		case obs.KindSnap:
			snap = &evs[i]
		case obs.KindSolveDone:
			done = &evs[i]
		}
	}
	if iters != res.Iters {
		t.Errorf("traced %d iter events, result says %d iterations", iters, res.Iters)
	}
	if snap == nil {
		t.Error("no snap event")
	}
	if refines == 0 {
		t.Error("no refine events despite Refine: true")
	}
	if done == nil {
		t.Fatal("no solve_done event")
	} else if done.Iters != res.Iters || done.Converged != res.Converged ||
		done.FRelaxed != res.Relaxed.Total || done.FDiscrete != res.Discrete.Total ||
		done.RefineMoves != res.RefineMoves {
		t.Errorf("solve_done disagrees with Result:\nevent  %+v\nresult iters=%d conv=%v relaxed=%v discrete=%v moves=%d",
			done, res.Iters, res.Converged, res.Relaxed.Total, res.Discrete.Total, res.RefineMoves)
	}
	if last := evs[len(evs)-1]; last.Kind != obs.KindSolveDone {
		t.Errorf("trace must close with solve_done, got %s", last.Kind)
	}
}

func manyWorkers() int {
	w := runtime.NumCPU()
	if w < 4 {
		w = 4
	}
	return w
}

// TestSolveTraceWorkersDeterminism: the rendered JSONL trace of a Table-I
// circuit is byte-identical for Workers=1 and Workers=N — the property that
// makes traces diffable across machines and parallelism settings.
func TestSolveTraceWorkersDeterminism(t *testing.T) {
	render := func(workers int) string {
		p := traceProblem(t, "KSA4", 5)
		var out bytes.Buffer
		sink := obs.NewJSONL(&out)
		if _, err := p.Solve(Options{Seed: 7, MaxIters: 60, Refine: true, Workers: workers, Tracer: sink}); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial, parallel := render(1), render(manyWorkers())
	if serial != parallel {
		t.Errorf("trace differs between Workers=1 and Workers=%d", manyWorkers())
	}
	if !strings.Contains(serial, `"ev":"iter"`) {
		t.Fatalf("trace unexpectedly empty:\n%s", serial)
	}
}

// TestPortfolioTraceWorkersDeterminism: concurrent restarts buffer their
// events and replay in seed order, so even a raced portfolio renders a
// byte-identical trace at every portfolio worker count.
func TestPortfolioTraceWorkersDeterminism(t *testing.T) {
	render := func(workers int) string {
		p := traceProblem(t, "KSA4", 5)
		var out bytes.Buffer
		sink := obs.NewJSONL(&out)
		pf, err := p.SolvePortfolio(context.Background(),
			Options{Seed: 1, MaxIters: 30, Workers: 1, Tracer: sink},
			PortfolioOptions{Restarts: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		// The winner event must match the deterministic selection.
		evs, err := obs.ReadTrace(strings.NewReader(out.String()))
		if err != nil {
			t.Fatal(err)
		}
		last := evs[len(evs)-1]
		if last.Kind != obs.KindWinner || last.Seed != pf.BestSeed {
			t.Fatalf("winner event %+v disagrees with BestSeed %d", last, pf.BestSeed)
		}
		return out.String()
	}
	serial, parallel := render(1), render(manyWorkers())
	if serial != parallel {
		t.Errorf("portfolio trace differs between Workers=1 and Workers=%d", manyWorkers())
	}
	for _, want := range []string{`"ev":"restart_start","restart":0,"seed":1`, `"restart":2,"seed":3`, `"ev":"winner"`} {
		if !strings.Contains(serial, want) {
			t.Errorf("portfolio trace missing %s", want)
		}
	}
}

// TestPortfolioTraceCancellation: a cancelled portfolio still renders a
// complete story — skipped restarts appear as restart_skipped events.
func TestPortfolioTraceCancellation(t *testing.T) {
	p := traceProblem(t, "KSA4", 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any restart starts
	buf := &obs.Buffer{}
	_, err := p.SolvePortfolio(ctx, Options{Seed: 1, MaxIters: 10, Tracer: buf},
		PortfolioOptions{Restarts: 3, Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	skipped := 0
	for _, e := range buf.Events {
		if e.Kind == obs.KindRestartSkipped {
			skipped++
		}
	}
	if skipped != 3 {
		t.Errorf("traced %d restart_skipped events, want 3 (events: %v)", skipped, buf.Events)
	}
}

// errTracer reports a latched sink failure, like a JSONL sink whose disk
// filled up.
type errTracer struct{}

func (errTracer) Emit(obs.Event) {}
func (errTracer) Err() error     { return errors.New("disk full") }

// TestSolveTraceSinkErrorSurfaced: a sink write failure comes back through
// the solver's normal error path instead of being silently dropped.
func TestSolveTraceSinkErrorSurfaced(t *testing.T) {
	p := traceProblem(t, "KSA4", 5)
	_, err := p.Solve(Options{Seed: 1, MaxIters: 5, Workers: 1, Tracer: errTracer{}})
	if err == nil || !strings.Contains(err.Error(), "trace sink") || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Solve err = %v, want trace-sink error", err)
	}
	_, err = p.SolvePortfolio(context.Background(),
		Options{Seed: 1, MaxIters: 5, Workers: 1, Tracer: errTracer{}},
		PortfolioOptions{Restarts: 2, Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "trace sink") {
		t.Fatalf("SolvePortfolio err = %v, want trace-sink error", err)
	}
}

// TestSolveIterationPathAllocFree is the tier-1 guard for design constraint
// №1 of internal/obs: with tracing off, the descent loop performs zero
// allocations per iteration — at every worker count, now that dispatches go
// through the persistent group (one channel send per worker, no goroutine
// spawns). Two solves differing only in iteration count must allocate
// exactly the same — every allocation is per-solve setup.
func TestSolveIterationPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p := traceProblem(t, "KSA4", 5)
	counts := []int{1, 2, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, workers := range counts {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			solve := func(maxIters int) func() {
				return func() {
					// A margin no real cost ratio reaches keeps the loop
					// running for exactly maxIters iterations.
					if _, err := p.Solve(Options{Seed: 1, MaxIters: maxIters, Margin: 1e-300, Workers: workers}); err != nil {
						t.Fatal(err)
					}
				}
			}
			short := testing.AllocsPerRun(5, solve(10))
			long := testing.AllocsPerRun(5, solve(110))
			if long != short {
				t.Errorf("iteration path allocates: %.1f allocs at 10 iters vs %.1f at 110 (+%.2f per iteration)",
					short, long, (long-short)/100)
			}
		})
	}
}

// TestSolveSetupAllocBudget pins the per-solve setup allocation count at
// Workers = 1 (PR 7 measured 31; the fused-kernel rewrite brought it to
// 12: result + W + labels + scratch struct/slab/bool-slab/clamp/dispatch
// closure + a handful in metrics/assign). The budget is a ceiling, not an
// exact match, so incidental library changes don't flake it — but a
// regression back toward the old per-pass-closure count fails loudly.
func TestSolveSetupAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p := traceProblem(t, "KSA4", 5)
	budgets := []struct {
		name string
		opts Options
		max  float64
	}{
		{"workers=1", Options{Seed: 1, MaxIters: 50, Margin: 1e-300, Workers: 1}, 14},
		{"workers=1/float32", Options{Seed: 1, MaxIters: 50, Margin: 1e-300, Workers: 1, Precision: Precision32}, 16},
	}
	for _, b := range budgets {
		b := b
		t.Run(b.name, func(t *testing.T) {
			got := testing.AllocsPerRun(10, func() {
				if _, err := p.Solve(b.opts); err != nil {
					t.Fatal(err)
				}
			})
			if got > b.max {
				t.Errorf("solve performed %.1f allocations, budget is %.0f", got, b.max)
			}
		})
	}
}
