package partition

import (
	"io"
	"testing"

	"gpp/internal/gen"
	"gpp/internal/obs"
)

// benchmarkSolveTrace measures a fixed-length descent (Margin too small to
// converge, so every run performs exactly MaxIters iterations) under a given
// tracer. Comparing TraceOff against TraceNop bounds the cost of the
// instrumentation hooks themselves; TraceJSONL adds encoding and writing.
func benchmarkSolveTrace(b *testing.B, tracer obs.Tracer) {
	c, err := gen.Benchmark("KSA8", nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := FromCircuit(c, 5)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Seed: 1, MaxIters: 50, Margin: 1e-300, Workers: 1, Tracer: tracer}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveTraceOff(b *testing.B)   { benchmarkSolveTrace(b, nil) }
func BenchmarkSolveTraceNop(b *testing.B)   { benchmarkSolveTrace(b, obs.Nop()) }
func BenchmarkSolveTraceJSONL(b *testing.B) { benchmarkSolveTrace(b, obs.NewJSONL(io.Discard)) }
