package partition

import "gpp/internal/pool"

// Float32 compute tier (Options.Precision = Precision32; DESIGN.md §15).
//
// The tier stores only the assignment matrix (and the momentum velocity)
// in float32 — everything derived from it (labels, row sums, per-plane
// sums, edge cubes, cost partials, gradients) is computed and accumulated
// in float64, exactly like the default tier. W uses a structure-of-arrays
// layout, column-major: w32[k*G+i] is w_{i,k}. The gate sweep then walks
// one contiguous plane column at a time over each gate shard's 256-row
// block, so the block (K columns × 256 float32s) stays resident in L1
// across all K passes, and the per-row F4 finish re-reads it from there.
//
// Precision policy: each kernel widens a stored w entry to float64 once,
// does all arithmetic in float64, and the update narrows the new value to
// float32 once per entry per iteration. That single rounding point is why
// the tier's results differ from the float64 kernel (and why Precision is
// folded into Fingerprint), while the float64 accumulators keep the
// reductions well-conditioned. Determinism is inherited from the same
// shard decomposition and shard-order merges as the default tier: every
// Workers count produces bitwise identical float32 results.
//
// The incremental planner (incremental.go) works unchanged on this tier —
// gradUpdate32Shard maintains the same per-shard dirty flags, and a
// skipped shard's stored float64 partials are reused identically.

// fusedGate32Shard is the float32/SoA analogue of fusedGateShardBlocked:
// labels, row sums, per-plane bias/area partials, and the F4 partial of
// one gate shard, all accumulated in float64.
func (p *Problem) fusedGate32Shard(sc *scratch, s int) {
	w32 := sc.w32
	G, K := p.G, p.K
	lo, hi := pool.ShardRange(G, gateChunk, s)
	pb := sc.partB[s*K : (s+1)*K]
	pa := sc.partA[s*K : (s+1)*K]
	l := sc.l[lo:hi]
	rsum := sc.rsum[lo:hi]
	bias := p.Bias[lo:hi]
	area := p.Area[lo:hi]
	for i := range l {
		l[i], rsum[i] = 0, 0
	}
	for k := 0; k < K; k++ {
		kf := float64(k + 1)
		var pbk, pak float64
		col := w32[k*G+lo : k*G+hi]
		for i, v32 := range col {
			v := float64(v32)
			l[i] += kf * v
			rsum[i] += v
			pbk += bias[i] * v
			pak += area[i] * v
		}
		pb[k], pa[k] = pbk, pak
	}
	invK := 1.0 / float64(K)
	var f4 float64
	for i := range l {
		rowSum := rsum[i]
		mean := rowSum * invK
		t1 := rowSum - 1 // K·w̄_i − 1
		var varSum float64
		for k := 0; k < K; k++ {
			d := float64(w32[k*G+lo+i]) - mean
			varSum += d * d
		}
		f4 += t1*t1 - invK*varSum
	}
	sc.partGate[s] = f4
}

// gradUpdate32Shard fuses the exact-gradient computation with the clamped
// (optionally momentum) update over one gate shard, column-major: the
// gradient of w_{i,k} needs only the global reductions (ns, bf/af, rsum)
// plus the entry itself, so the column order is free. Gradients are
// float64; the entry is narrowed to float32 exactly once on store.
func (p *Problem) gradUpdate32Shard(sc *scratch, s int) {
	w32 := sc.w32
	G, K := p.G, p.K
	c := sc.c
	var ns []float64
	if sc.hasNS {
		ns = sc.ns
	}
	var bf, af []float64
	if sc.hasBA {
		bf, af = sc.bf, sc.af
	}
	invK := 1.0 / float64(K)
	scale4 := 2 * c.C4 / p.N4
	hasF4 := c.C4 != 0
	f1k, rsum := sc.f1k, sc.rsum
	step := sc.step
	mom := sc.mom
	wantNorm := sc.wantNorm
	lo, hi := pool.ShardRange(G, gateChunk, s)
	bias := p.Bias[lo:hi]
	area := p.Area[lo:hi]
	clamped := 0
	changed := false
	var normSum float64
	for k := 0; k < K; k++ {
		col := w32[k*G+lo : k*G+hi]
		var vcol []float32
		if sc.vel32 != nil {
			vcol = sc.vel32[k*G+lo : k*G+hi]
		}
		f1kk := f1k[k]
		var bfk, afk float64
		if bf != nil {
			bfk, afk = bf[k], af[k]
		}
		for i := range col {
			old := col[i]
			v := float64(old)
			var g float64
			if ns != nil {
				g = f1kk * ns[lo+i]
			}
			if bf != nil {
				g += bias[i]*bfk + area[i]*afk
			}
			if hasF4 {
				rowSum := rsum[lo+i]
				g += scale4 * (rowSum - 1 - (v-rowSum*invK)*invK)
			}
			if wantNorm {
				normSum += g * g
			}
			if vcol != nil {
				nv := mom*float64(vcol[i]) + g
				vcol[i] = float32(nv)
				g = nv
			}
			nw := v - step*g
			if nw < 0 {
				nw = 0
				clamped++
			} else if nw > 1 {
				nw = 1
				clamped++
			}
			n32 := float32(nw)
			if n32 != old {
				changed = true
			}
			col[i] = n32
		}
	}
	sc.clamp[s] = clamped
	sc.dirtyGate[s] = changed
	if wantNorm {
		sc.partNorm[s] = normSum
	}
}

// evalIter32 is evalIter for the float32 tier: same cost-side reductions
// and gradient-side finishing passes, with the gate sweep reading the SoA
// float32 matrix. Everything downstream of the gate sweep (edge cubes,
// variance, plane factors, gather) is the shared float64 code — it reads
// sc.l and the partials, never W.
func (p *Problem) evalIter32(c Coeffs, mode GradientMode, sc *scratch) Breakdown {
	sc.c, sc.mode = c, mode
	sc.hasNS = c.C1 != 0 && len(p.Edges) > 0
	gateShards := pool.Shards(p.G, gateChunk)
	sc.run(gateShards, passFusedGate32)
	f4 := p.mergeGatePartials(sc)
	f2, f3 := p.varianceF2F3(sc.bk, sc.ak)
	f1 := p.costF1(sc)
	if sc.hasNS {
		sc.run(gateShards, passNSGather)
	}
	sc.hasBA = c.C2 != 0 || c.C3 != 0 || len(p.PlaneTerms) > 0
	if sc.hasBA {
		p.planeFactors(c, sc)
	}
	return p.finishBreakdown(c, f1, f2, f3, f4, sc.bk)
}

// gradUpdate32 runs the fused float32 gradient+update pass.
func (p *Problem) gradUpdate32(sc *scratch) {
	sc.run(pool.Shards(p.G, gateChunk), passGradUpdate32)
}

// w32FromRowMajor rounds a row-major float64 matrix into the SoA float32
// layout; w32ToRowMajor widens it back (exact — float32→float64 never
// rounds, so a snapshot taken through it restores bit-for-bit).
func w32FromRowMajor(w32 []float32, w []float64, G, K int) {
	for i := 0; i < G; i++ {
		for k := 0; k < K; k++ {
			w32[k*G+i] = float32(w[i*K+k])
		}
	}
}

func w32ToRowMajor(w []float64, w32 []float32, G, K int) {
	for i := 0; i < G; i++ {
		for k := 0; k < K; k++ {
			w[i*K+k] = float64(w32[k*G+i])
		}
	}
}
