package partition

import (
	"context"
	"sort"
)

// SolveBest runs Solve with `restarts` different seeds (opts.Seed,
// opts.Seed+1, …) and returns the result with the lowest discrete cost —
// the natural extension of Algorithm 1's random initialization. It is the
// serial shorthand for SolvePortfolio; use that directly for concurrent
// restarts, per-seed summaries, or cancellation.
func (p *Problem) SolveBest(opts Options, restarts int) (*Result, error) {
	pf, err := p.SolvePortfolio(context.Background(), opts, PortfolioOptions{Restarts: restarts, Workers: 1})
	if err != nil {
		return nil, err
	}
	return pf.Best, nil
}

// BalancedAssign snaps a relaxed matrix to a discrete assignment under a
// per-plane bias capacity, instead of the plain per-gate argmax of
// Algorithm 1 (lines 27–30). Gates are processed in decreasing confidence
// (gap between their best and second-best w entry); each goes to its
// highest-w plane whose running bias stays within capacity, falling back
// to the least-loaded plane when every preferred plane is full.
//
// capacitySlack is the allowed overshoot above the perfect balance
// B_cir/K; 0.05 means every plane may take up to 105% of the ideal share.
// The result trades a little wire cost (F1) for a guaranteed B_max bound —
// exactly the knob Table III's supply-limit search needs.
func (p *Problem) BalancedAssign(w W, capacitySlack float64) []int {
	if capacitySlack < 0 {
		capacitySlack = 0
	}
	capacity := p.MeanBias * (1 + capacitySlack)

	type cand struct {
		gate int
		gap  float64
	}
	cands := make([]cand, p.G)
	for i := 0; i < p.G; i++ {
		row := w[i*p.K : (i+1)*p.K]
		best, second := -1.0, -1.0
		for _, v := range row {
			if v > best {
				best, second = v, best
			} else if v > second {
				second = v
			}
		}
		cands[i] = cand{gate: i, gap: best - second}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].gap > cands[b].gap })

	labels := make([]int, p.G)
	load := make([]float64, p.K)
	for _, cd := range cands {
		i := cd.gate
		row := w[i*p.K : (i+1)*p.K]
		// Plane preference order by descending w.
		order := make([]int, p.K)
		for k := range order {
			order[k] = k
		}
		sort.SliceStable(order, func(a, b int) bool { return row[order[a]] > row[order[b]] })
		placed := false
		for _, k := range order {
			if load[k]+p.Bias[i] <= capacity {
				labels[i] = k
				load[k] += p.Bias[i]
				placed = true
				break
			}
		}
		if !placed {
			// Every plane is at capacity (possible when one gate's bias
			// exceeds the slack); take the least-loaded plane.
			min := 0
			for k := 1; k < p.K; k++ {
				if load[k] < load[min] {
					min = k
				}
			}
			labels[i] = min
			load[min] += p.Bias[i]
		}
	}
	return labels
}

// SolveBalanced runs Algorithm 1 and snaps with BalancedAssign instead of
// argmax, then optionally refines. It returns the solver result with the
// balanced labels substituted (and Discrete recomputed).
func (p *Problem) SolveBalanced(opts Options, capacitySlack float64) (*Result, error) {
	return p.SolveBalancedCtx(context.Background(), opts, capacitySlack)
}

// SolveBalancedCtx is SolveBalanced with the cooperative cancellation of
// SolveCtx.
func (p *Problem) SolveBalancedCtx(ctx context.Context, opts Options, capacitySlack float64) (*Result, error) {
	snapOpts := opts
	snapOpts.Refine = false
	res, err := p.SolveCtx(ctx, snapOpts)
	if err != nil {
		return nil, err
	}
	res.Labels = p.BalancedAssign(res.W, capacitySlack)
	if opts.Refine {
		o := opts.withDefaults()
		res.RefineMoves = p.Refine(res.Labels, o.Coeffs, o.RefinePasses)
	}
	o := opts.withDefaults()
	res.Discrete = p.DiscreteCost(res.Labels, o.Coeffs)
	return res, nil
}
