package partition

import (
	"context"
	"fmt"

	"gpp/internal/obs"
	"gpp/internal/pool"
)

// PortfolioOptions configures SolvePortfolio's restart race.
type PortfolioOptions struct {
	// Restarts is the number of independent seeds raced; restart r runs
	// with seed base.Seed + r. Must be ≥ 1.
	Restarts int

	// Workers bounds how many restarts run concurrently: 0 ("auto") means
	// one per CPU, 1 races the seeds serially. Each restart additionally
	// runs its kernels on the base Options.Workers goroutines, so the total
	// parallelism is the product; for CPU-bound portfolios keep one of the
	// two knobs at 1 (portfolio concurrency with serial kernels is the
	// usual choice — restarts are embarrassingly parallel).
	Workers int
}

// SeedResult summarizes one restart of the portfolio.
type SeedResult struct {
	Seed      int64
	Iters     int
	Converged bool
	Relaxed   Breakdown
	Discrete  Breakdown
}

// Portfolio is the outcome of a multi-seed restart race.
type Portfolio struct {
	// Best is the lowest discrete-cost result; ties break toward the
	// lowest seed, so selection is deterministic regardless of which
	// restart finishes first.
	Best *Result
	// BestSeed is the seed that produced Best.
	BestSeed int64
	// Seeds holds one summary per restart, in seed order.
	Seeds []SeedResult
}

// SolvePortfolio races po.Restarts independent Algorithm-1 runs (seeds
// base.Seed, base.Seed+1, …) on a bounded worker pool and returns the best
// discrete-cost result plus a per-seed summary. Every restart is captured
// by its seed index and the winner is selected by a serial scan in seed
// order, so the outcome is identical for every portfolio worker count.
//
// Cancelling ctx stops the race early: restarts already running stop at
// their next gradient iteration (see SolveCtx), not-yet-started ones are
// skipped, and the context error is returned.
func (p *Problem) SolvePortfolio(ctx context.Context, base Options, po PortfolioOptions) (*Portfolio, error) {
	if po.Restarts < 1 {
		return nil, fmt.Errorf("partition: portfolio needs ≥ 1 restart, got %d", po.Restarts)
	}
	if po.Workers < 0 {
		return nil, fmt.Errorf("partition: portfolio workers %d must be ≥ 0 (0 = one per CPU)", po.Workers)
	}
	if err := base.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	base = base.withDefaults()
	// Restarts race concurrently, so each one traces into its own buffer;
	// the buffers are replayed into the real tracer serially, in seed order,
	// after the race. That keeps portfolio traces byte-identical at every
	// worker count — the interleaving of the race never reaches the sink.
	tracer := base.Tracer
	var bufs []*obs.Buffer
	if tracer != nil {
		bufs = make([]*obs.Buffer, po.Restarts)
	}
	results := make([]*Result, po.Restarts)
	mapErr := pool.Map(ctx, pool.Resolve(po.Workers), po.Restarts, func(r int) error {
		o := base
		o.Seed = base.Seed + int64(r)
		if tracer != nil {
			b := &obs.Buffer{}
			bufs[r] = b
			b.Emit(obs.Event{Kind: obs.KindRestartStart, Restart: r, Seed: o.Seed})
			o.Tracer = b
		}
		res, err := p.SolveCtx(ctx, o)
		if err != nil {
			return fmt.Errorf("partition: restart %d (seed %d): %w", r, o.Seed, err)
		}
		results[r] = res
		if tracer != nil {
			bufs[r].Emit(obs.Event{Kind: obs.KindRestartDone, Restart: r, Seed: o.Seed,
				Iters: res.Iters, Converged: res.Converged, FDiscrete: res.Discrete.Total})
		}
		return nil
	})
	if tracer != nil {
		for r := 0; r < po.Restarts; r++ {
			if results[r] != nil {
				bufs[r].ReplayTo(tracer)
				mRestarts.Inc()
			} else {
				// Cancelled before it ran, or failed mid-solve: record the
				// gap so the trace explains the missing seed.
				tracer.Emit(obs.Event{Kind: obs.KindRestartSkipped,
					Restart: r, Seed: base.Seed + int64(r)})
			}
		}
	} else {
		for r := 0; r < po.Restarts; r++ {
			if results[r] != nil {
				mRestarts.Inc()
			}
		}
	}
	if mapErr != nil {
		if serr := obs.SinkErr(tracer); serr != nil {
			return nil, fmt.Errorf("partition: trace sink: %w", serr)
		}
		return nil, mapErr
	}
	pf := &Portfolio{Seeds: make([]SeedResult, po.Restarts)}
	for r, res := range results {
		seed := base.Seed + int64(r)
		pf.Seeds[r] = SeedResult{
			Seed:      seed,
			Iters:     res.Iters,
			Converged: res.Converged,
			Relaxed:   res.Relaxed,
			Discrete:  res.Discrete,
		}
		if pf.Best == nil || res.Discrete.Total < pf.Best.Discrete.Total {
			pf.Best = res
			pf.BestSeed = seed
		}
	}
	if tracer != nil {
		tracer.Emit(obs.Event{Kind: obs.KindWinner, Seed: pf.BestSeed,
			Restarts: po.Restarts, FDiscrete: pf.Best.Discrete.Total})
	}
	if err := obs.SinkErr(tracer); err != nil {
		return nil, fmt.Errorf("partition: trace sink: %w", err)
	}
	return pf, nil
}
