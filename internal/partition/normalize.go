package partition

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
)

// Normalize validates the options and returns them with every
// K-independent default filled in (coefficients, margin, iteration cap,
// seed, refine passes). Two spellings of the same solve — say Margin 0 vs
// the explicit default 1e-4 — normalize to identical values, which is what
// lets the serve cache and the run manifests treat them as one
// configuration. NaN/Inf and negative knobs are rejected with the same
// errors Solve itself would return.
//
// InitStep stays 0 when unset because its default (0.25/K) needs the plane
// count; use NormalizeFor when K is known.
func (o Options) Normalize() (Options, error) {
	if err := o.validate(); err != nil {
		return Options{}, err
	}
	return o.withDefaults(), nil
}

// NormalizeFor normalizes like Normalize and additionally resolves the
// K-dependent InitStep default, so the result is the exact configuration a
// Solve on a K-plane problem would run.
func (o Options) NormalizeFor(k int) (Options, error) {
	n, err := o.Normalize()
	if err != nil {
		return Options{}, err
	}
	if n.InitStep <= 0 && k > 0 {
		n.InitStep = 0.25 / float64(k)
	}
	return n, nil
}

// Fingerprint returns a stable hex hash of the normalized options,
// covering exactly the fields that determine the solver's output: the
// cost coefficients, stopping margin, iteration cap, learn rate, init
// step, seed, gradient mode, renormalize/reduce-dims/momentum knobs, and
// the refinement configuration.
//
// Deliberately excluded are the execution-only fields: Workers (results
// are bitwise identical at every worker count), Tracer, and TraceCost —
// two solves differing only in those produce the same labels, so they
// must share a fingerprint. The encoding uses exact hexadecimal floats,
// so any pair of options that solve differently hash differently.
func (o Options) Fingerprint() (string, error) {
	n, err := o.Normalize()
	if err != nil {
		return "", err
	}
	b := make([]byte, 0, 256)
	b = append(b, "gpp-options-v1"...)
	f := func(v float64) {
		b = append(b, '|')
		b = strconv.AppendFloat(b, v, 'x', -1, 64)
	}
	i := func(v int64) {
		b = append(b, '|')
		b = strconv.AppendInt(b, v, 10)
	}
	t := func(v bool) {
		b = append(b, '|')
		b = strconv.AppendBool(b, v)
	}
	f(n.Coeffs.C1)
	f(n.Coeffs.C2)
	f(n.Coeffs.C3)
	f(n.Coeffs.C4)
	f(n.Margin)
	i(int64(n.MaxIters))
	f(n.LearnRate)
	f(n.InitStep)
	i(n.Seed)
	i(int64(n.Gradient))
	t(n.Renormalize)
	f(n.Momentum)
	t(n.ReduceDims)
	t(n.Refine)
	i(int64(n.RefinePasses))
	// The precision tier changes the trajectory, so it must fold into the
	// identity — but only when non-default: appending unconditionally
	// would rewrite every existing float64 fingerprint (and orphan every
	// stored checkpoint and cache entry) for a field those solves never
	// used.
	if n.Precision != Precision64 {
		b = append(b, "|precision="...)
		b = strconv.AppendInt(b, int64(n.Precision), 10)
	}
	// Regime terms surviving normalization (f1–f4 fold into the Coeffs
	// fields above) change the compiled problem, so they are part of the
	// identity. Conditional for the same reason as Precision: the empty
	// list must keep every pre-terms fingerprint, checkpoint, and cache
	// entry valid. Normalization sorts the list, so spelling order cannot
	// split the cache.
	for _, t := range n.Terms {
		b = append(b, "|term="...)
		b = append(b, t.Name...)
		b = append(b, ':')
		b = strconv.AppendFloat(b, t.Weight, 'x', -1, 64)
		b = append(b, ':')
		b = strconv.AppendFloat(b, t.Param, 'x', -1, 64)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
