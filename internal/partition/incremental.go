package partition

import "gpp/internal/pool"

// Incremental descent tier (DESIGN.md §15).
//
// The fused gradient+update pass records, per gate shard, whether the
// update actually changed any w entry (exact float compare — a clamped
// entry that stays pinned at a bound counts as unchanged). When a gate
// shard is clean, every cost-side quantity derived from its rows is still
// sitting in the scratch from the previous iteration: its labels l[i], its
// stored row sums, its per-plane partials partB/partA, and its F4 partial
// partGate[s]. The same argument cascades outward: an edge shard whose
// endpoints all live in clean gate shards has unchanged labels on both
// ends, so its F1 partial and per-edge cubes are still valid; a gate shard
// whose incident edges all live in unchanged edge shards has valid
// neighbor sums.
//
// Skipping therefore re-USES stored bytes rather than re-DERIVING them, and
// the shard-order merges read exactly what a full sweep would have written:
// the incremental path is bitwise identical to the full-sweep path by
// construction, not within a tolerance. This is also why the tracking is at
// shard granularity — per-row delta maintenance of the shared sums would
// reassociate the floating-point reductions and break the bitwise contract.
//
// Two safety valves keep the bookkeeping honest and the overhead bounded
// (both are belt-and-suspenders: parity holds with or without them, which
// the incremental fuzz target exercises):
//
//   - a full sweep is forced every incrResyncEvery iterations, and
//   - when more than incrDirtyMax of the gate shards are dirty the planner
//     does not bother building masks and full-sweeps instead (descent from
//     a random initialization keeps nearly every shard dirty, so this is
//     the common case until large regions of w freeze at the clamp bounds).
const (
	incrResyncEvery = 64
	incrDirtyMax    = 0.5
)

// shardAdjacency lazily builds the two shard-level adjacency lists the
// planner consults: which gate shards own the endpoints of each edge shard,
// and which edge shards are incident to each gate shard. Built once per
// Problem, only when a solve actually reaches a mask-building iteration.
func (p *Problem) shardAdjacency() ([][]int32, [][]int32) {
	p.adjOnce.Do(func() {
		gs := pool.Shards(p.G, gateChunk)
		es := pool.Shards(len(p.Edges), edgeChunk)
		edgeGate := make([][]int32, es)
		gateEdge := make([][]int32, gs)
		// Stamp arrays dedupe without per-shard sets: stamp[x] == current
		// shard id means x is already recorded for it.
		gStamp := make([]int32, gs)
		eStamp := make([]int32, gs)
		for i := range gStamp {
			gStamp[i], eStamp[i] = -1, -1
		}
		for e := 0; e < es; e++ {
			lo, hi := pool.ShardRange(len(p.Edges), edgeChunk, e)
			for _, ed := range p.Edges[lo:hi] {
				for _, gate := range ed {
					gsh := int32(gate) / gateChunk
					if gStamp[gsh] != int32(e) {
						gStamp[gsh] = int32(e)
						edgeGate[e] = append(edgeGate[e], gsh)
					}
					if eStamp[gsh] != int32(e) {
						eStamp[gsh] = int32(e)
						gateEdge[gsh] = append(gateEdge[gsh], int32(e))
					}
				}
			}
		}
		p.adjEdgeGate, p.adjGateEdge = edgeGate, gateEdge
	})
	return p.adjEdgeGate, p.adjGateEdge
}

// planIncremental decides, before each evalIter, whether the cost-side
// passes may skip clean shards and arms the skip masks accordingly.
// haveState is false on the first evaluation of a solve (and after a
// resume), when the scratch holds no previous iteration to reuse; enabled
// is false when the solve opted out (Options.NoIncremental).
func (p *Problem) planIncremental(sc *scratch, enabled, haveState bool) {
	gs := pool.Shards(p.G, gateChunk)
	full := func() {
		sc.skipGate, sc.skipEdge, sc.skipGath = nil, nil, nil
		sc.sinceSync = 0
	}
	if !enabled || !haveState || sc.sinceSync+1 >= incrResyncEvery {
		full()
		return
	}
	dirty := 0
	for _, d := range sc.dirtyGate {
		if d {
			dirty++
		}
	}
	if float64(dirty) > incrDirtyMax*float64(gs) {
		full()
		return
	}
	edgeGate, gateEdge := p.shardAdjacency()
	for s := 0; s < gs; s++ {
		sc.maskGate[s] = !sc.dirtyGate[s]
	}
	for e := range sc.maskEdge {
		skip := true
		for _, gsh := range edgeGate[e] {
			if sc.dirtyGate[gsh] {
				skip = false
				break
			}
		}
		sc.maskEdge[e] = skip
	}
	for s := 0; s < gs; s++ {
		skip := true
		for _, esh := range gateEdge[s] {
			if !sc.maskEdge[esh] {
				skip = false
				break
			}
		}
		sc.maskGath[s] = skip
	}
	sc.skipGate, sc.skipEdge, sc.skipGath = sc.maskGate, sc.maskEdge, sc.maskGath
	sc.sinceSync++
}
