// Package partition implements the paper's primary contribution: K-way
// ground plane partitioning of an SFQ netlist by gradient descent on a
// relaxed cost function.
//
// The integer assignment w_{i,k} ∈ {0,1} ("gate i is on plane k") is relaxed
// to w_{i,k} ∈ [0,1] and the constrained integer program (Eq. 7 of the
// paper) becomes the unconstrained minimization (Eq. 8)
//
//	F = c1·F1 + c2·F2 + c3·F3 + c4·F4
//
// where F1 penalizes inter-plane connections by the fourth power of their
// plane distance, F2 and F3 are the normalized variances of the per-plane
// bias current and area, and F4 folds the row-sum-equals-one and
// integrality constraints into the objective (modified Lagrange-multiplier
// construction, Eq. 9). Algorithm 1 of the paper — random row-normalized
// initialization, fixed-step gradient descent with clamping to [0,1], and a
// relative-cost stopping margin — is implemented by Solve.
package partition

import (
	"fmt"
	"math"
	"sync"

	"gpp/internal/netlist"
)

// Problem is an immutable partitioning instance: G gates with bias/area
// attributes, an undirected-cost connection list, and the plane count K.
// Normalization constants N1..N4 (Eqs. 4–6, 9) are precomputed.
type Problem struct {
	Name string
	G    int // number of gates
	K    int // number of ground planes

	Bias []float64 // b_i, mA, length G
	Area []float64 // a_i, mm², length G

	// Edges are connection pairs (i1, i2). Direction is irrelevant to the
	// cost; duplicates are allowed and each counts separately.
	Edges [][2]int32

	// EdgeWeight, when non-nil, holds one positive multiplicity per edge: an
	// edge of weight w contributes exactly like w parallel unweighted
	// connections to F1 and its gradient (the multilevel coarsener collapses
	// fine edges this way instead of materializing the replicas). nil means
	// every edge has weight 1, and the kernels take their historical
	// unweighted paths, bitwise unchanged.
	EdgeWeight []float64

	// Normalization constants. When a quantity degenerates (no edges, zero
	// total bias/area, K == 1) the corresponding constant is set to 1 and
	// the term is identically zero.
	N1, N2, N3, N4 float64

	// TotalBias is B_cir = Σ b_i; TotalArea is A_cir = Σ a_i.
	TotalBias, TotalArea float64

	// MeanBias is B̄ = B_cir/K; MeanArea is Ā = A_cir/K. These are the
	// normalizer means; the live per-iteration means drift slightly while
	// row sums are unconstrained and are recomputed in the cost.
	MeanBias, MeanArea float64

	// PlaneTerms are compiled per-plane penalty terms (see terms.go)
	// evaluated over the per-plane bias/area sums in every cost and
	// gradient pass. Term compilers (internal/terms) attach them after
	// construction; empty means the historical four-term objective,
	// bitwise unchanged.
	PlaneTerms []PlaneTerm

	// Incidence CSR for the F1 gradient gather: for gate i, incEdge
	// [incStart[i]:incStart[i+1]] lists its incident edge indices in
	// increasing edge order, and incSign is +1 where the gate is the edge's
	// first endpoint. The gather lets gradient workers accumulate each
	// gate's neighbor sum privately (no scatter write conflicts) while
	// preserving the serial edge-order summation exactly.
	incStart []int32   // length G+1
	incEdge  []int32   // length 2·|Edges|
	incSign  []int8    // length 2·|Edges|
	incSignF []float64 // incSign as ±1.0: the gather multiplies instead of
	// branching on the (unpredictable) sign — t·(−1) is exactly −t and
	// t·(+1) is exactly t in IEEE 754, so the branchless form is bitwise
	// identical to the historical negate-and-add.

	// Shard-adjacency lists for the incremental descent tier, built lazily
	// on first use (see incremental.go): adjEdgeGate[es] lists the gate
	// shards owning either endpoint of an edge in edge shard es, and
	// adjGateEdge[gs] lists the edge shards incident to any gate of gate
	// shard gs. Memoization only — the Problem stays logically immutable.
	adjOnce     sync.Once
	adjEdgeGate [][]int32
	adjGateEdge [][]int32
}

// NewProblem validates and precomputes a partitioning instance.
func NewProblem(name string, k int, bias, area []float64, edges [][2]int) (*Problem, error) {
	return newProblem(name, k, bias, area, edges, nil)
}

// NewWeightedProblem is NewProblem with per-edge multiplicities: weights[i]
// is the number of fine-level connections edge i stands for (any positive
// finite value is accepted — fractional weights are meaningful too). A nil
// weights slice means all ones and is identical to NewProblem.
func NewWeightedProblem(name string, k int, bias, area []float64, edges [][2]int, weights []float64) (*Problem, error) {
	if weights != nil && len(weights) != len(edges) {
		return nil, fmt.Errorf("partition: %d edges but %d weights", len(edges), len(weights))
	}
	return newProblem(name, k, bias, area, edges, weights)
}

func newProblem(name string, k int, bias, area []float64, edges [][2]int, weights []float64) (*Problem, error) {
	g := len(bias)
	if g == 0 {
		return nil, fmt.Errorf("partition: empty circuit")
	}
	if len(area) != g {
		return nil, fmt.Errorf("partition: bias has %d entries but area has %d", g, len(area))
	}
	if k < 2 {
		return nil, fmt.Errorf("partition: need K ≥ 2 planes, got %d", k)
	}
	if k > g {
		return nil, fmt.Errorf("partition: K = %d exceeds gate count %d", k, g)
	}
	p := &Problem{Name: name, G: g, K: k}
	p.Bias = make([]float64, g)
	copy(p.Bias, bias)
	p.Area = make([]float64, g)
	copy(p.Area, area)
	for i := 0; i < g; i++ {
		if bias[i] < 0 {
			return nil, fmt.Errorf("partition: gate %d has negative bias %g", i, bias[i])
		}
		if area[i] < 0 {
			return nil, fmt.Errorf("partition: gate %d has negative area %g", i, area[i])
		}
		p.TotalBias += bias[i]
		p.TotalArea += area[i]
	}
	p.Edges = make([][2]int32, 0, len(edges))
	for idx, e := range edges {
		if e[0] < 0 || e[0] >= g || e[1] < 0 || e[1] >= g {
			return nil, fmt.Errorf("partition: edge %d (%d,%d) out of range [0,%d)", idx, e[0], e[1], g)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("partition: edge %d is a self loop on gate %d", idx, e[0])
		}
		p.Edges = append(p.Edges, [2]int32{int32(e[0]), int32(e[1])})
	}
	if weights != nil {
		p.EdgeWeight = make([]float64, len(weights))
		for i, w := range weights {
			if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
				return nil, fmt.Errorf("partition: edge %d has non-positive weight %g", i, w)
			}
			p.EdgeWeight[i] = w
		}
	}

	km1 := float64(k - 1)
	p.MeanBias = p.TotalBias / float64(k)
	p.MeanArea = p.TotalArea / float64(k)
	switch {
	case len(p.Edges) == 0:
		p.N1 = 1
	case p.EdgeWeight == nil:
		p.N1 = float64(len(p.Edges)) * km1 * km1 * km1 * km1
	default:
		// N1 normalizes by the represented connection count, so a weighted
		// problem and its edge-replicated expansion share the same scale.
		var totalW float64
		for _, w := range p.EdgeWeight {
			totalW += w
		}
		p.N1 = totalW * km1 * km1 * km1 * km1
	}
	if p.MeanBias > 0 {
		p.N2 = km1 * p.MeanBias * p.MeanBias
	} else {
		p.N2 = 1
	}
	if p.MeanArea > 0 {
		p.N3 = km1 * p.MeanArea * p.MeanArea
	} else {
		p.N3 = 1
	}
	p.N4 = float64(g) * km1 * km1
	p.buildIncidence()
	return p, nil
}

// buildIncidence fills the incidence CSR (see the field comments). Edge
// order is preserved per gate so gather-based neighbor sums associate the
// same way as the historical scatter loop.
func (p *Problem) buildIncidence() {
	p.incStart = make([]int32, p.G+1)
	for _, e := range p.Edges {
		p.incStart[e[0]+1]++
		p.incStart[e[1]+1]++
	}
	for i := 0; i < p.G; i++ {
		p.incStart[i+1] += p.incStart[i]
	}
	p.incEdge = make([]int32, 2*len(p.Edges))
	p.incSign = make([]int8, 2*len(p.Edges))
	p.incSignF = make([]float64, 2*len(p.Edges))
	cursor := make([]int32, p.G)
	copy(cursor, p.incStart[:p.G])
	for idx, e := range p.Edges {
		u, v := e[0], e[1]
		p.incEdge[cursor[u]] = int32(idx)
		p.incSign[cursor[u]] = 1
		p.incSignF[cursor[u]] = 1
		cursor[u]++
		p.incEdge[cursor[v]] = int32(idx)
		p.incSign[cursor[v]] = -1
		p.incSignF[cursor[v]] = -1
		cursor[v]++
	}
}

// FromCircuit builds a Problem from a netlist circuit.
func FromCircuit(c *netlist.Circuit, k int) (*Problem, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	bias := make([]float64, c.NumGates())
	area := make([]float64, c.NumGates())
	for i, g := range c.Gates {
		bias[i] = g.Bias
		area[i] = g.Area
	}
	edges := make([][2]int, c.NumEdges())
	for i, e := range c.Edges {
		edges[i] = [2]int{int(e.From), int(e.To)}
	}
	return NewProblem(c.Name, k, bias, area, edges)
}

// Coeffs holds the tunable linear-combination constants c1..c4 of Eq. 8.
type Coeffs struct {
	C1, C2, C3, C4 float64
}

// DefaultCoeffs returns the coefficient set used for the paper-table
// reproductions. The paper does not publish its values; these are tuned so
// the reproduced Tables I–III land in the paper's reported bands (see
// EXPERIMENTS.md).
func DefaultCoeffs() Coeffs {
	return Coeffs{C1: 1.0, C2: 0.5, C3: 0.5, C4: 1.0}
}

// Breakdown is the value of the cost and its four components, all
// normalized per Eqs. 4–6 and 9. Extra is the summed contribution of the
// problem's compiled plane terms (terms.go); it is zero — and Total is the
// historical four-term combination, bit for bit — when no plane terms are
// attached.
type Breakdown struct {
	F1, F2, F3, F4 float64
	Extra          float64
	Total          float64
}

// combine applies the coefficients.
func (c Coeffs) combine(f1, f2, f3, f4 float64) Breakdown {
	return Breakdown{
		F1:    f1,
		F2:    f2,
		F3:    f3,
		F4:    f4,
		Total: c.C1*f1 + c.C2*f2 + c.C3*f3 + c.C4*f4,
	}
}
