package partition

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

func TestSolvePortfolioMatchesSerialBest(t *testing.T) {
	p := randProblem(t, 60, 4, 110, 21)
	opts := Options{Seed: 5, MaxIters: 120}
	const restarts = 6
	want, err := p.SolveBest(opts, restarts)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := p.SolvePortfolio(context.Background(), opts, PortfolioOptions{Restarts: restarts, Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	if pf.Best.Discrete.Total != want.Discrete.Total {
		t.Errorf("portfolio best %g != serial best %g", pf.Best.Discrete.Total, want.Discrete.Total)
	}
	for i := range want.Labels {
		if pf.Best.Labels[i] != want.Labels[i] {
			t.Fatalf("portfolio best labels diverge from serial best at %d", i)
		}
	}
	if len(pf.Seeds) != restarts {
		t.Fatalf("got %d seed summaries, want %d", len(pf.Seeds), restarts)
	}
	bestTotal := pf.Seeds[0].Discrete.Total
	for r, sr := range pf.Seeds {
		if sr.Seed != opts.Seed+int64(r) {
			t.Errorf("summary %d has seed %d, want %d", r, sr.Seed, opts.Seed+int64(r))
		}
		if sr.Iters <= 0 {
			t.Errorf("summary %d reports %d iterations", r, sr.Iters)
		}
		if sr.Discrete.Total < bestTotal {
			bestTotal = sr.Discrete.Total
		}
	}
	if pf.Best.Discrete.Total != bestTotal {
		t.Errorf("Best.Discrete.Total %g is not the minimum summary total %g", pf.Best.Discrete.Total, bestTotal)
	}
}

func TestSolvePortfolioDeterministicAcrossWorkers(t *testing.T) {
	p := randProblem(t, 80, 5, 150, 22)
	opts := Options{Seed: 9, MaxIters: 100}
	po := PortfolioOptions{Restarts: 5, Workers: 1}
	want, err := p.SolvePortfolio(context.Background(), opts, po)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8} {
		po.Workers = workers
		got, err := p.SolvePortfolio(context.Background(), opts, po)
		if err != nil {
			t.Fatal(err)
		}
		if got.BestSeed != want.BestSeed {
			t.Errorf("workers %d: best seed %d, want %d", workers, got.BestSeed, want.BestSeed)
		}
		requireIdenticalResults(t, "portfolio best", want.Best, got.Best)
		for r := range want.Seeds {
			if want.Seeds[r] != got.Seeds[r] {
				t.Errorf("workers %d: seed summary %d differs: %+v vs %+v", workers, r, want.Seeds[r], got.Seeds[r])
			}
		}
	}
}

func TestSolvePortfolioTieBreaksToLowestSeed(t *testing.T) {
	// A problem with no edges and uniform gates: every seed converges to
	// the same discrete cost, so the winner must be the first seed.
	bias := make([]float64, 20)
	area := make([]float64, 20)
	for i := range bias {
		bias[i], area[i] = 1, 1
	}
	p, err := NewProblem("flat", 2, bias, area, nil)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := p.SolvePortfolio(context.Background(), Options{Seed: 7, MaxIters: 50},
		PortfolioOptions{Restarts: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range pf.Seeds {
		if sr.Discrete.Total != pf.Seeds[0].Discrete.Total {
			t.Skip("seeds did not tie; tie-break not exercised")
		}
	}
	if pf.BestSeed != 7 {
		t.Errorf("tie broke to seed %d, want the lowest seed 7", pf.BestSeed)
	}
}

func TestSolvePortfolioCancellation(t *testing.T) {
	p := randProblem(t, 40, 3, 70, 23)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.SolvePortfolio(ctx, Options{Seed: 1, MaxIters: 50},
		PortfolioOptions{Restarts: 8, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSolvePortfolioValidation(t *testing.T) {
	p := randProblem(t, 20, 3, 30, 24)
	if _, err := p.SolvePortfolio(context.Background(), Options{}, PortfolioOptions{Restarts: 0}); err == nil {
		t.Error("zero restarts accepted")
	}
	if _, err := p.SolvePortfolio(context.Background(), Options{}, PortfolioOptions{Restarts: -3}); err == nil {
		t.Error("negative restarts accepted")
	}
	if _, err := p.SolvePortfolio(context.Background(), Options{}, PortfolioOptions{Restarts: 2, Workers: -1}); err == nil {
		t.Error("negative portfolio workers accepted")
	}
	if _, err := p.SolvePortfolio(context.Background(), Options{Workers: -2}, PortfolioOptions{Restarts: 2}); err == nil {
		t.Error("invalid base options accepted")
	}
	// nil context must behave as context.Background(), not panic.
	if _, err := p.SolvePortfolio(nil, Options{Seed: 1, MaxIters: 20}, PortfolioOptions{Restarts: 2}); err != nil {
		t.Errorf("nil context: %v", err)
	}
}

func TestSolvePortfolioImprovesOnWorstSeed(t *testing.T) {
	p := randProblem(t, 70, 4, 130, 25)
	pf, err := p.SolvePortfolio(context.Background(), Options{Seed: 1, MaxIters: 200},
		PortfolioOptions{Restarts: 5, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	worst := pf.Seeds[0].Discrete.Total
	for _, sr := range pf.Seeds {
		if sr.Discrete.Total > worst {
			worst = sr.Discrete.Total
		}
	}
	if pf.Best.Discrete.Total > worst {
		t.Errorf("best %g exceeds worst seed %g", pf.Best.Discrete.Total, worst)
	}
}
