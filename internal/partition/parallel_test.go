package partition

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"gpp/internal/gen"
)

// requireIdenticalResults asserts bitwise equality of everything the
// determinism contract covers: labels, iteration counts, convergence flag,
// the full relaxed matrix, and every field of both cost breakdowns.
func requireIdenticalResults(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if a.Iters != b.Iters {
		t.Errorf("%s: iters differ: %d vs %d", name, a.Iters, b.Iters)
	}
	if a.Converged != b.Converged {
		t.Errorf("%s: converged differs: %v vs %v", name, a.Converged, b.Converged)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("%s: label[%d] differs: %d vs %d", name, i, a.Labels[i], b.Labels[i])
		}
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatalf("%s: w[%d] differs bitwise: %v vs %v", name, i, a.W[i], b.W[i])
		}
	}
	requireIdenticalBreakdown(t, name+" relaxed", a.Relaxed, b.Relaxed)
	requireIdenticalBreakdown(t, name+" discrete", a.Discrete, b.Discrete)
}

func requireIdenticalBreakdown(t *testing.T, name string, a, b Breakdown) {
	t.Helper()
	if a.F1 != b.F1 || a.F2 != b.F2 || a.F3 != b.F3 || a.F4 != b.F4 || a.Total != b.Total {
		t.Errorf("%s: breakdown differs exactly: %+v vs %+v", name, a, b)
	}
}

// TestSolveWorkersDeterminismTableI is the headline determinism regression:
// for every Table-I benchmark circuit, a fully serial solve (Workers: 1)
// and a solve on all CPUs must produce bit-identical labels, iteration
// counts, relaxed matrices, and cost breakdowns for the same seed. The
// fixed-shard-order merge makes this exact — no tolerances anywhere.
func TestSolveWorkersDeterminismTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism sweep skipped in -short mode")
	}
	for _, name := range gen.BenchmarkNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := gen.Benchmark(name, nil)
			if err != nil {
				t.Fatal(err)
			}
			p, err := FromCircuit(c, 5)
			if err != nil {
				t.Fatal(err)
			}
			// Determinism must hold at every iterate, converged or not; the
			// cap keeps the largest circuits fast under -race.
			base := Options{Seed: 1, MaxIters: 60}
			serial := base
			serial.Workers = 1
			parallel := base
			// NumCPU, but at least 4 so single-core hosts still exercise a
			// real multi-goroutine pool (extra workers beyond the shard
			// count are simply not spawned).
			parallel.Workers = runtime.NumCPU()
			if parallel.Workers < 4 {
				parallel.Workers = 4
			}
			a, err := p.Solve(serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := p.Solve(parallel)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalResults(t, name, a, b)
		})
	}
}

// TestSolveWorkersDeterminismOptionCross sweeps the solver's option arms
// (momentum, renormalize, reduce-dims, paper gradients, refinement) across
// odd worker counts on a problem large enough to span many shards.
func TestSolveWorkersDeterminismOptionCross(t *testing.T) {
	p := randProblem(t, 700, 5, 2600, 11)
	variants := []Options{
		{Seed: 3, MaxIters: 40},
		{Seed: 3, MaxIters: 40, Momentum: 0.5},
		{Seed: 3, MaxIters: 40, Renormalize: true},
		{Seed: 3, MaxIters: 40, ReduceDims: true},
		{Seed: 3, MaxIters: 40, Gradient: GradientPaper},
		{Seed: 3, MaxIters: 40, Refine: true},
	}
	for vi, base := range variants {
		serial := base
		serial.Workers = 1
		want, err := p.Solve(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 7, 16} {
			o := base
			o.Workers = workers
			got, err := p.Solve(o)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalResults(t, fmt.Sprintf("variant %d workers %d", vi, workers), want, got)
		}
	}
}

// TestSolveWorkersDeterminismSweep pins the PR-4 acceptance sweep: Workers
// = 1, 2, and NumCPU produce bitwise identical Results on real circuits,
// with the persistent-group dispatch on the fused iteration kernel. (The
// option-cross test above covers odd counts; this one is the named
// contract.)
func TestSolveWorkersDeterminismSweep(t *testing.T) {
	counts := []int{1, 2, runtime.NumCPU()}
	for _, circuit := range []string{"KSA16", "C499"} {
		c, err := gen.Benchmark(circuit, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := FromCircuit(c, 5)
		if err != nil {
			t.Fatal(err)
		}
		var want *Result
		for _, workers := range counts {
			got, err := p.Solve(Options{Seed: 1, MaxIters: 80, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			requireIdenticalResults(t, fmt.Sprintf("%s workers %d", circuit, workers), want, got)
		}
	}
}

// TestSolveNoGoroutineLeak bounds runtime.NumGoroutine across repeated
// multi-worker solves: each solve's persistent group must tear its workers
// down synchronously on return (Group.Close waits for worker exit), so the
// goroutine count cannot creep with solve count.
func TestSolveNoGoroutineLeak(t *testing.T) {
	if raceEnabled {
		t.Skip("goroutine accounting is noisy under -race")
	}
	p := randProblem(t, 300, 5, 900, 21)
	opts := Options{Seed: 1, MaxIters: 5, Margin: 1e-300, Workers: 8}
	if _, err := p.Solve(opts); err != nil { // warm-up: lazy runtime goroutines
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		if _, err := p.Solve(opts); err != nil {
			t.Fatal(err)
		}
	}
	// Solve returns only after Group.Close's exited.Wait, so no settling
	// sleep is needed: any growth here is a real leak.
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew across 25 solves: %d before, %d after", before, after)
	}
}

// TestCostParallelBitIdentical checks the cost kernel alone across worker
// counts, including non-divisors of the shard count.
func TestCostParallelBitIdentical(t *testing.T) {
	p := randProblem(t, 900, 4, 3100, 12)
	w := randW(p, 13)
	c := Coeffs{C1: 1.2, C2: 0.6, C3: 0.8, C4: 1.1}
	want := p.Cost(w, c)
	if math.IsNaN(want.Total) {
		t.Fatal("serial cost is NaN")
	}
	for _, workers := range []int{0, 2, 3, 5, 8, 64} {
		got := p.CostParallel(w, c, workers)
		requireIdenticalBreakdown(t, fmt.Sprintf("workers %d", workers), want, got)
	}
}

// TestGradientParallelBitIdentical checks the gradient kernel elementwise
// across worker counts for both gradient modes.
func TestGradientParallelBitIdentical(t *testing.T) {
	p := randProblem(t, 900, 4, 3100, 14)
	w := randW(p, 15)
	c := Coeffs{C1: 1.2, C2: 0.6, C3: 0.8, C4: 1.1}
	for _, mode := range []GradientMode{GradientExact, GradientPaper} {
		want := make([]float64, p.G*p.K)
		p.Gradient(w, c, mode, want)
		for _, workers := range []int{0, 2, 3, 5, 8, 64} {
			got := make([]float64, p.G*p.K)
			p.GradientParallel(w, c, mode, got, workers)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("mode %v workers %d: grad[%d] differs bitwise: %v vs %v",
						mode, workers, i, want[i], got[i])
				}
			}
		}
	}
}
