package partition

import (
	"context"
	"fmt"
	"math"

	"gpp/internal/obs"
	"gpp/internal/pool"
)

// solve32 is the float32-tier descent loop (Options.Precision =
// Precision32; see cost32.go for the kernels and the precision policy).
// It mirrors SolveCtx iteration for iteration — same initialization, step
// calibration, stopping criterion, trace/checkpoint cadence — with the
// matrix held in the SoA float32 layout and every reduction in float64.
// Initialization, calibration and snapshots run through an exact row-major
// float64 mirror: float32→float64 widening never rounds, so checkpoints of
// a float32 solve restore bit for bit, and resumed runs finish bitwise
// identical to uninterrupted ones at any Workers count.
//
// opts arrives validated and defaulted; ckptFP is the (precision-folded)
// options fingerprint when checkpointing or resuming, "" otherwise.
func (p *Problem) solve32(ctx context.Context, opts Options, workers int, ckptFP string) (*Result, error) {
	tracer := opts.Tracer
	var grp *pool.Group
	if workers > 1 {
		grp = pool.NewGroup(workers)
	}
	defer grp.Close()
	sc := p.newScratch(grp)
	sc.w32 = make([]float32, p.G*p.K)
	sc.wantNorm = tracer != nil
	if tracer != nil {
		tracer.Emit(obs.Event{Kind: obs.KindSolveStart, Seed: opts.Seed,
			K: p.K, Gates: p.G, Edges: len(p.Edges)})
		tracer.Emit(obs.Event{Kind: obs.KindPool,
			GateShards: pool.Shards(p.G, gateChunk),
			EdgeShards: pool.Shards(len(p.Edges), edgeChunk)})
	}
	descent := opts.Span.Child("descent")
	if opts.Momentum > 0 {
		sc.vel32 = make([]float32, p.G*p.K)
	}
	// Row-major float64 mirror: filled by the initialization, reused as
	// the exact conversion buffer for snapshots, and handed to the result.
	w := p.NewW()
	var velSnap []float64
	var step float64
	startIter := 0
	costOld := math.Inf(1)
	if snap := opts.Resume; snap != nil {
		// The snapshot's float64 entries are exact widenings of the
		// checkpointed float32 state (enforced below when taking them), so
		// rounding them back loses nothing and the trajectory continues
		// exactly.
		w32FromRowMajor(sc.w32, snap.W, p.G, p.K)
		if sc.vel32 != nil {
			w32FromRowMajor(sc.vel32, snap.Velocity, p.G, p.K)
		}
		step = snap.Step
		costOld = snap.CostOld
		startIter = snap.Iter
	} else {
		p.randomInitW(w, opts.Seed)
		w32FromRowMajor(sc.w32, w, p.G, p.K)
		step = opts.LearnRate
		if step <= 0 {
			// Auto-calibrate against the float64 gradient at the exact
			// rounded starting point, so the step reflects the matrix the
			// float32 loop actually descends from.
			w32ToRowMajor(w, sc.w32, p.G, p.K)
			grad := make([]float64, p.G*p.K)
			p.gradientWith(w, opts.Coeffs, opts.Gradient, grad, sc)
			maxAbs := 0.0
			for _, g := range grad {
				if a := math.Abs(g); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs == 0 {
				step = 1
			} else {
				step = opts.InitStep / maxAbs
			}
		}
	}
	sc.setDescentState(p, opts.Coeffs, opts.Gradient, step, opts.Momentum,
		nil, false, false)

	res := &Result{StepSize: step, Iters: startIter}
	if opts.TraceCost && opts.Resume != nil {
		res.CostTrace = append(res.CostTrace, opts.Resume.CostTrace...)
	}
	var relaxed Breakdown
	for iter := startIter; iter < opts.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			if serr := obs.SinkErr(tracer); serr != nil {
				return nil, fmt.Errorf("partition: trace sink: %w", serr)
			}
			return nil, fmt.Errorf("partition: solve cancelled after %d iterations: %w", iter, err)
		}
		p.planIncremental(sc, !opts.NoIncremental, iter > startIter)
		bd := p.evalIter32(opts.Coeffs, opts.Gradient, sc)
		costNew := bd.Total
		if opts.TraceCost {
			res.CostTrace = append(res.CostTrace, costNew)
		}
		if !math.IsInf(costOld, 1) {
			denom := math.Abs(costOld)
			if denom < 1e-12 {
				denom = 1e-12
			}
			if math.Abs(costNew-costOld)/denom <= opts.Margin {
				res.Converged = true
				res.Iters = iter
				relaxed = bd
				break
			}
		}
		costOld = costNew

		p.gradUpdate32(sc)
		res.Iters = iter + 1
		if tracer != nil {
			var sum float64
			for _, v := range sc.partNorm {
				sum += v
			}
			clamped := 0
			for _, c := range sc.clamp {
				clamped += c
			}
			tracer.Emit(obs.Event{Kind: obs.KindIter, Iter: iter,
				F: bd.Total, F1: bd.F1, F2: bd.F2, F3: bd.F3, F4: bd.F4,
				GradN: math.Sqrt(sum), Step: step, Clamped: clamped})
		}
		if opts.Checkpoint != nil && (iter+1)%opts.CheckpointEvery == 0 {
			ck := descent.Child("checkpoint")
			ck.AttrInt("iter", int64(iter+1))
			// Widen the float32 state exactly into the float64 snapshot
			// shape; takeSnapshot deep-copies, so the mirrors are reusable.
			w32ToRowMajor(w, sc.w32, p.G, p.K)
			var vel []float64
			if sc.vel32 != nil {
				if velSnap == nil {
					velSnap = make([]float64, p.G*p.K)
				}
				w32ToRowMajor(velSnap, sc.vel32, p.G, p.K)
				vel = velSnap
			}
			snap := p.takeSnapshot(opts, ckptFP, iter+1, step, costNew, w, vel, res.CostTrace)
			err := opts.Checkpoint(snap)
			ck.End()
			if err != nil {
				return nil, fmt.Errorf("partition: checkpoint at iteration %d: %w", iter+1, err)
			}
		}
	}

	w32ToRowMajor(w, sc.w32, p.G, p.K)
	res.W = w
	if !res.Converged {
		// Cap-terminated: one more full evaluation at the final state.
		sc.skipGate, sc.skipEdge, sc.skipGath = nil, nil, nil
		relaxed = p.evalIter32(opts.Coeffs, opts.Gradient, sc)
	}
	return p.finalizeSolve(res, relaxed, opts, tracer, descent)
}
