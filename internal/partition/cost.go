package partition

import (
	"math"

	"gpp/internal/pool"
)

// Shard sizes for the parallel kernels. The shard layout is a pure function
// of the problem size — never of the worker count — so per-shard partial
// sums merged in shard-index order associate identically for Workers = 1
// and Workers = N, and every worker count produces bitwise identical
// results (see DESIGN.md §7).
const (
	gateChunk = 256
	edgeChunk = 1024
)

// scratch holds the reusable buffers of the cost/gradient kernels plus the
// executor they dispatch on (a persistent pool.Group inside Solve, a
// one-shot pool.Ephemeral for the stateless entry points). Solve allocates
// one scratch up front and threads it through every iteration, so the
// descent loop itself is allocation-free (guarded by
// TestSolveIterationPathAllocFree and the obs-bench benchmarks).
//
// The public one-shot entry points (Cost, CostParallel, Gradient, Labels,
// …) allocate a fresh scratch per call, which preserves their stateless
// contract — and, because a fresh scratch is all zeros, makes the buffered
// kernels bitwise identical to the historical allocating ones. Each entry
// point allocates only the buffers and kernel closures its passes actually
// touch (newLabelsScratch / newPlaneScratch / newCostScratch /
// newGradScratch below); newScratch is the full solver set.
// Kernel pass identifiers for the single dispatch closure (scratch.run).
// One closure switching on the pass replaces the seven per-pass closures the
// scratch used to carry — same dispatch cost, six fewer setup allocations.
const (
	passLabels = iota
	passPlane
	passFusedGate
	passEdgeIter
	passNS
	passNSGather
	passGrad
	passGradUpdate
	passFusedGate32
	passGradUpdate32
)

type scratch struct {
	ex pool.Executor // dispatch target for every kernel in this scratch

	l        []float64 // G continuous labels
	ns       []float64 // G neighbor sums (F1 gradient)
	rsum     []float64 // G row sums stored by the fused gate sweep (F4 reuse)
	cube     []float64 // |E| per-edge (l_i−l_j)³ terms (fused F1 → gather)
	partEdge []float64 // edge-shard partials (F1 cost)
	partGate []float64 // gate-shard partials (F4 cost)
	partB    []float64 // gateShards×K per-plane bias partials
	partA    []float64 // gateShards×K per-plane area partials
	partNorm []float64 // gate-shard Σg² partials (traced solves only)
	bk, ak   []float64 // K per-plane sums
	bf, af   []float64 // K per-plane gradient factors (F2/F3)
	f1k      []float64 // K precomputed scale1·(k+1) F1 row factors
	gRow     []float64 // gateShards×K per-shard gradient row staging
	clamp    []int     // gate-shard clamp counts (update step)

	// Incremental descent state (see incremental.go). dirtyGate[s] is set
	// by the fused gradient+update pass when any w entry of gate shard s
	// changed; the skip masks, when non-nil, tell the cost-side passes
	// which shards can keep their stored partials from the previous
	// iteration. nil masks mean a full sweep.
	dirtyGate []bool // per gate shard: last update changed some w entry
	skipGate  []bool // fused gate sweep skip mask (nil = run all)
	skipEdge  []bool // edge sweep skip mask
	skipGath  []bool // neighbor-sum gather skip mask
	maskGate  []bool // backing storage for skipGate
	maskEdge  []bool // backing storage for skipEdge
	maskGath  []bool // backing storage for skipGath
	sinceSync int    // iterations since the last full sweep

	// Bound kernel inputs, set by the *With entry points before each
	// dispatch. The shard kernels read them through the scratch pointer so
	// the dispatch closure can be built once, here, and reused for the
	// whole solve: a dispatched fn escapes, so a closure literal at the
	// call site would heap-allocate on every kernel call — several
	// allocations per descent iteration.
	w        W            // assignment matrix the kernels read
	w32      []float32    // float32-tier matrix, SoA: w32[k*G+i] (cost32.go)
	vel32    []float32    // float32-tier momentum state, same layout
	grad     []float64    // gradient output row block
	c        Coeffs       // coefficients for the gradient pass
	mode     GradientMode // gradient mode for F1/F4 terms
	hasNS    bool         // F1 gradient term active (sc.ns / sc.cube valid)
	hasBA    bool         // F2/F3 gradient terms active (sc.bf/sc.af valid)
	wantNorm bool         // gradient pass also fills sc.partNorm

	// Fused gradient+update inputs (descent loop only).
	step       float64   // learning rate
	mom        float64   // momentum coefficient (0 = plain steps)
	velocity   []float64 // momentum state, nil when mom == 0
	reduceDims bool      // K−1 free coordinates per row (Section IV-C)
	renorm     bool      // re-project rows onto the simplex after the step

	pass int       // which kernel the dispatch closure runs
	kern func(int) // the one dispatch closure, built by the constructors
}

// run dispatches one shard kernel over the executor.
func (sc *scratch) run(shards, pass int) {
	sc.pass = pass
	sc.ex.Run(shards, sc.kern)
}

func (p *Problem) dispatch(sc *scratch) func(int) {
	return func(s int) {
		switch sc.pass {
		case passLabels:
			p.labelsShard(sc, s)
		case passPlane:
			p.planeSumsShard(sc, s)
		case passFusedGate:
			if sc.skipGate == nil || !sc.skipGate[s] {
				p.fusedGateShard(sc, s)
			}
		case passEdgeIter:
			if sc.skipEdge == nil || !sc.skipEdge[s] {
				p.edgeIterShard(sc, s)
			}
		case passNS:
			p.neighborSumsShard(sc, s)
		case passNSGather:
			if sc.skipGath == nil || !sc.skipGath[s] {
				p.nsGatherShard(sc, s)
			}
		case passGrad:
			p.gradientShard(sc, s)
		case passGradUpdate:
			p.gradUpdateShard(sc, s)
		case passFusedGate32:
			if sc.skipGate == nil || !sc.skipGate[s] {
				p.fusedGate32Shard(sc, s)
			}
		case passGradUpdate32:
			p.gradUpdate32Shard(sc, s)
		}
	}
}

// newLabelsScratch carries exactly what the labels pass touches.
func (p *Problem) newLabelsScratch(ex pool.Executor) *scratch {
	sc := &scratch{ex: ex, l: make([]float64, p.G)}
	sc.kern = p.dispatch(sc)
	return sc
}

// newPlaneScratch carries exactly what the per-plane sum pass touches.
func (p *Problem) newPlaneScratch(ex pool.Executor) *scratch {
	gs := pool.Shards(p.G, gateChunk)
	sc := &scratch{
		ex:    ex,
		partB: make([]float64, gs*p.K),
		partA: make([]float64, gs*p.K),
		bk:    make([]float64, p.K),
		ak:    make([]float64, p.K),
	}
	sc.kern = p.dispatch(sc)
	return sc
}

// newCostScratch carries the buffers of one cost evaluation (fused gate
// pass + F1 edge pass) — no gradient, neighbor-sum, or update state. No
// rsum buffer on purpose: that keeps the one-shot entry points on the
// historical row-major gate sweep; the column-blocked form (which needs
// the stored row sums) only wins when the descent loop reuses the block
// across an iteration's passes.
func (p *Problem) newCostScratch(ex pool.Executor) *scratch {
	gs := pool.Shards(p.G, gateChunk)
	es := pool.Shards(len(p.Edges), edgeChunk)
	sc := &scratch{
		ex:       ex,
		l:        make([]float64, p.G),
		partEdge: make([]float64, es),
		partGate: make([]float64, gs),
		partB:    make([]float64, gs*p.K),
		partA:    make([]float64, gs*p.K),
		bk:       make([]float64, p.K),
		ak:       make([]float64, p.K),
	}
	sc.kern = p.dispatch(sc)
	return sc
}

// newGradScratch carries the buffers of one gradient evaluation (labels,
// neighbor sums computed directly from the labels, plane sums, row pass).
func (p *Problem) newGradScratch(ex pool.Executor) *scratch {
	gs := pool.Shards(p.G, gateChunk)
	sc := &scratch{
		ex:    ex,
		l:     make([]float64, p.G),
		ns:    make([]float64, p.G),
		partB: make([]float64, gs*p.K),
		partA: make([]float64, gs*p.K),
		bk:    make([]float64, p.K),
		ak:    make([]float64, p.K),
		bf:    make([]float64, p.K),
		af:    make([]float64, p.K),
	}
	sc.kern = p.dispatch(sc)
	return sc
}

// newScratch is the full solver scratch: everything the fused iteration
// evaluation (evalIter), the calibration gradient, the fused
// gradient+update pass, and the final cost need. All float64 buffers come
// out of one backing slab and the bool masks out of another — the whole
// solver working set is a handful of setup allocations, and the descent
// loop itself allocates nothing.
func (p *Problem) newScratch(ex pool.Executor) *scratch {
	gs := pool.Shards(p.G, gateChunk)
	es := pool.Shards(len(p.Edges), edgeChunk)
	K := p.K
	slab := make([]float64, 3*p.G+len(p.Edges)+es+2*gs+3*gs*K+5*K)
	cut := func(n int) []float64 {
		b := slab[:n:n]
		slab = slab[n:]
		return b
	}
	bools := make([]bool, 3*gs+es)
	cutB := func(n int) []bool {
		b := bools[:n:n]
		bools = bools[n:]
		return b
	}
	sc := &scratch{
		ex:       ex,
		l:        cut(p.G),
		ns:       cut(p.G),
		rsum:     cut(p.G),
		cube:     cut(len(p.Edges)),
		partEdge: cut(es),
		partGate: cut(gs),
		partNorm: cut(gs),
		partB:    cut(gs * K),
		partA:    cut(gs * K),
		gRow:     cut(gs * K),
		bk:       cut(K),
		ak:       cut(K),
		bf:       cut(K),
		af:       cut(K),
		f1k:      cut(K),
		clamp:    make([]int, gs),

		dirtyGate: cutB(gs),
		maskGate:  cutB(gs),
		maskGath:  cutB(gs),
		maskEdge:  cutB(es),
	}
	sc.kern = p.dispatch(sc)
	return sc
}

// W is the relaxed assignment matrix, stored row-major: w[i*K+k] is
// w_{i,k}, the degree to which gate i belongs to plane k (planes are
// 0-based internally; the label value used in the distance cost is k+1,
// matching the paper's 1..K convention).
type W []float64

// NewW allocates a zero matrix for the problem.
func (p *Problem) NewW() W { return make(W, p.G*p.K) }

// At returns w_{i,k}.
func (w W) At(i, k, K int) float64 { return w[i*K+k] }

// Labels computes the continuous labels l_i = Σ_k (k+1)·w_{i,k} (Eq. 3).
func (p *Problem) Labels(w W) []float64 {
	sc := p.newLabelsScratch(pool.Ephemeral(1))
	p.labelsInto(w, sc)
	return sc.l
}

// labelsInto fills sc.l with the continuous labels of w.
func (p *Problem) labelsInto(w W, sc *scratch) {
	sc.w = w
	sc.run(pool.Shards(p.G, gateChunk), passLabels)
}

func (p *Problem) labelsShard(sc *scratch, s int) {
	w, l := sc.w, sc.l
	lo, hi := pool.ShardRange(p.G, gateChunk, s)
	for i := lo; i < hi; i++ {
		row := w[i*p.K : (i+1)*p.K]
		var sum float64
		for k, v := range row {
			sum += float64(k+1) * v
		}
		l[i] = sum
	}
}

// planeSums computes B_k = Σ_i b_i·w_{i,k} and A_k likewise. Each shard
// accumulates into its own K-vector; the partials are merged in shard
// order, so the totals are identical for every worker count.
func (p *Problem) planeSums(w W, workers int) (bk, ak []float64) {
	sc := p.newPlaneScratch(pool.Ephemeral(workers))
	p.planeSumsInto(w, sc)
	return sc.bk, sc.ak
}

// planeSumsInto fills sc.bk / sc.ak. Shard partials are zeroed inside the
// shard body (so a reused scratch behaves exactly like a fresh one) and
// merged in shard-index order, keeping the totals bitwise identical for
// every worker count.
func (p *Problem) planeSumsInto(w W, sc *scratch) {
	shards := pool.Shards(p.G, gateChunk)
	sc.w = w
	sc.run(shards, passPlane)
	for k := 0; k < p.K; k++ {
		sc.bk[k], sc.ak[k] = 0, 0
	}
	for s := 0; s < shards; s++ {
		for k := 0; k < p.K; k++ {
			sc.bk[k] += sc.partB[s*p.K+k]
			sc.ak[k] += sc.partA[s*p.K+k]
		}
	}
}

func (p *Problem) planeSumsShard(sc *scratch, s int) {
	w := sc.w
	lo, hi := pool.ShardRange(p.G, gateChunk, s)
	pb := sc.partB[s*p.K : (s+1)*p.K]
	pa := sc.partA[s*p.K : (s+1)*p.K]
	for k := range pb {
		pb[k], pa[k] = 0, 0
	}
	for i := lo; i < hi; i++ {
		b, a := p.Bias[i], p.Area[i]
		row := w[i*p.K : (i+1)*p.K]
		for k, v := range row {
			pb[k] += b * v
			pa[k] += a * v
		}
	}
}

// Cost evaluates the relaxed cost F and its components at w (serially —
// shorthand for CostParallel with one worker).
func (p *Problem) Cost(w W, c Coeffs) Breakdown { return p.CostParallel(w, c, 1) }

// CostParallel evaluates the relaxed cost on `workers` goroutines (≤ 0 =
// one per CPU). The fixed shard decomposition makes the result bitwise
// identical for every worker count.
func (p *Problem) CostParallel(w W, c Coeffs, workers int) Breakdown {
	sc := p.newCostScratch(pool.Ephemeral(pool.Resolve(workers)))
	return p.costWith(w, c, sc)
}

// costWith is CostParallel against caller-owned scratch buffers — the
// allocation-free form the descent loop's final evaluation uses. It is the
// cost half of iterWith: one fused gate sweep (labels + plane-sum + F4
// partials) and one edge sweep (F1 partials).
func (p *Problem) costWith(w W, c Coeffs, sc *scratch) Breakdown {
	sc.w = w
	sc.hasNS = false // cost only: the edge pass skips the cube fill
	sc.skipGate, sc.skipEdge, sc.skipGath = nil, nil, nil
	sc.run(pool.Shards(p.G, gateChunk), passFusedGate)
	f4 := p.mergeGatePartials(sc)
	f2, f3 := p.varianceF2F3(sc.bk, sc.ak)
	f1 := p.costF1(sc)
	return p.finishBreakdown(c, f1, f2, f3, f4, sc.bk)
}

// fusedGateShard is the single gate sweep shared by every cost/iteration
// evaluation: one pass over the rows of w produces the continuous labels
// (Eq. 3), the per-plane bias/area partial sums (F2/F3), and the F4 vertex
// penalty partials. Each quantity keeps its own accumulator and its
// historical accumulation order, so the fused sweep is bitwise identical to
// the three separate sweeps it replaces — it just reads w once instead of
// three times.
func (p *Problem) fusedGateShard(sc *scratch, s int) {
	if sc.rsum != nil {
		p.fusedGateShardBlocked(sc, s)
		return
	}
	w := sc.w
	lo, hi := pool.ShardRange(p.G, gateChunk, s)
	pb := sc.partB[s*p.K : (s+1)*p.K]
	pa := sc.partA[s*p.K : (s+1)*p.K]
	for k := range pb {
		pb[k], pa[k] = 0, 0
	}
	invK := 1.0 / float64(p.K)
	var f4 float64
	for i := lo; i < hi; i++ {
		b, a := p.Bias[i], p.Area[i]
		row := w[i*p.K : (i+1)*p.K]
		var lsum, rowSum float64
		for k, v := range row {
			lsum += float64(k+1) * v
			pb[k] += b * v
			pa[k] += a * v
			rowSum += v
		}
		sc.l[i] = lsum
		mean := rowSum * invK
		t1 := rowSum - 1 // K·w̄_i − 1
		var varSum float64
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		f4 += t1*t1 - invK*varSum
	}
	sc.partGate[s] = f4
}

// fusedGateShardBlocked is the cache-blocked column-major form of the fused
// gate sweep, used whenever the scratch carries a row-sum buffer (the
// solver path): instead of walking each row once with four interleaved
// accumulators — whose serial FP add chains bound the sweep by add latency,
// not throughput — it sweeps the shard's w block one plane column at a
// time, accumulating the per-plane sums in registers and the labels/row
// sums elementwise, then finishes the F4 variance per row. Every
// accumulator still adds the exact same values in the exact same order
// (l[i] and rsum[i] over k ascending, pb[k]/pa[k] over i ascending, varSum
// and f4 as before), so the blocked form is bitwise identical to the
// row-major one; the shard block (gateChunk rows) stays resident in L1
// across the K column passes.
func (p *Problem) fusedGateShardBlocked(sc *scratch, s int) {
	w := sc.w
	K := p.K
	lo, hi := pool.ShardRange(p.G, gateChunk, s)
	pb := sc.partB[s*K : (s+1)*K]
	pa := sc.partA[s*K : (s+1)*K]
	l := sc.l[lo:hi]
	rsum := sc.rsum[lo:hi]
	bias := p.Bias[lo:hi]
	area := p.Area[lo:hi]
	clear(l)
	clear(rsum)
	for k := 0; k < K; k++ {
		kf := float64(k + 1)
		var pbk, pak float64
		col := w[lo*K+k:]
		idx := 0
		for i := range l {
			v := col[idx]
			idx += K
			l[i] += kf * v
			rsum[i] += v
			pbk += bias[i] * v
			pak += area[i] * v
		}
		pb[k], pa[k] = pbk, pak
	}
	invK := 1.0 / float64(K)
	var f4 float64
	for i := range l {
		rowSum := rsum[i]
		mean := rowSum * invK
		t1 := rowSum - 1 // K·w̄_i − 1
		row := w[(lo+i)*K : (lo+i+1)*K]
		var varSum float64
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		f4 += t1*t1 - invK*varSum
	}
	sc.partGate[s] = f4
}

// mergeGatePartials folds the fused gate sweep's shard partials in
// shard-index order: per-plane sums into sc.bk/sc.ak and the normalized F4
// total as the return value.
func (p *Problem) mergeGatePartials(sc *scratch) (f4 float64) {
	shards := pool.Shards(p.G, gateChunk)
	for k := 0; k < p.K; k++ {
		sc.bk[k], sc.ak[k] = 0, 0
	}
	var total float64
	for s := 0; s < shards; s++ {
		total += sc.partGate[s]
		for k := 0; k < p.K; k++ {
			sc.bk[k] += sc.partB[s*p.K+k]
			sc.ak[k] += sc.partA[s*p.K+k]
		}
	}
	return total / p.N4
}

// costF1 runs the edge sweep (reading the labels from sc.l) and merges its
// partials. When sc.hasNS is set the sweep also fills sc.cube with the
// per-edge cubed differences the gradient's neighbor-sum gather reuses.
func (p *Problem) costF1(sc *scratch) float64 {
	ne := len(p.Edges)
	if ne == 0 {
		return 0
	}
	sc.run(pool.Shards(ne, edgeChunk), passEdgeIter)
	var total float64
	for _, v := range sc.partEdge {
		total += v
	}
	return total / p.N1
}

// edgeIterShard accumulates the F1 cost partial of one edge shard and — on
// the fused iteration path — stores each edge's cubed label difference for
// the neighbor-sum gather, so the gradient never recomputes l_i − l_j. The
// cube values match the historical per-gate recomputation bitwise: d²·d
// pairs the multiplications exactly as (d·d)·d did, and the paper-mode
// |d|³ keeps its left-to-right association. Weighted problems fold the
// edge multiplicity into both the cost term and the cube, so the gather
// (nsGatherShard) and the gradient row pass stay weight-agnostic; the
// unweighted loops are untouched and stay bitwise identical to history.
func (p *Problem) edgeIterShard(sc *scratch, s int) {
	l := sc.l
	ne := len(p.Edges)
	lo, hi := pool.ShardRange(ne, edgeChunk, s)
	var sum float64
	ew := p.EdgeWeight
	switch {
	case !sc.hasNS:
		if ew == nil {
			for _, e := range p.Edges[lo:hi] {
				d := l[e[0]] - l[e[1]]
				d2 := d * d
				sum += d2 * d2
			}
		} else {
			for ei := lo; ei < hi; ei++ {
				e := p.Edges[ei]
				d := l[e[0]] - l[e[1]]
				d2 := d * d
				sum += ew[ei] * (d2 * d2)
			}
		}
	case sc.mode == GradientExact:
		cube := sc.cube
		if ew == nil {
			for ei := lo; ei < hi; ei++ {
				e := p.Edges[ei]
				d := l[e[0]] - l[e[1]]
				d2 := d * d
				sum += d2 * d2
				cube[ei] = d2 * d
			}
		} else {
			for ei := lo; ei < hi; ei++ {
				e := p.Edges[ei]
				d := l[e[0]] - l[e[1]]
				d2 := d * d
				sum += ew[ei] * (d2 * d2)
				cube[ei] = ew[ei] * (d2 * d)
			}
		}
	default: // GradientPaper: |l_i − l_j|³ (Eq. 10 as printed)
		cube := sc.cube
		if ew == nil {
			for ei := lo; ei < hi; ei++ {
				e := p.Edges[ei]
				d := l[e[0]] - l[e[1]]
				d2 := d * d
				sum += d2 * d2
				t := math.Abs(d)
				cube[ei] = t * t * t
			}
		} else {
			for ei := lo; ei < hi; ei++ {
				e := p.Edges[ei]
				d := l[e[0]] - l[e[1]]
				d2 := d * d
				sum += ew[ei] * (d2 * d2)
				t := math.Abs(d)
				cube[ei] = ew[ei] * (t * t * t)
			}
		}
	}
	sc.partEdge[s] = sum
}

// varianceF2F3 finishes F2/F3 from the per-plane sums (K is small, so this
// stays serial).
func (p *Problem) varianceF2F3(bk, ak []float64) (f2, f3 float64) {
	var bMean, aMean float64
	for k := 0; k < p.K; k++ {
		bMean += bk[k]
		aMean += ak[k]
	}
	bMean /= float64(p.K)
	aMean /= float64(p.K)
	var bVar, aVar float64
	for k := 0; k < p.K; k++ {
		db := bk[k] - bMean
		da := ak[k] - aMean
		bVar += db * db
		aVar += da * da
	}
	f2 = bVar / (float64(p.K) * p.N2)
	f3 = aVar / (float64(p.K) * p.N3)
	return f2, f3
}

// GradientMode selects between the analytically exact gradients and the
// formulas as literally printed in the paper's Eq. 10 (which drop the sign
// of (l_i − l_j) in ∂F1 and disagree with d F4/dw by a K(1−w_ik) term; see
// DESIGN.md). The exact mode is the default and is validated against finite
// differences in the tests.
type GradientMode int

const (
	// GradientExact uses analytic derivatives of Eqs. 4–6, 9.
	GradientExact GradientMode = iota
	// GradientPaper uses the formulas exactly as printed in Eq. 10.
	GradientPaper
)

// String names the gradient mode.
func (m GradientMode) String() string {
	switch m {
	case GradientExact:
		return "exact"
	case GradientPaper:
		return "paper"
	default:
		return "unknown"
	}
}

// Gradient writes ∂F/∂w into grad (same layout as w), combining the four
// terms with the coefficients. grad must have length G*K. Serial shorthand
// for GradientParallel with one worker.
func (p *Problem) Gradient(w W, c Coeffs, mode GradientMode, grad []float64) {
	p.GradientParallel(w, c, mode, grad, 1)
}

// GradientParallel writes ∂F/∂w into grad using `workers` goroutines (≤ 0 =
// one per CPU). The global reductions (labels, per-plane sums, neighbor
// sums) run as shard-merged kernels and the per-gate row writes are
// conflict-free, so the result is bitwise identical for every worker count.
//
// Per-term math (see the serial derivation the kernels preserve):
//
// F1 exact: ∂F1/∂w_{i,k} = (4(k+1)/N1) Σ_{j ~ i} (l_i − l_j)³, where j
// ranges over all neighbors of i (each parallel edge counted separately).
// F1 paper (Eq. 10): same but with |l_i − l_j|³ and the incoming sum
// subtracted from the outgoing sum.
//
// F2/F3: ∂F2/∂w_{i,k} = 2·b_i·(B_k − B̄)/(K·N2) — the paper's printed
// formula is also the exact derivative (the mean-shift terms cancel because
// Σ_k (B_k − B̄) = 0). Same for F3 with areas.
//
// F4 exact: ∂F4/∂w_{i,k} = (2/N4)·[(K·w̄_i − 1) − (w_{i,k} − w̄_i)/K].
// F4 paper (Eq. 10): (2/N4)·[(K + 1/K)(w̄_i − w_{i,k}) + K − 1].
func (p *Problem) GradientParallel(w W, c Coeffs, mode GradientMode, grad []float64, workers int) {
	sc := p.newGradScratch(pool.Ephemeral(pool.Resolve(workers)))
	p.gradientWith(w, c, mode, grad, sc)
}

// gradientWith is GradientParallel against caller-owned scratch buffers.
// The descent loop proper uses the fused iterWith instead; this standalone
// form serves the one-shot entry points and the solver's step
// auto-calibration, computing the neighbor sums directly from the labels
// (no cube buffer required).
func (p *Problem) gradientWith(w W, c Coeffs, mode GradientMode, grad []float64, sc *scratch) {
	// Global quantities shared by all rows.
	sc.hasNS = c.C1 != 0 && len(p.Edges) > 0 // F1 neighbor sums Σ_j (l_i − l_j)³
	if sc.hasNS {
		p.labelsInto(w, sc)
		sc.mode = mode
		sc.run(pool.Shards(p.G, gateChunk), passNS)
	}
	sc.hasBA = c.C2 != 0 || c.C3 != 0 || len(p.PlaneTerms) > 0 // per-plane F2/F3 + plane-term factors
	if sc.hasBA {
		p.planeSumsInto(w, sc)
		p.planeFactors(c, sc)
	}
	sc.w, sc.grad, sc.c, sc.mode = w, grad, c, mode
	sc.run(pool.Shards(p.G, gateChunk), passGrad)
}

// evalIter is the cost side of one descent iteration: one fused gate sweep
// (labels + plane sums + F4 partials + stored row sums), one edge sweep (F1
// cost + per-edge cubes), the neighbor-sum gather, and the F2/F3 row
// factors — everything the fused gradient+update pass (gradUpdate) needs,
// plus the cost Breakdown the stopping test reads. Splitting the evaluation
// here lets the solver check the margin before any gradient work: on the
// converged iteration the historical kernel computed a gradient and threw
// it away, so skipping it is bitwise invisible.
//
// When the incremental skip masks are armed (see incremental.go), shards
// whose inputs provably did not change since the previous iteration keep
// their stored labels, cubes, neighbor sums, and partial sums; the
// shard-order merges below read the same bytes a full sweep would have
// written, so the result stays bitwise identical to a full sweep. Every
// individual accumulator keeps its historical association, so the fused
// evaluation is also bitwise identical to the historical two-pass
// cost+gradient form at every worker count (see DESIGN.md §10, §15).
func (p *Problem) evalIter(w W, c Coeffs, mode GradientMode, sc *scratch) Breakdown {
	sc.w, sc.mode = w, mode
	sc.hasNS = c.C1 != 0 && len(p.Edges) > 0
	gateShards := pool.Shards(p.G, gateChunk)

	// Cost-side reductions (also the gradient's shared global quantities).
	sc.run(gateShards, passFusedGate)
	f4 := p.mergeGatePartials(sc)
	f2, f3 := p.varianceF2F3(sc.bk, sc.ak)
	f1 := p.costF1(sc) // fills sc.cube for the gather below (hasNS)

	// Gradient-side finishing passes on the shared reductions.
	if sc.hasNS {
		sc.run(gateShards, passNSGather)
	}
	sc.hasBA = c.C2 != 0 || c.C3 != 0 || len(p.PlaneTerms) > 0
	if sc.hasBA {
		p.planeFactors(c, sc)
	}
	sc.c = c
	return p.finishBreakdown(c, f1, f2, f3, f4, sc.bk)
}

// gradUpdate runs the fused gradient+update pass over every gate shard:
// each row's gradient is computed from the reductions evalIter left in the
// scratch and applied (momentum, step, clamp, optional renormalize /
// dimension reduction) immediately, without materializing a G×K gradient
// array. Row i's gradient depends only on its own w row plus the global
// ns/bf/af/rsum quantities — never on another row's updated values — so the
// per-row interleave is element-for-element identical to the historical
// separate gradient pass + update pass. The pass also records per-shard
// clamp counts, Σg² partials (traced solves), and the dirty flags the
// incremental tier reads.
func (p *Problem) gradUpdate(sc *scratch) {
	sc.run(pool.Shards(p.G, gateChunk), passGradUpdate)
}

func (p *Problem) gradUpdateShard(sc *scratch, s int) {
	w, c, mode := sc.w, sc.c, sc.mode
	K := p.K
	var ns []float64
	if sc.hasNS {
		ns = sc.ns
	}
	var bf, af []float64
	if sc.hasBA {
		bf, af = sc.bf, sc.af
	}
	invK := 1.0 / float64(K)
	scale4 := 2 * c.C4 / p.N4
	kf := float64(K)
	f1k, rsum := sc.f1k, sc.rsum
	step := sc.step
	lo, hi := pool.ShardRange(p.G, gateChunk, s)
	clamped := 0
	changed := false

	// Fast path: the default configuration (all four terms active, exact
	// gradients, plain clamped steps, untraced). One loop computes each
	// gradient entry with the historical association — (f1k[k]·ns_i) +
	// (b·bf[k] + a·af[k]) + scale4·(…) associates exactly like the
	// historical g = f1; g += f23; g += f4 sequence — and applies the step
	// in place, so the w row is read and written once with no gradient
	// array traffic at all.
	if ns != nil && bf != nil && c.C4 != 0 && mode == GradientExact &&
		sc.velocity == nil && !sc.reduceDims && !sc.renorm && !sc.wantNorm {
		// Reslice the K-wide factor vectors to their exact length so the
		// compiler can prove k < K == len and drop the bounds checks from
		// the inner loop.
		f1k, bf, af := f1k[:K:K], bf[:K:K], af[:K:K]
		// The clamp counter is only ever read under a tracer, and the fast
		// path requires !wantNorm (no tracer), so it skips the counting.
		for i := lo; i < hi; i++ {
			base := i * K
			row := w[base : base+K : base+K]
			b, a := p.Bias[i], p.Area[i]
			nsi := ns[i]
			rowSum := rsum[i]
			mean := rowSum * invK
			t1 := rowSum - 1
			if nsi != 0 {
				for k := 0; k < K; k++ {
					gk := f1k[k]*nsi + (b*bf[k] + a*af[k]) + scale4*(t1-(row[k]-mean)*invK)
					v := row[k] - step*gk
					if v < 0 {
						v = 0
					} else if v > 1 {
						v = 1
					}
					if v != row[k] {
						changed = true
					}
					row[k] = v
				}
			} else {
				for k := 0; k < K; k++ {
					gk := 0.0
					gk += b*bf[k] + a*af[k]
					gk += scale4 * (t1 - (row[k]-mean)*invK)
					v := row[k] - step*gk
					if v < 0 {
						v = 0
					} else if v > 1 {
						v = 1
					}
					if v != row[k] {
						changed = true
					}
					row[k] = v
				}
			}
		}
		sc.clamp[s] = 0
		sc.dirtyGate[s] = changed
		return
	}

	// General path: stage the gradient row in the shard's gRow slot with
	// exactly the historical term order (F1, then F2+F3, then F4, then the
	// Σg² partial, then momentum), then apply the historical update row
	// logic. Everything is per-row local, so the staging buffer is K wide.
	g := sc.gRow[s*K : (s+1)*K]
	vel := sc.velocity
	mom := sc.mom
	var normSum float64
	last := K - 1
	for i := lo; i < hi; i++ {
		base := i * K
		row := w[base : base+K : base+K]
		if ns != nil && ns[i] != 0 {
			nsi := ns[i]
			for k := 0; k < K; k++ {
				g[k] = f1k[k] * nsi
			}
		} else {
			for k := 0; k < K; k++ {
				g[k] = 0
			}
		}
		if bf != nil {
			b, a := p.Bias[i], p.Area[i]
			for k := 0; k < K; k++ {
				g[k] += b*bf[k] + a*af[k]
			}
		}
		if c.C4 != 0 {
			rowSum := rsum[i]
			mean := rowSum * invK
			switch mode {
			case GradientExact:
				t1 := rowSum - 1
				for k := 0; k < K; k++ {
					g[k] += scale4 * (t1 - (row[k]-mean)*invK)
				}
			case GradientPaper:
				for k := 0; k < K; k++ {
					g[k] += scale4 * ((kf+invK)*(mean-row[k]) + kf - 1)
				}
			}
		}
		if sc.wantNorm {
			for k := 0; k < K; k++ {
				normSum += g[k] * g[k]
			}
		}
		if vel != nil {
			for k := 0; k < K; k++ {
				vel[base+k] = mom*vel[base+k] + g[k]
				g[k] = vel[base+k]
			}
		}
		if sc.reduceDims {
			// K−1 free coordinates per row; the last is derived.
			gLast := g[last]
			var sum float64
			for k := 0; k < last; k++ {
				ov := row[k]
				v := ov - step*(g[k]-gLast)
				if v < 0 {
					v = 0
					clamped++
				} else if v > 1 {
					v = 1
					clamped++
				}
				if v != ov {
					changed = true
				}
				row[k] = v
				sum += v
			}
			if sum > 1 {
				inv := 1 / sum
				for k := 0; k < last; k++ {
					nv := row[k] * inv
					if nv != row[k] {
						changed = true
					}
					row[k] = nv
				}
				sum = 1
			}
			nv := 1 - sum
			if nv != row[last] {
				changed = true
			}
			row[last] = nv
		} else {
			for k := 0; k < K; k++ {
				ov := row[k]
				v := ov - step*g[k]
				if v < 0 {
					v = 0
					clamped++
				} else if v > 1 {
					v = 1
					clamped++
				}
				if v != ov {
					changed = true
				}
				row[k] = v
			}
		}
		if sc.renorm {
			var sum float64
			for _, v := range row {
				sum += v
			}
			if sum > 0 {
				for k := range row {
					nv := row[k] / sum
					if nv != row[k] {
						changed = true
					}
					row[k] = nv
				}
			}
		}
	}
	sc.clamp[s] = clamped
	sc.dirtyGate[s] = changed
	if sc.wantNorm {
		sc.partNorm[s] = normSum
	}
}

// setDescentState binds the loop-constant inputs of the fused
// gradient+update pass, including the precomputed F1 row factors
// scale1·(k+1) — exactly the products the historical per-entry expression
// scale1·float64(k+1)·ns_i formed first, so reusing them is bitwise
// neutral.
func (sc *scratch) setDescentState(p *Problem, c Coeffs, mode GradientMode,
	step, mom float64, velocity []float64, reduceDims, renorm bool) {
	scale1 := 4 * c.C1 / p.N1
	for k := 0; k < p.K; k++ {
		sc.f1k[k] = scale1 * float64(k+1)
	}
	sc.c, sc.mode = c, mode
	sc.step, sc.mom, sc.velocity = step, mom, velocity
	sc.reduceDims, sc.renorm = reduceDims, renorm
}

// planeFactors turns the per-plane sums sc.bk/sc.ak into the F2/F3 gradient
// row factors sc.bf/sc.af.
func (p *Problem) planeFactors(c Coeffs, sc *scratch) {
	bk, ak := sc.bk, sc.ak
	var bMean, aMean float64
	for k := 0; k < p.K; k++ {
		bMean += bk[k]
		aMean += ak[k]
	}
	bMean /= float64(p.K)
	aMean /= float64(p.K)
	bf, af := sc.bf, sc.af
	for k := 0; k < p.K; k++ {
		bf[k] = 2 * c.C2 * (bk[k] - bMean) / (float64(p.K) * p.N2)
		af[k] = 2 * c.C3 * (ak[k] - aMean) / (float64(p.K) * p.N3)
	}
	// Plane-term gradients add into the bias factors (the row pass
	// multiplies bf[k] by b_i, exactly the chain rule these terms need).
	// Guarded: even an exact +0.0 could flip a −0.0 factor bit.
	if len(p.PlaneTerms) > 0 {
		p.planeTermFactors(bf, bk)
	}
}

func (p *Problem) gradientShard(sc *scratch, s int) {
	w, grad, c, mode := sc.w, sc.grad, sc.c, sc.mode
	var ns []float64
	if sc.hasNS {
		ns = sc.ns
	}
	var bf, af []float64
	if sc.hasBA {
		bf, af = sc.bf, sc.af
	}
	scale1 := 4 * c.C1 / p.N1
	invK := 1.0 / float64(p.K)
	scale4 := 2 * c.C4 / p.N4
	kf := float64(p.K)
	lo, hi := pool.ShardRange(p.G, gateChunk, s)
	var normSum float64
	for i := lo; i < hi; i++ {
		base := i * p.K
		row := w[base : base+p.K]
		g := grad[base : base+p.K]
		// The terms add in the historical order (F1, then F2+F3, then
		// F4) so the fused pass reproduces the old three-pass sums.
		if ns != nil && ns[i] != 0 {
			for k := 0; k < p.K; k++ {
				g[k] = scale1 * float64(k+1) * ns[i]
			}
		} else {
			for k := 0; k < p.K; k++ {
				g[k] = 0
			}
		}
		if bf != nil {
			b, a := p.Bias[i], p.Area[i]
			for k := 0; k < p.K; k++ {
				g[k] += b*bf[k] + a*af[k]
			}
		}
		if c.C4 != 0 {
			var rowSum float64
			for _, v := range row {
				rowSum += v
			}
			mean := rowSum * invK
			switch mode {
			case GradientExact:
				t1 := rowSum - 1
				for k := 0; k < p.K; k++ {
					g[k] += scale4 * (t1 - (row[k]-mean)*invK)
				}
			case GradientPaper:
				for k := 0; k < p.K; k++ {
					g[k] += scale4 * ((kf+invK)*(mean-row[k]) + kf - 1)
				}
			}
		}
		if sc.wantNorm {
			for k := 0; k < p.K; k++ {
				normSum += g[k] * g[k]
			}
		}
	}
	if sc.wantNorm {
		sc.partNorm[s] = normSum
	}
}

// neighborSumsShard gathers sc.ns[i] = Σ_{j ~ i} (l_i − l_j)³ (exact mode)
// or the paper's oriented |·|³ sums from sc.l, via the incidence CSR. Each
// gate's sum is accumulated privately in edge order — the same association
// as the historical scatter loop — so the values match it bitwise while
// staying write-conflict-free across workers. This is the standalone
// variant used when no fused edge pass has filled sc.cube.
func (p *Problem) neighborSumsShard(sc *scratch, sh int) {
	l, mode := sc.l, sc.mode
	ew := p.EdgeWeight
	lo, hi := pool.ShardRange(p.G, gateChunk, sh)
	for i := lo; i < hi; i++ {
		var sum float64
		for idx := p.incStart[i]; idx < p.incStart[i+1]; idx++ {
			ei := p.incEdge[idx]
			e := p.Edges[ei]
			d := l[e[0]] - l[e[1]]
			var t float64
			switch mode {
			case GradientExact:
				t = d * d * d
			case GradientPaper:
				t = math.Abs(d)
				t = t * t * t
			}
			if ew != nil {
				// Same product order as the fused cube (w · d³ commutes
				// exactly), so standalone and gathered sums stay bitwise
				// equal.
				t = ew[ei] * t
			}
			if p.incSign[idx] < 0 {
				// Incoming connection (Eq. 10 first line subtracts).
				t = -t
			}
			sum += t
		}
		sc.ns[i] = sum
	}
}

// nsGatherShard is neighborSumsShard against the per-edge cubes the fused
// F1 pass already computed: a pure gather (load, sign, add) with no
// floating-point recomputation, in the same per-gate edge order. The
// orientation sign is applied by multiplying with ±1.0 (incSignF) — exact
// in IEEE 754, so bitwise identical to the historical branch-and-negate,
// without the data-dependent branch the predictor cannot learn.
func (p *Problem) nsGatherShard(sc *scratch, sh int) {
	cube := sc.cube
	incEdge, signf := p.incEdge, p.incSignF
	lo, hi := pool.ShardRange(p.G, gateChunk, sh)
	for i := lo; i < hi; i++ {
		// Slice this gate's incidence run once so the range loop and the
		// equal-length reslice prove the edge/sign accesses in bounds; only
		// the data-dependent cube gather keeps its check.
		start, end := p.incStart[i], p.incStart[i+1]
		ie := incEdge[start:end]
		sf := signf[start:end]
		sf = sf[:len(ie)]
		var sum float64
		for j, e := range ie {
			sum += cube[e] * sf[j]
		}
		sc.ns[i] = sum
	}
}

// Assign snaps the relaxed matrix to a discrete assignment: each gate goes
// to the plane with the largest w_{i,k} (lowest index wins ties). Returned
// labels are 0-based plane indices.
func (p *Problem) Assign(w W) []int {
	labels := make([]int, p.G)
	for i := 0; i < p.G; i++ {
		row := w[i*p.K : (i+1)*p.K]
		best, bestK := row[0], 0
		for k := 1; k < p.K; k++ {
			if row[k] > best {
				best, bestK = row[k], k
			}
		}
		labels[i] = bestK
	}
	return labels
}

// DiscreteCost evaluates the cost components at an integer assignment
// (labels are 0-based planes). F4 is constant at vertices
// (−(K−1)/(K²·N4)·G) and is reported for completeness.
func (p *Problem) DiscreteCost(labels []int, c Coeffs) Breakdown {
	var f1 float64
	if len(p.Edges) > 0 {
		var s float64
		if ew := p.EdgeWeight; ew != nil {
			for i, e := range p.Edges {
				d := float64(labels[e[0]] - labels[e[1]])
				d2 := d * d
				s += ew[i] * (d2 * d2)
			}
		} else {
			for _, e := range p.Edges {
				d := float64(labels[e[0]] - labels[e[1]])
				d2 := d * d
				s += d2 * d2
			}
		}
		f1 = s / p.N1
	}
	bk := make([]float64, p.K)
	ak := make([]float64, p.K)
	for i, lb := range labels {
		bk[lb] += p.Bias[i]
		ak[lb] += p.Area[i]
	}
	var bVar, aVar float64
	for k := 0; k < p.K; k++ {
		db := bk[k] - p.MeanBias
		da := ak[k] - p.MeanArea
		bVar += db * db
		aVar += da * da
	}
	f2 := bVar / (float64(p.K) * p.N2)
	f3 := aVar / (float64(p.K) * p.N3)
	kf := float64(p.K)
	f4 := -float64(p.G) * (kf - 1) / (kf * kf) / p.N4
	return p.finishBreakdown(c, f1, f2, f3, f4, bk)
}

// PlaneTotals returns the per-plane bias (mA) and area (mm²) sums for a
// discrete assignment.
func (p *Problem) PlaneTotals(labels []int) (bias, area []float64) {
	bias = make([]float64, p.K)
	area = make([]float64, p.K)
	for i, lb := range labels {
		bias[lb] += p.Bias[i]
		area[lb] += p.Area[i]
	}
	return bias, area
}
