package partition

import "math"

// W is the relaxed assignment matrix, stored row-major: w[i*K+k] is
// w_{i,k}, the degree to which gate i belongs to plane k (planes are
// 0-based internally; the label value used in the distance cost is k+1,
// matching the paper's 1..K convention).
type W []float64

// NewW allocates a zero matrix for the problem.
func (p *Problem) NewW() W { return make(W, p.G*p.K) }

// At returns w_{i,k}.
func (w W) At(i, k, K int) float64 { return w[i*K+k] }

// Labels computes the continuous labels l_i = Σ_k (k+1)·w_{i,k} (Eq. 3).
func (p *Problem) Labels(w W) []float64 {
	l := make([]float64, p.G)
	for i := 0; i < p.G; i++ {
		row := w[i*p.K : (i+1)*p.K]
		var s float64
		for k, v := range row {
			s += float64(k+1) * v
		}
		l[i] = s
	}
	return l
}

// planeSums computes B_k = Σ_i b_i·w_{i,k} and A_k likewise.
func (p *Problem) planeSums(w W) (bk, ak []float64) {
	bk = make([]float64, p.K)
	ak = make([]float64, p.K)
	for i := 0; i < p.G; i++ {
		b, a := p.Bias[i], p.Area[i]
		row := w[i*p.K : (i+1)*p.K]
		for k, v := range row {
			bk[k] += b * v
			ak[k] += a * v
		}
	}
	return bk, ak
}

// Cost evaluates the relaxed cost F and its components at w.
func (p *Problem) Cost(w W, c Coeffs) Breakdown {
	f1 := p.costF1(w)
	f2, f3 := p.costF2F3(w)
	f4 := p.costF4(w)
	return c.combine(f1, f2, f3, f4)
}

func (p *Problem) costF1(w W) float64 {
	if len(p.Edges) == 0 {
		return 0
	}
	l := p.Labels(w)
	var s float64
	for _, e := range p.Edges {
		d := l[e[0]] - l[e[1]]
		d2 := d * d
		s += d2 * d2
	}
	return s / p.N1
}

func (p *Problem) costF2F3(w W) (f2, f3 float64) {
	bk, ak := p.planeSums(w)
	var bMean, aMean float64
	for k := 0; k < p.K; k++ {
		bMean += bk[k]
		aMean += ak[k]
	}
	bMean /= float64(p.K)
	aMean /= float64(p.K)
	var bVar, aVar float64
	for k := 0; k < p.K; k++ {
		db := bk[k] - bMean
		da := ak[k] - aMean
		bVar += db * db
		aVar += da * da
	}
	f2 = bVar / (float64(p.K) * p.N2)
	f3 = aVar / (float64(p.K) * p.N3)
	return f2, f3
}

func (p *Problem) costF4(w W) float64 {
	var s float64
	invK := 1.0 / float64(p.K)
	for i := 0; i < p.G; i++ {
		row := w[i*p.K : (i+1)*p.K]
		var sum float64
		for _, v := range row {
			sum += v
		}
		mean := sum * invK
		t1 := sum - 1 // K·w̄_i − 1
		var varSum float64
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		s += t1*t1 - invK*varSum
	}
	return s / p.N4
}

// GradientMode selects between the analytically exact gradients and the
// formulas as literally printed in the paper's Eq. 10 (which drop the sign
// of (l_i − l_j) in ∂F1 and disagree with d F4/dw by a K(1−w_ik) term; see
// DESIGN.md). The exact mode is the default and is validated against finite
// differences in the tests.
type GradientMode int

const (
	// GradientExact uses analytic derivatives of Eqs. 4–6, 9.
	GradientExact GradientMode = iota
	// GradientPaper uses the formulas exactly as printed in Eq. 10.
	GradientPaper
)

// String names the gradient mode.
func (m GradientMode) String() string {
	switch m {
	case GradientExact:
		return "exact"
	case GradientPaper:
		return "paper"
	default:
		return "unknown"
	}
}

// Gradient writes ∂F/∂w into grad (same layout as w), combining the four
// terms with the coefficients. grad must have length G*K.
func (p *Problem) Gradient(w W, c Coeffs, mode GradientMode, grad []float64) {
	for i := range grad {
		grad[i] = 0
	}
	p.addGradF1(w, c.C1, mode, grad)
	p.addGradF2F3(w, c.C2, c.C3, grad)
	p.addGradF4(w, c.C4, mode, grad)
}

// addGradF1 adds c1·∂F1/∂w.
//
// Exact: ∂F1/∂w_{i,k} = (4(k+1)/N1) Σ_{j ~ i} (l_i − l_j)³, where j ranges
// over all neighbors of i (each parallel edge counted separately).
//
// Paper (Eq. 10): same but with |l_i − l_j|³ and the incoming sum
// subtracted from the outgoing sum, i.e. the sign of the difference is
// replaced by the edge orientation.
func (p *Problem) addGradF1(w W, c1 float64, mode GradientMode, grad []float64) {
	if c1 == 0 || len(p.Edges) == 0 {
		return
	}
	l := p.Labels(w)
	// s[i] accumulates Σ_j (l_i − l_j)³ (exact) or the paper's oriented
	// absolute-value sums.
	s := make([]float64, p.G)
	for _, e := range p.Edges {
		u, v := e[0], e[1]
		d := l[u] - l[v]
		switch mode {
		case GradientExact:
			t := d * d * d
			s[u] += t
			s[v] -= t
		case GradientPaper:
			t := math.Abs(d)
			t = t * t * t
			// Outgoing connections of u add, incoming connections of v
			// subtract (Eq. 10 first line).
			s[u] += t
			s[v] -= t
		}
	}
	scale := 4 * c1 / p.N1
	for i := 0; i < p.G; i++ {
		if s[i] == 0 {
			continue
		}
		base := i * p.K
		for k := 0; k < p.K; k++ {
			grad[base+k] += scale * float64(k+1) * s[i]
		}
	}
}

// addGradF2F3 adds c2·∂F2/∂w + c3·∂F3/∂w.
//
// ∂F2/∂w_{i,k} = 2·b_i·(B_k − B̄)/(K·N2) — the paper's printed formula is
// also the exact derivative here (the mean-shift terms cancel because
// Σ_k (B_k − B̄) = 0). Same for F3 with areas.
func (p *Problem) addGradF2F3(w W, c2, c3 float64, grad []float64) {
	if c2 == 0 && c3 == 0 {
		return
	}
	bk, ak := p.planeSums(w)
	var bMean, aMean float64
	for k := 0; k < p.K; k++ {
		bMean += bk[k]
		aMean += ak[k]
	}
	bMean /= float64(p.K)
	aMean /= float64(p.K)
	// Per-plane factors reused across all gates.
	bf := make([]float64, p.K)
	af := make([]float64, p.K)
	for k := 0; k < p.K; k++ {
		bf[k] = 2 * c2 * (bk[k] - bMean) / (float64(p.K) * p.N2)
		af[k] = 2 * c3 * (ak[k] - aMean) / (float64(p.K) * p.N3)
	}
	for i := 0; i < p.G; i++ {
		b, a := p.Bias[i], p.Area[i]
		base := i * p.K
		for k := 0; k < p.K; k++ {
			grad[base+k] += b*bf[k] + a*af[k]
		}
	}
}

// addGradF4 adds c4·∂F4/∂w.
//
// Exact: ∂F4/∂w_{i,k} = (2/N4)·[(K·w̄_i − 1) − (w_{i,k} − w̄_i)/K].
//
// Paper (Eq. 10): (2/N4)·[(K + 1/K)(w̄_i − w_{i,k}) + K − 1].
func (p *Problem) addGradF4(w W, c4 float64, mode GradientMode, grad []float64) {
	if c4 == 0 {
		return
	}
	invK := 1.0 / float64(p.K)
	scale := 2 * c4 / p.N4
	kf := float64(p.K)
	for i := 0; i < p.G; i++ {
		row := w[i*p.K : (i+1)*p.K]
		var sum float64
		for _, v := range row {
			sum += v
		}
		mean := sum * invK
		base := i * p.K
		switch mode {
		case GradientExact:
			t1 := sum - 1
			for k := 0; k < p.K; k++ {
				grad[base+k] += scale * (t1 - (row[k]-mean)*invK)
			}
		case GradientPaper:
			for k := 0; k < p.K; k++ {
				grad[base+k] += scale * ((kf+invK)*(mean-row[k]) + kf - 1)
			}
		}
	}
}

// Assign snaps the relaxed matrix to a discrete assignment: each gate goes
// to the plane with the largest w_{i,k} (lowest index wins ties). Returned
// labels are 0-based plane indices.
func (p *Problem) Assign(w W) []int {
	labels := make([]int, p.G)
	for i := 0; i < p.G; i++ {
		row := w[i*p.K : (i+1)*p.K]
		best, bestK := row[0], 0
		for k := 1; k < p.K; k++ {
			if row[k] > best {
				best, bestK = row[k], k
			}
		}
		labels[i] = bestK
	}
	return labels
}

// DiscreteCost evaluates the cost components at an integer assignment
// (labels are 0-based planes). F4 is constant at vertices
// (−(K−1)/(K²·N4)·G) and is reported for completeness.
func (p *Problem) DiscreteCost(labels []int, c Coeffs) Breakdown {
	var f1 float64
	if len(p.Edges) > 0 {
		var s float64
		for _, e := range p.Edges {
			d := float64(labels[e[0]] - labels[e[1]])
			d2 := d * d
			s += d2 * d2
		}
		f1 = s / p.N1
	}
	bk := make([]float64, p.K)
	ak := make([]float64, p.K)
	for i, lb := range labels {
		bk[lb] += p.Bias[i]
		ak[lb] += p.Area[i]
	}
	var bVar, aVar float64
	for k := 0; k < p.K; k++ {
		db := bk[k] - p.MeanBias
		da := ak[k] - p.MeanArea
		bVar += db * db
		aVar += da * da
	}
	f2 := bVar / (float64(p.K) * p.N2)
	f3 := aVar / (float64(p.K) * p.N3)
	kf := float64(p.K)
	f4 := -float64(p.G) * (kf - 1) / (kf * kf) / p.N4
	return c.combine(f1, f2, f3, f4)
}

// PlaneTotals returns the per-plane bias (mA) and area (mm²) sums for a
// discrete assignment.
func (p *Problem) PlaneTotals(labels []int) (bias, area []float64) {
	bias = make([]float64, p.K)
	area = make([]float64, p.K)
	for i, lb := range labels {
		bias[lb] += p.Bias[i]
		area[lb] += p.Area[i]
	}
	return bias, area
}
