package partition

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// weightedPair builds the same instance twice: once as a weighted problem
// (each distinct edge with an integer multiplicity) and once as its
// unweighted expansion (each weight-w edge replicated w times, adjacent in
// edge order). The two are the same mathematical objective, so costs and
// gradients must agree to float tolerance.
func weightedPair(t *testing.T, g, k int, seed int64) (weighted, replicated *Problem) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bias := make([]float64, g)
	area := make([]float64, g)
	for i := range bias {
		bias[i] = 0.05 + rng.Float64()
		area[i] = 0.001 + 0.01*rng.Float64()
	}
	var edges [][2]int
	var weights []float64
	var rep [][2]int
	for i := 1; i < g; i++ {
		j := rng.Intn(i)
		w := 1 + rng.Intn(4)
		edges = append(edges, [2]int{j, i})
		weights = append(weights, float64(w))
		for r := 0; r < w; r++ {
			rep = append(rep, [2]int{j, i})
		}
	}
	wp, err := NewWeightedProblem("weighted", k, bias, area, edges, weights)
	if err != nil {
		t.Fatalf("NewWeightedProblem: %v", err)
	}
	up, err := NewProblem("replicated", k, bias, area, rep)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return wp, up
}

func randomW(p *Problem, seed int64) W {
	rng := rand.New(rand.NewSource(seed))
	w := p.NewW()
	for i := 0; i < p.G; i++ {
		row := w[i*p.K : (i+1)*p.K]
		var sum float64
		for k := range row {
			row[k] = rng.Float64()
			sum += row[k]
		}
		for k := range row {
			row[k] /= sum
		}
	}
	return w
}

func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d == 0 {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return d/den <= tol
}

func TestWeightedProblemMatchesReplicatedCost(t *testing.T) {
	wp, up := weightedPair(t, 200, 5, 7)
	if !relClose(wp.N1, up.N1, 1e-12) {
		t.Fatalf("N1 mismatch: weighted %g vs replicated %g", wp.N1, up.N1)
	}
	w := randomW(wp, 11)
	c := DefaultCoeffs()
	bw := wp.Cost(w, c)
	br := up.Cost(w, c)
	if !relClose(bw.Total, br.Total, 1e-12) || !relClose(bw.F1, br.F1, 1e-12) {
		t.Fatalf("relaxed cost mismatch: weighted %+v vs replicated %+v", bw, br)
	}
	labels := wp.Assign(w)
	dw := wp.DiscreteCost(labels, c)
	dr := up.DiscreteCost(labels, c)
	if !relClose(dw.Total, dr.Total, 1e-12) || !relClose(dw.F1, dr.F1, 1e-12) {
		t.Fatalf("discrete cost mismatch: weighted %+v vs replicated %+v", dw, dr)
	}
}

func TestWeightedProblemMatchesReplicatedGradient(t *testing.T) {
	wp, up := weightedPair(t, 150, 4, 3)
	w := randomW(wp, 5)
	c := DefaultCoeffs()
	for _, mode := range []GradientMode{GradientExact, GradientPaper} {
		gw := make([]float64, wp.G*wp.K)
		gr := make([]float64, up.G*up.K)
		wp.Gradient(w, c, mode, gw)
		up.Gradient(w, c, mode, gr)
		for i := range gw {
			if !relClose(gw[i], gr[i], 1e-9) {
				t.Fatalf("mode %v gradient[%d] mismatch: weighted %g vs replicated %g", mode, i, gw[i], gr[i])
			}
		}
	}
}

// TestWeightedSolveWorkersDeterminism pins the determinism invariant on the
// weighted kernel paths: every Workers count produces bitwise identical
// results, exactly as for unweighted problems.
func TestWeightedSolveWorkersDeterminism(t *testing.T) {
	wp, _ := weightedPair(t, 300, 5, 9)
	opts := Options{Seed: 3, MaxIters: 120, Refine: true}
	opts.Workers = 1
	base, err := wp.Solve(opts)
	if err != nil {
		t.Fatalf("solve workers=1: %v", err)
	}
	for _, workers := range []int{2, 3, runtime.NumCPU()} {
		opts.Workers = workers
		res, err := wp.Solve(opts)
		if err != nil {
			t.Fatalf("solve workers=%d: %v", workers, err)
		}
		if res.Relaxed.Total != base.Relaxed.Total {
			t.Fatalf("workers=%d relaxed cost %v differs from serial %v", workers, res.Relaxed.Total, base.Relaxed.Total)
		}
		for i := range base.W {
			if res.W[i] != base.W[i] {
				t.Fatalf("workers=%d W[%d] differs bitwise", workers, i)
			}
		}
		for i := range base.Labels {
			if res.Labels[i] != base.Labels[i] {
				t.Fatalf("workers=%d label[%d] differs", workers, i)
			}
		}
	}
}

// TestWeightedRefineMatchesReplicated runs the greedy refinement on the
// weighted instance and its expansion from the same start and expects the
// same move sequence (the deltas agree to float tolerance and ties are
// broken identically by the shared 1e-15 threshold margin).
func TestWeightedRefineMatchesReplicated(t *testing.T) {
	wp, up := weightedPair(t, 120, 4, 13)
	w := randomW(wp, 2)
	c := DefaultCoeffs()
	lw := wp.Assign(w)
	lr := up.Assign(w)
	wp.Refine(lw, c, 8)
	up.Refine(lr, c, 8)
	dw := wp.DiscreteCost(lw, c).Total
	dr := up.DiscreteCost(lr, c).Total
	if !relClose(dw, dr, 1e-9) {
		t.Fatalf("refined cost diverged: weighted %g vs replicated %g", dw, dr)
	}
}

func TestNewWeightedProblemValidation(t *testing.T) {
	bias := []float64{1, 1, 1}
	area := []float64{1, 1, 1}
	edges := [][2]int{{0, 1}, {1, 2}}
	if _, err := NewWeightedProblem("bad-len", 2, bias, area, edges, []float64{1}); err == nil {
		t.Fatal("want error for weight/edge length mismatch")
	}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewWeightedProblem("bad-w", 2, bias, area, edges, []float64{1, w}); err == nil {
			t.Fatalf("want error for weight %v", w)
		}
	}
	p, err := NewWeightedProblem("nil-w", 2, bias, area, edges, nil)
	if err != nil {
		t.Fatalf("nil weights: %v", err)
	}
	if p.EdgeWeight != nil {
		t.Fatal("nil weights must stay nil (unweighted fast paths)")
	}
}
