//go:build !race

package partition

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
